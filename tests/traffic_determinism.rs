//! The traffic layer's determinism and accounting contracts:
//!
//! - arrival processes are pure functions of `(curves, seed)` (proptest),
//! - a request-serving fleet run is byte-identical serial vs parallel and
//!   across shard counts (thread-count invariance is asserted
//!   cross-process by the traffic bench, which re-execs itself under
//!   different `CAPSIM_THREADS`),
//! - the scripted flash-crowd scenario is pinned by a committed golden
//!   file (`CAPSIM_BLESS=1 cargo test --test traffic_determinism` to
//!   regenerate),
//! - `FleetReport`'s typed traffic/energy accessors agree with the raw
//!   obs snapshot they summarize.

use std::path::PathBuf;

use capsim::chaos::{run_scenario, ChaosScenario, FaultPlan, InvariantConfig};
use capsim::dcm::fleet::{FleetBuilder, FleetReport};
use capsim::traffic::{ArrivalCurve, ArrivalProcess, ClientSpec, TrafficSpec};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For ANY seed and curve mix, two processes built from the same
    /// inputs emit bit-identical, strictly increasing arrival times, and
    /// a different seed diverges.
    #[test]
    fn arrival_processes_are_seed_deterministic(
        seed in 0u64..u64::MAX / 2,
        rps in 1.0f64..1e6,
        peak in 1.0f64..1e6,
        period_us in 100.0f64..10_000.0,
    ) {
        let curves = vec![
            ArrivalCurve::Constant { rps },
            ArrivalCurve::Diurnal { base_rps: rps, peak_rps: peak, period_s: period_us * 1e-6 },
            ArrivalCurve::FlashCrowd { base_rps: 0.0, spike_rps: peak, start_s: 1e-3, end_s: 2e-3 },
        ];
        let mut a = ArrivalProcess::new(curves.clone(), seed);
        let mut b = ArrivalProcess::new(curves.clone(), seed);
        let mut c = ArrivalProcess::new(curves, seed + 1);
        let mut last = -1.0;
        let mut diverged = false;
        for _ in 0..200 {
            let t = a.pop();
            prop_assert_eq!(t.to_bits(), b.pop().to_bits(), "same seed must replay");
            prop_assert!(t > last, "arrivals must strictly increase");
            diverged |= t.to_bits() != c.pop().to_bits();
            last = t;
        }
        prop_assert!(diverged, "a different seed must shift the schedule");
    }
}

/// A small observed request-serving fleet: datacenter rate mix, hot
/// nodes genuinely backlogged, cold nodes mostly idle.
fn traffic_report(parallel: bool, shards: Option<usize>) -> FleetReport {
    let spec = TrafficSpec::constant(30_000.0).datacenter_mix(true);
    let mut b = FleetBuilder::new()
        .nodes(9)
        .epochs(4)
        .seed(11)
        .parallel(parallel)
        .observe(true)
        .workload(spec.workload());
    if let Some(k) = shards {
        b = b.shards(k);
    }
    b.build().run()
}

#[test]
fn traffic_fleet_is_byte_identical_serial_parallel_and_any_shard_count() {
    let serial = traffic_report(false, None);
    let serial_events = serial.obs.as_ref().expect("observed").events_jsonl();
    assert!(serial.traffic().expect("traffic series recorded").completed > 0);
    for k in [None, Some(1), Some(2), Some(7), Some(9)] {
        let parallel = traffic_report(true, k);
        let events = parallel.obs.as_ref().expect("observed").events_jsonl();
        assert_eq!(parallel, serial, "shards={k:?} changed the report");
        assert_eq!(events, serial_events, "shards={k:?} changed the event stream");
    }
}

/// The scripted flash-crowd scenario: a constant trickle with a hard
/// mid-run spike against an oversubscribed budget. Pinned below by a
/// committed golden file.
fn flash_crowd_scenario() -> ChaosScenario {
    let spec = TrafficSpec::from_curves(vec![
        ArrivalCurve::Constant { rps: 10_000.0 },
        ArrivalCurve::FlashCrowd {
            base_rps: 0.0,
            spike_rps: 1_500_000.0,
            start_s: 1.5e-3,
            end_s: 2.5e-3,
        },
    ])
    .queue_bound(32)
    .slo_ms(0.05);
    ChaosScenario {
        name: "flash_crowd".into(),
        nodes: 3,
        epochs: 8,
        epoch_s: 5e-4,
        seed: 42,
        budget_w: Some(3.0 * 118.0),
        workload: spec.workload(),
        control_period_us: 10.0,
        meter_window_s: 2e-4,
        shards: None,
        plan: FaultPlan::none(),
        observe: true,
        invariants: InvariantConfig::default(),
        policy: None,
    }
}

/// Golden digest: the metrics snapshot (latency histogram, traffic
/// counters) followed by the merged event stream.
fn flash_crowd_digest() -> String {
    let outcome = run_scenario(&flash_crowd_scenario(), true);
    let obs = outcome.report.obs.as_ref().expect("scenario observes");
    format!("{}{}", obs.metrics.render(), obs.events_jsonl())
}

/// Compare a digest against its committed golden file (or regenerate it
/// under `CAPSIM_BLESS=1`).
fn assert_matches_golden(name: &str, file: &str, actual: &str) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(file);
    if std::env::var("CAPSIM_BLESS").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        eprintln!("blessed {name} digest at {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); generate with CAPSIM_BLESS=1 cargo test --test traffic_determinism",
            path.display()
        )
    });
    if expected != actual {
        let diff_line = expected
            .lines()
            .zip(actual.lines())
            .position(|(e, a)| e != a)
            .map(|i| format!("first differing line: {}", i + 1))
            .unwrap_or_else(|| {
                format!(
                    "line counts differ: {} vs {}",
                    expected.lines().count(),
                    actual.lines().count()
                )
            });
        panic!(
            "{name} digest diverged from the committed golden file ({diff_line}).\n\
             If this change is intentional, re-bless with CAPSIM_BLESS=1."
        );
    }
}

#[test]
fn flash_crowd_scenario_matches_the_committed_golden_file() {
    assert_matches_golden("flash-crowd", "traffic_events.jsonl", &flash_crowd_digest());
}

/// The scripted retry-storm scenario: the flash-crowd trace with
/// closed-loop clients (timeouts, capped-backoff retries) and barrier
/// failover. Pinned by its own golden file.
fn retry_storm_scenario(shards: Option<usize>) -> ChaosScenario {
    let spec = TrafficSpec::from_curves(vec![
        ArrivalCurve::Constant { rps: 10_000.0 },
        ArrivalCurve::FlashCrowd {
            base_rps: 0.0,
            spike_rps: 1_500_000.0,
            start_s: 1.5e-3,
            end_s: 2.5e-3,
        },
    ])
    .queue_bound(32)
    .slo_ms(0.05)
    .closed_loop(ClientSpec::default())
    .failover(true);
    ChaosScenario {
        name: "retry_storm_scripted".into(),
        nodes: 3,
        epochs: 8,
        epoch_s: 5e-4,
        seed: 42,
        budget_w: Some(3.0 * 118.0),
        workload: spec.workload(),
        control_period_us: 10.0,
        meter_window_s: 2e-4,
        shards,
        plan: FaultPlan::none(),
        observe: true,
        invariants: InvariantConfig::default(),
        policy: None,
    }
}

#[test]
fn retry_storm_scenario_matches_the_committed_golden_file() {
    let outcome = run_scenario(&retry_storm_scenario(None), true);
    let obs = outcome.report.obs.as_ref().expect("scenario observes");
    let digest = format!("{}{}", obs.metrics.render(), obs.events_jsonl());
    assert_matches_golden("retry-storm", "retry_storm_events.jsonl", &digest);
}

#[test]
fn retry_storm_is_byte_identical_across_engines_and_shard_counts() {
    let serial = run_scenario(&retry_storm_scenario(None), false);
    let serial_events = serial.report.obs.as_ref().expect("observed").events_jsonl();
    for k in [None, Some(1), Some(2), Some(3)] {
        let parallel = run_scenario(&retry_storm_scenario(k), true);
        let events = parallel.report.obs.as_ref().expect("observed").events_jsonl();
        assert_eq!(
            parallel.fingerprint(),
            serial.fingerprint(),
            "shards={k:?} changed the retry-storm outcome"
        );
        assert_eq!(events, serial_events, "shards={k:?} changed the event stream");
    }
    let t = serial.report.traffic().expect("traffic series recorded");
    assert!(t.retries > 0, "the throttled spike must ignite retries");
    assert!(t.client_timeouts > 0, "retries imply client timeouts");
    assert!(t.failover > 0, "full queues must re-home work at the barrier");
    assert_eq!(
        t.arrivals,
        t.completed + t.shed + t.in_flight,
        "fleet-wide books close exactly under retries and failover"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For ANY seed, a closed-loop retry storm with failover replays
    /// bit-identically serial vs parallel at an arbitrary shard count,
    /// and its request books close exactly.
    #[test]
    fn retry_storms_replay_bit_identically_for_any_seed(
        seed in 0u64..u64::MAX / 2,
        shards in 1usize..=3,
    ) {
        let mut scenario = retry_storm_scenario(Some(shards));
        scenario.seed = seed;
        scenario.epochs = 6;
        let serial = run_scenario(&scenario, false);
        let parallel = run_scenario(&scenario, true);
        prop_assert_eq!(
            serial.fingerprint(),
            parallel.fingerprint(),
            "seed {} shards {} must replay", seed, shards
        );
        let t = serial.report.traffic().expect("traffic series recorded");
        prop_assert_eq!(t.arrivals, t.completed + t.shed + t.in_flight);
    }
}

#[test]
fn flash_crowd_sheds_during_the_spike_and_replays_identically() {
    let scenario = flash_crowd_scenario();
    let parallel = run_scenario(&scenario, true);
    let serial = run_scenario(&scenario, false);
    assert_eq!(parallel.fingerprint(), serial.fingerprint());
    let t = parallel.report.traffic().expect("traffic series recorded");
    assert!(t.arrivals > 200, "spike offered load, got {}", t.arrivals);
    assert!(t.shed > 0, "a 15× spike against a 32-deep queue must shed");
    assert!(t.completed > 0, "the fleet still served requests");
}

#[test]
fn typed_accessors_agree_with_the_raw_snapshot() {
    use capsim::node::workload::traffic_keys as keys;
    let report = traffic_report(true, None);
    let m = &report.obs.as_ref().expect("observed").metrics;
    let t = report.traffic().expect("traffic summary");
    assert_eq!(t.arrivals, m.counter(keys::ARRIVALS));
    assert_eq!(t.completed, m.counter(keys::COMPLETED));
    assert_eq!(t.shed, m.counter(keys::SHED));
    assert_eq!(t.slo_violations, m.counter(keys::SLO_VIOLATIONS));
    assert_eq!(t.retries, m.counter(keys::RETRIES));
    assert_eq!(t.client_timeouts, m.counter(keys::CLIENT_TIMEOUTS));
    assert_eq!(t.failover, m.counter(keys::FAILOVER_IN));
    assert_eq!(t.in_flight, m.counter(keys::IN_FLIGHT));
    assert_eq!(
        t.arrivals,
        t.completed + t.shed + t.in_flight,
        "requests are conserved exactly: every arrival completes, is shed, or is in flight"
    );
    assert!(t.p50_ms <= t.p99_ms && t.p99_ms <= t.p999_ms, "quantiles are ordered");
    assert!(t.goodput_rps > 0.0);

    let e = report.energy();
    assert!(e.energy_j > 0.0 && e.wall_s > 0.0 && e.avg_node_power_w > 0.0);
    let per_node: f64 = report.summaries.iter().map(|s| s.energy_j).sum();
    assert!((e.energy_j - per_node).abs() < 1e-9);

    let spj = report.slo_violations_per_joule().expect("headline metric");
    assert!((spj - t.slo_violations as f64 / e.energy_j).abs() < 1e-12);

    // Per-priority accessors agree with the raw per-class counters and
    // close their books class by class.
    let p = report.priority().expect("priority summary");
    for c in 0..keys::CLASSES {
        assert_eq!(p.arrivals[c], m.counter(keys::ARRIVALS_BY_CLASS[c]));
        assert_eq!(p.completed[c], m.counter(keys::COMPLETED_BY_CLASS[c]));
        assert_eq!(p.shed[c], m.counter(keys::SHED_BY_CLASS[c]));
        assert_eq!(p.in_flight[c], m.counter(keys::IN_FLIGHT_BY_CLASS[c]));
        assert_eq!(
            p.arrivals[c],
            p.completed[c] + p.shed[c] + p.in_flight[c],
            "class {c} books close exactly"
        );
    }
    assert_eq!(p.arrivals.iter().sum::<u64>(), t.arrivals, "classes partition arrivals");
    // No AIMD clients ran, so there is no rate-multiplier gauge; no
    // breaker moved in a clean fleet.
    assert!(report.final_rate_multiplier().is_none());
    assert_eq!(report.breaker_transitions(), Some(0));

    // Batch fleets (no traffic series) report None, not zeros.
    let batch = FleetBuilder::new().nodes(3).epochs(2).seed(4).observe(true).build().run();
    assert!(batch.traffic().is_none());
    assert!(batch.slo_violations_per_joule().is_none());
    assert!(batch.priority().is_none());
    assert!(batch.final_rate_multiplier().is_none());
    assert!(batch.breaker_transitions().is_none());
}
