//! The pluggable-policy layer's acceptance gates.
//!
//! * Installing the default ladder backend explicitly is **byte-identical**
//!   to the legacy path (the refactor moved the decision, not the
//!   behavior) — for the plain default fleet and for a faulted
//!   proportional one.
//! * Every backend — ladder, governor, tabular-RL — survives the scripted
//!   chaos scenario with all invariants green (the fault plans double as
//!   an adversarial policy eval).
//! * Offline RL training is replayable: same seed, same Q-table, same
//!   frozen-policy fleet, byte for byte.

use capsim::chaos::{check, ChaosScenario};
use capsim::prelude::*;

fn legacy_fleet(policy: AllocationPolicy, faulty: bool) -> FleetBuilder {
    let mut b = FleetBuilder::new().nodes(4).epochs(3).budget_w(512.0).seed(42).policy(policy);
    if faulty {
        b = b.faults(FaultSpec::lossy(0.08)).dead_node(2);
    }
    b
}

fn render_of(b: FleetBuilder) -> String {
    b.build().run().render()
}

#[test]
fn explicit_ladder_backend_is_byte_identical_to_the_legacy_path() {
    for (group, faulty) in
        [(AllocationPolicy::Uniform, false), (AllocationPolicy::ProportionalToDemand, true)]
    {
        let legacy = render_of(legacy_fleet(group.clone(), faulty));
        let layered = render_of(
            legacy_fleet(group.clone(), faulty)
                .cap_policy(Box::new(LadderCapPolicy::with_group(group.clone()))),
        );
        assert_eq!(legacy, layered, "ladder backend diverged for {group:?} faulty={faulty}");
    }
}

#[test]
fn explicit_ladder_backend_adds_only_policy_plan_events() {
    // Observed runs: the layered path may announce its plans, but every
    // other event — rung walks, SEL, barriers — must match byte for byte.
    let events = |b: FleetBuilder| {
        let report = b.observe(true).build().run();
        report.obs.expect("observed").events_jsonl()
    };
    let legacy = events(legacy_fleet(AllocationPolicy::Uniform, true));
    let layered = events(
        legacy_fleet(AllocationPolicy::Uniform, true)
            .cap_policy(Box::new(LadderCapPolicy::with_group(AllocationPolicy::Uniform))),
    );
    // The extra plan records renumber the manager stream's `seq` field, so
    // compare everything *after* it (time, node, kind, payload).
    let strip_seq = |l: &str| l[l.find("\"t_s\"").expect("jsonl line")..].to_string();
    let legacy: Vec<String> = legacy.lines().map(strip_seq).collect();
    let filtered: Vec<String> = layered
        .lines()
        .filter(|l| !l.contains("\"kind\":\"policy_plan\""))
        .map(strip_seq)
        .collect();
    assert_eq!(legacy, filtered);
    assert!(layered.contains("\"kind\":\"policy_plan\""), "layered path announces plans");
}

#[test]
fn every_backend_survives_scripted_chaos_with_invariants_green() {
    let trained = capsim::dcm::train_rl(&RlTrainConfig::quick(42));
    let specs = [
        CapPolicySpec::Ladder(AllocationPolicy::Uniform),
        CapPolicySpec::Governor(GovernorConfig::default()),
        CapPolicySpec::Rl(trained.q),
    ];
    for spec in specs {
        let name = spec.name();
        let report = check(&ChaosScenario::scripted().with_policy(spec));
        assert!(report.ok(), "{name}: violations: {:?}", report.violations);
    }
}

#[test]
fn rl_training_and_deployment_replay_byte_identically() {
    let a = capsim::dcm::train_rl(&RlTrainConfig::quick(9));
    let b = capsim::dcm::train_rl(&RlTrainConfig::quick(9));
    assert_eq!(a.q_digest, b.q_digest, "same seed, same table");
    assert_eq!(a.q, b.q);

    // Deploy each frozen table into identical fleets: same bytes out.
    let run = |q: QTable| {
        FleetBuilder::new()
            .nodes(3)
            .epochs(4)
            .budget_w(300.0)
            .seed(5)
            .cap_policy(Box::new(RlCapPolicy::frozen(q)))
            .build()
            .run()
            .render()
    };
    assert_eq!(run(a.q), run(b.q), "same table, same fleet bytes");
}
