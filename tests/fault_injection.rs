//! Integration: the management plane under a hostile IPMI fabric —
//! retry-with-backoff convergence, SEL audit fidelity, and degraded-mode
//! budget reallocation, all in lock-step simulated time (no wall-clock,
//! no flakiness).

use capsim::dcm::{read_sel_via, violation_count, Dcm, PumpedLink};
use capsim::ipmi::{
    FaultSpec, IpmiError, LanChannel, Request, Response, RetryPolicy, SelEntry, Transact,
};
use capsim::node::MachineBuilder;
use capsim::prelude::*;
use proptest::prelude::*;

/// A fast-control machine suitable for millisecond-scale lock-step runs.
fn lockstep_machine(seed: u64) -> Machine {
    MachineBuilder::tiny().seed(seed).control_period_us(10.0).meter_window_s(2e-4).build()
}

/// A [`Transact`] wrapper that counts transactions, for asserting on the
/// wire cost of management operations.
struct CountingLink<T: Transact> {
    inner: T,
    transactions: u64,
}

impl<T: Transact> Transact for CountingLink<T> {
    fn next_seq(&mut self) -> u8 {
        self.inner.next_seq()
    }

    fn transact(&mut self, req: &Request) -> Result<Response, IpmiError> {
        self.transactions += 1;
        self.inner.transact(req)
    }

    fn set_patience(&mut self, factor: u32) {
        self.inner.set_patience(factor);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Under ANY seeded fault schedule that eventually delivers (the
    /// `max_consecutive_faults` honesty bound), retry-with-backoff lands
    /// the requested power limit on the node and reads it back intact.
    #[test]
    fn retry_converges_to_the_requested_limit(
        seed in any::<u64>(),
        drop_prob in 0.0..0.7f64,
        corrupt_prob in 0.0..0.7f64,
        busy_prob in 0.0..0.5f64,
        delay_prob in 0.0..0.5f64,
        max_delay in 1u8..4,
        max_consecutive in 1u8..4,
        watts in 120u16..150,
    ) {
        let spec = FaultSpec {
            drop_prob,
            corrupt_prob,
            busy_prob,
            delay_prob,
            max_delay,
            max_consecutive_faults: max_consecutive,
        };
        let (mut port, bmc_port) = LanChannel::faulty_pair(spec, seed);
        let mut machine = lockstep_machine(seed ^ 0x5eed);
        machine.attach_bmc_port(bmc_port);

        let mut dcm = Dcm::new();
        // The honesty bound is per-direction: the request and response
        // injectors each force a clean frame only every
        // `max_consecutive + 1` frames, and a transaction needs both to
        // line up — worst case (max_consecutive + 1)^2 attempts.
        dcm.retry = RetryPolicy {
            attempts: (max_consecutive as u32 + 1).pow(2) + 8,
            max_patience: 16,
        };
        let node = dcm.register("n0");

        let mut link = PumpedLink::new(&mut port, &mut machine, 16);
        dcm.cap_node_via(node, &mut link, watts as f64)
            .expect("retry must converge on an eventually-delivering link");
        let limit = dcm
            .node_limit_via(node, &mut link)
            .expect("read-back must converge too");
        prop_assert_eq!(limit.limit_w, watts);
        prop_assert_eq!(dcm.health(node), NodeHealth::Healthy);
        prop_assert_eq!(dcm.last_cap_w(node), Some(watts as f64));
    }
}

#[test]
fn sel_audit_over_a_lossy_link_matches_the_nodes_own_log() {
    // Accrue real SEL traffic: a cap below the throttle floor logs a
    // configuration event and sustained violations.
    let (mut port, bmc_port) = LanChannel::faulty_pair(FaultSpec::lossy(0.1), 0xbeef);
    let mut machine = lockstep_machine(77);
    machine.attach_bmc_port(bmc_port);

    let mut dcm = Dcm::new();
    dcm.correction_ms = 1;
    let node = dcm.register("n0");
    {
        let mut link = PumpedLink::new(&mut port, &mut machine, 16);
        dcm.cap_node_via(node, &mut link, 118.0).expect("cap lands despite faults");
    }
    // Run the node so the BMC observes the violation and logs it.
    let block = machine.code_block(96, 24);
    for _ in 0..200_000 {
        machine.exec_block(&block);
    }

    // Ground truth straight from the machine's own log.
    let truth: Vec<SelEntry> = machine.sel().iter().cloned().collect();
    assert!(violation_count(&truth) > 0, "run must have logged violations");

    // The audit walks the SEL over the same lossy wire, with retries.
    // The honesty bound only promises a clean frame after 4 consecutive
    // faults *per direction*, so one transaction can need up to ~9
    // attempts in the worst case (4 lost requests, then a clean request
    // whose responses fault 4 more times) — give the walk enough
    // attempts that the bound, not seed luck, guarantees convergence.
    let patient = RetryPolicy { attempts: 12, ..RetryPolicy::default() };
    let mut link = PumpedLink::new(&mut port, &mut machine, 16);
    let audited = read_sel_via(&mut link, &patient).expect("SEL readable");
    assert_eq!(audited, truth, "audit over faults must reproduce the node's log exactly");
}

#[test]
fn sel_audit_wire_cost_is_proportional_to_the_log_not_the_id_space() {
    // Same scenario as the fidelity test above: accrue a real SEL, then
    // audit it — this time counting every IPMI transaction on the wire.
    let (mut port, bmc_port) = LanChannel::faulty_pair(FaultSpec::lossy(0.1), 0xfeed);
    let mut machine = lockstep_machine(78);
    machine.attach_bmc_port(bmc_port);

    let mut dcm = Dcm::new();
    dcm.correction_ms = 1;
    let node = dcm.register("n0");
    {
        let mut link = PumpedLink::new(&mut port, &mut machine, 16);
        dcm.cap_node_via(node, &mut link, 118.0).expect("cap lands despite faults");
    }
    let block = machine.code_block(96, 24);
    for _ in 0..200_000 {
        machine.exec_block(&block);
    }

    let truth: Vec<SelEntry> = machine.sel().iter().cloned().collect();
    let entries = truth.len() as u64;
    assert!(entries > 0, "run must have logged entries");

    let retry = RetryPolicy::default();
    let mut link =
        CountingLink { inner: PumpedLink::new(&mut port, &mut machine, 16), transactions: 0 };
    let audited = read_sel_via(&mut link, &retry).expect("SEL readable");
    assert_eq!(audited, truth, "counting must not change the audit result");

    // Wire cost: one info read plus one get per candidate id — the live
    // entries and a fixed grow-tolerance slack — each multiplied by at
    // most the retry budget. Nothing scales with the 4096-id ring space.
    let grow_slack = 16;
    let bound = (1 + entries + grow_slack) * retry.attempts as u64;
    assert!(
        link.transactions <= bound,
        "audit used {} transactions for {entries} entries (bound {bound})",
        link.transactions
    );
    assert!(
        link.transactions < 4096,
        "audit of {entries} entries must not walk the whole id space ({} transactions)",
        link.transactions
    );
}

#[test]
fn dead_node_is_quarantined_and_its_budget_flows_to_survivors() {
    let nodes = 8;
    let budget = 135.0 * nodes as f64;
    let report = FleetBuilder::new()
        .nodes(nodes)
        .epochs(6)
        .budget_w(budget)
        .policy(AllocationPolicy::Uniform)
        .faults(FaultSpec::lossy(0.05))
        .dead_node(3)
        .seed(11)
        .build()
        .run();

    let last = report.records.last().expect("records");
    assert_eq!(last.answered, nodes - 1, "healthy nodes keep answering through 5% faults");
    assert_eq!(last.unresponsive, 1, "the dead node is quarantined");

    let dead = &report.summaries[3];
    assert_eq!(dead.health, NodeHealth::Unresponsive);
    assert_eq!(dead.final_cap_w, None, "no cap can land on a black-holed BMC");

    // The full budget is redistributed over the survivors: each healthy
    // node gets the uniform share of budget / answered, and the pushed
    // caps sum back to the budget.
    let share = budget / last.answered as f64;
    let mut cap_sum = 0.0;
    for s in report.summaries.iter().filter(|s| s.health == NodeHealth::Healthy) {
        let cap = s.final_cap_w.expect("healthy nodes are capped");
        assert!((cap - share).abs() < 1.0, "cap {cap} vs uniform share {share}");
        cap_sum += cap;
    }
    assert!((cap_sum - budget).abs() < 1.0, "budget {budget} reallocated, caps sum to {cap_sum}");

    // And the caps are *met*: the final epoch's measured draw across the
    // answering nodes sits at or under the reallocated budget, within the
    // BMC's per-node hysteresis band.
    let hysteresis_w = 2.0;
    assert!(
        last.fleet_power_w < budget + last.answered as f64 * hysteresis_w,
        "healthy nodes converged under their caps: measured {} W vs budget {budget} W",
        last.fleet_power_w
    );
}
