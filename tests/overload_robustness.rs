//! The overload-robustness contracts of PR 10:
//!
//! - the scripted overload scenario (flash crowd + oversubscribed
//!   budget + sensor dropout) shows the retry-only fleet collapsing
//!   while the AIMD + brownout twin converges, and is pinned by a
//!   committed golden file
//!   (`CAPSIM_BLESS=1 cargo test --test overload_robustness`),
//! - per-priority-class request conservation
//!   (`arrivals_pC == completed_pC + shed_pC + in_flight_pC`) holds as
//!   exact u64 equality with retries, failover, AIMD and brownout all
//!   enabled, across shard counts (proptest; thread-count invariance is
//!   asserted cross-process by `examples/backpressure.rs`),
//! - quarantined (`Degraded`/`Unresponsive`) nodes receive zero failover
//!   work (regression for the routing audit), and open circuit breakers
//!   keep nodes out of the re-offer heap.

use std::path::PathBuf;

use capsim::chaos::{run_scenario, FaultKind, FaultPlan};
use capsim::dcm::fleet::FleetBuilder;
use capsim::dcm::NodeHealth;
use capsim::node::workload::traffic_keys as keys;
use capsim::traffic::{ClientSpec, EmergencyConfig, TrafficSpec};
use proptest::prelude::*;

/// The scripted overload scenario: the PR 9 retry-storm emergency
/// (diurnal + flash crowd against an oversubscribed 118 W/node budget,
/// sensor dropout and a BMC crash mid-run), with or without the
/// robustness stack.
fn overload_config(backpressure: bool, nodes: usize, epochs: u32, seed: u64) -> EmergencyConfig {
    if backpressure {
        EmergencyConfig::backpressure_storm(nodes, epochs, seed)
    } else {
        EmergencyConfig::retry_storm(nodes, epochs, seed)
    }
}

fn assert_matches_golden(name: &str, file: &str, actual: &str) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(file);
    if std::env::var("CAPSIM_BLESS").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        eprintln!("blessed {name} digest at {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); generate with CAPSIM_BLESS=1 cargo test --test overload_robustness",
            path.display()
        )
    });
    if expected != actual {
        let diff_line = expected
            .lines()
            .zip(actual.lines())
            .position(|(e, a)| e != a)
            .map(|i| format!("first differing line: {}", i + 1))
            .unwrap_or_else(|| {
                format!(
                    "line counts differ: {} vs {}",
                    expected.lines().count(),
                    actual.lines().count()
                )
            });
        panic!(
            "{name} digest diverged from the committed golden file ({diff_line}).\n\
             If this change is intentional, re-bless with CAPSIM_BLESS=1."
        );
    }
}

#[test]
fn overload_scenario_matches_the_committed_golden_file() {
    let outcome = run_scenario(&overload_config(true, 4, 12, 42).scenario(), true);
    let obs = outcome.report.obs.as_ref().expect("scenario observes");
    let digest = format!("{}{}", obs.metrics.render(), obs.events_jsonl());
    assert_matches_golden("overload", "overload_events.jsonl", &digest);
}

/// The headline robustness claim: under the same emergency, the
/// retry-only fleet keeps amplifying its own load while the AIMD +
/// brownout fleet backs off, sheds background work first, and ends with
/// bounded retries and a better SLO-violations-per-joule frontier.
#[test]
fn backpressure_converges_where_retry_only_collapses() {
    let retry_only = run_scenario(&overload_config(false, 4, 16, 42).scenario(), true).report;
    let damped = run_scenario(&overload_config(true, 4, 16, 42).scenario(), true).report;

    let rt = retry_only.traffic().expect("retry-only records traffic");
    let dt = damped.traffic().expect("backpressure records traffic");

    // Collapse vs convergence: the retry-only storm re-offers every
    // timeout at full rate; the AIMD population multiplicatively backs
    // off, so both its raw offered load and its retry volume shrink.
    assert!(rt.retries > 0, "the emergency must ignite retries");
    assert!(
        dt.arrivals < rt.arrivals,
        "backpressure must thin offered load: {} vs {}",
        dt.arrivals,
        rt.arrivals
    );
    assert!(
        dt.retries < rt.retries,
        "backpressure must bound retries: {} vs {}",
        dt.retries,
        rt.retries
    );

    // The multiplier converged somewhere between the floor and 1: it
    // moved (the controller engaged) and stayed within its clamp.
    let m = damped.final_rate_multiplier().expect("AIMD gauge recorded");
    assert!(m < 1.0, "sustained timeouts must cut the multiplier, got {m}");
    assert!(m >= 0.1, "the multiplier must respect its floor, got {m}");
    assert!(
        retry_only.final_rate_multiplier().is_none(),
        "retry-only clients have no rate controller"
    );

    // Brownout engaged and skewed the pain toward background work.
    let p = damped.priority().expect("per-class accounting");
    assert!(p.brownout_shed > 0, "the spike must trip the brownout gate");
    assert!(
        p.shed[2] > p.shed[0],
        "background must shed before critical: p2 {} vs p0 {}",
        p.shed[2],
        p.shed[0]
    );

    // Exact per-class conservation in both fleets.
    for report in [&retry_only, &damped] {
        let p = report.priority().expect("per-class accounting");
        for c in 0..keys::CLASSES {
            assert_eq!(
                p.arrivals[c],
                p.completed[c] + p.shed[c] + p.in_flight[c],
                "class {c} books must close exactly"
            );
        }
    }

    // The frontier: fewer SLO violations per joule of emergency energy.
    let rt_spj = retry_only.slo_violations_per_joule().expect("headline metric");
    let dt_spj = damped.slo_violations_per_joule().expect("headline metric");
    assert!(
        dt_spj < rt_spj,
        "backpressure must win the SLO-per-joule frontier: {dt_spj} vs {rt_spj}"
    );
}

/// The fault windows (sensor dropout, BMC crash) drive poll-timeout and
/// violation streaks at the barrier; the circuit breakers must actually
/// move — and their transitions must be typed, node-attributed events.
#[test]
fn fault_windows_trip_circuit_breakers() {
    // The stock emergency's BMC crash heals within a single barrier, too
    // fast for a 2-epoch timeout streak; stretch it so the breaker state
    // machine walks closed → open → half-open (and back).
    let mut scenario = overload_config(true, 4, 16, 42).scenario();
    let horizon = 16.0 * 5e-4;
    scenario.plan = FaultPlan::none()
        .window(1, 0.25 * horizon, 0.45 * horizon, FaultKind::SensorDropout)
        .window(2, 0.30 * horizon, 0.70 * horizon, FaultKind::BmcCrash { dead_s: 0.40 * horizon });
    let report = run_scenario(&scenario, true).report;
    let transitions = report.breaker_transitions().expect("traffic fleet reports breakers");
    assert!(transitions > 0, "fault windows must trip at least one breaker");
    let obs = report.obs.as_ref().expect("scenario observes");
    let trips = obs.events.iter().filter(|e| e.kind.name() == "breaker_transition").count() as u64;
    assert_eq!(trips, transitions, "every transition is a typed event");
    assert!(
        obs.events.iter().any(|e| e.kind.name() == "breaker_transition" && e.node.is_some()),
        "breaker events carry node attribution"
    );
}

/// Regression for the failover-routing audit: a quarantined node — here
/// a dead management link the DCM marks `Degraded` after its first
/// failed poll — must receive *zero* failover requests, no matter how
/// much queue room it advertises.
#[test]
fn quarantined_nodes_receive_zero_failover_requests() {
    let spec = TrafficSpec::constant(400_000.0)
        .queue_bound(8)
        .slo_ms(0.05)
        .closed_loop(ClientSpec::default())
        .failover(true);
    let mut fleet = FleetBuilder::new()
        .nodes(4)
        .epochs(10)
        .seed(7)
        .budget_w(4.0 * 118.0)
        .dead_node(1)
        .observe(true)
        .workload(spec.workload())
        .build();
    for _ in 0..10 {
        fleet.step_epoch();
    }
    let dead_in = fleet.machine(1).obs().metrics.counter(keys::FAILOVER_IN);
    assert_eq!(dead_in, 0, "a quarantined node must never receive failover work");
    let live_in: u64 = [0usize, 2, 3]
        .iter()
        .map(|&i| fleet.machine(i).obs().metrics.counter(keys::FAILOVER_IN))
        .sum();
    assert!(live_in > 0, "healthy nodes must still absorb the overflow");
    let report = fleet.finish();
    let health = report.summaries[1].health;
    assert_ne!(health, NodeHealth::Healthy, "the dead node must be quarantined, got {health:?}");
    let t = report.traffic().expect("traffic series recorded");
    assert_eq!(t.arrivals, t.completed + t.shed + t.in_flight, "books close with a dead node");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// For ANY seed and shard count in {1, 2, 7}, the full robustness
    /// stack (retries + failover + AIMD + brownout + fault windows)
    /// replays bit-identically serial vs parallel, and per-class
    /// conservation holds as exact u64 equality.
    #[test]
    fn per_class_conservation_holds_for_any_seed_and_shard_count(
        seed in 0u64..u64::MAX / 2,
        shard_idx in 0usize..3,
    ) {
        let shards = [1usize, 2, 7][shard_idx];
        let mut scenario = overload_config(true, 8, 6, seed).scenario();
        scenario.seed = seed;
        scenario.shards = Some(shards);
        let serial = run_scenario(&scenario, false);
        let parallel = run_scenario(&scenario, true);
        prop_assert_eq!(
            serial.fingerprint(),
            parallel.fingerprint(),
            "seed {} shards {} must replay", seed, shards
        );
        let p = serial.report.priority().expect("per-class accounting");
        let t = serial.report.traffic().expect("traffic series");
        let mut total = 0u64;
        for c in 0..keys::CLASSES {
            prop_assert_eq!(
                p.arrivals[c],
                p.completed[c] + p.shed[c] + p.in_flight[c],
                "class {} books must close exactly", c
            );
            total += p.arrivals[c];
        }
        prop_assert_eq!(total, t.arrivals, "classes partition the fleet total");
    }
}
