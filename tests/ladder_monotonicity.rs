//! The throttle ladder's ordering claim, checked end-to-end: walking the
//! machine down every rung must never *raise* power and never *shorten*
//! execution — for both of the paper's applications. The BMC's whole
//! control design (and every policy backend's action space) leans on this
//! total order.
//!
//! Each rung is profiled with a [`PinnedRungPolicy`], which holds the
//! machine at exactly that rung for a whole run — a closed-loop policy
//! could never promise that.

use capsim::apps::{SireRsm, StereoMatching, Workload};
use capsim::node::{MachineBuilder, RunStats, ThrottleLadder};
use capsim::policy::PinnedRungPolicy;

/// Adjacent rungs can be near-ties (a deep rung that swaps duty cycling
/// for memory gating may land within noise of its neighbor); allow a
/// small relative wobble without letting a real inversion through.
const REL_TOL: f64 = 0.02;

fn run_at_rung(app: &mut dyn Workload, rung: usize, seed: u64) -> RunStats {
    let mut m = MachineBuilder::e5_2680()
        .seed(seed)
        .fast_control()
        // Any active cap works: the pinned policy ignores telemetry, the
        // cap only keeps the BMC consulting it every control period.
        .cap_w(135.0)
        .cap_policy(Box::new(PinnedRungPolicy::new(rung)))
        .build();
    app.run(&mut m);
    m.finish_run()
}

fn ladder_depth() -> usize {
    let cfg = capsim::node::MachineConfig::e5_2680(0);
    ThrottleLadder::e5_2680(&cfg.pstates, cfg.full_mem()).deepest()
}

fn assert_monotone(app_name: &str, mk: &dyn Fn() -> Box<dyn Workload>, seed: u64) {
    let deepest = ladder_depth();
    let mut prev: Option<(usize, RunStats)> = None;
    for rung in 0..=deepest {
        let stats = run_at_rung(mk().as_mut(), rung, seed);
        if let Some((prev_rung, prev_stats)) = &prev {
            assert!(
                stats.avg_power_w <= prev_stats.avg_power_w * (1.0 + REL_TOL),
                "{app_name}: power rose walking rung {prev_rung} -> {rung}: {} -> {} W",
                prev_stats.avg_power_w,
                stats.avg_power_w
            );
            assert!(
                stats.wall_s >= prev_stats.wall_s * (1.0 - REL_TOL),
                "{app_name}: run got faster walking rung {prev_rung} -> {rung}: {} -> {} s",
                prev_stats.wall_s,
                stats.wall_s
            );
        }
        prev = Some((rung, stats));
    }
    // The order must also have range: the deepest rung is materially
    // slower and cooler than unthrottled, or the ladder does nothing.
    let top = run_at_rung(mk().as_mut(), 0, seed);
    let (_, bottom) = prev.expect("at least one rung");
    assert!(bottom.wall_s > top.wall_s * 2.0, "deepest rung barely throttles");
    // Deep rungs trade frequency for stalls, so *average* power floors
    // out well above zero (idle/uncore draw dominates a stalled machine);
    // a 15 % drop is still far beyond the per-step tolerance.
    assert!(bottom.avg_power_w < top.avg_power_w * 0.85, "deepest rung barely saves power");
}

#[test]
fn sire_rsm_power_and_performance_fall_monotonically_down_the_ladder() {
    assert_monotone("sire_rsm", &|| Box::new(SireRsm::test_scale(1)), 1);
}

#[test]
fn stereo_matching_power_and_performance_fall_monotonically_down_the_ladder() {
    assert_monotone("stereo", &|| Box::new(StereoMatching::test_scale(1)), 1);
}
