//! Integration: the full study pipeline — sweep → tables → figures —
//! renders coherently from live simulations.

use capsim::apps::StereoMatching;
use capsim::study::figures::{figure2_series, figure_ascii, figure_csv, x_labels};
use capsim::study::table::{table1, table2_memory, table2_performance};
use capsim::study::{CapSweep, ExperimentConfig, LadderKind};

fn small_sweep() -> capsim::study::SweepResult {
    let cfg = ExperimentConfig {
        caps_w: vec![150.0, 135.0, 121.0],
        runs_per_point: 2,
        base_seed: 17,
        ladder: LadderKind::Full,
        control_period_us: 10.0,
    };
    CapSweep::new(cfg).run("Stereo Matching", |seed| Box::new(StereoMatching::test_scale(seed)))
}

#[test]
fn sweep_tables_and_figures_render_end_to_end() {
    let sweep = small_sweep();

    // Table I renders the baseline.
    let t1 = table1(&[&sweep]);
    assert!(t1.contains("Stereo Matching"));

    // Table II blocks contain one row per point and plausible %-diffs.
    let perf = table2_performance(&sweep, "A");
    assert_eq!(perf.lines().count(), 2 + 4, "header+sep+4 rows");
    assert!(perf.contains("baseline"));
    let mem = table2_memory(&sweep, "A");
    assert!(mem.contains("A3"));

    // Figures: normalized series peak at 1.0, CSV is rectangular.
    let labels = x_labels(&sweep);
    let series = figure2_series(&sweep);
    for s in &series {
        let max = s.values.iter().copied().fold(f64::MIN, f64::max);
        assert!((max - 1.0).abs() < 1e-9, "{} max {max}", s.name);
        assert_eq!(s.values.len(), labels.len());
    }
    let csv = figure_csv(&labels, &series);
    assert_eq!(csv.lines().count(), labels.len() + 1);
    let plot = figure_ascii(&labels, &series);
    assert!(plot.contains("legend"));

    // The monotone story of the paper: time grows, power falls.
    let times: Vec<f64> = sweep.all_rows().iter().map(|r| r.time_s).collect();
    assert!(times.windows(2).all(|w| w[1] >= w[0] * 0.95), "{times:?}");
    assert!(sweep.row(121.0).unwrap().time_s > sweep.baseline.time_s * 2.0);
}

#[test]
fn seeded_sweeps_are_reproducible() {
    let a = small_sweep();
    let b = small_sweep();
    assert_eq!(a.baseline.time_s, b.baseline.time_s);
    for (ra, rb) in a.rows.iter().zip(&b.rows) {
        assert_eq!(ra.time_s, rb.time_s);
        assert_eq!(ra.l2_misses, rb.l2_misses);
        assert_eq!(ra.energy_j, rb.energy_j);
    }
}
