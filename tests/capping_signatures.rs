//! End-to-end integration: the paper's Table II qualitative signatures
//! must emerge from full runs of the real applications on the capped
//! machine.

use capsim::apps::{SireRsm, StereoMatching, Workload};
use capsim::node::{Machine, MachineConfig, PowerCap, RunStats};

/// Test-scale runs are short; tighten the control loop so the BMC reaches
/// equilibrium within a fraction of the run (the paper's runs were
/// minutes against a ~second-scale loop — same ratio).
fn config(seed: u64) -> MachineConfig {
    let mut c = MachineConfig::e5_2680(seed);
    c.control_period_us = 10.0;
    c.meter_window_s = 0.0002;
    c
}

fn run(app: &mut dyn Workload, cap: Option<f64>, seed: u64) -> (RunStats, f64) {
    let mut m = Machine::new(config(seed));
    if let Some(c) = cap {
        m.set_power_cap(Some(PowerCap::new(c).unwrap()));
    }
    let out = app.run(&mut m);
    (m.finish_run(), out.checksum)
}

#[test]
fn time_and_energy_grow_as_the_cap_tightens() {
    // Conclusion of §IV-A: "as the power cap is lowered, in general, the
    // execution time of both applications increases as does total energy".
    for mk in [
        || Box::new(SireRsm::test_scale(1)) as Box<dyn Workload>,
        || Box::new(StereoMatching::test_scale(1)) as Box<dyn Workload>,
    ] {
        let (base, _) = run(mk().as_mut(), None, 1);
        let (mid, _) = run(mk().as_mut(), Some(135.0), 1);
        let (low, _) = run(mk().as_mut(), Some(121.0), 1);
        assert!(mid.wall_s > base.wall_s, "{} vs {}", mid.wall_s, base.wall_s);
        assert!(low.wall_s > mid.wall_s * 1.5, "{} vs {}", low.wall_s, mid.wall_s);
        assert!(low.energy_j > base.energy_j, "capping wastes energy");
        assert!(mid.avg_power_w < base.avg_power_w);
        assert!(low.avg_power_w < mid.avg_power_w);
    }
}

#[test]
fn results_are_bit_identical_across_caps() {
    // The cap changes *when*, never *what*: checksums must match.
    let mut checksums = Vec::new();
    for cap in [None, Some(140.0), Some(122.0)] {
        let (_, ck) = run(&mut SireRsm::test_scale(3), cap, 3);
        checksums.push(ck);
    }
    assert!(checksums.windows(2).all(|w| w[0] == w[1]), "{checksums:?}");
}

#[test]
fn committed_instructions_are_cap_invariant_executed_vary_slightly() {
    // §IV: "for each application the number of instructions committed is
    // identical. In contrast … the number of instructions executed differ.
    // However, these differences are small."
    let (base, _) = run(&mut StereoMatching::test_scale(5), None, 5);
    let (low, _) = run(&mut StereoMatching::test_scale(5), Some(124.0), 5);
    assert_eq!(base.counters.instructions_committed, low.counters.instructions_committed);
    let gap = (low.counters.instructions_executed as f64
        - base.counters.instructions_executed as f64)
        .abs()
        / base.counters.instructions_executed as f64;
    assert!(gap < 0.01, "executed-instruction drift {gap}");
}

#[test]
fn frequency_pins_at_pmin_for_the_lowest_caps() {
    // Table II rows A7–A9/B7–B9: average frequency reads 1200 MHz even as
    // execution time keeps growing — duty cycling is invisible to the
    // APERF-style meter.
    let (low, _) = run(&mut StereoMatching::test_scale(7), Some(121.0), 7);
    assert!(
        low.avg_freq_mhz < 1320.0,
        "frequency reading {} must pin near P-min",
        low.avg_freq_mhz
    );
    assert!(low.bmc_stats.2 > 0, "121 W is below the floor: exceptions logged");
    assert!(
        low.avg_power_w > 121.0,
        "measured power {} stays above the unreachable cap",
        low.avg_power_w
    );
}

/// Test-scale instances with the full 20 MiB L3 would never thrash, so
/// this config shrinks the L3 to 1 MiB / 16-way while keeping everything
/// else E5-like. The paper-scale relationships are preserved:
/// mid-scale stereo (≈650 KiB working set) is resident at full ways and
/// thrashes the 4-way gated L3, while mid-scale SIRE (≈1.1 MiB streaming)
/// exceeds the L3 either way.
fn sig_config(seed: u64) -> MachineConfig {
    let mut c = config(seed);
    c.hierarchy.l3.size_bytes = 1 << 20;
    c.hierarchy.l3.ways = 16;
    c
}

fn mid_stereo(seed: u64) -> StereoMatching {
    let mut s = StereoMatching::test_scale(seed);
    s.width = 224;
    s.height = 224;
    s.sweeps = 6;
    s
}

fn mid_sire(seed: u64) -> SireRsm {
    let mut s = SireRsm::test_scale(seed);
    s.width = 416;
    s.height = 320;
    s
}

fn run_sig(app: &mut dyn Workload, cap: Option<f64>, seed: u64) -> RunStats {
    let mut m = Machine::new(sig_config(seed));
    if let Some(c) = cap {
        m.set_power_cap(Some(PowerCap::new(c).unwrap()));
    }
    app.run(&mut m);
    m.finish_run()
}

#[test]
fn stereo_l2_l3_misses_blow_up_but_sire_stays_flat() {
    // The central §IV-B contrast between the two applications.
    let s_base = run_sig(&mut mid_stereo(9), None, 9);
    let s_low = run_sig(&mut mid_stereo(9), Some(121.0), 9);
    let stereo_l3_ratio = s_low.mem.l3_misses as f64 / s_base.mem.l3_misses.max(1) as f64;
    assert!(stereo_l3_ratio > 1.8, "stereo L3 blow-up: {stereo_l3_ratio}");

    let r_base = run_sig(&mut mid_sire(9), None, 9);
    let r_low = run_sig(&mut mid_sire(9), Some(121.0), 9);
    let sire_l3_ratio = r_low.mem.l3_misses as f64 / r_base.mem.l3_misses.max(1) as f64;
    assert!(
        sire_l3_ratio < stereo_l3_ratio / 1.5,
        "streaming SIRE ({sire_l3_ratio}) must be less way-sensitive than stereo ({stereo_l3_ratio})"
    );
}

#[test]
fn itlb_misses_explode_at_the_lowest_caps_for_both_apps() {
    for mk in [
        || Box::new(mid_sire(11)) as Box<dyn Workload>,
        || Box::new(mid_stereo(11)) as Box<dyn Workload>,
    ] {
        let base = run_sig(mk().as_mut(), None, 11);
        let low = run_sig(mk().as_mut(), Some(121.0), 11);
        let ratio = low.mem.itlb_misses as f64 / base.mem.itlb_misses.max(1) as f64;
        assert!(ratio > 4.0, "iTLB blow-up expected, got {ratio}");
        // DTLB, by contrast, stays within a few percent (Table II).
        let dtlb = low.mem.dtlb_misses as f64 / base.mem.dtlb_misses.max(1) as f64;
        assert!(dtlb < 1.3, "dTLB must stay flat, got {dtlb}");
    }
}
