//! The fleet engine's determinism contract: a parallel run is
//! bit-identical to a serial run of the same configuration — per-node
//! seeds, order-preserving parallel step phase, serial control barrier.

use capsim::ipmi::FaultSpec;
use capsim::prelude::*;

fn build(parallel: bool, faults: FaultSpec, seed: u64) -> FleetReport {
    FleetBuilder::new()
        .nodes(16)
        .epochs(5)
        .budget_w(16.0 * 132.0)
        .policy(AllocationPolicy::ProportionalToDemand)
        .faults(faults)
        .dead_node(11)
        .seed(seed)
        .parallel(parallel)
        .build()
        .run()
}

#[test]
fn parallel_run_is_bit_identical_to_serial_run() {
    let serial = build(false, FaultSpec::lossy(0.05), 9);
    let parallel = build(true, FaultSpec::lossy(0.05), 9);
    // Bit-identical: same structured report AND same rendered bytes.
    assert_eq!(serial, parallel);
    assert_eq!(serial.render(), parallel.render());
}

#[test]
fn repeated_runs_reproduce_exactly() {
    let a = build(true, FaultSpec::none(), 3);
    let b = build(true, FaultSpec::none(), 3);
    assert_eq!(a.render(), b.render());
}

#[test]
fn different_seeds_diverge() {
    // Same topology, different seed: fault schedules and workload phases
    // shift, so the rendered trajectories must not collide.
    let a = build(true, FaultSpec::lossy(0.05), 1);
    let b = build(true, FaultSpec::lossy(0.05), 2);
    assert_ne!(a.render(), b.render());
}

#[test]
fn policies_are_deterministic_too() {
    for policy in [
        AllocationPolicy::Uniform,
        AllocationPolicy::ProportionalToDemand,
        AllocationPolicy::Priority((0..16u8).map(|i| i % 4).collect()),
    ] {
        let serial = FleetBuilder::new()
            .nodes(16)
            .epochs(3)
            .policy(policy.clone())
            .seed(5)
            .parallel(false)
            .build()
            .run();
        let parallel = FleetBuilder::new()
            .nodes(16)
            .epochs(3)
            .policy(policy)
            .seed(5)
            .parallel(true)
            .build()
            .run();
        assert_eq!(serial.render(), parallel.render());
    }
}
