//! The fleet engine's determinism contract: serial, parallel and ANY
//! shard topology are bit-identical for the same configuration —
//! per-node seeds, shard-local wire phases whose outcomes the root
//! absorbs in registration order, serial control barrier. The telemetry
//! event stream is part of the contract: same seed ⇒ byte-identical
//! JSONL, pinned by a committed golden file
//! (`CAPSIM_BLESS=1 cargo test --test fleet_determinism` to regenerate).

use std::path::PathBuf;

use capsim::ipmi::FaultSpec;
use capsim::prelude::*;
use proptest::prelude::*;

fn build_sharded(
    parallel: bool,
    faults: FaultSpec,
    seed: u64,
    shards: Option<usize>,
) -> FleetReport {
    let mut b = FleetBuilder::new()
        .nodes(16)
        .epochs(5)
        .budget_w(16.0 * 132.0)
        .policy(AllocationPolicy::ProportionalToDemand)
        .faults(faults)
        .dead_node(11)
        .seed(seed)
        .parallel(parallel);
    if let Some(k) = shards {
        b = b.shards(k);
    }
    b.build().run()
}

fn build(parallel: bool, faults: FaultSpec, seed: u64) -> FleetReport {
    build_sharded(parallel, faults, seed, None)
}

#[test]
fn parallel_run_is_bit_identical_to_serial_run() {
    let serial = build(false, FaultSpec::lossy(0.05), 9);
    let parallel = build(true, FaultSpec::lossy(0.05), 9);
    // Bit-identical: same structured report AND same rendered bytes.
    assert_eq!(serial, parallel);
    assert_eq!(serial.render(), parallel.render());
}

#[test]
fn repeated_runs_reproduce_exactly() {
    let a = build(true, FaultSpec::none(), 3);
    let b = build(true, FaultSpec::none(), 3);
    assert_eq!(a.render(), b.render());
}

#[test]
fn shard_topology_is_result_invariant() {
    // The shard count only decides how wire work is split across group
    // managers; the automatic default keys off the worker pool, so it
    // MUST be result-invariant or results would vary by machine.
    let auto = build(true, FaultSpec::lossy(0.05), 9);
    for k in [1, 2, 7, 16] {
        let sharded = build_sharded(true, FaultSpec::lossy(0.05), 9, Some(k));
        assert_eq!(auto, sharded, "shards={k} changed the report");
        assert_eq!(auto.render(), sharded.render());
    }
}

#[test]
fn different_seeds_diverge() {
    // Same topology, different seed: fault schedules and workload phases
    // shift, so the rendered trajectories must not collide.
    let a = build(true, FaultSpec::lossy(0.05), 1);
    let b = build(true, FaultSpec::lossy(0.05), 2);
    assert_ne!(a.render(), b.render());
}

/// A small observed fleet with enough going on to exercise every event
/// source: lossy links (retries/timeouts), a dead node (health
/// transitions), caps pushed every epoch (DCMI + rung traffic).
fn observed_events_jsonl_sharded(parallel: bool, shards: Option<usize>) -> String {
    let mut b = FleetBuilder::new()
        .nodes(4)
        .epochs(3)
        .budget_w(4.0 * 128.0)
        .faults(FaultSpec::lossy(0.08))
        .dead_node(2)
        .seed(42)
        .parallel(parallel)
        .observe(true);
    if let Some(k) = shards {
        b = b.shards(k);
    }
    b.build().run().obs.expect("observed run").events_jsonl()
}

fn observed_events_jsonl(parallel: bool) -> String {
    observed_events_jsonl_sharded(parallel, None)
}

#[test]
fn event_log_is_byte_identical_across_serial_and_parallel_runs() {
    let serial = observed_events_jsonl(false);
    let parallel = observed_events_jsonl(true);
    assert!(!serial.is_empty(), "observed run must record events");
    assert_eq!(serial, parallel, "telemetry must obey the determinism contract");
}

#[test]
fn event_log_is_byte_identical_across_shard_counts() {
    // The golden stream is pinned against the automatic shard count;
    // every explicit topology must produce the same bytes.
    let auto = observed_events_jsonl(true);
    for k in [1, 2, 3, 4] {
        let sharded = observed_events_jsonl_sharded(true, Some(k));
        assert_eq!(auto, sharded, "shards={k} changed the event stream");
    }
}

proptest! {
    // Full-fleet simulations are expensive in debug mode; a handful of
    // random topologies over the whole configuration space is plenty.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// For ANY fleet shape, fault rate and seed, every shard topology —
    /// degenerate (1), uneven (2, 7), one-node shards (N) — yields an
    /// identical report and byte-identical event stream.
    #[test]
    fn any_shard_topology_is_byte_identical(
        nodes in 2usize..10,
        epochs in 1u32..4,
        seed in 0u64..1_000_000,
        loss_pct in 0u32..12,
    ) {
        let run = |shards: Option<usize>| {
            let mut b = FleetBuilder::new()
                .nodes(nodes)
                .epochs(epochs)
                .seed(seed)
                .faults(FaultSpec::lossy(f64::from(loss_pct) / 100.0))
                .parallel(true)
                .observe(true);
            if let Some(k) = shards {
                b = b.shards(k);
            }
            b.build().run()
        };
        let auto = run(None);
        let auto_events = auto.obs.as_ref().expect("observed").events_jsonl();
        for k in [1, 2, 7, nodes] {
            let sharded = run(Some(k));
            let events = sharded.obs.as_ref().expect("observed").events_jsonl();
            prop_assert_eq!(&events, &auto_events, "shards={} changed the events", k);
            prop_assert_eq!(sharded, auto.clone(), "shards={} changed the report", k);
        }
    }
}

#[test]
fn event_log_matches_the_committed_golden_file() {
    let actual = observed_events_jsonl(true);
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/fleet_events.jsonl");
    if std::env::var("CAPSIM_BLESS").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &actual).unwrap();
        eprintln!("blessed event log at {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); generate with CAPSIM_BLESS=1 cargo test --test fleet_determinism",
            path.display()
        )
    });
    if expected != actual {
        let diff_line = expected
            .lines()
            .zip(actual.lines())
            .position(|(e, a)| e != a)
            .map(|i| format!("first differing line: {}", i + 1))
            .unwrap_or_else(|| {
                format!(
                    "line counts differ: {} vs {}",
                    expected.lines().count(),
                    actual.lines().count()
                )
            });
        panic!(
            "telemetry event log diverged from the committed golden file ({diff_line}).\n\
             If this change is intentional, re-bless with CAPSIM_BLESS=1."
        );
    }
}

#[test]
fn policies_are_deterministic_too() {
    for policy in [
        AllocationPolicy::Uniform,
        AllocationPolicy::ProportionalToDemand,
        AllocationPolicy::Priority((0..16u8).map(|i| i % 4).collect()),
    ] {
        let serial = FleetBuilder::new()
            .nodes(16)
            .epochs(3)
            .policy(policy.clone())
            .seed(5)
            .parallel(false)
            .build()
            .run();
        let parallel = FleetBuilder::new()
            .nodes(16)
            .epochs(3)
            .policy(policy)
            .seed(5)
            .parallel(true)
            .build()
            .run();
        assert_eq!(serial.render(), parallel.render());
    }
}
