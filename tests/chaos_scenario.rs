//! The chaos harness's acceptance scenario, end to end: sensor dropout
//! at t=10 s (failsafe rung floor), BMC firmware crash at t=20 s
//! (watchdog reboot after 3 s), full recovery by t=30 s — with every
//! invariant green and the merged event log pinned by a committed golden
//! file (`CAPSIM_BLESS=1 cargo test --test chaos_scenario` to
//! regenerate).

use std::path::PathBuf;

use capsim::chaos::{check, run_scenario, ChaosScenario};
use capsim::obs::{EventKind, RungCause};

#[test]
fn scripted_scenario_holds_every_invariant() {
    let report = check(&ChaosScenario::scripted());
    assert!(report.ok(), "invariant violations: {:?}", report.violations);

    // Both faults and both guardrail reactions are visible in the merged
    // observability log, in simulated-time order.
    let obs = report.outcome.report.obs.as_ref().expect("scripted scenario observes");
    let find = |pred: &dyn Fn(&capsim::obs::Event) -> bool| obs.events.iter().find(|e| pred(e));
    let dropout = find(&|e| {
        e.node == Some(1) && matches!(e.kind, EventKind::FaultInjected { fault: "sensor_dropout" })
    })
    .expect("dropout injection event");
    assert!((dropout.t_s - 10.0).abs() < 0.5, "dropout lands at t=10s, got {}", dropout.t_s);
    let failsafe =
        find(&|e| e.node == Some(1) && matches!(e.kind, EventKind::FailsafeEngaged { .. }))
            .expect("failsafe engages on the dead sensor");
    assert!(failsafe.t_s > dropout.t_s);
    assert!(
        find(&|e| e.node == Some(1)
            && matches!(e.kind, EventKind::RungChange { cause: RungCause::Failsafe, .. }))
        .is_some(),
        "failsafe pins the rung floor"
    );
    assert!(
        find(&|e| e.node == Some(1) && matches!(e.kind, EventKind::FailsafeReleased))
            .is_some_and(|e| e.t_s > 15.0),
        "failsafe releases after the sensor returns at t=15s"
    );
    let crash = find(&|e| e.node == Some(2) && matches!(e.kind, EventKind::BmcCrash { .. }))
        .expect("crash event");
    assert!((crash.t_s - 20.0).abs() < 0.5);
    let reboot = find(&|e| e.node == Some(2) && matches!(e.kind, EventKind::WatchdogReboot { .. }))
        .expect("watchdog reboot event");
    assert!(reboot.t_s > 22.9 && reboot.t_s < 24.0, "3s dead time, got t={}", reboot.t_s);

    // Recovery by t=30 s: node 2 is healthy, re-capped, and its SEL
    // carries the FirmwareRebooted paper trail (which the wire audit saw
    // too, or the SEL-completeness invariant would have tripped).
    let n2 = &report.outcome.report.summaries[2];
    assert_eq!(format!("{:?}", n2.health), "Healthy");
    assert!(n2.final_cap_w.is_some());
    assert!(report.outcome.sel_truth[2]
        .iter()
        .any(|e| e.event == capsim::ipmi::SelEventType::FirmwareRebooted));
}

#[test]
fn chaos_event_log_matches_the_committed_golden_file() {
    let outcome = run_scenario(&ChaosScenario::scripted(), true);
    let actual = outcome.report.obs.as_ref().expect("scripted scenario observes").events_jsonl();
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/chaos_events.jsonl");
    if std::env::var("CAPSIM_BLESS").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &actual).unwrap();
        eprintln!("blessed chaos event log at {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); generate with CAPSIM_BLESS=1 cargo test --test chaos_scenario",
            path.display()
        )
    });
    if expected != actual {
        let diff_line = expected
            .lines()
            .zip(actual.lines())
            .position(|(e, a)| e != a)
            .map(|i| format!("first differing line: {}", i + 1))
            .unwrap_or_else(|| {
                format!(
                    "line counts differ: {} vs {}",
                    expected.lines().count(),
                    actual.lines().count()
                )
            });
        panic!(
            "chaos event log diverged from the committed golden file ({diff_line}).\n\
             If this change is intentional, re-bless with CAPSIM_BLESS=1."
        );
    }
}

#[test]
fn chaos_replay_is_byte_identical_across_serial_and_parallel() {
    let scenario = ChaosScenario::scripted();
    let parallel = run_scenario(&scenario, true);
    let serial = run_scenario(&scenario, false);
    assert_eq!(parallel.fingerprint(), serial.fingerprint());
}
