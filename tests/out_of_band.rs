//! Integration: the full out-of-band management path — DCM ↔ IPMI wire ↔
//! BMC ↔ throttle ladder — against live machines running on threads.

use capsim::apps::kernels::AluBurst;
use capsim::apps::Workload;
use capsim::dcm::{AllocationPolicy, Dcm, NodeId};
use capsim::ipmi::LanChannel;
use capsim::node::MachineBuilder;
use capsim::prelude::*;

fn fast(seed: u64) -> Machine {
    MachineBuilder::e5_2680().seed(seed).control_period_us(10.0).meter_window_s(0.0002).build()
}

#[test]
fn dcm_caps_a_running_node_over_ipmi() {
    let (mgr, bmc_port) = LanChannel::pair();
    let t = std::thread::spawn(move || {
        let mut m = fast(21);
        m.attach_bmc_port(bmc_port);
        AluBurst { iters: 12_000_000 }.run(&mut m);
        m.finish_run()
    });
    let mut dcm = Dcm::new();
    let node = dcm.register_link("n0", mgr);
    // Wait until the node is reporting busy power, then cap it.
    let mut reading = 0;
    for _ in 0..500 {
        reading = dcm.read_power(node).expect("node up").current_w;
        if reading > 140 {
            break;
        }
        std::thread::yield_now();
    }
    assert!(reading > 140, "node should be drawing busy power, read {reading}");
    dcm.cap_node(node, 135.0).expect("cap accepted");
    let limit = dcm.node_limit(node).expect("limit readable");
    assert_eq!(limit.limit_w, 135);
    let stats = t.join().expect("node thread");
    // The run started uncapped and ended capped: max above, final below.
    assert!(stats.max_power_w > 148.0, "max {}", stats.max_power_w);
    assert!(stats.bmc_stats.0 > 0, "BMC escalated after the cap arrived");
}

#[test]
fn group_budget_throttles_every_node_in_the_rack() {
    let mut dcm = Dcm::new();
    let mut threads = Vec::new();
    let mut ids: Vec<NodeId> = Vec::new();
    for i in 0..3u64 {
        let (mgr, bmc_port) = LanChannel::pair();
        ids.push(dcm.register_link(format!("n{i}"), mgr));
        threads.push(std::thread::spawn(move || {
            let mut m = fast(30 + i);
            m.attach_bmc_port(bmc_port);
            AluBurst { iters: 10_000_000 }.run(&mut m);
            m.finish_run()
        }));
    }
    // Let them ramp up, then apply a tight group budget.
    for &id in &ids {
        for _ in 0..500 {
            if dcm.read_power(id).map(|r| r.current_w).unwrap_or(0) > 140 {
                break;
            }
            std::thread::yield_now();
        }
    }
    let caps =
        dcm.apply_group_budget(3.0 * 135.0, &AllocationPolicy::Uniform).expect("budget applied");
    let expected: Vec<(NodeId, f64)> = ids.iter().map(|&id| (id, 135.0)).collect();
    assert_eq!(caps, expected);
    for t in threads {
        let s = t.join().expect("node");
        assert!(s.bmc_stats.0 > 0, "every node throttled");
    }
}

#[test]
fn inband_and_ipmi_caps_agree() {
    // Capping via Machine::set_power_cap and via the DCMI path must yield
    // the same equilibrium (the BMC is the single control point).
    let run_inband = || {
        let mut m = fast(40);
        m.set_power_cap(Some(PowerCap::new(134.0).unwrap()));
        AluBurst { iters: 4_000_000 }.run(&mut m);
        m.finish_run()
    };
    let run_oob = || {
        let (mgr, bmc_port) = LanChannel::pair();
        let t = std::thread::spawn(move || {
            let mut m = fast(40);
            m.attach_bmc_port(bmc_port);
            // Give the manager a moment to land the cap before the run
            // starts in earnest: poll-loop on the first control ticks.
            AluBurst { iters: 4_000_000 }.run(&mut m);
            m.finish_run()
        });
        let mut dcm = Dcm::new();
        let node = dcm.register_link("n", mgr);
        dcm.cap_node(node, 134.0).expect("cap");
        t.join().expect("node")
    };
    let a = run_inband();
    let b = run_oob();
    // Equilibria match within the dithering band (the OOB run spent its
    // first instants uncapped, so allow slack).
    assert!((a.avg_power_w - b.avg_power_w).abs() < 4.0, "{} vs {}", a.avg_power_w, b.avg_power_w);
    assert!(a.avg_freq_mhz < 2690.0 && b.avg_freq_mhz < 2690.0);
}
