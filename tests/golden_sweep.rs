//! Golden determinism snapshot of the quick cap sweep.
//!
//! Runs `ExperimentConfig::quick()` sweeps of both paper workloads at
//! test scale and compares every `RunMetrics` field bit-for-bit against
//! a committed snapshot. This pins the simulator's observable behaviour:
//! any change to the memory hierarchy, power ladder, or control loop
//! that alters a single counter or metric fails this test.
//!
//! Regenerate (after an *intentional* behaviour change) with:
//!
//! ```text
//! CAPSIM_BLESS=1 cargo test --test golden_sweep
//! ```
//!
//! Floats are serialized as IEEE-754 bit patterns (with a readable
//! decimal alongside), so equality is exact, not epsilon-based.

use capsim_apps::{SireRsm, StereoMatching, Workload};
use capsim_core::{CapSweep, ExperimentConfig, RunMetrics, SweepResult};
use std::fmt::Write as _;
use std::path::PathBuf;

fn snapshot_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/quick_sweep.txt")
}

fn fmt_f64(out: &mut String, name: &str, v: f64) {
    writeln!(out, "{name} = {:016x}  # {v:?}", v.to_bits()).unwrap();
}

fn fmt_metrics(out: &mut String, label: &str, m: &RunMetrics) {
    writeln!(out, "[{label}]").unwrap();
    match m.cap_w {
        Some(c) => fmt_f64(out, "cap_w", c),
        None => writeln!(out, "cap_w = none").unwrap(),
    }
    fmt_f64(out, "avg_power_w", m.avg_power_w);
    fmt_f64(out, "energy_j", m.energy_j);
    fmt_f64(out, "avg_freq_mhz", m.avg_freq_mhz);
    fmt_f64(out, "time_s", m.time_s);
    fmt_f64(out, "l1_misses", m.l1_misses);
    fmt_f64(out, "l2_misses", m.l2_misses);
    fmt_f64(out, "l3_misses", m.l3_misses);
    fmt_f64(out, "dtlb_misses", m.dtlb_misses);
    fmt_f64(out, "itlb_misses", m.itlb_misses);
    fmt_f64(out, "instr_committed", m.instr_committed);
    fmt_f64(out, "instr_executed", m.instr_executed);
    fmt_f64(out, "dram_accesses", m.dram_accesses);
    fmt_f64(out, "quality", m.quality);
    writeln!(out).unwrap();
}

fn fmt_sweep(out: &mut String, s: &SweepResult) {
    fmt_metrics(out, &format!("{} baseline", s.workload), &s.baseline);
    for row in &s.rows {
        let cap = row.cap_w.expect("capped rows carry a cap");
        fmt_metrics(out, &format!("{} cap {cap}W", s.workload), row);
    }
}

fn render_quick_sweeps() -> String {
    let sweep = CapSweep::new(ExperimentConfig::quick());
    let stereo = sweep.run("Stereo Matching", |seed| {
        Box::new(StereoMatching::test_scale(seed)) as Box<dyn Workload>
    });
    let sire =
        sweep.run("SIRE/RSM", |seed| Box::new(SireRsm::test_scale(seed)) as Box<dyn Workload>);
    let mut out = String::new();
    writeln!(
        out,
        "# capsim golden snapshot: ExperimentConfig::quick() sweeps, test-scale workloads.\n\
         # Exact IEEE-754 bits per metric; regenerate with CAPSIM_BLESS=1 (see tests/golden_sweep.rs).\n"
    )
    .unwrap();
    fmt_sweep(&mut out, &stereo);
    fmt_sweep(&mut out, &sire);
    out
}

/// First mismatching line of two renderings, for a readable failure.
fn first_diff(expected: &str, actual: &str) -> String {
    for (i, (e, a)) in expected.lines().zip(actual.lines()).enumerate() {
        if e != a {
            return format!("line {}:\n  expected: {e}\n  actual:   {a}", i + 1);
        }
    }
    format!(
        "line counts differ: expected {}, actual {}",
        expected.lines().count(),
        actual.lines().count()
    )
}

#[test]
fn quick_sweep_metrics_match_committed_snapshot() {
    let actual = render_quick_sweeps();
    let path = snapshot_path();
    if std::env::var("CAPSIM_BLESS").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &actual).unwrap();
        eprintln!("blessed snapshot at {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing snapshot {} ({e}); generate with CAPSIM_BLESS=1 cargo test --test golden_sweep",
            path.display()
        )
    });
    assert!(
        expected == actual,
        "quick-sweep metrics diverged from the committed snapshot.\n{}\n\
         If this change is intentional, re-bless with CAPSIM_BLESS=1.",
        first_diff(&expected, &actual)
    );
}

/// The snapshot must be independent of host parallelism: re-rendering in
/// the same process (different rayon scheduling) yields identical bytes.
#[test]
fn quick_sweep_is_deterministic_across_reruns() {
    assert_eq!(render_quick_sweeps(), render_quick_sweeps());
}
