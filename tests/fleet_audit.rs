//! Integration: fleet monitoring and SEL-based violation auditing across
//! live machines — the data-center-side view of the paper's "measured
//! power above the cap" rows.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use capsim::apps::kernels::AluBurst;
use capsim::apps::Workload;
use capsim::dcm::{read_sel, violation_count, Dcm, FleetMonitor};
use capsim::ipmi::{LanChannel, SelEventType};
use capsim::node::{MachineBuilder, PowercapFs};
use capsim::prelude::*;

fn fast(seed: u64) -> Machine {
    MachineBuilder::e5_2680().seed(seed).control_period_us(10.0).meter_window_s(2e-4).build()
}

#[test]
fn unreachable_cap_leaves_a_sel_paper_trail_readable_over_ipmi() {
    let (mgr, bmc_port) = LanChannel::pair();
    let stop = Arc::new(AtomicBool::new(false));
    let stop_node = stop.clone();
    let t = std::thread::spawn(move || {
        let mut m = fast(51);
        m.attach_bmc_port(bmc_port);
        AluBurst { iters: 9_000_000 }.run(&mut m);
        let stats = m.finish_run();
        // Stay answerable out-of-band after the run, like a real BMC.
        while !stop_node.load(Ordering::Relaxed) {
            m.service_bmc();
            std::thread::yield_now();
        }
        stats
    });
    let mut dcm = Dcm::new();
    // Short correction time so the scaled run accrues violations (the
    // default 1 s matches paper-scale runs, not millisecond tests).
    dcm.correction_ms = 5;
    let node = dcm.register_link("n0", mgr);
    // A 118 W cap is below the throttle floor: violations must accrue.
    dcm.cap_node(node, 118.0).expect("cap accepted");
    let mut monitor = FleetMonitor::for_dcm(&dcm, 64);
    for _ in 0..200 {
        monitor.poll(&mut dcm).expect("node up");
        std::thread::yield_now();
    }
    assert_eq!(dcm.health(node), NodeHealth::Healthy);
    // The monitor saw the node pinned near its floor, above the cap.
    let mean = monitor.history(node).mean().expect("samples");
    assert!(mean > 118.0, "floor sits above the cap: {mean}");
    assert_eq!(monitor.hotspots(118.0), vec![node]);

    let sel = read_sel(&mut dcm, node).expect("SEL readable");
    assert!(
        sel.iter().any(|e| e.event == SelEventType::PowerLimitConfigured),
        "configuration logged"
    );
    assert!(violation_count(&sel) > 0, "sustained violations logged: {sel:?}");
    stop.store(true, Ordering::Relaxed);
    let stats = t.join().expect("node");
    assert!(stats.bmc_stats.2 > 0, "BMC counted exceptions too");
}

#[test]
fn in_band_powercap_and_out_of_band_dcmi_agree_on_the_same_node() {
    // Drive a node with the Linux-powercap-style interface, then check
    // DCM's view of it over IPMI: one BMC, two front ends.
    let mut m = fast(52);
    {
        let mut fs = PowercapFs::new(&mut m);
        fs.write("constraint_0_power_limit_uw", "33000000").unwrap(); // ≈134 W node
    }
    let r = m.alloc(1 << 20);
    let block = m.code_block(96, 24);
    for i in 0..300_000u64 {
        m.exec_block(&block);
        m.load(r.at((i * 64) % (1 << 20)));
    }
    let s = m.finish_run();
    let cap = m.power_cap().expect("cap active").watts;
    assert!((cap - 134.0).abs() < 1.0, "translated node cap {cap}");
    assert!(s.avg_power_w < cap + 2.0, "enforced: {}", s.avg_power_w);
    // The in-band path logged configuration the same way (SEL is one).
    let energy_uj: u64 = PowercapFs::new(&mut m).read("energy_uj").unwrap().parse().unwrap();
    assert!(energy_uj > 0, "RAPL energy advanced");
}
