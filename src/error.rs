//! One error hierarchy for the whole workspace.
//!
//! Each layer keeps its own error type ([`capsim_ipmi::IpmiError`] for
//! the wire, [`capsim_dcm::DcmError`] for node-attributed management
//! failures, [`capsim_node::PowercapError`] for the in-band sysfs
//! model); [`CapsimError`] unifies them so applications can `?` across
//! layers.

use std::fmt;

use capsim_dcm::DcmError;
use capsim_ipmi::IpmiError;
use capsim_node::{InvalidPowerCap, PowercapError};
use capsim_traffic::InvalidClientSpec;

/// Any failure surfaced by the capsim stack.
#[derive(Clone, Debug, PartialEq)]
pub enum CapsimError {
    /// An IPMI wire-protocol or transport failure (no node attribution —
    /// the caller was talking to a single port).
    Ipmi(IpmiError),
    /// A management-plane failure attributed to a fleet node.
    Dcm(DcmError),
    /// An in-band powercap-sysfs failure.
    Powercap(PowercapError),
    /// A rejected power-cap value (non-finite or non-positive watts).
    InvalidCap(InvalidPowerCap),
    /// A rejected closed-loop client configuration (bad timeout, backoff
    /// or AIMD parameters).
    Traffic(InvalidClientSpec),
}

impl fmt::Display for CapsimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CapsimError::Ipmi(e) => write!(f, "ipmi: {e}"),
            CapsimError::Dcm(e) => write!(f, "dcm: {e}"),
            CapsimError::Powercap(e) => write!(f, "powercap: {e}"),
            CapsimError::InvalidCap(e) => write!(f, "cap: {e}"),
            CapsimError::Traffic(e) => write!(f, "traffic: {e}"),
        }
    }
}

impl std::error::Error for CapsimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CapsimError::Ipmi(e) => Some(e),
            CapsimError::Dcm(e) => Some(e),
            CapsimError::Powercap(e) => Some(e),
            CapsimError::InvalidCap(e) => Some(e),
            CapsimError::Traffic(e) => Some(e),
        }
    }
}

impl From<IpmiError> for CapsimError {
    fn from(e: IpmiError) -> Self {
        CapsimError::Ipmi(e)
    }
}

impl From<DcmError> for CapsimError {
    fn from(e: DcmError) -> Self {
        CapsimError::Dcm(e)
    }
}

impl From<PowercapError> for CapsimError {
    fn from(e: PowercapError) -> Self {
        CapsimError::Powercap(e)
    }
}

impl From<InvalidPowerCap> for CapsimError {
    fn from(e: InvalidPowerCap) -> Self {
        CapsimError::InvalidCap(e)
    }
}

impl From<InvalidClientSpec> for CapsimError {
    fn from(e: InvalidClientSpec) -> Self {
        CapsimError::Traffic(e)
    }
}
