//! `capsim` — facade crate for the capsim workspace.
//!
//! Re-exports every subsystem and offers a [`prelude`] for examples and
//! downstream users. See `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for the paper-reproduction index.
//!
//! # Quickstart
//!
//! Build one capped machine with [`node::MachineBuilder`], or a whole
//! managed fleet with [`dcm::FleetBuilder`]:
//!
//! ```
//! use capsim::prelude::*;
//!
//! let report = FleetBuilder::new()
//!     .nodes(4)
//!     .epochs(3)
//!     .budget_w(400.0)
//!     .build()
//!     .run();
//! assert_eq!(report.nodes, 4);
//! ```

pub use capsim_apps as apps;
pub use capsim_chaos as chaos;
pub use capsim_core as study;
pub use capsim_counters as counters;
pub use capsim_cpu as cpu;
pub use capsim_dcm as dcm;
pub use capsim_ipmi as ipmi;
pub use capsim_mem as mem;
pub use capsim_node as node;
pub use capsim_obs as obs;
pub use capsim_policy as policy;
pub use capsim_power as power;
pub use capsim_traffic as traffic;

pub mod error;

pub use error::CapsimError;

/// Commonly used items, one `use` away.
pub mod prelude {
    pub use crate::error::CapsimError;
    pub use capsim_apps::{SireRsm, StereoMatching, Workload};
    pub use capsim_chaos::{ChaosScenario, FaultKind, FaultPlan, InvariantConfig, SoakConfig};
    pub use capsim_core::{CapSweep, ExperimentConfig, RunMetrics};
    pub use capsim_dcm::{
        train_rl, AllocationPolicy, Dcm, Fleet, FleetBuilder, FleetReport, NodeHealth, NodeId,
        RlTrainConfig, RlTrainReport,
    };
    pub use capsim_ipmi::{FaultSpec, RetryPolicy, Transact};
    pub use capsim_mem::{HierarchyConfig, MemReconfig};
    pub use capsim_node::{Machine, MachineBuilder, MachineConfig, PowerCap};
    pub use capsim_obs::{Event, EventKind, EventLog, Metrics, MetricsSnapshot, Obs};
    pub use capsim_policy::{
        CapDecision, CapPolicy, CapPolicySpec, GovernorCapPolicy, GovernorConfig, LadderCapPolicy,
        NodeCapView, QTable, RlCapPolicy, RlConfig,
    };
    pub use capsim_traffic::{
        AimdSpec, ArrivalCurve, BrownoutSpec, ClientSpec, EmergencyConfig, InvalidClientSpec,
        TrafficSpec,
    };
}
