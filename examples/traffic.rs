//! Traffic tour: serve an open-loop request trace through a power-capped
//! fleet, then ride the flash crowd through a full power emergency.
//!
//! Run with `cargo run --example traffic --release`.

use capsim::chaos::run_scenario;
use capsim::prelude::*;
use capsim::traffic::EmergencyConfig;

fn main() {
    println!("== a datacenter-mix fleet serving 30k rps/node (hot nodes 4x)");
    let spec = TrafficSpec::constant(30_000.0).datacenter_mix(true);
    let report = FleetBuilder::new()
        .nodes(9)
        .epochs(4)
        .seed(11)
        .observe(true)
        .workload(spec.workload())
        .build()
        .run();
    let t = report.traffic().expect("traffic series");
    let e = report.energy();
    println!(
        "   {} arrivals, {} completed, {} shed | p50 {:.4} ms, p99 {:.4} ms, p999 {:.4} ms",
        t.arrivals, t.completed, t.shed, t.p50_ms, t.p99_ms, t.p999_ms
    );
    println!(
        "   goodput {:.0} rps, {:.4} J total, {:.1} W/node average",
        t.goodput_rps, e.energy_j, e.avg_node_power_w
    );

    println!("\n== the same trace down the cap ladder: tail latency vs budget");
    println!("   {:<14} {:>10} {:>12} {:>8}", "budget (W/node)", "p99 (ms)", "goodput", "shed");
    for budget in [150.0, 125.0, 112.0] {
        let report = FleetBuilder::new()
            .nodes(9)
            .epochs(4)
            .seed(11)
            .budget_w(budget * 9.0)
            .observe(true)
            .workload(TrafficSpec::constant(30_000.0).datacenter_mix(true).workload())
            .build()
            .run();
        let t = report.traffic().expect("traffic series");
        println!("   {budget:<14} {:>10.4} {:>12.0} {:>8}", t.p99_ms, t.goodput_rps, t.shed);
    }

    println!("\n== the power emergency: diurnal + flash crowd, 118 W/node,");
    println!("   sensor dropout and a BMC crash mid-run");
    let cfg = EmergencyConfig::headline(8, 8, 42);
    let outcome = run_scenario(&cfg.scenario(), true);
    let t = outcome.report.traffic().expect("traffic series");
    let e = outcome.report.energy();
    let spj = outcome.report.slo_violations_per_joule().expect("headline metric");
    println!(
        "   {} arrivals, {} completed, {} shed, {} SLO violations",
        t.arrivals, t.completed, t.shed, t.slo_violations
    );
    println!(
        "   {:.4} J spent -> {spj:.2} SLO violations per joule (p99 {:.4} ms)",
        e.energy_j, t.p99_ms
    );
}
