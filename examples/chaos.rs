//! The chaos harness end to end: inject node-level faults into a
//! managed fleet, watch the BMC guardrails react, and check every
//! invariant afterwards.
//!
//! The scripted scenario is the acceptance storyline from the fault
//! model in DESIGN.md §10: node 1's power sensor drops out at t=10 s
//! (the BMC failsafe pins the rung floor until readings return at
//! t=15 s), node 2's BMC firmware crashes at t=20 s (the watchdog
//! reboots it 3 s later; the persistent cap and SEL survive), and the
//! whole fleet is healthy again by t=30 s. `check` replays the run
//! serially and verifies the event stream is byte-identical.
//!
//! ```sh
//! cargo run --example chaos --release
//! ```

use capsim::chaos::{check, soak, ChaosScenario, SoakConfig};
use capsim::obs::EventKind;

fn main() {
    let scenario = ChaosScenario::scripted();
    println!("== chaos scenario: {} ==", scenario.name);
    for w in &scenario.plan.windows {
        println!(
            "  plan: node {} {:<16} [{:>5.1} s, {:>5.1} s)",
            w.node,
            w.kind.name(),
            w.start_s,
            w.end_s
        );
    }

    let report = check(&scenario);

    // The fault/guardrail storyline, straight from the merged obs log.
    let obs = report.outcome.report.obs.as_ref().expect("scripted scenario observes");
    println!("\n-- fault and guardrail events --");
    for e in &obs.events {
        let interesting = matches!(
            e.kind,
            EventKind::FaultInjected { .. }
                | EventKind::FaultCleared { .. }
                | EventKind::FailsafeEngaged { .. }
                | EventKind::FailsafeReleased
                | EventKind::BmcCrash { .. }
                | EventKind::WatchdogReboot { .. }
                | EventKind::HealthChange { .. }
        );
        if interesting {
            println!("  t={:>6.2}s node={:?} {:?}", e.t_s, e.node, e.kind);
        }
    }

    println!("\n-- recovery --");
    for s in &report.outcome.report.summaries {
        println!(
            "  {}: health={:?} cap={:?} avg={:.1} W, {} SEL cap-violations",
            s.name, s.health, s.final_cap_w, s.avg_power_w, s.sel_violations
        );
    }

    println!("\n-- invariants --");
    if report.ok() {
        println!("  all green: cap compliance, energy conservation, SEL audit, replay");
    } else {
        for v in &report.violations {
            println!("  VIOLATION {}", v.to_json());
        }
    }

    // A short randomized soak on top: seeded fault plans, same checks.
    let soaked = soak(&SoakConfig { runs: 4, nodes: 3, epochs: 8, seed: 7 });
    match &soaked.failure {
        None => println!("\nsoak: {} randomized runs, all green", soaked.runs),
        Some(f) => println!("\nsoak: FAILED, reproducer:\n{}", f.to_json()),
    }
}
