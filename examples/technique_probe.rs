//! Future-work demo: answer the paper's open question — *which* power-
//! management techniques is the firmware using right now? — with
//! user-level microbenchmarks plus PAPI-style counters.
//!
//! ```sh
//! cargo run --example technique_probe --release
//! ```

use capsim::counters::{Event, EventSet};
use capsim::prelude::*;
use capsim::study::TechniqueDetector;

fn demo_config(seed: u64) -> MachineConfig {
    // Demo instances simulate only a few milliseconds, so run the BMC
    // control loop proportionally faster than the real firmware's period
    // (the paper's runs were minutes against a ~second-scale loop).
    let mut cfg = MachineConfig::e5_2680(seed);
    cfg.control_period_us = 5.0;
    cfg.meter_window_s = 1e-4;
    cfg
}

fn main() {
    for cap in [None, Some(145.0), Some(130.0), Some(121.0)] {
        let mut m = Machine::new(demo_config(9));
        if let Some(c) = cap {
            m.set_power_cap(Some(PowerCap::new(c).unwrap()));
        }

        // Drive the BMC to equilibrium with representative work, counting
        // it with the PAPI-style event set as the paper did.
        let mut set = EventSet::new();
        set.add(Event::TotIns).unwrap();
        set.add(Event::TotCyc).unwrap();
        set.add(Event::L2Tcm).unwrap();
        set.add(Event::TlbIm).unwrap();
        set.start(&m).unwrap();
        let block = m.code_block(96, 24);
        let buf = m.alloc(8 << 20);
        for i in 0..400_000u64 {
            m.exec_block(&block);
            m.load(buf.at((i * 64) % (8 << 20)));
        }
        let counts = set.stop(&m).unwrap();

        let detected = TechniqueDetector::default().probe(&mut m);
        let cap_str = cap.map_or("none".to_string(), |c| format!("{c:.0} W"));
        println!("== cap: {cap_str} ==");
        println!(
            "  warmup counters: {} instr, {} cycles, {} L2 misses, {} iTLB misses",
            counts[0], counts[1], counts[2], counts[3]
        );
        println!(
            "  estimated freq {:.0} MHz, duty {:.2}, L2 {:.1} cyc, DRAM {:.0} ns",
            detected.est_freq_mhz, detected.est_duty, detected.est_l2_cycles, detected.est_dram_ns
        );
        let mut active = Vec::new();
        if detected.dvfs {
            active.push("DVFS");
        }
        if detected.duty_cycling {
            active.push("T-state duty cycling");
        }
        if detected.l2_gating {
            active.push("L2 way gating");
        }
        if detected.l3_gating {
            active.push("L3 way gating");
        }
        if detected.itlb_shrink {
            active.push("ITLB shrink");
        }
        if detected.mem_gating {
            active.push("memory gating");
        }
        println!(
            "  techniques detected: {}\n",
            if active.is_empty() { "none".to_string() } else { active.join(", ") }
        );
    }
}
