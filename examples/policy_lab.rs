//! Policy lab tour: train the RL backend, then race all three capping
//! policies on the same budget-tight fleet and print the frontier.
//!
//! Run with `cargo run --example policy_lab --release`.

use capsim::prelude::*;

fn main() {
    println!("== training the tabular-RL backend (deterministic, seed 42)");
    let trained = train_rl(&RlTrainConfig::quick(42));
    println!(
        "   {} episodes, best #{}, {} Q-updates, digest {:016x}",
        trained.episodes.len(),
        trained.best_episode,
        trained.updates,
        trained.q_digest
    );

    let specs = [
        CapPolicySpec::Ladder(AllocationPolicy::Uniform),
        CapPolicySpec::Governor(GovernorConfig::default()),
        CapPolicySpec::Rl(trained.q.clone()),
    ];

    println!("\n== frontier: 4 nodes x 8 epochs at 120 W/node, identical seeds");
    println!("   {:<10} {:>12} {:>14} {:>10}", "policy", "energy (J)", "freq (MHz)", "wall (ms)");
    for spec in &specs {
        let report = FleetBuilder::new()
            .nodes(4)
            .epochs(8)
            .budget_w(480.0)
            .seed(7)
            .cap_policy(spec.build())
            .build()
            .run();
        let energy: f64 = report.summaries.iter().map(|s| s.energy_j).sum();
        let freq =
            report.summaries.iter().map(|s| s.avg_freq_mhz).sum::<f64>() / report.nodes as f64;
        let wall = report.summaries.iter().map(|s| s.wall_s).fold(0.0, f64::max);
        println!("   {:<10} {energy:>12.4} {freq:>14.0} {:>10.3}", spec.name(), wall * 1e3);
    }

    println!("\n== same fleet, observed: what a policy plan looks like");
    let report = FleetBuilder::new()
        .nodes(2)
        .epochs(2)
        .budget_w(240.0)
        .seed(7)
        .observe(true)
        .cap_policy(CapPolicySpec::Governor(GovernorConfig::default()).build())
        .build()
        .run();
    let obs = report.obs.expect("observed run");
    for e in obs.events.iter().filter(|e| matches!(e.kind, EventKind::PolicyPlan { .. })) {
        println!("   {}", e.to_json());
    }
}
