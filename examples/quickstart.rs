//! Quickstart: build a node, cap it, run a workload, read the results.
//!
//! ```sh
//! cargo run --example quickstart --release
//! ```

use capsim::prelude::*;

fn demo_machine(seed: u64) -> Machine {
    // Demo instances simulate only a few milliseconds, so run the BMC
    // control loop proportionally faster than the real firmware's period
    // (the paper's runs were minutes against a ~second-scale loop).
    MachineBuilder::e5_2680().seed(seed).control_period_us(5.0).meter_window_s(1e-4).build()
}

fn main() {
    // A machine with the paper's platform configuration (dual-socket
    // E5-2680 node, 16 P-states, 32K/256K/20M caches) and a fixed seed,
    // capped at 135 W as Intel DCM would do over IPMI.
    let mut machine = MachineBuilder::e5_2680()
        .seed(42)
        .control_period_us(5.0)
        .meter_window_s(1e-4)
        .cap_w(135.0)
        .build();

    // Run the paper's stereo-matching application (test scale: finishes
    // in a couple of seconds of host time).
    let mut app = StereoMatching::test_scale(42);
    let output = app.run(&mut machine);
    let stats = machine.finish_run();

    println!("workload            : {}", app.name());
    println!("disparity accuracy  : MAE {:.2} px", 1.0 / output.quality - 1.0);
    println!("simulated time      : {:.4} s", stats.wall_s);
    println!("average node power  : {:.1} W (cap 135 W)", stats.avg_power_w);
    println!("energy              : {:.2} J", stats.energy_j);
    println!("average frequency   : {:.0} MHz", stats.avg_freq_mhz);
    println!("L2 misses           : {}", stats.mem.l2_misses);
    println!("iTLB misses         : {}", stats.mem.itlb_misses);
    let (esc, deesc, exc) = stats.bmc_stats;
    println!("BMC activity        : {esc} escalations, {deesc} de-escalations, {exc} exceptions");

    // The same workload uncapped, for contrast.
    let mut machine = demo_machine(42);
    let mut app = StereoMatching::test_scale(42);
    app.run(&mut machine);
    let base = machine.finish_run();
    println!(
        "\nversus uncapped     : {:.4} s at {:.1} W (capping cost {:+.0} % time)",
        base.wall_s,
        base.avg_power_w,
        (stats.wall_s / base.wall_s - 1.0) * 100.0
    );
}
