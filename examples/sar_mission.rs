//! Fielded-system scenario from the paper's introduction: a generator-
//! powered platform (UAV ground station) forms SAR images under a power
//! budget with a soft real-time deadline.
//!
//! For each candidate power allocation this example runs SIRE/RSM on the
//! capped node and reports whether time-to-solution stays within the
//! mission's tolerated delay — the paper's conclusion (1): "for fielded
//! systems there is a range of power caps that may result in acceptable
//! increases in execution time".
//!
//! ```sh
//! cargo run --example sar_mission --release
//! ```

use capsim::apps::SireRsm;
use capsim::prelude::*;

fn demo_config(seed: u64) -> MachineConfig {
    // Demo instances simulate only a few milliseconds, so run the BMC
    // control loop proportionally faster than the real firmware's period
    // (the paper's runs were minutes against a ~second-scale loop).
    let mut cfg = MachineConfig::e5_2680(seed);
    cfg.control_period_us = 5.0;
    cfg.meter_window_s = 1e-4;
    cfg
}

fn mission_scale(seed: u64) -> SireRsm {
    // 4x the unit-test pixels: a couple of simulated milliseconds, enough
    // for the controller to settle at every cap.
    let mut s = SireRsm::test_scale(seed);
    s.width = 192;
    s.height = 160;
    s
}

fn main() {
    // The mission tolerates a 50 % slowdown in image formation.
    const TOLERATED_SLOWDOWN: f64 = 1.5;

    let run = |cap: Option<f64>| {
        let mut m = Machine::new(demo_config(7));
        if let Some(w) = cap {
            m.set_power_cap(Some(PowerCap::new(w).unwrap()));
        }
        let mut app = mission_scale(7);
        let out = app.run(&mut m);
        (m.finish_run(), out)
    };

    let (base, base_out) = run(None);
    println!(
        "uncapped baseline: {:.4} s at {:.1} W (image contrast {:.1})\n",
        base.wall_s, base.avg_power_w, base_out.quality
    );
    println!("cap (W) | power (W) | time (s) | slowdown | energy (J) | verdict");
    println!("--------|-----------|----------|----------|------------|--------");
    for cap in [160.0, 150.0, 145.0, 140.0, 135.0, 130.0, 125.0, 120.0] {
        let (s, out) = run(Some(cap));
        let slowdown = s.wall_s / base.wall_s;
        let ok = slowdown <= TOLERATED_SLOWDOWN;
        println!(
            "{cap:>7.0} | {:>9.1} | {:>8.4} | {:>7.2}x | {:>10.2} | {}",
            s.avg_power_w,
            s.wall_s,
            slowdown,
            s.energy_j,
            if ok { "MEETS deadline" } else { "too slow" }
        );
        // The image must stay correct regardless of the cap.
        assert!((out.checksum - base_out.checksum).abs() < 1e-6, "capping must not change results");
    }
    println!(
        "\nReading: caps down to the mid-130s trade watts for tolerable\n\
         delay; below that the deep throttling techniques make\n\
         time-to-solution explode — budget the generator accordingly."
    );
}
