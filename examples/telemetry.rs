//! Telemetry tour: the `capsim-obs` layer end to end.
//!
//! Runs a small observed fleet under a power budget with lossy links and
//! one dead node, then prints what the observability layer captured:
//! the merged, time-ordered event stream (rung escalations, DCMI
//! traffic, SEL appends, transport retries, budget reallocations) and
//! the fleet-wide metrics snapshot (counters, gauges, the node-power
//! histogram).
//!
//! ```sh
//! cargo run --example telemetry --release
//! ```

use capsim::ipmi::FaultSpec;
use capsim::prelude::*;
use capsim::study::report::event_log_markdown;

fn main() {
    let nodes = 4;
    let report = FleetBuilder::new()
        .nodes(nodes)
        .epochs(4)
        .budget_w(nodes as f64 * 128.0)
        .policy(AllocationPolicy::ProportionalToDemand)
        .faults(FaultSpec::lossy(0.08))
        .dead_node(2)
        .seed(42)
        .observe(true) // <- everything below comes from this one switch
        .build()
        .run();

    let obs = report.obs.as_ref().expect("observed run");

    println!("# Fleet run\n");
    println!("{}", report.render());

    println!("# Event log (last 20 of {} events)\n", obs.events.len());
    println!("{}", event_log_markdown(&obs.events, 20));

    println!("# Metrics\n");
    println!("{}", obs.metrics.render());

    // The raw streams are export-ready for external tooling:
    let jsonl = obs.events_jsonl();
    let csv = obs.events_csv();
    println!("# Exports\n");
    println!("JSONL: {} lines, first = {}", jsonl.lines().count(), jsonl.lines().next().unwrap());
    println!("CSV  : {} lines, header = {}", csv.lines().count(), csv.lines().next().unwrap());
}
