//! Closed-loop tour: clients that time out and retry, queues that fail
//! over across the fleet, and the SLO-aware cap policy — with the
//! serial-vs-parallel byte-equality check run inline.
//!
//! Run with `cargo run --example closed_loop --release`.

use capsim::chaos::run_scenario;
use capsim::policy::{CapPolicySpec, SloConfig};
use capsim::traffic::EmergencyConfig;

fn main() {
    println!("== the retry storm: the power emergency with closed-loop clients");
    println!("   (timeout -> capped-backoff retries) and barrier failover");
    let cfg = EmergencyConfig::retry_storm(8, 8, 42);
    let scenario = cfg.scenario();

    let serial = run_scenario(&scenario, false);
    let parallel = run_scenario(&scenario, true);
    assert_eq!(
        serial.fingerprint(),
        parallel.fingerprint(),
        "retry storm must replay byte-identically serial vs parallel"
    );
    println!("   serial and parallel runs are byte-identical");

    let t = serial.report.traffic().expect("traffic series");
    println!(
        "   {} arrivals ({} retries after {} client timeouts), {} completed",
        t.arrivals, t.retries, t.client_timeouts, t.completed
    );
    println!(
        "   {} shed, {} re-homed by failover, {} still in flight",
        t.shed, t.failover, t.in_flight
    );
    assert_eq!(
        t.arrivals,
        t.completed + t.shed + t.in_flight,
        "every arrival completes, is shed, or is in flight"
    );
    println!("   books close exactly: arrivals == completed + shed + in_flight");

    println!("\n== the same storm under the SLO-aware cap policy");
    println!("   (group budget flows toward the longest latency tail)");
    let slo = EmergencyConfig::retry_storm(8, 8, 42)
        .with_policy(CapPolicySpec::Slo(SloConfig::default()));
    let outcome = run_scenario(&slo.scenario(), true);
    let t2 = outcome.report.traffic().expect("traffic series");
    let spj = outcome.report.slo_violations_per_joule().expect("headline metric");
    println!(
        "   {} completed (p99 {:.4} ms), {} SLO violations, {spj:.2} violations/J",
        t2.completed, t2.p99_ms, t2.slo_violations
    );
}
