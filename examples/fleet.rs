//! A managed fleet in lock-step simulated time: N nodes stepped in
//! parallel between DCM control barriers, over a lossy IPMI fabric.
//!
//! One node's link is dead from the start; DCM marks it unresponsive
//! after repeated retry failures and reallocates the group budget over
//! the nodes that still answer.
//!
//! ```sh
//! cargo run --example fleet --release
//! ```

use capsim::ipmi::FaultSpec;
use capsim::prelude::*;

fn main() {
    let report = FleetBuilder::new()
        .nodes(12)
        .epochs(6)
        .budget_w(1500.0)
        .policy(AllocationPolicy::ProportionalToDemand)
        .faults(FaultSpec::lossy(0.05)) // 5% drop + 5% corruption per frame
        .dead_node(7) // this BMC never answers
        .seed(42)
        .parallel(true)
        .build()
        .run();

    print!("{}", report.render());
    println!(
        "\n{} of {} nodes responsive; budget {} W reallocated over the survivors.",
        report.responsive(),
        report.nodes,
        report.budget_w
    );
}
