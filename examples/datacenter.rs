//! The product context of §II: Intel DCM managing a rack of nodes
//! out-of-band.
//!
//! Three simulated nodes run different workloads on their own threads;
//! the Data Center Manager talks to each BMC over the IPMI channel (DCMI
//! *Get Power Reading* / *Set Power Limit* / *Activate*), reads demand,
//! and divides a group budget proportionally. The OS/workload side never
//! sees any of it — capping is enforced by each node's BMC.
//!
//! ```sh
//! cargo run --example datacenter --release
//! ```

use capsim::apps::kernels::{AluBurst, PointerChase, StreamTriad};
use capsim::apps::Workload;
use capsim::ipmi::LanChannel;
use capsim::prelude::*;

fn main() {
    let mut dcm = Dcm::new();
    let mut threads = Vec::new();
    let mut ids: Vec<NodeId> = Vec::new();

    // Boot three nodes with different personalities.
    let workloads: Vec<(&str, Box<dyn Workload + Send>)> = vec![
        ("node-compute", Box::new(AluBurst { iters: 9_000_000 })),
        ("node-stream", Box::new(StreamTriad { elems: 6 << 20, passes: 4 })),
        ("node-latency", Box::new(PointerChase { elems: 2 << 20, hops: 1_200_000, seed: 3 })),
    ];
    for (i, (name, mut w)) in workloads.into_iter().enumerate() {
        let (mgr_port, bmc_port) = LanChannel::pair();
        ids.push(dcm.register_link(name, mgr_port));
        threads.push(std::thread::spawn(move || {
            let mut m = MachineBuilder::e5_2680().seed(100 + i as u64).bmc_port(bmc_port).build();
            let _ = w.run(&mut m);
            let s = m.finish_run();
            (name, s)
        }));
    }

    // Give the nodes a moment to start reporting, then budget the group.
    std::thread::sleep(std::time::Duration::from_millis(300));
    let readings: Vec<f64> = ids
        .iter()
        .map(|&id| dcm.read_power(id).map(|r| r.current_w as f64).unwrap_or(0.0))
        .collect();
    println!("initial demand: {readings:?} W");

    let budget = 390.0;
    let caps = dcm
        .apply_group_budget(budget, &AllocationPolicy::ProportionalToDemand)
        .expect("nodes reachable over IPMI");
    println!("group budget {budget} W -> caps:");
    for &(id, cap_w) in &caps {
        let limit = dcm.node_limit(id).expect("limit stored");
        println!(
            "  {}: cap {cap_w} W (limit {} W, correction {} ms, {:?})",
            dcm.node_name(id),
            limit.limit_w,
            limit.correction_ms,
            dcm.health(id)
        );
    }

    for t in threads {
        let (name, s) = t.join().expect("node thread");
        println!(
            "{name}: ran {:.3} s at {:.1} W avg (min {:.1} / max {:.1}), energy {:.1} J",
            s.wall_s, s.avg_power_w, s.min_power_w, s.max_power_w, s.energy_j
        );
    }
    println!(
        "\nThe group's total draw is steered toward the budget while busy\n\
         nodes keep proportionally more headroom — DCM's \"safeguard\n\
         against over utilization of constrained capacity\" (§II-A)."
    );
}
