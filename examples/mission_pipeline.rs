//! A complete payload pipeline under a power budget: SAR image formation
//! (SIRE/RSM) followed by CFAR target detection, on one capped node —
//! the battlefield scenario the paper's introduction motivates, with the
//! modern RAPL view and the control-loop trace alongside the wall meter.
//!
//! ```sh
//! cargo run --example mission_pipeline --release
//! ```

use capsim::apps::{CfarDetect, SireRsm};
use capsim::power::RaplDomain;
use capsim::prelude::*;

fn demo_config(seed: u64) -> MachineConfig {
    // Demo instances simulate only a few milliseconds, so run the BMC
    // control loop proportionally faster than the real firmware's period
    // (the paper's runs were minutes against a ~second-scale loop).
    let mut cfg = MachineConfig::e5_2680(seed);
    cfg.control_period_us = 5.0;
    cfg.meter_window_s = 1e-4;
    cfg
}

fn main() {
    let cap = 138.0;
    let mut m = Machine::new(demo_config(21));
    m.enable_trace(200_000);
    m.set_power_cap(Some(PowerCap::new(cap).unwrap()));

    // Phase 1: form the image.
    let t0 = m.now_s();
    let mut sar = SireRsm::test_scale(21);
    let image = sar.run(&mut m);
    let t_form = m.now_s() - t0;

    // Phase 2: detect targets.
    let t1 = m.now_s();
    let mut cfar = CfarDetect::test_scale(21);
    let detections = cfar.run(&mut m);
    let t_detect = m.now_s() - t1;

    let stats = m.finish_run();
    println!("== mission pipeline under a {cap} W cap ==");
    println!("image formation     : {:.4} s (contrast {:.1})", t_form, image.quality);
    println!(
        "target detection    : {:.4} s ({} detections, score {:.2})",
        t_detect, detections.items, detections.quality
    );
    println!("node power          : {:.1} W avg (cap {cap} W)", stats.avg_power_w);
    println!("wall energy         : {:.2} J", stats.energy_j);
    println!(
        "RAPL breakdown      : package {:.2} J, PP0 {:.2} J, DRAM {:.2} J",
        stats.rapl.joules(RaplDomain::Package),
        stats.rapl.joules(RaplDomain::Pp0),
        stats.rapl.joules(RaplDomain::Dram)
    );
    let trace = m.trace().expect("tracing enabled");
    println!(
        "control activity    : {} samples, {} rung moves, rungs visited {:?}",
        trace.len(),
        trace.rung_changes(),
        trace.rungs_visited()
    );
    if !m.sel().is_empty() {
        println!("SEL entries         :");
        for e in m.sel().iter() {
            println!("  #{:<3} t={:>8} ms  {:?} ({} W)", e.id, e.timestamp_ms, e.event, e.datum);
        }
    }
    println!(
        "\nThe pipeline's two phases throttle differently: formation is\n\
         partially memory-bound (DVFS hurts it less), detection is a\n\
         cache-friendly stencil (DVFS hurts it fully) — the per-phase\n\
         times quantify what a mission planner must budget."
    );
}
