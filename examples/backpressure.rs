//! Backpressure tour: the same overload emergency served twice — once by
//! retry-only clients that amplify their own storm, once by the full
//! robustness stack (AIMD rate backoff + priority brownout + circuit
//! breakers) — with determinism checked inline: serial vs parallel in
//! process, then re-exec'd under `CAPSIM_THREADS` ∈ {1, 4} (the rayon
//! shim resolves its pool once per process, so thread-count invariance
//! needs a child process per point).
//!
//! Run with `cargo run --example backpressure --release`.

use std::hash::{DefaultHasher, Hash, Hasher};

use capsim::chaos::run_scenario;
use capsim::node::workload::traffic_keys as keys;
use capsim::traffic::EmergencyConfig;

const NODES: usize = 4;
const EPOCHS: u32 = 12;
const SEED: u64 = 42;

fn scenario(backpressure: bool) -> capsim::chaos::ChaosScenario {
    if backpressure {
        EmergencyConfig::backpressure_storm(NODES, EPOCHS, SEED).scenario()
    } else {
        EmergencyConfig::retry_storm(NODES, EPOCHS, SEED).scenario()
    }
}

/// The fingerprint is a multi-line digest; hash it to one token so a
/// child process can hand it back on stdout.
fn digest(fingerprint: &str) -> u64 {
    let mut h = DefaultHasher::new();
    fingerprint.hash(&mut h);
    h.finish()
}

/// Child entry: print the hashed parallel-run fingerprint of the
/// backpressure scenario and exit. The parent sets `CAPSIM_THREADS`
/// before spawning.
fn run_child() {
    let outcome = run_scenario(&scenario(true), true);
    println!("{}", digest(&outcome.fingerprint()));
}

/// Re-exec this example with `CAPSIM_THREADS` set and read back the
/// child's hashed fingerprint.
fn fingerprint_with_threads(threads: usize) -> u64 {
    let exe = std::env::current_exe().expect("own path");
    let out = std::process::Command::new(exe)
        .env("CAPSIM_THREADS", threads.to_string())
        .arg("--fingerprint")
        .output()
        .expect("spawn fingerprint child");
    assert!(
        out.status.success(),
        "fingerprint child failed (threads={threads}): {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("child output").trim().parse().expect("hashed fingerprint")
}

fn main() {
    if std::env::args().nth(1).as_deref() == Some("--fingerprint") {
        run_child();
        return;
    }

    println!("== the same emergency, twice: retry-only vs the robustness stack");
    let retry_only = run_scenario(&scenario(false), true).report;
    let damped = run_scenario(&scenario(true), true).report;

    let rt = retry_only.traffic().expect("retry-only records traffic");
    let dt = damped.traffic().expect("backpressure records traffic");
    println!(
        "   retry-only  : {} arrivals, {} retries, {} shed, p99 {:.4} ms",
        rt.arrivals, rt.retries, rt.shed, rt.p99_ms
    );
    println!(
        "   backpressure: {} arrivals, {} retries, {} shed, p99 {:.4} ms",
        dt.arrivals, dt.retries, dt.shed, dt.p99_ms
    );
    assert!(
        dt.arrivals < rt.arrivals && dt.retries < rt.retries,
        "the AIMD population must thin its own offered load"
    );
    let m = damped.final_rate_multiplier().expect("AIMD gauge recorded");
    println!("   AIMD multiplier converged at {m:.3}");

    let p = damped.priority().expect("per-class accounting");
    println!(
        "   brownout shed {} requests; per-class shed [{}, {}, {}] (critical → background)",
        p.brownout_shed, p.shed[0], p.shed[1], p.shed[2]
    );
    for report in [&retry_only, &damped] {
        let p = report.priority().expect("per-class accounting");
        for c in 0..keys::CLASSES {
            assert_eq!(
                p.arrivals[c],
                p.completed[c] + p.shed[c] + p.in_flight[c],
                "class {c} books must close exactly"
            );
        }
    }
    println!("   per-class books close exactly in both fleets");

    println!("\n== determinism: serial vs parallel, then CAPSIM_THREADS twins");
    let serial = run_scenario(&scenario(true), false);
    let parallel = run_scenario(&scenario(true), true);
    assert_eq!(
        serial.fingerprint(),
        parallel.fingerprint(),
        "backpressure storm must replay byte-identically serial vs parallel"
    );
    println!("   serial and parallel runs are byte-identical");
    let fp1 = fingerprint_with_threads(1);
    let fp4 = fingerprint_with_threads(4);
    assert_eq!(fp1, fp4, "thread count must not change the replay");
    assert_eq!(
        fp1,
        digest(&parallel.fingerprint()),
        "child fingerprints must match the in-process run"
    );
    println!("   CAPSIM_THREADS=1 and =4 children land on the same fingerprint");
}
