//! `capsim-bench` — harness binaries and Criterion benches that
//! regenerate every table and figure of the paper.
//!
//! Binaries (one per artifact; see DESIGN.md §4 and EXPERIMENTS.md):
//!
//! | binary | artifact |
//! |---|---|
//! | `table1` | Table I (baselines) |
//! | `table2` | Table II (full cap sweep, both apps) |
//! | `fig1_2` | Figures 1–2 (normalized series) |
//! | `fig3_4` | Figures 3–4 (memory mountain, no cap vs 120 W) |
//! | `ablation_ladder` | X1: full ladder vs DVFS-only |
//! | `ablation_race` | X2: race-to-idle vs crawl |
//! | `ablation_turbo` | X7: Turbo Boost × capping |
//! | `ext_multicore` | X3: multi-core stereo under caps |
//! | `ext_detector` | X4: technique detection vs ground truth |
//! | `ext_phased` | X5: unpredictable workload under caps |
//! | `ext_amenability` | X6: amenability score vs measured slowdown |
//! | `ext_stlb` | X8: STLB fidelity check |
//!
//! Scale control: set `CAPSIM_SCALE=test` for a fast smoke run (minutes →
//! seconds) and `CAPSIM_RUNS=n` to override the per-point run count.

pub mod paper;

use capsim_apps::{SireRsm, StereoMatching};
use capsim_core::{CapSweep, ExperimentConfig, LadderKind};

/// Harness-wide scale selection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// The scale EXPERIMENTS.md documents (minutes of host time).
    Paper,
    /// Small instances for smoke testing (seconds).
    Test,
}

impl Scale {
    /// Read `CAPSIM_SCALE` (default: paper).
    pub fn from_env() -> Scale {
        match std::env::var("CAPSIM_SCALE").as_deref() {
            Ok("test") => Scale::Test,
            _ => Scale::Paper,
        }
    }
}

/// The paper's §III experiment configuration, honouring `CAPSIM_RUNS`
/// and the scale (test scale uses fewer runs by default).
pub fn experiment_config(scale: Scale) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::paper();
    cfg.runs_per_point = match scale {
        Scale::Paper => 5,
        Scale::Test => 2,
    };
    if scale == Scale::Test {
        // Test-scale instances simulate milliseconds; tighten the control
        // loop proportionally so equilibria are reached (see runner docs).
        cfg.control_period_us = 5.0;
    }
    if let Ok(r) = std::env::var("CAPSIM_RUNS") {
        if let Ok(r) = r.parse::<usize>() {
            cfg.runs_per_point = r.max(1);
        }
    }
    cfg
}

/// Build the SIRE/RSM factory at the given scale.
pub fn sire_factory(scale: Scale) -> impl Fn(u64) -> Box<dyn capsim_apps::Workload> + Sync {
    move |seed| -> Box<dyn capsim_apps::Workload> {
        Box::new(match scale {
            Scale::Paper => SireRsm::paper_scale(seed),
            Scale::Test => SireRsm::test_scale(seed),
        })
    }
}

/// Build the Stereo Matching factory at the given scale.
pub fn stereo_factory(scale: Scale) -> impl Fn(u64) -> Box<dyn capsim_apps::Workload> + Sync {
    move |seed| -> Box<dyn capsim_apps::Workload> {
        Box::new(match scale {
            Scale::Paper => StereoMatching::paper_scale(seed),
            Scale::Test => StereoMatching::test_scale(seed),
        })
    }
}

/// Run both applications' sweeps (the bulk of Table II / Figures 1–2).
pub fn run_both_sweeps(
    scale: Scale,
    ladder: LadderKind,
) -> (capsim_core::SweepResult, capsim_core::SweepResult) {
    let mut cfg = experiment_config(scale);
    cfg.ladder = ladder;
    let sweep = CapSweep::new(cfg);
    let stereo = sweep.run("Stereo Matching", stereo_factory(scale));
    let sire = sweep.run("SIRE/RSM", sire_factory(scale));
    (stereo, sire)
}

/// Render a side-by-side comparison of a paper %-diff row and ours.
pub fn comparison_row(label: &str, paper: &[i64], ours: &[f64]) -> String {
    let p: Vec<String> = paper.iter().map(|v| format!("{v:>7}")).collect();
    let o: Vec<String> = ours.iter().map(|v| format!("{v:>7.0}")).collect();
    format!("{label:<22} paper: {}\n{:<22} ours : {}\n", p.join(" "), "", o.join(" "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_env_parsing_defaults_to_paper() {
        // Cannot mutate the environment safely in parallel tests; just
        // check the default path.
        assert_eq!(Scale::from_env(), Scale::Paper);
    }

    #[test]
    fn experiment_config_matches_paper_protocol() {
        let c = experiment_config(Scale::Paper);
        assert_eq!(c.caps_w.len(), 9);
        assert_eq!(c.caps_w[0], 160.0);
        assert_eq!(c.caps_w[8], 120.0);
    }

    #[test]
    fn comparison_row_formats_both_lines() {
        let s = comparison_row("time %", &[3, 0, 9], &[2.9, 0.4, 8.7]);
        assert!(s.contains("paper:"));
        assert!(s.contains("ours :"));
    }
}
