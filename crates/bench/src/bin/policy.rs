//! Policy-lab bench: the energy/performance frontier of the capping
//! backends, plus the layer's two safety gates.
//!
//! Usage: `cargo run -p capsim-bench --bin policy --release [-- out.json]`
//! (`CAPSIM_SCALE=test` for a fast smoke run.)
//!
//! Three measurements feed `BENCH_policy.json`:
//!
//! * **RL training determinism** — the Q-table is trained twice from the
//!   same seed; the run aborts unless both replays land on the same
//!   digest (`deterministic` in the artifact),
//! * **the frontier** — every backend (ladder, governor, trained RL)
//!   drives an identical budget-tight fleet; each contributes one
//!   (energy_j, avg_freq_mhz) point, the paper's §IV energy-vs-
//!   performance-retention trade at the policy level,
//! * **adversarial chaos** — every backend runs the scripted fault
//!   scenario (sensor dropout + BMC crash) and must come out with all
//!   invariants green (`invariant_violations` must be 0).

use std::time::Instant;

use capsim_bench::Scale;
use capsim_chaos::{check, ChaosScenario};
use capsim_dcm::{train_rl, FleetBuilder, RlTrainConfig};
use capsim_policy::CapPolicySpec;

/// One frontier point: a backend's whole-fleet energy and the mean
/// measured frequency its nodes retained under the cap.
fn frontier_point(spec: &CapPolicySpec, nodes: usize, epochs: u32, seed: u64) -> (f64, f64, f64) {
    let report = FleetBuilder::new()
        .nodes(nodes)
        .epochs(epochs)
        // Feasible (above the 110 W/node floor) but binding (below the
        // ~150 W uncapped draw): the group half genuinely divides, the
        // node half genuinely throttles.
        .budget_w(120.0 * nodes as f64)
        .seed(seed)
        .cap_policy(spec.build())
        .build()
        .run();
    let energy_j: f64 = report.summaries.iter().map(|s| s.energy_j).sum();
    let freq = report.summaries.iter().map(|s| s.avg_freq_mhz).sum::<f64>()
        / report.summaries.len() as f64;
    let wall_s = report.summaries.iter().map(|s| s.wall_s).fold(0.0, f64::max);
    (energy_j, freq, wall_s)
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_policy.json".into());
    let (train_cfg, nodes, epochs) = match Scale::from_env() {
        Scale::Paper => {
            let mut cfg = RlTrainConfig::quick(42);
            cfg.episodes = 8;
            cfg.nodes = 6;
            cfg.epochs = 10;
            cfg.budget_w = 330.0;
            (cfg, 6, 12)
        }
        Scale::Test => (RlTrainConfig::quick(42), 4, 6),
    };

    eprintln!("policy: training the RL backend twice ({} episodes) …", train_cfg.episodes);
    let start = Instant::now();
    let trained = train_rl(&train_cfg);
    let train_ms = start.elapsed().as_secs_f64() * 1e3;
    let replay = train_rl(&train_cfg);
    let deterministic = trained.q_digest == replay.q_digest && trained.q == replay.q;
    eprintln!(
        "  train           : {train_ms:>10.1} ms, digest {:016x}, replay {}",
        trained.q_digest,
        if deterministic { "identical" } else { "DIVERGED" }
    );
    assert!(deterministic, "RL training replay diverged — determinism contract broken");

    let specs = [
        CapPolicySpec::Ladder(capsim_dcm::AllocationPolicy::Uniform),
        CapPolicySpec::Governor(capsim_policy::GovernorConfig::default()),
        CapPolicySpec::Rl(trained.q.clone()),
    ];

    let mut frontier = Vec::new();
    let mut violations = 0usize;
    for spec in &specs {
        let name = spec.name();
        eprintln!("policy: {name}: frontier fleet ({nodes} nodes × {epochs} epochs) …");
        let (energy_j, avg_freq_mhz, wall_s) = frontier_point(spec, nodes, epochs, 7);
        eprintln!("  {name:<8}        : {energy_j:>10.4} J, {avg_freq_mhz:>7.0} MHz mean");

        eprintln!("policy: {name}: scripted chaos …");
        let report = check(&ChaosScenario::scripted().with_policy(spec.clone()));
        let v = report.violations.len();
        if v > 0 {
            eprintln!("  {name}: {v} invariant violation(s): {:?}", report.violations);
        }
        violations += v;
        frontier.push(format!(
            "{{\"policy\": \"{name}\", \"energy_j\": {energy_j:.6}, \
             \"avg_freq_mhz\": {avg_freq_mhz:.1}, \"wall_s\": {wall_s:.6}, \
             \"chaos_violations\": {v}}}"
        ));
    }

    let json = format!(
        "{{\n  \"train_ms\": {train_ms:.1},\n  \"train_episodes\": {},\n  \
         \"q_digest\": \"{:016x}\",\n  \"q_touched\": {},\n  \
         \"deterministic\": {deterministic},\n  \"invariant_violations\": {violations},\n  \
         \"frontier\": [\n    {}\n  ]\n}}\n",
        train_cfg.episodes,
        trained.q_digest,
        trained.q.touched(),
        frontier.join(",\n    ")
    );
    std::fs::write(&out_path, &json).expect("write json");
    println!("{json}");
    eprintln!("wrote {out_path}");
    if violations > 0 {
        eprintln!("policy: {violations} invariant violation(s) under chaos — failing");
        std::process::exit(1);
    }
}
