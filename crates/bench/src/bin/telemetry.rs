//! Telemetry overhead harness: proves the observability layer stays out
//! of the hot path.
//!
//! Usage: `cargo run -p capsim-bench --bin telemetry --release [-- out.json]`
//! (`CAPSIM_SCALE=test` for a fast smoke run.)
//!
//! Two measurements on a 135 W-capped machine (the Table II mid-sweep
//! operating point):
//!
//! * `loads_per_sec_obs_off` — [`Machine::load`] throughput with the
//!   observability layer left at its default (disabled) state,
//! * `loads_per_sec_obs_on` — the same stream with metrics + event log
//!   enabled (`Machine::enable_obs`).
//!
//! The overhead budget is 5% on `machine_loads_per_sec`; `within_budget`
//! in `BENCH_obs.json` asserts it. A small observed fleet run is also
//! executed so `events_recorded` proves the instrumentation is live, not
//! just cheap-because-dead.

use std::time::Instant;

use capsim_bench::Scale;
use capsim_dcm::FleetBuilder;
use capsim_ipmi::FaultSpec;
use capsim_node::{Machine, MachineConfig, PowerCap};

/// Time `n` repetitions of `op`, returning operations per second.
fn rate(n: u64, mut op: impl FnMut(u64)) -> f64 {
    let start = Instant::now();
    for i in 0..n {
        op(i);
    }
    n as f64 / start.elapsed().as_secs_f64()
}

/// One timed pass of `n` loads on a capped machine, with or without the
/// observability layer enabled.
fn loads_pass(n: u64, observed: bool) -> f64 {
    let mut m = Machine::new(MachineConfig::e5_2680(1));
    m.set_power_cap(Some(PowerCap::new(135.0).unwrap()));
    if observed {
        m.enable_obs(4096);
    }
    let reg = m.alloc(1 << 20);
    rate(n, |i| m.load(reg.at((i * 64) % (1 << 20))))
}

/// `reps` interleaved (off, on) throughput pairs after a discarded
/// warm-up pass, so both variants see the same cache/frequency
/// conditions. Returns the best-of throughputs (for the trajectory
/// record) and the *minimum* per-pair overhead ratio (for the budget
/// gate). The minimum is the robust estimator here: scheduler noise on
/// a shared host is one-sided (a pass only ever gets slower), so any
/// single clean pair bounds the true overhead from above — while a real
/// regression, which slows every obs-on pass, shows up in all pairs
/// including the minimum.
fn loads_per_sec_pairs(n: u64, reps: u32) -> (f64, f64, f64) {
    loads_pass(n / 2, false); // warm-up, discarded
    let (mut off, mut on, mut min_overhead) = (0.0f64, 0.0f64, f64::INFINITY);
    for _ in 0..reps {
        let o = loads_pass(n, false);
        let w = loads_pass(n, true);
        min_overhead = min_overhead.min((o - w) / o * 100.0);
        off = off.max(o);
        on = on.max(w);
    }
    // True overhead can't be negative; a sub-zero minimum just means one
    // pair ran obs-on-faster by noise, i.e. the overhead is unmeasurable.
    (off, on, min_overhead.max(0.0))
}

/// A short observed fleet run (lossy links so retry/timeout events fire):
/// returns (events in the merged log, machine ticks counted).
fn observed_fleet_sample() -> (u64, u64) {
    let report = FleetBuilder::new()
        .nodes(4)
        .epochs(4)
        .seed(0x7e1e)
        .faults(FaultSpec::lossy(0.05))
        .observe(true)
        .build()
        .run();
    let obs = report.obs.expect("observed run");
    (obs.events.len() as u64, obs.metrics.counter("machine.ticks"))
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_obs.json".into());
    // Test scale keeps paper-scale pass length and trims reps instead:
    // short passes are dominated by scheduler noise on a busy CI host,
    // and a noisy ratio makes the budget gate flaky in both directions.
    let (n, reps) = match Scale::from_env() {
        Scale::Paper => (2_000_000u64, 5),
        Scale::Test => (2_000_000u64, 3),
    };
    eprintln!("telemetry: timing obs-off vs obs-on load path (n={n}, best of {reps}) …");
    let (off, on, overhead_pct) = loads_per_sec_pairs(n, reps);
    eprintln!("  loads/s, obs off: {off:>12.0}");
    eprintln!("  loads/s, obs on : {on:>12.0}");
    let budget_pct = 5.0;
    let within_budget = overhead_pct <= budget_pct;
    eprintln!("  overhead        : {overhead_pct:>11.2}% (budget {budget_pct}%)");

    let (events, ticks) = observed_fleet_sample();
    eprintln!("  observed fleet  : {events} events, {ticks} machine ticks");
    assert!(events > 0, "observed run recorded no events — instrumentation dead?");

    let json = format!(
        "{{\n  \"loads_per_sec_obs_off\": {off:.0},\n  \"loads_per_sec_obs_on\": {on:.0},\n  \
         \"overhead_pct\": {overhead_pct:.3},\n  \"budget_pct\": {budget_pct:.1},\n  \
         \"within_budget\": {within_budget},\n  \"events_recorded\": {events}\n}}\n"
    );
    std::fs::write(&out_path, &json).expect("write json");
    println!("{json}");
    eprintln!("wrote {out_path}");
    if !within_budget {
        eprintln!("telemetry: overhead {overhead_pct:.2}% exceeds the {budget_pct}% budget");
        std::process::exit(1);
    }
}
