//! **Extension X8**: fidelity check with the Sandy Bridge STLB enabled.
//!
//! The Table II calibration runs without a second-level TLB (the paper's
//! counters don't constrain one). Real E5-2680s have a 512-entry STLB;
//! this harness re-runs the stereo workload with it enabled and shows
//! that the study's qualitative conclusions are insensitive to the
//! simplification: walks drop (the STLB absorbs first-level misses), but
//! time/power/frequency shapes under capping are unchanged.
//!
//! Usage: `cargo run -p capsim-bench --bin ext_stlb --release`

use capsim_apps::{StereoMatching, Workload};
use capsim_core::report::markdown_table;
use capsim_node::{Machine, MachineConfig, PowerCap};

fn run(stlb: bool, cap: Option<f64>) -> (f64, f64, u64, u64) {
    let mut cfg = MachineConfig::e5_2680(15);
    cfg.control_period_us = 5.0;
    cfg.meter_window_s = 1e-4;
    if stlb {
        cfg.hierarchy = cfg.hierarchy.with_stlb();
    }
    let mut m = Machine::new(cfg);
    if let Some(c) = cap {
        m.set_power_cap(Some(PowerCap::new(c).unwrap()));
    }
    let mut app = StereoMatching::test_scale(15);
    app.width = 224;
    app.height = 224;
    app.sweeps = 2;
    app.run(&mut m);
    let s = m.finish_run();
    (s.wall_s, s.avg_power_w, s.mem.dtlb_misses, s.mem.walk_reads)
}

fn main() {
    let mut rows = Vec::new();
    let mut base: Option<f64> = None;
    for stlb in [false, true] {
        for cap in [None, Some(140.0), Some(125.0)] {
            let (t, p, dtlb, walks) = run(stlb, cap);
            if base.is_none() {
                base = Some(t);
            }
            rows.push(vec![
                if stlb { "with STLB" } else { "no STLB" }.to_string(),
                cap.map_or("none".into(), |c| format!("{c:.0}")),
                format!("{:+.0} %", (t / base.unwrap() - 1.0) * 100.0),
                format!("{p:.1}"),
                dtlb.to_string(),
                walks.to_string(),
            ]);
        }
    }
    println!(
        "{}",
        markdown_table(
            &[
                "hierarchy",
                "cap (W)",
                "time vs no-STLB base",
                "power (W)",
                "dTLB misses",
                "walk reads"
            ],
            &rows,
        )
    );
    println!(
        "Expected: walk reads collapse with the STLB while dTLB misses are\n\
         unchanged (they are first-level events either way), and the capped\n\
         time/power columns shift by at most a few percent — the Table II\n\
         shapes do not depend on the STLB simplification."
    );
}
