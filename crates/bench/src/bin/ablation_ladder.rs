//! **Ablation X1**: the full throttle ladder vs a DVFS-only firmware.
//!
//! The paper's conclusion (1)/(3): at low caps DVFS is *not* the mechanism
//! — deeper techniques take over, buying small power reductions for large
//! performance losses. This ablation shows what Table II would look like
//! if the firmware stopped at P-min: the low caps simply cannot be
//! honoured, and execution time stops degrading past the DVFS floor.
//!
//! Usage: `cargo run -p capsim-bench --bin ablation_ladder --release`

use capsim_bench::{experiment_config, stereo_factory, Scale};
use capsim_core::report::markdown_table;
use capsim_core::{CapSweep, LadderKind};

fn main() {
    let scale = Scale::from_env();
    eprintln!("running ladder ablation at {scale:?} scale …");
    let mut rows = Vec::new();
    let mut sweeps = Vec::new();
    for (label, ladder) in [("full ladder", LadderKind::Full), ("DVFS only", LadderKind::DvfsOnly)]
    {
        let mut cfg = experiment_config(scale);
        cfg.caps_w = vec![150.0, 140.0, 130.0, 125.0, 120.0];
        cfg.ladder = ladder;
        let sweep = CapSweep::new(cfg).run("Stereo Matching", stereo_factory(scale));
        sweeps.push((label, sweep));
    }
    for (label, sweep) in &sweeps {
        for r in sweep.all_rows() {
            rows.push(vec![
                label.to_string(),
                r.cap_w.map_or("baseline".into(), |c| format!("{c:.0}")),
                format!("{:.1}", r.avg_power_w),
                format!("{:.0}", r.pct_diff(&sweep.baseline, |m| m.time_s)),
                format!("{:.0}", r.pct_diff(&sweep.baseline, |m| m.energy_j)),
                format!(
                    "{}",
                    if r.cap_w.is_some_and(|c| r.avg_power_w > c + 0.5) {
                        "VIOLATED"
                    } else {
                        "met"
                    }
                ),
            ]);
        }
    }
    println!(
        "{}",
        markdown_table(
            &["firmware", "cap (W)", "measured power (W)", "time %", "energy %", "cap status"],
            &rows,
        )
    );
    println!(
        "Expected shape: the DVFS-only firmware violates every cap below\n\
         its ~131 W floor while its slowdown saturates; the full ladder\n\
         keeps shaving watts (down to its ~124 W floor) at enormous cost in\n\
         execution time — the paper's conclusion (3)."
    );
}
