//! Regenerates **Table I**: baseline (uncapped) node power and execution
//! time for SIRE/RSM and Stereo Matching.
//!
//! Usage: `cargo run -p capsim-bench --bin table1 --release`
//! (`CAPSIM_SCALE=test` for a fast smoke run).

use capsim_apps::Workload;
use capsim_bench::{paper, sire_factory, stereo_factory, Scale};
use capsim_core::report::hms;
use capsim_core::runner::RunMetrics;
use capsim_core::table::table1;
use capsim_core::SweepResult;
use capsim_node::{Machine, MachineConfig};

fn baseline(name: &str, factory: impl Fn(u64) -> Box<dyn Workload>) -> SweepResult {
    let mut m = Machine::new(MachineConfig::e5_2680(1));
    let mut w = factory(1);
    w.run(&mut m);
    let s = m.finish_run();
    SweepResult {
        workload: name.to_string(),
        baseline: RunMetrics {
            cap_w: None,
            avg_power_w: s.avg_power_w,
            energy_j: s.energy_j,
            avg_freq_mhz: s.avg_freq_mhz,
            time_s: s.wall_s,
            ..Default::default()
        },
        rows: Vec::new(),
    }
}

fn main() {
    let scale = Scale::from_env();
    println!("== Table I: baseline power consumption and execution time ==\n");
    let sire = baseline("SIRE/RSM (synthetic large image)", sire_factory(scale));
    let stereo = baseline(
        "Stereo Matching w/ simulated annealing (three-layer wedding cake)",
        stereo_factory(scale),
    );
    println!("{}", table1(&[&sire, &stereo]));
    println!("Paper reference:");
    println!(
        "  SIRE/RSM        : {} W, {}",
        paper::SIRE.baseline_power_w,
        hms(paper::SIRE.baseline_time_s)
    );
    println!(
        "  Stereo Matching : {} W, {}",
        paper::STEREO.baseline_power_w,
        hms(paper::STEREO.baseline_time_s)
    );
    println!(
        "\nNote: our instances are scaled (simulator, not silicon); the\n\
         power anchors should match, absolute times are proportional."
    );
}
