//! Regenerates **Figures 3 and 4**: the stride microbenchmark (memory
//! mountain) with no power cap and with a 120 W cap.
//!
//! Usage: `cargo run -p capsim-bench --bin fig3_4 --release`

use capsim_apps::StrideBench;
use capsim_bench::Scale;
use capsim_core::mountain::{human, MountainRun};
use capsim_core::persist::{maybe_write, OutputDir};

fn bench(scale: Scale) -> StrideBench {
    match scale {
        Scale::Paper => StrideBench::paper_scale(),
        Scale::Test => StrideBench::test_scale(),
    }
}

fn main() {
    let scale = Scale::from_env();
    eprintln!("running memory mountain at {scale:?} scale …");

    let out = OutputDir::from_env();
    let fig3 = MountainRun { bench: bench(scale), cap_w: None, seed: 1 }.collect("Figure 3");
    println!("== Figure 3: stride microbenchmark, no power cap (avg ns/access) ==\n");
    println!("{}", fig3.to_csv());
    maybe_write(&out, "figure3.csv", "Figure 3: memory mountain, no cap", &fig3.to_csv());

    let fig4 = MountainRun { bench: bench(scale), cap_w: Some(120.0), seed: 1 }.collect("Figure 4");
    println!("== Figure 4: stride microbenchmark, 120 W power cap (avg ns/access) ==\n");
    println!("{}", fig4.to_csv());
    maybe_write(&out, "figure4.csv", "Figure 4: memory mountain, 120 W cap", &fig4.to_csv());

    // The paper's level inferences from Figure 3 (§IV-B list items 1–8).
    println!("== Inferred hierarchy (from the uncapped run) ==");
    let show = |label: &str, size: u64, stride: u64, paper: &str| match fig3.at(size, stride) {
        Some(ns) => println!("  {label}: {ns:>7.2} ns  (paper: {paper})"),
        None => println!("  {label}:    n/a   (cell not in this sweep scale)"),
    };
    show("L1 plateau  (4K/64B)  ", 4 << 10, 64, "~1.5");
    show("L2 plateau  (128K/64B)", 128 << 10, 64, "~3.5");
    show("L3 plateau  (4M/1K)   ", 4 << 20, 1 << 10, "~8.6");
    show("memory      (64M/4K)  ", 64 << 20, 4 << 10, "~60");

    println!("\n== Capped/uncapped slowdown per size (64B stride) ==");
    for &size in &fig3.sizes {
        if let (Some(a), Some(b)) = (fig3.at(size, 64), fig4.at(size, 64)) {
            println!("  {:>5}: {:>8.2} -> {:>10.2} ns  ({:>6.1}x)", human(size), a, b, b / a);
        }
    }
    println!(
        "\nFigure 4's paper signature: every level slower and noisier under\n\
         the cap (frequency floor + duty cycling + cache/TLB gating +\n\
         memory gating), with erratic per-stride behaviour from dithering."
    );
}
