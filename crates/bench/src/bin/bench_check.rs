//! `bench_check` — validate the committed `BENCH_*.json` trajectory files.
//!
//! Usage: `cargo run -p capsim-bench --bin bench_check -- FILE...`
//!
//! Each file must parse as a flat JSON object (string / number / bool
//! values — the only shapes our bench bins emit), and files whose names
//! match a known artifact must carry that artifact's required keys:
//!
//! * `BENCH_hotpath*`: `accesses_per_sec`, `machine_loads_per_sec`,
//!   `ticks_per_sec` — all positive numbers,
//! * `BENCH_fleet*`: `nodes`, `speedup`, `deterministic`,
//! * `BENCH_obs*`: `loads_per_sec_obs_off`, `loads_per_sec_obs_on`,
//!   `overhead_pct`, `within_budget` — and `within_budget` must be true,
//! * `BENCH_chaos*`: `soak_scenarios_per_sec` positive,
//!   `guardrail_overhead_pct` numeric, `invariant_violations` exactly 0,
//!   `within_budget` true.
//!
//! Unknown `BENCH_*` files only need to parse. Exits non-zero listing
//! every problem found, so CI catches a bin that wrote garbage.

use std::collections::BTreeMap;

/// The value shapes our hand-rolled bench JSON actually contains.
#[derive(Debug, PartialEq)]
enum Val {
    Num(f64),
    Bool(bool),
    Str(String),
}

/// Parse a flat JSON object (no nesting, no arrays — bench bins never
/// emit them) into a key → value map. Returns a description of the first
/// syntax problem on malformed input.
fn parse_flat_object(text: &str) -> Result<BTreeMap<String, Val>, String> {
    let mut map = BTreeMap::new();
    let s: Vec<char> = text.chars().collect();
    let mut i = 0usize;
    let skip_ws = |s: &[char], mut i: usize| {
        while i < s.len() && s[i].is_whitespace() {
            i += 1;
        }
        i
    };
    let parse_string = |s: &[char], mut i: usize| -> Result<(String, usize), String> {
        if s.get(i) != Some(&'"') {
            return Err(format!("expected '\"' at offset {i}"));
        }
        i += 1;
        let mut out = String::new();
        while let Some(&c) = s.get(i) {
            match c {
                '"' => return Ok((out, i + 1)),
                '\\' => {
                    let esc = *s.get(i + 1).ok_or("dangling escape")?;
                    out.push(match esc {
                        'n' => '\n',
                        't' => '\t',
                        other => other,
                    });
                    i += 2;
                }
                _ => {
                    out.push(c);
                    i += 1;
                }
            }
        }
        Err("unterminated string".into())
    };

    i = skip_ws(&s, i);
    if s.get(i) != Some(&'{') {
        return Err("expected '{' at start".into());
    }
    i = skip_ws(&s, i + 1);
    if s.get(i) == Some(&'}') {
        i = skip_ws(&s, i + 1);
        if i != s.len() {
            return Err("trailing content after object".into());
        }
        return Ok(map);
    }
    loop {
        let (key, next) = parse_string(&s, i)?;
        i = skip_ws(&s, next);
        if s.get(i) != Some(&':') {
            return Err(format!("expected ':' after key {key:?}"));
        }
        i = skip_ws(&s, i + 1);
        let val = match s.get(i) {
            Some(&'"') => {
                let (v, next) = parse_string(&s, i)?;
                i = next;
                Val::Str(v)
            }
            Some(&'t') if s[i..].starts_with(&['t', 'r', 'u', 'e']) => {
                i += 4;
                Val::Bool(true)
            }
            Some(&'f') if s[i..].starts_with(&['f', 'a', 'l', 's', 'e']) => {
                i += 5;
                Val::Bool(false)
            }
            Some(&c) if c == '-' || c.is_ascii_digit() => {
                let start = i;
                while i < s.len()
                    && (s[i].is_ascii_digit() || matches!(s[i], '-' | '+' | '.' | 'e' | 'E'))
                {
                    i += 1;
                }
                let lit: String = s[start..i].iter().collect();
                Val::Num(lit.parse::<f64>().map_err(|_| format!("bad number {lit:?}"))?)
            }
            other => return Err(format!("unexpected value start {other:?} for key {key:?}")),
        };
        if map.insert(key.clone(), val).is_some() {
            return Err(format!("duplicate key {key:?}"));
        }
        i = skip_ws(&s, i);
        match s.get(i) {
            Some(&',') => i = skip_ws(&s, i + 1),
            Some(&'}') => {
                i = skip_ws(&s, i + 1);
                if i != s.len() {
                    return Err("trailing content after object".into());
                }
                return Ok(map);
            }
            other => return Err(format!("expected ',' or '}}', got {other:?}")),
        }
    }
}

/// Check one file; push human-readable problems into `errors`.
fn check_file(path: &str, errors: &mut Vec<String>) {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            errors.push(format!("{path}: unreadable: {e}"));
            return;
        }
    };
    let map = match parse_flat_object(&text) {
        Ok(m) => m,
        Err(e) => {
            errors.push(format!("{path}: parse error: {e}"));
            return;
        }
    };
    let name = path.rsplit('/').next().unwrap_or(path);
    let require_pos_num = |key: &str, errors: &mut Vec<String>| match map.get(key) {
        Some(Val::Num(v)) if *v > 0.0 => {}
        Some(Val::Num(v)) => errors.push(format!("{path}: {key} must be positive, got {v}")),
        Some(other) => errors.push(format!("{path}: {key} must be a number, got {other:?}")),
        None => errors.push(format!("{path}: missing required key {key:?}")),
    };
    let require_num = |key: &str, errors: &mut Vec<String>| match map.get(key) {
        Some(Val::Num(_)) => {}
        Some(other) => errors.push(format!("{path}: {key} must be a number, got {other:?}")),
        None => errors.push(format!("{path}: missing required key {key:?}")),
    };
    if name.starts_with("BENCH_hotpath") {
        for key in ["accesses_per_sec", "machine_loads_per_sec", "ticks_per_sec"] {
            require_pos_num(key, errors);
        }
    } else if name.starts_with("BENCH_fleet") {
        require_pos_num("nodes", errors);
        require_pos_num("speedup", errors);
        match map.get("deterministic") {
            Some(Val::Bool(_)) => {}
            Some(other) => {
                errors.push(format!("{path}: deterministic must be a bool, got {other:?}"))
            }
            None => errors.push(format!("{path}: missing required key \"deterministic\"")),
        }
    } else if name.starts_with("BENCH_obs") {
        require_pos_num("loads_per_sec_obs_off", errors);
        require_pos_num("loads_per_sec_obs_on", errors);
        require_num("overhead_pct", errors);
        match map.get("within_budget") {
            Some(Val::Bool(true)) => {}
            Some(Val::Bool(false)) => {
                errors.push(format!("{path}: within_budget is false — obs overhead over budget"))
            }
            Some(other) => {
                errors.push(format!("{path}: within_budget must be a bool, got {other:?}"))
            }
            None => errors.push(format!("{path}: missing required key \"within_budget\"")),
        }
    } else if name.starts_with("BENCH_chaos") {
        require_pos_num("soak_scenarios_per_sec", errors);
        require_num("guardrail_overhead_pct", errors);
        match map.get("invariant_violations") {
            Some(Val::Num(v)) if *v == 0.0 => {}
            Some(Val::Num(v)) => errors
                .push(format!("{path}: invariant_violations must be 0, got {v} — chaos run red")),
            Some(other) => {
                errors.push(format!("{path}: invariant_violations must be a number, got {other:?}"))
            }
            None => errors.push(format!("{path}: missing required key \"invariant_violations\"")),
        }
        match map.get("within_budget") {
            Some(Val::Bool(true)) => {}
            Some(Val::Bool(false)) => errors
                .push(format!("{path}: within_budget is false — guardrail overhead over budget")),
            Some(other) => {
                errors.push(format!("{path}: within_budget must be a bool, got {other:?}"))
            }
            None => errors.push(format!("{path}: missing required key \"within_budget\"")),
        }
    }
}

fn main() {
    let files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() {
        eprintln!("usage: bench_check FILE...");
        std::process::exit(2);
    }
    let mut errors = Vec::new();
    for f in &files {
        check_file(f, &mut errors);
    }
    if errors.is_empty() {
        println!("bench_check: {} file(s) ok", files.len());
    } else {
        for e in &errors {
            eprintln!("bench_check: {e}");
        }
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_our_bench_shapes() {
        let m = parse_flat_object(
            "{\n  \"a\": 1.5,\n  \"b\": true,\n  \"c\": \"full\",\n  \"d\": -3\n}\n",
        )
        .unwrap();
        assert_eq!(m.get("a"), Some(&Val::Num(1.5)));
        assert_eq!(m.get("b"), Some(&Val::Bool(true)));
        assert_eq!(m.get("c"), Some(&Val::Str("full".into())));
        assert_eq!(m.get("d"), Some(&Val::Num(-3.0)));
        assert!(parse_flat_object("{}").unwrap().is_empty());
    }

    #[test]
    fn rejects_malformed_json() {
        assert!(parse_flat_object("").is_err());
        assert!(parse_flat_object("{\"a\": }").is_err());
        assert!(parse_flat_object("{\"a\": 1,}").is_err());
        assert!(parse_flat_object("{\"a\": 1} junk").is_err());
        assert!(parse_flat_object("{\"a\": 1, \"a\": 2}").is_err());
    }

    #[test]
    fn known_artifacts_need_their_keys() {
        let dir = std::env::temp_dir().join("capsim_bench_check_test");
        std::fs::create_dir_all(&dir).unwrap();
        let obs = dir.join("BENCH_obs.json");
        std::fs::write(&obs, "{\"loads_per_sec_obs_off\": 1}").unwrap();
        let mut errors = Vec::new();
        check_file(obs.to_str().unwrap(), &mut errors);
        assert!(errors.iter().any(|e| e.contains("within_budget")));

        let chaos = dir.join("BENCH_chaos.json");
        std::fs::write(
            &chaos,
            "{\"soak_scenarios_per_sec\": 2.5, \"guardrail_overhead_pct\": 0.4, \
             \"invariant_violations\": 1, \"within_budget\": true}",
        )
        .unwrap();
        let mut errors = Vec::new();
        check_file(chaos.to_str().unwrap(), &mut errors);
        assert!(errors.iter().any(|e| e.contains("invariant_violations")), "{errors:?}");

        let unknown = dir.join("BENCH_custom.json");
        std::fs::write(&unknown, "{\"anything\": 1}").unwrap();
        let mut errors = Vec::new();
        check_file(unknown.to_str().unwrap(), &mut errors);
        assert!(errors.is_empty(), "{errors:?}");
    }
}
