//! `bench_check` — validate the committed `BENCH_*.json` trajectory files.
//!
//! Usage: `cargo run -p capsim-bench --bin bench_check -- FILE...`
//!
//! Each file must parse as a JSON object of string / number / bool values
//! plus, at most one level deep, arrays of such flat objects (the shape
//! of the fleet scaling curve — the only nesting our bench bins emit).
//! Files whose names match a known artifact must carry that artifact's
//! required keys:
//!
//! * `BENCH_hotpath*`: `accesses_per_sec`, `machine_loads_per_sec`,
//!   `ticks_per_sec` — all positive numbers,
//! * `BENCH_fleet*`: `nodes`, `speedup` positive; `deterministic` must be
//!   `true`; `curve` must be a non-empty array of scaling points, each
//!   with positive `nodes`, `threads`, `shards` and
//!   `node_epochs_per_sec`,
//! * `BENCH_obs*`: `loads_per_sec_obs_off`, `loads_per_sec_obs_on`,
//!   `overhead_pct`, `within_budget` — and `within_budget` must be true,
//! * `BENCH_chaos*`: `soak_scenarios_per_sec` positive,
//!   `guardrail_overhead_pct` numeric, `invariant_violations` exactly 0,
//!   `within_budget` true,
//! * `BENCH_policy*`: `deterministic` true (RL training replayed to the
//!   same Q-table digest), `invariant_violations` exactly 0 (every
//!   backend survived scripted chaos), `frontier` a non-empty array of
//!   per-policy points, each with a non-empty `policy` string and
//!   positive `energy_j` and `avg_freq_mhz`,
//! * `BENCH_traffic*`: `deterministic` true (emergency replay identical
//!   across thread/shard twins), `invariant_violations` exactly 0,
//!   positive `throughput_rps`, `p99_ms` and `energy_j`; `ladder` a
//!   non-empty array of cap rungs with positive `budget_w_per_node` and
//!   `p99_ms`; `frontier` a non-empty array of per-policy points — one
//!   of which must be the `"slo"` backend — each with a non-empty
//!   `policy` string, positive `energy_j` and numeric `slo_viol_per_kj`;
//!   `retry_storm` a non-empty array of closed-loop points with positive
//!   `retries` and numeric `failover`; `backpressure` a non-empty array
//!   of per-mode points — one of which must be the `"aimd_brownout"`
//!   (robustness stack) row — each with a non-empty `mode` string,
//!   positive `energy_j` and numeric `slo_viol_per_kj` and
//!   `rate_multiplier`.
//!
//! Unknown `BENCH_*` files only need to parse. Exits non-zero listing
//! every problem found, so CI catches a bin that wrote garbage.

use std::collections::BTreeMap;

/// The value shapes our hand-rolled bench JSON actually contains.
#[derive(Debug, PartialEq)]
enum Val {
    Num(f64),
    Bool(bool),
    Str(String),
    /// An array of flat objects — the fleet scaling curve. Arrays never
    /// nest further.
    Arr(Vec<BTreeMap<String, Val>>),
}

fn skip_ws(s: &[char], mut i: usize) -> usize {
    while i < s.len() && s[i].is_whitespace() {
        i += 1;
    }
    i
}

fn parse_string(s: &[char], mut i: usize) -> Result<(String, usize), String> {
    if s.get(i) != Some(&'"') {
        return Err(format!("expected '\"' at offset {i}"));
    }
    i += 1;
    let mut out = String::new();
    while let Some(&c) = s.get(i) {
        match c {
            '"' => return Ok((out, i + 1)),
            '\\' => {
                let esc = *s.get(i + 1).ok_or("dangling escape")?;
                out.push(match esc {
                    'n' => '\n',
                    't' => '\t',
                    other => other,
                });
                i += 2;
            }
            _ => {
                out.push(c);
                i += 1;
            }
        }
    }
    Err("unterminated string".into())
}

/// Parse one scalar / array value starting at `i`. `depth` guards the
/// one level of nesting we allow: arrays of flat objects at the top
/// level only.
fn parse_value(s: &[char], mut i: usize, depth: u32) -> Result<(Val, usize), String> {
    match s.get(i) {
        Some(&'"') => {
            let (v, next) = parse_string(s, i)?;
            Ok((Val::Str(v), next))
        }
        Some(&'t') if s[i..].starts_with(&['t', 'r', 'u', 'e']) => Ok((Val::Bool(true), i + 4)),
        Some(&'f') if s[i..].starts_with(&['f', 'a', 'l', 's', 'e']) => {
            Ok((Val::Bool(false), i + 5))
        }
        Some(&'[') if depth == 0 => {
            let mut items = Vec::new();
            i = skip_ws(s, i + 1);
            if s.get(i) == Some(&']') {
                return Ok((Val::Arr(items), i + 1));
            }
            loop {
                let (obj, next) = parse_object(s, i, depth + 1)?;
                items.push(obj);
                i = skip_ws(s, next);
                match s.get(i) {
                    Some(&',') => i = skip_ws(s, i + 1),
                    Some(&']') => return Ok((Val::Arr(items), i + 1)),
                    other => return Err(format!("expected ',' or ']' in array, got {other:?}")),
                }
            }
        }
        Some(&'[') => Err("nested arrays are not a bench shape".into()),
        Some(&c) if c == '-' || c.is_ascii_digit() => {
            let start = i;
            while i < s.len()
                && (s[i].is_ascii_digit() || matches!(s[i], '-' | '+' | '.' | 'e' | 'E'))
            {
                i += 1;
            }
            let lit: String = s[start..i].iter().collect();
            Ok((Val::Num(lit.parse::<f64>().map_err(|_| format!("bad number {lit:?}"))?), i))
        }
        other => Err(format!("unexpected value start {other:?}")),
    }
}

/// Parse one `{...}` object starting at `i`; returns the map and the
/// position just past the closing brace.
fn parse_object(
    s: &[char],
    mut i: usize,
    depth: u32,
) -> Result<(BTreeMap<String, Val>, usize), String> {
    let mut map = BTreeMap::new();
    i = skip_ws(s, i);
    if s.get(i) != Some(&'{') {
        return Err(format!("expected '{{' at offset {i}"));
    }
    i = skip_ws(s, i + 1);
    if s.get(i) == Some(&'}') {
        return Ok((map, i + 1));
    }
    loop {
        let (key, next) = parse_string(s, i)?;
        i = skip_ws(s, next);
        if s.get(i) != Some(&':') {
            return Err(format!("expected ':' after key {key:?}"));
        }
        i = skip_ws(s, i + 1);
        let (val, next) = parse_value(s, i, depth)?;
        i = next;
        if map.insert(key.clone(), val).is_some() {
            return Err(format!("duplicate key {key:?}"));
        }
        i = skip_ws(s, i);
        match s.get(i) {
            Some(&',') => i = skip_ws(s, i + 1),
            Some(&'}') => return Ok((map, i + 1)),
            other => return Err(format!("expected ',' or '}}', got {other:?}")),
        }
    }
}

/// Parse a whole bench JSON document (a flat object, with the fleet
/// curve's one allowed level of array nesting). Returns a description of
/// the first syntax problem on malformed input.
fn parse_flat_object(text: &str) -> Result<BTreeMap<String, Val>, String> {
    let s: Vec<char> = text.chars().collect();
    let (map, i) = parse_object(&s, 0, 0)?;
    if skip_ws(&s, i) != s.len() {
        return Err("trailing content after object".into());
    }
    Ok(map)
}

/// Check one file; push human-readable problems into `errors`.
fn check_file(path: &str, errors: &mut Vec<String>) {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            errors.push(format!("{path}: unreadable: {e}"));
            return;
        }
    };
    let map = match parse_flat_object(&text) {
        Ok(m) => m,
        Err(e) => {
            errors.push(format!("{path}: parse error: {e}"));
            return;
        }
    };
    let name = path.rsplit('/').next().unwrap_or(path);
    let require_pos_num = |key: &str, errors: &mut Vec<String>| match map.get(key) {
        Some(Val::Num(v)) if *v > 0.0 => {}
        Some(Val::Num(v)) => errors.push(format!("{path}: {key} must be positive, got {v}")),
        Some(other) => errors.push(format!("{path}: {key} must be a number, got {other:?}")),
        None => errors.push(format!("{path}: missing required key {key:?}")),
    };
    let require_num = |key: &str, errors: &mut Vec<String>| match map.get(key) {
        Some(Val::Num(_)) => {}
        Some(other) => errors.push(format!("{path}: {key} must be a number, got {other:?}")),
        None => errors.push(format!("{path}: missing required key {key:?}")),
    };
    if name.starts_with("BENCH_hotpath") {
        for key in ["accesses_per_sec", "machine_loads_per_sec", "ticks_per_sec"] {
            require_pos_num(key, errors);
        }
    } else if name.starts_with("BENCH_fleet") {
        require_pos_num("nodes", errors);
        require_pos_num("speedup", errors);
        match map.get("deterministic") {
            Some(Val::Bool(true)) => {}
            Some(Val::Bool(false)) => {
                errors.push(format!("{path}: deterministic is false — fleet determinism broken"))
            }
            Some(other) => {
                errors.push(format!("{path}: deterministic must be a bool, got {other:?}"))
            }
            None => errors.push(format!("{path}: missing required key \"deterministic\"")),
        }
        match map.get("curve") {
            Some(Val::Arr(points)) if points.is_empty() => {
                errors.push(format!("{path}: curve must not be empty"))
            }
            Some(Val::Arr(points)) => {
                for (i, point) in points.iter().enumerate() {
                    for key in ["nodes", "threads", "shards", "node_epochs_per_sec"] {
                        match point.get(key) {
                            Some(Val::Num(v)) if *v > 0.0 => {}
                            Some(other) => errors.push(format!(
                                "{path}: curve[{i}].{key} must be a positive number, got {other:?}"
                            )),
                            None => errors
                                .push(format!("{path}: curve[{i}] missing required key {key:?}")),
                        }
                    }
                }
            }
            Some(other) => errors
                .push(format!("{path}: curve must be an array of scaling points, got {other:?}")),
            None => errors.push(format!("{path}: missing required key \"curve\"")),
        }
    } else if name.starts_with("BENCH_obs") {
        require_pos_num("loads_per_sec_obs_off", errors);
        require_pos_num("loads_per_sec_obs_on", errors);
        require_num("overhead_pct", errors);
        match map.get("within_budget") {
            Some(Val::Bool(true)) => {}
            Some(Val::Bool(false)) => {
                errors.push(format!("{path}: within_budget is false — obs overhead over budget"))
            }
            Some(other) => {
                errors.push(format!("{path}: within_budget must be a bool, got {other:?}"))
            }
            None => errors.push(format!("{path}: missing required key \"within_budget\"")),
        }
    } else if name.starts_with("BENCH_chaos") {
        require_pos_num("soak_scenarios_per_sec", errors);
        require_num("guardrail_overhead_pct", errors);
        match map.get("invariant_violations") {
            Some(Val::Num(v)) if *v == 0.0 => {}
            Some(Val::Num(v)) => errors
                .push(format!("{path}: invariant_violations must be 0, got {v} — chaos run red")),
            Some(other) => {
                errors.push(format!("{path}: invariant_violations must be a number, got {other:?}"))
            }
            None => errors.push(format!("{path}: missing required key \"invariant_violations\"")),
        }
        match map.get("within_budget") {
            Some(Val::Bool(true)) => {}
            Some(Val::Bool(false)) => errors
                .push(format!("{path}: within_budget is false — guardrail overhead over budget")),
            Some(other) => {
                errors.push(format!("{path}: within_budget must be a bool, got {other:?}"))
            }
            None => errors.push(format!("{path}: missing required key \"within_budget\"")),
        }
    } else if name.starts_with("BENCH_policy") {
        match map.get("deterministic") {
            Some(Val::Bool(true)) => {}
            Some(Val::Bool(false)) => {
                errors.push(format!("{path}: deterministic is false — RL training replay diverged"))
            }
            Some(other) => {
                errors.push(format!("{path}: deterministic must be a bool, got {other:?}"))
            }
            None => errors.push(format!("{path}: missing required key \"deterministic\"")),
        }
        match map.get("invariant_violations") {
            Some(Val::Num(v)) if *v == 0.0 => {}
            Some(Val::Num(v)) => errors.push(format!(
                "{path}: invariant_violations must be 0, got {v} — a policy broke chaos invariants"
            )),
            Some(other) => {
                errors.push(format!("{path}: invariant_violations must be a number, got {other:?}"))
            }
            None => errors.push(format!("{path}: missing required key \"invariant_violations\"")),
        }
        match map.get("frontier") {
            Some(Val::Arr(points)) if points.is_empty() => {
                errors.push(format!("{path}: frontier must not be empty"))
            }
            Some(Val::Arr(points)) => {
                for (i, point) in points.iter().enumerate() {
                    match point.get("policy") {
                        Some(Val::Str(s)) if !s.is_empty() => {}
                        Some(other) => errors.push(format!(
                            "{path}: frontier[{i}].policy must be a non-empty string, got {other:?}"
                        )),
                        None => errors
                            .push(format!("{path}: frontier[{i}] missing required key \"policy\"")),
                    }
                    for key in ["energy_j", "avg_freq_mhz"] {
                        match point.get(key) {
                            Some(Val::Num(v)) if *v > 0.0 => {}
                            Some(other) => errors.push(format!(
                                "{path}: frontier[{i}].{key} must be a positive number, got {other:?}"
                            )),
                            None => errors
                                .push(format!("{path}: frontier[{i}] missing required key {key:?}")),
                        }
                    }
                }
            }
            Some(other) => errors.push(format!(
                "{path}: frontier must be an array of per-policy points, got {other:?}"
            )),
            None => errors.push(format!("{path}: missing required key \"frontier\"")),
        }
    } else if name.starts_with("BENCH_traffic") {
        for key in ["throughput_rps", "p99_ms", "energy_j"] {
            require_pos_num(key, errors);
        }
        match map.get("deterministic") {
            Some(Val::Bool(true)) => {}
            Some(Val::Bool(false)) => {
                errors.push(format!("{path}: deterministic is false — emergency replay diverged"))
            }
            Some(other) => {
                errors.push(format!("{path}: deterministic must be a bool, got {other:?}"))
            }
            None => errors.push(format!("{path}: missing required key \"deterministic\"")),
        }
        match map.get("invariant_violations") {
            Some(Val::Num(v)) if *v == 0.0 => {}
            Some(Val::Num(v)) => errors.push(format!(
                "{path}: invariant_violations must be 0, got {v} — emergency broke invariants"
            )),
            Some(other) => {
                errors.push(format!("{path}: invariant_violations must be a number, got {other:?}"))
            }
            None => errors.push(format!("{path}: missing required key \"invariant_violations\"")),
        }
        match map.get("ladder") {
            Some(Val::Arr(points)) if points.is_empty() => {
                errors.push(format!("{path}: ladder must not be empty"))
            }
            Some(Val::Arr(points)) => {
                for (i, point) in points.iter().enumerate() {
                    for key in ["budget_w_per_node", "p99_ms"] {
                        match point.get(key) {
                            Some(Val::Num(v)) if *v > 0.0 => {}
                            Some(other) => errors.push(format!(
                                "{path}: ladder[{i}].{key} must be a positive number, got {other:?}"
                            )),
                            None => errors
                                .push(format!("{path}: ladder[{i}] missing required key {key:?}")),
                        }
                    }
                }
            }
            Some(other) => {
                errors.push(format!("{path}: ladder must be an array of cap rungs, got {other:?}"))
            }
            None => errors.push(format!("{path}: missing required key \"ladder\"")),
        }
        match map.get("frontier") {
            Some(Val::Arr(points)) if points.is_empty() => {
                errors.push(format!("{path}: frontier must not be empty"))
            }
            Some(Val::Arr(points)) => {
                for (i, point) in points.iter().enumerate() {
                    match point.get("policy") {
                        Some(Val::Str(s)) if !s.is_empty() => {}
                        Some(other) => errors.push(format!(
                            "{path}: frontier[{i}].policy must be a non-empty string, got {other:?}"
                        )),
                        None => errors
                            .push(format!("{path}: frontier[{i}] missing required key \"policy\"")),
                    }
                    match point.get("energy_j") {
                        Some(Val::Num(v)) if *v > 0.0 => {}
                        Some(other) => errors.push(format!(
                            "{path}: frontier[{i}].energy_j must be a positive number, got {other:?}"
                        )),
                        None => errors.push(format!(
                            "{path}: frontier[{i}] missing required key \"energy_j\""
                        )),
                    }
                    match point.get("slo_viol_per_kj") {
                        Some(Val::Num(_)) => {}
                        Some(other) => errors.push(format!(
                            "{path}: frontier[{i}].slo_viol_per_kj must be a number, got {other:?}"
                        )),
                        None => errors.push(format!(
                            "{path}: frontier[{i}] missing required key \"slo_viol_per_kj\""
                        )),
                    }
                }
                let has_slo = points
                    .iter()
                    .any(|p| matches!(p.get("policy"), Some(Val::Str(s)) if s == "slo"));
                if !has_slo {
                    errors.push(format!(
                        "{path}: frontier must include the \"slo\" (tail-aware) policy row"
                    ));
                }
            }
            Some(other) => errors.push(format!(
                "{path}: frontier must be an array of per-policy points, got {other:?}"
            )),
            None => errors.push(format!("{path}: missing required key \"frontier\"")),
        }
        match map.get("retry_storm") {
            Some(Val::Arr(points)) if points.is_empty() => {
                errors.push(format!("{path}: retry_storm must not be empty"))
            }
            Some(Val::Arr(points)) => {
                for (i, point) in points.iter().enumerate() {
                    match point.get("retries") {
                        Some(Val::Num(v)) if *v > 0.0 => {}
                        Some(other) => errors.push(format!(
                            "{path}: retry_storm[{i}].retries must be a positive number, got {other:?}"
                        )),
                        None => errors.push(format!(
                            "{path}: retry_storm[{i}] missing required key \"retries\""
                        )),
                    }
                    match point.get("failover") {
                        Some(Val::Num(_)) => {}
                        Some(other) => errors.push(format!(
                            "{path}: retry_storm[{i}].failover must be a number, got {other:?}"
                        )),
                        None => errors.push(format!(
                            "{path}: retry_storm[{i}] missing required key \"failover\""
                        )),
                    }
                }
            }
            Some(other) => errors.push(format!(
                "{path}: retry_storm must be an array of closed-loop points, got {other:?}"
            )),
            None => errors.push(format!("{path}: missing required key \"retry_storm\"")),
        }
        match map.get("backpressure") {
            Some(Val::Arr(points)) if points.is_empty() => {
                errors.push(format!("{path}: backpressure must not be empty"))
            }
            Some(Val::Arr(points)) => {
                for (i, point) in points.iter().enumerate() {
                    match point.get("mode") {
                        Some(Val::Str(s)) if !s.is_empty() => {}
                        Some(other) => errors.push(format!(
                            "{path}: backpressure[{i}].mode must be a non-empty string, got {other:?}"
                        )),
                        None => errors.push(format!(
                            "{path}: backpressure[{i}] missing required key \"mode\""
                        )),
                    }
                    match point.get("energy_j") {
                        Some(Val::Num(v)) if *v > 0.0 => {}
                        Some(other) => errors.push(format!(
                            "{path}: backpressure[{i}].energy_j must be a positive number, got {other:?}"
                        )),
                        None => errors.push(format!(
                            "{path}: backpressure[{i}] missing required key \"energy_j\""
                        )),
                    }
                    for key in ["slo_viol_per_kj", "rate_multiplier"] {
                        match point.get(key) {
                            Some(Val::Num(_)) => {}
                            Some(other) => errors.push(format!(
                                "{path}: backpressure[{i}].{key} must be a number, got {other:?}"
                            )),
                            None => errors.push(format!(
                                "{path}: backpressure[{i}] missing required key {key:?}"
                            )),
                        }
                    }
                }
                let has_stack = points
                    .iter()
                    .any(|p| matches!(p.get("mode"), Some(Val::Str(s)) if s == "aimd_brownout"));
                if !has_stack {
                    errors.push(format!(
                        "{path}: backpressure must include the \"aimd_brownout\" \
                         (robustness stack) row"
                    ));
                }
            }
            Some(other) => errors.push(format!(
                "{path}: backpressure must be an array of per-mode points, got {other:?}"
            )),
            None => errors.push(format!("{path}: missing required key \"backpressure\"")),
        }
    }
}

fn main() {
    let files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() {
        eprintln!("usage: bench_check FILE...");
        std::process::exit(2);
    }
    let mut errors = Vec::new();
    for f in &files {
        check_file(f, &mut errors);
    }
    if errors.is_empty() {
        println!("bench_check: {} file(s) ok", files.len());
    } else {
        for e in &errors {
            eprintln!("bench_check: {e}");
        }
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_our_bench_shapes() {
        let m = parse_flat_object(
            "{\n  \"a\": 1.5,\n  \"b\": true,\n  \"c\": \"full\",\n  \"d\": -3\n}\n",
        )
        .unwrap();
        assert_eq!(m.get("a"), Some(&Val::Num(1.5)));
        assert_eq!(m.get("b"), Some(&Val::Bool(true)));
        assert_eq!(m.get("c"), Some(&Val::Str("full".into())));
        assert_eq!(m.get("d"), Some(&Val::Num(-3.0)));
        assert!(parse_flat_object("{}").unwrap().is_empty());

        // The fleet scaling curve: an array of flat objects.
        let m = parse_flat_object(
            "{\"curve\": [{\"nodes\": 256, \"rate\": 1.5}, {\"nodes\": 1000, \"rate\": 2.0}], \
             \"after\": true}",
        )
        .unwrap();
        let Some(Val::Arr(points)) = m.get("curve") else { panic!("curve parses as array") };
        assert_eq!(points.len(), 2);
        assert_eq!(points[1].get("nodes"), Some(&Val::Num(1000.0)));
        assert_eq!(m.get("after"), Some(&Val::Bool(true)));
        let m = parse_flat_object("{\"curve\": []}").unwrap();
        assert_eq!(m.get("curve"), Some(&Val::Arr(vec![])));
    }

    #[test]
    fn rejects_malformed_json() {
        assert!(parse_flat_object("").is_err());
        assert!(parse_flat_object("{\"a\": }").is_err());
        assert!(parse_flat_object("{\"a\": 1,}").is_err());
        assert!(parse_flat_object("{\"a\": 1} junk").is_err());
        assert!(parse_flat_object("{\"a\": 1, \"a\": 2}").is_err());
        assert!(parse_flat_object("{\"a\": [1, 2]}").is_err(), "arrays hold objects only");
        assert!(parse_flat_object("{\"a\": [{\"b\": [{}]}]}").is_err(), "no nested arrays");
        assert!(parse_flat_object("{\"a\": [{\"b\": 1}").is_err());
    }

    #[test]
    fn known_artifacts_need_their_keys() {
        let dir = std::env::temp_dir().join("capsim_bench_check_test");
        std::fs::create_dir_all(&dir).unwrap();
        let obs = dir.join("BENCH_obs.json");
        std::fs::write(&obs, "{\"loads_per_sec_obs_off\": 1}").unwrap();
        let mut errors = Vec::new();
        check_file(obs.to_str().unwrap(), &mut errors);
        assert!(errors.iter().any(|e| e.contains("within_budget")));

        let chaos = dir.join("BENCH_chaos.json");
        std::fs::write(
            &chaos,
            "{\"soak_scenarios_per_sec\": 2.5, \"guardrail_overhead_pct\": 0.4, \
             \"invariant_violations\": 1, \"within_budget\": true}",
        )
        .unwrap();
        let mut errors = Vec::new();
        check_file(chaos.to_str().unwrap(), &mut errors);
        assert!(errors.iter().any(|e| e.contains("invariant_violations")), "{errors:?}");

        let fleet = dir.join("BENCH_fleet.json");
        std::fs::write(
            &fleet,
            "{\"nodes\": 10000, \"speedup\": 1.0, \"deterministic\": true, \
             \"curve\": [{\"nodes\": 256, \"threads\": 1, \"shards\": 1, \
             \"node_epochs_per_sec\": 250.0}]}",
        )
        .unwrap();
        let mut errors = Vec::new();
        check_file(fleet.to_str().unwrap(), &mut errors);
        assert!(errors.is_empty(), "{errors:?}");
        std::fs::write(
            &fleet,
            "{\"nodes\": 10000, \"speedup\": 1.0, \"deterministic\": true, \
             \"curve\": [{\"nodes\": 256, \"threads\": 1, \"shards\": 0, \
             \"node_epochs_per_sec\": 250.0}]}",
        )
        .unwrap();
        let mut errors = Vec::new();
        check_file(fleet.to_str().unwrap(), &mut errors);
        assert!(errors.iter().any(|e| e.contains("curve[0].shards")), "{errors:?}");
        std::fs::write(&fleet, "{\"nodes\": 1, \"speedup\": 1.0, \"deterministic\": false}")
            .unwrap();
        let mut errors = Vec::new();
        check_file(fleet.to_str().unwrap(), &mut errors);
        assert!(errors.iter().any(|e| e.contains("deterministic is false")), "{errors:?}");
        assert!(errors.iter().any(|e| e.contains("curve")), "{errors:?}");

        let policy = dir.join("BENCH_policy.json");
        std::fs::write(
            &policy,
            "{\"deterministic\": true, \"invariant_violations\": 0, \
             \"frontier\": [{\"policy\": \"ladder\", \"energy_j\": 1.5, \
             \"avg_freq_mhz\": 2000.0}]}",
        )
        .unwrap();
        let mut errors = Vec::new();
        check_file(policy.to_str().unwrap(), &mut errors);
        assert!(errors.is_empty(), "{errors:?}");
        std::fs::write(
            &policy,
            "{\"deterministic\": false, \"invariant_violations\": 2, \
             \"frontier\": [{\"policy\": \"rl\", \"energy_j\": -1, \"avg_freq_mhz\": 2000.0}]}",
        )
        .unwrap();
        let mut errors = Vec::new();
        check_file(policy.to_str().unwrap(), &mut errors);
        assert!(errors.iter().any(|e| e.contains("deterministic is false")), "{errors:?}");
        assert!(errors.iter().any(|e| e.contains("invariant_violations")), "{errors:?}");
        assert!(errors.iter().any(|e| e.contains("frontier[0].energy_j")), "{errors:?}");
        std::fs::write(&policy, "{\"deterministic\": true, \"invariant_violations\": 0}").unwrap();
        let mut errors = Vec::new();
        check_file(policy.to_str().unwrap(), &mut errors);
        assert!(errors.iter().any(|e| e.contains("frontier")), "{errors:?}");

        let traffic = dir.join("BENCH_traffic.json");
        std::fs::write(
            &traffic,
            "{\"throughput_rps\": 5e6, \"p99_ms\": 1.87, \"energy_j\": 17.5, \
             \"deterministic\": true, \"invariant_violations\": 0, \
             \"ladder\": [{\"budget_w_per_node\": 118, \"p99_ms\": 1.88}], \
             \"frontier\": [{\"policy\": \"governor\", \"energy_j\": 5.8, \
             \"slo_viol_per_kj\": 161285.0}, {\"policy\": \"slo\", \"energy_j\": 5.7, \
             \"slo_viol_per_kj\": 150001.0}], \
             \"retry_storm\": [{\"retries\": 120, \"failover\": 43}], \
             \"backpressure\": [{\"mode\": \"retry_only\", \"energy_j\": 5.8, \
             \"slo_viol_per_kj\": 161285.0, \"rate_multiplier\": 1.0}, \
             {\"mode\": \"aimd_brownout\", \"energy_j\": 5.5, \
             \"slo_viol_per_kj\": 98000.0, \"rate_multiplier\": 0.25}]}",
        )
        .unwrap();
        let mut errors = Vec::new();
        check_file(traffic.to_str().unwrap(), &mut errors);
        assert!(errors.is_empty(), "{errors:?}");
        std::fs::write(
            &traffic,
            "{\"throughput_rps\": 5e6, \"p99_ms\": 1.87, \"energy_j\": 17.5, \
             \"deterministic\": false, \"invariant_violations\": 3, \
             \"ladder\": [], \
             \"frontier\": [{\"policy\": \"\", \"energy_j\": 5.8}], \
             \"retry_storm\": [{\"retries\": 0}], \
             \"backpressure\": [{\"mode\": \"retry_only\", \"energy_j\": -2, \
             \"slo_viol_per_kj\": 161285.0}]}",
        )
        .unwrap();
        let mut errors = Vec::new();
        check_file(traffic.to_str().unwrap(), &mut errors);
        assert!(errors.iter().any(|e| e.contains("deterministic is false")), "{errors:?}");
        assert!(errors.iter().any(|e| e.contains("invariant_violations")), "{errors:?}");
        assert!(errors.iter().any(|e| e.contains("ladder must not be empty")), "{errors:?}");
        assert!(errors.iter().any(|e| e.contains("frontier[0].policy")), "{errors:?}");
        assert!(errors.iter().any(|e| e.contains("slo_viol_per_kj")), "{errors:?}");
        assert!(errors.iter().any(|e| e.contains("must include the \"slo\"")), "{errors:?}");
        assert!(errors.iter().any(|e| e.contains("retry_storm[0].retries")), "{errors:?}");
        assert!(
            errors.iter().any(|e| e.contains("retry_storm[0]") && e.contains("failover")),
            "{errors:?}"
        );
        assert!(errors.iter().any(|e| e.contains("backpressure[0].energy_j")), "{errors:?}");
        assert!(
            errors.iter().any(|e| e.contains("backpressure[0]") && e.contains("rate_multiplier")),
            "{errors:?}"
        );
        assert!(
            errors.iter().any(|e| e.contains("must include the \"aimd_brownout\"")),
            "{errors:?}"
        );
        std::fs::write(
            &traffic,
            "{\"throughput_rps\": 5e6, \"p99_ms\": 1.87, \"energy_j\": 17.5, \
             \"deterministic\": true, \"invariant_violations\": 0, \
             \"ladder\": [{\"budget_w_per_node\": 118, \"p99_ms\": 1.88}], \
             \"frontier\": [{\"policy\": \"slo\", \"energy_j\": 5.7, \
             \"slo_viol_per_kj\": 150001.0}], \
             \"retry_storm\": [{\"retries\": 120, \"failover\": 43}]}",
        )
        .unwrap();
        let mut errors = Vec::new();
        check_file(traffic.to_str().unwrap(), &mut errors);
        assert!(
            errors.iter().any(|e| e.contains("missing required key \"backpressure\"")),
            "{errors:?}"
        );

        let unknown = dir.join("BENCH_custom.json");
        std::fs::write(&unknown, "{\"anything\": 1}").unwrap();
        let mut errors = Vec::new();
        check_file(unknown.to_str().unwrap(), &mut errors);
        assert!(errors.is_empty(), "{errors:?}");
    }
}
