//! **Extension X5** (future-work item 3): an unpredictable workload under
//! power capping.
//!
//! §IV-C: "Power capping is best used when the workload is unpredictable
//! in terms of its power consumption." The phased workload alternates
//! compute/memory/idle bursts; this harness compares its behaviour
//! uncapped vs under mid and low caps, reporting the time penalty and how
//! often the BMC had to move (dithering activity).
//!
//! Usage: `cargo run -p capsim-bench --bin ext_phased --release`

use capsim_apps::phased::PhasedWorkload;
use capsim_apps::Workload;
use capsim_core::report::markdown_table;
use capsim_node::{Machine, MachineConfig, PowerCap};

fn main() {
    let mut rows = Vec::new();
    let mut base_time = 0.0;
    for cap in [None, Some(150.0), Some(140.0), Some(130.0)] {
        let mut m = Machine::new(MachineConfig::e5_2680(11));
        if let Some(c) = cap {
            m.set_power_cap(Some(PowerCap::new(c).unwrap()));
        }
        let mut w = PhasedWorkload::new(120, 40_000, 11);
        w.run(&mut m);
        let s = m.finish_run();
        if cap.is_none() {
            base_time = s.wall_s;
        }
        let (esc, deesc, exc) = s.bmc_stats;
        rows.push(vec![
            cap.map_or("none".into(), |c| format!("{c:.0}")),
            format!("{:.3}", s.wall_s),
            format!("{:+.0} %", (s.wall_s / base_time - 1.0) * 100.0),
            format!("{:.1}", s.avg_power_w),
            format!("{:.1}", s.min_power_w),
            format!("{:.1}", s.max_power_w),
            format!("{}", esc + deesc),
            format!("{exc}"),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "cap (W)",
                "time (s)",
                "time vs uncapped",
                "avg power (W)",
                "min W",
                "max W",
                "rung moves",
                "exceptions",
            ],
            &rows,
        )
    );
    println!(
        "Expected shape: uncapped power swings widely (idle ~101 W to busy\n\
         ~155 W); a cap clips only the busy bursts, so the controller\n\
         dithers constantly (high rung-move counts) and the time penalty\n\
         is smaller than for a steady workload at the same cap — the\n\
         regime §IV-C argues capping is actually for."
    );
}
