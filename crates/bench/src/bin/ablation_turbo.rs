//! **Ablation X7**: what if the testbed had run with Turbo Boost on?
//!
//! The paper's platform reads 2701 MHz at baseline — turbo was disabled.
//! This ablation re-runs the stereo workload with the single-core 3.5 GHz
//! turbo bin enabled and shows the interaction with capping: turbo is the
//! *first* headroom the BMC reclaims, so a turbo-enabled node loses its
//! turbo advantage at caps that leave a non-turbo node completely
//! untouched.
//!
//! Usage: `cargo run -p capsim-bench --bin ablation_turbo --release`

use capsim_apps::{StereoMatching, Workload};
use capsim_core::report::markdown_table;
use capsim_node::{Machine, MachineConfig, PowerCap};

fn run(turbo: bool, cap: Option<f64>) -> (f64, f64, f64) {
    let mut cfg = if turbo { MachineConfig::e5_2680_turbo(8) } else { MachineConfig::e5_2680(8) };
    cfg.control_period_us = 5.0;
    cfg.meter_window_s = 1e-4;
    let mut m = Machine::new(cfg);
    if let Some(c) = cap {
        m.set_power_cap(Some(PowerCap::new(c).unwrap()));
    }
    let mut app = StereoMatching::test_scale(8);
    app.width = 224;
    app.height = 224;
    app.sweeps = 2;
    app.run(&mut m);
    let s = m.finish_run();
    (s.wall_s, s.avg_power_w, s.avg_freq_mhz)
}

fn main() {
    let mut rows = Vec::new();
    let (t_base, _, _) = run(false, None);
    for turbo in [false, true] {
        for cap in [None, Some(160.0), Some(150.0), Some(140.0)] {
            let (t, p, f) = run(turbo, cap);
            rows.push(vec![
                if turbo { "turbo on" } else { "turbo off" }.to_string(),
                cap.map_or("none".into(), |c| format!("{c:.0}")),
                format!("{:.4}", t),
                format!("{:+.0} %", (t / t_base - 1.0) * 100.0),
                format!("{p:.1}"),
                format!("{f:.0}"),
            ]);
        }
    }
    println!(
        "{}",
        markdown_table(
            &["config", "cap (W)", "time (s)", "vs non-turbo base", "power (W)", "freq (MHz)"],
            &rows,
        )
    );
    println!(
        "Expected shape: uncapped turbo is faster but hotter; by ~150 W the\n\
         turbo node has been throttled back to (or below) nominal frequency\n\
         and the advantage is gone, while the non-turbo node is still barely\n\
         touched — capping monetizes exactly the headroom turbo spends."
    );
}
