//! Traffic bench: the SLO-per-joule power-emergency experiment and the
//! tail-latency cost of cap depth, written to `BENCH_traffic.json`.
//!
//! Usage: `cargo run -p capsim-bench --bin traffic --release [-- out.json]`
//! (`CAPSIM_SCALE=test` for the CI smoke.)
//!
//! Three measurements:
//!
//! * **the headline emergency** — a datacenter-mix fleet (10k nodes at
//!   paper scale) serves a diurnal + flash-crowd trace through an
//!   oversubscribed root budget and a chaos fault plan (sensor dropout +
//!   BMC crash). The run is repeated serial, parallel (re-exec'd under
//!   different `CAPSIM_THREADS` — the rayon shim resolves its pool once
//!   per process) and across shard counts; every twin must land on the
//!   same fingerprint (`deterministic`).
//! * **the cap ladder** — the same served trace at progressively deeper
//!   node budgets; each rung contributes (p99 latency, goodput, energy):
//!   the paper's performance-vs-cap trade re-measured on tail latency.
//! * **the policy frontier** — ladder vs governor vs trained-RL vs
//!   SLO-aware backends drive identical emergencies; each contributes
//!   SLO violations, energy and SLO-violations-per-kilojoule, with chaos
//!   invariants required green.
//! * **the retry storm** — the same emergency with closed-loop clients
//!   (timeout → capped-backoff retries) and barrier failover; replayed
//!   serial vs threaded in a re-exec'd child, with exact request
//!   conservation (`arrivals == completed + shed + in_flight`) asserted
//!   fleet-wide.
//! * **the backpressure frontier** — the retry storm served twice: once
//!   retry-only, once with the full robustness stack (AIMD client
//!   backoff + priority brownout + circuit breakers). Each mode
//!   contributes SLO violations, energy and SLO-violations-per-kJ; the
//!   robustness stack must win the frontier.

use std::hash::{DefaultHasher, Hash, Hasher};
use std::time::Instant;

use capsim_bench::Scale;
use capsim_chaos::{check, run_scenario};
use capsim_dcm::{train_rl, FleetBuilder, RlTrainConfig, TrafficSummary};
use capsim_policy::CapPolicySpec;
use capsim_traffic::EmergencyConfig;

/// One headline twin: how the same emergency is executed.
#[derive(Clone, Copy)]
struct Twin {
    threads: usize,
    /// 0 = automatic topology.
    shards: usize,
    parallel: bool,
}

fn emergency(nodes: usize, epochs: u32) -> EmergencyConfig {
    EmergencyConfig::headline(nodes, epochs, 42)
}

/// Run one twin in-process; prints nothing. `storm` selects the
/// closed-loop retry-storm variant of the emergency. Returns
/// (fingerprint, traffic, energy_j, slo/J, wall_s).
fn measure(
    nodes: usize,
    epochs: u32,
    twin: Twin,
    storm: bool,
) -> (u64, TrafficSummary, f64, f64, f64) {
    let cfg = if storm {
        EmergencyConfig::retry_storm(nodes, epochs, 42)
    } else {
        emergency(nodes, epochs)
    };
    let mut scenario = cfg.scenario();
    if twin.shards > 0 {
        scenario.shards = Some(twin.shards);
    }
    let start = Instant::now();
    let outcome = run_scenario(&scenario, twin.parallel);
    let wall = start.elapsed().as_secs_f64();
    let mut h = DefaultHasher::new();
    outcome.fingerprint().hash(&mut h);
    let traffic = outcome.report.traffic().expect("emergency records traffic");
    let energy = outcome.report.energy().energy_j;
    let spj = outcome.report.slo_violations_per_joule().unwrap_or(0.0);
    (h.finish(), traffic, energy, spj, wall)
}

/// Child entry: argv = --measure nodes epochs threads shards parallel
/// storm. Prints `<fingerprint> <completed> <p99_ms> <wall_s>`.
fn run_child(args: &[String]) {
    let num = |i: usize| args[i].parse::<usize>().expect("numeric arg");
    let twin = Twin { threads: num(2), shards: num(3), parallel: num(4) != 0 };
    let (fp, traffic, _, _, wall) = measure(num(0), num(1) as u32, twin, num(5) != 0);
    println!("{fp} {} {} {wall}", traffic.completed, traffic.p99_ms);
}

/// Re-exec this binary so `CAPSIM_THREADS` genuinely resizes the pool.
fn measure_in_child(nodes: usize, epochs: u32, twin: Twin, storm: bool) -> (u64, f64) {
    let exe = std::env::current_exe().expect("own path");
    let out = std::process::Command::new(exe)
        .env("CAPSIM_THREADS", twin.threads.to_string())
        .args([
            "--measure",
            &nodes.to_string(),
            &epochs.to_string(),
            &twin.threads.to_string(),
            &twin.shards.to_string(),
            &u8::from(twin.parallel).to_string(),
            &u8::from(storm).to_string(),
        ])
        .output()
        .expect("spawn measurement child");
    assert!(
        out.status.success(),
        "measurement child failed (threads={}, shards={}, parallel={}): {}",
        twin.threads,
        twin.shards,
        twin.parallel,
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).expect("child output");
    let mut it = text.split_whitespace();
    let fp: u64 = it.next().expect("fingerprint").parse().expect("fingerprint number");
    let wall: f64 = it.nth(2).expect("wall").parse().expect("wall number");
    (fp, wall)
}

/// One cap-ladder rung: the emergency trace served under a fixed node
/// budget, no faults (so the latency cost is the cap's alone).
fn ladder_point(nodes: usize, epochs: u32, budget_w_per_node: f64) -> String {
    let mut cfg = emergency(nodes, epochs);
    cfg.budget_w_per_node = budget_w_per_node;
    cfg.faults = false;
    let report = FleetBuilder::new()
        .nodes(cfg.nodes)
        .epochs(cfg.epochs)
        .epoch_s(cfg.epoch_s)
        .seed(cfg.seed)
        .budget_w(budget_w_per_node * nodes as f64)
        .observe(true)
        .workload(cfg.traffic.workload())
        .build()
        .run();
    let t = report.traffic().expect("traffic series");
    let e = report.energy();
    format!(
        "{{\"budget_w_per_node\": {budget_w_per_node}, \"p99_ms\": {:.6}, \
         \"p999_ms\": {:.6}, \"goodput_rps\": {:.1}, \"shed\": {}, \"energy_j\": {:.6}}}",
        t.p99_ms, t.p999_ms, t.goodput_rps, t.shed, e.energy_j
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--measure") {
        run_child(&args[1..]);
        return;
    }
    let out_path = args.first().cloned().unwrap_or_else(|| "BENCH_traffic.json".into());
    let scale = Scale::from_env();
    let scale_name = match scale {
        Scale::Paper => "full",
        Scale::Test => "test",
    };
    // Headline fleet, frontier fleet, epochs, RL training shape.
    let (nodes, frontier_nodes, epochs, train_cfg) = match scale {
        Scale::Paper => {
            let mut cfg = RlTrainConfig::quick(42);
            cfg.episodes = 8;
            cfg.nodes = 6;
            cfg.epochs = 10;
            cfg.budget_w = 330.0;
            (10_000, 512, 6, cfg)
        }
        Scale::Test => (48, 16, 6, RlTrainConfig::quick(42)),
    };

    // --- Headline emergency + determinism twins -------------------------
    eprintln!("traffic: headline emergency ({nodes} nodes x {epochs} epochs) …");
    let serial = Twin { threads: 1, shards: 1, parallel: false };
    let (fp0, traffic, energy_j, spj, wall0) = measure(nodes, epochs, serial, false);
    eprintln!(
        "  serial          : {:>10.1} s wall, {} completed, {} shed, p99 {:.4} ms",
        wall0, traffic.completed, traffic.shed, traffic.p99_ms
    );
    let twins = [
        Twin { threads: 2, shards: 0, parallel: true },
        Twin { threads: 2, shards: 4, parallel: true },
        Twin { threads: 4, shards: 32, parallel: true },
    ];
    let mut deterministic = true;
    for twin in twins {
        let (fp, wall) = measure_in_child(nodes, epochs, twin, false);
        let ok = fp == fp0;
        deterministic &= ok;
        eprintln!(
            "  threads={} shards={:<4}: {wall:>10.1} s wall, fingerprint {}",
            twin.threads,
            if twin.shards == 0 { "auto".into() } else { twin.shards.to_string() },
            if ok { "identical" } else { "DIVERGED" }
        );
    }
    assert!(deterministic, "emergency replay diverged across thread/shard twins");

    // --- Tail latency down the cap ladder -------------------------------
    let ladder_nodes = frontier_nodes;
    eprintln!("traffic: cap ladder ({ladder_nodes} nodes) …");
    let mut ladder = Vec::new();
    for budget in [150.0, 135.0, 125.0, 118.0, 112.0] {
        let point = ladder_point(ladder_nodes, epochs, budget);
        eprintln!("  {budget:>5} W/node     : {point}");
        ladder.push(point);
    }

    // --- Policy frontier under the full emergency -----------------------
    eprintln!("traffic: training the RL backend ({} episodes) …", train_cfg.episodes);
    let trained = train_rl(&train_cfg);
    let specs = [
        CapPolicySpec::Ladder(capsim_dcm::AllocationPolicy::Uniform),
        CapPolicySpec::Governor(capsim_policy::GovernorConfig::default()),
        CapPolicySpec::Rl(trained.q.clone()),
        CapPolicySpec::Slo(capsim_policy::SloConfig::default()),
    ];
    let mut frontier = Vec::new();
    let mut violations = 0usize;
    for spec in &specs {
        let name = spec.name();
        eprintln!("traffic: {name}: emergency frontier ({frontier_nodes} nodes) …");
        let scenario = emergency(frontier_nodes, epochs).with_policy(spec.clone()).scenario();
        let report = check(&scenario);
        let v = report.violations.len();
        if v > 0 {
            eprintln!("  {name}: {v} invariant violation(s): {:?}", report.violations);
        }
        violations += v;
        let t = report.outcome.report.traffic().expect("traffic series");
        let e = report.outcome.report.energy().energy_j;
        let per_kj = 1e3 * t.slo_violations as f64 / e;
        eprintln!(
            "  {name:<8}        : {:>8} slo viol, {e:>10.4} J, {per_kj:>8.2} viol/kJ, p99 {:.4} ms",
            t.slo_violations, t.p99_ms
        );
        frontier.push(format!(
            "{{\"policy\": \"{name}\", \"slo_violations\": {}, \"energy_j\": {e:.6}, \
             \"slo_viol_per_kj\": {per_kj:.4}, \"p99_ms\": {:.6}, \"completed\": {}, \
             \"shed\": {}, \"chaos_violations\": {v}}}",
            t.slo_violations, t.p99_ms, t.completed, t.shed
        ));
    }

    // --- Retry storm: closed-loop clients + barrier failover ------------
    let storm_nodes = frontier_nodes;
    eprintln!("traffic: retry storm ({storm_nodes} nodes) …");
    let (storm_fp, storm, _, _, storm_wall) =
        measure(storm_nodes, epochs, Twin { threads: 1, shards: 1, parallel: false }, true);
    eprintln!(
        "  serial          : {storm_wall:>10.1} s wall, {} retries, {} timeouts, \
         {} failover, {} shed",
        storm.retries, storm.client_timeouts, storm.failover, storm.shed
    );
    let storm_twin = Twin { threads: 4, shards: 4, parallel: true };
    let (storm_fp_child, storm_child_wall) =
        measure_in_child(storm_nodes, epochs, storm_twin, true);
    let storm_ok = storm_fp_child == storm_fp;
    deterministic &= storm_ok;
    eprintln!(
        "  threads=4 shards=4: {storm_child_wall:>10.1} s wall, fingerprint {}",
        if storm_ok { "identical" } else { "DIVERGED" }
    );
    assert!(storm_ok, "retry-storm replay diverged across thread/shard twins");
    assert!(storm.retries > 0, "the throttled emergency must ignite retries");
    assert!(storm.failover > 0, "full queues must re-home work at the barrier");
    assert_eq!(
        storm.arrivals,
        storm.completed + storm.shed + storm.in_flight,
        "retry-storm books must close exactly"
    );
    let retry_storm = format!(
        "{{\"retries\": {}, \"client_timeouts\": {}, \"failover\": {}, \"arrivals\": {}, \
         \"completed\": {}, \"shed\": {}, \"in_flight\": {}, \"p99_ms\": {:.6}}}",
        storm.retries,
        storm.client_timeouts,
        storm.failover,
        storm.arrivals,
        storm.completed,
        storm.shed,
        storm.in_flight,
        storm.p99_ms
    );

    // --- Backpressure frontier: retry-only vs the robustness stack ------
    // Fixed shape at both scales: the storm needs a horizon long enough
    // for the retry-only amplification loop to feed on itself (and for
    // AIMD to converge), which the 6-epoch headline shape is too short
    // to show.
    let (bp_nodes, bp_epochs) = (4, 16);
    eprintln!("traffic: backpressure frontier ({bp_nodes} nodes x {bp_epochs} epochs) …");
    let mut backpressure = Vec::new();
    let mut damped_spj = f64::MAX;
    let mut retry_only_spj = 0.0;
    for (mode, damped) in [("retry_only", false), ("aimd_brownout", true)] {
        let cfg = if damped {
            EmergencyConfig::backpressure_storm(bp_nodes, bp_epochs, 42)
        } else {
            EmergencyConfig::retry_storm(bp_nodes, bp_epochs, 42)
        };
        let report = run_scenario(&cfg.scenario(), true).report;
        let t = report.traffic().expect("traffic series");
        let e = report.energy().energy_j;
        let per_kj = 1e3 * t.slo_violations as f64 / e;
        // Retry-only clients carry no controller; their offered rate is
        // pinned at the full multiplier.
        let m = report.final_rate_multiplier().unwrap_or(1.0);
        if damped {
            damped_spj = per_kj;
        } else {
            retry_only_spj = per_kj;
        }
        eprintln!(
            "  {mode:<13}   : {:>8} slo viol, {e:>10.4} J, {per_kj:>8.2} viol/kJ, \
             {} retries, rate x{m:.3}",
            t.slo_violations, t.retries
        );
        backpressure.push(format!(
            "{{\"mode\": \"{mode}\", \"retries\": {}, \"slo_violations\": {}, \
             \"energy_j\": {e:.6}, \"slo_viol_per_kj\": {per_kj:.4}, \"p99_ms\": {:.6}, \
             \"rate_multiplier\": {m:.4}}}",
            t.retries, t.slo_violations, t.p99_ms
        ));
    }
    assert!(
        damped_spj < retry_only_spj,
        "the robustness stack must win the SLO-per-joule frontier: \
         {damped_spj:.2} vs {retry_only_spj:.2} viol/kJ"
    );

    let json = format!(
        "{{\n  \"scale\": \"{scale_name}\",\n  \"nodes\": {nodes},\n  \"epochs\": {epochs},\n  \
         \"deterministic\": {deterministic},\n  \"throughput_rps\": {:.1},\n  \
         \"p99_ms\": {:.6},\n  \"p999_ms\": {:.6},\n  \"arrivals\": {},\n  \
         \"completed\": {},\n  \"shed\": {},\n  \"slo_violations\": {},\n  \
         \"energy_j\": {energy_j:.4},\n  \"slo_violations_per_joule\": {spj:.6},\n  \
         \"invariant_violations\": {violations},\n  \
         \"ladder\": [\n    {}\n  ],\n  \"frontier\": [\n    {}\n  ],\n  \
         \"retry_storm\": [\n    {retry_storm}\n  ],\n  \
         \"backpressure\": [\n    {}\n  ]\n}}\n",
        traffic.goodput_rps,
        traffic.p99_ms,
        traffic.p999_ms,
        traffic.arrivals,
        traffic.completed,
        traffic.shed,
        traffic.slo_violations,
        ladder.join(",\n    "),
        frontier.join(",\n    "),
        backpressure.join(",\n    ")
    );
    std::fs::write(&out_path, &json).expect("write json");
    println!("{json}");
    eprintln!("wrote {out_path}");
    if violations > 0 {
        eprintln!("traffic: {violations} invariant violation(s) under the emergency — failing");
        std::process::exit(1);
    }
}
