//! Regenerates **Figures 1 and 2**: the per-cap series of Table II
//! normalized to each series' maximum, as CSV plus an ASCII plot.
//!
//! Usage: `cargo run -p capsim-bench --bin fig1_2 --release`

use capsim_bench::{run_both_sweeps, Scale};
use capsim_core::figures::{figure1_series, figure2_series, figure_ascii, figure_csv, x_labels};
use capsim_core::persist::{maybe_write, OutputDir};
use capsim_core::LadderKind;

fn main() {
    let scale = Scale::from_env();
    let out = OutputDir::from_env();
    eprintln!("running Figure 1/2 sweeps at {scale:?} scale …");
    let (stereo, sire) = run_both_sweeps(scale, LadderKind::Full);

    let labels = x_labels(&sire);
    let f1 = figure1_series(&sire);
    let csv1 = figure_csv(&labels, &f1);
    println!("== Figure 1: SIRE/RSM, normalized ==\n");
    println!("{csv1}");
    println!("{}", figure_ascii(&labels, &f1));
    maybe_write(&out, "figure1.csv", "Figure 1: SIRE/RSM normalized series", &csv1);

    let labels = x_labels(&stereo);
    let f2 = figure2_series(&stereo);
    let csv2 = figure_csv(&labels, &f2);
    println!("== Figure 2: Stereo Matching (simulated annealing), normalized ==\n");
    println!("{csv2}");
    println!("{}", figure_ascii(&labels, &f2));
    maybe_write(&out, "figure2.csv", "Figure 2: Stereo Matching normalized series", &csv2);

    println!(
        "Shape checks (the paper's visual signatures):\n\
         * time and energy hug zero until ~140 W then spike to 1.0 at 120 W\n\
         * frequency steps down and flattens at 1200/2701 ≈ 0.44\n\
         * power declines gently toward ~0.78 of baseline\n\
         * iTLB misses spike only at the lowest caps"
    );
}
