//! Fleet-scaling smoke: steps a managed fleet serially and in parallel,
//! checks the two runs are bit-identical, and emits a JSON trajectory
//! point with node-epochs-per-second throughput.
//!
//! Usage: `cargo run -p capsim-bench --bin fleet --release [-- out.json]`
//!
//! `CAPSIM_SCALE=test` shrinks the run to 32 nodes with the lossy fault
//! schedule enabled — the CI smoke configuration. The default is a
//! 256-node clean fleet, the scale target from the roadmap.
//!
//! The committed `BENCH_fleet.json` at the repo root records the
//! trajectory across PRs; regenerate after fleet-relevant changes.
//! Speedup is whatever the host delivers: on a single-core runner the
//! parallel run ties (or slightly trails) the serial one, and the JSON
//! records the measured number plus the thread count so readers can
//! judge it.

use std::time::Instant;

use capsim_dcm::{FleetBuilder, FleetReport};
use capsim_ipmi::FaultSpec;

struct Scale {
    nodes: usize,
    epochs: u32,
    faults: FaultSpec,
    label: &'static str,
}

fn scale() -> Scale {
    match std::env::var("CAPSIM_SCALE").as_deref() {
        Ok("test") => Scale { nodes: 32, epochs: 4, faults: FaultSpec::lossy(0.05), label: "test" },
        _ => Scale { nodes: 256, epochs: 4, faults: FaultSpec::none(), label: "full" },
    }
}

fn run(sc: &Scale, parallel: bool) -> (FleetReport, f64) {
    let start = Instant::now();
    let report = FleetBuilder::new()
        .nodes(sc.nodes)
        .epochs(sc.epochs)
        .faults(sc.faults)
        .seed(7)
        .parallel(parallel)
        .build()
        .run();
    let wall = start.elapsed().as_secs_f64();
    let node_epochs = (sc.nodes as u32 * sc.epochs) as f64;
    (report, node_epochs / wall)
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_fleet.json".into());
    let sc = scale();
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!(
        "fleet: {} nodes x {} epochs ({}, {} host threads) …",
        sc.nodes, sc.epochs, sc.label, threads
    );

    let (serial_report, serial_rate) = run(&sc, false);
    eprintln!("  serial  : {serial_rate:>10.1} node-epochs/s");
    let (parallel_report, parallel_rate) = run(&sc, true);
    eprintln!("  parallel: {parallel_rate:>10.1} node-epochs/s");

    let deterministic = serial_report.render() == parallel_report.render();
    assert!(
        deterministic,
        "parallel fleet run diverged from serial run — determinism contract broken"
    );
    let speedup = parallel_rate / serial_rate;
    eprintln!("  speedup : {speedup:.2}x (deterministic: {deterministic})");
    eprintln!(
        "  fleet   : {} responsive of {}, final epoch answered={}",
        parallel_report.responsive(),
        parallel_report.nodes,
        parallel_report.records.last().map_or(0, |r| r.answered)
    );

    let json = format!(
        "{{\n  \"scale\": \"{}\",\n  \"nodes\": {},\n  \"epochs\": {},\n  \
         \"threads\": {threads},\n  \"serial_node_epochs_per_sec\": {serial_rate:.1},\n  \
         \"parallel_node_epochs_per_sec\": {parallel_rate:.1},\n  \"speedup\": {speedup:.2},\n  \
         \"deterministic\": {deterministic}\n}}\n",
        sc.label, sc.nodes, sc.epochs
    );
    std::fs::write(&out_path, &json).expect("write json");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
