//! Fleet-scaling benchmark: measures node-epochs-per-second across fleet
//! sizes, worker counts and shard topologies, checks every configuration
//! lands on byte-identical results, and writes the scaling record to
//! `BENCH_fleet.json`.
//!
//! Usage: `cargo run -p capsim-bench --bin fleet --release [-- out.json]`
//!
//! Thread-count entries re-exec this binary with `CAPSIM_THREADS` set —
//! the rayon shim resolves its worker count once per process, so an
//! honest sweep needs one process per point. Each child runs a single
//! configuration and prints its rate plus a fingerprint of the rendered
//! report; the parent asserts all fingerprints of a configuration agree
//! (the determinism contract: serial ≡ parallel ≡ any shard count).
//!
//! `CAPSIM_SCALE=test` shrinks the run to the CI smoke: a lossy 32-node
//! busy fleet plus a 64-node datacenter-mix fleet, each serial and
//! parallel (2 virtual threads, 4 shards). The default is the full
//! scaling record: a 256-node busy baseline (like-for-like with the
//! trajectory before the hierarchical engine), 1k/10k-node
//! datacenter-mix serial runs, and thread and shard sweeps at 1k nodes.
//!
//! Speedup is whatever the host delivers: on a single-core runner every
//! thread count ties, and the JSON records the measured numbers so
//! readers can judge them.

use std::hash::{DefaultHasher, Hash, Hasher};
use std::time::Instant;

use capsim_dcm::FleetBuilder;
use capsim_ipmi::FaultSpec;

/// One measured configuration.
#[derive(Clone)]
struct Point {
    nodes: usize,
    epochs: u32,
    /// Worker count the child process ran with (`CAPSIM_THREADS`).
    threads: usize,
    /// Explicit shard count, or 0 for the automatic topology.
    shards: usize,
    parallel: bool,
    datacenter: bool,
    lossy: bool,
}

impl Point {
    fn label(&self) -> String {
        format!(
            "{} nodes x {} epochs, {} load, threads={}, shards={}, {}",
            self.nodes,
            self.epochs,
            if self.datacenter { "datacenter" } else { "busy" },
            self.threads,
            if self.shards == 0 { "auto".into() } else { self.shards.to_string() },
            if self.parallel { "parallel" } else { "serial" },
        )
    }
}

/// Run one configuration in-process; returns (node-epochs/s, resolved
/// shard count, fingerprint of the rendered report).
fn measure(p: &Point) -> (f64, usize, u64) {
    let mut b = FleetBuilder::new()
        .nodes(p.nodes)
        .epochs(p.epochs)
        .seed(7)
        .datacenter_mix(p.datacenter)
        .parallel(p.parallel);
    if p.lossy {
        b = b.faults(FaultSpec::lossy(0.05));
    }
    if p.shards > 0 {
        b = b.shards(p.shards);
    }
    let start = Instant::now();
    let fleet = b.build();
    let shards = fleet.shards();
    let report = fleet.run();
    let wall = start.elapsed().as_secs_f64();
    let mut h = DefaultHasher::new();
    report.render().hash(&mut h);
    ((p.nodes as u32 * p.epochs) as f64 / wall, shards, h.finish())
}

/// Run one configuration in a child process with `CAPSIM_THREADS` set, so
/// the rayon shim actually uses `threads` workers.
fn measure_in_child(p: &Point) -> (f64, usize, u64) {
    let exe = std::env::current_exe().expect("own path");
    let out = std::process::Command::new(exe)
        .env("CAPSIM_THREADS", p.threads.to_string())
        .args([
            "--measure",
            &p.nodes.to_string(),
            &p.epochs.to_string(),
            &p.threads.to_string(),
            &p.shards.to_string(),
            &u8::from(p.parallel).to_string(),
            &u8::from(p.datacenter).to_string(),
            &u8::from(p.lossy).to_string(),
        ])
        .output()
        .expect("spawn measurement child");
    assert!(
        out.status.success(),
        "measurement child failed for {}: {}",
        p.label(),
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).expect("child output");
    let mut it = text.split_whitespace();
    let rate: f64 = it.next().expect("rate").parse().expect("rate number");
    let shards: usize = it.next().expect("shards").parse().expect("shard count");
    let fp: u64 = it.next().expect("fingerprint").parse().expect("fingerprint number");
    (rate, shards, fp)
}

/// Child entry: argv = --measure nodes epochs threads shards parallel
/// datacenter lossy. Prints `<rate> <shards> <fingerprint>`.
fn run_child(args: &[String]) {
    let num = |i: usize| args[i].parse::<usize>().expect("numeric arg");
    let p = Point {
        nodes: num(0),
        epochs: num(1) as u32,
        threads: num(2),
        shards: num(3),
        parallel: num(4) != 0,
        datacenter: num(5) != 0,
        lossy: num(6) != 0,
    };
    let (rate, shards, fp) = measure(&p);
    println!("{rate} {shards} {fp}");
}

struct Measured {
    point: Point,
    rate: f64,
    shards: usize,
    fingerprint: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--measure") {
        run_child(&args[1..]);
        return;
    }
    let out_path = args.first().cloned().unwrap_or_else(|| "BENCH_fleet.json".into());
    let test_scale = std::env::var("CAPSIM_SCALE").as_deref() == Ok("test");
    let scale = if test_scale { "test" } else { "full" };

    let p = |nodes: usize,
             epochs: u32,
             threads: usize,
             shards: usize,
             parallel: bool,
             datacenter: bool,
             lossy: bool| {
        Point { nodes, epochs, threads, shards, parallel, datacenter, lossy }
    };
    // First entry is the like-for-like baseline the speedup is quoted
    // against; the headline entry is the largest datacenter-mix run.
    let points: Vec<Point> = if test_scale {
        vec![
            p(32, 4, 1, 1, false, false, true),
            p(32, 4, 2, 4, true, false, true),
            p(64, 4, 1, 1, false, true, true),
            p(64, 4, 2, 4, true, true, true),
        ]
    } else {
        vec![
            // Busy-mix baseline, like-for-like with the pre-hierarchy
            // trajectory (256 clean nodes, serial).
            p(256, 4, 1, 1, false, false, false),
            // Datacenter-mix scaling curve, serial.
            p(1000, 4, 1, 1, false, true, false),
            p(10000, 4, 1, 1, false, true, false),
            // CAPSIM_THREADS sweep at 1k nodes (automatic shards).
            p(1000, 4, 1, 0, true, true, false),
            p(1000, 4, 2, 0, true, true, false),
            p(1000, 4, 4, 0, true, true, false),
            // Shard sweep at 1k nodes, 2 workers.
            p(1000, 4, 2, 4, true, true, false),
            p(1000, 4, 2, 32, true, true, false),
            // Headline configuration, parallel.
            p(10000, 4, 2, 0, true, true, false),
        ]
    };

    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!("fleet scaling record ({scale}, {host_threads} host threads):");
    let mut measured: Vec<Measured> = Vec::with_capacity(points.len());
    for point in points {
        let (rate, shards, fingerprint) = measure_in_child(&point);
        eprintln!("  {:>9.1} ne/s  {}", rate, point.label());
        measured.push(Measured { point, rate, shards, fingerprint });
    }

    // Determinism contract: every run of the same simulation
    // configuration (nodes, epochs, load, faults) must land on the same
    // rendered report, whatever the thread count or shard topology.
    let mut deterministic = true;
    for m in &measured {
        let twin = measured
            .iter()
            .find(|o| {
                o.point.nodes == m.point.nodes
                    && o.point.epochs == m.point.epochs
                    && o.point.datacenter == m.point.datacenter
                    && o.point.lossy == m.point.lossy
            })
            .expect("self at minimum");
        if twin.fingerprint != m.fingerprint {
            deterministic = false;
            eprintln!("  DETERMINISM BROKEN: {} vs {}", m.point.label(), twin.point.label());
        }
    }
    assert!(deterministic, "shard/thread topology changed simulation results");

    let baseline = &measured[0];
    let headline = measured
        .iter()
        .max_by(|a, b| a.point.nodes.cmp(&b.point.nodes).then(a.rate.total_cmp(&b.rate)))
        .expect("nonempty");
    let best_parallel =
        measured.iter().filter(|m| m.point.parallel).map(|m| m.rate).fold(0.0, f64::max);
    let best_serial = measured
        .iter()
        .filter(|m| !m.point.parallel && m.point.nodes == headline.point.nodes)
        .map(|m| m.rate)
        .fold(baseline.rate, f64::max);
    let speedup = if best_parallel > 0.0 { best_parallel / best_serial } else { 1.0 };

    let mut curve = String::new();
    for (i, m) in measured.iter().enumerate() {
        let sep = if i + 1 == measured.len() { "" } else { "," };
        curve.push_str(&format!(
            "    {{\"nodes\": {}, \"threads\": {}, \"shards\": {}, \"parallel\": {}, \
             \"load\": \"{}\", \"node_epochs_per_sec\": {:.1}}}{}\n",
            m.point.nodes,
            m.point.threads,
            m.shards,
            m.point.parallel,
            if m.point.datacenter { "datacenter" } else { "busy" },
            m.rate,
            sep
        ));
    }
    let json = format!(
        "{{\n  \"scale\": \"{scale}\",\n  \"host_threads\": {host_threads},\n  \
         \"baseline_nodes\": {},\n  \"baseline_node_epochs_per_sec\": {:.1},\n  \
         \"nodes\": {},\n  \"serial_node_epochs_per_sec\": {:.1},\n  \
         \"speedup\": {speedup:.2},\n  \"deterministic\": {deterministic},\n  \
         \"curve\": [\n{curve}  ]\n}}\n",
        baseline.point.nodes, baseline.rate, headline.point.nodes, best_serial
    );
    std::fs::write(&out_path, &json).expect("write json");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
