//! Regenerates **Table II**: both applications at the baseline plus nine
//! power caps (160…120 W), averaged over seeded runs, with the paper's
//! %-difference columns — followed by a paper-vs-measured comparison of
//! every %-diff row.
//!
//! Usage: `cargo run -p capsim-bench --bin table2 --release`
//! (`CAPSIM_SCALE=test CAPSIM_RUNS=1` for a smoke run).

use capsim_bench::{comparison_row, paper, run_both_sweeps, Scale};
use capsim_core::persist::{maybe_write, OutputDir};
use capsim_core::runner::RunMetrics;
use capsim_core::table::{table2_memory, table2_performance};
use capsim_core::{LadderKind, SweepResult};

fn pct(s: &SweepResult, f: impl Fn(&RunMetrics) -> f64 + Copy) -> Vec<f64> {
    s.rows.iter().map(|r| r.pct_diff(&s.baseline, f)).collect()
}

fn compare(s: &SweepResult, p: &paper::PaperBlock) {
    println!("--- {} : paper vs measured (%-diff per cap 160→120) ---", s.workload);
    println!("{}", comparison_row("time %", &p.time_pct, &pct(s, |m| m.time_s)));
    println!("{}", comparison_row("energy %", &p.energy_pct, &pct(s, |m| m.energy_j)));
    let freq: Vec<f64> = s.rows.iter().map(|r| r.avg_freq_mhz).collect();
    let pf: Vec<i64> = p.freq_mhz.iter().map(|&f| f as i64).collect();
    println!("{}", comparison_row("freq MHz (abs)", &pf, &freq));
    let power: Vec<f64> = s.rows.iter().map(|r| r.avg_power_w).collect();
    let pp: Vec<i64> = p.power_w.iter().map(|&w| w.round() as i64).collect();
    println!("{}", comparison_row("power W (abs)", &pp, &power));
    println!("{}", comparison_row("L1 miss %", &p.l1_pct, &pct(s, |m| m.l1_misses)));
    println!("{}", comparison_row("L2 miss %", &p.l2_pct, &pct(s, |m| m.l2_misses)));
    println!("{}", comparison_row("L3 miss %", &p.l3_pct, &pct(s, |m| m.l3_misses)));
    println!("{}", comparison_row("dTLB miss %", &p.dtlb_pct, &pct(s, |m| m.dtlb_misses)));
    println!("{}", comparison_row("iTLB miss %", &p.itlb_pct, &pct(s, |m| m.itlb_misses)));
}

fn main() {
    let scale = Scale::from_env();
    eprintln!("running Table II sweep at {scale:?} scale …");
    let (stereo, sire) = run_both_sweeps(scale, LadderKind::Full);

    let out = OutputDir::from_env();
    let a = format!("{}\n{}", table2_performance(&stereo, "A"), table2_memory(&stereo, "A"));
    let b = format!("{}\n{}", table2_performance(&sire, "B"), table2_memory(&sire, "B"));
    println!("== Table II (A rows): Stereo Matching ==\n");
    println!("{a}");
    println!("== Table II (B rows): SIRE/RSM ==\n");
    println!("{b}");
    maybe_write(&out, "table2_stereo.md", "Table II rows A0-A9 (Stereo Matching)", &a);
    maybe_write(&out, "table2_sire.md", "Table II rows B0-B9 (SIRE/RSM)", &b);

    compare(&stereo, &paper::STEREO);
    compare(&sire, &paper::SIRE);
}
