//! **Extension X4** (future-work item 2): identify the active throttling
//! techniques with microbenchmarks.
//!
//! Drives the node to its capping equilibrium at several caps, then runs
//! the probe battery and prints which techniques it detects — matched
//! against the BMC's actual rung (ground truth the paper did not have).
//!
//! Usage: `cargo run -p capsim-bench --bin ext_detector --release`

use capsim_core::report::markdown_table;
use capsim_core::TechniqueDetector;
use capsim_mem::MemGateLevel;
use capsim_node::{Machine, MachineConfig, PowerCap};

fn main() {
    let mut rows = Vec::new();
    for cap in [None, Some(150.0), Some(140.0), Some(130.0), Some(120.0)] {
        let mut m = Machine::new(MachineConfig::e5_2680(3));
        if let Some(c) = cap {
            m.set_power_cap(Some(PowerCap::new(c).unwrap()));
        }
        // Drive the control loop to equilibrium with representative work.
        let block = m.code_block(96, 24);
        let buf = m.alloc(8 << 20);
        for i in 0..600_000u64 {
            m.exec_block(&block);
            m.load(buf.at((i * 64) % (8 << 20)));
        }
        let d = TechniqueDetector::default().probe(&mut m);
        let truth = m.current_rung();
        let flags = |b: bool| if b { "yes" } else { "-" };
        rows.push(vec![
            cap.map_or("none".into(), |c| format!("{c:.0}")),
            format!("{:.0}", d.est_freq_mhz),
            format!("{:.2}", d.est_duty),
            flags(d.dvfs).into(),
            flags(d.duty_cycling).into(),
            flags(d.l2_gating).into(),
            flags(d.l3_gating).into(),
            flags(d.itlb_shrink).into(),
            flags(d.mem_gating).into(),
            format!(
                "P{} duty {}/16 L3w{} iTLB{} {:?}",
                truth.pstate,
                truth.tstate.on_16(),
                truth.mem.l3_ways,
                truth.mem.itlb_entries,
                truth.mem.mem_gate
            ),
        ]);
        // Sanity cross-check between detection and ground truth.
        if truth.mem.mem_gate >= MemGateLevel::Heavy {
            assert!(d.mem_gating || d.est_dram_ns > 100.0, "heavy gating went undetected");
        }
    }
    println!(
        "{}",
        markdown_table(
            &[
                "cap (W)",
                "est freq",
                "est duty",
                "DVFS?",
                "T-states?",
                "L2 gate?",
                "L3 gate?",
                "iTLB shrink?",
                "mem gate?",
                "ground truth (BMC rung)",
            ],
            &rows,
        )
    );
    println!(
        "The paper inferred \"techniques that involve the configuration of\n\
         the memory hierarchy are being employed\" from application counters;\n\
         the probe battery pins down which ones, per cap.\n\n\
         Note the observer effect at mid caps: the probes themselves draw\n\
         less power than the warm-up workload, so the adaptive controller\n\
         moves while being probed — the detector honestly reports what was\n\
         active *during* each probe, which can be a deeper rung than the\n\
         post-probe ground-truth column shows."
    );
}
