//! Hot-path throughput smoke: times the three operation classes the
//! simulator spends its life in and emits a JSON trajectory point.
//!
//! Usage: `cargo run -p capsim-bench --bin perf_smoke --release [-- out.json]`
//!
//! Measures, in host-wall-clock operations per second:
//!
//! * `accesses_per_sec` — raw [`MemoryHierarchy::data_access`] streaming
//!   (64 B stride over 1 MiB: the memo-hit + L1-miss + L2-hit hot path),
//! * `machine_loads_per_sec` — the same stream through the full
//!   [`Machine::load`] charge path, uncapped and under a 135 W cap,
//! * `exec_block_per_sec` — instruction-block execution,
//! * `ticks_per_sec` — control-loop ticks (power model + BMC + meter).
//!
//! The committed `BENCH_hotpath.json` at the repo root records the
//! trajectory across PRs; regenerate after perf-relevant changes.

use std::time::Instant;

use capsim_mem::{MemoryHierarchy, VAddr};
use capsim_node::{Machine, MachineConfig, PowerCap};

/// Time `n` repetitions of `op`, returning operations per second.
fn rate(n: u64, mut op: impl FnMut(u64)) -> f64 {
    let start = Instant::now();
    for i in 0..n {
        op(i);
    }
    n as f64 / start.elapsed().as_secs_f64()
}

fn hier_accesses_per_sec() -> f64 {
    let mut h = MemoryHierarchy::new(MachineConfig::e5_2680(1).hierarchy, 1, 7);
    let n = 4_000_000u64;
    let r = rate(n, |i| {
        h.data_access(0, VAddr(0x100_0000 + (i * 64) % (1 << 20)), false);
    });
    assert!(h.total_stats().l1d_accesses == n);
    r
}

fn machine_loads_per_sec(cap_w: Option<f64>) -> f64 {
    let mut m = Machine::new(MachineConfig::e5_2680(1));
    m.set_power_cap(cap_w.map(|w| PowerCap::new(w).unwrap()));
    let reg = m.alloc(1 << 20);
    rate(2_000_000, |i| m.load(reg.at((i * 64) % (1 << 20))))
}

fn exec_block_per_sec() -> f64 {
    let mut m = Machine::new(MachineConfig::e5_2680(1));
    let block = m.code_block(96, 24);
    rate(2_000_000, |_| m.exec_block(&block))
}

fn ticks_per_sec() -> f64 {
    let mut m = Machine::new(MachineConfig::e5_2680(1));
    m.set_power_cap(Some(PowerCap::new(135.0).unwrap()));
    // One idle call per control period: each advances simulated time by
    // exactly one tick interval, so iterations ≈ ticks fired.
    let period_s = m.config().control_period_us * 1e-6;
    rate(200_000, |_| m.idle(period_s))
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_hotpath.json".into());
    eprintln!("perf_smoke: timing hot paths (release build recommended) …");
    let accesses = hier_accesses_per_sec();
    eprintln!("  hierarchy data_access : {accesses:>12.0} /s");
    let loads = machine_loads_per_sec(None);
    eprintln!("  machine load (uncapped): {loads:>12.0} /s");
    let loads_capped = machine_loads_per_sec(Some(135.0));
    eprintln!("  machine load (135 W)  : {loads_capped:>12.0} /s");
    let blocks = exec_block_per_sec();
    eprintln!("  exec_block            : {blocks:>12.0} /s");
    let ticks = ticks_per_sec();
    eprintln!("  control ticks         : {ticks:>12.0} /s");

    let json = format!(
        "{{\n  \"accesses_per_sec\": {accesses:.0},\n  \"machine_loads_per_sec\": {loads:.0},\n  \
         \"machine_loads_capped_per_sec\": {loads_capped:.0},\n  \"exec_block_per_sec\": {blocks:.0},\n  \
         \"ticks_per_sec\": {ticks:.0}\n}}\n"
    );
    std::fs::write(&out_path, &json).expect("write json");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
