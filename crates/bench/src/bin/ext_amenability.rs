//! **Extension X6** (future-work item 4): characterize applications'
//! amenability to power capping from an uncapped counter profile, and
//! validate the prediction against measured capped runs.
//!
//! Usage: `cargo run -p capsim-bench --bin ext_amenability --release`

use capsim_apps::kernels::{AluBurst, PointerChase, StreamTriad};
use capsim_apps::{SireRsm, StereoMatching, Workload};
use capsim_bench::Scale;
use capsim_core::report::markdown_table;
use capsim_core::{amenability_score, AmenabilityProfile};
use capsim_node::{Machine, MachineConfig, PowerCap};

fn profile_and_measure(
    name: &str,
    mk: &dyn Fn(u64) -> Box<dyn Workload>,
) -> (String, AmenabilityProfile, f64, f64) {
    // Uncapped profiling run.
    let mut m = Machine::new(MachineConfig::e5_2680(5));
    mk(5).run(&mut m);
    let base = m.finish_run();
    let prof = amenability_score(&base);
    // Measured run at a mid cap (DVFS region).
    let mut m = Machine::new(MachineConfig::e5_2680(5));
    m.set_power_cap(Some(PowerCap::new(140.0).unwrap()));
    mk(5).run(&mut m);
    let capped = m.finish_run();
    let measured = capped.wall_s / base.wall_s;
    // Prediction from the profile and the *measured* average frequency.
    let predicted = prof.predicted_slowdown(base.avg_freq_mhz, capped.avg_freq_mhz.max(1.0));
    (name.to_string(), prof, measured, predicted)
}

type WorkloadFactory = Box<dyn Fn(u64) -> Box<dyn Workload>>;

fn main() {
    let scale = Scale::from_env();
    eprintln!("running amenability extension at {scale:?} scale …");
    let apps: Vec<(&str, WorkloadFactory)> = vec![
        (
            "ALU Burst",
            Box::new(|_s| -> Box<dyn Workload> { Box::new(AluBurst { iters: 2_000_000 }) }),
        ),
        (
            "Stream Triad",
            Box::new(|_s| -> Box<dyn Workload> {
                Box::new(StreamTriad { elems: 4 << 20, passes: 2 })
            }),
        ),
        (
            "Pointer Chase",
            Box::new(|s| -> Box<dyn Workload> {
                Box::new(PointerChase { elems: 2 << 20, hops: 400_000, seed: s })
            }),
        ),
        (
            "SIRE/RSM",
            Box::new(move |s| -> Box<dyn Workload> {
                Box::new(match scale {
                    Scale::Paper => SireRsm::paper_scale(s),
                    Scale::Test => SireRsm::test_scale(s),
                })
            }),
        ),
        (
            "Stereo Matching",
            Box::new(move |s| -> Box<dyn Workload> {
                Box::new(match scale {
                    Scale::Paper => StereoMatching::paper_scale(s),
                    Scale::Test => StereoMatching::test_scale(s),
                })
            }),
        ),
    ];
    let mut rows = Vec::new();
    for (name, mk) in &apps {
        let (n, p, measured, predicted) = profile_and_measure(name, mk.as_ref());
        rows.push(vec![
            n,
            format!("{:.2}", p.ipc),
            format!("{:.2}", p.mem_per_kinstr),
            format!("{:.2}", p.score),
            format!("{predicted:.2}x"),
            format!("{measured:.2}x"),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "application",
                "IPC",
                "DRAM/kinstr",
                "amenability score",
                "predicted slowdown @140W",
                "measured slowdown @140W",
            ],
            &rows,
        )
    );
    println!(
        "Higher score = more memory-bound = more amenable to capping.\n\
         The paper's ordering must hold: SIRE/RSM scores above Stereo\n\
         Matching, and the DVFS-region slowdown prediction\n\
         T(f)/T(f0) = cpu_frac·f0/f + (1−cpu_frac) tracks the measurement."
    );
}
