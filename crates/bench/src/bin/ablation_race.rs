//! **Ablation X2**: race-to-idle vs crawl (DVFS) for periodic work.
//!
//! §II-B of the paper: "In many constant-voltage cases it is more
//! efficient to run briefly at peak speed and stay in a deep idle state
//! for a longer time (called race to idle) … However, reducing voltage
//! along with clock rate can change those tradeoffs." This ablation
//! quantifies exactly that on the simulated node: a periodic job (fixed
//! work, fixed period) executed either at P0-then-C6 or stretched across
//! the period at P-min.
//!
//! Usage: `cargo run -p capsim-bench --bin ablation_race --release`

use capsim_core::report::markdown_table;
use capsim_node::{Machine, MachineConfig};

/// Run `bursts` periods; in each, do `iters` block executions at the
/// given P-state, then idle out the rest of `period_s`.
fn periodic(pstate: u8, iters: u64, bursts: u32, period_s: f64, seed: u64) -> (f64, f64) {
    let mut m = Machine::new(MachineConfig::e5_2680(seed));
    m.force_throttle(pstate, 16);
    let block = m.code_block(96, 24);
    for _ in 0..bursts {
        let start = m.now_s();
        for i in 0..iters {
            m.exec_block(&block);
            m.branch(&block, i + 1 < iters);
        }
        let busy = m.now_s() - start;
        assert!(
            busy < period_s,
            "work does not fit the period at P{pstate}: {busy:.4}s vs {period_s}s"
        );
        m.idle(period_s - busy);
    }
    let s = m.finish_run();
    (s.energy_j, s.avg_power_w)
}

fn main() {
    // 1.2 M instructions per period of 1 ms: ~0.15 ms at P0, ~0.33 ms at
    // P-min — both meet the deadline; the energy comparison is the point.
    let iters = 15_000;
    let bursts = 200;
    let period = 1e-3;
    let (e_race, p_race) = periodic(0, iters, bursts, period, 1);
    let (e_crawl, p_crawl) = periodic(15, iters, bursts, period, 1);
    println!(
        "{}",
        markdown_table(
            &["strategy", "energy (J)", "avg power (W)"],
            &[
                vec![
                    "race-to-idle (P0 + C-states)".into(),
                    format!("{e_race:.2}"),
                    format!("{p_race:.1}")
                ],
                vec![
                    "crawl (P-min, DVFS)".into(),
                    format!("{e_crawl:.2}"),
                    format!("{p_crawl:.1}")
                ],
            ],
        )
    );
    let winner = if e_crawl < e_race { "crawl (DVFS)" } else { "race-to-idle" };
    println!(
        "winner: {winner} by {:.1} %\n\n\
         On this platform the two strategies land within a percent of each\n\
         other: the V² savings of crawling at P-min are almost exactly\n\
         offset by the platform's high idle floor, which rewards finishing\n\
         early and parking in C6. That near-tie is the paper's §II-B point\n\
         verbatim: \"DVFS-driven race-to-idle may not always produce the\n\
         best energy efficiency\" — the winner flips with the V/f curve\n\
         and the idle floor, so it must be measured, not assumed.",
        (e_race - e_crawl).abs() / e_race.max(e_crawl) * 100.0
    );
}
