//! **Extension X3** (future-work item 1): multi-core workloads under
//! power capping.
//!
//! Runs the striped multi-core stereo matcher on 1, 2 and 4 cores at a
//! few caps. More active cores draw more power, so the same cap forces
//! deeper throttling — the per-core slowdown worsens with core count, and
//! the parallel speedup collapses as the cap tightens.
//!
//! Usage: `cargo run -p capsim-bench --bin ext_multicore --release`

use capsim_apps::{ParallelStereo, StereoMatching, Workload};
use capsim_bench::Scale;
use capsim_core::report::markdown_table;
use capsim_node::{Machine, MachineConfig, PowerCap};

fn run(cores: usize, cap: Option<f64>, scale: Scale, seed: u64) -> (f64, f64) {
    let mut cfg = MachineConfig::e5_2680(seed);
    cfg.n_cores = cores;
    if scale == Scale::Test {
        cfg.control_period_us = 5.0;
        cfg.meter_window_s = 1e-4;
    }
    let mut m = Machine::new(cfg);
    if let Some(c) = cap {
        m.set_power_cap(Some(PowerCap::new(c).unwrap()));
    }
    let inner = match scale {
        Scale::Paper => {
            let mut s = StereoMatching::paper_scale(seed);
            s.sweeps = 2;
            s
        }
        Scale::Test => {
            // Mid-scale: large enough that a tight cap visibly bites.
            let mut s = StereoMatching::test_scale(seed);
            s.width = 224;
            s.height = 224;
            s.sweeps = 2;
            s
        }
    };
    let mut app = ParallelStereo::new(inner, cores);
    app.run(&mut m);
    let s = m.finish_run();
    (s.wall_s, s.avg_power_w)
}

fn main() {
    let scale = Scale::from_env();
    eprintln!("running multi-core extension at {scale:?} scale …");
    let caps = [None, Some(160.0), Some(140.0), Some(130.0)];
    let mut rows = Vec::new();
    let mut t1_by_cap = Vec::new();
    for &cap in &caps {
        let (t1, _) = run(1, cap, scale, 9);
        t1_by_cap.push(t1);
    }
    for &cores in &[1usize, 2, 4] {
        for (ci, &cap) in caps.iter().enumerate() {
            let (t, p) = run(cores, cap, scale, 9);
            rows.push(vec![
                cores.to_string(),
                cap.map_or("none".into(), |c| format!("{c:.0}")),
                format!("{t:.3}"),
                format!("{p:.1}"),
                format!("{:.2}x", t1_by_cap[ci] / t),
            ]);
        }
    }
    println!(
        "{}",
        markdown_table(&["cores", "cap (W)", "time (s)", "power (W)", "speedup vs 1-core"], &rows)
    );
    println!(
        "Expected shape: uncapped speedup is near-linear; under a tight cap\n\
         the extra cores push the node over budget, the BMC throttles\n\
         deeper, and the speedup collapses — capping penalizes parallelism."
    );
}
