//! Chaos-harness bench: proves the fault/guardrail machinery is cheap
//! and the invariant suite holds under load.
//!
//! Usage: `cargo run -p capsim-bench --bin chaos --release [-- out.json]`
//! (`CAPSIM_SCALE=test` for a fast smoke run.)
//!
//! Three measurements feed `BENCH_chaos.json`:
//!
//! * the scripted acceptance scenario (sensor dropout at t=10 s, BMC
//!   crash at t=20 s, recovery by t=30 s) runs with every invariant
//!   green, timed end to end including the serial replay check,
//! * a randomized soak over seeded fault plans, reported as
//!   scenarios/sec,
//! * guardrail overhead on the BMC control path: compute throughput on
//!   a capped machine with guardrails at their defaults vs
//!   `set_guardrails(None)`. The budget is 5% — the failsafe, watchdog
//!   and violation detector together must cost the hot path nothing
//!   measurable.

use std::time::Instant;

use capsim_bench::Scale;
use capsim_chaos::{check, soak, ChaosScenario, SoakConfig};
use capsim_node::{GuardrailConfig, Machine, MachineConfig, PowerCap};

/// One timed compute pass on a capped machine, guardrails on or off.
/// Returns outer iterations per second; each iteration spans several
/// control ticks so the guardrail bookkeeping is actually exercised.
fn compute_pass(iters: u64, guarded: bool) -> f64 {
    let mut m = Machine::new(MachineConfig::tiny(0));
    m.set_power_cap(Some(PowerCap::new(135.0).unwrap()));
    m.set_guardrails(guarded.then(GuardrailConfig::default));
    let start = Instant::now();
    for _ in 0..iters {
        m.compute(2_000);
    }
    iters as f64 / start.elapsed().as_secs_f64()
}

/// `reps` interleaved (off, on) throughput pairs after a discarded
/// warm-up. Returns best-of throughputs for the trajectory record and
/// the *minimum* per-pair overhead for the budget gate — scheduler
/// noise is one-sided, so one clean pair bounds the true overhead from
/// above, while a real regression slows every guarded pass and survives
/// the minimum (same estimator as the telemetry bench).
fn guardrail_pairs(iters: u64, reps: u32) -> (f64, f64, f64) {
    compute_pass(iters / 2, false); // warm-up, discarded
    let (mut off, mut on, mut min_overhead) = (0.0f64, 0.0f64, f64::INFINITY);
    for _ in 0..reps {
        let o = compute_pass(iters, false);
        let g = compute_pass(iters, true);
        min_overhead = min_overhead.min((o - g) / o * 100.0);
        off = off.max(o);
        on = on.max(g);
    }
    // True overhead can't be negative; a sub-zero minimum just means one
    // pair ran guarded-faster by noise, i.e. the overhead is unmeasurable.
    (off, on, min_overhead.max(0.0))
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_chaos.json".into());
    let (soak_runs, iters, reps) = match Scale::from_env() {
        Scale::Paper => (8u32, 4_000u64, 5),
        Scale::Test => (3u32, 1_000u64, 3),
    };

    eprintln!("chaos: running the scripted acceptance scenario …");
    let start = Instant::now();
    let report = check(&ChaosScenario::scripted());
    let scripted_ms = start.elapsed().as_secs_f64() * 1e3;
    let violations = report.violations.len();
    eprintln!("  scripted        : {scripted_ms:>10.1} ms, {violations} violation(s)");
    assert!(report.ok(), "scripted scenario violated invariants: {:?}", report.violations);

    eprintln!("chaos: soaking {soak_runs} randomized fault plans …");
    let cfg = SoakConfig { runs: soak_runs, nodes: 3, epochs: 8, seed: 0xC14A05 };
    let start = Instant::now();
    let soaked = soak(&cfg);
    let soak_per_sec = soaked.runs as f64 / start.elapsed().as_secs_f64();
    eprintln!("  soak            : {:>10.2} scenarios/s over {} run(s)", soak_per_sec, soaked.runs);
    assert!(
        soaked.ok(),
        "soak failed, reproducer: {}",
        soaked.failure.as_ref().map(|f| f.to_json()).unwrap_or_default()
    );

    eprintln!("chaos: timing guardrails-off vs -on compute path (n={iters}, best of {reps}) …");
    let (off, on, overhead_pct) = guardrail_pairs(iters, reps);
    eprintln!("  computes/s, off : {off:>12.0}");
    eprintln!("  computes/s, on  : {on:>12.0}");
    let budget_pct = 5.0;
    let within_budget = overhead_pct <= budget_pct;
    eprintln!("  overhead        : {overhead_pct:>11.2}% (budget {budget_pct}%)");

    let json = format!(
        "{{\n  \"scripted_ms\": {scripted_ms:.1},\n  \"invariant_violations\": {violations},\n  \
         \"soak_runs\": {soak_runs},\n  \"soak_scenarios_per_sec\": {soak_per_sec:.3},\n  \
         \"computes_per_sec_guard_off\": {off:.0},\n  \"computes_per_sec_guard_on\": {on:.0},\n  \
         \"guardrail_overhead_pct\": {overhead_pct:.3},\n  \"budget_pct\": {budget_pct:.1},\n  \
         \"within_budget\": {within_budget}\n}}\n"
    );
    std::fs::write(&out_path, &json).expect("write json");
    println!("{json}");
    eprintln!("wrote {out_path}");
    if !within_budget {
        eprintln!("chaos: guardrail overhead {overhead_pct:.2}% exceeds the {budget_pct}% budget");
        std::process::exit(1);
    }
}
