//! The paper's published numbers (Tables I and II), embedded so every
//! harness binary can print paper-vs-measured side by side.
//!
//! Percent differences are the paper's own rounded integers. Absolute
//! seconds/joules are theirs; our scaled instances reproduce the *shape*
//! (%-diff columns), not the absolute magnitudes — see EXPERIMENTS.md.

/// Caps of the sweep, in row order A1..A9 / B1..B9.
pub const CAPS_W: [f64; 9] = [160.0, 155.0, 150.0, 145.0, 140.0, 135.0, 130.0, 125.0, 120.0];

/// One application's Table II block (baseline + 9 caps of %-diffs, plus
/// absolute anchors for the baseline row).
#[derive(Clone, Copy, Debug)]
pub struct PaperBlock {
    pub name: &'static str,
    pub baseline_power_w: f64,
    pub baseline_time_s: f64,
    pub baseline_energy_j: f64,
    pub baseline_freq_mhz: f64,
    /// Measured average node power per cap (absolute watts).
    pub power_w: [f64; 9],
    /// %-diffs vs baseline, per cap, paper rounding.
    pub energy_pct: [i64; 9],
    pub time_pct: [i64; 9],
    /// Average frequency per cap (absolute MHz).
    pub freq_mhz: [f64; 9],
    pub l1_pct: [i64; 9],
    pub l2_pct: [i64; 9],
    pub l3_pct: [i64; 9],
    pub dtlb_pct: [i64; 9],
    pub itlb_pct: [i64; 9],
}

/// Table II, rows A0–A9 (Stereo Matching with simulated annealing).
pub const STEREO: PaperBlock = PaperBlock {
    name: "Stereo Matching",
    baseline_power_w: 153.1,
    baseline_time_s: 89.0,
    baseline_energy_j: 13_626.2,
    baseline_freq_mhz: 2701.0,
    power_w: [153.3, 152.7, 139.9, 142.4, 136.6, 131.3, 126.8, 123.0, 124.9],
    energy_pct: [-1, -4, 7, 12, 25, 77, 331, 866, 2805],
    time_pct: [3, 0, 9, 21, 40, 107, 444, 1104, 3467],
    freq_mhz: [2701.0, 2701.0, 2699.0, 2697.0, 2168.0, 1274.0, 1207.0, 1200.0, 1200.0],
    l1_pct: [0, 0, 0, 0, 0, 0, 0, 2, 2],
    l2_pct: [-3, -6, -4, -2, 4, 5, 10, 203, 244],
    l3_pct: [1, -6, -8, -4, 18, 21, 19, 371, 350],
    dtlb_pct: [1, 5, 5, 1, 7, -5, -5, 6, 6],
    itlb_pct: [-20, 71, 486, 264, 253, 393, 444, 2069, 6395],
};

/// Table II, rows B0–B9 (SIRE/RSM SAR image formation).
pub const SIRE: PaperBlock = PaperBlock {
    name: "SIRE/RSM",
    baseline_power_w: 156.7,
    baseline_time_s: 378.0,
    baseline_energy_j: 59_249.3,
    baseline_freq_mhz: 2701.0,
    power_w: [155.5, 155.7, 148.8, 142.7, 139.0, 132.9, 128.3, 125.7, 124.0],
    energy_pct: [0, 0, 2, 4, 7, 34, 58, 72, 2023],
    time_pct: [0, 2, 7, 14, 21, 58, 93, 193, 2583],
    freq_mhz: [2701.0, 2701.0, 2065.0, 1752.0, 2422.0, 1285.0, 1200.0, 1200.0, 1200.0],
    l1_pct: [0, -1, -1, -1, -2, -3, -3, -3, -3],
    l2_pct: [0, 0, 0, 0, 0, 0, 0, 0, 0],
    l3_pct: [0, 0, 0, 0, 0, 0, 0, 0, 0],
    dtlb_pct: [0, 0, 0, 1, 0, 0, 0, 2, 15],
    itlb_pct: [27, 469, 374, 157, 619, 352, 360, 1085, 8481],
};

/// The paper's idle power band (§III).
pub const IDLE_BAND_W: (f64, f64) = (100.0, 103.0);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caps_descend_from_160_to_120() {
        assert_eq!(CAPS_W[0], 160.0);
        assert_eq!(CAPS_W[8], 120.0);
        assert!(CAPS_W.windows(2).all(|w| w[1] < w[0]));
    }

    #[test]
    fn energy_identity_holds_for_the_papers_baselines() {
        // energy = power × time, the identity §I quotes.
        for b in [&STEREO, &SIRE] {
            let e = b.baseline_power_w * b.baseline_time_s;
            assert!(
                (e - b.baseline_energy_j).abs() / b.baseline_energy_j < 0.02,
                "{}: {} vs {}",
                b.name,
                e,
                b.baseline_energy_j
            );
        }
    }

    #[test]
    fn sire_is_more_amenable_than_stereo_in_the_dvfs_region() {
        // The paper's §IV-A conclusion, encoded as data.
        for i in 2..=4 {
            assert!(SIRE.time_pct[i] < STEREO.time_pct[i]);
        }
    }

    #[test]
    fn frequency_pins_at_1200_for_the_lowest_caps() {
        for b in [&STEREO, &SIRE] {
            assert_eq!(b.freq_mhz[7], 1200.0);
            assert_eq!(b.freq_mhz[8], 1200.0);
        }
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn the_120w_cap_is_never_met() {
        assert!(STEREO.power_w[8] > 120.0);
        assert!(SIRE.power_w[8] > 120.0);
    }
}
