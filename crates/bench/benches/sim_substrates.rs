//! Criterion benches for the substrate layers: cache, TLB + page walk,
//! DRAM model, branch predictor, IPMI codec. These guard the simulator's
//! own throughput — every Table II point is millions of these operations.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use capsim_cpu::GsharePredictor;
use capsim_ipmi::dcmi::{ExceptionAction, PowerLimit};
use capsim_mem::{
    AccessKind, DramModel, HierarchyConfig, MemoryHierarchy, SetAssocCache, Tlb, VAddr,
};

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.throughput(Throughput::Elements(1));
    let geom = HierarchyConfig::e5_2680().l2;
    let mut cache = SetAssocCache::new(geom, 1);
    let mut line = 0u64;
    g.bench_function("l2_access_stream", |b| {
        b.iter(|| {
            line = (line + 1) % 100_000;
            black_box(cache.access(line, AccessKind::Read))
        })
    });
    let mut hot = SetAssocCache::new(geom, 2);
    for l in 0..64 {
        hot.access(l, AccessKind::Read);
    }
    let mut i = 0u64;
    g.bench_function("l2_access_hit", |b| {
        b.iter(|| {
            i = (i + 1) % 64;
            black_box(hot.access(i, AccessKind::Read))
        })
    });
    g.finish();
}

fn bench_tlb(c: &mut Criterion) {
    let mut g = c.benchmark_group("tlb");
    g.throughput(Throughput::Elements(1));
    let mut tlb = Tlb::new(HierarchyConfig::e5_2680().dtlb, 3);
    for vpn in 0..48u64 {
        tlb.insert(vpn, vpn);
    }
    let mut vpn = 0u64;
    g.bench_function("lookup_hit", |b| {
        b.iter(|| {
            vpn = (vpn + 1) % 48;
            black_box(tlb.lookup(vpn))
        })
    });
    g.finish();
}

fn bench_hierarchy(c: &mut Criterion) {
    let mut g = c.benchmark_group("hierarchy");
    g.throughput(Throughput::Elements(1));
    let mut h = MemoryHierarchy::new(HierarchyConfig::e5_2680(), 1, 7);
    let mut off = 0u64;
    g.bench_function("data_access_stream_8MiB", |b| {
        b.iter(|| {
            off = (off + 64) % (8 << 20);
            black_box(h.data_access(0, VAddr(0x100_0000 + off), false))
        })
    });
    let mut h2 = MemoryHierarchy::new(HierarchyConfig::e5_2680(), 1, 8);
    let mut i = 0u64;
    g.bench_function("data_access_l1_hit", |b| {
        b.iter(|| {
            i = (i + 1) % 64;
            black_box(h2.data_access(0, VAddr(0x100_0000 + i * 64), false))
        })
    });
    g.finish();
}

fn bench_dram(c: &mut Criterion) {
    let mut d = DramModel::new(51.0);
    let mut line = 0u64;
    c.bench_function("dram_access", |b| {
        b.iter(|| {
            line = line.wrapping_add(977);
            black_box(d.access(line, false))
        })
    });
}

fn bench_branch(c: &mut Criterion) {
    let mut p = GsharePredictor::new(14);
    let mut i = 0u64;
    c.bench_function("gshare_execute", |b| {
        b.iter(|| {
            i += 1;
            black_box(p.execute(0x4000 + (i % 16) * 4, !i.is_multiple_of(3)))
        })
    });
}

fn bench_ipmi_codec(c: &mut Criterion) {
    let limit = PowerLimit {
        limit_w: 135,
        correction_ms: 1000,
        sampling_s: 1,
        action: ExceptionAction::LogOnly,
    };
    c.bench_function("dcmi_power_limit_roundtrip", |b| {
        b.iter(|| {
            let bytes = black_box(&limit).encode();
            black_box(PowerLimit::decode(&bytes).unwrap())
        })
    });
}

criterion_group!(
    benches,
    bench_cache,
    bench_tlb,
    bench_hierarchy,
    bench_dram,
    bench_branch,
    bench_ipmi_codec
);
criterion_main!(benches);
