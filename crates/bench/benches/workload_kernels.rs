//! Criterion benches for complete workload runs at test scale — the cost
//! of regenerating one Table II cell.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use capsim_apps::{SireRsm, StereoMatching, StrideBench, Workload};
use capsim_node::{Machine, MachineConfig, PowerCap};

fn bench_workloads(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload_runs");
    g.sample_size(10);

    g.bench_function("sire_rsm_test_scale", |b| {
        b.iter(|| {
            let mut m = Machine::new(MachineConfig::e5_2680(1));
            black_box(SireRsm::test_scale(1).run(&mut m))
        })
    });

    g.bench_function("stereo_test_scale", |b| {
        b.iter(|| {
            let mut m = Machine::new(MachineConfig::e5_2680(2));
            black_box(StereoMatching::test_scale(2).run(&mut m))
        })
    });

    g.bench_function("stereo_test_scale_capped_130w", |b| {
        b.iter(|| {
            let mut m = Machine::new(MachineConfig::e5_2680(3));
            m.set_power_cap(Some(PowerCap::new(130.0).unwrap()));
            black_box(StereoMatching::test_scale(3).run(&mut m))
        })
    });

    g.bench_function("stride_bench_test_scale", |b| {
        b.iter(|| {
            let mut m = Machine::new(MachineConfig::e5_2680(4));
            black_box(StrideBench::test_scale().run(&mut m))
        })
    });

    g.finish();
}

criterion_group!(benches, bench_workloads);
criterion_main!(benches);
