//! Criterion benches for the assembled machine: per-operation charge
//! costs with and without an active cap (the control loop must stay cheap
//! relative to the work it meters).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use capsim_node::{Machine, MachineConfig, PowerCap};

fn machine(capped: bool) -> Machine {
    let mut m = Machine::new(MachineConfig::e5_2680(1));
    if capped {
        m.set_power_cap(Some(PowerCap::new(135.0).unwrap()));
    }
    m
}

fn bench_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("machine");
    g.throughput(Throughput::Elements(1));

    let mut m = machine(false);
    let r = m.alloc(1 << 20);
    let mut i = 0u64;
    g.bench_function("load_uncapped", |b| {
        b.iter(|| {
            i = (i + 64) % (1 << 20);
            m.load(r.at(i));
        })
    });

    let mut m = machine(true);
    let r = m.alloc(1 << 20);
    let mut i = 0u64;
    g.bench_function("load_capped_135w", |b| {
        b.iter(|| {
            i = (i + 64) % (1 << 20);
            m.load(r.at(i));
        })
    });

    let mut m = machine(false);
    let block = m.code_block(96, 24);
    g.bench_function("exec_block", |b| b.iter(|| m.exec_block(black_box(&block))));

    let mut m = machine(false);
    let block = m.code_block(64, 8);
    let mut i = 0u64;
    g.bench_function("branch", |b| {
        b.iter(|| {
            i += 1;
            m.branch(black_box(&block), !i.is_multiple_of(5))
        })
    });

    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    // A fixed small capped run: measures total harness cost per simulated
    // workload unit (control loop + power model + hierarchy together).
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    g.bench_function("capped_run_100k_ops", |b| {
        b.iter(|| {
            let mut m = machine(true);
            let r = m.alloc(1 << 20);
            let block = m.code_block(96, 24);
            for i in 0..100_000u64 {
                m.exec_block(&block);
                m.load(r.at((i * 64) % (1 << 20)));
            }
            black_box(m.finish_run().wall_s)
        })
    });
}

criterion_group!(benches, bench_ops, bench_end_to_end);
criterion_main!(benches);
