//! Property-based tests for the power/energy/thermal models.

use proptest::prelude::*;

use capsim_power::{ActivityWindow, EnergyIntegrator, NodePowerModel, PowerMeter, ThermalModel};

fn window_strategy() -> impl Strategy<Value = ActivityWindow> {
    (
        1.2f64..2.7,
        0.78f64..1.05,
        0.0625f64..=1.0,
        0.0f64..=1.0,
        0.0f64..=1.0,
        0u32..=2,
        0.0f64..5e7,
        0.0f64..5e7,
        0.0f64..=1.0,
        0.8f64..=1.0,
        30.0f64..90.0,
    )
        .prop_map(|(f, v, duty, busy, act, cores, l3, dram, gated, gate_frac, temp)| {
            ActivityWindow {
                f_ghz: f,
                volts: v,
                duty,
                busy_frac: busy,
                activity: act,
                active_cores: cores,
                l3_accesses_per_s: l3,
                dram_lines_per_s: dram,
                cache_gated_frac: gated,
                mem_gate_power_frac: gate_frac,
                temp_c: temp,
            }
        })
}

proptest! {
    /// Node power is always positive, at least the idle floor, bounded by
    /// a sane ceiling, and the breakdown sums to the total.
    #[test]
    fn power_is_bounded_and_consistent(w in window_strategy()) {
        let m = NodePowerModel::default();
        let b = m.power(&w);
        let total = b.total_w();
        prop_assert!(total >= m.idle_w() * 0.9, "total {total} below idle floor");
        prop_assert!(total < 400.0, "total {total} absurd");
        let sum = b.platform_w + b.sockets_idle_w + b.dram_background_w
            + b.core_dynamic_w + b.leakage_w + b.uncore_w + b.dram_active_w;
        prop_assert!((sum - total).abs() < 1e-9);
        prop_assert!(b.core_dynamic_w >= 0.0 && b.leakage_w >= 0.0);
    }

    /// Monotonicity: more frequency, voltage, activity or duty never
    /// reduces power (all else equal).
    #[test]
    fn power_is_monotone_in_each_throttle_axis(w in window_strategy(), bump in 0.01f64..0.2) {
        let m = NodePowerModel::default();
        let base = m.power(&w).total_w();
        let mut hf = w; hf.f_ghz = (w.f_ghz + bump).min(2.7);
        prop_assert!(m.power(&hf).total_w() >= base - 1e-9);
        let mut hv = w; hv.volts = (w.volts + bump / 4.0).min(1.05);
        prop_assert!(m.power(&hv).total_w() >= base - 1e-9);
        let mut hd = w; hd.duty = (w.duty + bump).min(1.0);
        prop_assert!(m.power(&hd).total_w() >= base - 1e-9);
        let mut hg = w; hg.cache_gated_frac = (w.cache_gated_frac - bump).max(0.0);
        prop_assert!(m.power(&hg).total_w() >= base - 1e-9, "ungating never saves power");
    }

    /// The meter's run average is always between the min and max sample,
    /// and energy == run_avg × total time exactly.
    #[test]
    fn meter_average_is_bounded_and_energy_consistent(
        samples in proptest::collection::vec((0.001f64..2.0, 90.0f64..170.0), 1..50),
    ) {
        let mut meter = PowerMeter::new(0.5);
        let mut energy = EnergyIntegrator::new();
        let mut min = f64::MAX;
        let mut max = f64::MIN;
        for &(d, w) in &samples {
            meter.record(d, w);
            energy.add(d, w);
            min = min.min(w);
            max = max.max(w);
        }
        let avg = meter.run_avg_w();
        prop_assert!(avg >= min - 1e-9 && avg <= max + 1e-9);
        prop_assert!((energy.joules() - avg * meter.total_s()).abs() / energy.joules() < 1e-9);
        let wavg = meter.window_avg_w();
        prop_assert!(wavg >= min - 1e-9 && wavg <= max + 1e-9);
    }

    /// Thermal: temperature always stays between ambient and the hottest
    /// steady state it was exposed to (plus its own start).
    #[test]
    fn thermal_stays_in_physical_bounds(
        steps in proptest::collection::vec((0.0f64..150.0, 0.01f64..20.0), 1..100),
    ) {
        let mut t = ThermalModel::e5_2680();
        let start = t.temp_c();
        let mut upper = start;
        for &(p, dt) in &steps {
            t.step(p, dt);
            upper = upper.max(t.steady_state_c(p));
            prop_assert!(t.temp_c() >= t.t_amb_c - 1e-9);
            prop_assert!(t.temp_c() <= upper + 1e-9, "{} > {}", t.temp_c(), upper);
        }
    }
}
