//! Whole-node power breakdown.
//!
//! The Watts Up! meter in the paper sees the wall plug, so the model sums
//! every consumer in the box:
//!
//! ```text
//! node = platform (PSU loss, fans, board, disks)
//!      + 2 × socket idle (parked cores in C6, idle uncore)
//!      + DRAM background refresh/standby   [reduced by memory gating]
//!      + per-active-core dynamic power     [DVFS + T-states + activity]
//!      + per-active-socket extra leakage   [voltage, temperature, gating]
//!      + uncore active power               [L3/ring running at speed]
//!      + DRAM active power                 [per line transferred]
//! ```
//!
//! Constants are calibrated to the paper's anchors (§III/Table I): idle
//! 100–103 W, Stereo Matching baseline ≈153 W, SIRE/RSM baseline ≈157 W, a
//! DVFS-only floor ≈128–131 W, and a full-ladder floor ≈124 W (which is why
//! the 120 W cap is never met in Table II).

use crate::dynamic::dynamic_power_w;
use crate::leakage::leakage_power_w;

/// Calibration constants for the node power model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PowerParams {
    /// Constant platform draw: PSU overhead, fans, board, storage.
    pub platform_w: f64,
    /// Idle draw of one socket (cores parked, uncore clock-gated).
    pub socket_idle_w: f64,
    /// Number of sockets (the paper's node has two E5-2680s).
    pub n_sockets: u32,
    /// DRAM background (refresh + standby) at full speed.
    pub dram_background_w: f64,
    /// Core dynamic-power coefficient: watts at 1 GHz, 1 V, α=1.
    pub k_dyn_w: f64,
    /// Socket leakage coefficient: watts at 1 V, 50 °C.
    pub k_leak_w: f64,
    /// Fraction of leakage recoverable by gating all modelled arrays.
    pub leak_gating_recoverable: f64,
    /// Uncore (ring, L3 banks, memory controller) power while any core on
    /// the socket is executing. Not duty-cycled: traffic keeps it awake.
    pub uncore_active_w: f64,
    /// Energy per L3 access (nanojoules).
    pub nj_per_l3: f64,
    /// Energy per DRAM line transfer including IO/termination (nJ).
    pub nj_per_dram_line: f64,
}

impl PowerParams {
    /// Calibrated for the paper's dual-socket E5-2680 platform.
    pub fn e5_2680_node() -> Self {
        PowerParams {
            platform_w: 70.0,
            socket_idle_w: 11.0,
            n_sockets: 2,
            dram_background_w: 9.0,
            k_dyn_w: 9.0,
            k_leak_w: 11.0,
            leak_gating_recoverable: 0.10,
            uncore_active_w: 12.0,
            nj_per_l3: 1.2,
            nj_per_dram_line: 500.0,
        }
    }
}

impl Default for PowerParams {
    fn default() -> Self {
        Self::e5_2680_node()
    }
}

/// Activity observed over one sampling window; all rates are per second
/// of simulated wall time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ActivityWindow {
    /// Current P-state operating point.
    pub f_ghz: f64,
    pub volts: f64,
    /// T-state duty fraction in `(0, 1]`.
    pub duty: f64,
    /// Fraction of the window any core was in C0 (has work).
    pub busy_frac: f64,
    /// Switching activity factor `[0, 1]` derived from the issue rate.
    pub activity: f64,
    /// Number of cores executing the workload.
    pub active_cores: u32,
    /// L3 demand accesses per second.
    pub l3_accesses_per_s: f64,
    /// DRAM line transfers per second.
    pub dram_lines_per_s: f64,
    /// Fraction of cache/TLB arrays gated off (see
    /// `capsim_mem::MemReconfig::gating_fraction`).
    pub cache_gated_frac: f64,
    /// DRAM background power fraction at the current memory-gating level.
    pub mem_gate_power_frac: f64,
    /// Die temperature (drives leakage).
    pub temp_c: f64,
}

impl ActivityWindow {
    /// A fully idle node.
    pub fn idle() -> Self {
        ActivityWindow {
            f_ghz: 1.2,
            volts: 0.78,
            duty: 1.0,
            busy_frac: 0.0,
            activity: 0.0,
            active_cores: 0,
            l3_accesses_per_s: 0.0,
            dram_lines_per_s: 0.0,
            cache_gated_frac: 0.0,
            mem_gate_power_frac: 1.0,
            temp_c: 45.0,
        }
    }
}

/// Itemized node power for one window.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PowerBreakdown {
    pub platform_w: f64,
    pub sockets_idle_w: f64,
    pub dram_background_w: f64,
    pub core_dynamic_w: f64,
    pub leakage_w: f64,
    pub uncore_w: f64,
    pub dram_active_w: f64,
}

impl PowerBreakdown {
    /// Total node power at the wall.
    pub fn total_w(&self) -> f64 {
        self.platform_w
            + self.sockets_idle_w
            + self.dram_background_w
            + self.core_dynamic_w
            + self.leakage_w
            + self.uncore_w
            + self.dram_active_w
    }
}

/// The calibrated node model.
#[derive(Clone, Copy, Debug, Default)]
pub struct NodePowerModel {
    params: PowerParams,
}

impl NodePowerModel {
    pub fn new(params: PowerParams) -> Self {
        NodePowerModel { params }
    }

    pub fn params(&self) -> &PowerParams {
        &self.params
    }

    /// Node power for the given activity window.
    pub fn power(&self, w: &ActivityWindow) -> PowerBreakdown {
        let p = &self.params;
        let busy = w.busy_frac.clamp(0.0, 1.0);
        let core_dynamic_w = w.active_cores as f64
            * dynamic_power_w(p.k_dyn_w, w.f_ghz, w.volts, w.activity, w.duty)
            * busy;
        // Extra leakage of the socket hosting active cores: it cannot park
        // in a deep package C-state while executing. Gating recovers only
        // a slice of it (the arrays actually powered down).
        let gated = p.leak_gating_recoverable * w.cache_gated_frac;
        let leakage_w = if w.active_cores > 0 {
            leakage_power_w(p.k_leak_w, w.volts, w.temp_c, gated) * busy
        } else {
            0.0
        };
        let uncore_w = if w.active_cores > 0 {
            (p.uncore_active_w + w.l3_accesses_per_s * p.nj_per_l3 * 1e-9) * busy
        } else {
            0.0
        };
        let dram_active_w = w.dram_lines_per_s * p.nj_per_dram_line * 1e-9;
        PowerBreakdown {
            platform_w: p.platform_w,
            sockets_idle_w: p.socket_idle_w * p.n_sockets as f64,
            dram_background_w: p.dram_background_w * w.mem_gate_power_frac,
            core_dynamic_w,
            leakage_w,
            uncore_w,
            dram_active_w,
        }
    }

    /// Convenience: total idle power (the paper reports 100–103 W).
    pub fn idle_w(&self) -> f64 {
        self.power(&ActivityWindow::idle()).total_w()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy(f_ghz: f64, volts: f64, activity: f64) -> ActivityWindow {
        ActivityWindow {
            f_ghz,
            volts,
            duty: 1.0,
            busy_frac: 1.0,
            activity,
            active_cores: 1,
            l3_accesses_per_s: 5e6,
            dram_lines_per_s: 5e6,
            cache_gated_frac: 0.0,
            mem_gate_power_frac: 1.0,
            temp_c: 65.0,
        }
    }

    #[test]
    fn idle_node_draws_100_to_103_watts() {
        let m = NodePowerModel::default();
        let w = m.idle_w();
        assert!((100.0..=103.0).contains(&w), "idle = {w}");
    }

    #[test]
    fn one_busy_core_at_p0_lands_in_the_table_i_range() {
        // A compute-heavy single-core workload should put the node in the
        // paper's 150–160 W baseline band.
        let m = NodePowerModel::default();
        let w = m.power(&busy(2.7, 1.05, 0.9)).total_w();
        assert!((148.0..=160.0).contains(&w), "baseline = {w}");
    }

    #[test]
    fn dvfs_to_pmin_recovers_20_to_30_watts() {
        let m = NodePowerModel::default();
        let hi = m.power(&busy(2.7, 1.05, 0.8)).total_w();
        let lo = m.power(&busy(1.2, 0.78, 0.8)).total_w();
        assert!(hi - lo > 15.0, "DVFS range too small: {hi}->{lo}");
        assert!(lo > 120.0, "DVFS-only floor must stay above ladder floor: {lo}");
    }

    #[test]
    fn ladder_floor_sits_near_124_watts() {
        // Deepest rung: P-min, 3/16 duty, the ladder's gating fractions,
        // heavy memory gate (see capsim-node::ladder).
        let m = NodePowerModel::default();
        let w = ActivityWindow {
            duty: 3.0 / 16.0,
            activity: 0.55,
            l3_accesses_per_s: 2e6,
            dram_lines_per_s: 2e6,
            cache_gated_frac: 0.47,
            mem_gate_power_frac: 0.88,
            ..busy(1.2, 0.78, 0.55)
        };
        let total = m.power(&w).total_w();
        assert!((121.5..=126.5).contains(&total), "ladder floor = {total}; Table II shows ~124 W");
    }

    #[test]
    fn memory_bound_traffic_adds_watts() {
        let m = NodePowerModel::default();
        let calm = m.power(&busy(2.7, 1.05, 0.7)).total_w();
        let mut hot = busy(2.7, 1.05, 0.7);
        hot.dram_lines_per_s = 20e6;
        hot.l3_accesses_per_s = 40e6;
        let hot = m.power(&hot).total_w();
        assert!(hot > calm + 5.0, "{hot} vs {calm}");
    }

    #[test]
    fn breakdown_sums_to_total() {
        let m = NodePowerModel::default();
        let b = m.power(&busy(2.0, 0.9, 0.5));
        let sum = b.platform_w
            + b.sockets_idle_w
            + b.dram_background_w
            + b.core_dynamic_w
            + b.leakage_w
            + b.uncore_w
            + b.dram_active_w;
        assert!((b.total_w() - sum).abs() < 1e-12);
    }

    #[test]
    fn duty_cycling_reduces_only_core_dynamic() {
        let m = NodePowerModel::default();
        let full = m.power(&busy(1.2, 0.78, 0.8));
        let mut w = busy(1.2, 0.78, 0.8);
        w.duty = 0.25;
        let quarter = m.power(&w);
        assert!(quarter.core_dynamic_w < full.core_dynamic_w * 0.3);
        assert_eq!(quarter.leakage_w, full.leakage_w);
        assert_eq!(quarter.uncore_w, full.uncore_w);
    }
}
