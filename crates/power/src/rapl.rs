//! RAPL-style per-domain energy counters.
//!
//! The paper measured at the wall with a Watts Up! meter because 2012-era
//! tooling had nothing better; the same Sandy Bridge generation introduced
//! RAPL (Running Average Power Limit) MSRs that integrate energy per
//! domain. This module provides that view over the simulated node: the
//! study can attribute joules to package / cores (PP0) / DRAM exactly the
//! way a modern reproduction would, and tests can check that the domain
//! split is consistent with the wall meter.
//!
//! Like the hardware, counters accumulate in fixed-point energy units
//! (15.3 µJ per LSB on SNB) and wrap at 32 bits — consumers must
//! difference snapshots frequently enough, exactly as with the real MSRs.

/// Energy unit of the simulated MSRs: 2⁻¹⁶ J ≈ 15.3 µJ (the SNB default).
pub const ENERGY_UNIT_J: f64 = 1.0 / 65536.0;

/// RAPL domains.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RaplDomain {
    /// Whole package: cores + uncore + leakage.
    Package,
    /// Power plane 0: cores only (dynamic + leakage).
    Pp0,
    /// DRAM (background + active).
    Dram,
}

/// The counter bank.
#[derive(Clone, Copy, Debug, Default)]
pub struct RaplCounters {
    pkg_j: f64,
    pp0_j: f64,
    dram_j: f64,
}

impl RaplCounters {
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulate one window's breakdown (from
    /// [`crate::node::PowerBreakdown`]) over `duration_s`.
    pub fn add(&mut self, b: &crate::node::PowerBreakdown, duration_s: f64) {
        debug_assert!(duration_s >= 0.0);
        let pp0 = b.core_dynamic_w + b.leakage_w;
        self.pp0_j += pp0 * duration_s;
        self.pkg_j += (pp0 + b.uncore_w) * duration_s;
        self.dram_j += (b.dram_background_w + b.dram_active_w) * duration_s;
    }

    /// Raw 32-bit wrapping MSR value for a domain, in energy units.
    pub fn msr(&self, domain: RaplDomain) -> u32 {
        let joules = match domain {
            RaplDomain::Package => self.pkg_j,
            RaplDomain::Pp0 => self.pp0_j,
            RaplDomain::Dram => self.dram_j,
        };
        ((joules / ENERGY_UNIT_J) as u64 & 0xffff_ffff) as u32
    }

    /// Exact joules for a domain (the simulator's privilege; real software
    /// only sees [`RaplCounters::msr`]).
    pub fn joules(&self, domain: RaplDomain) -> f64 {
        match domain {
            RaplDomain::Package => self.pkg_j,
            RaplDomain::Pp0 => self.pp0_j,
            RaplDomain::Dram => self.dram_j,
        }
    }
}

/// Difference two wrapping MSR readings into joules.
pub fn msr_delta_joules(before: u32, after: u32) -> f64 {
    after.wrapping_sub(before) as f64 * ENERGY_UNIT_J
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::PowerBreakdown;

    fn breakdown() -> PowerBreakdown {
        PowerBreakdown {
            platform_w: 70.0,
            sockets_idle_w: 22.0,
            dram_background_w: 9.0,
            core_dynamic_w: 20.0,
            leakage_w: 15.0,
            uncore_w: 12.0,
            dram_active_w: 3.0,
        }
    }

    #[test]
    fn domains_partition_sensibly() {
        let mut r = RaplCounters::new();
        r.add(&breakdown(), 2.0);
        assert!((r.joules(RaplDomain::Pp0) - 70.0).abs() < 1e-9);
        assert!((r.joules(RaplDomain::Package) - 94.0).abs() < 1e-9);
        assert!((r.joules(RaplDomain::Dram) - 24.0).abs() < 1e-9);
        // PP0 ⊆ package.
        assert!(r.joules(RaplDomain::Pp0) <= r.joules(RaplDomain::Package));
    }

    #[test]
    fn msr_readings_match_joules_at_unit_resolution() {
        let mut r = RaplCounters::new();
        r.add(&breakdown(), 0.001);
        let j = r.joules(RaplDomain::Package);
        let m = r.msr(RaplDomain::Package) as f64 * ENERGY_UNIT_J;
        assert!((j - m).abs() <= ENERGY_UNIT_J);
    }

    #[test]
    fn msr_wrap_is_handled_by_delta() {
        let before = u32::MAX - 10;
        let after = 20u32;
        let j = msr_delta_joules(before, after);
        assert!((j - 31.0 * ENERGY_UNIT_J).abs() < 1e-12);
    }

    #[test]
    fn package_excludes_platform_overhead() {
        // The wall meter sees platform + sockets-idle; RAPL does not.
        let mut r = RaplCounters::new();
        let b = breakdown();
        r.add(&b, 1.0);
        let wall = b.total_w();
        assert!(r.joules(RaplDomain::Package) < wall);
    }
}
