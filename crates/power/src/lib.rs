//! `capsim-power` — node power, energy and thermal substrate.
//!
//! Models the physics §II-B of the paper leans on:
//!
//! * dynamic (switching) power `α·C·f·V²` ([`dynamic`]),
//! * static/leakage power, voltage- and temperature-dependent
//!   ([`leakage`]),
//! * a whole-node breakdown (platform + sockets + uncore + DRAM) whose
//!   constants are calibrated to the paper's anchors: idle 100–103 W,
//!   Stereo baseline ≈153 W, SIRE/RSM baseline ≈157 W ([`node`]),
//! * a first-order RC thermal model ([`thermal`]),
//! * a Watts Up!-style sampling meter and an energy integrator
//!   ([`meter`]).

pub mod dynamic;
pub mod leakage;
pub mod meter;
pub mod node;
pub mod rapl;
pub mod thermal;

pub use dynamic::dynamic_power_w;
pub use leakage::leakage_power_w;
pub use meter::{EnergyIntegrator, PowerMeter};
pub use node::{ActivityWindow, NodePowerModel, PowerBreakdown, PowerParams};
pub use rapl::{msr_delta_joules, RaplCounters, RaplDomain, ENERGY_UNIT_J};
pub use thermal::ThermalModel;
