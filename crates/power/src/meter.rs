//! Power metering and energy integration.
//!
//! [`PowerMeter`] stands in for the paper's Watts Up! wall meter: it
//! receives (duration, watts) samples and can report the average over the
//! whole run or over a recent window (the BMC uses the windowed view for
//! its control loop). [`EnergyIntegrator`] accumulates joules — the
//! paper's "Computed Energy Consumption" column is average power ×
//! execution time, which the integrator reproduces exactly for piecewise-
//! constant power.

use std::collections::VecDeque;

/// Exact window-sum refresh cadence, in evictions. Incremental
/// add/subtract of `window_sum_ws`/`window_dur_s` accumulates one rounding
/// error per sample; re-deriving both from the deque every `RECOMPUTE_EVICTIONS`
/// pops bounds the drift to ~8k ulps — far inside the 1e-9 regression
/// tolerance — while staying off the golden-sweep paths (those runs evict a
/// few thousand times total, so their arithmetic is bit-identical to the
/// pure incremental scheme).
const RECOMPUTE_EVICTIONS: u32 = 8192;

/// Time-weighted power averaging.
#[derive(Clone, Debug)]
pub struct PowerMeter {
    window_s: f64,
    samples: VecDeque<(f64, f64)>, // (duration_s, watts)
    window_sum_ws: f64,
    window_dur_s: f64,
    total_ws: f64,
    total_s: f64,
    evictions_since_recompute: u32,
}

impl PowerMeter {
    /// `window_s` bounds the "recent" view used by the control loop.
    pub fn new(window_s: f64) -> Self {
        assert!(window_s > 0.0);
        PowerMeter {
            window_s,
            samples: VecDeque::new(),
            window_sum_ws: 0.0,
            window_dur_s: 0.0,
            total_ws: 0.0,
            total_s: 0.0,
            evictions_since_recompute: 0,
        }
    }

    /// Record `watts` sustained for `duration_s`.
    pub fn record(&mut self, duration_s: f64, watts: f64) {
        debug_assert!(duration_s >= 0.0 && watts >= 0.0);
        if duration_s == 0.0 {
            return;
        }
        self.total_ws += duration_s * watts;
        self.total_s += duration_s;

        let mut d = duration_s;
        if d >= self.window_s {
            // The sample alone spans the whole window: everything older is
            // already out of view, and only the trailing `window_s` of the
            // sample itself belongs in the windowed average. (Previously
            // the full oversized sample was retained, biasing
            // `window_avg_w()` toward stale power.)
            self.samples.clear();
            self.window_sum_ws = 0.0;
            self.window_dur_s = 0.0;
            self.evictions_since_recompute = 0;
            d = self.window_s;
        }
        // Split long samples into quarter-window chunks so eviction—which
        // pops whole samples—can trim the window edge at sub-window
        // granularity instead of throwing away a whole oversized sample.
        let chunk = self.window_s * 0.25;
        while d > chunk {
            self.push_sample(chunk, watts);
            d -= chunk;
        }
        self.push_sample(d, watts);

        while self.window_dur_s > self.window_s && self.samples.len() > 1 {
            let (d, w) = self.samples.pop_front().expect("non-empty");
            self.window_sum_ws -= d * w;
            self.window_dur_s -= d;
            self.evictions_since_recompute += 1;
        }
        if self.evictions_since_recompute >= RECOMPUTE_EVICTIONS {
            self.window_sum_ws = self.samples.iter().map(|&(d, w)| d * w).sum();
            self.window_dur_s = self.samples.iter().map(|&(d, _)| d).sum();
            self.evictions_since_recompute = 0;
        }
    }

    fn push_sample(&mut self, duration_s: f64, watts: f64) {
        self.samples.push_back((duration_s, watts));
        self.window_sum_ws += duration_s * watts;
        self.window_dur_s += duration_s;
    }

    /// From-scratch window average straight off the retained samples,
    /// bypassing the incremental sums. Reference value for drift tests.
    pub fn recomputed_window_avg_w(&self) -> f64 {
        let dur: f64 = self.samples.iter().map(|&(d, _)| d).sum();
        if dur == 0.0 {
            return 0.0;
        }
        let sum: f64 = self.samples.iter().map(|&(d, w)| d * w).sum();
        sum / dur
    }

    /// Time-weighted average over the recent window.
    pub fn window_avg_w(&self) -> f64 {
        if self.window_dur_s == 0.0 {
            0.0
        } else {
            self.window_sum_ws / self.window_dur_s
        }
    }

    /// Time-weighted average over the entire recording.
    pub fn run_avg_w(&self) -> f64 {
        if self.total_s == 0.0 {
            0.0
        } else {
            self.total_ws / self.total_s
        }
    }

    /// Total recorded time in seconds.
    pub fn total_s(&self) -> f64 {
        self.total_s
    }
}

/// Joule accumulator.
#[derive(Clone, Copy, Debug, Default)]
pub struct EnergyIntegrator {
    joules: f64,
}

impl EnergyIntegrator {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `watts` sustained for `duration_s`.
    pub fn add(&mut self, duration_s: f64, watts: f64) {
        debug_assert!(duration_s >= 0.0 && watts >= 0.0);
        self.joules += duration_s * watts;
    }

    pub fn joules(&self) -> f64 {
        self.joules
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_average_is_time_weighted() {
        let mut m = PowerMeter::new(10.0);
        m.record(1.0, 100.0);
        m.record(3.0, 200.0);
        assert!((m.run_avg_w() - 175.0).abs() < 1e-12);
        assert_eq!(m.total_s(), 4.0);
    }

    #[test]
    fn window_forgets_old_samples() {
        let mut m = PowerMeter::new(2.0);
        m.record(5.0, 100.0); // will be evicted once newer data arrives
        m.record(2.0, 200.0);
        assert!((m.window_avg_w() - 200.0).abs() < 1e-12);
        assert!((m.run_avg_w() - (5.0 * 100.0 + 2.0 * 200.0) / 7.0).abs() < 1e-12);
    }

    #[test]
    fn oversized_sample_does_not_bias_the_window() {
        // A sample longer than the window must contribute only its trailing
        // `window_s`; the BMC caps on this value, so stale power leaking in
        // was a control-loop bug.
        let mut m = PowerMeter::new(0.1);
        m.record(0.5, 300.0);
        assert!((m.window_avg_w() - 300.0).abs() < 1e-12);

        // Mixed case: 1 s of the old 100 W epoch is still inside a 2 s
        // window after 1 s at 200 W arrives → time-weighted 150 W.
        let mut m = PowerMeter::new(2.0);
        m.record(5.0, 100.0);
        m.record(1.0, 200.0);
        assert!((m.window_avg_w() - 150.0).abs() < 1e-12, "got {}", m.window_avg_w());
        assert!((m.run_avg_w() - (5.0 * 100.0 + 1.0 * 200.0) / 6.0).abs() < 1e-12);
    }

    #[test]
    fn window_average_does_not_drift_over_millions_of_records() {
        // Regression for incremental-sum drift: after >1e6 records the
        // rolling `window_sum_ws`/`window_dur_s` must still agree with a
        // from-scratch recomputation off the deque to 1e-9.
        let mut m = PowerMeter::new(0.01);
        let mut state: u64 = 0x9e3779b97f4a7c15;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut worst: f64 = 0.0;
        for i in 0..1_200_000u64 {
            let d = 1e-5 + (rng() % 1000) as f64 * 4e-8; // 10–50 µs ticks
            let w = 100.0 + (rng() % 6000) as f64 * 0.01; // 100–160 W
            m.record(d, w);
            if i % 100_000 == 0 {
                worst = worst.max((m.window_avg_w() - m.recomputed_window_avg_w()).abs());
            }
        }
        worst = worst.max((m.window_avg_w() - m.recomputed_window_avg_w()).abs());
        assert!(worst < 1e-9, "window average drifted by {worst}");
    }

    #[test]
    fn empty_meter_reads_zero() {
        let m = PowerMeter::new(1.0);
        assert_eq!(m.window_avg_w(), 0.0);
        assert_eq!(m.run_avg_w(), 0.0);
    }

    #[test]
    fn energy_equals_avg_power_times_time() {
        // The identity the paper uses: energy = power × execution time.
        let mut m = PowerMeter::new(100.0);
        let mut e = EnergyIntegrator::new();
        for (d, w) in [(2.0, 150.0), (3.0, 130.0), (1.0, 160.0)] {
            m.record(d, w);
            e.add(d, w);
        }
        assert!((e.joules() - m.run_avg_w() * m.total_s()).abs() < 1e-9);
    }
}
