//! Power metering and energy integration.
//!
//! [`PowerMeter`] stands in for the paper's Watts Up! wall meter: it
//! receives (duration, watts) samples and can report the average over the
//! whole run or over a recent window (the BMC uses the windowed view for
//! its control loop). [`EnergyIntegrator`] accumulates joules — the
//! paper's "Computed Energy Consumption" column is average power ×
//! execution time, which the integrator reproduces exactly for piecewise-
//! constant power.

use std::collections::VecDeque;

/// Time-weighted power averaging.
#[derive(Clone, Debug)]
pub struct PowerMeter {
    window_s: f64,
    samples: VecDeque<(f64, f64)>, // (duration_s, watts)
    window_sum_ws: f64,
    window_dur_s: f64,
    total_ws: f64,
    total_s: f64,
}

impl PowerMeter {
    /// `window_s` bounds the "recent" view used by the control loop.
    pub fn new(window_s: f64) -> Self {
        assert!(window_s > 0.0);
        PowerMeter {
            window_s,
            samples: VecDeque::new(),
            window_sum_ws: 0.0,
            window_dur_s: 0.0,
            total_ws: 0.0,
            total_s: 0.0,
        }
    }

    /// Record `watts` sustained for `duration_s`.
    pub fn record(&mut self, duration_s: f64, watts: f64) {
        debug_assert!(duration_s >= 0.0 && watts >= 0.0);
        if duration_s == 0.0 {
            return;
        }
        self.samples.push_back((duration_s, watts));
        self.window_sum_ws += duration_s * watts;
        self.window_dur_s += duration_s;
        self.total_ws += duration_s * watts;
        self.total_s += duration_s;
        while self.window_dur_s > self.window_s && self.samples.len() > 1 {
            let (d, w) = self.samples.pop_front().expect("non-empty");
            self.window_sum_ws -= d * w;
            self.window_dur_s -= d;
        }
    }

    /// Time-weighted average over the recent window.
    pub fn window_avg_w(&self) -> f64 {
        if self.window_dur_s == 0.0 {
            0.0
        } else {
            self.window_sum_ws / self.window_dur_s
        }
    }

    /// Time-weighted average over the entire recording.
    pub fn run_avg_w(&self) -> f64 {
        if self.total_s == 0.0 {
            0.0
        } else {
            self.total_ws / self.total_s
        }
    }

    /// Total recorded time in seconds.
    pub fn total_s(&self) -> f64 {
        self.total_s
    }
}

/// Joule accumulator.
#[derive(Clone, Copy, Debug, Default)]
pub struct EnergyIntegrator {
    joules: f64,
}

impl EnergyIntegrator {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `watts` sustained for `duration_s`.
    pub fn add(&mut self, duration_s: f64, watts: f64) {
        debug_assert!(duration_s >= 0.0 && watts >= 0.0);
        self.joules += duration_s * watts;
    }

    pub fn joules(&self) -> f64 {
        self.joules
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_average_is_time_weighted() {
        let mut m = PowerMeter::new(10.0);
        m.record(1.0, 100.0);
        m.record(3.0, 200.0);
        assert!((m.run_avg_w() - 175.0).abs() < 1e-12);
        assert_eq!(m.total_s(), 4.0);
    }

    #[test]
    fn window_forgets_old_samples() {
        let mut m = PowerMeter::new(2.0);
        m.record(5.0, 100.0); // will be evicted once newer data arrives
        m.record(2.0, 200.0);
        assert!((m.window_avg_w() - 200.0).abs() < 1e-12);
        assert!((m.run_avg_w() - (5.0 * 100.0 + 2.0 * 200.0) / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_meter_reads_zero() {
        let m = PowerMeter::new(1.0);
        assert_eq!(m.window_avg_w(), 0.0);
        assert_eq!(m.run_avg_w(), 0.0);
    }

    #[test]
    fn energy_equals_avg_power_times_time() {
        // The identity the paper uses: energy = power × execution time.
        let mut m = PowerMeter::new(100.0);
        let mut e = EnergyIntegrator::new();
        for (d, w) in [(2.0, 150.0), (3.0, 130.0), (1.0, 160.0)] {
            m.record(d, w);
            e.add(d, w);
        }
        assert!((e.joules() - m.run_avg_w() * m.total_s()).abs() < 1e-9);
    }
}
