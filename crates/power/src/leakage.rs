//! Static (leakage) power.
//!
//! §II-B: "dynamic power does not account for the total power of the chip;
//! there also is static power, which is primarily due to various leakage
//! currents. The amount of static power is related to, among other things,
//! the heat of the processor." Leakage here scales linearly with voltage
//! and exponentially (gently) with temperature, and is reduced by gating:
//! powered-down cache ways and gated arrays stop leaking — the power the
//! deep capping rungs actually recover.

/// Leakage power of one socket in watts.
///
/// * `k_leak_w` — watts at 1 V and the reference temperature.
/// * `volts` — current rail voltage.
/// * `temp_c` — die temperature; reference is 50 °C, doubling every ~25 °C.
/// * `gated_frac` — `[0, 1]` fraction of leaky arrays currently power-gated
///   (cache ways, TLB banks); gated arrays leak ~nothing.
#[inline]
pub fn leakage_power_w(k_leak_w: f64, volts: f64, temp_c: f64, gated_frac: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&gated_frac));
    let thermal = ((temp_c - 50.0) / 25.0).exp2();
    k_leak_w * volts * thermal * (1.0 - gated_frac)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubles_every_25_degrees() {
        let a = leakage_power_w(5.0, 1.0, 50.0, 0.0);
        let b = leakage_power_w(5.0, 1.0, 75.0, 0.0);
        assert!((b / a - 2.0).abs() < 1e-12);
    }

    #[test]
    fn scales_with_voltage() {
        let a = leakage_power_w(5.0, 1.05, 50.0, 0.0);
        let b = leakage_power_w(5.0, 0.78, 50.0, 0.0);
        assert!((a / b - 1.05 / 0.78).abs() < 1e-12);
    }

    #[test]
    fn gating_recovers_leakage() {
        let full = leakage_power_w(5.0, 1.0, 60.0, 0.0);
        let half = leakage_power_w(5.0, 1.0, 60.0, 0.5);
        assert!((half / full - 0.5).abs() < 1e-12);
        assert_eq!(leakage_power_w(5.0, 1.0, 60.0, 1.0), 0.0);
    }

    #[test]
    fn cooler_die_leaks_less() {
        assert!(leakage_power_w(5.0, 1.0, 40.0, 0.0) < leakage_power_w(5.0, 1.0, 50.0, 0.0));
    }
}
