//! Dynamic (switching) power: `P = α · C · f · V²`.
//!
//! §II-B of the paper quotes the classic CMOS equation from Rabaey et al.
//! `C` (switched capacitance) is folded into a per-core coefficient; `α`
//! is the activity factor derived from how hard the core is actually
//! issuing (a halted or stalled core clocks less logic).

/// Dynamic power of one core in watts.
///
/// * `k_dyn_w` — watts at 1 GHz, 1 V, full activity (per-core effective
///   capacitance constant).
/// * `f_ghz`, `volts` — current P-state operating point.
/// * `activity` — `[0, 1]` fraction of logic switching per cycle.
/// * `duty` — T-state duty fraction (halted windows switch ~nothing).
#[inline]
pub fn dynamic_power_w(k_dyn_w: f64, f_ghz: f64, volts: f64, activity: f64, duty: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&activity));
    debug_assert!((0.0..=1.0).contains(&duty));
    k_dyn_w * f_ghz * volts * volts * activity * duty
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_in_frequency_quadratic_in_voltage() {
        let base = dynamic_power_w(10.0, 1.0, 1.0, 1.0, 1.0);
        assert!((dynamic_power_w(10.0, 2.0, 1.0, 1.0, 1.0) / base - 2.0).abs() < 1e-12);
        assert!((dynamic_power_w(10.0, 1.0, 2.0, 1.0, 1.0) / base - 4.0).abs() < 1e-12);
    }

    #[test]
    fn idle_core_draws_no_dynamic_power() {
        assert_eq!(dynamic_power_w(10.0, 2.7, 1.05, 0.0, 1.0), 0.0);
    }

    #[test]
    fn duty_cycling_scales_proportionally() {
        let full = dynamic_power_w(10.0, 2.7, 1.05, 0.8, 1.0);
        let half = dynamic_power_w(10.0, 2.7, 1.05, 0.8, 0.5);
        assert!((half / full - 0.5).abs() < 1e-12);
    }

    #[test]
    fn dvfs_sweep_covers_a_wide_power_range() {
        // The E5-2680 V/f curve end points (see capsim-cpu::pstate).
        let p0 = dynamic_power_w(13.0, 2.7, 1.05, 1.0, 1.0);
        let pmin = dynamic_power_w(13.0, 1.2, 0.78, 1.0, 1.0);
        assert!(p0 / pmin > 3.5, "{p0} vs {pmin}");
    }
}
