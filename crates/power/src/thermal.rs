//! First-order RC thermal model of the package.
//!
//! `C_th · dT/dt = P − (T − T_amb) / R_th`. The die temperature feeds back
//! into leakage (§II-B: static power "is related to, among other things,
//! the heat of the processor"), which is why a power-capped node settles a
//! little lower than a naive model would predict: cooler die → less
//! leakage → more headroom.

/// Package thermal state.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ThermalModel {
    /// Current die temperature in °C.
    temp_c: f64,
    /// Ambient/inlet temperature in °C.
    pub t_amb_c: f64,
    /// Thermal resistance junction→ambient in °C/W (package power share).
    pub r_th: f64,
    /// Thermal capacitance in J/°C.
    pub c_th: f64,
}

impl ThermalModel {
    /// A 130 W-TDP Sandy Bridge package under a stock heatsink: steady
    /// state ≈ 27 + 0.55 °C/W × P_pkg. The time constant is compressed to
    /// ~1 s (real packages take tens of seconds) so that scaled-down runs
    /// reach thermal equilibrium the way the paper's minutes-long runs
    /// did; the initial temperature is the steady state of a typical
    /// single-core load (~60 °C).
    pub fn e5_2680() -> Self {
        ThermalModel { temp_c: 60.0, t_amb_c: 27.0, r_th: 0.55, c_th: 2.0 }
    }

    pub fn temp_c(&self) -> f64 {
        self.temp_c
    }

    /// Advance by `dt_s` seconds with `pkg_watts` dissipated in the package.
    pub fn step(&mut self, pkg_watts: f64, dt_s: f64) {
        debug_assert!(dt_s >= 0.0);
        // Exact solution of the linear ODE over the step (unconditionally
        // stable for large dt, unlike forward Euler).
        let t_ss = self.t_amb_c + pkg_watts * self.r_th;
        let tau = self.r_th * self.c_th;
        let k = (-dt_s / tau).exp();
        self.temp_c = t_ss + (self.temp_c - t_ss) * k;
    }

    /// The temperature this power level settles at.
    pub fn steady_state_c(&self, pkg_watts: f64) -> f64 {
        self.t_amb_c + pkg_watts * self.r_th
    }
}

impl Default for ThermalModel {
    fn default() -> Self {
        Self::e5_2680()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_to_steady_state() {
        let mut t = ThermalModel::e5_2680();
        for _ in 0..1000 {
            t.step(60.0, 1.0);
        }
        assert!((t.temp_c() - t.steady_state_c(60.0)).abs() < 0.01);
    }

    #[test]
    fn heats_up_under_load_and_cools_when_idle() {
        let mut t = ThermalModel::e5_2680();
        let t0 = t.temp_c();
        t.step(80.0, 5.0);
        assert!(t.temp_c() > t0);
        let hot = t.temp_c();
        t.step(0.0, 60.0);
        assert!(t.temp_c() < hot);
        assert!(t.temp_c() >= t.t_amb_c);
    }

    #[test]
    fn large_steps_are_stable() {
        let mut t = ThermalModel::e5_2680();
        t.step(100.0, 1e6);
        assert!((t.temp_c() - t.steady_state_c(100.0)).abs() < 1e-6);
        t.step(0.0, 1e6);
        assert!((t.temp_c() - t.t_amb_c).abs() < 1e-6);
    }

    #[test]
    fn zero_dt_is_a_noop() {
        let mut t = ThermalModel::e5_2680();
        let before = t.temp_c();
        t.step(100.0, 0.0);
        assert_eq!(t.temp_c(), before);
    }
}
