//! # capsim-traffic — request-serving workloads for power-capped fleets
//!
//! Batch kernels measure what capping does to *wall time*; this crate
//! measures what it does to *users*. Three pieces:
//!
//! - [`ArrivalCurve`] / [`ArrivalProcess`]: deterministic seeded
//!   open-loop arrival traces (constant, diurnal, flash crowd), every
//!   draw a pure function of one splitmix seed.
//! - [`TrafficSpec`] / [`TrafficWorkload`]: per-node bounded request
//!   queues that map service demand onto the `EpochWorkload`
//!   machine-stepping API and record latency/goodput/SLO series into
//!   capsim-obs (log-spaced latency buckets, completed-vs-shed counters).
//! - [`EmergencyConfig`]: the power-emergency experiment — an
//!   oversubscribed root budget plus a chaos fault plan while the fleet
//!   keeps serving a diurnal + flash-crowd trace; policy backends are
//!   compared on `FleetReport::slo_violations_per_joule`.
//!
//! Everything inherits the fleet determinism contract: the same scenario
//! is byte-identical serial, parallel, and at any shard count.

pub mod arrival;
pub mod emergency;
pub mod workload;

pub use arrival::{ArrivalCurve, ArrivalProcess};
pub use emergency::EmergencyConfig;
pub use workload::{
    AimdSpec, BrownoutSpec, ClientSpec, InvalidClientSpec, TrafficFactory, TrafficSpec,
    TrafficWorkload,
};
