//! The power-emergency experiment: a request-serving fleet under an
//! oversubscribed root budget *and* a chaos fault plan.
//!
//! The scenario the 2012 paper could not run: the fleet keeps serving an
//! open-loop diurnal + flash-crowd trace while the root budget is pinned
//! well below aggregate demand (every busy node throttles) and declared
//! faults take out telemetry and a BMC mid-run. The question is not "how
//! much slower is the batch job" but "how many SLO violations does each
//! joule of emergency operation buy" — computed per policy backend via
//! `FleetReport::slo_violations_per_joule`.

use capsim_chaos::plan::{FaultKind, FaultPlan};
use capsim_chaos::runner::ChaosScenario;
use capsim_policy::CapPolicySpec;

use crate::arrival::ArrivalCurve;
use crate::workload::{AimdSpec, BrownoutSpec, ClientSpec, TrafficSpec};

/// Shape of a power-emergency run. Defaults model a datacenter-mix fleet
/// at the engine's native sub-millisecond epochs.
#[derive(Clone, Debug, PartialEq)]
pub struct EmergencyConfig {
    pub nodes: usize,
    pub epochs: u32,
    pub epoch_s: f64,
    pub seed: u64,
    /// Root budget per node, watts. The fleet default is 135 W/node;
    /// anything at or below the ~124 W deepest-rung draw of a busy node
    /// is a genuine emergency — the ladder cannot reach compliance for
    /// the hot minority.
    pub budget_w_per_node: f64,
    /// Per-node offered load.
    pub traffic: TrafficSpec,
    /// Capping backend (None: stock ladder + allocation policy).
    pub policy: Option<CapPolicySpec>,
    /// Inject the sensor-dropout + BMC-crash fault windows.
    pub faults: bool,
}

impl EmergencyConfig {
    /// The headline configuration: diurnal swing with a flash crowd
    /// through the middle of the run, datacenter hot/cold rate mix, and
    /// an oversubscribed 118 W/node budget.
    pub fn headline(nodes: usize, epochs: u32, seed: u64) -> EmergencyConfig {
        let epoch_s = 5e-4;
        let horizon = epochs as f64 * epoch_s;
        // Rates sized against the ~1M rps uncapped service capacity of a
        // fleet node: the diurnal swing keeps cold nodes comfortably
        // under, while hot nodes (4× rate) saturate near the peak; the
        // flash crowd pushes every node past capacity at once — while
        // the oversubscribed budget keeps service throttled.
        let traffic = TrafficSpec::from_curves(vec![
            ArrivalCurve::Diurnal { base_rps: 60_000.0, peak_rps: 200_000.0, period_s: horizon },
            ArrivalCurve::FlashCrowd {
                base_rps: 0.0,
                spike_rps: 1_000_000.0,
                start_s: 0.40 * horizon,
                end_s: 0.60 * horizon,
            },
        ])
        .datacenter_mix(true)
        .slo_ms(0.05);
        EmergencyConfig {
            nodes,
            epochs,
            epoch_s,
            seed,
            budget_w_per_node: 118.0,
            traffic,
            policy: None,
            faults: true,
        }
    }

    /// The closed-loop variant of [`EmergencyConfig::headline`]: the same
    /// oversubscribed budget and fault plan, but clients time out and
    /// retry with capped backoff, and full queues hand overflow to the
    /// fleet barrier for cross-node failover. Throttled nodes now amplify
    /// their own load — the retry storm — while the group sheds work
    /// toward whoever has headroom.
    pub fn retry_storm(nodes: usize, epochs: u32, seed: u64) -> EmergencyConfig {
        let mut cfg = EmergencyConfig::headline(nodes, epochs, seed);
        cfg.traffic = cfg.traffic.closed_loop(ClientSpec::default()).failover(true);
        cfg
    }

    /// The graceful-degradation twin of [`EmergencyConfig::retry_storm`]:
    /// the same flash crowd, oversubscribed budget, and fault plan, but
    /// clients run AIMD backpressure and the admission gate browns out
    /// low-priority work under pressure (tail trigger at the SLO bound —
    /// the scenario always observes, per the tail-aware carve-out). This
    /// is the configuration that must *converge* where the retry-only
    /// storm collapses.
    pub fn backpressure_storm(nodes: usize, epochs: u32, seed: u64) -> EmergencyConfig {
        let mut cfg = EmergencyConfig::retry_storm(nodes, epochs, seed);
        let clients = ClientSpec::default().aimd(AimdSpec::default());
        let tail_ms = cfg.traffic.slo_ms;
        cfg.traffic = cfg
            .traffic
            .closed_loop(clients)
            .brownout(BrownoutSpec { p99_ms: tail_ms, ..BrownoutSpec::default() });
        cfg
    }

    /// Swap in a policy backend.
    pub fn with_policy(mut self, spec: CapPolicySpec) -> EmergencyConfig {
        self.policy = Some(spec);
        self
    }

    /// Lower the chaos scenario describing this emergency. Running it
    /// through `capsim_chaos::check` gives the serial-vs-parallel replay
    /// check and the cap/energy/SEL invariants for free.
    pub fn scenario(&self) -> ChaosScenario {
        let horizon = self.epochs as f64 * self.epoch_s;
        let plan = if self.faults && self.nodes >= 3 {
            // Mid-run telemetry loss on one node and a BMC crash on
            // another, both scaled to the horizon so any epoch count
            // exercises inject + clear + recovery.
            FaultPlan::none()
                .window(1, 0.25 * horizon, 0.45 * horizon, FaultKind::SensorDropout)
                .window(
                    2,
                    0.55 * horizon,
                    0.70 * horizon,
                    FaultKind::BmcCrash { dead_s: 0.10 * horizon },
                )
        } else {
            FaultPlan::none()
        };
        let name = if self.traffic.clients.is_some_and(|c| c.aimd.is_some()) {
            "backpressure_storm"
        } else if self.traffic.clients.is_some() {
            "retry_storm"
        } else {
            "power_emergency"
        };
        ChaosScenario {
            name: name.into(),
            nodes: self.nodes,
            epochs: self.epochs,
            epoch_s: self.epoch_s,
            seed: self.seed,
            budget_w: Some(self.budget_w_per_node * self.nodes as f64),
            workload: self.traffic.clone().workload(),
            control_period_us: 10.0,
            meter_window_s: 2e-4,
            shards: None,
            plan,
            observe: true,
            invariants: capsim_chaos::InvariantConfig::default(),
            policy: self.policy.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capsim_chaos::runner::run_scenario;

    #[test]
    fn emergency_serves_traffic_and_stays_deterministic() {
        let cfg = EmergencyConfig::headline(8, 8, 42);
        let scenario = cfg.scenario();
        let serial = run_scenario(&scenario, false);
        let parallel = run_scenario(&scenario, true);
        assert_eq!(
            serial.fingerprint(),
            parallel.fingerprint(),
            "power emergency must replay byte-identically"
        );
        let traffic = serial.report.traffic().expect("emergency run records traffic series");
        assert!(traffic.arrivals > 0, "trace offered requests");
        assert!(traffic.completed > 0, "fleet served requests");
        let e = serial.report.energy();
        assert!(e.energy_j > 0.0, "energy metered");
        assert!(serial.report.slo_violations_per_joule().is_some(), "headline metric computable");
    }

    #[test]
    fn retry_storm_amplifies_load_and_replays() {
        let cfg = EmergencyConfig::retry_storm(8, 8, 42);
        let scenario = cfg.scenario();
        assert_eq!(scenario.name, "retry_storm");
        let serial = run_scenario(&scenario, false);
        let parallel = run_scenario(&scenario, true);
        assert_eq!(
            serial.fingerprint(),
            parallel.fingerprint(),
            "retry storm must replay byte-identically"
        );
        let t = serial.report.traffic().expect("storm records traffic series");
        assert!(t.retries > 0, "throttled fleet ignites retries");
        assert!(t.client_timeouts >= t.retries, "every retry follows a timeout");
        assert_eq!(
            t.arrivals,
            t.completed + t.shed + t.in_flight,
            "fleet-wide books close exactly under retries and failover"
        );
    }
}
