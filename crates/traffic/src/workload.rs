//! Bounded request queues mapped onto the machine-stepping API.
//!
//! A [`TrafficWorkload`] is an [`EpochWorkload`]: each quantum it (1)
//! admits every arrival due by the machine's current simulated time into
//! a bounded FIFO — overflow is *shed*, the open-loop generator never
//! backs off — then (2) either serves one quantum of the head request's
//! demand through machine primitives (so service time, power and energy
//! all emerge from the same throttled execution), or idles toward the
//! next arrival when the queue is empty. Completion latency is
//! queueing + service delay, measured on the machine clock and recorded
//! into the log-spaced `traffic.latency_ms` histogram along with the
//! completed/shed/SLO counters (see
//! [`capsim_node::workload::traffic_keys`]).
//!
//! Because service demand is charged through `Machine`, a node throttled
//! to a deep rung serves each quantum more slowly on the *simulated*
//! clock; queues lengthen and the latency tail stretches — the mechanism
//! the SLO-per-joule experiment measures.

use std::collections::VecDeque;
use std::sync::Arc;

use capsim_ipmi::splitmix64;
use capsim_node::workload::traffic_keys as keys;
use capsim_node::{CodeBlock, EpochWorkload, Machine, Region, WorkloadFactory, WorkloadSpec};

use crate::arrival::{ArrivalCurve, ArrivalProcess};

/// Salt separating the service-demand draw stream from the arrival
/// stream of the same node.
const DEMAND_SALT: u64 = 0xdeaa_4d5a_1700_0001;

/// Idle slice when the queue is empty: long enough for the machine's
/// idle fast-forward to matter, short enough that admissions stay
/// timely relative to sub-millisecond fleet epochs.
const IDLE_SLICE_S: f64 = 2e-4;

/// How a request exercises the node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ServiceKind {
    /// ALU-bound quanta.
    Compute,
    /// Memory-streaming quanta.
    Stream,
    /// Both plus a branch.
    Mixed,
}

impl ServiceKind {
    fn for_request(k: u64) -> ServiceKind {
        match k % 3 {
            0 => ServiceKind::Compute,
            1 => ServiceKind::Stream,
            _ => ServiceKind::Mixed,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Request {
    arrival_s: f64,
    quanta: u32,
    kind: ServiceKind,
}

/// Config-driven description of a request-serving workload — the traffic
/// analogue of `CapPolicySpec`. Clone it into scenarios and benches;
/// [`TrafficSpec::workload`] turns it into a [`WorkloadSpec`] the fleet
/// builder accepts.
#[derive(Clone, Debug, PartialEq)]
pub struct TrafficSpec {
    /// Offered-load components, summed per node (rates are per node).
    pub curves: Vec<ArrivalCurve>,
    /// Queue bound; arrivals beyond it are shed.
    pub queue_bound: usize,
    /// SLO threshold on completion latency, milliseconds.
    pub slo_ms: f64,
    /// Service demand drawn uniformly from `quanta_min..=quanta_max`.
    pub quanta_min: u32,
    /// See `quanta_min`.
    pub quanta_max: u32,
    /// Scale per-node rates with the datacenter duty-cycle shape: the
    /// busy minority (3 nodes per 16) takes 4× the rate of the mostly
    /// idle majority.
    pub datacenter_mix: bool,
}

impl TrafficSpec {
    /// Flat offered load of `rps` requests per node-second.
    pub fn constant(rps: f64) -> TrafficSpec {
        TrafficSpec {
            curves: vec![ArrivalCurve::Constant { rps }],
            queue_bound: 64,
            slo_ms: 0.25,
            quanta_min: 1,
            quanta_max: 4,
            datacenter_mix: false,
        }
    }

    /// A trace built from explicit curve components.
    pub fn from_curves(curves: Vec<ArrivalCurve>) -> TrafficSpec {
        TrafficSpec { curves, ..TrafficSpec::constant(0.0) }
    }

    /// Set the queue bound.
    pub fn queue_bound(mut self, bound: usize) -> TrafficSpec {
        self.queue_bound = bound.max(1);
        self
    }

    /// Set the SLO latency threshold in milliseconds.
    pub fn slo_ms(mut self, ms: f64) -> TrafficSpec {
        self.slo_ms = ms;
        self
    }

    /// Enable datacenter hot/cold rate scaling.
    pub fn datacenter_mix(mut self, on: bool) -> TrafficSpec {
        self.datacenter_mix = on;
        self
    }

    /// The node-index rate multiplier for this spec.
    fn scale_for(&self, index: usize) -> f64 {
        if !self.datacenter_mix {
            return 1.0;
        }
        // Mirror `LoadKind::datacenter_for_index`: 3 hot nodes per 16.
        if index % 16 < 3 {
            4.0
        } else {
            1.0
        }
    }

    /// Wrap this spec as a [`WorkloadSpec`] for `FleetBuilder::workload`
    /// or `ChaosScenario`.
    pub fn workload(self) -> WorkloadSpec {
        WorkloadSpec::Custom(Arc::new(TrafficFactory { spec: self }))
    }
}

/// [`WorkloadFactory`] adapter: builds one [`TrafficWorkload`] per node,
/// with arrival and demand streams derived from the node's fleet seed.
#[derive(Clone, Debug)]
pub struct TrafficFactory {
    spec: TrafficSpec,
}

impl WorkloadFactory for TrafficFactory {
    fn name(&self) -> &'static str {
        "traffic"
    }

    fn build(&self, m: &mut Machine, index: usize, seed: u64) -> Box<dyn EpochWorkload> {
        let scale = self.spec.scale_for(index);
        let curves = self.spec.curves.iter().map(|c| c.scaled(scale)).collect();
        Box::new(TrafficWorkload::new(m, &self.spec, curves, seed))
    }
}

/// The per-node request server. See the module docs for semantics.
pub struct TrafficWorkload {
    arrivals: ArrivalProcess,
    queue: VecDeque<Request>,
    bound: usize,
    slo_ms: f64,
    quanta_min: u32,
    quanta_span: u32,
    demand_seed: u64,
    /// Requests admitted or shed so far (indexes the demand stream).
    offered: u64,
    /// Service quanta executed so far (strides the working set).
    served: u64,
    queue_peak: usize,
    block: CodeBlock,
    region: Region,
}

impl TrafficWorkload {
    fn new(m: &mut Machine, spec: &TrafficSpec, curves: Vec<ArrivalCurve>, seed: u64) -> Self {
        let block = m.code_block(64, 16);
        let region = m.alloc(32 * 1024);
        TrafficWorkload {
            arrivals: ArrivalProcess::new(curves, seed),
            queue: VecDeque::new(),
            bound: spec.queue_bound.max(1),
            slo_ms: spec.slo_ms,
            quanta_min: spec.quanta_min.max(1),
            quanta_span: spec.quanta_max.max(spec.quanta_min).max(1) - spec.quanta_min.max(1) + 1,
            demand_seed: splitmix64(seed, DEMAND_SALT),
            offered: 0,
            served: 0,
            queue_peak: 0,
            block,
            region,
        }
    }

    fn draw_quanta(&self, k: u64) -> u32 {
        self.quanta_min + (splitmix64(self.demand_seed, k) % self.quanta_span as u64) as u32
    }

    fn admit_due(&mut self, m: &mut Machine) {
        let now = m.now_s();
        while self.arrivals.peek() <= now {
            let arrival_s = self.arrivals.pop();
            let k = self.offered;
            self.offered += 1;
            m.obs_mut().metrics.inc(keys::ARRIVALS);
            if self.queue.len() < self.bound {
                self.queue.push_back(Request {
                    arrival_s,
                    quanta: self.draw_quanta(k),
                    kind: ServiceKind::for_request(k),
                });
                if self.queue.len() > self.queue_peak {
                    self.queue_peak = self.queue.len();
                    m.obs_mut().metrics.set_gauge(keys::QUEUE_PEAK, self.queue_peak as f64);
                }
            } else {
                m.obs_mut().metrics.inc(keys::SHED);
            }
        }
    }
}

impl EpochWorkload for TrafficWorkload {
    fn quantum(&mut self, m: &mut Machine) {
        self.admit_due(m);
        let Some(req) = self.queue.front_mut() else {
            // Empty queue: idle toward the next arrival, in slices small
            // enough that admission stays timely. A gap is always charged
            // so the epoch loop never treats this quantum as a stall.
            let now = m.now_s();
            let gap = (self.arrivals.peek() - now).clamp(1e-6, IDLE_SLICE_S);
            m.idle(gap);
            return;
        };
        // One quantum of the head request's service demand, charged
        // through the machine so throttling stretches it.
        let start = (self.served * 64) % self.region.bytes();
        match req.kind {
            ServiceKind::Compute => {
                for _ in 0..3 {
                    m.exec_block(&self.block);
                }
                m.compute(4000);
            }
            ServiceKind::Stream => {
                m.exec_block(&self.block);
                m.load_stream(self.region.base(), self.region.bytes(), start, 64, 128);
            }
            ServiceKind::Mixed => {
                for _ in 0..2 {
                    m.exec_block(&self.block);
                }
                m.load_stream(self.region.base(), self.region.bytes(), start, 64, 64);
                m.compute(1500);
                m.branch(&self.block, !self.served.is_multiple_of(7));
            }
        }
        self.served += 1;
        req.quanta -= 1;
        if req.quanta == 0 {
            let latency_ms = (m.now_s() - req.arrival_s) * 1e3;
            let slo_miss = latency_ms > self.slo_ms;
            let metrics = &mut m.obs_mut().metrics;
            metrics.inc(keys::COMPLETED);
            metrics.observe_log(keys::LATENCY_MS, keys::LATENCY_BUCKETS, latency_ms);
            if slo_miss {
                metrics.inc(keys::SLO_VIOLATIONS);
            }
            self.queue.pop_front();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capsim_node::MachineBuilder;

    fn run_spec(spec: TrafficSpec, seed: u64, epochs: u32) -> capsim_obs::MetricsSnapshot {
        let mut m = MachineBuilder::tiny().seed(seed).build();
        m.enable_obs(256);
        let mut w = spec.workload().build_for(&mut m, 0, seed);
        for _ in 0..epochs {
            m.step(5e-4, w.as_mut());
        }
        m.obs().metrics.snapshot()
    }

    #[test]
    fn requests_complete_and_account() {
        let s = run_spec(TrafficSpec::constant(40_000.0), 9, 20);
        let arrivals = s.counter(keys::ARRIVALS);
        let completed = s.counter(keys::COMPLETED);
        let shed = s.counter(keys::SHED);
        assert!(arrivals > 100, "arrivals {arrivals}");
        assert!(completed > 0, "completed {completed}");
        assert!(completed + shed <= arrivals, "conservation");
        let h = s.hist(keys::LATENCY_MS).expect("latency histogram recorded");
        assert_eq!(h.count, completed);
        assert!(h.quantile(0.99) >= h.quantile(0.50));
    }

    #[test]
    fn overload_sheds_at_the_queue_bound() {
        let spec = TrafficSpec::constant(2_000_000.0).queue_bound(4);
        let s = run_spec(spec, 5, 10);
        assert!(s.counter(keys::SHED) > 0, "overload must shed");
        assert!(s.gauge(keys::QUEUE_PEAK) <= Some(4.0), "queue bound respected");
    }

    #[test]
    fn same_seed_is_bit_identical_different_seed_is_not() {
        let a = run_spec(TrafficSpec::constant(50_000.0), 21, 12);
        let b = run_spec(TrafficSpec::constant(50_000.0), 21, 12);
        let c = run_spec(TrafficSpec::constant(50_000.0), 22, 12);
        assert_eq!(a, b, "same seed, same series");
        assert_ne!(a, c, "different seed diverges");
    }
}
