//! Bounded request queues mapped onto the machine-stepping API.
//!
//! A [`TrafficWorkload`] is an [`EpochWorkload`]: each quantum it (1)
//! admits every arrival due by the machine's current simulated time into
//! a bounded FIFO — overflow is *shed*, the open-loop generator never
//! backs off — then (2) either serves one quantum of the head request's
//! demand through machine primitives (so service time, power and energy
//! all emerge from the same throttled execution), or idles toward the
//! next arrival when the queue is empty. Completion latency is
//! queueing + service delay, measured on the machine clock and recorded
//! into the log-spaced `traffic.latency_ms` histogram along with the
//! completed/shed/SLO counters (see
//! [`capsim_node::workload::traffic_keys`]).
//!
//! Because service demand is charged through `Machine`, a node throttled
//! to a deep rung serves each quantum more slowly on the *simulated*
//! clock; queues lengthen and the latency tail stretches — the mechanism
//! the SLO-per-joule experiment measures.
//!
//! Two optional layers close the loop the open-loop generator leaves
//! open:
//!
//! * **Closed-loop clients** ([`TrafficSpec::closed_loop`]): when a
//!   completion's latency exceeds the client timeout, the seeded client
//!   population re-issues the request after a capped exponential backoff
//!   with deterministic jitter. Retries re-enter through the same
//!   admission path (each counts as a fresh arrival *and* a
//!   `traffic.retries` tick), so a throttled node amplifies its own load
//!   — the retry storm. The retry stream is a pure function of
//!   `(spec, seed)`, like everything else.
//! * **Fleet failover** ([`TrafficSpec::failover`]): instead of shedding
//!   at a full queue, the workload exports the overflow through
//!   [`EpochWorkload::drain_shed`]; the fleet barrier re-offers each
//!   request to the least-loaded node in the group (serially, at the
//!   root, so shard count cannot change the routing) and counts the
//!   leftovers shed at their origin.
//!
//! Two robustness layers ride on top (see DESIGN.md §15):
//!
//! * **AIMD backpressure** ([`ClientSpec::aimd`]): sustained client
//!   timeouts multiplicatively cut the population's offered-rate
//!   multiplier; timeout-free control periods additively restore it. The
//!   multiplier thins the arrival stream inside the Lewis–Shedler
//!   acceptance test without consuming draws, so determinism and
//!   bit-replay are untouched.
//! * **Priority brownout** ([`TrafficSpec::brownout`]): every request
//!   carries a seeded priority class (0 critical … 2 background); under
//!   pressure the admission gate sheds the lowest class first and
//!   restores classes with hysteresis. Conservation holds per class:
//!   `arrivals_pC == completed_pC + shed_pC + in_flight_pC` exactly.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};
use std::fmt;
use std::sync::Arc;

use capsim_ipmi::splitmix64;
use capsim_node::workload::traffic_keys as keys;
use capsim_node::{
    CodeBlock, EpochWorkload, FailoverRequest, LoadKind, Machine, QueueRoom, Region,
    WorkloadFactory, WorkloadSpec,
};
use capsim_obs::EventKind;

use crate::arrival::{unit, ArrivalCurve, ArrivalProcess};

/// Salt separating the service-demand draw stream from the arrival
/// stream of the same node.
const DEMAND_SALT: u64 = 0xdeaa_4d5a_1700_0001;

/// Salt separating the client retry-jitter stream from both.
const RETRY_SALT: u64 = 0xc10e_4e75_0b0f_f001;

/// Salt separating the priority-class draw stream. Classes are drawn by
/// request index `k` from their own stream, so adding priorities did not
/// shift the arrival-time or service-demand draws of earlier PRs.
const PRIORITY_SALT: u64 = 0x9b10_12c1_a550_0001;

/// Idle slice when the queue is empty: long enough for the machine's
/// idle fast-forward to matter, short enough that admissions stay
/// timely relative to sub-millisecond fleet epochs.
const IDLE_SLICE_S: f64 = 2e-4;

/// How a request exercises the node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ServiceKind {
    /// ALU-bound quanta.
    Compute,
    /// Memory-streaming quanta.
    Stream,
    /// Both plus a branch.
    Mixed,
}

impl ServiceKind {
    fn for_request(k: u64) -> ServiceKind {
        match k % 3 {
            0 => ServiceKind::Compute,
            1 => ServiceKind::Stream,
            _ => ServiceKind::Mixed,
        }
    }

    /// Wire form for [`FailoverRequest::kind`].
    fn as_u8(self) -> u8 {
        match self {
            ServiceKind::Compute => 0,
            ServiceKind::Stream => 1,
            ServiceKind::Mixed => 2,
        }
    }

    fn from_u8(k: u8) -> ServiceKind {
        match k {
            0 => ServiceKind::Compute,
            1 => ServiceKind::Stream,
            _ => ServiceKind::Mixed,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Request {
    arrival_s: f64,
    /// Remaining service demand.
    quanta: u32,
    /// Original service demand (a client retry re-issues the same work).
    demand: u32,
    kind: ServiceKind,
    /// Client attempt index: 0 for first tries, n for the n-th retry.
    attempt: u32,
    /// Priority class, 0 most critical; see `traffic_keys::CLASSES`.
    /// Drawn once per original request and preserved across retries and
    /// failover hops.
    class: u8,
}

/// A scheduled client retry, ordered by due time (ties broken by issue
/// sequence, so the heap order is deterministic).
#[derive(Clone, Copy, Debug)]
struct RetryEntry {
    due_s: f64,
    demand: u32,
    kind: ServiceKind,
    attempt: u32,
    class: u8,
    seq: u64,
}

impl PartialEq for RetryEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for RetryEntry {}
impl PartialOrd for RetryEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for RetryEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Due times are non-negative finite, so the IEEE bit pattern
        // orders exactly like the value — a total order without any f64
        // comparison caveats. BinaryHeap is a max-heap; reverse so the
        // earliest retry surfaces first.
        (other.due_s.to_bits(), other.seq).cmp(&(self.due_s.to_bits(), self.seq))
    }
}

/// AIMD backpressure for the closed-loop client population: sustained
/// timeouts multiplicatively cut the offered-rate multiplier, timeout-free
/// control periods additively restore it. The multiplier is applied
/// inside the thinning acceptance test of [`ArrivalProcess`], which
/// consumes no extra draws — a controller that never adjusts is
/// draw-for-draw identical to no controller at all, so bit-replay and
/// serial ≡ parallel determinism are preserved (see DESIGN.md §15).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AimdSpec {
    /// Control period on the node's simulated clock, seconds.
    pub control_period_s: f64,
    /// Client timeouts within one control period that trigger a cut.
    pub timeout_threshold: u32,
    /// Multiplicative decrease factor applied on a cut, in (0, 1).
    pub decrease: f64,
    /// Additive increase per timeout-free control period.
    pub increase: f64,
    /// Floor on the rate multiplier, in (0, 1].
    pub floor: f64,
}

impl Default for AimdSpec {
    fn default() -> Self {
        // One fleet epoch per control decision: cut by half on a bad
        // window, claw back 5 points per clean one — classic AIMD
        // asymmetry, scaled to sub-millisecond epochs.
        AimdSpec {
            control_period_s: 5e-4,
            timeout_threshold: 8,
            decrease: 0.5,
            increase: 0.05,
            floor: 0.1,
        }
    }
}

/// Why a [`ClientSpec`] was rejected by [`ClientSpec::validate`].
///
/// `max_retries == 0` is deliberately *legal*: it describes a client
/// population that observes timeouts (feeding AIMD backpressure) but
/// never re-issues work.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum InvalidClientSpec {
    /// `timeout_ms` must be positive and finite; a non-positive timeout
    /// would mark every completion late and a NaN poisons comparisons.
    NonPositiveTimeout { timeout_ms: f64 },
    /// `backoff_s` must be positive and finite.
    NonPositiveBackoff { backoff_s: f64 },
    /// `backoff_cap_s` must be at least `backoff_s`, else the cap
    /// silently rewrites the base backoff.
    BackoffCapBelowBase { backoff_s: f64, backoff_cap_s: f64 },
    /// An AIMD parameter is out of range; `field` names the offender.
    InvalidAimd { field: &'static str },
}

impl fmt::Display for InvalidClientSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvalidClientSpec::NonPositiveTimeout { timeout_ms } => {
                write!(f, "client timeout_ms must be positive and finite, got {timeout_ms}")
            }
            InvalidClientSpec::NonPositiveBackoff { backoff_s } => {
                write!(f, "client backoff_s must be positive and finite, got {backoff_s}")
            }
            InvalidClientSpec::BackoffCapBelowBase { backoff_s, backoff_cap_s } => {
                write!(
                    f,
                    "client backoff_cap_s ({backoff_cap_s}) must be >= backoff_s ({backoff_s})"
                )
            }
            InvalidClientSpec::InvalidAimd { field } => {
                write!(f, "client aimd spec has out-of-range {field}")
            }
        }
    }
}

impl std::error::Error for InvalidClientSpec {}

/// Closed-loop client behaviour: how the seeded client population reacts
/// to observed completion latency.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClientSpec {
    /// Client-side timeout on completion latency, milliseconds. A
    /// completion slower than this counts a `traffic.client_timeouts`
    /// tick and (while the retry budget lasts) schedules a retry.
    pub timeout_ms: f64,
    /// Retries per original request before the client gives up. Zero is
    /// legal: a timeout-only client that backs off but never retries.
    pub max_retries: u32,
    /// Backoff before the first retry, seconds; doubles per attempt.
    pub backoff_s: f64,
    /// Cap on the exponential backoff, seconds.
    pub backoff_cap_s: f64,
    /// AIMD offered-rate backpressure (`None`: clients retry at full
    /// offered rate forever — the retry-storm baseline).
    pub aimd: Option<AimdSpec>,
}

impl Default for ClientSpec {
    fn default() -> Self {
        // Timeout at 2× the emergency SLO; backoff on the order of one
        // fleet epoch so a storm builds within a few barriers.
        ClientSpec {
            timeout_ms: 0.1,
            max_retries: 3,
            backoff_s: 2e-4,
            backoff_cap_s: 2e-3,
            aimd: None,
        }
    }
}

impl ClientSpec {
    /// Enable AIMD backpressure on this client population.
    pub fn aimd(mut self, spec: AimdSpec) -> ClientSpec {
        self.aimd = Some(spec);
        self
    }

    /// Check every parameter for range errors. All construction paths
    /// that accept a `ClientSpec` funnel through this (and the facade
    /// surfaces the error as `CapsimError::Traffic`).
    pub fn validate(&self) -> Result<(), InvalidClientSpec> {
        if !(self.timeout_ms > 0.0 && self.timeout_ms.is_finite()) {
            return Err(InvalidClientSpec::NonPositiveTimeout { timeout_ms: self.timeout_ms });
        }
        if !(self.backoff_s > 0.0 && self.backoff_s.is_finite()) {
            return Err(InvalidClientSpec::NonPositiveBackoff { backoff_s: self.backoff_s });
        }
        if self.backoff_cap_s < self.backoff_s || !self.backoff_cap_s.is_finite() {
            return Err(InvalidClientSpec::BackoffCapBelowBase {
                backoff_s: self.backoff_s,
                backoff_cap_s: self.backoff_cap_s,
            });
        }
        if let Some(a) = self.aimd {
            if !(a.control_period_s > 0.0 && a.control_period_s.is_finite()) {
                return Err(InvalidClientSpec::InvalidAimd { field: "control_period_s" });
            }
            if a.timeout_threshold == 0 {
                return Err(InvalidClientSpec::InvalidAimd { field: "timeout_threshold" });
            }
            if !(a.decrease > 0.0 && a.decrease < 1.0) {
                return Err(InvalidClientSpec::InvalidAimd { field: "decrease" });
            }
            if !(a.increase > 0.0 && a.increase.is_finite()) {
                return Err(InvalidClientSpec::InvalidAimd { field: "increase" });
            }
            if !(a.floor > 0.0 && a.floor <= 1.0) {
                return Err(InvalidClientSpec::InvalidAimd { field: "floor" });
            }
        }
        Ok(())
    }
}

/// Priority-tiered brownout: under pressure the admission gate sheds the
/// lowest-priority class first and restores classes with hysteresis.
/// Pressure is queue depth against the bound and, optionally, the node's
/// own observed p99 completion latency (which requires observability —
/// the same carve-out the tail-aware `Slo` policy documents).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BrownoutSpec {
    /// Queue-depth fraction of the bound at or above which the next
    /// (lowest-priority) admitted class is shed.
    pub high_watermark: f64,
    /// Fraction at or below which a shed class is restored. Must sit
    /// well below `high_watermark`; the gap is the hysteresis band.
    pub low_watermark: f64,
    /// p99 completion-latency threshold, milliseconds, that also counts
    /// as pressure. `0.0` disables the tail trigger, keeping the default
    /// path free of any observability dependence.
    pub p99_ms: f64,
    /// Evaluation period on the node's simulated clock, seconds.
    pub control_period_s: f64,
}

impl Default for BrownoutSpec {
    fn default() -> Self {
        BrownoutSpec {
            high_watermark: 0.75,
            low_watermark: 0.375,
            p99_ms: 0.0,
            control_period_s: 5e-4,
        }
    }
}

/// Config-driven description of a request-serving workload — the traffic
/// analogue of `CapPolicySpec`. Clone it into scenarios and benches;
/// [`TrafficSpec::workload`] turns it into a [`WorkloadSpec`] the fleet
/// builder accepts.
#[derive(Clone, Debug, PartialEq)]
pub struct TrafficSpec {
    /// Offered-load components, summed per node (rates are per node).
    pub curves: Vec<ArrivalCurve>,
    /// Queue bound; arrivals beyond it are shed.
    pub queue_bound: usize,
    /// SLO threshold on completion latency, milliseconds.
    pub slo_ms: f64,
    /// Service demand drawn uniformly from `quanta_min..=quanta_max`.
    pub quanta_min: u32,
    /// See `quanta_min`.
    pub quanta_max: u32,
    /// Scale per-node rates with the datacenter duty-cycle shape: the
    /// busy minority (3 nodes per 16) takes 4× the rate of the mostly
    /// idle majority.
    pub datacenter_mix: bool,
    /// Closed-loop client behaviour (`None`: pure open loop).
    pub clients: Option<ClientSpec>,
    /// Defer full-queue sheds to the fleet barrier for cross-node
    /// failover instead of dropping locally.
    pub failover: bool,
    /// Priority-tiered brownout at the admission gate (`None`: all
    /// classes admitted regardless of pressure).
    pub brownout: Option<BrownoutSpec>,
}

impl TrafficSpec {
    /// Flat offered load of `rps` requests per node-second.
    pub fn constant(rps: f64) -> TrafficSpec {
        TrafficSpec {
            curves: vec![ArrivalCurve::Constant { rps }],
            queue_bound: 64,
            slo_ms: 0.25,
            quanta_min: 1,
            quanta_max: 4,
            datacenter_mix: false,
            clients: None,
            failover: false,
            brownout: None,
        }
    }

    /// A trace built from explicit curve components.
    pub fn from_curves(curves: Vec<ArrivalCurve>) -> TrafficSpec {
        TrafficSpec { curves, ..TrafficSpec::constant(0.0) }
    }

    /// Set the queue bound.
    pub fn queue_bound(mut self, bound: usize) -> TrafficSpec {
        self.queue_bound = bound.max(1);
        self
    }

    /// Set the SLO latency threshold in milliseconds.
    pub fn slo_ms(mut self, ms: f64) -> TrafficSpec {
        self.slo_ms = ms;
        self
    }

    /// Enable datacenter hot/cold rate scaling.
    pub fn datacenter_mix(mut self, on: bool) -> TrafficSpec {
        self.datacenter_mix = on;
        self
    }

    /// Enable closed-loop clients (timeout → capped-backoff retries).
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`ClientSpec::validate`]; use
    /// [`TrafficSpec::try_closed_loop`] to handle the error.
    pub fn closed_loop(self, clients: ClientSpec) -> TrafficSpec {
        self.try_closed_loop(clients).expect("invalid ClientSpec")
    }

    /// Enable closed-loop clients, surfacing parameter errors as a typed
    /// [`InvalidClientSpec`] instead of panicking.
    pub fn try_closed_loop(
        mut self,
        clients: ClientSpec,
    ) -> Result<TrafficSpec, InvalidClientSpec> {
        clients.validate()?;
        self.clients = Some(clients);
        Ok(self)
    }

    /// Enable cross-node failover at the fleet barrier.
    pub fn failover(mut self, on: bool) -> TrafficSpec {
        self.failover = on;
        self
    }

    /// Enable priority-tiered brownout at the admission gate.
    pub fn brownout(mut self, spec: BrownoutSpec) -> TrafficSpec {
        self.brownout = Some(spec);
        self
    }

    /// The node-index rate multiplier for this spec: hot nodes are
    /// exactly the sustained-busy minority of
    /// [`LoadKind::datacenter_for_index`], so the traffic hot set can
    /// never drift from the workload hot set.
    fn scale_for(&self, index: usize) -> f64 {
        if !self.datacenter_mix {
            return 1.0;
        }
        if LoadKind::datacenter_for_index(index) != LoadKind::Pulse {
            4.0
        } else {
            1.0
        }
    }

    /// Wrap this spec as a [`WorkloadSpec`] for `FleetBuilder::workload`
    /// or `ChaosScenario`.
    pub fn workload(self) -> WorkloadSpec {
        WorkloadSpec::Custom(Arc::new(TrafficFactory { spec: self }))
    }
}

/// [`WorkloadFactory`] adapter: builds one [`TrafficWorkload`] per node,
/// with arrival and demand streams derived from the node's fleet seed.
#[derive(Clone, Debug)]
pub struct TrafficFactory {
    spec: TrafficSpec,
}

impl WorkloadFactory for TrafficFactory {
    fn name(&self) -> &'static str {
        "traffic"
    }

    fn build(&self, m: &mut Machine, index: usize, seed: u64) -> Box<dyn EpochWorkload> {
        let scale = self.spec.scale_for(index);
        let curves = self.spec.curves.iter().map(|c| c.scaled(scale)).collect();
        Box::new(TrafficWorkload::new(m, &self.spec, curves, seed))
    }
}

/// Live AIMD controller state for one client population.
struct AimdState {
    spec: AimdSpec,
    multiplier: f64,
    /// Client timeouts observed in the current control window.
    window_timeouts: u32,
    next_control_s: f64,
}

/// Live brownout controller state for one admission gate.
struct BrownoutState {
    spec: BrownoutSpec,
    /// Highest priority class currently admitted (0 = only critical).
    max_class: u8,
    next_eval_s: f64,
}

/// The per-node request server. See the module docs for semantics.
pub struct TrafficWorkload {
    arrivals: ArrivalProcess,
    queue: VecDeque<Request>,
    bound: usize,
    slo_ms: f64,
    quanta_min: u32,
    quanta_span: u32,
    demand_seed: u64,
    priority_seed: u64,
    clients: Option<ClientSpec>,
    failover: bool,
    aimd: Option<AimdState>,
    brownout: Option<BrownoutState>,
    /// Scheduled client retries, earliest due first.
    retries: BinaryHeap<RetryEntry>,
    /// Retry issue counter (jitter draw index and heap tie-breaker).
    retry_seq: u64,
    retry_seed: u64,
    /// Overflow awaiting barrier routing (failover mode only).
    shed_pending: Vec<FailoverRequest>,
    /// Requests admitted or shed so far (indexes the demand stream).
    offered: u64,
    /// Service quanta executed so far (strides the working set).
    served: u64,
    queue_peak: usize,
    block: CodeBlock,
    region: Region,
}

impl TrafficWorkload {
    fn new(m: &mut Machine, spec: &TrafficSpec, curves: Vec<ArrivalCurve>, seed: u64) -> Self {
        let block = m.code_block(64, 16);
        let region = m.alloc(32 * 1024);
        if spec.clients.is_some_and(|c| c.aimd.is_some()) {
            // Publish the starting multiplier so the gauge is defined
            // even for runs the controller never has to touch.
            m.obs_mut().metrics.set_gauge(keys::RATE_MULTIPLIER, 1.0);
        }
        if spec.brownout.is_some() {
            m.obs_mut().metrics.set_gauge(keys::BROWNOUT_MAX_CLASS, (keys::CLASSES - 1) as f64);
        }
        TrafficWorkload {
            arrivals: ArrivalProcess::new(curves, seed),
            queue: VecDeque::new(),
            bound: spec.queue_bound.max(1),
            slo_ms: spec.slo_ms,
            quanta_min: spec.quanta_min.max(1),
            quanta_span: spec.quanta_max.max(spec.quanta_min).max(1) - spec.quanta_min.max(1) + 1,
            demand_seed: splitmix64(seed, DEMAND_SALT),
            priority_seed: splitmix64(seed, PRIORITY_SALT),
            clients: spec.clients,
            failover: spec.failover,
            aimd: spec.clients.and_then(|c| c.aimd).map(|a| AimdState {
                spec: a,
                multiplier: 1.0,
                window_timeouts: 0,
                next_control_s: a.control_period_s,
            }),
            brownout: spec.brownout.map(|b| BrownoutState {
                spec: b,
                max_class: (keys::CLASSES - 1) as u8,
                next_eval_s: b.control_period_s,
            }),
            retries: BinaryHeap::new(),
            retry_seq: 0,
            retry_seed: splitmix64(seed, RETRY_SALT),
            shed_pending: Vec::new(),
            offered: 0,
            served: 0,
            queue_peak: 0,
            block,
            region,
        }
    }

    fn draw_quanta(&self, k: u64) -> u32 {
        self.quanta_min + (splitmix64(self.demand_seed, k) % self.quanta_span as u64) as u32
    }

    /// Priority class for request index `k`: 20% critical (0), 30%
    /// standard (1), 50% background (2) — drawn from the dedicated
    /// priority stream so the arrival/demand/retry streams of earlier
    /// PRs are untouched.
    fn draw_class(&self, k: u64) -> u8 {
        match splitmix64(self.priority_seed, k) % 10 {
            0 | 1 => 0,
            2..=4 => 1,
            _ => 2,
        }
    }

    /// Run the AIMD and brownout controllers up to the machine's current
    /// simulated time. Decisions happen only at fixed control-period
    /// boundaries on the node's own clock and read only node-local state,
    /// so they are identical under any shard count or thread count.
    fn control_tick(&mut self, m: &mut Machine) {
        let now = m.now_s();
        if let Some(a) = &mut self.aimd {
            while now >= a.next_control_s {
                a.next_control_s += a.spec.control_period_s;
                let (next, cause) = if a.window_timeouts >= a.spec.timeout_threshold {
                    ((a.multiplier * a.spec.decrease).max(a.spec.floor), "timeouts")
                } else if a.window_timeouts == 0 {
                    (f64::min(a.multiplier + a.spec.increase, 1.0), "recovery")
                } else {
                    (a.multiplier, "hold")
                };
                a.window_timeouts = 0;
                if next != a.multiplier {
                    a.multiplier = next;
                    self.arrivals.set_rate_multiplier(next);
                    let obs = m.obs_mut();
                    obs.metrics.set_gauge(keys::RATE_MULTIPLIER, next);
                    obs.events.record(now, EventKind::RateAdjusted { multiplier: next, cause });
                }
            }
        }
        if let Some(b) = &mut self.brownout {
            while now >= b.next_eval_s {
                b.next_eval_s += b.spec.control_period_s;
                let depth = self.queue.len() as f64;
                let high = b.spec.high_watermark * self.bound as f64;
                let low = b.spec.low_watermark * self.bound as f64;
                // Reading the node's own latency tail requires obs; with
                // obs off (or p99_ms == 0) the trigger is inert and the
                // controller is queue-depth only.
                let tail_hot = b.spec.p99_ms > 0.0
                    && m.obs()
                        .metrics
                        .hist_quantile(keys::LATENCY_MS, 0.99)
                        .is_some_and(|p99| p99 > b.spec.p99_ms);
                let cur = b.max_class;
                let next = if (depth >= high || tail_hot) && cur > 0 {
                    cur - 1
                } else if depth <= low && !tail_hot && (cur as usize) < keys::CLASSES - 1 {
                    cur + 1
                } else {
                    cur
                };
                if next != cur {
                    b.max_class = next;
                    let cause = if next < cur { "pressure" } else { "recovery" };
                    let obs = m.obs_mut();
                    obs.metrics.set_gauge(keys::BROWNOUT_MAX_CLASS, next as f64);
                    obs.events.record(
                        now,
                        EventKind::BrownoutShift {
                            from_class: cur as u32,
                            to_class: next as u32,
                            cause,
                        },
                    );
                }
            }
        }
    }

    /// One request through the admission gate: queued, deferred to the
    /// barrier, or shed. Every offer — first try or retry — is an
    /// arrival; that is what keeps `arrivals == completed + shed +
    /// in_flight` exact.
    fn offer(&mut self, m: &mut Machine, req: Request) {
        let class = req.class as usize % keys::CLASSES;
        {
            let metrics = &mut m.obs_mut().metrics;
            metrics.inc(keys::ARRIVALS);
            metrics.inc(keys::ARRIVALS_BY_CLASS[class]);
        }
        // Brownout gate: a browned-out class is shed at the door — never
        // queued, never deferred to failover. It still counted as an
        // arrival above, so per-class conservation stays exact.
        if let Some(b) = &self.brownout {
            if req.class > b.max_class {
                let metrics = &mut m.obs_mut().metrics;
                metrics.inc(keys::SHED);
                metrics.inc(keys::SHED_BY_CLASS[class]);
                metrics.inc(keys::BROWNOUT_SHED);
                return;
            }
        }
        if self.queue.len() < self.bound {
            self.queue.push_back(req);
            if self.queue.len() > self.queue_peak {
                self.queue_peak = self.queue.len();
                m.obs_mut().metrics.set_gauge(keys::QUEUE_PEAK, self.queue_peak as f64);
            }
        } else if self.failover {
            self.shed_pending.push(FailoverRequest {
                arrival_s: req.arrival_s,
                quanta: req.quanta,
                kind: req.kind.as_u8(),
                class: req.class,
            });
        } else {
            let metrics = &mut m.obs_mut().metrics;
            metrics.inc(keys::SHED);
            metrics.inc(keys::SHED_BY_CLASS[class]);
        }
    }

    fn admit_due(&mut self, m: &mut Machine) {
        let now = m.now_s();
        loop {
            let next_arrival = self.arrivals.peek();
            let next_retry = self.retries.peek().map(|r| r.due_s);
            let arrival_due = next_arrival <= now;
            let retry_due = next_retry.is_some_and(|d| d <= now);
            if !arrival_due && !retry_due {
                return;
            }
            // Earliest event first; the open-loop stream wins exact ties
            // so interleaving is well-defined.
            if arrival_due && next_retry.is_none_or(|d| next_arrival <= d) {
                let arrival_s = self.arrivals.pop();
                let k = self.offered;
                self.offered += 1;
                let demand = self.draw_quanta(k);
                let class = self.draw_class(k);
                self.offer(
                    m,
                    Request {
                        arrival_s,
                        quanta: demand,
                        demand,
                        kind: ServiceKind::for_request(k),
                        attempt: 0,
                        class,
                    },
                );
            } else {
                let e = self.retries.pop().expect("retry_due implies a head entry");
                m.obs_mut().metrics.inc(keys::RETRIES);
                self.offer(
                    m,
                    Request {
                        arrival_s: e.due_s,
                        quanta: e.demand,
                        demand: e.demand,
                        kind: e.kind,
                        attempt: e.attempt,
                        class: e.class,
                    },
                );
            }
        }
    }

    /// Client reaction to a completion: a latency past the timeout costs
    /// a `client_timeouts` tick and, while the retry budget lasts,
    /// schedules a re-issue after capped exponential backoff with
    /// deterministic jitter (draw `retry_seq` of the node's retry
    /// stream).
    fn client_observe(&mut self, m: &mut Machine, latency_ms: f64, req: Request) {
        let Some(c) = self.clients else {
            return;
        };
        if latency_ms <= c.timeout_ms {
            return;
        }
        m.obs_mut().metrics.inc(keys::CLIENT_TIMEOUTS);
        if let Some(a) = &mut self.aimd {
            // Every timeout feeds the AIMD window, including ones past
            // the retry budget — backpressure reacts to pain, not to
            // whether the client still retries.
            a.window_timeouts += 1;
        }
        if req.attempt >= c.max_retries {
            return;
        }
        let backoff = (c.backoff_s * f64::powi(2.0, req.attempt as i32)).min(c.backoff_cap_s);
        self.retry_seq += 1;
        let jitter = 1.0 + 0.5 * unit(splitmix64(self.retry_seed, self.retry_seq));
        self.retries.push(RetryEntry {
            due_s: m.now_s() + backoff * jitter,
            demand: req.demand,
            kind: req.kind,
            attempt: req.attempt + 1,
            class: req.class,
            seq: self.retry_seq,
        });
    }
}

impl EpochWorkload for TrafficWorkload {
    fn quantum(&mut self, m: &mut Machine) {
        self.control_tick(m);
        self.admit_due(m);
        let Some(req) = self.queue.front_mut() else {
            // Empty queue: idle toward the next arrival (open-loop or
            // scheduled retry), in slices small enough that admission
            // stays timely. A gap is always charged so the epoch loop
            // never treats this quantum as a stall.
            let now = m.now_s();
            let mut next = self.arrivals.peek();
            if let Some(r) = self.retries.peek() {
                next = next.min(r.due_s);
            }
            let gap = (next - now).clamp(1e-6, IDLE_SLICE_S);
            m.idle(gap);
            return;
        };
        // One quantum of the head request's service demand, charged
        // through the machine so throttling stretches it.
        let start = (self.served * 64) % self.region.bytes();
        match req.kind {
            ServiceKind::Compute => {
                for _ in 0..3 {
                    m.exec_block(&self.block);
                }
                m.compute(4000);
            }
            ServiceKind::Stream => {
                m.exec_block(&self.block);
                m.load_stream(self.region.base(), self.region.bytes(), start, 64, 128);
            }
            ServiceKind::Mixed => {
                for _ in 0..2 {
                    m.exec_block(&self.block);
                }
                m.load_stream(self.region.base(), self.region.bytes(), start, 64, 64);
                m.compute(1500);
                m.branch(&self.block, !self.served.is_multiple_of(7));
            }
        }
        self.served += 1;
        req.quanta -= 1;
        if req.quanta == 0 {
            let done = *req;
            let latency_ms = (m.now_s() - done.arrival_s) * 1e3;
            let slo_miss = latency_ms > self.slo_ms;
            let metrics = &mut m.obs_mut().metrics;
            metrics.inc(keys::COMPLETED);
            metrics.inc(keys::COMPLETED_BY_CLASS[done.class as usize % keys::CLASSES]);
            metrics.observe_log(keys::LATENCY_MS, keys::LATENCY_BUCKETS, latency_ms);
            if slo_miss {
                metrics.inc(keys::SLO_VIOLATIONS);
            }
            self.queue.pop_front();
            self.client_observe(m, latency_ms, done);
        }
    }

    fn queue_room(&self) -> Option<QueueRoom> {
        // Only failover-mode servers take part in barrier routing;
        // open-loop specs keep the barrier entirely out of the data path
        // (and their goldens byte-identical).
        self.failover
            .then(|| QueueRoom { depth: self.queue.len(), free: self.bound - self.queue.len() })
    }

    fn drain_shed(&mut self) -> Vec<FailoverRequest> {
        std::mem::take(&mut self.shed_pending)
    }

    fn accept_failover(&mut self, m: &mut Machine, req: FailoverRequest) -> bool {
        if self.queue.len() >= self.bound {
            return false;
        }
        // Latency keeps accruing from the original arrival — the
        // failover hop is part of the request's story. The client retry
        // budget restarts: the re-homed request is a fresh attempt from
        // the target's point of view.
        self.queue.push_back(Request {
            arrival_s: req.arrival_s,
            quanta: req.quanta,
            demand: req.quanta,
            kind: ServiceKind::from_u8(req.kind),
            attempt: 0,
            class: req.class.min((keys::CLASSES - 1) as u8),
        });
        if self.queue.len() > self.queue_peak {
            self.queue_peak = self.queue.len();
            m.obs_mut().metrics.set_gauge(keys::QUEUE_PEAK, self.queue_peak as f64);
        }
        m.obs_mut().metrics.inc(keys::FAILOVER_IN);
        true
    }

    fn finish(&mut self, m: &mut Machine) {
        // Overflow the barrier never drained (standalone runs, or sheds
        // after the last barrier) is shed after all.
        let metrics = &mut m.obs_mut().metrics;
        for req in self.shed_pending.drain(..) {
            metrics.inc(keys::SHED);
            metrics.inc(keys::SHED_BY_CLASS[req.class as usize % keys::CLASSES]);
        }
        // Conservation remainder: everything admitted but not yet
        // completed. Scheduled retries are *not* in flight — they have
        // not re-arrived yet, so they are not arrivals either.
        metrics.add(keys::IN_FLIGHT, self.queue.len() as u64);
        for req in &self.queue {
            metrics.inc(keys::IN_FLIGHT_BY_CLASS[req.class as usize % keys::CLASSES]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capsim_node::MachineBuilder;

    fn run_workload(
        spec: TrafficSpec,
        seed: u64,
        epochs: u32,
    ) -> (capsim_obs::MetricsSnapshot, Box<dyn EpochWorkload>) {
        let mut m = MachineBuilder::tiny().seed(seed).build();
        m.enable_obs(256);
        let mut w = spec.workload().build_for(&mut m, 0, seed);
        for _ in 0..epochs {
            m.step(5e-4, w.as_mut());
        }
        w.finish(&mut m);
        (m.obs().metrics.snapshot(), w)
    }

    fn run_spec(spec: TrafficSpec, seed: u64, epochs: u32) -> capsim_obs::MetricsSnapshot {
        run_workload(spec, seed, epochs).0
    }

    #[test]
    fn requests_complete_and_account_exactly() {
        let s = run_spec(TrafficSpec::constant(40_000.0), 9, 20);
        let arrivals = s.counter(keys::ARRIVALS);
        let completed = s.counter(keys::COMPLETED);
        let shed = s.counter(keys::SHED);
        let in_flight = s.counter(keys::IN_FLIGHT);
        assert!(arrivals > 100, "arrivals {arrivals}");
        assert!(completed > 0, "completed {completed}");
        assert_eq!(
            arrivals,
            completed + shed + in_flight,
            "exact conservation: {arrivals} arrivals vs {completed} completed + {shed} shed \
             + {in_flight} in flight"
        );
        let h = s.hist(keys::LATENCY_MS).expect("latency histogram recorded");
        assert_eq!(h.count, completed);
        assert!(h.quantile(0.99) >= h.quantile(0.50));
    }

    #[test]
    fn overload_sheds_at_the_queue_bound_and_conserves() {
        let spec = TrafficSpec::constant(2_000_000.0).queue_bound(4);
        let s = run_spec(spec, 5, 10);
        assert!(s.counter(keys::SHED) > 0, "overload must shed");
        assert!(s.gauge(keys::QUEUE_PEAK) <= Some(4.0), "queue bound respected");
        assert_eq!(
            s.counter(keys::ARRIVALS),
            s.counter(keys::COMPLETED) + s.counter(keys::SHED) + s.counter(keys::IN_FLIGHT),
            "conservation holds under overload"
        );
    }

    #[test]
    fn same_seed_is_bit_identical_different_seed_is_not() {
        let a = run_spec(TrafficSpec::constant(50_000.0), 21, 12);
        let b = run_spec(TrafficSpec::constant(50_000.0), 21, 12);
        let c = run_spec(TrafficSpec::constant(50_000.0), 22, 12);
        assert_eq!(a, b, "same seed, same series");
        assert_ne!(a, c, "different seed diverges");
    }

    #[test]
    fn slow_completions_ignite_retries() {
        // An impossible timeout makes every completion late: the client
        // layer must retry each one until the budget runs out, and every
        // retry must re-enter as an arrival (keeping conservation exact).
        // `timeout_ms: 0.0` is rejected by validation, so use the
        // smallest positive timeout — every real completion beats it.
        let clients = ClientSpec {
            timeout_ms: f64::MIN_POSITIVE,
            max_retries: 2,
            backoff_s: 1e-5,
            backoff_cap_s: 1e-4,
            ..ClientSpec::default()
        };
        let closed = run_spec(TrafficSpec::constant(20_000.0).closed_loop(clients), 13, 20);
        let open = run_spec(TrafficSpec::constant(20_000.0), 13, 20);
        let retries = closed.counter(keys::RETRIES);
        assert!(retries > 0, "late completions must retry");
        assert_eq!(
            closed.counter(keys::CLIENT_TIMEOUTS),
            closed.counter(keys::COMPLETED),
            "epsilon timeout: every completion is late"
        );
        assert!(
            closed.counter(keys::ARRIVALS) > open.counter(keys::ARRIVALS),
            "retries amplify offered load"
        );
        assert_eq!(
            closed.counter(keys::ARRIVALS),
            closed.counter(keys::COMPLETED)
                + closed.counter(keys::SHED)
                + closed.counter(keys::IN_FLIGHT),
            "conservation holds under retry amplification"
        );
    }

    #[test]
    fn closed_loop_replays_bit_identically() {
        let spec = TrafficSpec::constant(80_000.0).queue_bound(8).closed_loop(ClientSpec {
            timeout_ms: 0.05,
            max_retries: 3,
            backoff_s: 5e-5,
            backoff_cap_s: 5e-4,
            ..ClientSpec::default()
        });
        let a = run_spec(spec.clone(), 31, 16);
        let b = run_spec(spec, 31, 16);
        assert_eq!(a, b, "retry storms replay byte-identically");
    }

    #[test]
    fn failover_mode_defers_sheds_to_the_drain() {
        let spec = TrafficSpec::constant(2_000_000.0).queue_bound(4).failover(true);
        let mut m = MachineBuilder::tiny().seed(5).build();
        m.enable_obs(256);
        let mut w = spec.workload().build_for(&mut m, 0, 5);
        for _ in 0..10 {
            m.step(5e-4, w.as_mut());
        }
        assert_eq!(m.obs().metrics.counter(keys::SHED), 0, "failover defers local sheds");
        let room = w.queue_room().expect("failover servers report queue room");
        assert_eq!(room.depth + room.free, 4, "room accounts for the whole bound");
        let drained = w.drain_shed();
        assert!(!drained.is_empty(), "overload exported overflow for routing");
        assert!(w.drain_shed().is_empty(), "drain consumes the export buffer");
        // Re-offer drained requests back: the workload accepts exactly as
        // much as the room it advertised, then refuses at the bound.
        let mut accepted = 0u64;
        while w.accept_failover(&mut m, drained[0]) {
            accepted += 1;
            assert!(accepted <= room.free as u64, "acceptance must stop at the queue bound");
        }
        assert_eq!(accepted, room.free as u64, "advertised room is exactly what fits");
        // We drained the whole buffer above, so finish() has nothing to
        // fold back into SHED; accepted failovers sit in flight without
        // counting as local arrivals, so the books balance once they are
        // added back — the fleet-wide shape of exact conservation.
        w.finish(&mut m);
        let s = m.obs().metrics.snapshot();
        assert_eq!(s.counter(keys::SHED), 0, "drained exports are not shed");
        assert_eq!(s.counter(keys::FAILOVER_IN), accepted);
        assert_eq!(
            s.counter(keys::ARRIVALS) + accepted,
            s.counter(keys::COMPLETED) + drained.len() as u64 + s.counter(keys::IN_FLIGHT),
            "drained exports are the only unaccounted arrivals"
        );
    }

    /// Per-class conservation: each priority class balances its own
    /// books, and the classes partition the totals exactly.
    fn assert_class_conservation(s: &capsim_obs::MetricsSnapshot) {
        let mut sums = [0u64; 4];
        for c in 0..keys::CLASSES {
            let arrivals = s.counter(keys::ARRIVALS_BY_CLASS[c]);
            let completed = s.counter(keys::COMPLETED_BY_CLASS[c]);
            let shed = s.counter(keys::SHED_BY_CLASS[c]);
            let in_flight = s.counter(keys::IN_FLIGHT_BY_CLASS[c]);
            assert_eq!(
                arrivals,
                completed + shed + in_flight,
                "class {c}: {arrivals} arrivals vs {completed} + {shed} + {in_flight}"
            );
            sums[0] += arrivals;
            sums[1] += completed;
            sums[2] += shed;
            sums[3] += in_flight;
        }
        assert_eq!(sums[0], s.counter(keys::ARRIVALS), "classes partition arrivals");
        assert_eq!(sums[1], s.counter(keys::COMPLETED), "classes partition completions");
        assert_eq!(sums[2], s.counter(keys::SHED), "classes partition sheds");
        assert_eq!(sums[3], s.counter(keys::IN_FLIGHT), "classes partition in-flight");
    }

    #[test]
    fn client_spec_validation_is_typed_and_zero_retries_is_legal() {
        let bad_timeout = ClientSpec { timeout_ms: 0.0, ..ClientSpec::default() };
        assert_eq!(
            bad_timeout.validate(),
            Err(InvalidClientSpec::NonPositiveTimeout { timeout_ms: 0.0 })
        );
        let bad_cap = ClientSpec { backoff_s: 1e-3, backoff_cap_s: 1e-4, ..ClientSpec::default() };
        assert!(matches!(bad_cap.validate(), Err(InvalidClientSpec::BackoffCapBelowBase { .. })));
        let bad_aimd = ClientSpec::default().aimd(AimdSpec { floor: 0.0, ..AimdSpec::default() });
        assert_eq!(bad_aimd.validate(), Err(InvalidClientSpec::InvalidAimd { field: "floor" }));
        let bad_cut = ClientSpec::default().aimd(AimdSpec { decrease: 1.5, ..AimdSpec::default() });
        assert_eq!(bad_cut.validate(), Err(InvalidClientSpec::InvalidAimd { field: "decrease" }));
        // Zero retries is the documented timeout-only client.
        let zero_retries = ClientSpec { max_retries: 0, ..ClientSpec::default() };
        assert_eq!(zero_retries.validate(), Ok(()));
        let err = TrafficSpec::constant(1000.0).try_closed_loop(bad_timeout).unwrap_err();
        assert!(err.to_string().contains("timeout_ms"), "{err}");
    }

    #[test]
    #[should_panic(expected = "invalid ClientSpec")]
    fn closed_loop_panics_on_invalid_spec() {
        let _ = TrafficSpec::constant(1000.0)
            .closed_loop(ClientSpec { timeout_ms: f64::NAN, ..ClientSpec::default() });
    }

    #[test]
    fn aimd_backpressure_thins_the_storm_and_conserves_per_class() {
        // Impossible timeout: every completion is late, so the retry
        // storm is sustained and the AIMD window trips every period.
        let clients = ClientSpec {
            timeout_ms: f64::MIN_POSITIVE,
            max_retries: 2,
            backoff_s: 1e-5,
            backoff_cap_s: 1e-4,
            ..ClientSpec::default()
        };
        let aimd = AimdSpec { timeout_threshold: 4, ..AimdSpec::default() };
        let base = TrafficSpec::constant(120_000.0).queue_bound(16);
        let stormy = run_spec(base.clone().closed_loop(clients), 17, 24);
        let damped = run_spec(base.closed_loop(clients.aimd(aimd)), 17, 24);
        let gauge = damped.gauge(keys::RATE_MULTIPLIER).expect("multiplier gauge published");
        assert!(gauge < 1.0, "sustained timeouts must cut the multiplier, got {gauge}");
        assert!(
            damped.counter(keys::ARRIVALS) < stormy.counter(keys::ARRIVALS),
            "backpressure thins the offered stream: {} vs {}",
            damped.counter(keys::ARRIVALS),
            stormy.counter(keys::ARRIVALS)
        );
        assert_class_conservation(&stormy);
        assert_class_conservation(&damped);
    }

    #[test]
    fn brownout_sheds_background_first_and_restores_after_the_spike() {
        let spec = TrafficSpec::from_curves(vec![ArrivalCurve::FlashCrowd {
            base_rps: 1_000.0,
            spike_rps: 1_500_000.0,
            start_s: 0.0,
            end_s: 0.004,
        }])
        .queue_bound(32)
        .brownout(BrownoutSpec::default());
        let s = run_spec(spec, 23, 60);
        assert!(s.counter(keys::BROWNOUT_SHED) > 0, "the spike must trip the brownout gate");
        assert!(
            s.counter(keys::SHED_BY_CLASS[2]) > s.counter(keys::SHED_BY_CLASS[0]),
            "background sheds before critical: p2 {} vs p0 {}",
            s.counter(keys::SHED_BY_CLASS[2]),
            s.counter(keys::SHED_BY_CLASS[0])
        );
        assert_eq!(
            s.gauge(keys::BROWNOUT_MAX_CLASS),
            Some((keys::CLASSES - 1) as f64),
            "all classes restored once the spike passes"
        );
        assert_class_conservation(&s);
    }

    #[test]
    fn robustness_stack_replays_bit_identically() {
        let spec = TrafficSpec::constant(150_000.0)
            .queue_bound(16)
            .closed_loop(ClientSpec::default().aimd(AimdSpec::default()))
            .brownout(BrownoutSpec::default());
        let a = run_spec(spec.clone(), 41, 20);
        let b = run_spec(spec, 41, 20);
        assert_eq!(a, b, "AIMD + brownout replay byte-identically");
        assert_class_conservation(&a);
    }

    #[test]
    fn datacenter_scale_tracks_the_workload_hot_set() {
        // The hot minority must be exactly `datacenter_for_index`'s
        // sustained-busy set — swept well past one 16-node period.
        let spec = TrafficSpec::constant(1000.0).datacenter_mix(true);
        for i in 0..64 {
            let hot = LoadKind::datacenter_for_index(i) != LoadKind::Pulse;
            let scale = spec.scale_for(i);
            assert_eq!(
                scale,
                if hot { 4.0 } else { 1.0 },
                "node {i}: scale {scale} disagrees with datacenter_for_index"
            );
        }
        let flat = TrafficSpec::constant(1000.0);
        assert_eq!(flat.scale_for(0), 1.0, "no mix, no scaling");
    }
}
