//! Seeded open-loop arrival processes.
//!
//! Arrivals are *open-loop*: the offered rate is a function of simulated
//! time alone, never of how the fleet is coping — which is exactly what
//! makes power emergencies painful. A node that throttles under a deep
//! cap does not slow its arrivals down; the queue grows and the tail
//! stretches.
//!
//! Every process is reproducible from one splitmix seed: draw `k` of a
//! process is `splitmix64(seed, k)`, so the sequence is a pure function
//! of `(curves, seed)` with no hidden RNG state. Arrivals are sampled by
//! Lewis–Shedler thinning against a piecewise-constant majorant of the
//! summed rate: propose exponential gaps at the local upper bound,
//! accept each proposal with probability `rate(t) / bound`, and restart
//! at the boundary whenever a proposal crosses a segment where the bound
//! changes (valid by the exponential's memorylessness). Thinning samples
//! the inhomogeneous process exactly — the old scheme froze the rate at
//! the previous arrival, so a zero-base flash crowd drew one ~1e9 s gap
//! off the minimum rate and skipped its own spike.

use capsim_ipmi::splitmix64;

/// Minimum effective rate: a zero-rate curve still yields (astronomically
/// spaced) arrivals instead of dividing by zero.
const MIN_RATE_RPS: f64 = 1e-9;

/// One component of an offered-load trace. Rates are per node, in
/// requests per simulated second; a trace sums its components.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ArrivalCurve {
    /// Flat offered load.
    Constant { rps: f64 },
    /// Raised-cosine day/night swing: `base_rps` at the trough,
    /// `peak_rps` mid-period, repeating every `period_s`.
    Diurnal { base_rps: f64, peak_rps: f64, period_s: f64 },
    /// A step spike: `base_rps` outside `[start_s, end_s)`, `spike_rps`
    /// inside.
    FlashCrowd { base_rps: f64, spike_rps: f64, start_s: f64, end_s: f64 },
}

impl ArrivalCurve {
    /// Instantaneous offered rate at simulated time `t_s`.
    pub fn rate_at(&self, t_s: f64) -> f64 {
        match *self {
            ArrivalCurve::Constant { rps } => rps,
            ArrivalCurve::Diurnal { base_rps, peak_rps, period_s } => {
                let phase = (t_s / period_s) * std::f64::consts::TAU;
                base_rps + (peak_rps - base_rps) * 0.5 * (1.0 - phase.cos())
            }
            ArrivalCurve::FlashCrowd { base_rps, spike_rps, start_s, end_s } => {
                if t_s >= start_s && t_s < end_s {
                    spike_rps
                } else {
                    base_rps
                }
            }
        }
    }

    /// The same curve with every rate multiplied by `factor` (used for
    /// per-node hot/cold scaling in datacenter mixes).
    pub fn scaled(&self, factor: f64) -> ArrivalCurve {
        match *self {
            ArrivalCurve::Constant { rps } => ArrivalCurve::Constant { rps: rps * factor },
            ArrivalCurve::Diurnal { base_rps, peak_rps, period_s } => ArrivalCurve::Diurnal {
                base_rps: base_rps * factor,
                peak_rps: peak_rps * factor,
                period_s,
            },
            ArrivalCurve::FlashCrowd { base_rps, spike_rps, start_s, end_s } => {
                ArrivalCurve::FlashCrowd {
                    base_rps: base_rps * factor,
                    spike_rps: spike_rps * factor,
                    start_s,
                    end_s,
                }
            }
        }
    }
}

/// A deterministic arrival-time generator over a sum of curves.
#[derive(Clone, Debug)]
pub struct ArrivalProcess {
    curves: Vec<ArrivalCurve>,
    seed: u64,
    draws: u64,
    next_s: f64,
    /// Offered-rate multiplier in `(0, 1]`, applied inside the thinning
    /// acceptance test. 1.0 (the default) reproduces the unscaled
    /// process draw-for-draw; an AIMD client controller lowers it to
    /// model a population genuinely backing off.
    multiplier: f64,
}

/// Map a u64 draw onto `[0, 1)` with 53 bits of precision.
pub(crate) fn unit(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl ArrivalProcess {
    /// A process whose first arrival is sampled from `t = 0`.
    pub fn new(curves: Vec<ArrivalCurve>, seed: u64) -> Self {
        let mut p = ArrivalProcess { curves, seed, draws: 0, next_s: 0.0, multiplier: 1.0 };
        p.next_s = p.sample_gap(0.0);
        p
    }

    /// Summed instantaneous rate at `t_s` (before any backpressure
    /// multiplier), clamped positive.
    pub fn rate_at(&self, t_s: f64) -> f64 {
        self.curves.iter().map(|c| c.rate_at(t_s)).sum::<f64>().max(MIN_RATE_RPS)
    }

    /// Current offered-rate multiplier.
    pub fn rate_multiplier(&self) -> f64 {
        self.multiplier
    }

    /// Set the offered-rate multiplier (clamped to `(0, 1]`). Because the
    /// multiplier only *lowers* the accepted rate, the piecewise-constant
    /// majorant stays a valid upper bound and thinning remains exact. The
    /// already-sampled next arrival is not resampled — the new multiplier
    /// takes effect from the following gap, a deterministic one-arrival
    /// lag. Consumes no draws, so a process held at 1.0 is draw-for-draw
    /// identical to one with no controller at all.
    pub fn set_rate_multiplier(&mut self, m: f64) {
        self.multiplier = m.clamp(1e-6, 1.0);
    }

    /// Arrival time of the next request (does not consume it).
    pub fn peek(&self) -> f64 {
        self.next_s
    }

    /// Consume and return the next arrival time, sampling its successor.
    pub fn pop(&mut self) -> f64 {
        let t = self.next_s;
        self.next_s = t + self.sample_gap(t);
        t
    }

    /// Piecewise-constant majorant of the summed rate on `[t_s, until)`:
    /// an upper bound that holds up to the returned boundary (the next
    /// flash-crowd edge after `t_s`, or forever). Diurnal components are
    /// bounded by their extremes, so the bound is valid everywhere; flash
    /// crowds are the only discontinuities and contribute the segment
    /// boundaries.
    fn majorant_after(&self, t_s: f64) -> (f64, f64) {
        let mut bound = 0.0;
        let mut until = f64::INFINITY;
        for c in &self.curves {
            match *c {
                ArrivalCurve::Constant { rps } => bound += rps,
                ArrivalCurve::Diurnal { base_rps, peak_rps, .. } => {
                    bound += base_rps.max(peak_rps);
                }
                ArrivalCurve::FlashCrowd { base_rps, spike_rps, start_s, end_s } => {
                    if t_s < start_s {
                        bound += base_rps;
                        until = until.min(start_s);
                    } else if t_s < end_s {
                        bound += base_rps.max(spike_rps);
                        until = until.min(end_s);
                    } else {
                        bound += base_rps;
                    }
                }
            }
        }
        (bound.max(MIN_RATE_RPS), until)
    }

    /// Lewis–Shedler thinning. Each iteration draws a proposal gap at the
    /// segment's majorant rate; a proposal that crosses the segment
    /// boundary restarts there (memorylessness — and it keeps a zero-base
    /// pre-spike segment from swallowing the spike in one astronomically
    /// long gap), otherwise a second draw accepts it with probability
    /// `rate(t) / bound`. Still a pure function of `(curves, seed,
    /// draws)`; the 1e-12 floor keeps arrivals strictly increasing even
    /// on the 2^-53 draw where `u` is exactly zero.
    fn sample_gap(&mut self, from_s: f64) -> f64 {
        let mut t = from_s;
        loop {
            let (bound, until) = self.majorant_after(t);
            self.draws += 1;
            let u = unit(splitmix64(self.seed, self.draws));
            let gap = (-(1.0 - u).ln()).max(1e-12) / bound;
            if t + gap >= until {
                t = until;
                continue;
            }
            t += gap;
            self.draws += 1;
            let v = unit(splitmix64(self.seed, self.draws));
            // Backpressure thins here: the accepted rate is the curve sum
            // scaled by the client multiplier, never above the majorant.
            if v * bound <= self.rate_at(t) * self.multiplier {
                return t - from_s;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let curves = vec![ArrivalCurve::Constant { rps: 1000.0 }];
        let mut a = ArrivalProcess::new(curves.clone(), 7);
        let mut b = ArrivalProcess::new(curves, 7);
        for _ in 0..256 {
            assert_eq!(a.pop().to_bits(), b.pop().to_bits());
        }
    }

    #[test]
    fn arrivals_strictly_increase() {
        let mut p = ArrivalProcess::new(
            vec![
                ArrivalCurve::Diurnal { base_rps: 100.0, peak_rps: 5000.0, period_s: 0.01 },
                ArrivalCurve::FlashCrowd {
                    base_rps: 0.0,
                    spike_rps: 20_000.0,
                    start_s: 0.002,
                    end_s: 0.004,
                },
            ],
            3,
        );
        let mut last = -1.0;
        for _ in 0..1024 {
            let t = p.pop();
            assert!(t > last, "arrivals must strictly increase");
            last = t;
        }
    }

    #[test]
    fn flash_crowd_concentrates_arrivals_in_the_spike() {
        let mut p = ArrivalProcess::new(
            vec![ArrivalCurve::FlashCrowd {
                base_rps: 100.0,
                spike_rps: 100_000.0,
                start_s: 0.01,
                end_s: 0.02,
            }],
            11,
        );
        let mut in_spike = 0usize;
        let mut total = 0usize;
        loop {
            let t = p.pop();
            if t > 0.03 {
                break;
            }
            total += 1;
            if (0.01..0.02).contains(&t) {
                in_spike += 1;
            }
        }
        assert!(total > 500, "spike produced {total} arrivals");
        assert!(in_spike as f64 > 0.95 * total as f64, "spike holds {in_spike}/{total} arrivals");
    }

    #[test]
    fn zero_base_flash_crowd_still_produces_its_spike() {
        // Regression: the pre-thinning sampler froze the rate at the
        // previous arrival, so a standalone zero-base flash crowd drew
        // one ~1e9 s gap off MIN_RATE_RPS at t = 0 and skipped the spike
        // entirely. Thinning restarts at the spike edge instead.
        for seed in [1u64, 7, 42, 1234] {
            let mut p = ArrivalProcess::new(
                vec![ArrivalCurve::FlashCrowd {
                    base_rps: 0.0,
                    spike_rps: 100_000.0,
                    start_s: 0.01,
                    end_s: 0.02,
                }],
                seed,
            );
            let mut in_spike = 0usize;
            let mut total = 0usize;
            loop {
                let t = p.pop();
                if t > 0.03 {
                    break;
                }
                total += 1;
                if (0.01..0.02).contains(&t) {
                    in_spike += 1;
                }
            }
            // ~1000 expected in the 10 ms spike window; the sampler used
            // to produce zero.
            assert!(total > 500, "seed {seed}: spike produced {total} arrivals");
            assert!(
                in_spike as f64 > 0.95 * total as f64,
                "seed {seed}: spike holds {in_spike}/{total} arrivals"
            );
        }
    }

    #[test]
    fn thinning_tracks_the_diurnal_rate() {
        // Arrival counts in the trough vs the peak half of a diurnal
        // cycle must reflect the instantaneous rate, not the rate at the
        // previous arrival: with a 10:1 swing, the peak half holds the
        // overwhelming majority of arrivals.
        let mut p = ArrivalProcess::new(
            vec![ArrivalCurve::Diurnal { base_rps: 1_000.0, peak_rps: 100_000.0, period_s: 0.1 }],
            19,
        );
        let (mut near_peak, mut total) = (0usize, 0usize);
        loop {
            let t = p.pop();
            if t >= 0.1 {
                break;
            }
            total += 1;
            if (0.025..0.075).contains(&t) {
                near_peak += 1;
            }
        }
        assert!(total > 1_000, "diurnal cycle produced {total} arrivals");
        assert!(
            near_peak as f64 > 0.8 * total as f64,
            "peak half holds {near_peak}/{total} arrivals"
        );
    }

    #[test]
    fn unit_multiplier_is_draw_identical_and_backpressure_thins() {
        let curves = vec![ArrivalCurve::Constant { rps: 50_000.0 }];
        let mut plain = ArrivalProcess::new(curves.clone(), 9);
        let mut unit_m = ArrivalProcess::new(curves.clone(), 9);
        unit_m.set_rate_multiplier(1.0);
        for _ in 0..256 {
            assert_eq!(plain.pop().to_bits(), unit_m.pop().to_bits());
        }
        // A quartered multiplier thins the accepted stream to roughly a
        // quarter of the arrivals over the same horizon, reproducibly.
        let count_to = |p: &mut ArrivalProcess, horizon: f64| {
            let mut n = 0usize;
            while p.pop() < horizon {
                n += 1;
            }
            n
        };
        let mut full = ArrivalProcess::new(curves.clone(), 9);
        let mut thinned = ArrivalProcess::new(curves.clone(), 9);
        thinned.set_rate_multiplier(0.25);
        let mut replay = ArrivalProcess::new(curves, 9);
        replay.set_rate_multiplier(0.25);
        let n_full = count_to(&mut full, 0.1);
        let n_thin = count_to(&mut thinned, 0.1);
        let n_replay = count_to(&mut replay, 0.1);
        assert_eq!(n_thin, n_replay, "thinned stream replays");
        assert!(
            (n_thin as f64) < 0.35 * n_full as f64 && (n_thin as f64) > 0.15 * n_full as f64,
            "0.25 multiplier kept {n_thin}/{n_full} arrivals"
        );
    }

    #[test]
    fn diurnal_rate_swings_between_base_and_peak() {
        let c = ArrivalCurve::Diurnal { base_rps: 10.0, peak_rps: 110.0, period_s: 1.0 };
        assert!((c.rate_at(0.0) - 10.0).abs() < 1e-9);
        assert!((c.rate_at(0.5) - 110.0).abs() < 1e-9);
        assert!((c.rate_at(1.0) - 10.0).abs() < 1e-6);
        assert!((c.scaled(2.0).rate_at(0.5) - 220.0).abs() < 1e-9);
    }
}
