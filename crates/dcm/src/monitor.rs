//! Fleet monitoring: power history, trend estimation and violation
//! auditing via each node's SEL.
//!
//! DCM's dashboard function (§II-A: "gather system diagnostics
//! information"): the manager polls DCMI power readings into per-node
//! ring-buffer histories, computes moving averages and trends, and reads
//! the SEL to audit how often caps were violated — the data-center-side
//! view of the paper's "measured power above the cap" rows.

use capsim_ipmi::sel::{get_sel_entry_request, get_sel_info_request, SelEntry};
use capsim_ipmi::{IpmiError, SelEventType};

use crate::manager::Dcm;

/// Bounded power history for one node.
#[derive(Clone, Debug)]
pub struct PowerHistory {
    samples: Vec<f64>,
    capacity: usize,
}

impl PowerHistory {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 2);
        PowerHistory { samples: Vec::new(), capacity }
    }

    pub fn push(&mut self, watts: f64) {
        if self.samples.len() == self.capacity {
            self.samples.remove(0);
        }
        self.samples.push(watts);
    }

    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean of the stored window.
    pub fn mean(&self) -> Option<f64> {
        (!self.samples.is_empty())
            .then(|| self.samples.iter().sum::<f64>() / self.samples.len() as f64)
    }

    /// Least-squares slope in watts per sample: positive = ramping up.
    pub fn trend_w_per_sample(&self) -> Option<f64> {
        let n = self.samples.len();
        if n < 2 {
            return None;
        }
        let nf = n as f64;
        let mean_x = (nf - 1.0) / 2.0;
        let mean_y = self.mean().expect("non-empty");
        let mut num = 0.0;
        let mut den = 0.0;
        for (i, &y) in self.samples.iter().enumerate() {
            let dx = i as f64 - mean_x;
            num += dx * (y - mean_y);
            den += dx * dx;
        }
        Some(num / den)
    }
}

/// The monitoring layer over a [`Dcm`].
pub struct FleetMonitor {
    histories: Vec<PowerHistory>,
}

impl FleetMonitor {
    pub fn new(nodes: usize, window: usize) -> Self {
        FleetMonitor { histories: (0..nodes).map(|_| PowerHistory::new(window)).collect() }
    }

    /// Poll every node once, appending to its history.
    pub fn poll(&mut self, dcm: &mut Dcm) -> Result<(), IpmiError> {
        assert_eq!(dcm.len(), self.histories.len());
        for i in 0..dcm.len() {
            let r = dcm.read_power(i)?;
            self.histories[i].push(r.current_w as f64);
        }
        Ok(())
    }

    pub fn history(&self, node: usize) -> &PowerHistory {
        &self.histories[node]
    }

    /// Nodes whose recent mean exceeds `budget_w` (rebalancing candidates).
    pub fn hotspots(&self, budget_w: f64) -> Vec<usize> {
        self.histories
            .iter()
            .enumerate()
            .filter(|(_, h)| h.mean().is_some_and(|m| m > budget_w))
            .map(|(i, _)| i)
            .collect()
    }
}

/// Read a node's full SEL over IPMI (entry ids are probed from the info
/// count downward through the latest pointer).
pub fn read_sel(dcm: &mut Dcm, node: usize) -> Result<Vec<SelEntry>, IpmiError> {
    let port = dcm.port_mut(node);
    let seq = port.next_seq();
    port.send(&get_sel_info_request(seq))?;
    let info = loop {
        let resp = port.recv()?;
        if resp.seq == seq {
            break resp.into_ok()?;
        }
    };
    if info.len() != 2 {
        return Err(IpmiError::Malformed("sel info"));
    }
    let count = u16::from_le_bytes([info[0], info[1]]);
    let mut out = Vec::new();
    // Entry ids are monotonic from the newest backwards; ask for the
    // latest first to learn the current id, then walk down.
    if count == 0 {
        return Ok(out);
    }
    let seq = port.next_seq();
    port.send(&get_sel_entry_request(seq, 0xffff))?;
    let latest = loop {
        let resp = port.recv()?;
        if resp.seq == seq {
            break SelEntry::decode(&resp.into_ok()?)?;
        }
    };
    // The SEL may grow between the info and entry reads (the node keeps
    // logging while being audited), so don't trust `count` to locate the
    // first id; walk the whole ring-bounded range below the anchor and
    // let missing ids fall through.
    let first_id = latest.id.saturating_sub(4095);
    for id in first_id..=latest.id {
        let seq = port.next_seq();
        port.send(&get_sel_entry_request(seq, id))?;
        let resp = loop {
            let r = port.recv()?;
            if r.seq == seq {
                break r;
            }
        };
        if let Ok(payload) = resp.into_ok() {
            out.push(SelEntry::decode(&payload)?);
        }
    }
    Ok(out)
}

/// Count cap violations recorded in a SEL slice.
pub fn violation_count(entries: &[SelEntry]) -> usize {
    entries.iter().filter(|e| e.event == SelEventType::PowerLimitExceeded).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn history_is_bounded_and_averages() {
        let mut h = PowerHistory::new(4);
        for w in [100.0, 110.0, 120.0, 130.0, 140.0] {
            h.push(w);
        }
        assert_eq!(h.len(), 4);
        assert_eq!(h.mean(), Some(125.0));
    }

    #[test]
    fn trend_detects_ramps() {
        let mut up = PowerHistory::new(10);
        let mut flat = PowerHistory::new(10);
        for i in 0..10 {
            up.push(100.0 + i as f64 * 5.0);
            flat.push(150.0);
        }
        assert!((up.trend_w_per_sample().unwrap() - 5.0).abs() < 1e-9);
        assert!(flat.trend_w_per_sample().unwrap().abs() < 1e-9);
        assert!(PowerHistory::new(2).trend_w_per_sample().is_none());
    }

    #[test]
    fn hotspots_pick_the_right_nodes() {
        let mut m = FleetMonitor::new(3, 4);
        for (i, w) in [120.0, 155.0, 130.0].into_iter().enumerate() {
            m.histories[i].push(w);
        }
        assert_eq!(m.hotspots(140.0), vec![1]);
        assert_eq!(m.hotspots(160.0), Vec::<usize>::new());
    }

    #[test]
    fn violation_counting() {
        let entries = vec![
            SelEntry {
                id: 0,
                timestamp_ms: 1,
                event: SelEventType::PowerLimitConfigured,
                datum: 135,
            },
            SelEntry {
                id: 1,
                timestamp_ms: 2,
                event: SelEventType::PowerLimitExceeded,
                datum: 140,
            },
            SelEntry {
                id: 2,
                timestamp_ms: 3,
                event: SelEventType::PowerLimitExceeded,
                datum: 139,
            },
        ];
        assert_eq!(violation_count(&entries), 2);
    }
}
