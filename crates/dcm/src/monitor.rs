//! Fleet monitoring: power history, trend estimation and violation
//! auditing via each node's SEL.
//!
//! DCM's dashboard function (§II-A: "gather system diagnostics
//! information"): the manager polls DCMI power readings into per-node
//! ring-buffer histories, computes moving averages and trends, and reads
//! the SEL to audit how often caps were violated — the data-center-side
//! view of the paper's "measured power above the cap" rows.
//!
//! All wire traffic goes through the narrow [`Transact`] interface (the
//! audit runs identically over a live threaded link or the fleet engine's
//! pumped lock-step link), with each command retried under a
//! [`RetryPolicy`] so a dropped frame costs a retransmit, not a hole in
//! the audit.

use std::collections::VecDeque;

use capsim_ipmi::sel::{get_sel_entry_request, get_sel_info_request, SelEntry};
use capsim_ipmi::{transact_retry, IpmiError, RetryPolicy, SelEventType, Transact};

use crate::error::DcmError;
use crate::manager::{Dcm, NodeId};

/// Bounded power history for one node.
#[derive(Clone, Debug)]
pub struct PowerHistory {
    samples: VecDeque<f64>,
    capacity: usize,
}

impl PowerHistory {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 2);
        PowerHistory { samples: VecDeque::with_capacity(capacity), capacity }
    }

    pub fn push(&mut self, watts: f64) {
        if self.samples.len() == self.capacity {
            self.samples.pop_front();
        }
        self.samples.push_back(watts);
    }

    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean of the stored window.
    pub fn mean(&self) -> Option<f64> {
        (!self.samples.is_empty())
            .then(|| self.samples.iter().sum::<f64>() / self.samples.len() as f64)
    }

    /// Least-squares slope in watts per sample: positive = ramping up.
    pub fn trend_w_per_sample(&self) -> Option<f64> {
        let n = self.samples.len();
        if n < 2 {
            return None;
        }
        let nf = n as f64;
        let mean_x = (nf - 1.0) / 2.0;
        let mean_y = self.mean().expect("non-empty");
        let mut num = 0.0;
        let mut den = 0.0;
        for (i, &y) in self.samples.iter().enumerate() {
            let dx = i as f64 - mean_x;
            num += dx * (y - mean_y);
            den += dx * dx;
        }
        Some(num / den)
    }
}

/// The monitoring layer over a [`Dcm`].
pub struct FleetMonitor {
    histories: Vec<PowerHistory>,
    window: usize,
}

impl FleetMonitor {
    pub fn new(nodes: usize, window: usize) -> Self {
        FleetMonitor { histories: (0..nodes).map(|_| PowerHistory::new(window)).collect(), window }
    }

    /// Size the monitor to a manager's current registration set.
    pub fn for_dcm(dcm: &Dcm, window: usize) -> Self {
        Self::new(dcm.len(), window)
    }

    /// Poll every node once over its owned link, appending to its
    /// history. Nodes that fail transiently are skipped this round (their
    /// history simply doesn't grow); fatal errors abort. Returns how many
    /// nodes answered.
    ///
    /// Nodes registered on the manager *after* this monitor was built get
    /// fresh histories on first poll. A manager that somehow registers
    /// fewer nodes than the monitor tracks is a typed error
    /// ([`DcmError::MonitorShrunk`]) — indices would silently misattribute.
    pub fn poll(&mut self, dcm: &mut Dcm) -> Result<usize, DcmError> {
        if dcm.len() < self.histories.len() {
            return Err(DcmError::MonitorShrunk {
                monitored: self.histories.len(),
                registered: dcm.len(),
            });
        }
        while self.histories.len() < dcm.len() {
            self.histories.push(PowerHistory::new(self.window));
        }
        let mut answered = 0;
        for node in dcm.node_ids() {
            match dcm.read_power(node) {
                Ok(r) => {
                    self.histories[node.index()].push(r.current_w as f64);
                    answered += 1;
                }
                Err(e) if e.is_transient() => {}
                Err(e) => return Err(e),
            }
        }
        Ok(answered)
    }

    /// Number of nodes this monitor currently tracks.
    pub fn tracked(&self) -> usize {
        self.histories.len()
    }

    /// Record a reading obtained elsewhere (the fleet engine polls nodes
    /// itself at each barrier and feeds the monitor).
    pub fn record(&mut self, node: NodeId, watts: f64) {
        self.histories[node.index()].push(watts);
    }

    pub fn history(&self, node: NodeId) -> &PowerHistory {
        &self.histories[node.index()]
    }

    /// Nodes whose recent mean exceeds `budget_w` (rebalancing candidates).
    pub fn hotspots(&self, budget_w: f64) -> Vec<NodeId> {
        self.histories
            .iter()
            .enumerate()
            .filter(|(_, h)| h.mean().is_some_and(|m| m > budget_w))
            .map(|(i, _)| NodeId::from_index(i))
            .collect()
    }
}

/// Read a node's full SEL through any [`Transact`] link, retrying each
/// command under `retry` (a dropped or corrupted frame costs a
/// retransmit, not an audit hole).
pub fn read_sel_via(
    link: &mut dyn Transact,
    retry: &RetryPolicy,
) -> Result<Vec<SelEntry>, IpmiError> {
    let info = transact_retry(link, retry, &|seq| get_sel_info_request(seq))?.into_ok()?;
    if info.len() != 2 {
        return Err(IpmiError::Malformed("sel info"));
    }
    let count = u16::from_le_bytes([info[0], info[1]]);
    let mut out = Vec::new();
    if count == 0 {
        return Ok(out);
    }
    // Entry ids are monotonic from the newest backwards; ask for the
    // latest first to learn the current id, then walk down.
    let latest = SelEntry::decode(
        &transact_retry(link, retry, &|seq| get_sel_entry_request(seq, 0xffff))?.into_ok()?,
    )?;
    // Walk only as far below the anchor as the reported `count` requires,
    // plus a small slack: the SEL may grow between the info and anchor
    // reads (the node keeps logging while being audited), which pushes the
    // anchor id above the count's newest entry. Ids below the oldest entry
    // simply answer out-of-range and fall through. Clamped to the ring
    // bound, so a full log still costs at most one ring's worth — and a
    // 10-entry log costs ~10 transactions, not 4096.
    // The walk wraps: after a long event storm record ids wrap at 16 bits,
    // so the start id is `latest - span + 1` in wrapping arithmetic — a
    // saturating subtraction would clamp to 0 and skip every pre-wrap
    // (high-id) entry still in the ring. `0xFFFF` is never a record id
    // (the BMC reserves it for "latest") and is skipped when the walk
    // crosses it.
    // The slack also covers the sentinel hole: a full ring whose id range
    // straddles the skipped `0xFFFF` spans `count + 1` arithmetic
    // positions, so the cap must sit above `SEL_CAPACITY`, not at it.
    const GROW_SLACK: u16 = 16;
    let span = count.saturating_add(GROW_SLACK).min(capsim_ipmi::SEL_CAPACITY as u16 + GROW_SLACK);
    let mut id = latest.id.wrapping_sub(span - 1);
    loop {
        if id != 0xffff {
            let resp = transact_retry(link, retry, &|seq| get_sel_entry_request(seq, id))?;
            if let Ok(payload) = resp.into_ok() {
                out.push(SelEntry::decode(&payload)?);
            }
        }
        if id == latest.id {
            break;
        }
        id = id.wrapping_add(1);
    }
    Ok(out)
}

/// Read a node's full SEL over its owned link, updating node health.
pub fn read_sel(dcm: &mut Dcm, node: NodeId) -> Result<Vec<SelEntry>, DcmError> {
    let retry = dcm.retry;
    dcm.with_link(node, |link| read_sel_via(link, &retry))
}

/// Count cap violations recorded in a SEL slice.
pub fn violation_count(entries: &[SelEntry]) -> usize {
    entries.iter().filter(|e| e.event == SelEventType::PowerLimitExceeded).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn history_is_bounded_and_averages() {
        let mut h = PowerHistory::new(4);
        for w in [100.0, 110.0, 120.0, 130.0, 140.0] {
            h.push(w);
        }
        assert_eq!(h.len(), 4);
        assert_eq!(h.mean(), Some(125.0));
    }

    #[test]
    fn trend_detects_ramps() {
        let mut up = PowerHistory::new(10);
        let mut flat = PowerHistory::new(10);
        for i in 0..10 {
            up.push(100.0 + i as f64 * 5.0);
            flat.push(150.0);
        }
        assert!((up.trend_w_per_sample().unwrap() - 5.0).abs() < 1e-9);
        assert!(flat.trend_w_per_sample().unwrap().abs() < 1e-9);
        assert!(PowerHistory::new(2).trend_w_per_sample().is_none());
    }

    #[test]
    fn hotspots_pick_the_right_nodes() {
        let mut dcm = Dcm::new();
        let ids: Vec<NodeId> = (0..3).map(|i| dcm.register(format!("n{i}"))).collect();
        let mut m = FleetMonitor::for_dcm(&dcm, 4);
        for (&id, w) in ids.iter().zip([120.0, 155.0, 130.0]) {
            m.record(id, w);
        }
        assert_eq!(m.hotspots(140.0), vec![ids[1]]);
        assert_eq!(m.hotspots(160.0), Vec::<NodeId>::new());
    }

    #[test]
    fn poll_adopts_nodes_registered_after_the_monitor_was_built() {
        let mut dcm = Dcm::new();
        dcm.register("n0");
        let mut m = FleetMonitor::for_dcm(&dcm, 4);
        assert_eq!(m.tracked(), 1);
        dcm.register("n1");
        dcm.register("n2");
        // The late registrations get fresh histories instead of the old
        // assert_eq! panic. The poll itself then fails on the first node
        // (nothing here owns a link), which is a typed, non-panicking
        // error — the resize has already happened.
        let err = m.poll(&mut dcm).expect_err("unlinked nodes cannot answer");
        assert!(matches!(err, DcmError::Unlinked { .. }), "{err}");
        assert_eq!(m.tracked(), 3);
    }

    #[test]
    fn poll_refuses_a_shrunken_manager_with_a_typed_error() {
        let mut dcm = Dcm::new();
        dcm.register("n0");
        dcm.register("n1");
        let mut m = FleetMonitor::new(5, 4);
        let err = m.poll(&mut dcm).expect_err("shrink must be rejected");
        assert_eq!(err, DcmError::MonitorShrunk { monitored: 5, registered: 2 });
        assert_eq!(err.node(), None);
        assert!(!err.is_transient());
    }

    /// Minimal in-memory SEL server mirroring the BMC's GET_SEL_INFO /
    /// GET_SEL_ENTRY handler, so the audit path can be exercised against a
    /// log in any state without spinning up a whole machine.
    struct SelServer {
        sel: capsim_ipmi::SystemEventLog,
        seq: u8,
    }

    impl Transact for SelServer {
        fn next_seq(&mut self) -> u8 {
            self.seq = self.seq.wrapping_add(1);
            self.seq
        }

        fn transact(
            &mut self,
            req: &capsim_ipmi::Request,
        ) -> Result<capsim_ipmi::Response, IpmiError> {
            use capsim_ipmi::sel::{CMD_GET_SEL_ENTRY, CMD_GET_SEL_INFO};
            use capsim_ipmi::{CompletionCode, Response};
            Ok(match req.cmd {
                CMD_GET_SEL_INFO => {
                    Response::ok(req, (self.sel.len() as u16).to_le_bytes().to_vec())
                }
                CMD_GET_SEL_ENTRY => {
                    let id = u16::from_le_bytes([req.payload[0], req.payload[1]]);
                    match self.sel.get(id) {
                        Some(e) => Response::ok(req, e.encode()),
                        None => Response::err(req, CompletionCode::ParameterOutOfRange),
                    }
                }
                _ => Response::err(req, CompletionCode::InvalidCommand),
            })
        }
    }

    #[test]
    fn sel_audit_reads_a_short_log_in_order() {
        let mut sel = capsim_ipmi::SystemEventLog::new();
        for i in 0..10u64 {
            sel.log(i, SelEventType::PowerLimitExceeded, i as u16);
        }
        let expect: Vec<SelEntry> = sel.iter().cloned().collect();
        let mut link = SelServer { sel, seq: 0 };
        let got = read_sel_via(&mut link, &RetryPolicy::default()).unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn sel_audit_is_complete_after_a_wrapping_event_storm() {
        // Log enough events that 16-bit record ids wrap and the ring's
        // retained range straddles both the wrap and the reserved 0xFFFF
        // sentinel. The audit must still return exactly the retained ring,
        // oldest first — the old saturating walk clamped to id 0 and
        // dropped every pre-wrap entry.
        let mut sel = capsim_ipmi::SystemEventLog::new();
        let total = 0x1_0000 + 2048;
        for i in 0..total {
            sel.log(i as u64, SelEventType::PowerLimitExceeded, (i & 0xfff) as u16);
        }
        let expect: Vec<SelEntry> = sel.iter().cloned().collect();
        assert_eq!(expect.len(), capsim_ipmi::SEL_CAPACITY, "ring should be full");
        assert!(
            expect.first().unwrap().id > expect.last().unwrap().id,
            "retained ids should straddle the wrap for this test to bite"
        );
        let mut link = SelServer { sel, seq: 0 };
        let got = read_sel_via(&mut link, &RetryPolicy::default()).unwrap();
        assert_eq!(got.len(), expect.len(), "audit must cover the full ring across the wrap");
        assert_eq!(got, expect);
    }

    #[test]
    fn violation_counting() {
        let entries = vec![
            SelEntry {
                id: 0,
                timestamp_ms: 1,
                event: SelEventType::PowerLimitConfigured,
                datum: 135,
            },
            SelEntry {
                id: 1,
                timestamp_ms: 2,
                event: SelEventType::PowerLimitExceeded,
                datum: 140,
            },
            SelEntry {
                id: 2,
                timestamp_ms: 3,
                event: SelEventType::PowerLimitExceeded,
                datum: 139,
            },
        ];
        assert_eq!(violation_count(&entries), 2);
    }
}
