//! Offline tabular-RL training inside the deterministic fleet.
//!
//! The trainer runs a sequence of short fleet **episodes**. Every node's
//! BMC carries its own learning [`RlCapPolicy`] clone (reseeded from the
//! episode seed), so each node explores its own trace; at the episode
//! barrier the per-node Q-tables are harvested through
//! [`crate::Fleet::node_policy`] and merged by element-wise averaging — the
//! federated step. The merged table seeds the next episode, and the
//! best-scoring episode's table becomes the deployable artifact (frozen
//! greedy, no exploration).
//!
//! Everything downstream of [`RlTrainConfig::seed`] is deterministic: the
//! fleet engine is replayable by contract and the policy's exploration
//! stream derives from the per-node seeds, so the same config always
//! yields the same [`RlTrainReport::q_digest`] — asserted in tests and by
//! the policy bench.

use capsim_policy::{splitmix64, QTable, RlCapPolicy, RlConfig};

use crate::fleet::{FleetBuilder, FleetReport, LoadKind};

/// Everything a training run depends on. Two equal configs train
/// byte-identical tables.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RlTrainConfig {
    /// Master seed; episode and per-node seeds all derive from it.
    pub seed: u64,
    /// Fleet episodes to run (each starts from the previous merge).
    pub episodes: u32,
    /// Nodes per training fleet.
    pub nodes: usize,
    /// Control epochs per episode.
    pub epochs: u32,
    /// Simulated seconds per epoch.
    pub epoch_s: f64,
    /// Group budget in watts — tight enough that capping engages.
    pub budget_w: f64,
    /// Uniform workload for every node; `None` keeps the fleet's default
    /// round-robin Compute/Stream/Mixed mix (more varied training data).
    pub load: Option<LoadKind>,
    /// Q-learning tunables for the per-node learners.
    pub rl: RlConfig,
}

impl RlTrainConfig {
    /// A small config that trains in seconds — enough episodes for the
    /// table to move, sized for tests and the bench's test scale.
    pub fn quick(seed: u64) -> Self {
        RlTrainConfig {
            seed,
            episodes: 4,
            nodes: 4,
            epochs: 6,
            epoch_s: 5e-4,
            budget_w: 220.0,
            load: None,
            rl: RlConfig::default(),
        }
    }
}

/// One episode's outcome.
#[derive(Clone, Debug, PartialEq)]
pub struct EpisodeScore {
    pub episode: u32,
    /// Mean per-node average frequency, discounted by SEL cap violations
    /// — the paper's performance-retention metric under a penalty for
    /// breaking the cap.
    pub score: f64,
    pub energy_j: f64,
    pub avg_freq_mhz: f64,
    pub sel_violations: usize,
    /// Q-updates applied across all nodes this episode.
    pub updates: u64,
    /// Exploration (non-greedy) actions taken across all nodes.
    pub explorations: u64,
}

/// The trained artifact plus the per-episode trace that produced it.
#[derive(Clone, Debug, PartialEq)]
pub struct RlTrainReport {
    /// The best-scoring episode's merged table.
    pub q: QTable,
    /// [`QTable::digest`] of `q` — equal digests mean bit-identical
    /// replays.
    pub q_digest: u64,
    /// Which episode won.
    pub best_episode: u32,
    pub episodes: Vec<EpisodeScore>,
    /// Totals across all episodes and nodes.
    pub updates: u64,
    pub explorations: u64,
}

impl RlTrainReport {
    /// The deployable policy: greedy over the trained table, no learning,
    /// no exploration.
    pub fn policy(&self) -> RlCapPolicy {
        RlCapPolicy::frozen(self.q.clone())
    }
}

fn score_episode(report: &FleetReport) -> (f64, f64, f64, usize) {
    let n = report.summaries.len().max(1) as f64;
    let freq = report.summaries.iter().map(|s| s.avg_freq_mhz).sum::<f64>() / n;
    let energy = report.summaries.iter().map(|s| s.energy_j).sum::<f64>();
    let violations: usize = report.summaries.iter().map(|s| s.sel_violations).sum();
    // Frequency retention is the objective; every SEL violation costs a
    // flat discount so a cap-breaking table can never out-score a
    // compliant one on throughput alone.
    let score = freq / (1.0 + violations as f64);
    (score, energy, freq, violations)
}

/// Train a Q-table offline inside the deterministic fleet and return the
/// best episode's merge. Same config, same report — byte for byte.
pub fn train_rl(cfg: &RlTrainConfig) -> RlTrainReport {
    assert!(cfg.episodes > 0, "training needs at least one episode");
    assert!(cfg.nodes > 0, "training needs at least one node");
    let mut q = QTable::zeroed();
    let mut episodes = Vec::with_capacity(cfg.episodes as usize);
    let mut best: Option<(f64, u32, QTable)> = None;
    let mut total_updates = 0u64;
    let mut total_explorations = 0u64;

    for e in 0..cfg.episodes {
        let mut b = FleetBuilder::new()
            .nodes(cfg.nodes)
            .epochs(cfg.epochs)
            .epoch_s(cfg.epoch_s)
            .budget_w(cfg.budget_w)
            .seed(splitmix64(cfg.seed, 0x5eed_0000 + u64::from(e)))
            .cap_policy(Box::new(RlCapPolicy::learner(q.clone(), cfg.rl)));
        if let Some(kind) = cfg.load {
            b = b.uniform_load(kind);
        }
        let mut fleet = b.build();
        for _ in 0..cfg.epochs {
            fleet.step_epoch();
        }

        // Harvest the per-node learners in node order, then merge.
        let mut tables = Vec::with_capacity(cfg.nodes);
        let mut updates = 0u64;
        let mut explorations = 0u64;
        for i in 0..cfg.nodes {
            let learner = fleet
                .node_policy(i)
                .as_any()
                .downcast_ref::<RlCapPolicy>()
                .expect("training fleet installs RL learners on every node");
            tables.push(learner.q_table().clone());
            let (u, x) = learner.learn_stats();
            updates += u;
            explorations += x;
        }
        q = QTable::average(&tables.iter().collect::<Vec<_>>());
        total_updates += updates;
        total_explorations += explorations;

        let report = fleet.finish();
        let (score, energy_j, avg_freq_mhz, sel_violations) = score_episode(&report);
        if best.as_ref().is_none_or(|(b_score, _, _)| score > *b_score) {
            best = Some((score, e, q.clone()));
        }
        episodes.push(EpisodeScore {
            episode: e,
            score,
            energy_j,
            avg_freq_mhz,
            sel_violations,
            updates,
            explorations,
        });
    }

    let (_, best_episode, q) = best.expect("at least one episode ran");
    let q_digest = q.digest();
    RlTrainReport {
        q,
        q_digest,
        best_episode,
        episodes,
        updates: total_updates,
        explorations: total_explorations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_is_deterministic() {
        let cfg = RlTrainConfig::quick(7);
        let a = train_rl(&cfg);
        let b = train_rl(&cfg);
        assert_eq!(a.q_digest, b.q_digest);
        assert_eq!(a.q, b.q);
        assert_eq!(a.episodes, b.episodes);
    }

    #[test]
    fn training_moves_the_table() {
        let report = train_rl(&RlTrainConfig::quick(7));
        assert!(report.updates > 0, "learners never updated");
        assert!(report.q.touched() > 0, "table still all zeros");
        assert_eq!(report.episodes.len(), 4);
    }

    #[test]
    fn different_seeds_explore_differently() {
        let a = train_rl(&RlTrainConfig::quick(7));
        let b = train_rl(&RlTrainConfig::quick(8));
        assert_ne!(a.q_digest, b.q_digest);
    }
}
