//! Fleet-aware error reporting.
//!
//! `capsim-ipmi` errors describe what happened on one wire; at fleet
//! scale that is useless without knowing *which* node's wire. [`DcmError`]
//! wraps every management failure with the node's identity so operators
//! (and tests) can act on it.

use std::fmt;

use capsim_ipmi::IpmiError;

use crate::manager::NodeId;

/// A management-plane failure, attributed to a node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DcmError {
    /// An IPMI transaction with a node failed.
    Ipmi { node: NodeId, name: String, source: IpmiError },
    /// The node is registered without an owned link; the caller must use
    /// a `*_via` method and supply the transport.
    Unlinked { node: NodeId, name: String },
    /// The `NodeId` does not belong to this manager.
    UnknownNode(NodeId),
    /// A monitor built for `monitored` nodes was polled against a manager
    /// that now registers fewer (`registered`); histories would silently
    /// misattribute by index, so the poll refuses.
    MonitorShrunk { monitored: usize, registered: usize },
}

impl DcmError {
    /// The node the failure is attributed to (if any).
    pub fn node(&self) -> Option<NodeId> {
        match self {
            DcmError::Ipmi { node, .. } | DcmError::Unlinked { node, .. } => Some(*node),
            DcmError::UnknownNode(n) => Some(*n),
            DcmError::MonitorShrunk { .. } => None,
        }
    }

    /// True for failures a retry at a later epoch might cure.
    pub fn is_transient(&self) -> bool {
        matches!(self, DcmError::Ipmi { source, .. } if source.is_transient())
    }
}

impl fmt::Display for DcmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DcmError::Ipmi { node, name, source } => {
                write!(f, "node {} ({name}): {source}", node.index())
            }
            DcmError::Unlinked { node, name } => {
                write!(f, "node {} ({name}) has no owned link; use a *_via method", node.index())
            }
            DcmError::UnknownNode(n) => write!(f, "unknown node id {}", n.index()),
            DcmError::MonitorShrunk { monitored, registered } => write!(
                f,
                "monitor tracks {monitored} nodes but the manager registers only {registered}"
            ),
        }
    }
}

impl std::error::Error for DcmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DcmError::Ipmi { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_carry_node_identity() {
        let e = DcmError::Ipmi {
            node: NodeId::from_index(3),
            name: "rack1-n3".into(),
            source: IpmiError::TimedOut,
        };
        assert_eq!(e.node().unwrap().index(), 3);
        assert!(e.is_transient());
        let msg = e.to_string();
        assert!(msg.contains("rack1-n3") && msg.contains("timed out"), "{msg}");
        let e = DcmError::Ipmi {
            node: NodeId::from_index(0),
            name: "n0".into(),
            source: IpmiError::ChannelClosed,
        };
        assert!(!e.is_transient());
    }
}
