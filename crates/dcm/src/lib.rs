//! `capsim-dcm` — the Data Center Manager substrate.
//!
//! §II-A of the paper: "Intel Data Center Manager (DCM), which runs on a
//! management server, manages the power consumption of the nodes of a data
//! center … DCM power capping services focus on controlling resource usage
//! to safeguard against over utilization of constrained capacity."
//!
//! The manager here does exactly that: it holds a [`capsim_ipmi::ManagerPort`] to each
//! node's BMC, polls DCMI power readings, and divides a **group power
//! budget** across nodes according to an [`AllocationPolicy`], pushing the
//! resulting per-node caps with DCMI *Set Power Limit* + *Activate*. The
//! paper's single-node study is the degenerate one-node group; the
//! `datacenter` example exercises the full fan-out.

pub mod error;
pub mod fleet;
pub mod manager;
pub mod monitor;
pub mod policy;
pub mod train;

pub use error::DcmError;
pub use fleet::{
    BreakerState, EnergySummary, EpochRecord, Fleet, FleetBuilder, FleetReport, LoadKind,
    NodeSummary, PriorityTraffic, PumpedLink, TrafficSummary, WorkloadSpec,
};
pub use manager::{CapPushOutcome, Dcm, NodeHealth, NodeId};
pub use monitor::{read_sel, read_sel_via, violation_count, FleetMonitor, PowerHistory};
pub use policy::AllocationPolicy;
pub use train::{train_rl, EpisodeScore, RlTrainConfig, RlTrainReport};
