//! The fleet engine: N simulated nodes stepped in lock-step simulated
//! time under one hierarchical DCM budget loop.
//!
//! The fleet is split into contiguous **shards**, each owned by a
//! [`GroupManager`]. A control epoch runs as two parallel wire phases
//! bracketing serial root decisions:
//!
//! 1. **Poll phase** (parallel over shards) — each group steps its
//!    shard's nodes by `epoch_s`, then polls their power over IPMI. A
//!    group does *wire work only*: it captures every transaction as a
//!    [`WireOutcome`] and reports aggregate demand up, recording nothing
//!    itself.
//! 2. **Root barrier** (serial) — the root absorbs the captured
//!    outcomes in canonical node order (replaying retry/timeout
//!    observability and health transitions exactly as a flat manager
//!    would have), runs fleet-side violation detection, and plans the
//!    budget allocation over the nodes that answered (uniform /
//!    proportional / priority).
//! 3. **Push phase** (parallel over shards) — groups push the planned
//!    caps (DCMI *Set* + *Activate*), again capturing outcomes.
//! 4. **Root barrier** (serial) — outcomes absorbed in node order; the
//!    epoch record and barrier events are emitted.
//!
//! Serial per-epoch work at the root is a lean sweep over
//! struct-of-arrays control state (`FleetCtrl`); the expensive part —
//! pumping links, burning retry budgets against lossy links
//! ([`FaultSpec`]) — runs shard-parallel, O(shard) per group.
//!
//! **Determinism contract:** per-node transactions touch only that
//! node's link and BMC, and the root absorbs outcomes in registration
//! order, so serial, parallel and *any* shard count produce byte-equal
//! reports and observability streams. The allocation policies are
//! written in partition-invariant closed form (see `policy.rs`) so the
//! root's plan also cannot depend on how demand was gathered.
//!
//! Two elisions keep quiescent fleets cheap, both decided from state
//! that cannot depend on sharding: a poll is skipped when the root's
//! cached reading is provably what the BMC would answer again
//! ([`capsim_node::bmc::Bmc::poll_would_repeat`]), and a cap push is
//! skipped when the planned cap is bit-identical to the cap already in
//! effect. Skips are counted (`fleet.polls_skipped`,
//! `fleet.cap_pushes_skipped`).
//!
//! Because the manager cannot block on a node that lives on the same
//! thread, wire traffic flows through [`PumpedLink`]: each delivery poll
//! services the node's BMC, so request, firmware handling and response
//! all happen inside the barrier, in deterministic order.

use capsim_ipmi::sel::SelEntry;
use capsim_ipmi::{
    splitmix64, CompletionCode, FaultSpec, FaultStats, GetPowerReading, IpmiError, LanChannel,
    ManagerPort, PowerLimit, PowerReading, Request, Response, RetryPolicy, Transact, WireOutcome,
};
use capsim_node::workload::traffic_keys;
use capsim_node::{EpochWorkload, Machine, MachineConfig, QueueRoom, RunStats};
use capsim_obs::{
    events_to_csv, events_to_jsonl, merge_streams, Event, EventKind, MetricsSnapshot,
};
use capsim_policy::CapPolicy;
use rayon::prelude::*;

use crate::manager::{CapPushOutcome, Dcm, NodeHealth, NodeId};
use crate::monitor::{read_sel_via, violation_count};
use crate::policy::AllocationPolicy;

/// Bucket upper edges (watts) for the per-node power histogram sampled at
/// every barrier. Centered on the paper's 95–170 W measurement band.
static FLEET_POWER_BOUNDS: [f64; 8] = [110.0, 120.0, 125.0, 130.0, 135.0, 140.0, 150.0, 160.0];

/// A [`Transact`] link for lock-step topologies: the manager and the node
/// live on the same thread, so instead of blocking on the wire, each
/// delivery poll pumps the node's BMC service loop. Wait budgets are
/// counted in polls, not wall-clock time — transactions are fully
/// deterministic.
pub struct PumpedLink<'a> {
    port: &'a mut ManagerPort,
    machine: &'a mut Machine,
    polls_per_attempt: u32,
    patience: u32,
}

impl<'a> PumpedLink<'a> {
    pub fn new(
        port: &'a mut ManagerPort,
        machine: &'a mut Machine,
        polls_per_attempt: u32,
    ) -> Self {
        PumpedLink { port, machine, polls_per_attempt: polls_per_attempt.max(1), patience: 1 }
    }
}

impl Transact for PumpedLink<'_> {
    fn next_seq(&mut self) -> u8 {
        self.port.next_seq()
    }

    fn transact(&mut self, req: &Request) -> Result<Response, IpmiError> {
        self.port.send(req)?;
        let budget = self.polls_per_attempt.saturating_mul(self.patience);
        for _ in 0..budget {
            self.machine.service_bmc();
            match self.port.try_recv() {
                Ok(Some(resp))
                    if resp.seq == req.seq && resp.cmd == req.cmd && resp.netfn == req.netfn =>
                {
                    return Ok(resp)
                }
                Ok(Some(_)) => {} // stale response to an earlier attempt
                Ok(None) => {}
                Err(e) => return Err(e),
            }
        }
        Err(IpmiError::TimedOut)
    }

    fn set_patience(&mut self, factor: u32) {
        self.patience = factor.max(1);
    }
}

// Workload construction moved to capsim-node's `workload` module (so the
// chaos and traffic layers can build workloads without depending on the
// fleet engine); re-exported here to keep historical paths compiling.
pub use capsim_node::workload::{LoadKind, SyntheticLoad, WorkloadSpec};

struct SimNode {
    id: NodeId,
    port: ManagerPort,
    machine: Machine,
    load: Box<dyn EpochWorkload>,
}

/// One shard's manager in the hierarchical budget tree: owns the wire
/// work for a contiguous range of nodes. Groups run on worker threads
/// during the parallel phases and deliberately hold no mutable state and
/// no observability sink — every transaction outcome is captured and
/// reported up for the root to absorb in canonical node order, which is
/// what keeps the recorded streams independent of the shard count.
pub struct GroupManager {
    /// Registration-index range of the shard (contiguous).
    range: std::ops::Range<usize>,
    polls_per_attempt: u32,
    retry: RetryPolicy,
}

/// One node's slot in a group's poll report.
enum PollOutcome {
    /// The root's cached reading is provably current; no wire traffic.
    Skipped,
    /// A captured wire transaction for the root to absorb.
    Polled(WireOutcome),
}

/// A group's report for one poll phase: per-node outcomes plus the shard
/// aggregates a hierarchical manager forwards upward. Demands are whole
/// watts (DCMI readings), so the aggregate sum is exact and the root's
/// own absorption must reproduce it no matter how the fleet is sharded —
/// `debug_assert`ed at the root.
struct GroupPollReport {
    outcomes: Vec<PollOutcome>,
    /// Sum of successfully decoded fresh readings.
    fresh_demand_w: f64,
    /// Fresh polls that decoded to a reading.
    answered: u32,
    /// Polls elided via the cached-reading fast path.
    skipped: u32,
}

impl GroupManager {
    fn len(&self) -> usize {
        self.range.end - self.range.start
    }

    /// Phase 1 for this shard: step every node by `epoch_s`, then gather
    /// demand. `can_skip` is the root's per-node clearance (aligned to
    /// the shard) to use the cached reading if — and only if — the BMC
    /// agrees a fresh poll would repeat itself.
    fn poll_phase(
        &self,
        nodes: &mut [SimNode],
        epoch_s: f64,
        can_skip: &[bool],
    ) -> GroupPollReport {
        debug_assert_eq!(nodes.len(), self.len());
        let mut report = GroupPollReport {
            outcomes: Vec::with_capacity(nodes.len()),
            fresh_demand_w: 0.0,
            answered: 0,
            skipped: 0,
        };
        for (n, &skip_ok) in nodes.iter_mut().zip(can_skip) {
            n.machine.step(epoch_s, n.load.as_mut());
            if skip_ok && n.machine.bmc_poll_would_repeat() {
                report.skipped += 1;
                report.outcomes.push(PollOutcome::Skipped);
                continue;
            }
            let mut link = PumpedLink::new(&mut n.port, &mut n.machine, self.polls_per_attempt);
            let out =
                WireOutcome::capture(&mut link, &self.retry, &|seq| GetPowerReading::request(seq));
            if let Ok(resp) = &out.result {
                if resp.completion == CompletionCode::Ok {
                    if let Ok(r) = PowerReading::decode(&resp.payload) {
                        report.fresh_demand_w += r.current_w as f64;
                        report.answered += 1;
                    }
                }
            }
            report.outcomes.push(PollOutcome::Polled(out));
        }
        report
    }

    /// Phase 2 for this shard: push the planned caps. `work` is aligned
    /// to the shard; `None` means no push for that node this epoch
    /// (unanswered, or elided because the cap is already in effect).
    fn push_phase(
        &self,
        nodes: &mut [SimNode],
        work: &[Option<PowerLimit>],
    ) -> Vec<Option<CapPushOutcome>> {
        debug_assert_eq!(nodes.len(), self.len());
        nodes
            .iter_mut()
            .zip(work)
            .map(|(n, w)| {
                w.map(|limit| {
                    let mut link =
                        PumpedLink::new(&mut n.port, &mut n.machine, self.polls_per_attempt);
                    CapPushOutcome::capture(&mut link, &self.retry, limit)
                })
            })
            .collect()
    }
}

/// Per-node circuit-breaker state at the fleet barrier. Breakers guard
/// *failover routing only*: an `Open` breaker removes the node from the
/// re-offer heap, `HalfOpen` re-admits it for a single probe request
/// after the cooldown, and a clean barrier closes it again. The state
/// machine is driven purely by control state (poll-timeout and
/// cap-violation streaks) in the serial root section, so observability
/// can never perturb routing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation: the node is a failover target.
    Closed,
    /// Tripped: no failover work until epoch `until`.
    Open { until: u32 },
    /// Cooldown expired: admit one probe request; the next barrier
    /// decides between `Closed` (clean) and `Open` (still failing).
    HalfOpen,
}

impl BreakerState {
    /// Stable wire/event name.
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open { .. } => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// Root-side per-node control state as struct-of-arrays: the hot data
/// the serial barrier sweeps every epoch, kept in parallel `Vec`s
/// indexed by registration order instead of scattered across node
/// objects. Scratch columns (`can_skip`, `planned`) are retained across
/// epochs so the steady-state barrier allocates nothing.
struct FleetCtrl {
    /// Last successfully decoded power reading (whole watts).
    demand_w: Vec<f64>,
    /// `demand_w[i]` holds a real reading (at least one poll succeeded).
    demand_valid: Vec<bool>,
    /// The most recent poll attempt succeeded (a failure forces a fresh
    /// poll until one succeeds again — after a lost response the cache
    /// can no longer be proven equal to what the BMC last answered).
    poll_ok: Vec<bool>,
    /// The most recent cap push fully succeeded (Set and Activate). A
    /// half-applied push leaves the BMC on a cap the manager never
    /// confirmed, so only a fully clean push may be elided later.
    push_ok: Vec<bool>,
    /// Fleet-side cap-violation streaks (epochs over cap + margin).
    viol_streak: Vec<u32>,
    /// Consecutive barriers whose poll attempt failed (reset on any
    /// successful or elided poll). Feeds the circuit breakers.
    timeout_streak: Vec<u32>,
    /// Per-node failover circuit breakers (only ticked for fleets that
    /// actually route failover work).
    breaker: Vec<BreakerState>,
    /// Scratch: root clearance for the poll fast path this epoch.
    can_skip: Vec<bool>,
    /// Scratch: planned wire pushes this epoch.
    planned: Vec<Option<PowerLimit>>,
}

impl FleetCtrl {
    fn new(n: usize) -> FleetCtrl {
        FleetCtrl {
            demand_w: vec![0.0; n],
            demand_valid: vec![false; n],
            poll_ok: vec![false; n],
            push_ok: vec![false; n],
            viol_streak: vec![0; n],
            timeout_streak: vec![0; n],
            breaker: vec![BreakerState::Closed; n],
            can_skip: vec![false; n],
            planned: vec![None; n],
        }
    }
}

/// One barrier's worth of fleet-level observations.
#[derive(Clone, Debug, PartialEq)]
pub struct EpochRecord {
    pub epoch: u32,
    /// Nodes that answered the power poll this epoch.
    pub answered: usize,
    /// Nodes currently marked unresponsive.
    pub unresponsive: usize,
    /// Sum of measured power over answering nodes.
    pub fleet_power_w: f64,
    /// Per-node power readings this epoch (node registration index,
    /// watts) — the chaos harness checks cap compliance against these.
    pub readings: Vec<(u32, f64)>,
    /// Caps pushed this epoch (node registration index, watts).
    pub caps: Vec<(u32, f64)>,
}

/// Final per-node summary.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeSummary {
    pub index: u32,
    pub name: String,
    pub health: NodeHealth,
    pub final_cap_w: Option<f64>,
    pub avg_power_w: f64,
    pub avg_freq_mhz: f64,
    pub energy_j: f64,
    pub wall_s: f64,
    /// Cap violations recorded in the node's SEL, audited over IPMI at
    /// the end of the run (0 if the audit itself failed).
    pub sel_violations: usize,
}

/// Merged observability for a whole fleet run: the manager's metrics
/// absorbed with every node's, and all event streams merged into one
/// totally ordered, deterministic sequence (simulated time, then stream,
/// then per-stream sequence).
#[derive(Clone, Debug, PartialEq)]
pub struct FleetObs {
    /// Manager + per-node series, counters and buckets summed.
    pub metrics: MetricsSnapshot,
    /// All events, node-tagged, in total order.
    pub events: Vec<Event>,
}

impl FleetObs {
    /// JSONL export — same seed, same bytes, serial or parallel.
    pub fn events_jsonl(&self) -> String {
        events_to_jsonl(self.events.iter())
    }

    /// CSV export with a header row.
    pub fn events_csv(&self) -> String {
        events_to_csv(self.events.iter())
    }
}

/// The result of a fleet run. [`FleetReport::render`] produces a stable
/// textual form — the determinism contract is that a parallel run renders
/// byte-identically to a serial run of the same configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct FleetReport {
    pub nodes: usize,
    pub epochs: u32,
    pub epoch_s: f64,
    pub budget_w: f64,
    pub records: Vec<EpochRecord>,
    pub summaries: Vec<NodeSummary>,
    /// Present when the fleet was built with [`FleetBuilder::observe`].
    pub obs: Option<FleetObs>,
}

impl FleetReport {
    /// Stable textual rendering (f64s print via Rust's shortest-roundtrip
    /// formatter, so equal states render to equal bytes).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "fleet nodes={} epochs={} epoch_s={} budget_w={}",
            self.nodes, self.epochs, self.epoch_s, self.budget_w
        );
        for r in &self.records {
            let cap_sum: f64 = r.caps.iter().map(|&(_, w)| w).sum();
            let _ = writeln!(
                s,
                "epoch {} answered={} unresponsive={} fleet_w={} caps={} cap_sum={}",
                r.epoch,
                r.answered,
                r.unresponsive,
                r.fleet_power_w,
                r.caps.len(),
                cap_sum
            );
        }
        for n in &self.summaries {
            let _ = writeln!(
                s,
                "node {} {} health={:?} cap={:?} avg_w={} freq_mhz={} energy_j={} wall_s={} viol={}",
                n.index,
                n.name,
                n.health,
                n.final_cap_w,
                n.avg_power_w,
                n.avg_freq_mhz,
                n.energy_j,
                n.wall_s,
                n.sel_violations
            );
        }
        s
    }

    /// Nodes still healthy/degraded at the end of the run.
    pub fn responsive(&self) -> usize {
        self.summaries.iter().filter(|n| n.health.is_responsive()).count()
    }

    /// Whole-fleet energy accounting, folded from the per-node summaries.
    /// Always available — energy is metered ground truth, not telemetry.
    pub fn energy(&self) -> EnergySummary {
        let energy_j: f64 = self.summaries.iter().map(|s| s.energy_j).sum();
        let node_s: f64 = self.summaries.iter().map(|s| s.wall_s).sum();
        let wall_s = self.summaries.iter().map(|s| s.wall_s).fold(0.0, f64::max);
        EnergySummary {
            energy_j,
            wall_s,
            avg_node_power_w: if node_s > 0.0 { energy_j / node_s } else { 0.0 },
        }
    }

    /// Latency/goodput accounting for request-serving runs. `Some` when
    /// the fleet ran with observability on and a traffic workload that
    /// records the [`capsim_node::workload::traffic_keys`] series; `None`
    /// for batch-kernel fleets. The raw snapshot stays available under
    /// [`FleetReport::obs`] for export.
    pub fn traffic(&self) -> Option<TrafficSummary> {
        use capsim_node::workload::traffic_keys as keys;
        let m = &self.obs.as_ref()?.metrics;
        let arrivals = m.counter(keys::ARRIVALS);
        if arrivals == 0 {
            return None;
        }
        let completed = m.counter(keys::COMPLETED);
        let (mean_ms, p50_ms, p99_ms, p999_ms) = match m.hist(keys::LATENCY_MS) {
            Some(h) => (h.mean(), h.quantile(0.50), h.quantile(0.99), h.quantile(0.999)),
            None => (0.0, 0.0, 0.0, 0.0),
        };
        let horizon_s = self.epochs as f64 * self.epoch_s;
        Some(TrafficSummary {
            arrivals,
            completed,
            shed: m.counter(keys::SHED),
            slo_violations: m.counter(keys::SLO_VIOLATIONS),
            retries: m.counter(keys::RETRIES),
            client_timeouts: m.counter(keys::CLIENT_TIMEOUTS),
            failover: m.counter(keys::FAILOVER_IN),
            in_flight: m.counter(keys::IN_FLIGHT),
            mean_ms,
            p50_ms,
            p99_ms,
            p999_ms,
            goodput_rps: if horizon_s > 0.0 { completed as f64 / horizon_s } else { 0.0 },
        })
    }

    /// The power-emergency headline metric: SLO violations per joule of
    /// fleet energy — how much service pain each unit of spent energy
    /// bought under the active capping policy. `None` for non-traffic
    /// runs or zero-energy fleets.
    pub fn slo_violations_per_joule(&self) -> Option<f64> {
        let t = self.traffic()?;
        let e = self.energy().energy_j;
        (e > 0.0).then(|| t.slo_violations as f64 / e)
    }

    /// Per-priority-class request accounting. `Some` exactly when
    /// [`FleetReport::traffic`] is (batch fleets return `None`); each
    /// class balances its own books:
    /// `arrivals[c] == completed[c] + shed[c] + in_flight[c]`.
    pub fn priority(&self) -> Option<PriorityTraffic> {
        self.traffic()?;
        let m = &self.obs.as_ref()?.metrics;
        let col = |names: &[&'static str; traffic_keys::CLASSES]| {
            let mut out = [0u64; traffic_keys::CLASSES];
            for (o, name) in out.iter_mut().zip(names) {
                *o = m.counter(name);
            }
            out
        };
        Some(PriorityTraffic {
            arrivals: col(&traffic_keys::ARRIVALS_BY_CLASS),
            completed: col(&traffic_keys::COMPLETED_BY_CLASS),
            shed: col(&traffic_keys::SHED_BY_CLASS),
            in_flight: col(&traffic_keys::IN_FLIGHT_BY_CLASS),
            brownout_shed: m.counter(traffic_keys::BROWNOUT_SHED),
        })
    }

    /// Final AIMD offered-rate multiplier, merged across nodes. Gauges
    /// merge by max, so this is the *least backed-off* client population
    /// — the fleet-wide ceiling on offered rate. `None` for batch fleets
    /// or when no client population ran an AIMD controller.
    pub fn final_rate_multiplier(&self) -> Option<f64> {
        self.traffic()?;
        self.obs.as_ref()?.metrics.gauge(traffic_keys::RATE_MULTIPLIER)
    }

    /// Circuit-breaker transitions recorded at the fleet barrier over the
    /// whole run. `None` for batch fleets (mirroring
    /// [`FleetReport::traffic`]); zero means no breaker ever moved.
    pub fn breaker_transitions(&self) -> Option<u64> {
        self.traffic()?;
        Some(self.obs.as_ref()?.metrics.counter("fleet.breaker_transitions"))
    }
}

/// Per-priority-class fleet accounting, read from the merged obs
/// snapshot's `traffic.*_p<class>` series. Class 0 is most critical.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PriorityTraffic {
    /// Requests offered per class (admitted + shed, retries included).
    pub arrivals: [u64; traffic_keys::CLASSES],
    /// Requests fully served per class.
    pub completed: [u64; traffic_keys::CLASSES],
    /// Requests dropped per class (queue overflow, failover leftovers
    /// and brownout sheds).
    pub shed: [u64; traffic_keys::CLASSES],
    /// Requests still queued at the end of the run, per class.
    pub in_flight: [u64; traffic_keys::CLASSES],
    /// The subset of sheds caused by the brownout admission gate.
    pub brownout_shed: u64,
}

/// Fleet-level energy totals, derived from [`NodeSummary`] ground truth.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergySummary {
    /// Total metered energy across every node, joules.
    pub energy_j: f64,
    /// Longest per-node wall time (the fleet's simulated makespan).
    pub wall_s: f64,
    /// Mean per-node power: total energy over total node-seconds.
    pub avg_node_power_w: f64,
}

/// Fleet-level request-serving summary, read from the merged obs
/// snapshot's `traffic.*` series (see
/// [`capsim_node::workload::traffic_keys`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrafficSummary {
    /// Requests offered fleet-wide (admitted + shed).
    pub arrivals: u64,
    /// Requests fully served.
    pub completed: u64,
    /// Requests dropped at full queues.
    pub shed: u64,
    /// Completions that missed the SLO latency threshold.
    pub slo_violations: u64,
    /// Client retry attempts that re-entered the arrival stream
    /// (closed-loop runs only; each also counts in `arrivals`).
    pub retries: u64,
    /// Completions slower than the client timeout.
    pub client_timeouts: u64,
    /// Requests re-homed onto another node by barrier failover.
    pub failover: u64,
    /// Requests still queued when the run ended. With these four the
    /// fleet-wide books close exactly:
    /// `arrivals == completed + shed + in_flight`.
    pub in_flight: u64,
    /// Mean completion latency, milliseconds.
    pub mean_ms: f64,
    /// Median completion latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile completion latency, milliseconds.
    pub p99_ms: f64,
    /// 99.9th-percentile completion latency, milliseconds.
    pub p999_ms: f64,
    /// Completions per simulated second over the configured horizon.
    pub goodput_rps: f64,
}

/// Fluent constructor for a [`Fleet`].
pub struct FleetBuilder {
    nodes: usize,
    epochs: u32,
    epoch_s: f64,
    budget_w: Option<f64>,
    policy: AllocationPolicy,
    faults: FaultSpec,
    seed: u64,
    parallel: bool,
    base: MachineConfig,
    polls_per_attempt: u32,
    retry: RetryPolicy,
    dead: Vec<usize>,
    audit_sel: bool,
    observe: Option<usize>,
    workload: WorkloadSpec,
    shards: Option<usize>,
    violation_margin_w: f64,
    violation_after: u32,
    breaker_trip_after: u32,
    breaker_cooldown: u32,
    cap_policy: Option<Box<dyn CapPolicy>>,
}

impl FleetBuilder {
    pub fn new() -> Self {
        // Small fast-control machines: fleet runs exercise the *group*
        // control loop, so per-node microarchitectural fidelity is traded
        // for epoch turnaround.
        let mut base = MachineConfig::tiny(0);
        base.control_period_us = 10.0;
        base.meter_window_s = 0.0002;
        // Lock-step topology: manager traffic only arrives at epoch
        // barriers, so quiescent idle spans may fast-forward.
        base.idle_skip = true;
        FleetBuilder {
            nodes: 8,
            epochs: 6,
            epoch_s: 5e-4,
            budget_w: None,
            policy: AllocationPolicy::Uniform,
            faults: FaultSpec::none(),
            seed: 0,
            parallel: true,
            base,
            polls_per_attempt: 16,
            retry: RetryPolicy::default(),
            dead: Vec::new(),
            audit_sel: true,
            observe: None,
            workload: WorkloadSpec::RoundRobin,
            shards: None,
            violation_margin_w: 10.0,
            violation_after: 3,
            breaker_trip_after: 2,
            breaker_cooldown: 2,
            cap_policy: None,
        }
    }

    /// Number of nodes in the group.
    pub fn nodes(mut self, n: usize) -> Self {
        self.nodes = n;
        self
    }

    /// Number of control epochs to run.
    pub fn epochs(mut self, e: u32) -> Self {
        self.epochs = e;
        self
    }

    /// Simulated seconds per epoch (the DCM reallocation period).
    pub fn epoch_s(mut self, s: f64) -> Self {
        self.epoch_s = s;
        self
    }

    /// Total group budget in watts (default: 135 W per node).
    pub fn budget_w(mut self, w: f64) -> Self {
        self.budget_w = Some(w);
        self
    }

    /// Budget allocation policy.
    pub fn policy(mut self, p: AllocationPolicy) -> Self {
        self.policy = p;
        self
    }

    /// Install a pluggable capping policy spanning both layers: every
    /// node's BMC gets a per-node clone (reseeded from the fleet seed)
    /// for its control loop, and the root plans group budgets through the
    /// policy's group half instead of [`FleetBuilder::policy`].
    ///
    /// Without this call the fleet runs exactly as before the policy
    /// layer existed (ladder walk + the configured `AllocationPolicy`).
    pub fn cap_policy(mut self, policy: Box<dyn CapPolicy>) -> Self {
        self.cap_policy = Some(policy);
        self
    }

    /// Fault model for every node's management link.
    pub fn faults(mut self, f: FaultSpec) -> Self {
        self.faults = f;
        self
    }

    /// Fleet seed (per-node machine and fault seeds derive from it).
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Step nodes across worker threads (true, the default) or serially
    /// on the caller's thread. Both produce bit-identical reports.
    pub fn parallel(mut self, p: bool) -> Self {
        self.parallel = p;
        self
    }

    /// Machine template for every node (per-node seeds still derive from
    /// the fleet seed).
    pub fn machine(mut self, cfg: MachineConfig) -> Self {
        self.base = cfg;
        self
    }

    /// Retry budget for barrier-phase transactions.
    pub fn retry(mut self, r: RetryPolicy) -> Self {
        self.retry = r;
        self
    }

    /// Make one node's management link a black hole (its BMC never hears
    /// the manager) — the degraded-fleet scenario.
    pub fn dead_node(mut self, index: usize) -> Self {
        self.dead.push(index);
        self
    }

    /// Audit each node's SEL over IPMI at the end of the run (default
    /// true; large sweeps can turn it off).
    pub fn audit_sel(mut self, on: bool) -> Self {
        self.audit_sel = on;
        self
    }

    /// Record metrics and a typed event log during the run (default off —
    /// observability must be asked for, so unobserved runs pay only a
    /// branch per site). The report then carries [`FleetObs`].
    pub fn observe(mut self, on: bool) -> Self {
        self.observe = on.then_some(4096);
        self
    }

    /// Like [`FleetBuilder::observe`] with an explicit per-stream event
    /// ring capacity.
    pub fn observe_capacity(mut self, event_capacity: usize) -> Self {
        self.observe = Some(event_capacity);
        self
    }

    /// Select the workload every node is built with. The default is
    /// [`WorkloadSpec::RoundRobin`]; [`WorkloadSpec::Custom`] plugs in
    /// external generators like capsim-traffic's request queues.
    pub fn workload(mut self, spec: WorkloadSpec) -> Self {
        self.workload = spec;
        self
    }

    /// Give every node the same workload kind instead of the default
    /// round-robin Compute/Stream/Mixed assignment. Shorthand for
    /// [`FleetBuilder::workload`] with [`WorkloadSpec::Uniform`].
    pub fn uniform_load(self, kind: LoadKind) -> Self {
        self.workload(WorkloadSpec::Uniform(kind))
    }

    /// Assign loads with [`LoadKind::datacenter_for_index`] — a mostly
    /// idle, bursty utilization profile — instead of the round-robin
    /// busy default. Ignored when an explicit workload
    /// ([`FleetBuilder::uniform_load`] / [`FleetBuilder::workload`]) is
    /// already set; `datacenter_mix(false)` restores the round-robin
    /// default.
    pub fn datacenter_mix(mut self, on: bool) -> Self {
        self.workload = match (on, &self.workload) {
            (true, WorkloadSpec::RoundRobin) => WorkloadSpec::DatacenterMix,
            (false, WorkloadSpec::DatacenterMix) => WorkloadSpec::RoundRobin,
            _ => return self,
        };
        self
    }

    /// Number of group-manager shards (clamped to `1..=nodes` at build).
    /// Any value produces byte-identical results; this knob only decides
    /// how wire work is split across workers. Default: automatic —
    /// enough shards to feed the worker pool, with shards of at most
    /// ~64 nodes for large fleets.
    pub fn shards(mut self, k: usize) -> Self {
        self.shards = Some(k);
        self
    }

    /// Tune the fleet-side cap-violation detector: a node whose measured
    /// power exceeds its last pushed cap by more than `margin_w` for
    /// `epochs` consecutive barriers is flagged via
    /// [`Dcm::set_cap_violating`] and held at `Degraded` until it
    /// recovers. Defaults: 10 W over, 3 epochs.
    pub fn violation_detector(mut self, margin_w: f64, epochs: u32) -> Self {
        self.violation_margin_w = margin_w;
        self.violation_after = epochs.max(1);
        self
    }

    /// Tune the per-node failover circuit breakers: `trip_after`
    /// consecutive poll timeouts (or a cap-violation streak at the
    /// violation detector's threshold) opens a node's breaker, removing
    /// it from failover routing; after `cooldown_epochs` barriers the
    /// breaker goes half-open and re-admits a single probe request, and a
    /// clean barrier closes it. Defaults: trip after 2, cool down for 2.
    pub fn breaker(mut self, trip_after: u32, cooldown_epochs: u32) -> Self {
        self.breaker_trip_after = trip_after.max(1);
        self.breaker_cooldown = cooldown_epochs.max(1);
        self
    }

    /// Build the fleet: per-node machines (seeded from the fleet seed),
    /// management links (faulty if configured) and the DCM registry.
    pub fn build(self) -> Fleet {
        assert!(self.nodes > 0, "a fleet needs nodes");
        let mut dcm = Dcm::new();
        dcm.retry = self.retry;
        if let Some(cap) = self.observe {
            dcm.obs = capsim_obs::Obs::enabled(cap);
        }
        let mut nodes = Vec::with_capacity(self.nodes);
        for i in 0..self.nodes {
            let node_seed = mix(self.seed, i as u64);
            let spec = if self.dead.contains(&i) { FaultSpec::dead() } else { self.faults };
            let (port, bmc_port) = if spec.is_clean() {
                LanChannel::pair()
            } else {
                LanChannel::faulty_pair(spec, mix(node_seed, 0xfa01_c0de))
            };
            let mut cfg = self.base.clone();
            cfg.seed = node_seed;
            let mut machine = Machine::new(cfg);
            if let Some(cap) = self.observe {
                machine.enable_obs(cap);
            }
            machine.attach_bmc_port(bmc_port);
            if let Some(policy) = &self.cap_policy {
                // Per-node instance with its own random stream, derived
                // from the node seed so replays stay byte-identical.
                let mut p = policy.clone_box();
                p.reseed(mix(node_seed, 0xca9_0110));
                machine.set_cap_policy(p);
            }
            // Per-node workload seed, distinct from the fault and policy
            // streams so custom generators can't alias either.
            let load = self.workload.build_for(&mut machine, i, mix(node_seed, 0x10ad_5eed));
            let id = dcm.register(format!("n{i:04}"));
            nodes.push(SimNode { id, port, machine, load });
        }
        let budget_w = self.budget_w.unwrap_or(135.0 * self.nodes as f64);
        let n = nodes.len();
        // Resolve the shard count. The automatic default keys off the
        // worker pool, which is environment-dependent — safe only because
        // the shard count is result-invariant (pinned by tests).
        let shards = self
            .shards
            .unwrap_or_else(|| rayon::current_num_threads().max(n.div_ceil(64)))
            .clamp(1, n);
        // Contiguous shards, the first `n % shards` one node longer.
        let groups = {
            let base = n / shards;
            let extra = n % shards;
            let mut start = 0;
            (0..shards)
                .map(|g| {
                    let len = base + usize::from(g < extra);
                    let range = start..start + len;
                    start += len;
                    GroupManager {
                        range,
                        polls_per_attempt: self.polls_per_attempt,
                        retry: self.retry,
                    }
                })
                .collect()
        };
        Fleet {
            epochs: self.epochs,
            epoch_s: self.epoch_s,
            budget_w,
            policy: self.policy,
            cap_policy: self.cap_policy,
            parallel: self.parallel,
            polls_per_attempt: self.polls_per_attempt,
            audit_sel: self.audit_sel,
            observe: self.observe.is_some(),
            violation_margin_w: self.violation_margin_w,
            violation_after: self.violation_after,
            breaker_trip_after: self.breaker_trip_after,
            breaker_cooldown: self.breaker_cooldown,
            ctrl: FleetCtrl::new(n),
            groups,
            next_epoch: 0,
            records: Vec::with_capacity(self.epochs as usize),
            dcm,
            nodes,
        }
    }
}

impl Default for FleetBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-node seed derivation: the workspace-wide splitmix64 scheme, shared
/// with the transport's per-link fault seeds so every seed in a fleet
/// descends from the one fleet seed through the same mixer.
fn mix(seed: u64, salt: u64) -> u64 {
    splitmix64(seed, salt)
}

/// The assembled fleet, ready to run.
pub struct Fleet {
    epochs: u32,
    epoch_s: f64,
    budget_w: f64,
    policy: AllocationPolicy,
    cap_policy: Option<Box<dyn CapPolicy>>,
    parallel: bool,
    polls_per_attempt: u32,
    audit_sel: bool,
    observe: bool,
    violation_margin_w: f64,
    violation_after: u32,
    breaker_trip_after: u32,
    breaker_cooldown: u32,
    ctrl: FleetCtrl,
    groups: Vec<GroupManager>,
    next_epoch: u32,
    records: Vec<EpochRecord>,
    dcm: Dcm,
    nodes: Vec<SimNode>,
}

impl Fleet {
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Epochs stepped so far.
    pub fn epochs_run(&self) -> u32 {
        self.next_epoch
    }

    /// Configured epoch length in simulated seconds.
    pub fn epoch_s(&self) -> f64 {
        self.epoch_s
    }

    /// Configured number of epochs ([`Fleet::run`] steps this many).
    pub fn epochs(&self) -> u32 {
        self.epochs
    }

    /// The manager (health, last caps, obs).
    pub fn dcm(&self) -> &Dcm {
        &self.dcm
    }

    /// A node's machine, by registration index. The chaos harness uses
    /// this between epochs to inject sensor faults, crash the BMC or
    /// inspect ground-truth energy accounting.
    pub fn machine(&self, index: usize) -> &Machine {
        &self.nodes[index].machine
    }

    /// Mutable access to a node's machine (fault injection between
    /// epochs).
    pub fn machine_mut(&mut self, index: usize) -> &mut Machine {
        &mut self.nodes[index].machine
    }

    /// A node's installed cap policy, by registration index. The RL
    /// trainer uses this after a run to harvest per-node Q-tables (via
    /// [`CapPolicy::as_any`] downcasts).
    pub fn node_policy(&self, index: usize) -> &dyn CapPolicy {
        self.nodes[index].machine.cap_policy()
    }

    /// Epoch records accumulated so far.
    pub fn records(&self) -> &[EpochRecord] {
        &self.records
    }

    /// Read a node's full SEL over its pumped management link (the same
    /// path the end-of-run audit uses), without updating DCM health.
    pub fn read_node_sel(&mut self, index: usize) -> Result<Vec<SelEntry>, IpmiError> {
        let retry = self.dcm.retry;
        let n = &mut self.nodes[index];
        let mut link = PumpedLink::new(&mut n.port, &mut n.machine, self.polls_per_attempt);
        read_sel_via(&mut link, &retry)
    }

    /// Number of group-manager shards the fleet was built with.
    pub fn shards(&self) -> usize {
        self.groups.len()
    }

    /// Advance the whole fleet by one epoch (parallel poll phase, serial
    /// root barrier, parallel push phase) and return the barrier's
    /// record. [`Fleet::run`] is a loop over this; the chaos harness
    /// calls it directly so it can inject faults at epoch boundaries.
    pub fn step_epoch(&mut self) -> &EpochRecord {
        let epoch = self.next_epoch;
        self.next_epoch += 1;
        let rec = self.run_epoch(epoch);
        self.records.push(rec);
        self.records.last().expect("just pushed")
    }

    /// Run the configured number of epochs and summarize.
    pub fn run(mut self) -> FleetReport {
        for _ in 0..self.epochs {
            self.step_epoch();
        }
        self.finish()
    }

    /// Split the node vector into the groups' contiguous shards. The
    /// split is purely positional, so it costs nothing and cannot
    /// reorder nodes.
    fn shard_chunks<'a>(
        groups: &'a [GroupManager],
        mut nodes: &'a mut [SimNode],
    ) -> Vec<(&'a GroupManager, &'a mut [SimNode])> {
        let mut chunks = Vec::with_capacity(groups.len());
        for g in groups {
            let (head, tail) = nodes.split_at_mut(g.len());
            chunks.push((g, head));
            nodes = tail;
        }
        debug_assert!(nodes.is_empty());
        chunks
    }

    /// One epoch of the hierarchical engine.
    ///
    /// * **Poll phase (parallel over shards).** Each group manager steps
    ///   its nodes by one epoch of simulated time and gathers demand —
    ///   polling over the wire, or skipping the poll when the root's
    ///   cached reading is provably what the BMC would answer. Groups
    ///   touch only their own shard and record nothing.
    /// * **Root barrier (serial).** The root absorbs the captured wire
    ///   outcomes in registration order (so health bookkeeping, metrics
    ///   and events are byte-identical to a serial run), detects cap
    ///   violations, reallocates the budget and plans the pushes —
    ///   eliding any push whose cap is already confirmed in effect.
    /// * **Push phase (parallel over shards).** Groups push the planned
    ///   caps; the root absorbs the outcomes in order.
    ///
    /// All cross-node decisions live in the serial root sections and
    /// every per-node wire exchange uses only that node's own link and
    /// BMC, which is why the shard count cannot change any result.
    fn run_epoch(&mut self, epoch: u32) -> EpochRecord {
        // All nodes sit at the same simulated instant at the barrier;
        // stamp manager-side events with it (deterministic: derived from
        // the epoch schedule, not any node's exact overshoot).
        let barrier_t_s = (epoch as f64 + 1.0) * self.epoch_s;
        self.dcm.set_obs_time_s(barrier_t_s);
        let n = self.nodes.len();

        // Root clearance for the poll fast path: the cached reading is
        // reusable only if the most recent poll succeeded — after a lost
        // response the BMC may have answered a poll the root never saw.
        for i in 0..n {
            self.ctrl.can_skip[i] = self.ctrl.poll_ok[i] && self.ctrl.demand_valid[i];
        }

        // Poll phase, fanned out over shards.
        let epoch_s = self.epoch_s;
        let can_skip = &self.ctrl.can_skip;
        let run_poll = |(g, chunk): (&GroupManager, &mut [SimNode])| {
            g.poll_phase(chunk, epoch_s, &can_skip[g.range.clone()])
        };
        let chunks = Self::shard_chunks(&self.groups, &mut self.nodes);
        let reports: Vec<GroupPollReport> = if self.parallel {
            chunks.into_par_iter().map(run_poll).collect()
        } else {
            chunks.into_iter().map(run_poll).collect()
        };

        // Root absorbs the poll outcomes in registration order.
        let mut demand: Vec<(NodeId, f64)> = Vec::with_capacity(n);
        let mut polls_skipped = 0u64;
        for (g, report) in self.groups.iter().zip(reports) {
            debug_assert_eq!(report.outcomes.len(), g.len());
            let mut fresh_w = 0.0;
            let mut fresh_n = 0u32;
            for (off, out) in report.outcomes.into_iter().enumerate() {
                let i = g.range.start + off;
                let id = self.nodes[i].id;
                match out {
                    PollOutcome::Skipped => {
                        // The cached reading is guaranteed equal to what
                        // a fresh poll would have returned.
                        polls_skipped += 1;
                        self.ctrl.timeout_streak[i] = 0;
                        demand.push((id, self.ctrl.demand_w[i]));
                    }
                    PollOutcome::Polled(out) => match self.dcm.absorb_power_poll(id, out) {
                        Ok(r) => {
                            let w = r.current_w as f64;
                            self.ctrl.demand_w[i] = w;
                            self.ctrl.demand_valid[i] = true;
                            self.ctrl.poll_ok[i] = true;
                            self.ctrl.timeout_streak[i] = 0;
                            fresh_w += w;
                            fresh_n += 1;
                            demand.push((id, w));
                        }
                        Err(_) => {
                            self.ctrl.poll_ok[i] = false;
                            self.ctrl.timeout_streak[i] += 1;
                        }
                    },
                }
            }
            // The shard's aggregates must match what the root absorbed —
            // the partition invariance the hierarchy leans on.
            debug_assert_eq!(fresh_n, report.answered);
            debug_assert_eq!(fresh_w, report.fresh_demand_w);
        }

        // Fleet-side cap-violation detection: compare each reading against
        // the cap pushed at the *previous* barrier (before this round's
        // push overwrites it). A node persistently over its cap — a BMC
        // silently dropping cap commands answers the wire perfectly — is
        // flagged and held Degraded until it comes back under. Cached
        // readings participate like fresh ones: they are equal by
        // construction.
        for &(id, w) in &demand {
            let streak = &mut self.ctrl.viol_streak[id.index()];
            let over = self.dcm.last_cap_w(id).is_some_and(|cap| w > cap + self.violation_margin_w);
            if over {
                *streak += 1;
                if *streak >= self.violation_after {
                    self.dcm.set_cap_violating(id, true);
                }
            } else {
                *streak = 0;
                self.dcm.set_cap_violating(id, false);
            }
        }

        // Cross-node failover (serial, root-only): failover-mode serving
        // workloads export the requests they could not queue this epoch;
        // the root re-offers each to the node with the most queue headroom
        // (shallowest queue, lowest index on ties). Routing reads only
        // workload/control state through the `queue_room` hook and the
        // breaker columns — never observability — and runs in
        // registration order at the barrier, so the outcome cannot depend
        // on shard count or thread count. Circuit breakers tick first:
        // they read this barrier's poll and violation streaks, so a node
        // that just went dark is out of the routing heap in the same
        // epoch its first poll fails.
        let rooms: Vec<Option<QueueRoom>> =
            self.nodes.iter().map(|s| s.load.queue_room()).collect();
        if rooms.iter().any(Option::is_some) {
            self.update_breakers(epoch, barrier_t_s);
        }
        let (failover_moved, failover_dropped) = self.route_failover(&rooms);
        if self.observe && failover_moved + failover_dropped > 0 {
            self.dcm.obs.metrics.add("fleet.failover_moved", failover_moved);
            self.dcm.obs.metrics.add("fleet.failover_dropped", failover_dropped);
            self.dcm.obs.events.record(
                barrier_t_s,
                EventKind::FailoverRouted {
                    epoch,
                    moved: failover_moved as u32,
                    dropped: failover_dropped as u32,
                },
            );
        }

        // Reallocate and plan the pushes. A push is elided when the last
        // push fully succeeded (Set *and* Activate) and landed exactly
        // this cap — then the BMC is provably already enforcing it.
        let caps = match &self.cap_policy {
            Some(p) => {
                // Tail-aware policies (and only those) get the per-node
                // p99 completion latency alongside demand; latency-blind
                // backends never touch observability state, so their
                // plans stay byte-identical with obs on or off.
                let tails: Vec<f64> = if p.wants_tail() {
                    demand
                        .iter()
                        .map(|&(id, _)| {
                            self.nodes[id.index()]
                                .machine
                                .obs()
                                .metrics
                                .hist_quantile(traffic_keys::LATENCY_MS, 0.99)
                                .unwrap_or(0.0)
                        })
                        .collect()
                } else {
                    Vec::new()
                };
                let caps = self.dcm.plan_with(self.budget_w, p.as_ref(), &demand, &tails);
                if self.observe {
                    self.dcm.obs.events.record(
                        barrier_t_s,
                        EventKind::PolicyPlan {
                            policy: p.name(),
                            epoch,
                            answered: demand.len() as u32,
                            granted_w: caps.iter().map(|&(_, c)| c).sum(),
                        },
                    );
                }
                caps
            }
            None => self.dcm.plan_allocation(self.budget_w, &self.policy, &demand),
        };
        self.ctrl.planned.fill(None);
        let mut pushes_skipped = 0u64;
        for &(id, cap) in &caps {
            let i = id.index();
            if self.ctrl.push_ok[i] && self.dcm.last_cap_w(id) == Some(cap) {
                pushes_skipped += 1;
            } else {
                self.ctrl.planned[i] = Some(self.dcm.limit_for(cap));
            }
        }

        // Push phase, fanned out over shards.
        let planned = &self.ctrl.planned;
        let run_push = |(g, chunk): (&GroupManager, &mut [SimNode])| {
            g.push_phase(chunk, &planned[g.range.clone()])
        };
        let chunks = Self::shard_chunks(&self.groups, &mut self.nodes);
        let outcomes: Vec<Vec<Option<CapPushOutcome>>> = if self.parallel {
            chunks.into_par_iter().map(run_push).collect()
        } else {
            chunks.into_iter().map(run_push).collect()
        };

        // Root absorbs the push outcomes in registration order. `caps`
        // is ascending by node index (demand is gathered in order), as is
        // the flattened outcome stream, so one forward walk pairs them.
        let mut caps_in_effect: Vec<(u32, f64)> = Vec::with_capacity(caps.len());
        let mut wire_pushes = 0u64;
        {
            let mut outs = outcomes.into_iter().flatten();
            let mut planned_caps = caps.iter().peekable();
            for i in 0..n {
                let out = outs.next().expect("one outcome slot per node");
                let cap = planned_caps.next_if(|&&(id, _)| id.index() == i).map(|&(_, c)| c);
                match (out, cap) {
                    (Some(push), Some(cap)) => {
                        let id = self.nodes[i].id;
                        match self.dcm.absorb_cap_push(id, cap, push) {
                            Ok(()) => {
                                self.ctrl.push_ok[i] = true;
                                wire_pushes += 1;
                                caps_in_effect.push((i as u32, cap));
                            }
                            Err(_) => self.ctrl.push_ok[i] = false,
                        }
                    }
                    // Elided push: the cap is already in effect.
                    (None, Some(cap)) => caps_in_effect.push((i as u32, cap)),
                    (None, None) => {}
                    (Some(_), None) => unreachable!("push captured for an unplanned node"),
                }
            }
        }

        let unresponsive = n - self.dcm.responsive_nodes().len();
        let fleet_power_w: f64 = demand.iter().map(|&(_, w)| w).sum();
        if self.observe {
            let m = &mut self.dcm.obs.metrics;
            for &(_, w) in &demand {
                m.observe("fleet.node_power_w", &FLEET_POWER_BOUNDS, w);
            }
            m.inc("fleet.barriers");
            m.add("fleet.caps_pushed", wire_pushes);
            m.add("fleet.polls_skipped", polls_skipped);
            m.add("fleet.cap_pushes_skipped", pushes_skipped);
            m.set_gauge("fleet.unresponsive", unresponsive as f64);
            self.dcm.obs.events.record(
                barrier_t_s,
                EventKind::BudgetRealloc {
                    epoch,
                    budget_w: self.budget_w,
                    answered: demand.len() as u32,
                    caps_pushed: wire_pushes as u32,
                },
            );
            self.dcm.obs.events.record(
                barrier_t_s,
                EventKind::Barrier {
                    epoch,
                    answered: demand.len() as u32,
                    unresponsive: unresponsive as u32,
                    fleet_w: fleet_power_w,
                },
            );
        }
        EpochRecord {
            epoch,
            answered: demand.len(),
            unresponsive,
            fleet_power_w,
            readings: demand.iter().map(|&(id, w)| (id.index() as u32, w)).collect(),
            caps: caps_in_effect,
        }
    }

    /// Tick the per-node failover circuit breakers at the root barrier
    /// (called only for fleets that route failover work). Trips on a
    /// poll-timeout streak of `breaker_trip_after` or a cap-violation
    /// streak at the violation detector's threshold; after
    /// `breaker_cooldown` epochs the breaker goes half-open (one probe),
    /// and a clean barrier closes it. Transitions are typed obs events
    /// with node attribution; recording is obs-gated, the state machine
    /// itself never reads observability.
    fn update_breakers(&mut self, epoch: u32, barrier_t_s: f64) {
        for i in 0..self.nodes.len() {
            let tripping = self.ctrl.timeout_streak[i] >= self.breaker_trip_after
                || self.ctrl.viol_streak[i] >= self.violation_after;
            let cur = self.ctrl.breaker[i];
            let next = match cur {
                BreakerState::Closed => {
                    if tripping {
                        BreakerState::Open { until: epoch.saturating_add(self.breaker_cooldown) }
                    } else {
                        cur
                    }
                }
                BreakerState::Open { until } => {
                    if epoch >= until {
                        BreakerState::HalfOpen
                    } else {
                        cur
                    }
                }
                // Half-open resolves strictly: any failure or violation
                // at this barrier re-opens, a fully clean barrier closes.
                BreakerState::HalfOpen => {
                    if self.ctrl.timeout_streak[i] > 0 || self.ctrl.viol_streak[i] > 0 {
                        BreakerState::Open { until: epoch.saturating_add(self.breaker_cooldown) }
                    } else {
                        BreakerState::Closed
                    }
                }
            };
            if next != cur {
                self.ctrl.breaker[i] = next;
                if self.observe {
                    self.dcm.obs.metrics.inc("fleet.breaker_transitions");
                    self.dcm.obs.events.record_for(
                        barrier_t_s,
                        Some(i as u32),
                        EventKind::BreakerTransition { epoch, from: cur.name(), to: next.name() },
                    );
                }
            }
        }
    }

    /// Serial root half of cross-node failover: drain every node's
    /// exported overflow in registration order and re-offer each request
    /// to the least-loaded node that still advertises queue room.
    /// Returns `(moved, dropped)`.
    ///
    /// A node is a routing target only while the DCM holds it `Healthy`
    /// *and* its circuit breaker admits work — `Open` breakers are
    /// excluded outright and `HalfOpen` breakers are capped at a single
    /// probe request. Quarantined (`Degraded`/`Unresponsive`) nodes never
    /// receive failover work, no matter how much room they advertise.
    ///
    /// Target selection is a min-heap over `(queue depth, node index)`
    /// with lazy deletion: depths change as requests land, so entries are
    /// re-validated against the live depth at pop time. Requests that
    /// find no node with room — the whole group is saturated — are shed
    /// at their origin, which keeps per-origin accounting honest
    /// (`arrivals == completed + shed + in_flight` fleet-wide, per
    /// priority class).
    fn route_failover(&mut self, rooms: &[Option<QueueRoom>]) -> (u64, u64) {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        let n = self.nodes.len();
        if rooms.iter().all(Option::is_none) {
            return (0, 0);
        }
        let mut depth = vec![0usize; n];
        let mut free = vec![0usize; n];
        let mut heap: BinaryHeap<Reverse<(usize, usize)>> = BinaryHeap::new();
        for (i, room) in rooms.iter().enumerate() {
            if let Some(r) = room {
                depth[i] = r.depth;
                // Health gate first: the DCM's word overrides any amount
                // of advertised room. Then the breaker: open means no
                // work at all, half-open means exactly one probe.
                let admissible = self.dcm.health(self.nodes[i].id) == NodeHealth::Healthy;
                free[i] = match (admissible, self.ctrl.breaker[i]) {
                    (false, _) | (_, BreakerState::Open { .. }) => 0,
                    (true, BreakerState::HalfOpen) => r.free.min(1),
                    (true, BreakerState::Closed) => r.free,
                };
                if free[i] > 0 {
                    heap.push(Reverse((r.depth, i)));
                }
            }
        }
        let (mut moved, mut dropped) = (0u64, 0u64);
        for (i, room) in rooms.iter().enumerate() {
            if room.is_none() {
                continue;
            }
            for req in self.nodes[i].load.drain_shed() {
                // Skim stale heap entries until the top reflects a live
                // (depth, index) pair with room.
                let target = loop {
                    match heap.peek() {
                        None => break None,
                        Some(&Reverse((d, j))) if free[j] == 0 || d != depth[j] => {
                            heap.pop();
                        }
                        Some(&Reverse((_, j))) => break Some(j),
                    }
                };
                let accepted = target.is_some_and(|j| {
                    let t = &mut self.nodes[j];
                    t.load.accept_failover(&mut t.machine, req)
                });
                if let (Some(j), true) = (target, accepted) {
                    heap.pop();
                    depth[j] += 1;
                    free[j] -= 1;
                    if free[j] > 0 {
                        heap.push(Reverse((depth[j], j)));
                    }
                    moved += 1;
                    self.nodes[i].machine.obs_mut().metrics.inc(traffic_keys::FAILOVER_OUT);
                } else {
                    if let Some(j) = target {
                        // The workload refused despite advertised room;
                        // trust the refusal and stop offering it work.
                        free[j] = 0;
                        heap.pop();
                    }
                    dropped += 1;
                    let metrics = &mut self.nodes[i].machine.obs_mut().metrics;
                    metrics.inc(traffic_keys::SHED);
                    metrics.inc(
                        traffic_keys::SHED_BY_CLASS[req.class as usize % traffic_keys::CLASSES],
                    );
                }
            }
        }
        (moved, dropped)
    }

    /// Summarize a (possibly manually stepped) fleet: final per-node
    /// stats, SEL audit, merged observability.
    pub fn finish(mut self) -> FleetReport {
        let records = std::mem::take(&mut self.records);
        let audit = self.audit_sel;
        let retry = self.dcm.retry;
        let polls = self.polls_per_attempt;
        if self.observe {
            // Fold the per-link fault injector tallies into the manager's
            // metrics before snapshotting: they live in the transport, not
            // in either endpoint's registry.
            let mut req = FaultStats::default();
            let mut resp = FaultStats::default();
            for n in &self.nodes {
                if let Some((r, p)) = n.port.fault_stats() {
                    req.delivered += r.delivered;
                    req.dropped += r.dropped;
                    req.corrupted += r.corrupted;
                    req.busied += r.busied;
                    req.delayed += r.delayed;
                    resp.delivered += p.delivered;
                    resp.dropped += p.dropped;
                    resp.corrupted += p.corrupted;
                    resp.busied += p.busied;
                    resp.delayed += p.delayed;
                }
            }
            let m = &mut self.dcm.obs.metrics;
            m.add("transport.delivered", req.delivered + resp.delivered);
            m.add("transport.dropped", req.dropped + resp.dropped);
            m.add("transport.corrupted", req.corrupted + resp.corrupted);
            m.add("transport.busied", req.busied + resp.busied);
            m.add("transport.delayed", req.delayed + resp.delayed);
        }
        let mut summaries = Vec::with_capacity(self.nodes.len());
        for n in &mut self.nodes {
            // End-of-run workload accounting (undrained failover exports
            // fold into the shed counter; still-queued requests are
            // recorded as in-flight) before the machine's books close.
            n.load.finish(&mut n.machine);
            let stats: RunStats = n.machine.finish_run();
            let sel_violations = if audit {
                let mut link = PumpedLink::new(&mut n.port, &mut n.machine, polls);
                read_sel_via(&mut link, &retry).map(|e| violation_count(&e)).unwrap_or(0)
            } else {
                0
            };
            summaries.push(NodeSummary {
                index: n.id.index() as u32,
                name: self.dcm.node_name(n.id).to_string(),
                health: self.dcm.health(n.id),
                final_cap_w: self.dcm.last_cap_w(n.id),
                avg_power_w: stats.avg_power_w,
                avg_freq_mhz: stats.avg_freq_mhz,
                energy_j: stats.energy_j,
                wall_s: stats.wall_s,
                sel_violations,
            });
        }
        let obs = if self.observe {
            let mut metrics = self.dcm.obs.metrics.snapshot();
            for n in &self.nodes {
                metrics.absorb(&n.machine.obs().metrics.snapshot());
            }
            let streams = std::iter::once((None, &self.dcm.obs.events)).chain(
                self.nodes.iter().map(|n| (Some(n.id.index() as u32), &n.machine.obs().events)),
            );
            Some(FleetObs { metrics, events: merge_streams(streams) })
        } else {
            None
        };
        FleetReport {
            nodes: self.nodes.len(),
            epochs: self.epochs,
            epoch_s: self.epoch_s,
            budget_w: self.budget_w,
            records,
            summaries,
            obs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_runs_and_caps_every_node() {
        let report = FleetBuilder::new().nodes(4).epochs(5).seed(11).build().run();
        assert_eq!(report.nodes, 4);
        assert_eq!(report.records.len(), 5);
        // Clean links: every node answers and gets a cap every epoch.
        for r in &report.records {
            assert_eq!(r.answered, 4);
            assert_eq!(r.caps.len(), 4);
            assert_eq!(r.unresponsive, 0);
        }
        for n in &report.summaries {
            assert_eq!(n.health, NodeHealth::Healthy);
            assert!(n.final_cap_w.is_some());
            assert!(n.wall_s > 0.0);
        }
    }

    #[test]
    fn serial_and_parallel_runs_render_identically() {
        let build = |parallel: bool| {
            FleetBuilder::new().nodes(6).epochs(4).seed(3).parallel(parallel).build().run()
        };
        let serial = build(false);
        let parallel = build(true);
        assert_eq!(serial.render(), parallel.render());
        assert_eq!(serial, parallel);
    }

    #[test]
    fn shard_count_is_result_invariant() {
        // Even with lossy links (per-link fault RNG) and observability on
        // (metrics + merged event stream compared field by field), the
        // shard count must not leak into any result.
        let build = |shards: usize| {
            FleetBuilder::new()
                .nodes(9)
                .epochs(4)
                .seed(5)
                .faults(FaultSpec::lossy(0.1))
                .observe(true)
                .shards(shards)
                .build()
                .run()
        };
        let one = build(1);
        for k in [2, 3, 9] {
            let sharded = build(k);
            assert_eq!(one, sharded, "shards={k} changed the run");
        }
    }

    #[test]
    fn observed_runs_surface_metrics_and_events() {
        let off = FleetBuilder::new().nodes(3).epochs(4).seed(7).build().run();
        assert!(off.obs.is_none(), "observability defaults off");

        let on = FleetBuilder::new().nodes(3).epochs(4).seed(7).observe(true).build().run();
        let obs = on.obs.as_ref().expect("observe(true) populates FleetObs");
        assert_eq!(obs.metrics.counter("fleet.barriers"), 4);
        // Wire pushes plus elided pushes cover every answered node every
        // epoch; the first epoch always goes over the wire.
        let pushed = obs.metrics.counter("fleet.caps_pushed");
        let elided = obs.metrics.counter("fleet.cap_pushes_skipped");
        assert_eq!(pushed + elided, 4 * 3);
        assert!(pushed >= 3, "the first epoch has no cached caps to elide");
        assert!(elided > 0, "steady-state caps are elided");
        assert_eq!(obs.metrics.counter("dcm.caps_pushed"), pushed);
        // Every wire push is a Set + Activate pair; polls add more.
        assert!(obs.metrics.counter("ipmi.transactions") >= 3 * pushed);
        assert!(obs.metrics.counter("machine.ticks") > 0);
        // Cached readings are recorded like fresh ones: the histogram
        // still sees every answered node every epoch.
        let hist = obs.metrics.hist("fleet.node_power_w").expect("power histogram");
        assert_eq!(hist.count, 4 * 3);
        // One BudgetRealloc + one Barrier per epoch, plus node-side DCMI
        // traffic; the merged stream is time-ordered.
        let barriers =
            obs.events.iter().filter(|e| matches!(e.kind, EventKind::Barrier { .. })).count();
        assert_eq!(barriers, 4);
        assert!(obs.events.iter().any(|e| matches!(e.kind, EventKind::DcmiSetLimit { .. })));
        let times: Vec<f64> = obs.events.iter().map(|e| e.t_s).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "events sorted by time");
        assert!(!obs.events_jsonl().is_empty());
        assert!(obs.events_csv().starts_with("seq,t_s,node,kind,detail\n"));

        // The observed run must not perturb the simulation itself.
        let on_plain = FleetReport { obs: None, ..on.clone() };
        assert_eq!(off, on_plain, "observability must not change results");
    }

    #[test]
    fn quiescent_nodes_take_the_fast_paths() {
        // A mostly idle datacenter mix settles into a steady state where
        // polls repeat, caps repeat and idle spans are quiescent — all
        // three elisions must fire, and none may perturb the results.
        let build = |observe: bool| {
            FleetBuilder::new()
                .nodes(8)
                .epochs(6)
                .seed(7)
                .datacenter_mix(true)
                .observe(observe)
                .build()
                .run()
        };
        let on = build(true);
        let obs = on.obs.as_ref().expect("observed run");
        assert!(obs.metrics.counter("fleet.polls_skipped") > 0, "steady polls are elided");
        assert!(obs.metrics.counter("fleet.cap_pushes_skipped") > 0, "steady caps are elided");
        assert!(obs.metrics.counter("machine.idle_skips") > 0, "idle spans fast-forward");
        // Elision decisions read only control state — never obs — so an
        // unobserved run must land on exactly the same results.
        let off = build(false);
        let on_plain = FleetReport { obs: None, ..on.clone() };
        assert_eq!(off, on_plain, "fast paths must not depend on observability");
    }

    #[test]
    fn stepping_manually_matches_run() {
        let whole = FleetBuilder::new().nodes(3).epochs(4).seed(9).build().run();
        let mut fleet = FleetBuilder::new().nodes(3).epochs(4).seed(9).build();
        while fleet.epochs_run() < fleet.epochs() {
            fleet.step_epoch();
        }
        let stepped = fleet.finish();
        assert_eq!(whole, stepped, "step_epoch loop must equal run()");
    }

    #[test]
    fn lost_cap_commands_are_flagged_by_the_violation_detector() {
        // Node 1's BMC acks every SET_POWER_LIMIT on the wire but never
        // commits it: management traffic looks perfectly healthy while
        // measured power never comes down. Only the fleet-side violation
        // detector can see this.
        let mut fleet = FleetBuilder::new()
            .nodes(2)
            .epochs(8)
            .seed(23)
            .budget_w(220.0)
            // 20 W margin: a compliant node throttled to the 110 W floor
            // still overshoots it by ~13 W (the floor is the ladder's
            // physical limit, not a promise), and must not be flagged.
            .violation_detector(20.0, 2)
            .build();
        fleet.machine_mut(1).set_lost_cap_commands(true);
        while fleet.epochs_run() < fleet.epochs() {
            fleet.step_epoch();
        }
        assert!(fleet.dcm().cap_violating(fleet.dcm().id_at(1).unwrap()));
        assert_eq!(
            fleet.dcm().health(fleet.dcm().id_at(1).unwrap()),
            NodeHealth::Degraded { consecutive_failures: 0 },
            "violating node is held degraded despite clean transactions"
        );
        assert_eq!(fleet.dcm().health(fleet.dcm().id_at(0).unwrap()), NodeHealth::Healthy);
        let report = fleet.finish();
        assert_eq!(report.summaries[1].health, NodeHealth::Degraded { consecutive_failures: 0 });
    }

    #[test]
    fn faulty_links_still_converge_and_dead_nodes_are_shed() {
        let report = FleetBuilder::new()
            .nodes(5)
            .epochs(8)
            .seed(17)
            .faults(FaultSpec::lossy(0.05))
            .dead_node(2)
            .build()
            .run();
        let last = report.records.last().unwrap();
        assert_eq!(last.answered, 4, "dead node never answers");
        assert_eq!(last.unresponsive, 1);
        assert_eq!(report.summaries[2].health, NodeHealth::Unresponsive);
        assert!(report.summaries[2].final_cap_w.is_none());
        // The dead node's share went to the others: 4 caps summing to
        // (close to) the full budget.
        let cap_sum: f64 = last.caps.iter().map(|&(_, w)| w).sum();
        assert!(cap_sum > report.budget_w * 0.99, "{cap_sum} vs {}", report.budget_w);
    }
}
