//! The fleet engine: N simulated nodes stepped in lock-step simulated
//! time under one DCM budget loop.
//!
//! Each control epoch has two phases:
//!
//! 1. **Step phase** — every node advances `epoch_s` of simulated time,
//!    executing its synthetic workload and running its own BMC control
//!    loop. Nodes share no state, so this phase parallelizes across
//!    worker threads (rayon) with per-node seeds; results are collected
//!    in node order, making the parallel run bit-identical to a serial
//!    one.
//! 2. **Barrier phase** — with all nodes at the same simulated instant,
//!    the DCM serially polls power over IPMI, reallocates the group
//!    budget across the nodes that answered (uniform / proportional /
//!    priority), and pushes the new caps. The management network can be
//!    faulty ([`FaultSpec`]); transactions retry with backoff, and nodes
//!    that stop answering are marked unresponsive with their budget share
//!    reallocated to healthy peers.
//!
//! Because the manager cannot block on a node that lives on the same
//! thread, barrier-phase traffic flows through [`PumpedLink`]: each
//! delivery poll services the node's BMC, so request, firmware handling
//! and response all happen inside the barrier, in deterministic order.

use capsim_ipmi::sel::SelEntry;
use capsim_ipmi::{
    splitmix64, FaultSpec, FaultStats, IpmiError, LanChannel, ManagerPort, Request, Response,
    RetryPolicy, Transact,
};
use capsim_node::{CodeBlock, EpochWorkload, Machine, MachineConfig, Region, RunStats};
use capsim_obs::{
    events_to_csv, events_to_jsonl, merge_streams, Event, EventKind, MetricsSnapshot,
};
use rayon::prelude::*;

use crate::manager::{Dcm, NodeHealth, NodeId};
use crate::monitor::{read_sel_via, violation_count};
use crate::policy::AllocationPolicy;

/// Bucket upper edges (watts) for the per-node power histogram sampled at
/// every barrier. Centered on the paper's 95–170 W measurement band.
static FLEET_POWER_BOUNDS: [f64; 8] = [110.0, 120.0, 125.0, 130.0, 135.0, 140.0, 150.0, 160.0];

/// A [`Transact`] link for lock-step topologies: the manager and the node
/// live on the same thread, so instead of blocking on the wire, each
/// delivery poll pumps the node's BMC service loop. Wait budgets are
/// counted in polls, not wall-clock time — transactions are fully
/// deterministic.
pub struct PumpedLink<'a> {
    port: &'a mut ManagerPort,
    machine: &'a mut Machine,
    polls_per_attempt: u32,
    patience: u32,
}

impl<'a> PumpedLink<'a> {
    pub fn new(
        port: &'a mut ManagerPort,
        machine: &'a mut Machine,
        polls_per_attempt: u32,
    ) -> Self {
        PumpedLink { port, machine, polls_per_attempt: polls_per_attempt.max(1), patience: 1 }
    }
}

impl Transact for PumpedLink<'_> {
    fn next_seq(&mut self) -> u8 {
        self.port.next_seq()
    }

    fn transact(&mut self, req: &Request) -> Result<Response, IpmiError> {
        self.port.send(req)?;
        let budget = self.polls_per_attempt.saturating_mul(self.patience);
        for _ in 0..budget {
            self.machine.service_bmc();
            match self.port.try_recv() {
                Ok(Some(resp))
                    if resp.seq == req.seq && resp.cmd == req.cmd && resp.netfn == req.netfn =>
                {
                    return Ok(resp)
                }
                Ok(Some(_)) => {} // stale response to an earlier attempt
                Ok(None) => {}
                Err(e) => return Err(e),
            }
        }
        Err(IpmiError::TimedOut)
    }

    fn set_patience(&mut self, factor: u32) {
        self.patience = factor.max(1);
    }
}

/// Synthetic workload mix for a fleet node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoadKind {
    /// ALU-bound: hot loop out of L1.
    Compute,
    /// Memory-bound: strided loads over a working set.
    Stream,
    /// Both, plus a mostly-predictable branch.
    Mixed,
    /// Bursty: a dense burst of mixed work followed by a ~4 ms idle gap.
    /// Power swings between near-TDP and idle floor within one epoch —
    /// the load that stresses guardrail plausibility checks and the
    /// violation detector's hysteresis.
    Pulse,
}

impl LoadKind {
    fn for_index(i: usize) -> LoadKind {
        match i % 3 {
            0 => LoadKind::Compute,
            1 => LoadKind::Stream,
            _ => LoadKind::Mixed,
        }
    }
}

/// A self-contained epoch workload built from machine primitives.
struct SyntheticLoad {
    kind: LoadKind,
    block: CodeBlock,
    region: Region,
    i: u64,
}

impl SyntheticLoad {
    fn new(m: &mut Machine, kind: LoadKind) -> Self {
        let block = m.code_block(96, 24);
        let region = m.alloc(64 * 1024);
        SyntheticLoad { kind, block, region, i: 0 }
    }
}

impl EpochWorkload for SyntheticLoad {
    fn quantum(&mut self, m: &mut Machine) {
        let start = (self.i * 64) % self.region.bytes();
        match self.kind {
            LoadKind::Compute => {
                for _ in 0..4 {
                    m.exec_block(&self.block);
                }
                m.compute(1000);
            }
            LoadKind::Stream => {
                m.exec_block(&self.block);
                m.load_stream(self.region.base(), self.region.bytes(), start, 64, 64);
            }
            LoadKind::Mixed => {
                for _ in 0..2 {
                    m.exec_block(&self.block);
                }
                m.load_stream(self.region.base(), self.region.bytes(), start, 64, 32);
                m.branch(&self.block, !self.i.is_multiple_of(7));
            }
            LoadKind::Pulse => {
                for _ in 0..8 {
                    m.exec_block(&self.block);
                }
                m.load_stream(self.region.base(), self.region.bytes(), start, 64, 64);
                m.compute(2000);
                m.idle(4e-3);
            }
        }
        self.i += 1;
    }
}

struct SimNode {
    id: NodeId,
    port: ManagerPort,
    machine: Machine,
    load: SyntheticLoad,
}

/// One barrier's worth of fleet-level observations.
#[derive(Clone, Debug, PartialEq)]
pub struct EpochRecord {
    pub epoch: u32,
    /// Nodes that answered the power poll this epoch.
    pub answered: usize,
    /// Nodes currently marked unresponsive.
    pub unresponsive: usize,
    /// Sum of measured power over answering nodes.
    pub fleet_power_w: f64,
    /// Per-node power readings this epoch (node registration index,
    /// watts) — the chaos harness checks cap compliance against these.
    pub readings: Vec<(u32, f64)>,
    /// Caps pushed this epoch (node registration index, watts).
    pub caps: Vec<(u32, f64)>,
}

/// Final per-node summary.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeSummary {
    pub index: u32,
    pub name: String,
    pub health: NodeHealth,
    pub final_cap_w: Option<f64>,
    pub avg_power_w: f64,
    pub avg_freq_mhz: f64,
    pub energy_j: f64,
    pub wall_s: f64,
    /// Cap violations recorded in the node's SEL, audited over IPMI at
    /// the end of the run (0 if the audit itself failed).
    pub sel_violations: usize,
}

/// Merged observability for a whole fleet run: the manager's metrics
/// absorbed with every node's, and all event streams merged into one
/// totally ordered, deterministic sequence (simulated time, then stream,
/// then per-stream sequence).
#[derive(Clone, Debug, PartialEq)]
pub struct FleetObs {
    /// Manager + per-node series, counters and buckets summed.
    pub metrics: MetricsSnapshot,
    /// All events, node-tagged, in total order.
    pub events: Vec<Event>,
}

impl FleetObs {
    /// JSONL export — same seed, same bytes, serial or parallel.
    pub fn events_jsonl(&self) -> String {
        events_to_jsonl(self.events.iter())
    }

    /// CSV export with a header row.
    pub fn events_csv(&self) -> String {
        events_to_csv(self.events.iter())
    }
}

/// The result of a fleet run. [`FleetReport::render`] produces a stable
/// textual form — the determinism contract is that a parallel run renders
/// byte-identically to a serial run of the same configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct FleetReport {
    pub nodes: usize,
    pub epochs: u32,
    pub epoch_s: f64,
    pub budget_w: f64,
    pub records: Vec<EpochRecord>,
    pub summaries: Vec<NodeSummary>,
    /// Present when the fleet was built with [`FleetBuilder::observe`].
    pub obs: Option<FleetObs>,
}

impl FleetReport {
    /// Stable textual rendering (f64s print via Rust's shortest-roundtrip
    /// formatter, so equal states render to equal bytes).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "fleet nodes={} epochs={} epoch_s={} budget_w={}",
            self.nodes, self.epochs, self.epoch_s, self.budget_w
        );
        for r in &self.records {
            let cap_sum: f64 = r.caps.iter().map(|&(_, w)| w).sum();
            let _ = writeln!(
                s,
                "epoch {} answered={} unresponsive={} fleet_w={} caps={} cap_sum={}",
                r.epoch,
                r.answered,
                r.unresponsive,
                r.fleet_power_w,
                r.caps.len(),
                cap_sum
            );
        }
        for n in &self.summaries {
            let _ = writeln!(
                s,
                "node {} {} health={:?} cap={:?} avg_w={} freq_mhz={} energy_j={} wall_s={} viol={}",
                n.index,
                n.name,
                n.health,
                n.final_cap_w,
                n.avg_power_w,
                n.avg_freq_mhz,
                n.energy_j,
                n.wall_s,
                n.sel_violations
            );
        }
        s
    }

    /// Nodes still healthy/degraded at the end of the run.
    pub fn responsive(&self) -> usize {
        self.summaries.iter().filter(|n| n.health.is_responsive()).count()
    }
}

/// Fluent constructor for a [`Fleet`].
pub struct FleetBuilder {
    nodes: usize,
    epochs: u32,
    epoch_s: f64,
    budget_w: Option<f64>,
    policy: AllocationPolicy,
    faults: FaultSpec,
    seed: u64,
    parallel: bool,
    base: MachineConfig,
    polls_per_attempt: u32,
    retry: RetryPolicy,
    dead: Vec<usize>,
    audit_sel: bool,
    observe: Option<usize>,
    load: Option<LoadKind>,
    violation_margin_w: f64,
    violation_after: u32,
}

impl FleetBuilder {
    pub fn new() -> Self {
        // Small fast-control machines: fleet runs exercise the *group*
        // control loop, so per-node microarchitectural fidelity is traded
        // for epoch turnaround.
        let mut base = MachineConfig::tiny(0);
        base.control_period_us = 10.0;
        base.meter_window_s = 0.0002;
        FleetBuilder {
            nodes: 8,
            epochs: 6,
            epoch_s: 5e-4,
            budget_w: None,
            policy: AllocationPolicy::Uniform,
            faults: FaultSpec::none(),
            seed: 0,
            parallel: true,
            base,
            polls_per_attempt: 16,
            retry: RetryPolicy::default(),
            dead: Vec::new(),
            audit_sel: true,
            observe: None,
            load: None,
            violation_margin_w: 10.0,
            violation_after: 3,
        }
    }

    /// Number of nodes in the group.
    pub fn nodes(mut self, n: usize) -> Self {
        self.nodes = n;
        self
    }

    /// Number of control epochs to run.
    pub fn epochs(mut self, e: u32) -> Self {
        self.epochs = e;
        self
    }

    /// Simulated seconds per epoch (the DCM reallocation period).
    pub fn epoch_s(mut self, s: f64) -> Self {
        self.epoch_s = s;
        self
    }

    /// Total group budget in watts (default: 135 W per node).
    pub fn budget_w(mut self, w: f64) -> Self {
        self.budget_w = Some(w);
        self
    }

    /// Budget allocation policy.
    pub fn policy(mut self, p: AllocationPolicy) -> Self {
        self.policy = p;
        self
    }

    /// Fault model for every node's management link.
    pub fn faults(mut self, f: FaultSpec) -> Self {
        self.faults = f;
        self
    }

    /// Fleet seed (per-node machine and fault seeds derive from it).
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Step nodes across worker threads (true, the default) or serially
    /// on the caller's thread. Both produce bit-identical reports.
    pub fn parallel(mut self, p: bool) -> Self {
        self.parallel = p;
        self
    }

    /// Machine template for every node (per-node seeds still derive from
    /// the fleet seed).
    pub fn machine(mut self, cfg: MachineConfig) -> Self {
        self.base = cfg;
        self
    }

    /// Retry budget for barrier-phase transactions.
    pub fn retry(mut self, r: RetryPolicy) -> Self {
        self.retry = r;
        self
    }

    /// Make one node's management link a black hole (its BMC never hears
    /// the manager) — the degraded-fleet scenario.
    pub fn dead_node(mut self, index: usize) -> Self {
        self.dead.push(index);
        self
    }

    /// Audit each node's SEL over IPMI at the end of the run (default
    /// true; large sweeps can turn it off).
    pub fn audit_sel(mut self, on: bool) -> Self {
        self.audit_sel = on;
        self
    }

    /// Record metrics and a typed event log during the run (default off —
    /// observability must be asked for, so unobserved runs pay only a
    /// branch per site). The report then carries [`FleetObs`].
    pub fn observe(mut self, on: bool) -> Self {
        self.observe = on.then_some(4096);
        self
    }

    /// Like [`FleetBuilder::observe`] with an explicit per-stream event
    /// ring capacity.
    pub fn observe_capacity(mut self, event_capacity: usize) -> Self {
        self.observe = Some(event_capacity);
        self
    }

    /// Give every node the same workload kind instead of the default
    /// round-robin Compute/Stream/Mixed assignment.
    pub fn uniform_load(mut self, kind: LoadKind) -> Self {
        self.load = Some(kind);
        self
    }

    /// Tune the fleet-side cap-violation detector: a node whose measured
    /// power exceeds its last pushed cap by more than `margin_w` for
    /// `epochs` consecutive barriers is flagged via
    /// [`Dcm::set_cap_violating`] and held at `Degraded` until it
    /// recovers. Defaults: 10 W over, 3 epochs.
    pub fn violation_detector(mut self, margin_w: f64, epochs: u32) -> Self {
        self.violation_margin_w = margin_w;
        self.violation_after = epochs.max(1);
        self
    }

    /// Build the fleet: per-node machines (seeded from the fleet seed),
    /// management links (faulty if configured) and the DCM registry.
    pub fn build(self) -> Fleet {
        assert!(self.nodes > 0, "a fleet needs nodes");
        let mut dcm = Dcm::new();
        dcm.retry = self.retry;
        if let Some(cap) = self.observe {
            dcm.obs = capsim_obs::Obs::enabled(cap);
        }
        let mut nodes = Vec::with_capacity(self.nodes);
        for i in 0..self.nodes {
            let node_seed = mix(self.seed, i as u64);
            let spec = if self.dead.contains(&i) { FaultSpec::dead() } else { self.faults };
            let (port, bmc_port) = if spec.is_clean() {
                LanChannel::pair()
            } else {
                LanChannel::faulty_pair(spec, mix(node_seed, 0xfa01_c0de))
            };
            let mut cfg = self.base.clone();
            cfg.seed = node_seed;
            let mut machine = Machine::new(cfg);
            if let Some(cap) = self.observe {
                machine.enable_obs(cap);
            }
            machine.attach_bmc_port(bmc_port);
            let kind = self.load.unwrap_or_else(|| LoadKind::for_index(i));
            let load = SyntheticLoad::new(&mut machine, kind);
            let id = dcm.register(format!("n{i:04}"));
            nodes.push(SimNode { id, port, machine, load });
        }
        let budget_w = self.budget_w.unwrap_or(135.0 * self.nodes as f64);
        let n = nodes.len();
        Fleet {
            epochs: self.epochs,
            epoch_s: self.epoch_s,
            budget_w,
            policy: self.policy,
            parallel: self.parallel,
            polls_per_attempt: self.polls_per_attempt,
            audit_sel: self.audit_sel,
            observe: self.observe.is_some(),
            violation_margin_w: self.violation_margin_w,
            violation_after: self.violation_after,
            viol_streaks: vec![0; n],
            next_epoch: 0,
            records: Vec::with_capacity(self.epochs as usize),
            dcm,
            nodes,
        }
    }
}

impl Default for FleetBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-node seed derivation: the workspace-wide splitmix64 scheme, shared
/// with the transport's per-link fault seeds so every seed in a fleet
/// descends from the one fleet seed through the same mixer.
fn mix(seed: u64, salt: u64) -> u64 {
    splitmix64(seed, salt)
}

/// The assembled fleet, ready to run.
pub struct Fleet {
    epochs: u32,
    epoch_s: f64,
    budget_w: f64,
    policy: AllocationPolicy,
    parallel: bool,
    polls_per_attempt: u32,
    audit_sel: bool,
    observe: bool,
    violation_margin_w: f64,
    violation_after: u32,
    viol_streaks: Vec<u32>,
    next_epoch: u32,
    records: Vec<EpochRecord>,
    dcm: Dcm,
    nodes: Vec<SimNode>,
}

impl Fleet {
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Epochs stepped so far.
    pub fn epochs_run(&self) -> u32 {
        self.next_epoch
    }

    /// Configured epoch length in simulated seconds.
    pub fn epoch_s(&self) -> f64 {
        self.epoch_s
    }

    /// Configured number of epochs ([`Fleet::run`] steps this many).
    pub fn epochs(&self) -> u32 {
        self.epochs
    }

    /// The manager (health, last caps, obs).
    pub fn dcm(&self) -> &Dcm {
        &self.dcm
    }

    /// A node's machine, by registration index. The chaos harness uses
    /// this between epochs to inject sensor faults, crash the BMC or
    /// inspect ground-truth energy accounting.
    pub fn machine(&self, index: usize) -> &Machine {
        &self.nodes[index].machine
    }

    /// Mutable access to a node's machine (fault injection between
    /// epochs).
    pub fn machine_mut(&mut self, index: usize) -> &mut Machine {
        &mut self.nodes[index].machine
    }

    /// Epoch records accumulated so far.
    pub fn records(&self) -> &[EpochRecord] {
        &self.records
    }

    /// Read a node's full SEL over its pumped management link (the same
    /// path the end-of-run audit uses), without updating DCM health.
    pub fn read_node_sel(&mut self, index: usize) -> Result<Vec<SelEntry>, IpmiError> {
        let retry = self.dcm.retry;
        let n = &mut self.nodes[index];
        let mut link = PumpedLink::new(&mut n.port, &mut n.machine, self.polls_per_attempt);
        read_sel_via(&mut link, &retry)
    }

    /// Advance the whole fleet by one epoch (step phase + barrier phase)
    /// and return the barrier's record. [`Fleet::run`] is a loop over
    /// this; the chaos harness calls it directly so it can inject faults
    /// at epoch boundaries.
    pub fn step_epoch(&mut self) -> &EpochRecord {
        let epoch = self.next_epoch;
        self.next_epoch += 1;
        self.step_phase();
        let rec = self.barrier_phase(epoch);
        self.records.push(rec);
        self.records.last().expect("just pushed")
    }

    /// Run the configured number of epochs and summarize.
    pub fn run(mut self) -> FleetReport {
        for _ in 0..self.epochs {
            self.step_epoch();
        }
        self.finish()
    }

    /// Phase 1: advance every node by one epoch of simulated time. Nodes
    /// are fully independent; the parallel path consumes the node vector,
    /// maps it across workers and rebuilds it in order, so the resulting
    /// states cannot depend on scheduling.
    fn step_phase(&mut self) {
        let epoch_s = self.epoch_s;
        let nodes = std::mem::take(&mut self.nodes);
        self.nodes = if self.parallel {
            nodes
                .into_par_iter()
                .map(|mut n| {
                    n.machine.step(epoch_s, &mut n.load);
                    n
                })
                .collect()
        } else {
            let mut nodes = nodes;
            for n in &mut nodes {
                n.machine.step(epoch_s, &mut n.load);
            }
            nodes
        };
    }

    /// Phase 2 (serial): poll power, reallocate the budget over answering
    /// nodes, push caps.
    fn barrier_phase(&mut self, epoch: u32) -> EpochRecord {
        // All nodes sit at the same simulated instant here; stamp
        // manager-side events with it (deterministic: derived from the
        // epoch schedule, not any node's exact overshoot).
        let barrier_t_s = (epoch as f64 + 1.0) * self.epoch_s;
        self.dcm.set_obs_time_s(barrier_t_s);
        let polls = self.polls_per_attempt;
        let mut demand: Vec<(NodeId, f64)> = Vec::with_capacity(self.nodes.len());
        for n in &mut self.nodes {
            let mut link = PumpedLink::new(&mut n.port, &mut n.machine, polls);
            if let Ok(r) = self.dcm.read_power_via(n.id, &mut link) {
                demand.push((n.id, r.current_w as f64));
            }
        }
        // Fleet-side cap-violation detection: compare each reading against
        // the cap pushed at the *previous* barrier (before this round's
        // push overwrites it). A node persistently over its cap — a BMC
        // silently dropping cap commands answers the wire perfectly — is
        // flagged and held Degraded until it comes back under.
        for &(id, w) in &demand {
            let streak = &mut self.viol_streaks[id.index()];
            let over = self.dcm.last_cap_w(id).is_some_and(|cap| w > cap + self.violation_margin_w);
            if over {
                *streak += 1;
                if *streak >= self.violation_after {
                    self.dcm.set_cap_violating(id, true);
                }
            } else {
                *streak = 0;
                self.dcm.set_cap_violating(id, false);
            }
        }
        let caps = self.dcm.plan_allocation(self.budget_w, &self.policy, &demand);
        let mut pushed = Vec::with_capacity(caps.len());
        for (id, cap) in caps {
            let n = &mut self.nodes[id.index()];
            let mut link = PumpedLink::new(&mut n.port, &mut n.machine, polls);
            if self.dcm.cap_node_via(id, &mut link, cap).is_ok() {
                pushed.push((id.index() as u32, cap));
            }
        }
        let unresponsive = self.nodes.len() - self.dcm.responsive_nodes().len();
        let fleet_power_w: f64 = demand.iter().map(|&(_, w)| w).sum();
        if self.observe {
            let m = &mut self.dcm.obs.metrics;
            for &(_, w) in &demand {
                m.observe("fleet.node_power_w", &FLEET_POWER_BOUNDS, w);
            }
            m.inc("fleet.barriers");
            m.add("fleet.caps_pushed", pushed.len() as u64);
            m.set_gauge("fleet.unresponsive", unresponsive as f64);
            self.dcm.obs.events.record(
                barrier_t_s,
                EventKind::BudgetRealloc {
                    epoch,
                    budget_w: self.budget_w,
                    answered: demand.len() as u32,
                    caps_pushed: pushed.len() as u32,
                },
            );
            self.dcm.obs.events.record(
                barrier_t_s,
                EventKind::Barrier {
                    epoch,
                    answered: demand.len() as u32,
                    unresponsive: unresponsive as u32,
                    fleet_w: fleet_power_w,
                },
            );
        }
        EpochRecord {
            epoch,
            answered: demand.len(),
            unresponsive,
            fleet_power_w,
            readings: demand.iter().map(|&(id, w)| (id.index() as u32, w)).collect(),
            caps: pushed,
        }
    }

    /// Summarize a (possibly manually stepped) fleet: final per-node
    /// stats, SEL audit, merged observability.
    pub fn finish(mut self) -> FleetReport {
        let records = std::mem::take(&mut self.records);
        let audit = self.audit_sel;
        let retry = self.dcm.retry;
        let polls = self.polls_per_attempt;
        if self.observe {
            // Fold the per-link fault injector tallies into the manager's
            // metrics before snapshotting: they live in the transport, not
            // in either endpoint's registry.
            let mut req = FaultStats::default();
            let mut resp = FaultStats::default();
            for n in &self.nodes {
                if let Some((r, p)) = n.port.fault_stats() {
                    req.delivered += r.delivered;
                    req.dropped += r.dropped;
                    req.corrupted += r.corrupted;
                    req.busied += r.busied;
                    req.delayed += r.delayed;
                    resp.delivered += p.delivered;
                    resp.dropped += p.dropped;
                    resp.corrupted += p.corrupted;
                    resp.busied += p.busied;
                    resp.delayed += p.delayed;
                }
            }
            let m = &mut self.dcm.obs.metrics;
            m.add("transport.delivered", req.delivered + resp.delivered);
            m.add("transport.dropped", req.dropped + resp.dropped);
            m.add("transport.corrupted", req.corrupted + resp.corrupted);
            m.add("transport.busied", req.busied + resp.busied);
            m.add("transport.delayed", req.delayed + resp.delayed);
        }
        let mut summaries = Vec::with_capacity(self.nodes.len());
        for n in &mut self.nodes {
            let stats: RunStats = n.machine.finish_run();
            let sel_violations = if audit {
                let mut link = PumpedLink::new(&mut n.port, &mut n.machine, polls);
                read_sel_via(&mut link, &retry).map(|e| violation_count(&e)).unwrap_or(0)
            } else {
                0
            };
            summaries.push(NodeSummary {
                index: n.id.index() as u32,
                name: self.dcm.node_name(n.id).to_string(),
                health: self.dcm.health(n.id),
                final_cap_w: self.dcm.last_cap_w(n.id),
                avg_power_w: stats.avg_power_w,
                avg_freq_mhz: stats.avg_freq_mhz,
                energy_j: stats.energy_j,
                wall_s: stats.wall_s,
                sel_violations,
            });
        }
        let obs = if self.observe {
            let mut metrics = self.dcm.obs.metrics.snapshot();
            for n in &self.nodes {
                metrics.absorb(&n.machine.obs().metrics.snapshot());
            }
            let streams = std::iter::once((None, &self.dcm.obs.events)).chain(
                self.nodes.iter().map(|n| (Some(n.id.index() as u32), &n.machine.obs().events)),
            );
            Some(FleetObs { metrics, events: merge_streams(streams) })
        } else {
            None
        };
        FleetReport {
            nodes: self.nodes.len(),
            epochs: self.epochs,
            epoch_s: self.epoch_s,
            budget_w: self.budget_w,
            records,
            summaries,
            obs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_runs_and_caps_every_node() {
        let report = FleetBuilder::new().nodes(4).epochs(5).seed(11).build().run();
        assert_eq!(report.nodes, 4);
        assert_eq!(report.records.len(), 5);
        // Clean links: every node answers and gets a cap every epoch.
        for r in &report.records {
            assert_eq!(r.answered, 4);
            assert_eq!(r.caps.len(), 4);
            assert_eq!(r.unresponsive, 0);
        }
        for n in &report.summaries {
            assert_eq!(n.health, NodeHealth::Healthy);
            assert!(n.final_cap_w.is_some());
            assert!(n.wall_s > 0.0);
        }
    }

    #[test]
    fn serial_and_parallel_runs_render_identically() {
        let build = |parallel: bool| {
            FleetBuilder::new().nodes(6).epochs(4).seed(3).parallel(parallel).build().run()
        };
        let serial = build(false);
        let parallel = build(true);
        assert_eq!(serial.render(), parallel.render());
        assert_eq!(serial, parallel);
    }

    #[test]
    fn observed_runs_surface_metrics_and_events() {
        let off = FleetBuilder::new().nodes(3).epochs(4).seed(7).build().run();
        assert!(off.obs.is_none(), "observability defaults off");

        let on = FleetBuilder::new().nodes(3).epochs(4).seed(7).observe(true).build().run();
        let obs = on.obs.as_ref().expect("observe(true) populates FleetObs");
        assert_eq!(obs.metrics.counter("fleet.barriers"), 4);
        assert_eq!(obs.metrics.counter("fleet.caps_pushed"), 4 * 3);
        assert_eq!(obs.metrics.counter("dcm.caps_pushed"), 4 * 3);
        assert!(obs.metrics.counter("ipmi.transactions") >= 4 * 3 * 2);
        assert!(obs.metrics.counter("machine.ticks") > 0);
        let hist = obs.metrics.hist("fleet.node_power_w").expect("power histogram");
        assert_eq!(hist.count, 4 * 3);
        // One BudgetRealloc + one Barrier per epoch, plus node-side DCMI
        // traffic; the merged stream is time-ordered.
        let barriers =
            obs.events.iter().filter(|e| matches!(e.kind, EventKind::Barrier { .. })).count();
        assert_eq!(barriers, 4);
        assert!(obs.events.iter().any(|e| matches!(e.kind, EventKind::DcmiSetLimit { .. })));
        let times: Vec<f64> = obs.events.iter().map(|e| e.t_s).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "events sorted by time");
        assert!(!obs.events_jsonl().is_empty());
        assert!(obs.events_csv().starts_with("seq,t_s,node,kind,detail\n"));

        // The observed run must not perturb the simulation itself.
        let on_plain = FleetReport { obs: None, ..on.clone() };
        assert_eq!(off, on_plain, "observability must not change results");
    }

    #[test]
    fn stepping_manually_matches_run() {
        let whole = FleetBuilder::new().nodes(3).epochs(4).seed(9).build().run();
        let mut fleet = FleetBuilder::new().nodes(3).epochs(4).seed(9).build();
        while fleet.epochs_run() < fleet.epochs() {
            fleet.step_epoch();
        }
        let stepped = fleet.finish();
        assert_eq!(whole, stepped, "step_epoch loop must equal run()");
    }

    #[test]
    fn lost_cap_commands_are_flagged_by_the_violation_detector() {
        // Node 1's BMC acks every SET_POWER_LIMIT on the wire but never
        // commits it: management traffic looks perfectly healthy while
        // measured power never comes down. Only the fleet-side violation
        // detector can see this.
        let mut fleet = FleetBuilder::new()
            .nodes(2)
            .epochs(8)
            .seed(23)
            .budget_w(220.0)
            // 20 W margin: a compliant node throttled to the 110 W floor
            // still overshoots it by ~13 W (the floor is the ladder's
            // physical limit, not a promise), and must not be flagged.
            .violation_detector(20.0, 2)
            .build();
        fleet.machine_mut(1).set_lost_cap_commands(true);
        while fleet.epochs_run() < fleet.epochs() {
            fleet.step_epoch();
        }
        assert!(fleet.dcm().cap_violating(fleet.dcm().id_at(1).unwrap()));
        assert_eq!(
            fleet.dcm().health(fleet.dcm().id_at(1).unwrap()),
            NodeHealth::Degraded { consecutive_failures: 0 },
            "violating node is held degraded despite clean transactions"
        );
        assert_eq!(fleet.dcm().health(fleet.dcm().id_at(0).unwrap()), NodeHealth::Healthy);
        let report = fleet.finish();
        assert_eq!(report.summaries[1].health, NodeHealth::Degraded { consecutive_failures: 0 });
    }

    #[test]
    fn faulty_links_still_converge_and_dead_nodes_are_shed() {
        let report = FleetBuilder::new()
            .nodes(5)
            .epochs(8)
            .seed(17)
            .faults(FaultSpec::lossy(0.05))
            .dead_node(2)
            .build()
            .run();
        let last = report.records.last().unwrap();
        assert_eq!(last.answered, 4, "dead node never answers");
        assert_eq!(last.unresponsive, 1);
        assert_eq!(report.summaries[2].health, NodeHealth::Unresponsive);
        assert!(report.summaries[2].final_cap_w.is_none());
        // The dead node's share went to the others: 4 caps summing to
        // (close to) the full budget.
        let cap_sum: f64 = last.caps.iter().map(|&(_, w)| w).sum();
        assert!(cap_sum > report.budget_w * 0.99, "{cap_sum} vs {}", report.budget_w);
    }
}
