//! Group power-budget allocation policies (re-exported).
//!
//! The allocation math moved to `capsim-policy` when the pluggable
//! [`capsim_policy::CapPolicy`] layer was extracted — the same rules now
//! double as the group-level half of the default ladder backend. The DCM
//! re-exports them so existing paths (`capsim_dcm::AllocationPolicy`,
//! `capsim_dcm::policy::allocate`) keep working unchanged.

pub use capsim_policy::{allocate, AllocationPolicy};
