//! The manager itself: per-node DCMI transactions, health tracking and
//! group budgeting.
//!
//! Nodes are addressed by opaque [`NodeId`] handles. A node may be
//! registered *with* an owned transport ([`Dcm::register_link`] — the
//! live-threaded topology where each BMC runs on its own thread) or
//! *without* one ([`Dcm::register`] — the lock-step fleet engine, which
//! owns the machines and supplies a pumped [`Transact`] link at each
//! control barrier via the `*_via` methods).
//!
//! Every transaction runs under the manager's [`RetryPolicy`]; outcomes
//! feed per-node [`NodeHealth`], and [`Dcm::plan_allocation`] divides the
//! group budget over *responsive* nodes only — an unresponsive node's
//! share is reallocated to its healthy peers (degraded-mode operation)
//! rather than stranded on a node that cannot hear its cap anyway.

use capsim_ipmi::dcmi::{
    ActivatePowerLimit, ExceptionAction, GetPowerLimit, GetPowerReading, PowerLimit, PowerReading,
    SetPowerLimit,
};
use capsim_ipmi::{
    transact_retry_observed, CompletionCode, IpmiError, Request, Response, RetryPolicy, Transact,
    WireOutcome,
};
use capsim_obs::{EventKind, Obs};

use crate::error::DcmError;
use crate::policy::{allocate, AllocationPolicy};
use capsim_policy::{CapPolicy, GroupDemand};

fn health_label(h: NodeHealth) -> &'static str {
    match h {
        NodeHealth::Healthy => "healthy",
        NodeHealth::Degraded { .. } => "degraded",
        NodeHealth::Unresponsive => "unresponsive",
    }
}

/// Opaque handle to a node registered with a [`Dcm`]. Obtained from
/// [`Dcm::register`]/[`Dcm::register_link`]; there is no public way to
/// fabricate one from a raw index.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    /// The node's position in registration order — for display and for
    /// indexing caller-side parallel arrays, not for calling back into
    /// the manager.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    pub(crate) fn from_index(i: usize) -> NodeId {
        NodeId(u32::try_from(i).expect("fleet fits in u32"))
    }
}

/// Management-plane health of a node, as seen by the DCM.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeHealth {
    /// Last transaction succeeded.
    Healthy,
    /// Recent transactions failed (transiently); the node is still
    /// budgeted but flagged.
    Degraded { consecutive_failures: u32 },
    /// Failures reached [`Dcm::unresponsive_after`]; the node is excluded
    /// from budgeting until it answers again.
    Unresponsive,
}

impl NodeHealth {
    /// True when the node participates in budget allocation.
    pub fn is_responsive(self) -> bool {
        !matches!(self, NodeHealth::Unresponsive)
    }
}

struct NodeEntry {
    name: String,
    link: Option<Box<dyn Transact + Send>>,
    health: NodeHealth,
    consecutive_failures: u32,
    last_cap_w: Option<f64>,
    /// Set by fleet-side cap-violation detection: the node answers
    /// management traffic but its measured power sits above its cap. Held
    /// at [`NodeHealth::Degraded`] (never promoted back to `Healthy` by a
    /// successful transaction) until the violation clears — a node whose
    /// BMC silently drops cap commands looks perfectly healthy on the
    /// wire.
    cap_violating: bool,
}

/// A cap push as captured on a group manager's worker: the *Set Power
/// Limit* outcome plus — only when the set came back with an OK
/// completion — the *Activate Power Limit* outcome, mirroring the
/// short-circuit in [`Dcm::cap_node_via`]. Absorbed at the root via
/// [`Dcm::absorb_cap_push`].
#[derive(Debug)]
pub struct CapPushOutcome {
    pub set: WireOutcome,
    pub activate: Option<WireOutcome>,
}

impl CapPushOutcome {
    /// Run the Set+Activate sequence over `link`, capturing both
    /// outcomes without touching any shared manager state.
    pub fn capture(
        link: &mut dyn Transact,
        retry: &RetryPolicy,
        limit: PowerLimit,
    ) -> CapPushOutcome {
        let set = WireOutcome::capture(link, retry, &move |seq| SetPowerLimit(limit).request(seq));
        let set_ok = matches!(&set.result, Ok(r) if r.completion == CompletionCode::Ok);
        let activate = set_ok.then(|| {
            WireOutcome::capture(link, retry, &|seq| {
                ActivatePowerLimit { activate: true }.request(seq)
            })
        });
        CapPushOutcome { set, activate }
    }
}

/// The Data Center Manager.
pub struct Dcm {
    nodes: Vec<NodeEntry>,
    /// Caps below this are pointless (the node's throttle floor).
    pub floor_w: f64,
    /// DCMI correction time pushed with every limit (how long a node may
    /// exceed its cap before the exception action fires).
    pub correction_ms: u32,
    /// Retry budget for every management transaction.
    pub retry: RetryPolicy,
    /// Consecutive failed transactions before a node is declared
    /// [`NodeHealth::Unresponsive`].
    pub unresponsive_after: u32,
    /// Manager-side observability: transaction retry/timeout counters,
    /// health-transition events, budgeting metrics. Disabled by default.
    pub obs: Obs,
    /// Simulated time stamped onto manager-side events; the DCM has no
    /// clock of its own, so the driving loop advances this (see
    /// [`Dcm::set_obs_time_s`]).
    obs_now_s: f64,
}

impl Dcm {
    pub fn new() -> Self {
        Dcm {
            nodes: Vec::new(),
            floor_w: 110.0,
            correction_ms: 1000,
            retry: RetryPolicy::default(),
            unresponsive_after: 3,
            obs: Obs::disabled(),
            obs_now_s: 0.0,
        }
    }

    /// Advance the simulated clock used to stamp manager-side events.
    pub fn set_obs_time_s(&mut self, t_s: f64) {
        self.obs_now_s = t_s;
    }

    /// Register a node without an owned transport. Use the `*_via`
    /// methods with a caller-supplied [`Transact`] link (the lock-step
    /// fleet engine does this at every control barrier).
    pub fn register(&mut self, name: impl Into<String>) -> NodeId {
        self.push(name.into(), None)
    }

    /// Register a node with an owned transport (live topology: the BMC is
    /// serviced elsewhere, e.g. on its own thread).
    pub fn register_link(
        &mut self,
        name: impl Into<String>,
        link: impl Transact + Send + 'static,
    ) -> NodeId {
        self.push(name.into(), Some(Box::new(link)))
    }

    fn push(&mut self, name: String, link: Option<Box<dyn Transact + Send>>) -> NodeId {
        self.nodes.push(NodeEntry {
            name,
            link,
            health: NodeHealth::Healthy,
            consecutive_failures: 0,
            last_cap_w: None,
            cap_violating: false,
        });
        NodeId::from_index(self.nodes.len() - 1)
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All node handles, in registration order.
    pub fn node_ids(&self) -> Vec<NodeId> {
        (0..self.nodes.len()).map(NodeId::from_index).collect()
    }

    /// The handle at a registration position (parallel-array bridging).
    pub fn id_at(&self, index: usize) -> Option<NodeId> {
        (index < self.nodes.len()).then(|| NodeId::from_index(index))
    }

    fn entry(&self, node: NodeId) -> Result<&NodeEntry, DcmError> {
        self.nodes.get(node.index()).ok_or(DcmError::UnknownNode(node))
    }

    pub fn node_name(&self, node: NodeId) -> &str {
        &self.nodes[node.index()].name
    }

    /// Management-plane health of a node.
    pub fn health(&self, node: NodeId) -> NodeHealth {
        self.nodes[node.index()].health
    }

    /// The cap most recently pushed to a node, if any.
    pub fn last_cap_w(&self, node: NodeId) -> Option<f64> {
        self.nodes[node.index()].last_cap_w
    }

    /// True when fleet-side detection has flagged the node as violating
    /// its cap (see [`Dcm::set_cap_violating`]).
    pub fn cap_violating(&self, node: NodeId) -> bool {
        self.nodes[node.index()].cap_violating
    }

    /// Flag (or clear) a node as violating its power cap despite healthy
    /// management traffic. While flagged, the node is held at
    /// [`NodeHealth::Degraded`] — successful transactions no longer
    /// promote it back to `Healthy` — so budgeting and dashboards see the
    /// misbehaviour. Clearing the flag restores `Healthy` on the next
    /// successful transaction (or immediately, if the hold is the only
    /// thing keeping it degraded).
    pub fn set_cap_violating(&mut self, node: NodeId, violating: bool) {
        let e = &mut self.nodes[node.index()];
        if e.cap_violating == violating {
            return;
        }
        e.cap_violating = violating;
        let old = e.health;
        if violating {
            if matches!(e.health, NodeHealth::Healthy) {
                e.health = NodeHealth::Degraded { consecutive_failures: 0 };
            }
        } else if e.health == (NodeHealth::Degraded { consecutive_failures: 0 }) {
            // Degraded purely by the hold — no real failures outstanding.
            e.health = NodeHealth::Healthy;
        }
        let new = e.health;
        self.note_health_transition(node, old, new);
    }

    /// Handles of all nodes currently participating in budgeting.
    pub fn responsive_nodes(&self) -> Vec<NodeId> {
        (0..self.nodes.len())
            .filter(|&i| self.nodes[i].health.is_responsive())
            .map(NodeId::from_index)
            .collect()
    }

    // ------------------------------------------------------- health plumbing

    fn record_success(&mut self, node: NodeId) {
        let e = &mut self.nodes[node.index()];
        let old = e.health;
        e.consecutive_failures = 0;
        // A cap-violating node is held at Degraded: answering a DCMI
        // command proves the wire works, not that the cap is honoured.
        e.health = if e.cap_violating {
            NodeHealth::Degraded { consecutive_failures: 0 }
        } else {
            NodeHealth::Healthy
        };
        let new = e.health;
        self.note_health_transition(node, old, new);
    }

    fn record_failure(&mut self, node: NodeId) {
        let e = &mut self.nodes[node.index()];
        let old = e.health;
        e.consecutive_failures += 1;
        e.health = if e.consecutive_failures >= self.unresponsive_after.max(1) {
            NodeHealth::Unresponsive
        } else {
            NodeHealth::Degraded { consecutive_failures: e.consecutive_failures }
        };
        let new = e.health;
        self.note_health_transition(node, old, new);
    }

    fn note_health_transition(&mut self, node: NodeId, old: NodeHealth, new: NodeHealth) {
        // Label-level transitions only: Degraded{1}→Degraded{2} is not a
        // state change worth an event.
        if health_label(old) == health_label(new) {
            return;
        }
        self.obs.metrics.inc("dcm.health_transitions");
        self.obs.events.record_for(
            self.obs_now_s,
            Some(node.index() as u32),
            EventKind::HealthChange { from: health_label(old), to: health_label(new) },
        );
    }

    fn wrap_err(&self, node: NodeId, source: IpmiError) -> DcmError {
        DcmError::Ipmi { node, name: self.nodes[node.index()].name.clone(), source }
    }

    /// Run one retried transaction against the node's *owned* link,
    /// updating health from the outcome.
    fn transact_owned(
        &mut self,
        node: NodeId,
        build: &dyn Fn(u8) -> Request,
    ) -> Result<Response, DcmError> {
        self.entry(node)?;
        let retry = self.retry;
        let t_s = self.obs_now_s;
        let e = &mut self.nodes[node.index()];
        let link =
            e.link.as_mut().ok_or_else(|| DcmError::Unlinked { node, name: e.name.clone() })?;
        let out = transact_retry_observed(
            link.as_mut(),
            &retry,
            build,
            &mut self.obs,
            t_s,
            Some(node.index() as u32),
        );
        self.settle(node, out)
    }

    /// Run one retried transaction over a caller-supplied link, updating
    /// health from the outcome.
    fn transact_via(
        &mut self,
        node: NodeId,
        link: &mut dyn Transact,
        build: &dyn Fn(u8) -> Request,
    ) -> Result<Response, DcmError> {
        self.entry(node)?;
        let retry = self.retry;
        let t_s = self.obs_now_s;
        let out = transact_retry_observed(
            link,
            &retry,
            build,
            &mut self.obs,
            t_s,
            Some(node.index() as u32),
        );
        self.settle(node, out)
    }

    fn settle(
        &mut self,
        node: NodeId,
        out: Result<Response, IpmiError>,
    ) -> Result<Response, DcmError> {
        match out {
            Ok(resp) => {
                self.record_success(node);
                Ok(resp)
            }
            Err(e) => {
                self.record_failure(node);
                Err(self.wrap_err(node, e))
            }
        }
    }

    /// Run a caller-defined command sequence over a node's owned link,
    /// updating health from the outcome. The closure sees only the
    /// narrow [`Transact`] interface, never the raw port — this is the
    /// sanctioned replacement for the old `port_mut` escape hatch.
    pub fn with_link<R>(
        &mut self,
        node: NodeId,
        f: impl FnOnce(&mut dyn Transact) -> Result<R, IpmiError>,
    ) -> Result<R, DcmError> {
        self.entry(node)?;
        let e = &mut self.nodes[node.index()];
        let link =
            e.link.as_mut().ok_or_else(|| DcmError::Unlinked { node, name: e.name.clone() })?;
        match f(link.as_mut()) {
            Ok(r) => {
                self.record_success(node);
                Ok(r)
            }
            Err(err) => {
                self.record_failure(node);
                Err(self.wrap_err(node, err))
            }
        }
    }

    // ------------------------------------------------- deferred wire outcomes
    //
    // Sharded lock-step fleets split wire work across group managers: each
    // group runs its shard's transactions on a worker (own link, own BMC,
    // so outcomes cannot depend on the sharding), captures them as
    // [`WireOutcome`]s, and the root absorbs them here serially in
    // canonical node order. The absorb path replays exactly what running
    // the transaction through the manager would have recorded — the same
    // counters, events and health transitions in the same order — so the
    // observability stream is byte-identical whether the fleet ran with
    // one group or fifty.

    /// Replay one captured outcome into observability and health
    /// tracking, exactly as [`transact_retry_observed`] + settling would
    /// have.
    fn absorb(&mut self, node: NodeId, out: WireOutcome) -> Result<Response, DcmError> {
        self.entry(node)?;
        if self.obs.is_enabled() {
            let t_s = self.obs_now_s;
            let n = Some(node.index() as u32);
            self.obs.metrics.inc("ipmi.transactions");
            self.obs.metrics.add("ipmi.attempts", out.attempts as u64);
            if out.attempts > 1 {
                self.obs.metrics.add("ipmi.retries", (out.attempts - 1) as u64);
            }
            match &out.result {
                Ok(_) if out.attempts > 1 => {
                    self.obs.events.record_for(t_s, n, EventKind::Retry { attempts: out.attempts });
                }
                Err(e) if e.is_transient() => {
                    self.obs.metrics.inc("ipmi.timeouts");
                    self.obs.events.record_for(
                        t_s,
                        n,
                        EventKind::Timeout { attempts: out.attempts },
                    );
                }
                _ => {}
            }
        }
        self.settle(node, out.result)
    }

    /// Absorb a captured DCMI *Get Power Reading* poll.
    pub fn absorb_power_poll(
        &mut self,
        node: NodeId,
        out: WireOutcome,
    ) -> Result<PowerReading, DcmError> {
        let resp = self.absorb(node, out)?;
        self.decode_reading(node, resp)
    }

    /// Absorb a captured Set+Activate cap push (see [`CapPushOutcome`]).
    /// On full success the cap is remembered and counted exactly as
    /// [`Dcm::cap_node_via`] would have.
    pub fn absorb_cap_push(
        &mut self,
        node: NodeId,
        watts: f64,
        push: CapPushOutcome,
    ) -> Result<(), DcmError> {
        self.absorb(node, push.set)?.into_ok().map_err(|e| self.wrap_err(node, e))?;
        let activate = push.activate.expect("set succeeded, so activate was issued");
        self.absorb(node, activate)?.into_ok().map_err(|e| self.wrap_err(node, e))?;
        self.nodes[node.index()].last_cap_w = Some(watts);
        self.obs.metrics.inc("dcm.caps_pushed");
        Ok(())
    }

    // ---------------------------------------------------------- transactions

    /// DCMI *Get Power Reading* from one node (owned link).
    pub fn read_power(&mut self, node: NodeId) -> Result<PowerReading, DcmError> {
        let resp = self.transact_owned(node, &|seq| GetPowerReading::request(seq))?;
        self.decode_reading(node, resp)
    }

    /// DCMI *Get Power Reading* over a caller-supplied link.
    pub fn read_power_via(
        &mut self,
        node: NodeId,
        link: &mut dyn Transact,
    ) -> Result<PowerReading, DcmError> {
        let resp = self.transact_via(node, link, &|seq| GetPowerReading::request(seq))?;
        self.decode_reading(node, resp)
    }

    fn decode_reading(&self, node: NodeId, resp: Response) -> Result<PowerReading, DcmError> {
        resp.into_ok().and_then(|p| PowerReading::decode(&p)).map_err(|e| self.wrap_err(node, e))
    }

    /// The DCMI limit this manager pushes for a cap of `watts` (group
    /// managers build the same limit their root would).
    pub fn limit_for(&self, watts: f64) -> PowerLimit {
        PowerLimit {
            limit_w: watts.round() as u16,
            correction_ms: self.correction_ms,
            sampling_s: 1,
            action: ExceptionAction::LogOnly,
        }
    }

    /// Set and activate a cap on one node (owned link).
    pub fn cap_node(&mut self, node: NodeId, watts: f64) -> Result<(), DcmError> {
        let limit = self.limit_for(watts);
        self.transact_owned(node, &move |seq| SetPowerLimit(limit).request(seq))?
            .into_ok()
            .map_err(|e| self.wrap_err(node, e))?;
        self.transact_owned(node, &|seq| ActivatePowerLimit { activate: true }.request(seq))?
            .into_ok()
            .map_err(|e| self.wrap_err(node, e))?;
        self.nodes[node.index()].last_cap_w = Some(watts);
        self.obs.metrics.inc("dcm.caps_pushed");
        Ok(())
    }

    /// Set and activate a cap over a caller-supplied link.
    pub fn cap_node_via(
        &mut self,
        node: NodeId,
        link: &mut dyn Transact,
        watts: f64,
    ) -> Result<(), DcmError> {
        let limit = self.limit_for(watts);
        self.transact_via(node, link, &move |seq| SetPowerLimit(limit).request(seq))?
            .into_ok()
            .map_err(|e| self.wrap_err(node, e))?;
        self.transact_via(node, link, &|seq| ActivatePowerLimit { activate: true }.request(seq))?
            .into_ok()
            .map_err(|e| self.wrap_err(node, e))?;
        self.nodes[node.index()].last_cap_w = Some(watts);
        self.obs.metrics.inc("dcm.caps_pushed");
        Ok(())
    }

    /// Deactivate a node's cap (owned link).
    pub fn uncap_node(&mut self, node: NodeId) -> Result<(), DcmError> {
        self.transact_owned(node, &|seq| ActivatePowerLimit { activate: false }.request(seq))?
            .into_ok()
            .map_err(|e| self.wrap_err(node, e))?;
        self.nodes[node.index()].last_cap_w = None;
        Ok(())
    }

    /// Deactivate a node's cap over a caller-supplied link.
    pub fn uncap_node_via(
        &mut self,
        node: NodeId,
        link: &mut dyn Transact,
    ) -> Result<(), DcmError> {
        self.transact_via(node, link, &|seq| ActivatePowerLimit { activate: false }.request(seq))?
            .into_ok()
            .map_err(|e| self.wrap_err(node, e))?;
        self.nodes[node.index()].last_cap_w = None;
        Ok(())
    }

    /// Read back the limit stored on a node (owned link).
    pub fn node_limit(&mut self, node: NodeId) -> Result<PowerLimit, DcmError> {
        let resp = self.transact_owned(node, &|seq| GetPowerLimit::request(seq))?;
        resp.into_ok().and_then(|p| PowerLimit::decode(&p)).map_err(|e| self.wrap_err(node, e))
    }

    /// Read back the limit over a caller-supplied link.
    pub fn node_limit_via(
        &mut self,
        node: NodeId,
        link: &mut dyn Transact,
    ) -> Result<PowerLimit, DcmError> {
        let resp = self.transact_via(node, link, &|seq| GetPowerLimit::request(seq))?;
        resp.into_ok().and_then(|p| PowerLimit::decode(&p)).map_err(|e| self.wrap_err(node, e))
    }

    // ------------------------------------------------------- group budgeting

    /// Divide `budget_w` over the nodes in `demand` (pairs of handle and
    /// measured power) per `policy`. Pure planning — no wire traffic.
    ///
    /// Degraded-mode reallocation falls out of the input: callers pass
    /// demand readings only for nodes that answered, so an unresponsive
    /// node's share flows to its responsive peers automatically.
    pub fn plan_allocation(
        &self,
        budget_w: f64,
        policy: &AllocationPolicy,
        demand: &[(NodeId, f64)],
    ) -> Vec<(NodeId, f64)> {
        let demand_w: Vec<f64> = demand.iter().map(|&(_, w)| w).collect();
        let policy = match policy {
            // Priority vectors are fleet-wide; project onto the answering
            // subset so the allocator sees one priority per node. Nodes
            // past the end of the table rank last — a table that lags a
            // node join degrades instead of panicking.
            AllocationPolicy::Priority(p) => AllocationPolicy::Priority(
                demand
                    .iter()
                    .map(|&(id, _)| p.get(id.index()).copied().unwrap_or(u8::MAX))
                    .collect(),
            ),
            other => other.clone(),
        };
        let caps = allocate(&policy, budget_w, &demand_w, self.floor_w);
        demand.iter().map(|&(id, _)| id).zip(caps).collect()
    }

    /// Like [`Dcm::plan_allocation`], but through a pluggable
    /// [`CapPolicy`]'s group-level half. The policy sees fleet-wide node
    /// indices alongside the demand, so identity-keyed schemes project
    /// correctly onto a partial answering set. `tails` carries the
    /// per-node p99 completion latency aligned with `demand` — callers
    /// pass an empty slice (or zeros) unless the policy asked for tails
    /// via [`CapPolicy::wants_tail`], so latency-blind backends never see
    /// (or depend on) observability state.
    pub fn plan_with(
        &self,
        budget_w: f64,
        policy: &dyn CapPolicy,
        demand: &[(NodeId, f64)],
        tails: &[f64],
    ) -> Vec<(NodeId, f64)> {
        let group: Vec<GroupDemand> = demand
            .iter()
            .enumerate()
            .map(|(i, &(id, w))| GroupDemand {
                node: id.index() as u32,
                demand_w: w,
                tail_ms: tails.get(i).copied().unwrap_or(0.0),
            })
            .collect();
        let caps = policy.group_allocate(budget_w, &group, self.floor_w);
        demand.iter().map(|&(id, _)| id).zip(caps).collect()
    }

    /// One full budgeting round over owned links: read power from every
    /// responsive node, reallocate `budget_w` over the nodes that
    /// answered, and push the resulting caps. Per-node failures update
    /// health and shrink the allocation set; they do not abort the round.
    /// Returns the caps pushed.
    pub fn apply_group_budget(
        &mut self,
        budget_w: f64,
        policy: &AllocationPolicy,
    ) -> Result<Vec<(NodeId, f64)>, DcmError> {
        let mut demand = Vec::with_capacity(self.nodes.len());
        for node in self.node_ids() {
            // Probe even unresponsive nodes (cheaply they may have come
            // back), but their failure must not burn the whole retry
            // budget every round.
            match self.read_power(node) {
                Ok(r) => demand.push((node, r.current_w as f64)),
                Err(e) if e.is_transient() => {}
                Err(DcmError::Ipmi { source: IpmiError::ChannelClosed, .. }) => {}
                Err(e) => return Err(e),
            }
        }
        let caps = self.plan_allocation(budget_w, policy, &demand);
        let mut pushed = Vec::with_capacity(caps.len());
        for (node, cap) in caps {
            match self.cap_node(node, cap) {
                Ok(()) => pushed.push((node, cap)),
                Err(e) if e.is_transient() => {}
                Err(DcmError::Ipmi { source: IpmiError::ChannelClosed, .. }) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(pushed)
    }
}

impl Default for Dcm {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capsim_cpu::PStateTable;
    use capsim_ipmi::LanChannel;
    use capsim_mem::MemReconfig;
    use capsim_node::bmc::{Bmc, BmcTelemetry};
    use capsim_node::ThrottleLadder;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    /// Run a standalone BMC service loop on a thread until `stop` is set.
    fn spawn_bmc(
        power_w: f64,
        port: capsim_ipmi::BmcPort,
        stop: Arc<AtomicBool>,
    ) -> std::thread::JoinHandle<Bmc> {
        std::thread::spawn(move || {
            let ladder = ThrottleLadder::e5_2680(&PStateTable::e5_2680(), MemReconfig::full());
            let mut bmc = Bmc::new(ladder);
            bmc.control(BmcTelemetry {
                window_avg_w: power_w,
                run_avg_w: power_w,
                min_w: power_w,
                max_w: power_w,
                die_temp_c: 60.0,
                inlet_temp_c: 27.0,
                ..BmcTelemetry::default()
            });
            while !stop.load(Ordering::Relaxed) {
                if bmc.serve(&port).is_err() {
                    break; // manager hung up
                }
                std::thread::yield_now();
            }
            bmc
        })
    }

    #[test]
    fn manager_reads_power_and_pushes_caps_over_ipmi() {
        let stop = Arc::new(AtomicBool::new(false));
        let mut dcm = Dcm::new();
        let mut handles = Vec::new();
        let mut ids = Vec::new();
        for (i, w) in [150.0, 130.0].into_iter().enumerate() {
            let (mgr, bmc_port) = LanChannel::pair();
            ids.push(dcm.register_link(format!("node{i}"), mgr));
            handles.push(spawn_bmc(w, bmc_port, stop.clone()));
        }
        let r0 = dcm.read_power(ids[0]).unwrap();
        assert_eq!(r0.current_w, 150);
        let caps = dcm.apply_group_budget(300.0, &AllocationPolicy::ProportionalToDemand).unwrap();
        assert_eq!(caps.len(), 2);
        assert!(caps[0].1 > caps[1].1);
        // The cap is stored and active on the node, and remembered.
        let limit = dcm.node_limit(ids[0]).unwrap();
        assert_eq!(limit.limit_w, caps[0].1.round() as u16);
        assert_eq!(dcm.last_cap_w(ids[0]), Some(caps[0].1));
        assert_eq!(dcm.health(ids[0]), NodeHealth::Healthy);
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            let bmc = h.join().unwrap();
            assert!(bmc.cap().is_some(), "cap active after group budgeting");
        }
    }

    #[test]
    fn uncap_deactivates() {
        let stop = Arc::new(AtomicBool::new(false));
        let (mgr, bmc_port) = LanChannel::pair();
        let mut dcm = Dcm::new();
        let id = dcm.register_link("n", mgr);
        let h = spawn_bmc(150.0, bmc_port, stop.clone());
        dcm.cap_node(id, 140.0).unwrap();
        dcm.uncap_node(id).unwrap();
        assert_eq!(dcm.last_cap_w(id), None);
        stop.store(true, Ordering::Relaxed);
        let bmc = h.join().unwrap();
        assert!(bmc.cap().is_none());
    }

    #[test]
    fn dead_node_surfaces_channel_errors_with_identity() {
        let (mgr, bmc_port) = LanChannel::pair();
        drop(bmc_port);
        let mut dcm = Dcm::new();
        let id = dcm.register_link("ghost", mgr);
        let err = dcm.read_power(id).unwrap_err();
        assert_eq!(err.node(), Some(id));
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn repeated_failures_degrade_then_mark_unresponsive() {
        let mut dcm = Dcm::new();
        dcm.retry = RetryPolicy::once();
        let (mut mgr, _dead) = LanChannel::faulty_pair(capsim_ipmi::FaultSpec::dead(), 1);
        mgr.set_timeout(std::time::Duration::from_millis(1));
        let id = dcm.register_link("flaky", mgr);
        assert!(dcm.read_power(id).is_err());
        assert_eq!(dcm.health(id), NodeHealth::Degraded { consecutive_failures: 1 });
        assert!(dcm.read_power(id).is_err());
        assert!(dcm.read_power(id).is_err());
        assert_eq!(dcm.health(id), NodeHealth::Unresponsive);
        assert!(dcm.responsive_nodes().is_empty());
    }

    #[test]
    fn unlinked_node_requires_a_supplied_transport() {
        let mut dcm = Dcm::new();
        let id = dcm.register("lockstep-node");
        match dcm.read_power(id) {
            Err(DcmError::Unlinked { node, .. }) => assert_eq!(node, id),
            other => panic!("expected Unlinked, got {other:?}"),
        }
    }

    #[test]
    fn plan_allocation_reallocates_around_missing_nodes() {
        let mut dcm = Dcm::new();
        let a = dcm.register("a");
        let b = dcm.register("b");
        let c = dcm.register("c");
        // Node b did not answer this round: its share flows to a and c.
        let caps =
            dcm.plan_allocation(400.0, &AllocationPolicy::Uniform, &[(a, 150.0), (c, 150.0)]);
        assert_eq!(caps.len(), 2);
        assert_eq!(caps[0], (a, 200.0));
        assert_eq!(caps[1], (c, 200.0));
        let _ = b;
    }

    #[test]
    fn plan_allocation_projects_priorities_onto_answering_nodes() {
        let mut dcm = Dcm::new();
        let a = dcm.register("a");
        let b = dcm.register("b");
        let c = dcm.register("c");
        let _ = a;
        // Only b (priority 0) and c (priority 2) answered.
        let caps = dcm.plan_allocation(
            400.0,
            &AllocationPolicy::Priority(vec![1, 0, 2]),
            &[(b, 155.0), (c, 155.0)],
        );
        let cap_b = caps.iter().find(|&&(id, _)| id == b).unwrap().1;
        let cap_c = caps.iter().find(|&&(id, _)| id == c).unwrap().1;
        assert!(cap_b > cap_c, "higher priority gets more: {cap_b} vs {cap_c}");
    }

    #[test]
    fn cap_violating_nodes_are_held_degraded_until_cleared() {
        let stop = Arc::new(AtomicBool::new(false));
        let (mgr, bmc_port) = LanChannel::pair();
        let mut dcm = Dcm::new();
        let id = dcm.register_link("violator", mgr);
        let h = spawn_bmc(150.0, bmc_port, stop.clone());

        dcm.set_cap_violating(id, true);
        assert!(dcm.cap_violating(id));
        assert_eq!(dcm.health(id), NodeHealth::Degraded { consecutive_failures: 0 });
        // A successful transaction must NOT promote the node back.
        dcm.read_power(id).unwrap();
        assert_eq!(dcm.health(id), NodeHealth::Degraded { consecutive_failures: 0 });
        // Still responsive: a violating node keeps its budget share (it
        // needs the cap pushed at it, after all), it is just not Healthy.
        assert_eq!(dcm.responsive_nodes(), vec![id]);

        dcm.set_cap_violating(id, false);
        assert!(!dcm.cap_violating(id));
        assert_eq!(dcm.health(id), NodeHealth::Healthy);
        dcm.read_power(id).unwrap();
        assert_eq!(dcm.health(id), NodeHealth::Healthy);

        stop.store(true, Ordering::Relaxed);
        h.join().unwrap();
    }
}
