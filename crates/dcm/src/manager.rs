//! The manager itself: per-node DCMI transactions and group budgeting.

use capsim_ipmi::dcmi::{
    ActivatePowerLimit, ExceptionAction, GetPowerLimit, GetPowerReading, PowerLimit, PowerReading,
    SetPowerLimit,
};
use capsim_ipmi::{IpmiError, ManagerPort};

use crate::policy::{allocate, AllocationPolicy};

/// A node registered with the manager.
pub struct NodeHandle {
    pub name: String,
    port: ManagerPort,
}

/// The Data Center Manager.
pub struct Dcm {
    nodes: Vec<NodeHandle>,
    /// Caps below this are pointless (the node's throttle floor).
    pub floor_w: f64,
    /// DCMI correction time pushed with every limit (how long a node may
    /// exceed its cap before the exception action fires).
    pub correction_ms: u32,
}

impl Dcm {
    pub fn new() -> Self {
        Dcm { nodes: Vec::new(), floor_w: 110.0, correction_ms: 1000 }
    }

    /// Register a node's management port; returns its index.
    pub fn add_node(&mut self, name: impl Into<String>, port: ManagerPort) -> usize {
        self.nodes.push(NodeHandle { name: name.into(), port });
        self.nodes.len() - 1
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    pub fn node_name(&self, idx: usize) -> &str {
        &self.nodes[idx].name
    }

    /// Direct access to a node's management port (the monitoring layer
    /// issues its own command sequences).
    pub fn port_mut(&mut self, idx: usize) -> &mut ManagerPort {
        &mut self.nodes[idx].port
    }

    /// DCMI *Get Power Reading* from one node.
    pub fn read_power(&mut self, idx: usize) -> Result<PowerReading, IpmiError> {
        let node = &mut self.nodes[idx];
        let seq = node.port.next_seq();
        let resp = node.port.transact(&GetPowerReading::request(seq))?;
        PowerReading::decode(&resp.into_ok()?)
    }

    /// Set and activate a cap on one node.
    pub fn cap_node(&mut self, idx: usize, watts: f64) -> Result<(), IpmiError> {
        let node = &mut self.nodes[idx];
        let limit = PowerLimit {
            limit_w: watts.round() as u16,
            correction_ms: self.correction_ms,
            sampling_s: 1,
            action: ExceptionAction::LogOnly,
        };
        let seq = node.port.next_seq();
        node.port.transact(&SetPowerLimit(limit).request(seq))?.into_ok()?;
        let seq = node.port.next_seq();
        node.port.transact(&ActivatePowerLimit { activate: true }.request(seq))?.into_ok()?;
        Ok(())
    }

    /// Deactivate a node's cap.
    pub fn uncap_node(&mut self, idx: usize) -> Result<(), IpmiError> {
        let node = &mut self.nodes[idx];
        let seq = node.port.next_seq();
        node.port.transact(&ActivatePowerLimit { activate: false }.request(seq))?.into_ok()?;
        Ok(())
    }

    /// Read back the limit stored on a node.
    pub fn node_limit(&mut self, idx: usize) -> Result<PowerLimit, IpmiError> {
        let node = &mut self.nodes[idx];
        let seq = node.port.next_seq();
        let resp = node.port.transact(&GetPowerLimit::request(seq))?;
        PowerLimit::decode(&resp.into_ok()?)
    }

    /// Divide `budget_w` across all nodes per `policy` (using fresh power
    /// readings as demand) and push the resulting caps. Returns the caps.
    pub fn apply_group_budget(
        &mut self,
        budget_w: f64,
        policy: &AllocationPolicy,
    ) -> Result<Vec<f64>, IpmiError> {
        let mut demand = Vec::with_capacity(self.nodes.len());
        for i in 0..self.nodes.len() {
            demand.push(self.read_power(i)?.current_w as f64);
        }
        let caps = allocate(policy, budget_w, &demand, self.floor_w);
        for (i, &cap) in caps.iter().enumerate() {
            self.cap_node(i, cap)?;
        }
        Ok(caps)
    }
}

impl Default for Dcm {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capsim_cpu::PStateTable;
    use capsim_ipmi::LanChannel;
    use capsim_mem::MemReconfig;
    use capsim_node::bmc::{Bmc, BmcTelemetry};
    use capsim_node::ThrottleLadder;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    /// Run a standalone BMC service loop on a thread until `stop` is set.
    fn spawn_bmc(
        power_w: f64,
        port: capsim_ipmi::BmcPort,
        stop: Arc<AtomicBool>,
    ) -> std::thread::JoinHandle<Bmc> {
        std::thread::spawn(move || {
            let ladder = ThrottleLadder::e5_2680(&PStateTable::e5_2680(), MemReconfig::full());
            let mut bmc = Bmc::new(ladder);
            bmc.control(BmcTelemetry {
                window_avg_w: power_w,
                run_avg_w: power_w,
                min_w: power_w,
                max_w: power_w,
                die_temp_c: 60.0,
                inlet_temp_c: 27.0,
                now_ms: 0.0,
            });
            while !stop.load(Ordering::Relaxed) {
                bmc.serve(&port).unwrap();
                std::thread::yield_now();
            }
            bmc
        })
    }

    #[test]
    fn manager_reads_power_and_pushes_caps_over_ipmi() {
        let stop = Arc::new(AtomicBool::new(false));
        let mut dcm = Dcm::new();
        let mut handles = Vec::new();
        for (i, w) in [150.0, 130.0].into_iter().enumerate() {
            let (mgr, bmc_port) = LanChannel::pair();
            dcm.add_node(format!("node{i}"), mgr);
            handles.push(spawn_bmc(w, bmc_port, stop.clone()));
        }
        let r0 = dcm.read_power(0).unwrap();
        assert_eq!(r0.current_w, 150);
        let caps = dcm.apply_group_budget(300.0, &AllocationPolicy::ProportionalToDemand).unwrap();
        assert_eq!(caps.len(), 2);
        assert!(caps[0] > caps[1]);
        // The cap is stored and active on the node.
        let limit = dcm.node_limit(0).unwrap();
        assert_eq!(limit.limit_w, caps[0].round() as u16);
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            let bmc = h.join().unwrap();
            assert!(bmc.cap().is_some(), "cap active after group budgeting");
        }
    }

    #[test]
    fn uncap_deactivates() {
        let stop = Arc::new(AtomicBool::new(false));
        let (mgr, bmc_port) = LanChannel::pair();
        let mut dcm = Dcm::new();
        dcm.add_node("n", mgr);
        let h = spawn_bmc(150.0, bmc_port, stop.clone());
        dcm.cap_node(0, 140.0).unwrap();
        dcm.uncap_node(0).unwrap();
        stop.store(true, Ordering::Relaxed);
        let bmc = h.join().unwrap();
        assert!(bmc.cap().is_none());
    }

    #[test]
    fn dead_node_surfaces_channel_errors() {
        let (mgr, bmc_port) = LanChannel::pair();
        drop(bmc_port);
        let mut dcm = Dcm::new();
        dcm.add_node("ghost", mgr);
        assert!(dcm.read_power(0).is_err());
    }
}
