//! Typed fault plans: what breaks, where, and when.
//!
//! A [`FaultPlan`] is a list of [`FaultWindow`]s — (node, start, end,
//! kind) — over simulated time. Plans are data, not behaviour: the runner
//! injects them at epoch boundaries, the invariant checker uses them to
//! exempt declared fault intervals from cap compliance, and
//! [`FaultPlan::to_json`] serializes them into reproducers. Randomized
//! plans derive entirely from a seed through the workspace splitmix64
//! mixer, so a reproducer's seed regenerates its plan exactly.

use capsim_ipmi::splitmix64;

/// One kind of injected fault.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// Power sensor reads a constant regardless of real power.
    SensorStuck { watts: f64 },
    /// Power sensor drifts linearly from the true reading.
    SensorDrift { watts_per_s: f64 },
    /// Power sensor spikes to `watts` every `period_ticks` control ticks.
    SensorSpike { watts: f64, period_ticks: u32 },
    /// Power sensor reads zero (dead sensor) — trips the BMC failsafe.
    SensorDropout,
    /// The whole telemetry block freezes (controller-side staleness);
    /// the BMC's watchdog sees a non-advancing clock and fails safe.
    StaleTelemetry,
    /// The BMC acks SET_POWER_LIMIT / ACTIVATE on the wire but never
    /// commits them — the silent failure only fleet-side violation
    /// detection can see.
    LostCapCommands,
    /// BMC firmware crash: volatile control state is lost, the SEL and
    /// persistent cap survive, and the watchdog reboots the firmware
    /// after `dead_s` of simulated time.
    BmcCrash { dead_s: f64 },
}

impl FaultKind {
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::SensorStuck { .. } => "sensor_stuck",
            FaultKind::SensorDrift { .. } => "sensor_drift",
            FaultKind::SensorSpike { .. } => "sensor_spike",
            FaultKind::SensorDropout => "sensor_dropout",
            FaultKind::StaleTelemetry => "stale_telemetry",
            FaultKind::LostCapCommands => "lost_cap_commands",
            FaultKind::BmcCrash { .. } => "bmc_crash",
        }
    }

    fn json_params(&self) -> String {
        match self {
            FaultKind::SensorStuck { watts } => format!(",\"watts\":{watts}"),
            FaultKind::SensorDrift { watts_per_s } => format!(",\"watts_per_s\":{watts_per_s}"),
            FaultKind::SensorSpike { watts, period_ticks } => {
                format!(",\"watts\":{watts},\"period_ticks\":{period_ticks}")
            }
            FaultKind::BmcCrash { dead_s } => format!(",\"dead_s\":{dead_s}"),
            _ => String::new(),
        }
    }
}

/// One fault, on one node, over one window of simulated time.
///
/// For [`FaultKind::BmcCrash`] the window is informational — the crash
/// fires once at `start_s` and the watchdog ends it — so `end_s` should
/// be `start_s + dead_s` (what [`FaultPlan::window`] enforces is only
/// `end_s >= start_s`).
#[derive(Clone, Debug, PartialEq)]
pub struct FaultWindow {
    pub node: usize,
    pub start_s: f64,
    pub end_s: f64,
    pub kind: FaultKind,
}

impl FaultWindow {
    /// Does this window (extended by `grace_s` for post-fault recovery)
    /// overlap the interval `[from_s, to_s)`?
    pub fn overlaps(&self, from_s: f64, to_s: f64, grace_s: f64) -> bool {
        self.start_s < to_s && from_s < self.end_s + grace_s
    }

    pub fn to_json(&self) -> String {
        format!(
            "{{\"node\":{},\"start_s\":{},\"end_s\":{},\"kind\":\"{}\"{}}}",
            self.node,
            self.start_s,
            self.end_s,
            self.kind.name(),
            self.kind.json_params()
        )
    }
}

/// A schedule of fault windows over one fleet run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    pub windows: Vec<FaultWindow>,
}

impl FaultPlan {
    /// The empty plan (a chaos run degenerates to a plain fleet run).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Append a window (builder style).
    pub fn window(mut self, node: usize, start_s: f64, end_s: f64, kind: FaultKind) -> FaultPlan {
        assert!(end_s >= start_s, "fault window must not end before it starts");
        self.windows.push(FaultWindow { node, start_s, end_s, kind });
        self
    }

    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// True when cap compliance is exempt over `[from_s, to_s)`: some
    /// declared window (plus recovery grace) overlaps it.
    ///
    /// Exemption is deliberately fleet-wide, not per-node: any fault that
    /// distorts one node's telemetry or availability also distorts the
    /// manager's *allocation* — a dropped-out sensor reads 0 W, so every
    /// peer's budget share shifts. Compliance is only a meaningful
    /// promise while the whole declared plan is quiet.
    pub fn exempts(&self, from_s: f64, to_s: f64, grace_s: f64) -> bool {
        self.windows.iter().any(|w| w.overlaps(from_s, to_s, grace_s))
    }

    /// A seeded random plan over `nodes` nodes and `horizon_s` of
    /// simulated time: 1–3 windows, each starting in the first 60% of the
    /// horizon and ending with enough room left for recovery.
    pub fn randomized(seed: u64, nodes: usize, horizon_s: f64) -> FaultPlan {
        assert!(nodes > 0 && horizon_s > 0.0);
        let unit = |x: u64| (x >> 11) as f64 / (1u64 << 53) as f64;
        let count = 1 + (splitmix64(seed, 0x9a1a) % 3) as usize;
        let mut plan = FaultPlan::none();
        for w in 0..count as u64 {
            let r = |salt: u64| splitmix64(seed, (w + 1).wrapping_mul(0x1_0000) ^ salt);
            let node = (r(0x01) % nodes as u64) as usize;
            let start_s = (0.1 + 0.5 * unit(r(0x02))) * horizon_s;
            let dur_s = (0.05 + 0.25 * unit(r(0x03))) * horizon_s;
            let end_s = (start_s + dur_s).min(0.9 * horizon_s);
            let kind = match r(0x04) % 7 {
                0 => FaultKind::SensorStuck { watts: 80.0 + 120.0 * unit(r(0x05)) },
                1 => FaultKind::SensorDrift { watts_per_s: (unit(r(0x05)) - 0.5) * 40.0 },
                2 => FaultKind::SensorSpike {
                    watts: 200.0 + 200.0 * unit(r(0x05)),
                    period_ticks: 2 + (r(0x06) % 8) as u32,
                },
                3 => FaultKind::SensorDropout,
                4 => FaultKind::StaleTelemetry,
                5 => FaultKind::LostCapCommands,
                _ => {
                    let dead_s = (0.05 + 0.1 * unit(r(0x05))) * horizon_s;
                    plan = plan.window(
                        node,
                        start_s,
                        start_s + dead_s,
                        FaultKind::BmcCrash { dead_s },
                    );
                    continue;
                }
            };
            plan = plan.window(node, start_s, end_s, kind);
        }
        plan
    }

    pub fn to_json(&self) -> String {
        let windows: Vec<String> = self.windows.iter().map(|w| w.to_json()).collect();
        format!("[{}]", windows.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn randomized_plans_are_seed_deterministic_and_bounded() {
        for seed in 0..50u64 {
            let a = FaultPlan::randomized(seed, 4, 10.0);
            let b = FaultPlan::randomized(seed, 4, 10.0);
            assert_eq!(a, b, "same seed, same plan");
            assert!((1..=3).contains(&a.windows.len()));
            for w in &a.windows {
                assert!(w.node < 4);
                assert!(w.start_s >= 0.0 && w.end_s >= w.start_s);
                assert!(w.end_s <= 10.0, "window must end inside the horizon: {w:?}");
            }
        }
        assert_ne!(
            FaultPlan::randomized(1, 4, 10.0),
            FaultPlan::randomized(2, 4, 10.0),
            "different seeds should explore different plans"
        );
    }

    #[test]
    fn exemption_covers_windows_plus_grace_fleet_wide() {
        let plan = FaultPlan::none().window(1, 10.0, 15.0, FaultKind::SensorDropout);
        assert!(!plan.exempts(0.0, 10.0, 1.0), "before the window");
        assert!(plan.exempts(10.0, 11.0, 1.0), "inside the window");
        assert!(plan.exempts(15.5, 16.0, 1.0), "inside the grace tail");
        assert!(!plan.exempts(16.0, 17.0, 1.0), "after window + grace");
        // Node identity is ignored: the exemption is fleet-wide.
        assert!(plan.exempts(12.0, 13.0, 0.0));
    }

    #[test]
    fn plans_serialize_to_json() {
        let plan = FaultPlan::none().window(1, 10.0, 15.0, FaultKind::SensorDropout).window(
            2,
            20.0,
            23.0,
            FaultKind::BmcCrash { dead_s: 3.0 },
        );
        let json = plan.to_json();
        assert_eq!(
            json,
            "[{\"node\":1,\"start_s\":10,\"end_s\":15,\"kind\":\"sensor_dropout\"},\
             {\"node\":2,\"start_s\":20,\"end_s\":23,\"kind\":\"bmc_crash\",\"dead_s\":3}]"
        );
    }
}
