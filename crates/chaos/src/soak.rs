//! Randomized soak: run seeded random fault plans until an invariant
//! breaks, then shrink the failure to a minimal JSON reproducer.
//!
//! Every soak run derives from `SoakConfig::seed` through splitmix64, so
//! a soak failure names the exact scenario seed that broke — and the
//! greedy shrinker then drops fault windows one at a time, keeping a
//! window only if removing it makes the violation disappear. The result
//! is the smallest declared plan that still reproduces the violation,
//! serialized with everything needed to replay it.

use capsim_ipmi::splitmix64;

use crate::invariant::Violation;
use crate::plan::FaultPlan;
use crate::runner::{check, ChaosScenario};

/// Soak parameters: how many randomized runs, over what fleet shape.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SoakConfig {
    pub runs: u32,
    pub nodes: usize,
    pub epochs: u32,
    pub seed: u64,
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig { runs: 8, nodes: 3, epochs: 10, seed: 0xC14A05 }
    }
}

/// A minimal, replayable description of a soak failure.
#[derive(Clone, Debug, PartialEq)]
pub struct Reproducer {
    /// The per-run seed (regenerates machines, links and the original
    /// plan; the shrunk plan is carried explicitly in `scenario`).
    pub seed: u64,
    pub scenario: ChaosScenario,
    pub violations: Vec<Violation>,
}

impl Reproducer {
    pub fn to_json(&self) -> String {
        let violations: Vec<String> = self.violations.iter().map(|v| v.to_json()).collect();
        format!(
            "{{\"seed\":{},\"scenario\":{},\"violations\":[{}]}}",
            self.seed,
            self.scenario.to_json(),
            violations.join(",")
        )
    }
}

/// The soak verdict: how many runs completed, and the shrunk reproducer
/// of the first failure (None = everything green).
#[derive(Clone, Debug, PartialEq)]
pub struct SoakResult {
    pub runs: u32,
    pub failure: Option<Reproducer>,
}

impl SoakResult {
    pub fn ok(&self) -> bool {
        self.failure.is_none()
    }
}

/// Greedily shrink a failing scenario's fault plan: drop each window in
/// turn, keep the drop whenever the invariants still fail without it.
/// Returns the minimal reproducer (possibly with an empty plan, if the
/// violation does not depend on the declared faults at all).
pub fn shrink(mut scenario: ChaosScenario, mut violations: Vec<Violation>) -> Reproducer {
    let mut i = 0;
    while i < scenario.plan.windows.len() {
        let mut candidate = scenario.clone();
        candidate.plan.windows.remove(i);
        let rep = check(&candidate);
        if rep.violations.is_empty() {
            // This window is load-bearing for the failure: keep it.
            i += 1;
        } else {
            scenario = candidate;
            violations = rep.violations;
        }
    }
    Reproducer { seed: scenario.seed, scenario, violations }
}

/// Run `cfg.runs` randomized chaos scenarios. Stops at the first
/// invariant violation and returns its shrunk reproducer.
pub fn soak(cfg: &SoakConfig) -> SoakResult {
    for run in 0..cfg.runs {
        let seed = splitmix64(cfg.seed, run as u64);
        let mut scenario = ChaosScenario::fast(seed, cfg.nodes, cfg.epochs);
        scenario.name = format!("soak-{run}");
        scenario.plan = FaultPlan::randomized(seed, cfg.nodes, scenario.horizon_s());
        let report = check(&scenario);
        if !report.violations.is_empty() {
            return SoakResult {
                runs: run + 1,
                failure: Some(shrink(scenario, report.violations)),
            };
        }
    }
    SoakResult { runs: cfg.runs, failure: None }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_short_soak_over_random_plans_stays_green() {
        let result = soak(&SoakConfig { runs: 4, nodes: 3, epochs: 8, seed: 1 });
        assert!(
            result.ok(),
            "reproducer: {}",
            result.failure.as_ref().map(|f| f.to_json()).unwrap_or_default()
        );
        assert_eq!(result.runs, 4);
    }

    #[test]
    fn failures_shrink_to_a_minimal_json_reproducer() {
        // Force a violation that no fault window causes: the shrinker
        // must strip the whole plan and the reproducer must serialize.
        // Enough epochs (and no grace) that the tail after the last
        // fault window is actually checked — randomized windows end by
        // 90% of the horizon, so the final epochs are never exempt.
        let mut scenario = ChaosScenario::fast(9, 2, 12);
        scenario.plan = FaultPlan::randomized(9, 2, scenario.horizon_s());
        scenario.invariants.cap_slack_w = -1e3;
        scenario.invariants.grace_epochs = 0;
        let report = check(&scenario);
        assert!(!report.violations.is_empty());
        let repro = shrink(scenario, report.violations);
        assert!(repro.scenario.plan.is_empty(), "no window is load-bearing for this failure");
        assert!(!repro.violations.is_empty());
        let json = repro.to_json();
        assert!(json.starts_with("{\"seed\":9,"));
        assert!(json.contains("\"violations\":[{\"kind\":\"cap_exceeded\""));
        assert!(json.contains("\"plan\":[]"));
    }
}
