//! Scenario runner: a fleet configuration plus a fault plan, stepped
//! epoch-by-epoch with faults injected at epoch boundaries.
//!
//! The runner owns no simulation logic of its own — it drives
//! [`capsim_dcm::Fleet::step_epoch`] and pokes faults into machines
//! through their public fault-injection API between epochs. Injection
//! happens at the first epoch boundary at or after a window's `start_s`
//! and clears at the first boundary at or after `end_s`, so the realized
//! schedule is the declared schedule quantized to the epoch grid —
//! deterministically, for any seed.

use capsim_dcm::fleet::{Fleet, FleetBuilder, FleetReport};
use capsim_ipmi::sel::SelEntry;
use capsim_node::{LoadKind, Machine, MachineConfig, SensorFault, WorkloadSpec};
use capsim_policy::CapPolicySpec;

use crate::invariant::{check_outcome, InvariantConfig, Violation};
use crate::plan::{FaultKind, FaultPlan};

/// A complete chaos experiment: fleet shape, machine timing, fault plan
/// and invariant tolerances. Serializable ([`ChaosScenario::to_json`])
/// so soak failures can be replayed from a reproducer.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosScenario {
    pub name: String,
    pub nodes: usize,
    pub epochs: u32,
    pub epoch_s: f64,
    pub seed: u64,
    /// Group budget in watts (None: the fleet default of 135 W/node).
    pub budget_w: Option<f64>,
    /// Workload every node is built with (the fleet's round-robin mix by
    /// default; [`WorkloadSpec::Custom`] plugs in request-serving traffic).
    pub workload: WorkloadSpec,
    pub control_period_us: f64,
    pub meter_window_s: f64,
    /// Explicit group-manager shard count (None: the fleet's automatic
    /// topology). Any value must produce byte-identical results — the
    /// traffic bench sweeps this to prove it.
    pub shards: Option<usize>,
    pub plan: FaultPlan,
    pub observe: bool,
    pub invariants: InvariantConfig,
    /// Pluggable capping policy for every node + the group planner
    /// (None: the fleet's stock ladder + `AllocationPolicy` path). Lets
    /// the fault plans double as an adversarial eval for policy backends.
    pub policy: Option<CapPolicySpec>,
}

impl ChaosScenario {
    /// The acceptance scenario: three nodes under a pulsed load at
    /// wall-like timescales — sensor dropout on node 1 at t=10 s (cleared
    /// at 15 s), BMC firmware crash on node 2 at t=20 s with a 3 s dead
    /// time, full recovery by t=30 s. The failsafe rung floor, the
    /// watchdog reboot and the SEL paper trail are all visible in the
    /// merged event log.
    pub fn scripted() -> ChaosScenario {
        ChaosScenario {
            name: "scripted".into(),
            nodes: 3,
            epochs: 32,
            epoch_s: 1.0,
            seed: 42,
            budget_w: None,
            workload: WorkloadSpec::Uniform(LoadKind::Pulse),
            control_period_us: 20_000.0,
            meter_window_s: 0.1,
            shards: None,
            plan: FaultPlan::none().window(1, 10.0, 15.0, FaultKind::SensorDropout).window(
                2,
                20.0,
                23.0,
                FaultKind::BmcCrash { dead_s: 3.0 },
            ),
            observe: true,
            invariants: InvariantConfig::default(),
            policy: None,
        }
    }

    /// A fast scenario at the fleet engine's native timescale (sub-ms
    /// epochs, busy round-robin loads where caps genuinely bind) — the
    /// soak harness's workhorse.
    pub fn fast(seed: u64, nodes: usize, epochs: u32) -> ChaosScenario {
        ChaosScenario {
            name: "fast".into(),
            nodes,
            epochs,
            epoch_s: 5e-4,
            seed,
            budget_w: None,
            workload: WorkloadSpec::RoundRobin,
            control_period_us: 10.0,
            meter_window_s: 2e-4,
            shards: None,
            plan: FaultPlan::none(),
            observe: false,
            invariants: InvariantConfig::default(),
            policy: None,
        }
    }

    /// Run the scenario under a policy backend instead of the stock
    /// ladder path.
    pub fn with_policy(mut self, spec: CapPolicySpec) -> ChaosScenario {
        self.policy = Some(spec);
        self
    }

    /// Simulated length of the run.
    pub fn horizon_s(&self) -> f64 {
        self.epochs as f64 * self.epoch_s
    }

    fn build_fleet(&self, parallel: bool) -> Fleet {
        let mut base = MachineConfig::tiny(0);
        base.control_period_us = self.control_period_us;
        base.meter_window_s = self.meter_window_s;
        let mut b = FleetBuilder::new()
            .nodes(self.nodes)
            .epochs(self.epochs)
            .epoch_s(self.epoch_s)
            .seed(self.seed)
            .machine(base)
            .parallel(parallel)
            .observe(self.observe);
        if let Some(w) = self.budget_w {
            b = b.budget_w(w);
        }
        b = b.workload(self.workload.clone());
        if let Some(k) = self.shards {
            b = b.shards(k);
        }
        if let Some(spec) = &self.policy {
            b = b.cap_policy(spec.build());
        }
        b.build()
    }

    pub fn to_json(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"nodes\":{},\"epochs\":{},\"epoch_s\":{},\"seed\":{},\
             \"budget_w\":{},\"workload\":\"{}\",\"control_period_us\":{},\"meter_window_s\":{},\
             \"policy\":{},\"plan\":{}}}",
            self.name,
            self.nodes,
            self.epochs,
            self.epoch_s,
            self.seed,
            self.budget_w.map_or("null".into(), |w| w.to_string()),
            self.workload.name(),
            self.control_period_us,
            self.meter_window_s,
            self.policy.as_ref().map_or("null".into(), |p| format!("\"{}\"", p.name())),
            self.plan.to_json()
        )
    }
}

/// Everything a chaos run produces: the fleet report plus the raw
/// material the invariant checker needs (wire-audited SELs vs the
/// firmware's ground-truth logs, captured *before* the fleet was torn
/// down).
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosOutcome {
    pub report: FleetReport,
    /// Per node: the SEL as read over the management link at the end of
    /// the run (None when the link itself failed or the node's BMC was
    /// still dead at audit time).
    pub sel_audits: Vec<Option<Vec<SelEntry>>>,
    /// Per node: the firmware's SEL, read out-of-band (ground truth).
    pub sel_truth: Vec<Vec<SelEntry>>,
}

impl ChaosOutcome {
    /// Byte-stable digest of the run: the rendered report plus, when
    /// observability was on, the merged JSONL event log. Two runs of the
    /// same scenario must produce identical fingerprints — serial or
    /// parallel.
    pub fn fingerprint(&self) -> String {
        let mut s = self.report.render();
        if let Some(obs) = &self.report.obs {
            s.push_str(&obs.events_jsonl());
        }
        s
    }
}

fn inject(machine: &mut Machine, kind: &FaultKind) {
    match *kind {
        FaultKind::SensorStuck { watts } => {
            machine.inject_sensor_fault(SensorFault::StuckAt { watts })
        }
        FaultKind::SensorDrift { watts_per_s } => {
            machine.inject_sensor_fault(SensorFault::Drift { watts_per_s })
        }
        FaultKind::SensorSpike { watts, period_ticks } => {
            machine.inject_sensor_fault(SensorFault::Spike { watts, period_ticks })
        }
        FaultKind::SensorDropout => machine.inject_sensor_fault(SensorFault::Dropout),
        FaultKind::StaleTelemetry => machine.set_stale_telemetry(true),
        FaultKind::LostCapCommands => machine.set_lost_cap_commands(true),
        FaultKind::BmcCrash { dead_s } => machine.crash_bmc(dead_s),
    }
}

fn clear(machine: &mut Machine, kind: &FaultKind) {
    match kind {
        FaultKind::SensorStuck { .. }
        | FaultKind::SensorDrift { .. }
        | FaultKind::SensorSpike { .. }
        | FaultKind::SensorDropout => machine.clear_sensor_fault(),
        FaultKind::StaleTelemetry => machine.set_stale_telemetry(false),
        FaultKind::LostCapCommands => machine.set_lost_cap_commands(false),
        // The watchdog clears a crash on its own.
        FaultKind::BmcCrash { .. } => {}
    }
}

/// Execute a scenario once. Deterministic for a given scenario,
/// independent of `parallel`.
pub fn run_scenario(scenario: &ChaosScenario, parallel: bool) -> ChaosOutcome {
    let mut fleet = scenario.build_fleet(parallel);
    let n_windows = scenario.plan.windows.len();
    let mut injected = vec![false; n_windows];
    let mut cleared = vec![false; n_windows];
    for epoch in 0..scenario.epochs {
        let t = epoch as f64 * scenario.epoch_s;
        for (i, w) in scenario.plan.windows.iter().enumerate() {
            if !injected[i] && t + 1e-9 >= w.start_s {
                inject(fleet.machine_mut(w.node), &w.kind);
                injected[i] = true;
                // A crash ends itself (watchdog); mark it cleared so the
                // loop below never calls clear() for it.
                if matches!(w.kind, FaultKind::BmcCrash { .. }) {
                    cleared[i] = true;
                }
            }
            if injected[i] && !cleared[i] && t + 1e-9 >= w.end_s {
                clear(fleet.machine_mut(w.node), &w.kind);
                cleared[i] = true;
            }
        }
        fleet.step_epoch();
    }
    // Audit every SEL over the wire while the fleet still exists, and
    // capture the firmware's ground truth out-of-band.
    let mut sel_audits = Vec::with_capacity(scenario.nodes);
    let mut sel_truth = Vec::with_capacity(scenario.nodes);
    for i in 0..scenario.nodes {
        let audit = if fleet.machine(i).bmc_crashed() {
            None // a dead BMC cannot answer its own audit
        } else {
            fleet.read_node_sel(i).ok()
        };
        sel_audits.push(audit);
        sel_truth.push(fleet.machine(i).sel().iter().copied().collect());
    }
    ChaosOutcome { report: fleet.finish(), sel_audits, sel_truth }
}

/// A checked chaos run: the outcome plus every invariant violation found
/// (empty = all invariants green).
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosReport {
    pub outcome: ChaosOutcome,
    pub violations: Vec<Violation>,
}

impl ChaosReport {
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Run a scenario and check every invariant, including byte-identical
/// serial-vs-parallel replay (the scenario is executed twice).
pub fn check(scenario: &ChaosScenario) -> ChaosReport {
    let outcome = run_scenario(scenario, true);
    let mut violations = check_outcome(scenario, &outcome);
    let serial = run_scenario(scenario, false);
    if serial.fingerprint() != outcome.fingerprint() {
        violations.push(Violation::ReplayDiverged {
            parallel_bytes: outcome.fingerprint().len(),
            serial_bytes: serial.fingerprint().len(),
        });
    }
    ChaosReport { outcome, violations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capsim_obs::{EventKind, RungCause};

    #[test]
    fn a_quiet_fast_scenario_upholds_every_invariant() {
        let report = check(&ChaosScenario::fast(7, 3, 6));
        assert!(report.ok(), "violations: {:?}", report.violations);
        assert_eq!(report.outcome.report.records.len(), 6);
        for (audit, truth) in report.outcome.sel_audits.iter().zip(&report.outcome.sel_truth) {
            assert_eq!(audit.as_deref(), Some(truth.as_slice()), "audit matches ground truth");
        }
    }

    #[test]
    fn faulted_scenarios_still_pass_inside_their_declared_windows() {
        // Lost cap commands for the middle third of the run: power may
        // float over the cap inside the window (exempt), and must come
        // back under it afterwards.
        let mut s = ChaosScenario::fast(11, 3, 12);
        let h = s.horizon_s();
        s.plan = FaultPlan::none().window(0, h / 3.0, 2.0 * h / 3.0, FaultKind::LostCapCommands);
        let report = check(&s);
        assert!(report.ok(), "violations: {:?}", report.violations);
    }

    #[test]
    fn the_cap_invariant_actually_bites() {
        // With a hostile slack, every post-settle reading is a violation:
        // proves the checker is wired to real readings, not vacuous.
        let mut s = ChaosScenario::fast(5, 2, 5);
        s.invariants.cap_slack_w = -1e3;
        let report = check(&s);
        assert!(!report.ok());
        assert!(report.violations.iter().all(|v| matches!(v, Violation::CapExceeded { .. })));
    }

    #[test]
    fn scripted_scenario_recovers_with_all_invariants_green() {
        let scenario = ChaosScenario::scripted();
        let report = check(&scenario);
        assert!(report.ok(), "violations: {:?}", report.violations);

        let obs = report.outcome.report.obs.as_ref().expect("scripted observes");
        // The dropout on node 1 must engage the failsafe rung floor and
        // release it after the sensor returns.
        assert!(obs
            .events
            .iter()
            .any(|e| e.node == Some(1) && matches!(e.kind, EventKind::FailsafeEngaged { .. })));
        assert!(obs
            .events
            .iter()
            .any(|e| e.node == Some(1) && matches!(e.kind, EventKind::FailsafeReleased)));
        assert!(obs.events.iter().any(|e| e.node == Some(1)
            && matches!(e.kind, EventKind::RungChange { cause: RungCause::Failsafe, .. })));
        // The crash on node 2 must reboot through the watchdog...
        assert!(obs
            .events
            .iter()
            .any(|e| e.node == Some(2) && matches!(e.kind, EventKind::BmcCrash { .. })));
        let reboot = obs
            .events
            .iter()
            .find(|e| e.node == Some(2) && matches!(e.kind, EventKind::WatchdogReboot { .. }))
            .expect("watchdog reboot event");
        assert!(
            reboot.t_s >= 23.0 - 0.1 && reboot.t_s < 24.0,
            "reboot ~3 s after the 20 s crash, got t={}",
            reboot.t_s
        );
        // ...and leave a FirmwareRebooted record in the SEL paper trail.
        let truth = &report.outcome.sel_truth[2];
        assert!(truth.iter().any(|e| e.event == capsim_ipmi::SelEventType::FirmwareRebooted));
        // Recovery: node 2 is healthy and re-capped by the end.
        let n2 = &report.outcome.report.summaries[2];
        assert_eq!(n2.health, capsim_dcm::NodeHealth::Healthy);
        assert!(n2.final_cap_w.is_some());
    }
}
