//! The invariants a chaos run must uphold, and their checker.
//!
//! Three properties survive any declared fault plan:
//!
//! 1. **Cap compliance** — outside declared fault windows (plus a
//!    recovery grace), every node's measured power stays within a slack
//!    of the cap that was active during that epoch. The slack absorbs
//!    the throttle floor: a node capped at the ladder's physical limit
//!    legitimately overshoots by ~13 W.
//! 2. **Energy conservation** — each node's reported energy equals its
//!    average power times its wall time. Sensor faults corrupt only the
//!    telemetry copy, never the meter, so this holds *through* fault
//!    windows.
//! 3. **SEL audit completeness** — the event log read over the
//!    management wire is byte-for-byte the firmware's ground-truth log,
//!    across ring eviction and record-id wrap.
//!
//! The fourth invariant — byte-identical serial-vs-parallel replay — is
//! checked by [`crate::runner::check`], which runs the scenario twice.

use crate::runner::{ChaosOutcome, ChaosScenario};

/// Tolerances for the invariant checker.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InvariantConfig {
    /// Allowed overshoot above the active cap (throttle-floor physics
    /// plus control-loop dither).
    pub cap_slack_w: f64,
    /// Epochs at the start of the run exempt from cap compliance (the
    /// first caps have not been pushed or settled yet).
    pub settle_epochs: u32,
    /// Epochs of exemption *after* a fault window closes, covering
    /// failsafe release, watchdog reboot re-convergence and budget
    /// re-reallocation.
    pub grace_epochs: u32,
    /// Relative tolerance on `energy = avg_power * wall`.
    pub energy_rel_tol: f64,
}

impl Default for InvariantConfig {
    fn default() -> Self {
        InvariantConfig {
            cap_slack_w: 20.0,
            settle_epochs: 2,
            grace_epochs: 2,
            energy_rel_tol: 1e-6,
        }
    }
}

/// One invariant violation, with enough context to debug it.
#[derive(Clone, Debug, PartialEq)]
pub enum Violation {
    /// A node exceeded its active cap outside any declared fault window.
    CapExceeded { node: u32, epoch: u32, reading_w: f64, cap_w: f64 },
    /// A node's energy accounting does not close.
    EnergyMismatch { node: u32, energy_j: f64, expected_j: f64 },
    /// The wire-audited SEL differs from the firmware's ground truth.
    SelAuditIncomplete { node: u32, audited: usize, logged: usize },
    /// Serial and parallel replays of the same scenario diverged.
    ReplayDiverged { parallel_bytes: usize, serial_bytes: usize },
}

impl Violation {
    pub fn kind(&self) -> &'static str {
        match self {
            Violation::CapExceeded { .. } => "cap_exceeded",
            Violation::EnergyMismatch { .. } => "energy_mismatch",
            Violation::SelAuditIncomplete { .. } => "sel_audit_incomplete",
            Violation::ReplayDiverged { .. } => "replay_diverged",
        }
    }

    pub fn to_json(&self) -> String {
        match self {
            Violation::CapExceeded { node, epoch, reading_w, cap_w } => format!(
                "{{\"kind\":\"cap_exceeded\",\"node\":{node},\"epoch\":{epoch},\
                 \"reading_w\":{reading_w},\"cap_w\":{cap_w}}}"
            ),
            Violation::EnergyMismatch { node, energy_j, expected_j } => format!(
                "{{\"kind\":\"energy_mismatch\",\"node\":{node},\
                 \"energy_j\":{energy_j},\"expected_j\":{expected_j}}}"
            ),
            Violation::SelAuditIncomplete { node, audited, logged } => format!(
                "{{\"kind\":\"sel_audit_incomplete\",\"node\":{node},\
                 \"audited\":{audited},\"logged\":{logged}}}"
            ),
            Violation::ReplayDiverged { parallel_bytes, serial_bytes } => format!(
                "{{\"kind\":\"replay_diverged\",\"parallel_bytes\":{parallel_bytes},\
                 \"serial_bytes\":{serial_bytes}}}"
            ),
        }
    }
}

/// Check every outcome-level invariant (cap compliance, energy, SEL
/// audit) against the scenario's declared fault plan.
pub fn check_outcome(scenario: &ChaosScenario, out: &ChaosOutcome) -> Vec<Violation> {
    let cfg = &scenario.invariants;
    let mut violations = Vec::new();

    // Cap compliance. A reading recorded at barrier `e` was measured
    // while the cap pushed at barrier `e-1` was active, so track caps
    // one record behind.
    let grace_s = cfg.grace_epochs as f64 * scenario.epoch_s;
    let mut active_cap: Vec<Option<f64>> = vec![None; scenario.nodes];
    for rec in &out.report.records {
        let from_s = rec.epoch as f64 * scenario.epoch_s;
        let to_s = (rec.epoch + 1) as f64 * scenario.epoch_s;
        let exempt = rec.epoch < cfg.settle_epochs || scenario.plan.exempts(from_s, to_s, grace_s);
        if !exempt {
            for &(node, reading_w) in &rec.readings {
                if let Some(cap_w) = active_cap[node as usize] {
                    if reading_w > cap_w + cfg.cap_slack_w {
                        violations.push(Violation::CapExceeded {
                            node,
                            epoch: rec.epoch,
                            reading_w,
                            cap_w,
                        });
                    }
                }
            }
        }
        for &(node, cap_w) in &rec.caps {
            active_cap[node as usize] = Some(cap_w);
        }
    }

    // Energy conservation — ground truth, unaffected by telemetry faults.
    for s in &out.report.summaries {
        let expected_j = s.avg_power_w * s.wall_s;
        if (s.energy_j - expected_j).abs() > cfg.energy_rel_tol * s.energy_j.abs() + 1e-9 {
            violations.push(Violation::EnergyMismatch {
                node: s.index,
                energy_j: s.energy_j,
                expected_j,
            });
        }
    }

    // SEL audit completeness: what the manager can read over the wire is
    // exactly what the firmware logged. Nodes whose audit could not run
    // (BMC dead at audit time) are skipped, not failed.
    for (node, (audit, truth)) in out.sel_audits.iter().zip(&out.sel_truth).enumerate() {
        if let Some(audit) = audit {
            if audit != truth {
                violations.push(Violation::SelAuditIncomplete {
                    node: node as u32,
                    audited: audit.len(),
                    logged: truth.len(),
                });
            }
        }
    }

    violations
}
