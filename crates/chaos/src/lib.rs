//! `capsim-chaos` — fault domains and the invariant-checking chaos
//! harness.
//!
//! The paper's platform (§II) assumes every layer behaves: sensors report
//! real power, the BMC firmware never dies, cap commands stick. This
//! crate drops those assumptions and checks that the simulator's
//! guardrails hold the system inside its envelope anyway:
//!
//! - [`plan`] — typed, seeded [`FaultPlan`]s: sensor faults (stuck-at,
//!   drift, spike, dropout), controller faults (stale telemetry, silently
//!   lost cap commands) and BMC firmware crashes with watchdog-driven
//!   reboot, each scheduled over a window of simulated time.
//! - [`runner`] — [`ChaosScenario`]: a fleet configuration plus a fault
//!   plan, executed epoch-by-epoch with faults injected at epoch
//!   boundaries; [`check`] runs it and verifies every invariant,
//!   including byte-identical serial-vs-parallel replay.
//! - [`invariant`] — the invariants themselves: cap compliance outside
//!   declared fault windows, energy accounting conserved, SEL audit
//!   completeness over the wire vs the firmware's ground-truth log.
//! - [`soak()`] — randomized plans run until a violation appears, then
//!   greedily shrunk to a minimal JSON reproducer.
//!
//! Everything is deterministic: all randomness descends from one seed
//! through the workspace splitmix64 mixer, and simulated time is the only
//! clock.

pub mod invariant;
pub mod plan;
pub mod runner;
pub mod soak;

pub use invariant::{check_outcome, InvariantConfig, Violation};
pub use plan::{FaultKind, FaultPlan, FaultWindow};
pub use runner::{check, run_scenario, ChaosOutcome, ChaosReport, ChaosScenario};
pub use soak::{shrink, soak, Reproducer, SoakConfig, SoakResult};
