//! `capsim-counters` — a PAPI-like performance-counter facade.
//!
//! The paper collected its Table II data "using PAPI and the Romley's
//! performance counters". This crate reproduces that interface over the
//! simulated machine: preset events ([`Event`]) are grouped into an
//! [`EventSet`], started, and read/stopped around a code region. The
//! simulated PMU has [`HW_COUNTERS`] programmable slots, like real
//! hardware; oversubscribing a set fails with [`CounterError::Conflict`]
//! (PAPI's `PAPI_ECNFLCT`) unless multiplexing is enabled, in which case
//! reads are scaled estimates, as with `PAPI_multiplex_init`.

pub mod derived;
pub mod events;
pub mod set;

pub use derived::{derive, DerivedMetrics};
pub use events::Event;
pub use set::{CounterError, EventSet, HW_COUNTERS};
