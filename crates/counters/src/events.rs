//! Preset events, named after their PAPI equivalents.

use capsim_cpu::CounterFile;
use capsim_mem::MemStats;

/// A preset countable event. Names mirror PAPI's presets; the mapping to
/// simulator counters is exact (no approximation like real PMU presets
/// sometimes need).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Event {
    /// `PAPI_TOT_INS` — instructions committed.
    TotIns,
    /// Instructions executed including squashed wrong-path work
    /// (native event; the paper compares it against `TOT_INS`).
    TotInsExec,
    /// `PAPI_TOT_CYC` — unhalted core cycles.
    TotCyc,
    /// `PAPI_LD_INS` / `PAPI_SR_INS`.
    LdIns,
    SrIns,
    /// `PAPI_BR_INS` / `PAPI_BR_MSP`.
    BrIns,
    BrMsp,
    /// `PAPI_L1_DCM` — L1 data-cache misses (Table II "L1 Misses").
    L1Dcm,
    /// `PAPI_L1_ICM` — L1 instruction-cache misses.
    L1Icm,
    /// `PAPI_L2_TCM` — L2 total misses (Table II "L2 Misses").
    L2Tcm,
    /// `PAPI_L3_TCM` — L3 total misses (Table II "L3 Misses").
    L3Tcm,
    /// `PAPI_TLB_DM` — data TLB misses (Table II "TLB Data Misses").
    TlbDm,
    /// `PAPI_TLB_IM` — instruction TLB misses (Table II "TLB Instruction
    /// Misses").
    TlbIm,
    /// Speculative (wrong-path) loads executed (native event).
    SpecLd,
    /// DRAM line transfers (native uncore event).
    DramAccess,
}

impl Event {
    /// All defined events.
    pub const ALL: [Event; 15] = [
        Event::TotIns,
        Event::TotInsExec,
        Event::TotCyc,
        Event::LdIns,
        Event::SrIns,
        Event::BrIns,
        Event::BrMsp,
        Event::L1Dcm,
        Event::L1Icm,
        Event::L2Tcm,
        Event::L3Tcm,
        Event::TlbDm,
        Event::TlbIm,
        Event::SpecLd,
        Event::DramAccess,
    ];

    /// The PAPI-style name.
    pub fn name(&self) -> &'static str {
        match self {
            Event::TotIns => "PAPI_TOT_INS",
            Event::TotInsExec => "NATIVE_INS_EXEC",
            Event::TotCyc => "PAPI_TOT_CYC",
            Event::LdIns => "PAPI_LD_INS",
            Event::SrIns => "PAPI_SR_INS",
            Event::BrIns => "PAPI_BR_INS",
            Event::BrMsp => "PAPI_BR_MSP",
            Event::L1Dcm => "PAPI_L1_DCM",
            Event::L1Icm => "PAPI_L1_ICM",
            Event::L2Tcm => "PAPI_L2_TCM",
            Event::L3Tcm => "PAPI_L3_TCM",
            Event::TlbDm => "PAPI_TLB_DM",
            Event::TlbIm => "PAPI_TLB_IM",
            Event::SpecLd => "NATIVE_SPEC_LD",
            Event::DramAccess => "NATIVE_DRAM_ACCESS",
        }
    }

    /// Extract the event's value from a (core, memory) counter snapshot.
    pub fn extract(&self, core: &CounterFile, mem: &MemStats) -> u64 {
        match self {
            Event::TotIns => core.instructions_committed,
            Event::TotInsExec => core.instructions_executed,
            Event::TotCyc => core.unhalted_cycles,
            Event::LdIns => core.loads,
            Event::SrIns => core.stores,
            Event::BrIns => core.branches,
            Event::BrMsp => core.branch_mispredicts,
            Event::L1Dcm => mem.l1d_misses,
            Event::L1Icm => mem.l1i_misses,
            Event::L2Tcm => mem.l2_misses,
            Event::L3Tcm => mem.l3_misses,
            Event::TlbDm => mem.dtlb_misses,
            Event::TlbIm => mem.itlb_misses,
            Event::SpecLd => core.spec_loads,
            Event::DramAccess => mem.dram_reads + mem.dram_writes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = Event::ALL.iter().map(|e| e.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Event::ALL.len());
    }

    #[test]
    fn extraction_pulls_the_right_fields() {
        let core = CounterFile {
            instructions_committed: 10,
            instructions_executed: 11,
            loads: 3,
            stores: 2,
            branches: 4,
            branch_mispredicts: 1,
            spec_loads: 1,
            unhalted_cycles: 100,
        };
        let mem = MemStats { l1d_misses: 7, l3_misses: 5, itlb_misses: 2, ..Default::default() };
        assert_eq!(Event::TotIns.extract(&core, &mem), 10);
        assert_eq!(Event::TotCyc.extract(&core, &mem), 100);
        assert_eq!(Event::L1Dcm.extract(&core, &mem), 7);
        assert_eq!(Event::L3Tcm.extract(&core, &mem), 5);
        assert_eq!(Event::TlbIm.extract(&core, &mem), 2);
    }
}
