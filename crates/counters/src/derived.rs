//! Derived metrics: the rates and ratios the paper's analysis reasons
//! with (miss rates, MPKI, speculation ratios), computed from raw
//! counter/memory snapshots.

use capsim_cpu::CounterFile;
use capsim_mem::MemStats;

/// Ratios derived from one measurement window.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DerivedMetrics {
    /// Instructions per unhalted cycle.
    pub ipc: f64,
    /// L1D misses per kilo-instruction.
    pub l1_mpki: f64,
    /// L2 misses per kilo-instruction.
    pub l2_mpki: f64,
    /// L3 misses per kilo-instruction.
    pub l3_mpki: f64,
    /// L2 local miss ratio (misses / accesses).
    pub l2_miss_ratio: f64,
    /// L3 local miss ratio.
    pub l3_miss_ratio: f64,
    /// DTLB misses per kilo-instruction.
    pub dtlb_mpki: f64,
    /// ITLB misses per million instructions (the paper's counts are tiny
    /// at baseline, so a finer unit).
    pub itlb_mpmi: f64,
    /// Branch misprediction ratio.
    pub branch_mpr: f64,
    /// Executed-over-committed instruction ratio (speculation overhead;
    /// the paper bounds it at 1.0036).
    pub speculation_ratio: f64,
    /// DRAM line transfers per kilo-instruction (memory-boundedness).
    pub dram_pki: f64,
}

/// Compute the derived metrics for a window.
pub fn derive(core: &CounterFile, mem: &MemStats) -> DerivedMetrics {
    let instr = core.instructions_committed.max(1) as f64;
    let ki = instr / 1e3;
    let mi = instr / 1e6;
    DerivedMetrics {
        ipc: core.ipc(),
        l1_mpki: mem.l1d_misses as f64 / ki,
        l2_mpki: mem.l2_misses as f64 / ki,
        l3_mpki: mem.l3_misses as f64 / ki,
        l2_miss_ratio: mem.l2_miss_rate().unwrap_or(0.0),
        l3_miss_ratio: mem.l3_miss_rate().unwrap_or(0.0),
        dtlb_mpki: mem.dtlb_misses as f64 / ki,
        itlb_mpmi: mem.itlb_misses as f64 / mi,
        branch_mpr: if core.branches == 0 {
            0.0
        } else {
            core.branch_mispredicts as f64 / core.branches as f64
        },
        speculation_ratio: core.instructions_executed as f64
            / core.instructions_committed.max(1) as f64,
        dram_pki: mem.dram_accesses() as f64 / ki,
    }
}

impl DerivedMetrics {
    /// A one-line classification like the paper's §IV-B prose: does this
    /// window look CPU-bound, cache-resident, or memory-streaming?
    pub fn classify(&self) -> &'static str {
        if self.dram_pki > 10.0 {
            "memory-streaming"
        } else if self.l2_mpki > 1.0 || self.l3_mpki > 0.5 {
            "cache-sensitive"
        } else {
            "cpu-bound"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core(instr: u64, cyc: u64) -> CounterFile {
        CounterFile {
            instructions_committed: instr,
            instructions_executed: instr + instr / 500,
            branches: instr / 10,
            branch_mispredicts: instr / 1000,
            unhalted_cycles: cyc,
            ..Default::default()
        }
    }

    #[test]
    fn rates_compute_per_kiloinstruction() {
        let mem = MemStats {
            l1d_misses: 5000,
            l2_accesses: 5000,
            l2_misses: 1000,
            l3_accesses: 1000,
            l3_misses: 200,
            dram_reads: 180,
            dram_writes: 20,
            itlb_misses: 7,
            ..Default::default()
        };
        let d = derive(&core(1_000_000, 400_000), &mem);
        assert!((d.ipc - 2.5).abs() < 1e-12);
        assert!((d.l1_mpki - 5.0).abs() < 1e-12);
        assert!((d.l2_mpki - 1.0).abs() < 1e-12);
        assert!((d.l2_miss_ratio - 0.2).abs() < 1e-12);
        assert!((d.itlb_mpmi - 7.0).abs() < 1e-12);
        assert!((d.dram_pki - 0.2).abs() < 1e-12);
        assert!((d.speculation_ratio - 1.002).abs() < 1e-9);
    }

    #[test]
    fn classification_matches_the_papers_two_profiles() {
        // SIRE-like: streaming.
        let streaming = MemStats {
            l1d_misses: 40_000,
            l2_misses: 30_000,
            l2_accesses: 40_000,
            l3_misses: 25_000,
            l3_accesses: 30_000,
            dram_reads: 25_000,
            ..Default::default()
        };
        assert_eq!(derive(&core(1_000_000, 600_000), &streaming).classify(), "memory-streaming");
        // Stereo-like: cache-resident.
        let resident = MemStats {
            l1d_misses: 3000,
            l2_misses: 300,
            l2_accesses: 3000,
            l3_misses: 50,
            l3_accesses: 300,
            dram_reads: 40,
            ..Default::default()
        };
        assert_eq!(derive(&core(1_000_000, 350_000), &resident).classify(), "cpu-bound");
    }

    #[test]
    fn empty_windows_do_not_divide_by_zero() {
        let d = derive(&CounterFile::default(), &MemStats::default());
        assert_eq!(d.ipc, 0.0);
        assert_eq!(d.branch_mpr, 0.0);
        assert!(d.speculation_ratio.is_finite());
    }
}
