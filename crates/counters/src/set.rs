//! Event sets: PAPI's unit of counter scheduling.

use capsim_cpu::CounterFile;
use capsim_mem::MemStats;
use capsim_node::Machine;

use crate::events::Event;

/// Programmable counter slots on the simulated PMU (Sandy Bridge exposes
/// 8 general-purpose counters with hyperthreading off).
pub const HW_COUNTERS: usize = 8;

/// Errors from event-set operations (PAPI error-code analogues).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CounterError {
    /// More events than hardware counters and multiplexing is off
    /// (`PAPI_ECNFLCT`).
    Conflict,
    /// Operation requires a started set (`PAPI_ENOTRUN`).
    NotRunning,
    /// Operation requires a stopped set (`PAPI_EISRUN`).
    AlreadyRunning,
    /// Event already present in the set.
    Duplicate,
}

#[derive(Clone, Copy, Debug, Default)]
struct Snapshot {
    core: CounterFile,
    mem: MemStats,
}

/// A set of events counted together.
///
/// ```
/// use capsim_counters::{Event, EventSet};
/// use capsim_node::{Machine, MachineConfig};
///
/// let mut m = Machine::new(MachineConfig::tiny(1));
/// let mut set = EventSet::new();
/// set.add(Event::TotIns).unwrap();
/// set.add(Event::L1Dcm).unwrap();
/// set.start(&m).unwrap();
/// m.compute(500);
/// let counts = set.stop(&m).unwrap();
/// assert_eq!(counts[0], 500); // PAPI_TOT_INS
/// ```
#[derive(Clone, Debug)]
pub struct EventSet {
    events: Vec<Event>,
    multiplexed: bool,
    running: bool,
    start: Snapshot,
}

impl EventSet {
    pub fn new() -> Self {
        EventSet {
            events: Vec::new(),
            multiplexed: false,
            running: false,
            start: Snapshot::default(),
        }
    }

    /// Enable multiplexing: more than [`HW_COUNTERS`] events are allowed;
    /// reads become estimates (exact in the simulator, but the API keeps
    /// PAPI's shape).
    pub fn set_multiplex(&mut self, on: bool) -> Result<(), CounterError> {
        if self.running {
            return Err(CounterError::AlreadyRunning);
        }
        self.multiplexed = on;
        Ok(())
    }

    /// Add an event to the set.
    pub fn add(&mut self, e: Event) -> Result<(), CounterError> {
        if self.running {
            return Err(CounterError::AlreadyRunning);
        }
        if self.events.contains(&e) {
            return Err(CounterError::Duplicate);
        }
        if !self.multiplexed && self.events.len() == HW_COUNTERS {
            return Err(CounterError::Conflict);
        }
        self.events.push(e);
        Ok(())
    }

    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Start counting: snapshot the machine's counters.
    pub fn start(&mut self, m: &Machine) -> Result<(), CounterError> {
        if self.running {
            return Err(CounterError::AlreadyRunning);
        }
        self.start = Snapshot { core: m.counters_now(), mem: m.mem_stats_now() };
        self.running = true;
        Ok(())
    }

    /// Read the per-event deltas since `start`, in insertion order,
    /// without stopping.
    pub fn read(&self, m: &Machine) -> Result<Vec<u64>, CounterError> {
        if !self.running {
            return Err(CounterError::NotRunning);
        }
        let core = m.counters_now().since(&self.start.core);
        let mem = m.mem_stats_now() - self.start.mem;
        Ok(self.events.iter().map(|e| e.extract(&core, &mem)).collect())
    }

    /// Stop and return the final deltas.
    pub fn stop(&mut self, m: &Machine) -> Result<Vec<u64>, CounterError> {
        let v = self.read(m)?;
        self.running = false;
        Ok(v)
    }
}

impl Default for EventSet {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capsim_node::MachineConfig;

    fn machine() -> Machine {
        Machine::new(MachineConfig::tiny(11))
    }

    #[test]
    fn counts_a_simple_region() {
        let mut m = machine();
        let r = m.alloc(4096);
        let mut set = EventSet::new();
        set.add(Event::TotIns).unwrap();
        set.add(Event::LdIns).unwrap();
        set.add(Event::L1Dcm).unwrap();
        // Pre-set work must not be counted.
        m.compute(500);
        set.start(&m).unwrap();
        m.compute(100);
        m.load(r.at(0));
        let v = set.stop(&m).unwrap();
        assert_eq!(v[0], 101, "100 ALU + 1 load committed");
        assert_eq!(v[1], 1);
        assert_eq!(v[2], 1, "cold load misses L1");
    }

    #[test]
    fn read_without_start_fails() {
        let m = machine();
        let set = EventSet::new();
        assert_eq!(set.read(&m), Err(CounterError::NotRunning));
    }

    #[test]
    fn oversubscription_requires_multiplexing() {
        let mut set = EventSet::new();
        for e in Event::ALL.iter().take(HW_COUNTERS) {
            set.add(*e).unwrap();
        }
        assert_eq!(set.add(Event::DramAccess), Err(CounterError::Conflict));
        set.set_multiplex(true).unwrap();
        for e in Event::ALL.iter().skip(HW_COUNTERS) {
            set.add(*e).unwrap();
        }
        assert_eq!(set.events().len(), Event::ALL.len());
    }

    #[test]
    fn duplicate_events_are_rejected() {
        let mut set = EventSet::new();
        set.add(Event::TotCyc).unwrap();
        assert_eq!(set.add(Event::TotCyc), Err(CounterError::Duplicate));
    }

    #[test]
    fn mutation_while_running_is_rejected() {
        let mut m = machine();
        m.compute(1);
        let mut set = EventSet::new();
        set.add(Event::TotIns).unwrap();
        set.start(&m).unwrap();
        assert_eq!(set.add(Event::LdIns), Err(CounterError::AlreadyRunning));
        assert_eq!(set.set_multiplex(true), Err(CounterError::AlreadyRunning));
        assert_eq!(set.start(&m), Err(CounterError::AlreadyRunning));
    }

    #[test]
    fn intermediate_reads_are_monotone() {
        let mut m = machine();
        let mut set = EventSet::new();
        set.add(Event::TotIns).unwrap();
        set.start(&m).unwrap();
        m.compute(10);
        let a = set.read(&m).unwrap()[0];
        m.compute(10);
        let b = set.read(&m).unwrap()[0];
        assert!(b > a);
        assert_eq!(set.stop(&m).unwrap()[0], 20);
    }

    #[test]
    fn restart_after_stop_rebaselines() {
        let mut m = machine();
        let mut set = EventSet::new();
        set.add(Event::TotIns).unwrap();
        set.start(&m).unwrap();
        m.compute(10);
        set.stop(&m).unwrap();
        m.compute(1000);
        set.start(&m).unwrap();
        m.compute(5);
        assert_eq!(set.stop(&m).unwrap()[0], 5);
    }
}
