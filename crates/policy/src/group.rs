//! Group power-budget allocation policies.
//!
//! Given a total budget and each node's current demand (its measured
//! power), a policy returns per-node caps in watts. All policies respect a
//! per-node floor — capping a node below its idle power is useless, as the
//! paper's Table II floor (~124 W vs the 120 W cap) demonstrates.
//!
//! This lived in `capsim-dcm` until the policy-layer extraction; the DCM
//! re-exports it unchanged, and [`crate::LadderCapPolicy`] wraps it as the
//! group-level half of the default backend.

/// How a group budget is divided across nodes.
#[derive(Clone, Debug, PartialEq)]
pub enum AllocationPolicy {
    /// Everyone gets `budget / n`.
    Uniform,
    /// Caps proportional to current demand: busy nodes get more headroom.
    ProportionalToDemand,
    /// Nodes are served in priority order (lower number = higher
    /// priority): each gets its full demand until the budget runs out;
    /// the rest get the floor.
    ///
    /// The vector is indexed by position in the demand slice. A vector
    /// shorter than the group is padded with `u8::MAX` (lowest priority)
    /// and extra entries are ignored, so a fleet-wide table survives
    /// nodes joining or dropping out without panicking; ties keep input
    /// order (the sort is stable).
    Priority(Vec<u8>),
}

/// Compute per-node caps.
///
/// * `budget_w` — group budget.
/// * `demand_w` — current measured power per node.
/// * `floor_w` — minimum useful cap (≈ the node's throttle floor).
///
/// The returned caps sum to ≤ `max(budget_w, n × floor_w)`; if the budget
/// cannot cover the floors, every node gets the floor (the group is
/// over-committed, mirroring DCM's behaviour of throttling everything to
/// the bone and raising alerts).
pub fn allocate(
    policy: &AllocationPolicy,
    budget_w: f64,
    demand_w: &[f64],
    floor_w: f64,
) -> Vec<f64> {
    let n = demand_w.len();
    if n == 0 {
        return Vec::new();
    }
    let min_total = floor_w * n as f64;
    if budget_w <= min_total {
        return vec![floor_w; n];
    }
    match policy {
        AllocationPolicy::Uniform => vec![budget_w / n as f64; n],
        AllocationPolicy::ProportionalToDemand => {
            let total: f64 = demand_w.iter().sum();
            if total <= 0.0 {
                return vec![budget_w / n as f64; n];
            }
            // Proportional share, but never below the floor; the excess a
            // floored node frees up is redistributed proportionally.
            //
            // The floor redistribution is computed in closed form from
            // aggregate sums rather than by mutating caps in input order:
            //
            //   deficit  = n_f·floor − B·S_f/S   (shortfall of floored set)
            //   flexible = B·S_x/S − n_x·floor   (headroom above the floor)
            //   cap_i    = floor + (B·d_i/S − floor)·(flexible−deficit)/flexible
            //
            // where S is the total demand and (n_f, S_f)/(n_x, S_x) count
            // and sum the floored/flexible subsets. Each cap then depends
            // only on the node's own demand and whole-set aggregates —
            // with integer-valued demands (DCMI readings are whole watts,
            // and integer sums below 2^53 are exact in f64) the result is
            // identical no matter how a fleet partitions the input across
            // group managers. That is the property the hierarchical fleet
            // barrier's determinism contract leans on.
            let floored = |d: &f64| budget_w * d / total < floor_w;
            let n_f = demand_w.iter().filter(|d| floored(d)).count() as f64;
            let s_f: f64 = demand_w.iter().filter(|d| floored(d)).sum();
            let deficit = n_f * floor_w - budget_w * s_f / total;
            let flexible = budget_w * (total - s_f) / total - (n as f64 - n_f) * floor_w;
            let scale =
                if deficit > 0.0 && flexible > 0.0 { (flexible - deficit) / flexible } else { 1.0 };
            demand_w
                .iter()
                .map(|d| {
                    let raw = budget_w * d / total;
                    if raw < floor_w {
                        floor_w
                    } else if scale == 1.0 {
                        raw
                    } else {
                        floor_w + (raw - floor_w) * scale
                    }
                })
                .collect()
        }
        AllocationPolicy::Priority(prio) => {
            // Documented default for a short table: missing entries rank
            // last (`u8::MAX`); extra entries are ignored. Before the
            // policy-layer extraction this was an assert — a fleet whose
            // priority table lagged a node join aborted the barrier.
            let prio_of = |i: usize| prio.get(i).copied().unwrap_or(u8::MAX);
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by_key(|&i| prio_of(i));
            let mut caps = vec![floor_w; n];
            let mut remaining = budget_w - min_total;
            for &i in &order {
                let want = (demand_w[i] - floor_w).max(0.0) + 10.0; // headroom
                let grant = want.min(remaining);
                caps[i] = floor_w + grant;
                remaining -= grant;
            }
            // Whatever is left goes to the highest-priority node.
            if remaining > 0.0 {
                caps[order[0]] += remaining;
            }
            caps
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FLOOR: f64 = 110.0;

    #[test]
    fn uniform_splits_evenly() {
        let caps = allocate(&AllocationPolicy::Uniform, 600.0, &[150.0, 120.0, 130.0], FLOOR);
        assert_eq!(caps, vec![200.0, 200.0, 200.0]);
    }

    #[test]
    fn proportional_gives_busy_nodes_more() {
        let caps = allocate(&AllocationPolicy::ProportionalToDemand, 300.0, &[160.0, 120.0], FLOOR);
        assert!(caps[0] > caps[1]);
        assert!((caps.iter().sum::<f64>() - 300.0).abs() < 1e-9);
        assert!(caps.iter().all(|&c| c >= FLOOR));
    }

    #[test]
    fn proportional_respects_the_floor() {
        let caps = allocate(&AllocationPolicy::ProportionalToDemand, 280.0, &[250.0, 20.0], FLOOR);
        assert!(caps[1] >= FLOOR);
        assert!((caps.iter().sum::<f64>() - 280.0).abs() < 1e-9);
    }

    #[test]
    fn priority_serves_high_priority_first() {
        let caps = allocate(
            &AllocationPolicy::Priority(vec![1, 0, 2]),
            360.0,
            &[155.0, 155.0, 155.0],
            FLOOR,
        );
        // Node 1 (priority 0) gets its demand + headroom first.
        assert!(caps[1] > caps[0]);
        assert!(caps[0] >= caps[2] - 1e-9);
        assert!(caps.iter().all(|&c| c >= FLOOR));
    }

    #[test]
    fn overcommitted_budget_floors_everyone() {
        let caps = allocate(&AllocationPolicy::Uniform, 100.0, &[150.0, 150.0], FLOOR);
        assert_eq!(caps, vec![FLOOR, FLOOR]);
    }

    #[test]
    fn empty_group_is_fine() {
        assert!(allocate(&AllocationPolicy::Uniform, 100.0, &[], FLOOR).is_empty());
    }

    #[test]
    fn short_priority_vector_ranks_missing_nodes_last() {
        // 3 nodes, table only covers the first: the uncovered nodes rank
        // last but still receive the floor, and nothing panics.
        let caps =
            allocate(&AllocationPolicy::Priority(vec![0]), 400.0, &[155.0, 155.0, 155.0], FLOOR);
        assert_eq!(caps.len(), 3);
        assert!(caps[0] > caps[1]);
        assert!(caps.iter().all(|&c| c >= FLOOR));
    }

    #[test]
    fn long_priority_vector_ignores_extra_entries() {
        let short =
            allocate(&AllocationPolicy::Priority(vec![1, 0]), 360.0, &[150.0, 150.0], FLOOR);
        let long =
            allocate(&AllocationPolicy::Priority(vec![1, 0, 9, 9]), 360.0, &[150.0, 150.0], FLOOR);
        assert_eq!(short, long);
    }

    #[test]
    fn duplicate_priorities_keep_input_order() {
        // Stable sort: equal priorities are served in node order, so the
        // allocation is deterministic.
        let a = allocate(&AllocationPolicy::Priority(vec![1, 1, 1]), 400.0, &[150.0; 3], FLOOR);
        let b = allocate(&AllocationPolicy::Priority(vec![1, 1, 1]), 400.0, &[150.0; 3], FLOOR);
        assert_eq!(a, b);
        assert!(a[0] >= a[1] && a[1] >= a[2]);
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use proptest::prelude::*;

    const FLOOR: f64 = 110.0;

    fn any_policy() -> impl Strategy<Value = AllocationPolicy> {
        prop_oneof![
            Just(AllocationPolicy::Uniform),
            Just(AllocationPolicy::ProportionalToDemand),
            // Deliberately decoupled from the demand length: shorter,
            // longer and duplicate-laden tables must all be handled.
            proptest::collection::vec(0u8..8, 0..12).prop_map(AllocationPolicy::Priority),
        ]
    }

    proptest! {
        #[test]
        fn caps_respect_floor_and_budget(
            policy in any_policy(),
            budget_w in 0.0f64..4000.0,
            demand_w in proptest::collection::vec(0.0f64..400.0, 0..9),
        ) {
            let n = demand_w.len();
            let caps = allocate(&policy, budget_w, &demand_w, FLOOR);
            prop_assert_eq!(caps.len(), n);
            // Every cap sits at or above the floor.
            prop_assert!(caps.iter().all(|&c| c >= FLOOR - 1e-9));
            // When the budget covers the floors, the caps never overspend
            // it; when it cannot, everyone is floored.
            if budget_w > FLOOR * n as f64 {
                let sum: f64 = caps.iter().sum();
                prop_assert!(sum <= budget_w + 1e-6 * budget_w.max(1.0), "sum {sum} > {budget_w}");
            } else {
                prop_assert!(caps.iter().all(|&c| c == FLOOR));
            }
        }

        #[test]
        fn priority_never_panics_on_mismatched_tables(
            prio in proptest::collection::vec(any::<u8>(), 0..6),
            demand_w in proptest::collection::vec(0.0f64..400.0, 0..6),
            budget_w in 0.0f64..2000.0,
        ) {
            // Short, long and duplicate-heavy priority tables: the call
            // must return one cap per node, whatever the table length.
            let caps = allocate(&AllocationPolicy::Priority(prio), budget_w, &demand_w, FLOOR);
            prop_assert_eq!(caps.len(), demand_w.len());
        }
    }
}
