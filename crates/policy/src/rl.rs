//! Tabular-RL capping backend (after Raj et al., "A Reinforcement
//! Learning Approach for Performance-aware Reduction in Power Consumption
//! of Data Center Compute Nodes").
//!
//! A Q-table over quantized counter state (power-vs-cap error, rung band,
//! busy fraction) maps each control period to one of five rung actions.
//! Safety is structural, not learned: while the node is over its cap the
//! action set is *masked* to non-decreasing rungs, so even a zeroed table
//! converges under the cap like the ladder does — training only shapes
//! how much performance is preserved on the way.
//!
//! Everything is deterministic. Exploration draws from a [`splitmix64`]
//! stream seeded through [`CapPolicy::reseed`], so the same seed replays
//! the same episode byte-for-byte; the trainer (in `capsim-dcm`) asserts
//! same seed → same Q-table → same frontier point.

use crate::{allocate, AllocationPolicy, CapDecision, CapPolicy, GroupDemand, NodeCapView};

/// Power-error buckets × rung bands × busy buckets.
pub const STATES: usize = 7 * 6 * 4;
/// Up2, Up1, Hold, Down1, Down2.
pub const ACTIONS: usize = 5;

const UP2: usize = 0;
const UP1: usize = 1;
const HOLD: usize = 2;
const DOWN1: usize = 3;
const DOWN2: usize = 4;

/// Over the cap only non-decreasing rungs are legal (the safety mask).
const OVER_CAP_ACTIONS: [usize; 3] = [UP1, UP2, HOLD];
/// Under the cap everything is legal; ties prefer stability (hold), then
/// release, then escalation.
const UNDER_CAP_ACTIONS: [usize; 5] = [HOLD, DOWN1, DOWN2, UP1, UP2];

/// SplitMix64 finalizer: the workspace-standard seed-derivation scheme
/// (bit-identical to `capsim_ipmi::splitmix64`, duplicated so this crate
/// stays dependency-free).
pub fn splitmix64(seed: u64, salt: u64) -> u64 {
    let mut z = seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The learned value table: `STATES × ACTIONS` action values.
#[derive(Clone, Debug, PartialEq)]
pub struct QTable {
    q: Vec<f64>,
}

impl QTable {
    pub fn zeroed() -> Self {
        QTable { q: vec![0.0; STATES * ACTIONS] }
    }

    pub fn get(&self, state: usize, action: usize) -> f64 {
        self.q[state * ACTIONS + action]
    }

    fn set(&mut self, state: usize, action: usize, v: f64) {
        self.q[state * ACTIONS + action] = v;
    }

    /// Best legal action value in `state` (the TD target's max term).
    fn best_value(&self, state: usize, allowed: &[usize]) -> f64 {
        allowed.iter().map(|&a| self.get(state, a)).fold(f64::NEG_INFINITY, f64::max)
    }

    /// Greedy argmax over `allowed`, scanned in preference order so ties
    /// resolve deterministically (and sensibly: the first entry wins).
    fn best_action(&self, state: usize, allowed: &[usize]) -> usize {
        let mut best = allowed[0];
        let mut best_v = self.get(state, best);
        for &a in &allowed[1..] {
            let v = self.get(state, a);
            if v > best_v {
                best = a;
                best_v = v;
            }
        }
        best
    }

    /// Order-sensitive digest of the exact table bytes. Two tables share
    /// a digest iff training was replayed bit-identically.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for v in &self.q {
            h ^= v.to_bits();
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// How many entries training has moved off zero.
    pub fn touched(&self) -> usize {
        self.q.iter().filter(|v| **v != 0.0).count()
    }

    /// Element-wise mean of several tables — the federated-averaging
    /// step of offline training (each node learns on its own trace; the
    /// episode's tables merge into one). Panics on an empty slice.
    pub fn average(tables: &[&QTable]) -> QTable {
        assert!(!tables.is_empty(), "averaging needs at least one table");
        let mut q = vec![0.0; STATES * ACTIONS];
        for t in tables {
            for (acc, v) in q.iter_mut().zip(&t.q) {
                *acc += v;
            }
        }
        let n = tables.len() as f64;
        for acc in &mut q {
            *acc /= n;
        }
        QTable { q }
    }
}

/// Learning and exploration tunables.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RlConfig {
    /// Learning rate α.
    pub alpha: f64,
    /// Discount γ.
    pub gamma: f64,
    /// Exploration rate in per-mille (0 = pure greedy).
    pub epsilon_milli: u32,
    /// Over-cap penalty weight λ in the shaped reward.
    pub over_cap_lambda: f64,
}

impl Default for RlConfig {
    fn default() -> Self {
        RlConfig { alpha: 0.2, gamma: 0.9, epsilon_milli: 100, over_cap_lambda: 25.0 }
    }
}

/// The tabular-RL backend.
///
/// In learning mode every decision also applies one Q-update for the
/// previous (state, action) pair using the shaped per-period reward; in
/// frozen mode ([`RlCapPolicy::frozen`]) the table is read-only and
/// actions are pure greedy — the deployable artifact.
#[derive(Clone, Debug)]
pub struct RlCapPolicy {
    q: QTable,
    cfg: RlConfig,
    learning: bool,
    rng: u64,
    last: Option<(usize, usize)>,
    updates: u64,
    explorations: u64,
    group: AllocationPolicy,
}

impl RlCapPolicy {
    /// A frozen (greedy, non-learning) policy over a trained table.
    pub fn frozen(q: QTable) -> Self {
        RlCapPolicy {
            q,
            cfg: RlConfig { epsilon_milli: 0, ..RlConfig::default() },
            learning: false,
            rng: 0,
            last: None,
            updates: 0,
            explorations: 0,
            group: AllocationPolicy::ProportionalToDemand,
        }
    }

    /// A learner continuing from `q` (zeroed for episode one).
    pub fn learner(q: QTable, cfg: RlConfig) -> Self {
        RlCapPolicy {
            q,
            cfg,
            learning: true,
            rng: 0,
            last: None,
            updates: 0,
            explorations: 0,
            group: AllocationPolicy::ProportionalToDemand,
        }
    }

    pub fn q_table(&self) -> &QTable {
        &self.q
    }

    /// (Q-updates applied, exploratory actions taken).
    pub fn learn_stats(&self) -> (u64, u64) {
        (self.updates, self.explorations)
    }

    /// Quantize a control-period view into a table state.
    pub fn quantize(v: &NodeCapView) -> usize {
        let e = (v.window_avg_w - v.cap_w) / v.cap_w.max(1.0);
        let err_b = if e > 0.15 {
            6
        } else if e > 0.05 {
            5
        } else if e > 0.0 {
            4
        } else if e > -0.01 {
            3
        } else if e > -0.05 {
            2
        } else if e > -0.15 {
            1
        } else {
            0
        };
        let band = (v.rung * 6) / (v.deepest + 1).max(1);
        let busy_b = ((v.busy_frac * 4.0) as usize).min(3);
        (err_b * 6 + band.min(5)) * 4 + busy_b
    }

    /// Legal actions for a view: over the cap, rungs may not decrease.
    fn allowed(v: &NodeCapView) -> &'static [usize] {
        if v.window_avg_w > v.cap_w {
            &OVER_CAP_ACTIONS
        } else {
            &UNDER_CAP_ACTIONS
        }
    }

    /// Shaped per-period reward for *arriving* in `v`: preserve speed
    /// while busy, be throttled while idle (energy proportionality), and
    /// pay λ-weighted for sitting over the cap. These are the same
    /// signals capsim-obs records per node (`machine.window_w`,
    /// `bmc.escalations`, rung-change events) — the trainer additionally
    /// scores whole episodes from the fleet's obs metrics.
    fn reward(&self, v: &NodeCapView) -> f64 {
        let depth = v.rung as f64 / v.deepest.max(1) as f64;
        let perf = (1.0 - depth) * v.busy_frac;
        let proportional = 0.2 * depth * (1.0 - v.busy_frac);
        let over = ((v.window_avg_w - v.cap_w) / v.cap_w.max(1.0)).max(0.0);
        perf + proportional - self.cfg.over_cap_lambda * over
    }

    fn next_rand(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix64(self.rng, 0x5eed)
    }

    fn decision(action: usize, v: &NodeCapView) -> CapDecision {
        match action {
            UP2 => CapDecision::SetRung((v.rung + 2).min(v.deepest)),
            UP1 => CapDecision::Escalate,
            HOLD => CapDecision::Hold,
            DOWN1 => CapDecision::Deescalate,
            _ => CapDecision::SetRung(v.rung.saturating_sub(2)),
        }
    }
}

impl CapPolicy for RlCapPolicy {
    fn name(&self) -> &'static str {
        "rl"
    }

    fn node_decide(&mut self, v: &NodeCapView) -> CapDecision {
        let state = Self::quantize(v);
        let allowed = Self::allowed(v);
        if self.learning {
            if let Some((ps, pa)) = self.last {
                let r = self.reward(v);
                let target = r + self.cfg.gamma * self.q.best_value(state, allowed);
                let old = self.q.get(ps, pa);
                self.q.set(ps, pa, old + self.cfg.alpha * (target - old));
                self.updates += 1;
            }
        }
        let explore = self.learning
            && self.cfg.epsilon_milli > 0
            && self.next_rand() % 1000 < self.cfg.epsilon_milli as u64;
        let action = if explore {
            self.explorations += 1;
            allowed[(self.next_rand() % allowed.len() as u64) as usize]
        } else {
            self.q.best_action(state, allowed)
        };
        self.last = Some((state, action));
        Self::decision(action, v)
    }

    fn group_allocate(&self, budget_w: f64, demand: &[GroupDemand], floor_w: f64) -> Vec<f64> {
        // The learned half is node-local; the group split stays the
        // partition-invariant proportional closed form.
        let demand_w: Vec<f64> = demand.iter().map(|d| d.demand_w).collect();
        allocate(&self.group, budget_w, &demand_w, floor_w)
    }

    // node_quiescent: default `false`. A learner mutates its table every
    // period and even a frozen greedy policy may jump at rung 0, so the
    // machine must not fast-forward idle spans.

    fn reseed(&mut self, seed: u64) {
        self.rng = seed;
    }

    fn clone_box(&self) -> Box<dyn CapPolicy> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(rung: usize, avg: f64, cap: f64, busy: f64) -> NodeCapView {
        NodeCapView {
            cap_w: cap,
            window_avg_w: avg,
            hysteresis_w: 1.0,
            rung,
            deepest: 29,
            busy_frac: busy,
            issue_frac: busy,
            now_ms: 0.0,
            tail_ms: 0.0,
        }
    }

    #[test]
    fn over_cap_masking_forbids_release() {
        // Even a zeroed table escalates while over the cap: the mask
        // leaves only {up, hold}, and ties prefer Up1 — ladder-like.
        let mut p = RlCapPolicy::frozen(QTable::zeroed());
        assert_eq!(p.node_decide(&view(3, 150.0, 130.0, 1.0)), CapDecision::Escalate);
    }

    #[test]
    fn under_cap_zeroed_table_holds() {
        let mut p = RlCapPolicy::frozen(QTable::zeroed());
        assert_eq!(p.node_decide(&view(3, 100.0, 130.0, 1.0)), CapDecision::Hold);
    }

    #[test]
    fn learning_moves_the_table_deterministically() {
        let run = |seed: u64| {
            let mut p = RlCapPolicy::learner(QTable::zeroed(), RlConfig::default());
            p.reseed(seed);
            for i in 0..200 {
                let avg = if i % 3 == 0 { 150.0 } else { 120.0 };
                p.node_decide(&view((i % 8) as usize, avg, 130.0, 0.7));
            }
            (p.q_table().clone(), p.learn_stats())
        };
        let (qa, sa) = run(7);
        let (qb, sb) = run(7);
        assert_eq!(qa.digest(), qb.digest());
        assert_eq!(qa, qb);
        assert_eq!(sa, sb);
        assert!(qa.touched() > 0, "200 periods must leave a learning trace");
        let (qc, _) = run(8);
        assert_ne!(qa.digest(), qc.digest(), "different exploration seed, different table");
    }

    #[test]
    fn quantize_stays_in_table_bounds() {
        for rung in [0usize, 1, 14, 29] {
            for avg in [0.0, 50.0, 129.9, 130.0, 140.0, 500.0] {
                for busy in [0.0, 0.3, 0.99, 1.0] {
                    let s = RlCapPolicy::quantize(&view(rung, avg, 130.0, busy));
                    assert!(s < STATES, "state {s} out of bounds");
                }
            }
        }
    }

    #[test]
    fn frozen_policies_never_update() {
        let mut p = RlCapPolicy::frozen(QTable::zeroed());
        for _ in 0..50 {
            p.node_decide(&view(5, 150.0, 130.0, 1.0));
        }
        assert_eq!(p.learn_stats(), (0, 0));
        assert_eq!(p.q_table().touched(), 0);
    }
}
