//! SLO-aware capping: spend the group budget where the tail hurts.
//!
//! The ladder and governor backends read nothing but power telemetry, so
//! under an oversubscribed budget they split it by *electrical* demand —
//! two nodes drawing 150 W get the same cap even when one is serving its
//! requests comfortably and the other is drowning in a retry storm. This
//! backend closes the loop the serving stack opens: the node half reads
//! its own `traffic.latency_ms` log-histogram (through
//! [`NodeCapView::tail_ms`]) and releases rungs more eagerly while the
//! tail is over the SLO; the group half weights each node's measured
//! demand by its tail pressure and allocates proportionally, so watts
//! flow to the nodes whose p99 is furthest past the objective.
//!
//! Determinism: both halves are pure functions of the view/demand slices.
//! The group half runs serially at the root barrier over the full
//! answering set (like every group policy), so serial ≡ parallel ≡ any
//! shard count holds by construction. The policy *does* require
//! observability: with obs off every `tail_ms` is 0.0 and the backend
//! degrades to the ladder walk over proportional-to-demand allocation.

use crate::group::{allocate, AllocationPolicy};
use crate::{CapDecision, CapPolicy, GroupDemand, NodeCapView};

/// Tuning for [`SloCapPolicy`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SloConfig {
    /// Latency objective on p99 completion latency, milliseconds.
    pub slo_ms: f64,
    /// Weight of tail pressure in the group allocation: a node at
    /// `k × slo_ms` tail bids `demand_w × (1 + boost × min(k, max_over))`
    /// watts of effective demand.
    pub boost: f64,
    /// Clamp on the tail-pressure ratio, so one node in a death spiral
    /// cannot starve the whole group to its floor.
    pub max_over: f64,
}

impl Default for SloConfig {
    fn default() -> Self {
        // slo_ms matches the emergency scenario's 0.05 ms objective;
        // boost 1.0 doubles a node's bid at twice the objective.
        SloConfig { slo_ms: 0.05, boost: 1.0, max_over: 4.0 }
    }
}

/// The SLO-aware backend. See the module docs.
#[derive(Clone, Debug, PartialEq)]
pub struct SloCapPolicy {
    cfg: SloConfig,
}

impl SloCapPolicy {
    pub fn new() -> Self {
        SloCapPolicy { cfg: SloConfig::default() }
    }

    pub fn with_config(cfg: SloConfig) -> Self {
        SloCapPolicy { cfg }
    }

    /// Tail-pressure ratio in `[0, max_over]`: how far past the SLO a
    /// node's p99 sits.
    fn pressure(&self, tail_ms: f64) -> f64 {
        if self.cfg.slo_ms <= 0.0 || tail_ms <= self.cfg.slo_ms {
            0.0
        } else {
            (tail_ms / self.cfg.slo_ms - 1.0).min(self.cfg.max_over)
        }
    }
}

impl Default for SloCapPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl CapPolicy for SloCapPolicy {
    fn name(&self) -> &'static str {
        "slo"
    }

    /// The ladder walk with tail-aware hysteresis: compliance (escalate
    /// while over the cap) is untouched, but a node whose p99 is past the
    /// SLO releases rungs with half the hysteresis margin — it claws back
    /// performance as soon as the window dips under the cap instead of
    /// waiting for a comfortable gap.
    fn node_decide(&mut self, v: &NodeCapView) -> CapDecision {
        let hyst =
            if self.pressure(v.tail_ms) > 0.0 { v.hysteresis_w * 0.5 } else { v.hysteresis_w };
        if v.window_avg_w > v.cap_w {
            CapDecision::Escalate
        } else if v.window_avg_w < v.cap_w - hyst && v.rung > 0 {
            CapDecision::Deescalate
        } else {
            CapDecision::Hold
        }
    }

    /// Proportional allocation over tail-weighted demand. The weights are
    /// a pure per-entry function plus whole-set sums inside `allocate`,
    /// and the root always hands the full answering set in registration
    /// order — the same partition-invariance argument as
    /// `AllocationPolicy::ProportionalToDemand`.
    fn group_allocate(&self, budget_w: f64, demand: &[GroupDemand], floor_w: f64) -> Vec<f64> {
        let weighted: Vec<f64> = demand
            .iter()
            .map(|d| d.demand_w * (1.0 + self.cfg.boost * self.pressure(d.tail_ms)))
            .collect();
        allocate(&AllocationPolicy::ProportionalToDemand, budget_w, &weighted, floor_w)
    }

    fn wants_tail(&self) -> bool {
        true
    }

    fn clone_box(&self) -> Box<dyn CapPolicy> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(rung: usize, avg: f64, cap: f64, tail_ms: f64) -> NodeCapView {
        NodeCapView {
            cap_w: cap,
            window_avg_w: avg,
            hysteresis_w: 2.0,
            rung,
            deepest: 29,
            busy_frac: 1.0,
            issue_frac: 0.5,
            now_ms: 1000.0,
            tail_ms,
        }
    }

    fn d(node: u32, demand_w: f64, tail_ms: f64) -> GroupDemand {
        GroupDemand { node, demand_w, tail_ms }
    }

    #[test]
    fn compliance_is_untouched_by_the_tail() {
        let mut p = SloCapPolicy::new();
        assert_eq!(p.node_decide(&view(0, 150.0, 130.0, 10.0)), CapDecision::Escalate);
        assert_eq!(p.node_decide(&view(29, 150.0, 130.0, 0.0)), CapDecision::Escalate);
    }

    #[test]
    fn tail_pressure_halves_the_release_hysteresis() {
        let mut p = SloCapPolicy::new();
        // 1.5 W under the cap: inside the 2 W band normally, but a node
        // past its SLO releases at the halved 1 W band.
        assert_eq!(p.node_decide(&view(3, 128.5, 130.0, 0.01)), CapDecision::Hold);
        assert_eq!(p.node_decide(&view(3, 128.5, 130.0, 1.0)), CapDecision::Deescalate);
        // Without a rung to release there is nothing to do either way.
        assert_eq!(p.node_decide(&view(0, 128.5, 130.0, 1.0)), CapDecision::Hold);
    }

    #[test]
    fn budget_flows_to_the_longest_tail() {
        let p = SloCapPolicy::new();
        // Equal electrical demand, very different service pain.
        let demand = [d(0, 150.0, 0.01), d(1, 150.0, 0.50)];
        let caps = p.group_allocate(280.0, &demand, 110.0);
        assert!(caps[1] > caps[0], "the node past its SLO must win budget: {caps:?}");
        let total: f64 = caps.iter().sum();
        assert!(total <= 280.0 + 1e-9, "budget respected: {total}");
        assert!(caps.iter().all(|&c| c >= 110.0), "floor respected: {caps:?}");
    }

    #[test]
    fn zero_tails_degrade_to_plain_proportional() {
        let p = SloCapPolicy::new();
        let demand = [d(0, 160.0, 0.0), d(1, 120.0, 0.0)];
        let caps = p.group_allocate(300.0, &demand, 110.0);
        let plain =
            allocate(&AllocationPolicy::ProportionalToDemand, 300.0, &[160.0, 120.0], 110.0);
        assert_eq!(caps, plain, "no tail signal → proportional-to-demand");
    }

    #[test]
    fn pressure_is_clamped() {
        let p = SloCapPolicy::new();
        // A 1000× SLO miss bids no more than max_over allows.
        let demand = [d(0, 150.0, 50.0), d(1, 150.0, 0.0)];
        let caps = p.group_allocate(280.0, &demand, 110.0);
        let expect = allocate(
            &AllocationPolicy::ProportionalToDemand,
            280.0,
            &[150.0 * (1.0 + 4.0), 150.0],
            110.0,
        );
        assert_eq!(caps, expect, "tail pressure clamps at max_over");
    }
}
