//! Energy-proportional governor backend (race-to-idle / utilization
//! tracking, after Jelvani & Martin's subsystem-level power management).
//!
//! The ladder converges one rung per control period, so a transient load
//! spike drags the node down the ladder and back one step at a time. The
//! governor instead treats the overshoot as a *distance*: it jumps deep
//! enough in one period to clear the cap, and when utilization collapses
//! it races back toward the unthrottled rung so work completes at full
//! speed and the node earns real idle time (energy-proportional "race to
//! idle") instead of lingering half-throttled.

use crate::{allocate, AllocationPolicy, CapDecision, CapPolicy, GroupDemand, NodeCapView};

/// Tunables for [`GovernorCapPolicy`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GovernorConfig {
    /// Watts one rung is assumed to shed when sizing an over-cap jump.
    /// Smaller values jump deeper per period.
    pub rung_step_w: f64,
    /// Busy fraction at or below which the node counts as near-idle and
    /// the governor races toward rung 0.
    pub idle_busy_frac: f64,
    /// Headroom under the cap (in watts) required before racing to idle.
    pub race_headroom_w: f64,
    /// Maximum rungs released per control period while racing to idle.
    pub release_burst: usize,
}

impl Default for GovernorConfig {
    fn default() -> Self {
        GovernorConfig {
            rung_step_w: 2.0,
            idle_busy_frac: 0.10,
            race_headroom_w: 5.0,
            release_burst: 4,
        }
    }
}

/// The governor backend. Stateless between periods (every decision is a
/// pure function of the current [`NodeCapView`]), so replays are trivially
/// deterministic.
#[derive(Clone, Debug, PartialEq)]
pub struct GovernorCapPolicy {
    cfg: GovernorConfig,
    group: AllocationPolicy,
}

impl GovernorCapPolicy {
    pub fn new() -> Self {
        Self::with_config(GovernorConfig::default())
    }

    pub fn with_config(cfg: GovernorConfig) -> Self {
        // Busy nodes get the headroom idle nodes are not using — the
        // group-level expression of energy proportionality.
        GovernorCapPolicy { cfg, group: AllocationPolicy::ProportionalToDemand }
    }

    pub fn config(&self) -> &GovernorConfig {
        &self.cfg
    }
}

impl Default for GovernorCapPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl CapPolicy for GovernorCapPolicy {
    fn name(&self) -> &'static str {
        "governor"
    }

    fn node_decide(&mut self, v: &NodeCapView) -> CapDecision {
        let over_w = v.window_avg_w - v.cap_w;
        if over_w > 0.0 {
            // Jump far enough to clear the overshoot in one period.
            let rungs = (over_w / self.cfg.rung_step_w).ceil().max(1.0) as usize;
            CapDecision::SetRung((v.rung + rungs).min(v.deepest))
        } else if v.rung > 0
            && v.busy_frac <= self.cfg.idle_busy_frac
            && v.window_avg_w < v.cap_w - self.cfg.race_headroom_w
        {
            // Near-idle and comfortably under the cap: race to idle.
            CapDecision::SetRung(v.rung.saturating_sub(self.cfg.release_burst))
        } else if v.window_avg_w < v.cap_w - v.hysteresis_w && v.rung > 0 {
            CapDecision::Deescalate
        } else {
            CapDecision::Hold
        }
    }

    fn group_allocate(&self, budget_w: f64, demand: &[GroupDemand], floor_w: f64) -> Vec<f64> {
        let demand_w: Vec<f64> = demand.iter().map(|d| d.demand_w).collect();
        allocate(&self.group, budget_w, &demand_w, floor_w)
    }

    fn node_quiescent(&self, window_avg_w: f64, cap_w: Option<f64>, hysteresis_w: f64) -> bool {
        // At rung 0 (the only rung the machine asks about) a steady
        // under-cap sample yields Hold or SetRung(0): inert, like the
        // ladder. The race-to-idle branch cannot fire at rung 0.
        match cap_w {
            Some(c) => window_avg_w < c - hysteresis_w,
            None => true,
        }
    }

    fn clone_box(&self) -> Box<dyn CapPolicy> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(rung: usize, avg: f64, cap: f64, busy: f64) -> NodeCapView {
        NodeCapView {
            cap_w: cap,
            window_avg_w: avg,
            hysteresis_w: 1.0,
            rung,
            deepest: 29,
            busy_frac: busy,
            issue_frac: busy,
            now_ms: 0.0,
            tail_ms: 0.0,
        }
    }

    #[test]
    fn overshoot_sizes_the_jump() {
        let mut g = GovernorCapPolicy::new();
        // 7 W over at 2 W per rung → 4 rungs deeper in one period.
        assert_eq!(g.node_decide(&view(3, 137.0, 130.0, 1.0)), CapDecision::SetRung(7));
        // Tiny overshoot still moves at least one rung.
        assert_eq!(g.node_decide(&view(3, 130.2, 130.0, 1.0)), CapDecision::SetRung(4));
        // Jumps clamp at the ladder floor.
        assert_eq!(g.node_decide(&view(28, 230.0, 130.0, 1.0)), CapDecision::SetRung(29));
    }

    #[test]
    fn near_idle_races_to_rung_zero() {
        let mut g = GovernorCapPolicy::new();
        assert_eq!(g.node_decide(&view(9, 80.0, 130.0, 0.05)), CapDecision::SetRung(5));
        assert_eq!(g.node_decide(&view(2, 80.0, 130.0, 0.0)), CapDecision::SetRung(0));
    }

    #[test]
    fn busy_and_under_cap_releases_one_rung() {
        let mut g = GovernorCapPolicy::new();
        assert_eq!(g.node_decide(&view(9, 120.0, 130.0, 0.9)), CapDecision::Deescalate);
        assert_eq!(g.node_decide(&view(9, 129.5, 130.0, 0.9)), CapDecision::Hold);
        assert_eq!(g.node_decide(&view(0, 100.0, 130.0, 0.9)), CapDecision::Hold);
    }
}
