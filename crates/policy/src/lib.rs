//! `capsim-policy` — the pluggable capping-policy layer.
//!
//! The paper's capping behaviour is one *inferred* policy: the BMC walks
//! the throttle ladder one rung per control period while the DCM divides
//! the group budget with a closed allocation rule. Its headline result —
//! deep caps trade small power savings for large performance loss — is
//! exactly the trade-off a policy should navigate, and the related work
//! names two alternatives: governor-style energy-proportional control
//! (Jelvani & Martin) and a learned cap action (Raj et al.).
//!
//! This crate extracts that decision surface into one [`CapPolicy`] trait
//! spanning both layers:
//!
//! * **Node level** — every control period the BMC shows the policy a
//!   [`NodeCapView`] (windowed power, active cap, current rung, activity
//!   counters) and gets back a [`CapDecision`]. Guardrails (failsafe,
//!   watchdog, cap-violation detection, DCMI correction time) stay in the
//!   BMC: a policy chooses rungs, it cannot disable safety.
//! * **Group level** — at every fleet barrier the DCM hands the policy the
//!   budget and the answering nodes' demand ([`GroupDemand`]) and gets
//!   back per-node caps.
//!
//! Three backends ship: [`LadderCapPolicy`] (the paper's behaviour,
//! bit-identical to the pre-trait control loop), [`GovernorCapPolicy`]
//! (race-to-idle / utilization tracking) and [`RlCapPolicy`] (tabular
//! Q-learning over quantized counter state, trained offline inside the
//! deterministic fleet). [`CapPolicySpec`] is the serializable selector
//! that builders and the chaos harness thread through.

mod governor;
mod group;
mod rl;
mod slo;

pub use governor::{GovernorCapPolicy, GovernorConfig};
pub use group::{allocate, AllocationPolicy};
pub use rl::{splitmix64, QTable, RlCapPolicy, RlConfig, ACTIONS, STATES};
pub use slo::{SloCapPolicy, SloConfig};

/// What the BMC shows the node-level half of a policy each control period.
///
/// Everything here is derived from the same telemetry the BMC already
/// samples (window power, activity counters); a policy sees no more than
/// the firmware does.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NodeCapView {
    /// The active cap in watts (the BMC only consults the policy while a
    /// cap is active).
    pub cap_w: f64,
    /// Windowed average node power in watts.
    pub window_avg_w: f64,
    /// De-escalation hysteresis: the ladder walk only releases a rung
    /// below `cap_w - hysteresis_w`.
    pub hysteresis_w: f64,
    /// Current rung index (0 = unthrottled).
    pub rung: usize,
    /// Deepest rung the ladder offers.
    pub deepest: usize,
    /// Fraction of the last window the cores were busy (0..=1).
    pub busy_frac: f64,
    /// Achieved issue-slot utilization over the last window (0..=1).
    pub issue_frac: f64,
    /// Simulated time of the sample in milliseconds.
    pub now_ms: f64,
    /// Tail (p99) completion latency of the node's request-serving
    /// workload in milliseconds, read from the `traffic.latency_ms`
    /// histogram. 0.0 when the node serves no traffic, observability is
    /// off, or the policy did not ask for it ([`CapPolicy::wants_tail`]).
    pub tail_ms: f64,
}

/// A node-level policy decision for one control period.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CapDecision {
    /// Keep the current rung.
    Hold,
    /// One rung deeper; at the deepest rung this records an
    /// exhausted-ladder exception instead (the paper's throttle floor).
    Escalate,
    /// One rung shallower; held at rung 0.
    Deescalate,
    /// Jump straight to a rung (clamped to the ladder). Multi-rung moves
    /// are surfaced in capsim-obs as `policy` rung changes.
    SetRung(usize),
}

/// One answering node's demand as the group-level half of a policy sees
/// it: the fleet-wide node index plus its measured power.
///
/// The index is stable across partial answering sets, so policies that
/// key decisions off node identity (e.g. a priority table) project
/// correctly when nodes drop out.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GroupDemand {
    /// Fleet-wide node index.
    pub node: u32,
    /// Measured power in watts.
    pub demand_w: f64,
    /// Tail (p99) completion latency in milliseconds, gathered serially
    /// at the barrier from the node's `traffic.latency_ms` histogram.
    /// 0.0 for batch nodes or policies that never asked
    /// ([`CapPolicy::wants_tail`]).
    pub tail_ms: f64,
}

/// A capping policy spanning the BMC (node level) and the DCM (group
/// level).
///
/// Implementations must be deterministic: any randomness is drawn from a
/// seed installed via [`CapPolicy::reseed`], so serial and parallel fleet
/// replays stay byte-identical.
pub trait CapPolicy: std::fmt::Debug + Send + Sync {
    /// Stable name, used in events, metrics and bench artifacts.
    fn name(&self) -> &'static str;

    /// Node level: one control-period decision. Called only while a cap
    /// is active, with plausible telemetry, and with no failsafe engaged
    /// — the BMC's guardrails run before and regardless.
    fn node_decide(&mut self, view: &NodeCapView) -> CapDecision;

    /// Group level: divide `budget_w` across the answering nodes. Returns
    /// one cap per entry of `demand`, in order. Caps must respect
    /// `floor_w` (capping a node below its idle power is useless).
    fn group_allocate(&self, budget_w: f64, demand: &[GroupDemand], floor_w: f64) -> Vec<f64>;

    /// Does this policy read tail latency? When `false` (the default)
    /// neither the BMC nor the fleet barrier touches the observability
    /// registry to fill `tail_ms` — the existing backends keep their
    /// obs-independent fast paths bit-for-bit.
    fn wants_tail(&self) -> bool {
        false
    }

    /// Would a steady under-cap sample at rung 0 leave this policy inert?
    ///
    /// Gates the machine's idle fast-forward: returning `true` promises
    /// that feeding the same sample again produces no rung change and no
    /// internal state change. Learning or exploring policies must return
    /// `false`. The default is the conservative `false`.
    fn node_quiescent(&self, window_avg_w: f64, cap_w: Option<f64>, hysteresis_w: f64) -> bool {
        let _ = (window_avg_w, cap_w, hysteresis_w);
        false
    }

    /// Install a per-node random stream. Deterministic builders call this
    /// with a seed derived from the node's own seed; policies without
    /// randomness ignore it.
    fn reseed(&mut self, seed: u64) {
        let _ = seed;
    }

    /// Clone into a fresh boxed policy (per-node instantiation).
    fn clone_box(&self) -> Box<dyn CapPolicy>;

    /// Downcast support (the RL trainer harvests per-node Q-tables).
    fn as_any(&self) -> &dyn std::any::Any;
}

impl Clone for Box<dyn CapPolicy> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// The default backend: the paper's inferred policy, verbatim.
///
/// Node level reproduces the pre-trait BMC walk bit-for-bit: escalate one
/// rung when over the cap, de-escalate one rung when below
/// `cap - hysteresis`, hold otherwise. Group level wraps an
/// [`AllocationPolicy`] (default [`AllocationPolicy::Uniform`], matching
/// the fleet builder's historical default).
#[derive(Clone, Debug, PartialEq)]
pub struct LadderCapPolicy {
    group: AllocationPolicy,
}

impl LadderCapPolicy {
    pub fn new() -> Self {
        LadderCapPolicy { group: AllocationPolicy::Uniform }
    }

    /// Ladder walk at the node level, `group` at the group level.
    pub fn with_group(group: AllocationPolicy) -> Self {
        LadderCapPolicy { group }
    }

    /// The wrapped group allocation rule.
    pub fn group(&self) -> &AllocationPolicy {
        &self.group
    }
}

impl Default for LadderCapPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl CapPolicy for LadderCapPolicy {
    fn name(&self) -> &'static str {
        "ladder"
    }

    fn node_decide(&mut self, v: &NodeCapView) -> CapDecision {
        if v.window_avg_w > v.cap_w {
            CapDecision::Escalate
        } else if v.window_avg_w < v.cap_w - v.hysteresis_w && v.rung > 0 {
            CapDecision::Deescalate
        } else {
            CapDecision::Hold
        }
    }

    fn group_allocate(&self, budget_w: f64, demand: &[GroupDemand], floor_w: f64) -> Vec<f64> {
        let demand_w: Vec<f64> = demand.iter().map(|d| d.demand_w).collect();
        match &self.group {
            // Project the fleet-wide priority table onto the answering
            // subset; absent entries default to the lowest priority.
            AllocationPolicy::Priority(p) => {
                let projected: Vec<u8> = demand
                    .iter()
                    .map(|d| p.get(d.node as usize).copied().unwrap_or(u8::MAX))
                    .collect();
                allocate(&AllocationPolicy::Priority(projected), budget_w, &demand_w, floor_w)
            }
            other => allocate(other, budget_w, &demand_w, floor_w),
        }
    }

    fn node_quiescent(&self, window_avg_w: f64, cap_w: Option<f64>, hysteresis_w: f64) -> bool {
        // Exactly the pre-trait quiescence predicate: comfortably under
        // the cap (beyond the hysteresis), or no cap at all.
        match cap_w {
            Some(c) => window_avg_w < c - hysteresis_w,
            None => true,
        }
    }

    fn clone_box(&self) -> Box<dyn CapPolicy> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Profiling aid: pins the node at one rung regardless of telemetry.
///
/// Per-rung power/performance curves (and the ladder monotonicity tests)
/// need the machine held at an exact rung for a whole run; no closed-loop
/// policy can promise that. Group level allocates proportional to demand.
#[derive(Clone, Debug, PartialEq)]
pub struct PinnedRungPolicy {
    rung: usize,
}

impl PinnedRungPolicy {
    pub fn new(rung: usize) -> Self {
        PinnedRungPolicy { rung }
    }
}

impl CapPolicy for PinnedRungPolicy {
    fn name(&self) -> &'static str {
        "pinned"
    }

    fn node_decide(&mut self, _v: &NodeCapView) -> CapDecision {
        CapDecision::SetRung(self.rung)
    }

    fn group_allocate(&self, budget_w: f64, demand: &[GroupDemand], floor_w: f64) -> Vec<f64> {
        let demand_w: Vec<f64> = demand.iter().map(|d| d.demand_w).collect();
        allocate(&AllocationPolicy::ProportionalToDemand, budget_w, &demand_w, floor_w)
    }

    fn clone_box(&self) -> Box<dyn CapPolicy> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Serializable policy selector: what builders, the chaos harness and
/// bench bins thread around instead of boxed trait objects.
#[derive(Clone, Debug, PartialEq)]
pub enum CapPolicySpec {
    /// The paper's ladder walk plus a group allocation rule.
    Ladder(AllocationPolicy),
    /// Energy-proportional governor (race-to-idle / utilization tracking).
    Governor(GovernorConfig),
    /// A frozen tabular-RL policy (greedy over the carried Q-table).
    Rl(QTable),
    /// SLO-aware capping: spends the group budget where the latency tail
    /// is longest (requires observability — see [`SloCapPolicy`]).
    Slo(SloConfig),
}

impl CapPolicySpec {
    pub fn name(&self) -> &'static str {
        match self {
            CapPolicySpec::Ladder(_) => "ladder",
            CapPolicySpec::Governor(_) => "governor",
            CapPolicySpec::Rl(_) => "rl",
            CapPolicySpec::Slo(_) => "slo",
        }
    }

    /// Instantiate the backend this spec describes.
    pub fn build(&self) -> Box<dyn CapPolicy> {
        match self {
            CapPolicySpec::Ladder(group) => Box::new(LadderCapPolicy::with_group(group.clone())),
            CapPolicySpec::Governor(cfg) => Box::new(GovernorCapPolicy::with_config(*cfg)),
            CapPolicySpec::Rl(q) => Box::new(RlCapPolicy::frozen(q.clone())),
            CapPolicySpec::Slo(cfg) => Box::new(SloCapPolicy::with_config(*cfg)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(rung: usize, avg: f64, cap: f64) -> NodeCapView {
        NodeCapView {
            cap_w: cap,
            window_avg_w: avg,
            hysteresis_w: 1.0,
            rung,
            deepest: 29,
            busy_frac: 1.0,
            issue_frac: 0.5,
            now_ms: 1000.0,
            tail_ms: 0.0,
        }
    }

    #[test]
    fn ladder_reproduces_the_inline_walk() {
        let mut p = LadderCapPolicy::new();
        assert_eq!(p.node_decide(&view(0, 150.0, 130.0)), CapDecision::Escalate);
        assert_eq!(p.node_decide(&view(29, 150.0, 130.0)), CapDecision::Escalate);
        assert_eq!(p.node_decide(&view(3, 120.0, 130.0)), CapDecision::Deescalate);
        // Inside the hysteresis band: hold.
        assert_eq!(p.node_decide(&view(3, 129.5, 130.0)), CapDecision::Hold);
        // At rung 0 there is nothing to release.
        assert_eq!(p.node_decide(&view(0, 100.0, 130.0)), CapDecision::Hold);
    }

    #[test]
    fn ladder_quiescence_matches_the_pre_trait_predicate() {
        let p = LadderCapPolicy::new();
        assert!(p.node_quiescent(100.0, Some(130.0), 1.0));
        assert!(!p.node_quiescent(129.5, Some(130.0), 1.0));
        assert!(p.node_quiescent(100.0, None, 1.0));
    }

    #[test]
    fn ladder_group_half_matches_allocate() {
        let p = LadderCapPolicy::with_group(AllocationPolicy::ProportionalToDemand);
        let demand = [
            GroupDemand { node: 0, demand_w: 160.0, tail_ms: 0.0 },
            GroupDemand { node: 1, demand_w: 120.0, tail_ms: 0.0 },
        ];
        let caps = p.group_allocate(300.0, &demand, 110.0);
        assert_eq!(
            caps,
            allocate(&AllocationPolicy::ProportionalToDemand, 300.0, &[160.0, 120.0], 110.0)
        );
    }

    #[test]
    fn ladder_priority_projects_by_node_index() {
        // Node 2 answered, node 1 did not: the priority table must follow
        // node *identity*, not position in the answering set.
        let p = LadderCapPolicy::with_group(AllocationPolicy::Priority(vec![2, 0, 1]));
        let demand = [
            GroupDemand { node: 0, demand_w: 155.0, tail_ms: 0.0 },
            GroupDemand { node: 2, demand_w: 155.0, tail_ms: 0.0 },
        ];
        let caps = p.group_allocate(300.0, &demand, 110.0);
        // Node 2 (priority 1) beats node 0 (priority 2).
        assert!(caps[1] > caps[0]);
    }

    #[test]
    fn specs_build_their_backends() {
        assert_eq!(CapPolicySpec::Ladder(AllocationPolicy::Uniform).build().name(), "ladder");
        assert_eq!(CapPolicySpec::Governor(GovernorConfig::default()).build().name(), "governor");
        assert_eq!(CapPolicySpec::Rl(QTable::zeroed()).build().name(), "rl");
        assert_eq!(CapPolicySpec::Slo(SloConfig::default()).build().name(), "slo");
    }

    #[test]
    fn boxed_policies_clone() {
        let p: Box<dyn CapPolicy> = Box::new(LadderCapPolicy::new());
        let q = p.clone();
        assert_eq!(q.name(), "ladder");
    }
}
