//! Workload construction for simulated nodes.
//!
//! A node runs an [`EpochWorkload`]; this module
//! owns how those workloads are *chosen and built*. [`LoadKind`] is the
//! closed set of synthetic batch kernels the fleet engine has always
//! shipped; [`WorkloadSpec`] is the config-driven constructor that mirrors
//! `CapPolicySpec` in capsim-policy — a cloneable description that any
//! layer (fleet builder, chaos scenario, traffic generator) can carry and
//! turn into per-node workload instances at machine-build time. Layers
//! that need workloads the node crate cannot know about (e.g. the
//! request-serving queues in capsim-traffic) plug in through the
//! [`WorkloadFactory`] trait behind [`WorkloadSpec::Custom`].

use std::fmt;
use std::sync::Arc;

use crate::machine::{EpochWorkload, Machine};
use crate::region::{CodeBlock, Region};

/// Well-known observability keys for request-serving workloads.
///
/// Any [`WorkloadFactory`] that models request traffic records into these
/// series (via [`Machine::obs_mut`](crate::Machine::obs_mut)) so that
/// fleet-level consumers — `FleetReport::traffic()` in capsim-dcm, the
/// traffic bench — can read latency and goodput without knowing which
/// generator produced them.
pub mod traffic_keys {
    use capsim_obs::LogBuckets;

    /// Requests offered to a node (admitted + shed).
    pub const ARRIVALS: &str = "traffic.arrivals";
    /// Requests fully served.
    pub const COMPLETED: &str = "traffic.completed";
    /// Requests dropped because the bounded queue was full.
    pub const SHED: &str = "traffic.shed";
    /// Completed requests whose latency exceeded the SLO threshold.
    pub const SLO_VIOLATIONS: &str = "traffic.slo_violations";
    /// Completion latency histogram, milliseconds, log-spaced buckets.
    pub const LATENCY_MS: &str = "traffic.latency_ms";
    /// High-water queue depth (gauge; fleet merge keeps the max).
    pub const QUEUE_PEAK: &str = "traffic.queue_peak";
    /// Requests still queued when the run ended. Recorded once from the
    /// workload `finish` hook — as a *counter*, not a gauge, because the
    /// fleet merge sums counters and maxes gauges, and exact fleet-wide
    /// conservation (`arrivals == completed + shed + in_flight`) needs
    /// the per-node values summed.
    pub const IN_FLIGHT: &str = "traffic.in_flight";
    /// Client retry attempts re-entering the arrival stream (closed-loop
    /// clients only). Every retry also counts as an arrival.
    pub const RETRIES: &str = "traffic.retries";
    /// Completions the client gave up on: latency exceeded the client
    /// timeout (each such completion schedules a retry until the retry
    /// budget runs out).
    pub const CLIENT_TIMEOUTS: &str = "traffic.client_timeouts";
    /// Requests this node shed that the fleet barrier re-homed onto
    /// another node's queue.
    pub const FAILOVER_OUT: &str = "traffic.failover_out";
    /// Requests this node accepted on behalf of an overloaded peer.
    pub const FAILOVER_IN: &str = "traffic.failover_in";

    /// Number of request priority classes. Class 0 is the most critical;
    /// brownout sheds from the highest class downward.
    pub const CLASSES: usize = 3;
    /// Per-priority-class arrivals. Indexed by class; sums to `ARRIVALS`.
    pub const ARRIVALS_BY_CLASS: [&str; CLASSES] =
        ["traffic.arrivals_p0", "traffic.arrivals_p1", "traffic.arrivals_p2"];
    /// Per-priority-class completions. Sums to `COMPLETED`.
    pub const COMPLETED_BY_CLASS: [&str; CLASSES] =
        ["traffic.completed_p0", "traffic.completed_p1", "traffic.completed_p2"];
    /// Per-priority-class sheds (queue overflow + brownout). Sums to
    /// `SHED`. Conservation holds per class:
    /// `arrivals_pC == completed_pC + shed_pC + in_flight_pC`.
    pub const SHED_BY_CLASS: [&str; CLASSES] =
        ["traffic.shed_p0", "traffic.shed_p1", "traffic.shed_p2"];
    /// Per-priority-class in-flight remainder at end of run. Counter for
    /// the same summing reason as `IN_FLIGHT`.
    pub const IN_FLIGHT_BY_CLASS: [&str; CLASSES] =
        ["traffic.in_flight_p0", "traffic.in_flight_p1", "traffic.in_flight_p2"];

    /// AIMD offered-rate multiplier gauge in `(0, 1]`. The fleet merge
    /// keeps the max, so the fleet-wide value is the *least* backed-off
    /// client population's multiplier.
    pub const RATE_MULTIPLIER: &str = "traffic.rate_multiplier";
    /// Arrivals deliberately shed by the brownout controller (every one
    /// also counts in `SHED` and the class's shed counter).
    pub const BROWNOUT_SHED: &str = "traffic.brownout_shed";
    /// Highest priority class currently admitted (gauge; `CLASSES - 1`
    /// means no brownout in effect).
    pub const BROWNOUT_MAX_CLASS: &str = "traffic.brownout_max_class";

    /// Latency bucket layout: 1 µs up to ~34 s in ×2 steps. Log spacing
    /// keeps p999 meaningful at millisecond scale — a linear layout wide
    /// enough for the tail would quantize the body into one bucket.
    pub const LATENCY_BUCKETS: LogBuckets = LogBuckets { start: 0.001, factor: 2.0, count: 26 };
}

/// Synthetic workload mix for a fleet node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoadKind {
    /// ALU-bound: hot loop out of L1.
    Compute,
    /// Memory-bound: strided loads over a working set.
    Stream,
    /// Both, plus a mostly-predictable branch.
    Mixed,
    /// Bursty: a dense burst of mixed work followed by a ~4 ms idle gap.
    /// Power swings between near-TDP and idle floor within one epoch —
    /// the load that stresses guardrail plausibility checks and the
    /// violation detector's hysteresis.
    Pulse,
}

impl LoadKind {
    /// The round-robin default: Compute/Stream/Mixed by node index.
    pub fn for_index(i: usize) -> LoadKind {
        match i % 3 {
            0 => LoadKind::Compute,
            1 => LoadKind::Stream,
            _ => LoadKind::Mixed,
        }
    }

    /// Datacenter-shaped duty-cycle assignment: a minority of nodes runs
    /// sustained Compute/Stream/Mixed work while the majority sits in
    /// bursty [`LoadKind::Pulse`] loads that are mostly idle — the
    /// utilization profile the idle fast-forward and poll-elision paths
    /// are built for. Select with [`WorkloadSpec::DatacenterMix`].
    pub fn datacenter_for_index(i: usize) -> LoadKind {
        // 3 sustained-busy nodes per 16 (~19% busy) — datacenter fleets
        // run far below peak on average, which is the premise of group
        // power capping in the first place.
        match i % 16 {
            0 => LoadKind::Compute,
            1 => LoadKind::Stream,
            2 => LoadKind::Mixed,
            _ => LoadKind::Pulse,
        }
    }
}

/// A self-contained epoch workload built from machine primitives.
pub struct SyntheticLoad {
    kind: LoadKind,
    block: CodeBlock,
    region: Region,
    i: u64,
}

impl SyntheticLoad {
    /// Allocate the kernel's code block and working set on `m`.
    pub fn new(m: &mut Machine, kind: LoadKind) -> Self {
        let block = m.code_block(96, 24);
        let region = m.alloc(64 * 1024);
        SyntheticLoad { kind, block, region, i: 0 }
    }
}

impl EpochWorkload for SyntheticLoad {
    fn quantum(&mut self, m: &mut Machine) {
        let start = (self.i * 64) % self.region.bytes();
        match self.kind {
            LoadKind::Compute => {
                for _ in 0..4 {
                    m.exec_block(&self.block);
                }
                m.compute(1000);
            }
            LoadKind::Stream => {
                m.exec_block(&self.block);
                m.load_stream(self.region.base(), self.region.bytes(), start, 64, 64);
            }
            LoadKind::Mixed => {
                for _ in 0..2 {
                    m.exec_block(&self.block);
                }
                m.load_stream(self.region.base(), self.region.bytes(), start, 64, 32);
                m.branch(&self.block, !self.i.is_multiple_of(7));
            }
            LoadKind::Pulse => {
                for _ in 0..8 {
                    m.exec_block(&self.block);
                }
                m.load_stream(self.region.base(), self.region.bytes(), start, 64, 64);
                m.compute(2000);
                m.idle(4e-3);
            }
        }
        self.i += 1;
    }
}

/// Builds per-node workloads for a [`WorkloadSpec::Custom`] backend.
///
/// `build` runs once per node at fleet-construction time, after the
/// machine exists but before the first epoch; `index` is the node's
/// registration index and `seed` a per-node splitmix-derived seed, so a
/// factory can be both node-aware and deterministic.
pub trait WorkloadFactory: Send + Sync + fmt::Debug {
    /// Stable backend name (used in reports and for spec equality).
    fn name(&self) -> &'static str;
    /// Construct the workload for node `index` on machine `m`.
    fn build(&self, m: &mut Machine, index: usize, seed: u64) -> Box<dyn EpochWorkload>;
}

/// Config-driven workload constructor, mirroring `CapPolicySpec`: a
/// cloneable description of *which* workload every node gets, resolved to
/// concrete [`EpochWorkload`] instances at build time via
/// [`WorkloadSpec::build_for`].
#[derive(Clone, Debug, Default)]
pub enum WorkloadSpec {
    /// Every node runs the same synthetic kernel.
    Uniform(LoadKind),
    /// [`LoadKind::for_index`] round-robin — the historical fleet default.
    #[default]
    RoundRobin,
    /// [`LoadKind::datacenter_for_index`] — mostly-idle datacenter shape.
    DatacenterMix,
    /// An external factory (e.g. capsim-traffic's request queues).
    Custom(Arc<dyn WorkloadFactory>),
}

impl WorkloadSpec {
    /// Stable name of the selected backend.
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadSpec::Uniform(LoadKind::Compute) => "compute",
            WorkloadSpec::Uniform(LoadKind::Stream) => "stream",
            WorkloadSpec::Uniform(LoadKind::Mixed) => "mixed",
            WorkloadSpec::Uniform(LoadKind::Pulse) => "pulse",
            WorkloadSpec::RoundRobin => "round_robin",
            WorkloadSpec::DatacenterMix => "datacenter_mix",
            WorkloadSpec::Custom(f) => f.name(),
        }
    }

    /// The synthetic kernel node `index` would run, for the built-in
    /// variants (`None` for [`WorkloadSpec::Custom`]).
    pub fn kind_for(&self, index: usize) -> Option<LoadKind> {
        match self {
            WorkloadSpec::Uniform(kind) => Some(*kind),
            WorkloadSpec::RoundRobin => Some(LoadKind::for_index(index)),
            WorkloadSpec::DatacenterMix => Some(LoadKind::datacenter_for_index(index)),
            WorkloadSpec::Custom(_) => None,
        }
    }

    /// Construct node `index`'s workload on machine `m`. `seed` is only
    /// consumed by [`WorkloadSpec::Custom`] backends — the synthetic
    /// kernels are deterministic by construction.
    pub fn build_for(&self, m: &mut Machine, index: usize, seed: u64) -> Box<dyn EpochWorkload> {
        match self {
            WorkloadSpec::Custom(f) => f.build(m, index, seed),
            _ => {
                let kind = self.kind_for(index).expect("built-in spec has a kind");
                Box::new(SyntheticLoad::new(m, kind))
            }
        }
    }
}

/// Specs compare structurally for the built-in variants; custom factories
/// compare by backend name (two factories with the same name are assumed
/// to describe the same workload).
impl PartialEq for WorkloadSpec {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (WorkloadSpec::Uniform(a), WorkloadSpec::Uniform(b)) => a == b,
            (WorkloadSpec::RoundRobin, WorkloadSpec::RoundRobin) => true,
            (WorkloadSpec::DatacenterMix, WorkloadSpec::DatacenterMix) => true,
            (WorkloadSpec::Custom(a), WorkloadSpec::Custom(b)) => a.name() == b.name(),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::MachineBuilder;

    #[test]
    fn round_robin_and_datacenter_assignments_match_load_kind() {
        assert_eq!(WorkloadSpec::RoundRobin.kind_for(4), Some(LoadKind::Stream));
        assert_eq!(WorkloadSpec::DatacenterMix.kind_for(5), Some(LoadKind::Pulse));
        assert_eq!(WorkloadSpec::DatacenterMix.kind_for(16), Some(LoadKind::Compute));
        assert_eq!(WorkloadSpec::Uniform(LoadKind::Pulse).kind_for(9), Some(LoadKind::Pulse));
    }

    #[test]
    fn specs_build_runnable_workloads() {
        let mut m = MachineBuilder::tiny().seed(7).build();
        let mut w = WorkloadSpec::RoundRobin.build_for(&mut m, 0, 1);
        let before = m.now_s();
        m.step(1e-4, w.as_mut());
        assert!(m.now_s() > before, "workload advanced simulated time");
    }

    #[test]
    fn spec_equality_is_structural_and_by_name_for_custom() {
        assert_eq!(WorkloadSpec::RoundRobin, WorkloadSpec::RoundRobin);
        assert_ne!(WorkloadSpec::RoundRobin, WorkloadSpec::DatacenterMix);
        assert_eq!(WorkloadSpec::Uniform(LoadKind::Pulse), WorkloadSpec::Uniform(LoadKind::Pulse));
        assert_ne!(WorkloadSpec::Uniform(LoadKind::Pulse), WorkloadSpec::Uniform(LoadKind::Mixed));
    }
}
