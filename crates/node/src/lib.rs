//! `capsim-node` — the simulated node under study.
//!
//! Assembles the substrates into one [`Machine`]: cores (timing, P/T/C
//! states, branch prediction), the memory hierarchy, the power/thermal
//! model and the **BMC firmware** that enforces power caps out-of-band.
//!
//! The BMC implements the paper's §II control architecture: it monitors a
//! windowed average of node power and walks a totally-ordered **throttle
//! ladder** ([`ladder`]) — P-state DVFS first, then T-state duty cycling,
//! dynamic cache reconfiguration, TLB shrink and memory gating — dithering
//! between adjacent rungs when the cap falls between their power levels
//! ("the BMC switches between the two states in an attempt to honor the
//! power cap").
//!
//! Workloads run *on* the machine through the [`machine::Machine`] API:
//! every load/store/branch/block is charged through the hierarchy and the
//! timing model, so counters, time, power and energy all emerge from the
//! same execution.
//!
//! The rung *decision* each control period is pluggable: the BMC consults
//! a [`capsim_policy::CapPolicy`] backend (re-exported here as
//! [`policy`]), defaulting to the ladder walk described above. Guardrails
//! and the SEL paper trail stay in the firmware whatever the backend.

pub mod bmc;
pub mod builder;
pub mod config;
pub mod ladder;
pub mod machine;
pub mod powercap;
pub mod region;
pub mod trace;
pub mod workload;

pub use capsim_policy as policy;

pub use bmc::{Bmc, BmcTelemetry, GuardrailConfig, InvalidPowerCap, PowerCap};
pub use builder::MachineBuilder;
pub use config::MachineConfig;
pub use ladder::{Rung, ThrottleLadder};
pub use machine::{EpochWorkload, FailoverRequest, Machine, QueueRoom, RunStats, SensorFault};
pub use powercap::{PowercapError, PowercapFs};
pub use region::{CodeBlock, Region};
pub use trace::{RunTrace, TraceSample};
pub use workload::{LoadKind, SyntheticLoad, WorkloadFactory, WorkloadSpec};
