//! The simulated node: cores + hierarchy + power + BMC, and the API
//! workloads execute against.
//!
//! # Execution model
//!
//! A workload calls [`Machine::exec_block`], [`Machine::load`],
//! [`Machine::store`], [`Machine::branch`] and [`Machine::compute`] as it
//! performs its real computation on host data. Each call charges the
//! timing model:
//!
//! * committed instructions cost `n / issue_width` core cycles,
//! * memory operations traverse the simulated hierarchy; latency beyond
//!   the (pipelined, hidden) L1 hit is charged with a memory-level-
//!   parallelism exposure factor, DRAM nanoseconds likewise,
//! * [`Machine::load_serial`] charges the *full* dependent-load latency —
//!   that is what a pointer chase or the paper's stride microbenchmark
//!   measures,
//! * mispredicted branches cost a pipeline refill and execute wrong-path
//!   instructions (and one wrong-path load that can pollute the caches) —
//!   the paper's executed-vs-committed gap.
//!
//! Core cycles stretch with the active P-state and T-state duty; DRAM time
//! does not scale with frequency. Every `control_period_us` of simulated
//! time the machine computes node power from the window's activity, feeds
//! the meter/energy/thermal models, services the out-of-band IPMI port and
//! runs the BMC control loop, applying whatever rung it selects.
//!
//! # Multi-core runs
//!
//! For the multi-core extension (future-work item 1) the machine tracks
//! per-core private cache slices and counters. The workload must keep the
//! cores load-balanced (static partitioning): the global clock follows
//! core 0, which is exact when every core performs the same work per
//! round and a documented approximation otherwise.

use capsim_cpu::{CounterFile, FreqMeter, GsharePredictor, PStateTable, SimClock, TimingParams};
use capsim_ipmi::BmcPort;
use capsim_mem::{MemStats, MemoryHierarchy, VAddr, PAGE_SIZE};
use capsim_power::{
    ActivityWindow, EnergyIntegrator, NodePowerModel, PowerMeter, RaplCounters, ThermalModel,
};

use capsim_obs::EventKind;

use crate::bmc::{Bmc, BmcTelemetry, GuardrailConfig, PowerCap};
use crate::config::MachineConfig;
use crate::ladder::{Rung, ThrottleLadder};
use crate::region::{CodeBlock, Region};
use crate::trace::{RunTrace, TraceSample};

/// Bucket edges for the per-tick node-power histogram (watts). Spans the
/// idle floor (~100 W) through the uncapped Table I band (~160 W).
static POWER_W_BOUNDS: [f64; 8] = [100.0, 110.0, 120.0, 125.0, 130.0, 140.0, 150.0, 170.0];

/// A request a serving workload could not admit, exported for cross-node
/// failover at the fleet barrier. Plain data so the fleet engine can
/// route requests between nodes without depending on any particular
/// workload implementation; `kind` is a workload-defined service-class
/// discriminant and `quanta` the remaining service demand.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FailoverRequest {
    /// Original arrival time on the shedding node's clock (latency keeps
    /// accruing across the failover hop).
    pub arrival_s: f64,
    /// Remaining service demand in workload quanta.
    pub quanta: u32,
    /// Workload-defined service-class discriminant.
    pub kind: u8,
    /// Priority class (0 = most critical); preserved across the hop so
    /// per-class conservation accounting stays exact fleet-wide.
    pub class: u8,
}

/// A serving workload's queue occupancy, reported to the fleet barrier so
/// failover routing can pick the least-loaded node (`None` from batch
/// workloads, which take no part in routing).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueueRoom {
    /// Requests currently queued.
    pub depth: usize,
    /// Admissions the bounded queue can still take.
    pub free: usize,
}

/// A workload that can be driven in epoch quanta by [`Machine::step`].
///
/// Each call performs one small slice of work (a few microseconds of
/// simulated time) against the machine; the driver calls it until the
/// epoch's simulated-time budget is consumed. Implementations own their
/// own progress state (indices, regions, phase), so a node can be stepped,
/// handed to another thread, and stepped again.
///
/// The remaining methods are serving-workload hooks with batch-friendly
/// defaults: the fleet barrier uses them to route shed requests between
/// nodes ([`EpochWorkload::drain_shed`] / [`EpochWorkload::queue_room`] /
/// [`EpochWorkload::accept_failover`]) and to let a workload flush
/// end-of-run accounting ([`EpochWorkload::finish`]). Batch kernels
/// implement none of them.
pub trait EpochWorkload: Send {
    /// Execute one quantum of work. Must advance simulated time (charge
    /// at least one instruction or memory access); a quantum that charges
    /// nothing idles the node for the rest of the epoch.
    fn quantum(&mut self, m: &mut Machine);

    /// Current queue occupancy, for failover routing. `None` (the batch
    /// default) keeps the node out of routing entirely.
    fn queue_room(&self) -> Option<QueueRoom> {
        None
    }

    /// Drain the requests shed at a full queue since the last barrier.
    /// Only called (and only non-empty) when the workload defers its shed
    /// decisions to the fleet; the caller owns the final fate of every
    /// drained request — re-offered elsewhere or counted shed.
    fn drain_shed(&mut self) -> Vec<FailoverRequest> {
        Vec::new()
    }

    /// Accept a request re-offered by the fleet barrier. Returns `false`
    /// (the batch default) when the workload cannot take it; the caller
    /// then counts the request shed at its origin.
    fn accept_failover(&mut self, m: &mut Machine, req: FailoverRequest) -> bool {
        let _ = (m, req);
        false
    }

    /// End-of-run hook, called once before the machine's own
    /// `finish_run`: flush accounting that only settles when the run ends
    /// (e.g. the `traffic.in_flight` conservation counter).
    fn finish(&mut self, m: &mut Machine) {
        let _ = m;
    }
}

/// Summary of one completed run.
#[derive(Clone, Debug)]
pub struct RunStats {
    /// Simulated wall-clock execution time in seconds.
    pub wall_s: f64,
    /// Node energy over the run in joules.
    pub energy_j: f64,
    /// Time-weighted average node power (the Watts Up! number).
    pub avg_power_w: f64,
    /// APERF/MPERF-style average frequency in MHz (the Table II column).
    pub avg_freq_mhz: f64,
    /// Minimum/maximum windowed power seen.
    pub min_power_w: f64,
    pub max_power_w: f64,
    /// Core-side counters summed over cores.
    pub counters: CounterFile,
    /// Memory-side counters summed over cores.
    pub mem: MemStats,
    /// Final die temperature.
    pub die_temp_c: f64,
    /// (escalations, de-escalations, exceptions) from the BMC.
    pub bmc_stats: (u64, u64, u64),
    /// Rung index the BMC ended on.
    pub final_rung: usize,
    /// RAPL-style per-domain energy (package / PP0 / DRAM).
    pub rapl: RaplCounters,
}

struct CoreState {
    counters: CounterFile,
    unhalted_cycles_f: f64,
    /// Wall time this core has accumulated in the current window.
    win_wall_ns: f64,
    predictor: GsharePredictor,
}

/// A sensor-layer fault: a transform applied to the telemetry copy the
/// BMC samples each control tick. The meter/energy ground truth is never
/// touched — energy accounting stays conserved under any sensor fault,
/// which the chaos harness checks as an invariant.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SensorFault {
    /// Power readings stuck at a fixed value.
    StuckAt { watts: f64 },
    /// Readings drift away from truth linearly in simulated time.
    Drift { watts_per_s: f64 },
    /// Every `period_ticks`-th sample is replaced by a spike.
    Spike { watts: f64, period_ticks: u32 },
    /// The sensor returns nothing; readings collapse to zero.
    Dropout,
}

impl SensorFault {
    /// Stable tag used in event streams and fault plans.
    pub fn name(self) -> &'static str {
        match self {
            SensorFault::StuckAt { .. } => "sensor_stuck",
            SensorFault::Drift { .. } => "sensor_drift",
            SensorFault::Spike { .. } => "sensor_spike",
            SensorFault::Dropout => "sensor_dropout",
        }
    }
}

/// The simulated node.
///
/// ```
/// use capsim_node::{Machine, MachineConfig, PowerCap};
///
/// let mut m = Machine::new(MachineConfig::tiny(42));
/// m.set_power_cap(Some(PowerCap::new(135.0).unwrap()));
/// let data = m.alloc(4096);
/// let hot = m.code_block(96, 24);
/// for i in 0..1_000u64 {
///     m.exec_block(&hot);
///     m.load(data.at((i * 64) % 4096));
/// }
/// let stats = m.finish_run();
/// assert!(stats.wall_s > 0.0);
/// assert_eq!(stats.counters.loads, 1_000);
/// assert!((stats.energy_j - stats.avg_power_w * stats.wall_s).abs() < 1e-6);
/// ```
pub struct Machine {
    cfg: MachineConfig,
    timing: TimingParams,
    pstates: PStateTable,
    hier: MemoryHierarchy,
    clock: SimClock,
    cores: Vec<CoreState>,
    active_core: usize,
    rung: Rung,
    bmc: Bmc,
    bmc_port: Option<BmcPort>,
    freq_meter: FreqMeter,
    power_model: NodePowerModel,
    meter: PowerMeter,
    energy: EnergyIntegrator,
    rapl: RaplCounters,
    thermal: ThermalModel,
    // Control-loop bookkeeping.
    tick_period_ns: f64,
    next_tick_ns: f64,
    window_start_ns: f64,
    win_instr: u64,
    win_cycles: f64,
    win_idle_ns: f64,
    win_mem_snapshot: MemStats,
    min_power_w: f64,
    max_power_w: f64,
    // Bump allocators for data and code address spaces.
    data_brk: u64,
    code_brk: u64,
    // Wrong-path address scrambler and the last committed data address
    // (wrong paths run plausible nearby code, so their loads land close
    // to real ones — the paper's executed-load drift is ≤0.36 %).
    rng_state: u64,
    last_data_vaddr: u64,
    trace: Option<RunTrace>,
    // Injected fault state (chaos harness).
    sensor_fault: Option<SensorFault>,
    fault_start_s: f64,
    fault_ticks: u32,
    stale_telemetry: bool,
    frozen_telemetry: Option<BmcTelemetry>,
}

/// Data space starts at 16 MiB, code space at 256 GiB — far apart so the
/// two never collide.
const DATA_BASE: u64 = 16 << 20;
const CODE_BASE: u64 = 256 << 30;

impl Machine {
    pub fn new(cfg: MachineConfig) -> Self {
        cfg.validate();
        let ladder = ThrottleLadder::e5_2680(&cfg.pstates, cfg.full_mem());
        Self::with_ladder(cfg, ladder)
    }

    /// Build with a custom throttle ladder (ablations swap in
    /// [`ThrottleLadder::dvfs_only`]).
    pub fn with_ladder(cfg: MachineConfig, ladder: ThrottleLadder) -> Self {
        cfg.validate();
        let hier = MemoryHierarchy::new(cfg.hierarchy, cfg.n_cores, cfg.seed);
        let cores = (0..cfg.n_cores)
            .map(|_| CoreState {
                counters: CounterFile::default(),
                unhalted_cycles_f: 0.0,
                win_wall_ns: 0.0,
                predictor: GsharePredictor::new(cfg.predictor_bits),
            })
            .collect();
        let rung = ladder.get(0);
        let tick_period_ns = cfg.control_period_us * 1e3;
        Machine {
            timing: cfg.timing,
            pstates: cfg.pstates.clone(),
            hier,
            clock: SimClock::new(),
            cores,
            active_core: 0,
            rung,
            bmc: Bmc::new(ladder),
            bmc_port: None,
            freq_meter: FreqMeter::new(),
            power_model: NodePowerModel::new(cfg.power),
            meter: PowerMeter::new(cfg.meter_window_s),
            energy: EnergyIntegrator::new(),
            rapl: RaplCounters::new(),
            thermal: ThermalModel::e5_2680(),
            tick_period_ns,
            next_tick_ns: tick_period_ns,
            window_start_ns: 0.0,
            win_instr: 0,
            win_cycles: 0.0,
            win_idle_ns: 0.0,
            win_mem_snapshot: MemStats::default(),
            min_power_w: f64::INFINITY,
            max_power_w: 0.0,
            data_brk: DATA_BASE,
            code_brk: CODE_BASE,
            rng_state: cfg.seed | 1,
            last_data_vaddr: DATA_BASE,
            trace: None,
            sensor_fault: None,
            fault_start_s: 0.0,
            fault_ticks: 0,
            stale_telemetry: false,
            frozen_telemetry: None,
            cfg,
        }
    }

    /// Attach the out-of-band management port (from
    /// `capsim_ipmi::LanChannel::pair`). The BMC services it each control
    /// tick.
    pub fn attach_bmc_port(&mut self, port: BmcPort) {
        self.bmc_port = Some(port);
    }

    /// Set or clear the power cap directly (single-node experiments; DCM
    /// does the same over IPMI).
    pub fn set_power_cap(&mut self, cap: Option<PowerCap>) {
        self.bmc.set_cap(cap);
    }

    /// The active power cap, if any.
    pub fn power_cap(&self) -> Option<PowerCap> {
        self.bmc.cap()
    }

    /// Install a capping-policy backend on the node's BMC (default: the
    /// ladder walk).
    pub fn set_cap_policy(&mut self, policy: Box<dyn capsim_policy::CapPolicy>) {
        self.bmc.set_policy(policy);
    }

    /// The BMC's installed capping-policy backend.
    pub fn cap_policy(&self) -> &dyn capsim_policy::CapPolicy {
        self.bmc.policy()
    }

    /// Service pending out-of-band requests once, outside the control
    /// loop. Normally the BMC serves during control ticks; after a run
    /// finishes (no more ticks) a management thread can keep the node
    /// answerable with this.
    pub fn service_bmc(&mut self) {
        if let Some(port) = &self.bmc_port {
            let _ = self.bmc.serve(port);
        }
    }

    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Simulated time now, in seconds.
    pub fn now_s(&self) -> f64 {
        self.clock.now_s()
    }

    /// The rung the machine is currently executing at.
    pub fn current_rung(&self) -> Rung {
        self.rung
    }

    /// Select the core subsequent charges are attributed to (multi-core
    /// workloads interleave their stripes with this).
    pub fn set_active_core(&mut self, core: usize) {
        assert!(core < self.cores.len());
        self.active_core = core;
    }

    pub fn n_cores(&self) -> usize {
        self.cores.len()
    }

    // ---------------------------------------------------------- allocation

    /// Allocate a page-aligned data region.
    pub fn alloc(&mut self, bytes: u64) -> Region {
        let size = bytes.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        let base = self.data_brk;
        self.data_brk += size + PAGE_SIZE; // guard page between regions
        Region::new(VAddr(base), size)
    }

    /// Allocate a code block of `bytes` holding `instrs` instructions.
    /// Blocks allocate sequentially, so a workload's blocks form a compact
    /// code footprint like a real text segment.
    pub fn code_block(&mut self, bytes: u64, instrs: u64) -> CodeBlock {
        let addr = VAddr(self.code_brk);
        self.code_brk += bytes;
        CodeBlock::new(addr, bytes, instrs)
    }

    /// Pad the code cursor to the next page boundary (places the following
    /// blocks on fresh pages — used to shape ITLB footprints).
    pub fn code_page_align(&mut self) {
        self.code_brk = self.code_brk.div_ceil(PAGE_SIZE) * PAGE_SIZE;
    }

    // ------------------------------------------------------------- charges

    #[inline]
    fn freq_mhz(&self) -> f64 {
        self.pstates.get(self.rung.pstate).freq_mhz
    }

    /// Charge `cycles` core cycles plus `ns` fixed nanoseconds to the
    /// active core and advance time.
    #[inline]
    fn charge(&mut self, cycles: f64, ns: f64) {
        let f = self.freq_mhz();
        let duty = self.rung.tstate.duty();
        let unhalted_ns = cycles * 1e3 / f;
        let wall_ns = unhalted_ns / duty + ns;
        self.freq_meter.record(cycles, unhalted_ns);
        let core = &mut self.cores[self.active_core];
        core.unhalted_cycles_f += cycles;
        core.win_wall_ns += wall_ns;
        self.win_cycles += cycles;
        if self.active_core == 0 {
            self.clock.advance_ns(wall_ns);
            while self.clock.now_ns() >= self.next_tick_ns {
                self.tick();
            }
        }
    }

    /// Execute a basic block: fetch its lines, commit its instructions.
    pub fn exec_block(&mut self, block: &CodeBlock) {
        let core = self.active_core;
        let mut fetch_cycles = 0.0;
        let mut fetch_ns = 0.0;
        let mut addr = block.addr.0;
        let end = block.addr.0 + block.bytes;
        while addr < end {
            let out = self.hier.fetch_access(core, VAddr(addr));
            // The first-line fetch of a hit is hidden by the pipeline;
            // misses expose their penalty like data misses.
            let penalty = (out.cycles as f64 - self.cfg.hierarchy.l1i.hit_cycles as f64).max(0.0);
            fetch_cycles += penalty * self.timing.cache_exposed;
            fetch_ns += out.ns * self.timing.dram_exposed;
            addr += self.cfg.hierarchy.l1i.line_bytes;
        }
        let c = &mut self.cores[core].counters;
        c.instructions_committed += block.instrs;
        c.instructions_executed += block.instrs;
        self.win_instr += block.instrs;
        let cycles = self.timing.base_cycles(block.instrs) + fetch_cycles;
        self.charge(cycles, fetch_ns);
    }

    /// Commit `n` pure-ALU instructions (no instruction-fetch modelling;
    /// pair with [`Machine::exec_block`] for fetched loops).
    pub fn compute(&mut self, n: u64) {
        let c = &mut self.cores[self.active_core].counters;
        c.instructions_committed += n;
        c.instructions_executed += n;
        self.win_instr += n;
        self.charge(self.timing.base_cycles(n), 0.0);
    }

    #[inline]
    fn data_op(&mut self, addr: VAddr, write: bool, serial: bool) {
        let core = self.active_core;
        self.last_data_vaddr = addr.0;
        let out = self.hier.data_access(core, addr, write);
        let c = &mut self.cores[core].counters;
        c.instructions_committed += 1;
        c.instructions_executed += 1;
        if write {
            c.stores += 1;
        } else {
            c.loads += 1;
        }
        self.win_instr += 1;
        let (cycles, ns) = if serial {
            (out.cycles as f64, out.ns)
        } else {
            let hidden = self.cfg.hierarchy.l1d.hit_cycles as f64;
            (
                self.timing.base_cycles(1)
                    + (out.cycles as f64 - hidden).max(0.0) * self.timing.cache_exposed,
                out.ns * self.timing.dram_exposed,
            )
        };
        self.charge(cycles, ns);
    }

    /// A pipelined load: L1 hits are free beyond the issue slot; miss
    /// penalties are partially overlapped.
    #[inline]
    pub fn load(&mut self, addr: VAddr) {
        self.data_op(addr, false, false);
    }

    /// A pipelined store (write-allocate; latency hidden by the store
    /// buffer like a pipelined load).
    #[inline]
    pub fn store(&mut self, addr: VAddr) {
        self.data_op(addr, true, false);
    }

    /// A serially dependent load: the full hierarchy latency lands on the
    /// critical path. Pointer chases and latency microbenchmarks use this.
    #[inline]
    pub fn load_serial(&mut self, addr: VAddr) {
        self.data_op(addr, false, true);
    }

    /// A batched modular load stream: `count` pipelined loads at
    /// `base + (start + stride*i) % window` for `i = 0..count`.
    ///
    /// Exactly equivalent to calling [`Machine::load`] in a loop (same
    /// per-access counter updates and tick boundaries), but streaming
    /// kernels make one call per phase instead of one per access.
    pub fn load_stream(&mut self, base: VAddr, window: u64, start: u64, stride: u64, count: u64) {
        self.data_stream(base, window, start, stride, count, false);
    }

    /// The serially-dependent analogue of [`Machine::load_stream`].
    pub fn load_serial_stream(
        &mut self,
        base: VAddr,
        window: u64,
        start: u64,
        stride: u64,
        count: u64,
    ) {
        self.data_stream(base, window, start, stride, count, true);
    }

    /// Batched load-stream engine. Per-access work that only a control
    /// tick can change — the rung's frequency and T-state duty, the
    /// timing exposure factors — is hoisted out of the access loop, and
    /// the loop borrows the hierarchy/clock/counters once instead of
    /// re-resolving `&mut self` per access. The arithmetic is kept
    /// expression-for-expression identical to [`Machine::data_op`] +
    /// [`Machine::charge`] and the loop breaks out to [`Machine::tick`]
    /// at exactly the boundaries the per-access path would have hit, so
    /// the batch is bit-exact with calling [`Machine::load`] in a loop.
    fn data_stream(
        &mut self,
        base: VAddr,
        window: u64,
        start: u64,
        stride: u64,
        count: u64,
        serial: bool,
    ) {
        debug_assert!(window > 0);
        let core_idx = self.active_core;
        let hidden = self.cfg.hierarchy.l1d.hit_cycles as f64;
        let base_cycles = self.timing.base_cycles(1);
        let cache_exposed = self.timing.cache_exposed;
        let dram_exposed = self.timing.dram_exposed;
        let advance = core_idx == 0;
        let mut i = 0u64;
        while i < count {
            let f = self.freq_mhz();
            let duty = self.rung.tstate.duty();
            let next_tick_ns = self.next_tick_ns;
            let Machine { hier, clock, freq_meter, cores, win_instr, win_cycles, .. } = self;
            let core = &mut cores[core_idx];
            let mut last_vaddr = self.last_data_vaddr;
            while i < count {
                let addr = VAddr(base.0 + (start + stride * i) % window);
                last_vaddr = addr.0;
                let out = hier.data_access(core_idx, addr, false);
                core.counters.instructions_committed += 1;
                core.counters.instructions_executed += 1;
                core.counters.loads += 1;
                *win_instr += 1;
                let (cycles, ns) = if serial {
                    (out.cycles as f64, out.ns)
                } else {
                    (
                        base_cycles + (out.cycles as f64 - hidden).max(0.0) * cache_exposed,
                        out.ns * dram_exposed,
                    )
                };
                let unhalted_ns = cycles * 1e3 / f;
                let wall_ns = unhalted_ns / duty + ns;
                freq_meter.record(cycles, unhalted_ns);
                core.unhalted_cycles_f += cycles;
                core.win_wall_ns += wall_ns;
                *win_cycles += cycles;
                i += 1;
                if advance {
                    clock.advance_ns(wall_ns);
                    if clock.now_ns() >= next_tick_ns {
                        break;
                    }
                }
            }
            self.last_data_vaddr = last_vaddr;
            while self.clock.now_ns() >= self.next_tick_ns {
                self.tick();
            }
        }
    }

    /// The wall-clock latency of one serial load, measured. Used by the
    /// stride microbenchmark (Figures 3/4) — measures exactly what the
    /// paper's code measured: elapsed time per dependent access.
    pub fn timed_load_serial(&mut self, addr: VAddr) -> f64 {
        let before = self.clock.now_ns();
        // Attribute to core 0 semantics: only core 0 advances the clock.
        assert_eq!(self.active_core, 0, "timed loads must run on core 0");
        self.load_serial(addr);
        self.clock.now_ns() - before
    }

    /// Execute a conditional branch at the end of `block`. On a
    /// misprediction the pipeline refills and wrong-path work executes.
    pub fn branch(&mut self, block: &CodeBlock, taken: bool) {
        let core = self.active_core;
        let o = self.cores[core].predictor.execute(block.addr.0 + block.bytes, taken);
        let c = &mut self.cores[core].counters;
        c.branches += 1;
        c.instructions_committed += 1;
        c.instructions_executed += 1;
        self.win_instr += 1;
        let mut cycles = self.timing.base_cycles(1);
        if o.mispredicted {
            c.branch_mispredicts += 1;
            c.instructions_executed += self.timing.wrong_path_instrs;
            c.spec_loads += 1;
            cycles += self.timing.mispredict_cycles as f64;
            // One wrong-path load pollutes the hierarchy; its latency is
            // squashed, its cache side effects are not. Wrong paths run
            // plausible nearby code, so the load lands within ±2 KiB of
            // the last committed access.
            let jitter = (self.next_rng() % 4096) as i64 - 2048;
            let raw = self.last_data_vaddr.saturating_add_signed(jitter);
            let addr = VAddr(raw.clamp(DATA_BASE, self.data_brk.max(DATA_BASE + 1) - 1));
            let _ = self.hier.data_access(core, addr, false);
        }
        self.charge(cycles, 0.0);
    }

    /// Let the node sit idle for `seconds` of simulated time (phased and
    /// race-to-idle experiments). Power windows during idleness see
    /// `busy_frac = 0`.
    pub fn idle(&mut self, seconds: f64) {
        assert_eq!(self.active_core, 0, "idle must be driven from core 0");
        let mut remaining_ns = seconds * 1e9;
        while remaining_ns > 0.0 {
            if self.cfg.idle_skip && remaining_ns > self.tick_period_ns && self.idle_quiescent() {
                // Fast-forward: advance the whole idle span in one jump and
                // let the catch-up loop below meter it as a single
                // all-idle window (the empty-window guard in `tick`
                // swallows the overshot periods). The quiescence gate
                // guarantees the skipped control ticks would all have been
                // no-ops, so the only coarsening is metering granularity:
                // one power/thermal sample over the span instead of one
                // per period. Sound for lock-step fleet topologies, where
                // manager traffic only arrives at epoch barriers.
                self.bmc.obs_mut().metrics.inc("machine.idle_skips");
                self.clock.advance_ns(remaining_ns);
                self.win_idle_ns += remaining_ns;
                remaining_ns = 0.0;
            } else {
                let step = remaining_ns.min(self.next_tick_ns - self.clock.now_ns()).max(1.0);
                self.clock.advance_ns(step);
                self.win_idle_ns += step;
                remaining_ns -= step;
            }
            while self.clock.now_ns() >= self.next_tick_ns {
                self.tick();
            }
        }
    }

    /// True when nothing in the machine or its BMC can act before more
    /// work (or manager traffic at an epoch barrier) arrives, so an idle
    /// span may be fast-forwarded without changing any control decision.
    /// Injected faults, frozen telemetry and an attached trace all force
    /// the slow path — those features want per-tick sampling.
    fn idle_quiescent(&self) -> bool {
        self.sensor_fault.is_none()
            && !self.stale_telemetry
            && self.trace.is_none()
            && self.bmc.control_quiescent(self.meter.window_avg_w())
    }

    // ------------------------------------------------------ epoch stepping

    /// Advance the machine by `dt_s` of simulated time, repeatedly asking
    /// `w` for work quanta. This is the lock-step driver a fleet engine
    /// uses: every node is stepped to the same simulated-time barrier, the
    /// manager exchanges IPMI traffic at the barrier, then the next epoch
    /// begins. Control ticks (power metering, BMC service, throttle
    /// decisions) fire inside exactly as they do for a free-running
    /// workload.
    ///
    /// A quantum that charges no time would spin forever; if that happens
    /// the node is treated as idle for the rest of the epoch.
    pub fn step(&mut self, dt_s: f64, w: &mut dyn EpochWorkload) {
        assert!(dt_s > 0.0, "epoch must advance time");
        assert_eq!(self.active_core, 0, "epoch stepping drives core 0");
        self.bmc.obs_mut().metrics.inc("machine.epochs");
        let target_ns = self.clock.now_ns() + dt_s * 1e9;
        while self.clock.now_ns() < target_ns {
            let before = self.clock.now_ns();
            w.quantum(self);
            if self.clock.now_ns() <= before {
                self.bmc.obs_mut().metrics.inc("machine.idle_fallbacks");
                self.idle((target_ns - self.clock.now_ns()) * 1e-9);
                break;
            }
        }
    }

    /// Advance the machine by `dt_s` with no work at all (an idle node in
    /// a fleet epoch). Control ticks still fire, so the BMC stays
    /// responsive and power windows record idle draw.
    pub fn step_idle(&mut self, dt_s: f64) {
        self.idle(dt_s);
    }

    #[inline]
    fn next_rng(&mut self) -> u64 {
        let mut x = self.rng_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng_state = x;
        x
    }

    // --------------------------------------------------------- control tick

    fn tick(&mut self) {
        self.next_tick_ns += self.tick_period_ns;
        let now = self.clock.now_ns();
        let window_ns = now - self.window_start_ns;
        if window_ns <= 0.0 {
            // A single charge can overshoot several periods; empty catch-up
            // windows carry no activity and must not pollute the meter.
            return;
        }
        let window_s = window_ns * 1e-9;
        let mem_now = self.hier.total_stats();
        let delta = mem_now - self.win_mem_snapshot;
        let pstate = self.pstates.get(self.rung.pstate);
        // Activity factor from the achieved issue rate (see capsim-power).
        let issue_ratio = if self.win_cycles > 0.0 {
            (self.win_instr as f64 / (self.win_cycles * self.timing.issue_width)).min(1.0)
        } else {
            0.0
        };
        let activity = 0.45 + 0.55 * issue_ratio;
        let busy_frac = (1.0 - self.win_idle_ns / window_ns.max(1.0)).clamp(0.0, 1.0);
        let active_cores = if busy_frac > 0.0 { self.cores.len() as u32 } else { 0 };
        let window = ActivityWindow {
            f_ghz: pstate.freq_mhz / 1e3,
            volts: pstate.volts,
            duty: self.rung.tstate.duty(),
            busy_frac,
            activity,
            active_cores,
            l3_accesses_per_s: delta.l3_accesses as f64 / window_s,
            dram_lines_per_s: delta.dram_accesses() as f64 / window_s,
            cache_gated_frac: self.rung.mem.gating_fraction(),
            mem_gate_power_frac: self.rung.mem.mem_gate.background_power_frac(),
            temp_c: self.thermal.temp_c(),
        };
        let breakdown = self.power_model.power(&window);
        let watts = breakdown.total_w();
        if self.bmc.obs().is_enabled() {
            let obs = self.bmc.obs_mut();
            obs.metrics.inc("machine.ticks");
            obs.metrics.observe("machine.window_w", &POWER_W_BOUNDS, watts);
        }
        self.meter.record(window_s, watts);
        self.energy.add(window_s, watts);
        self.rapl.add(&breakdown, window_s);
        if let Some(trace) = &mut self.trace {
            trace.push(TraceSample {
                t_s: now * 1e-9,
                watts,
                rung: self.bmc.rung_index(),
                freq_mhz: pstate.freq_mhz,
                duty: self.rung.tstate.duty(),
                temp_c: self.thermal.temp_c(),
            });
        }
        // Package power (what heats the die) excludes platform overhead.
        self.thermal.step(watts - breakdown.platform_w, window_s);
        self.min_power_w = self.min_power_w.min(watts);
        self.max_power_w = self.max_power_w.max(watts);

        // Out-of-band management. The watchdog runs on the machine's own
        // clock, so crashed firmware reboots even if telemetry is frozen.
        if let Some(rung) = self.bmc.watchdog_tick(now * 1e-6) {
            self.apply_rung(rung);
        }
        if let Some(port) = &self.bmc_port {
            // A dead manager is not fatal to the node.
            let _ = self.bmc.serve(port);
        }
        let telemetry = self.faulted_telemetry(BmcTelemetry {
            window_avg_w: self.meter.window_avg_w(),
            run_avg_w: self.meter.run_avg_w(),
            min_w: self.min_power_w,
            max_w: self.max_power_w,
            die_temp_c: self.thermal.temp_c(),
            inlet_temp_c: 27.0,
            busy_frac,
            issue_frac: issue_ratio,
            now_ms: now * 1e-6,
        });
        if let Some(rung) = self.bmc.control(telemetry) {
            self.apply_rung(rung);
        }

        // Open the next window.
        self.window_start_ns = now;
        self.win_instr = 0;
        self.win_cycles = 0.0;
        self.win_idle_ns = 0.0;
        self.win_mem_snapshot = mem_now;
        for c in &mut self.cores {
            c.win_wall_ns = 0.0;
        }
    }

    /// Apply any injected sensor/controller fault to the telemetry copy
    /// the BMC will sample. Ground truth (meter, energy, RAPL) is
    /// computed before this transform and never affected.
    fn faulted_telemetry(&mut self, raw: BmcTelemetry) -> BmcTelemetry {
        let mut t = raw;
        if let Some(f) = self.sensor_fault {
            self.fault_ticks += 1;
            let w = match f {
                SensorFault::StuckAt { watts } => Some(watts),
                SensorFault::Drift { watts_per_s } => {
                    Some(t.window_avg_w + watts_per_s * (t.now_ms * 1e-3 - self.fault_start_s))
                }
                SensorFault::Spike { watts, period_ticks } => (period_ticks > 0
                    && self.fault_ticks.is_multiple_of(period_ticks))
                .then_some(watts),
                SensorFault::Dropout => Some(0.0),
            };
            if let Some(w) = w {
                t.window_avg_w = w;
                t.run_avg_w = w;
                t.min_w = t.min_w.min(w);
                t.max_w = t.max_w.max(w);
            }
        }
        if self.stale_telemetry {
            // Freeze the entire sample, timestamp included: the BMC's
            // stale-telemetry guardrail keys off the frozen clock.
            return *self.frozen_telemetry.get_or_insert(t);
        }
        self.frozen_telemetry = None;
        t
    }

    // ------------------------------------------------------ fault injection

    /// Inject a sensor fault (replacing any previous one). Takes effect at
    /// the next control tick.
    pub fn inject_sensor_fault(&mut self, fault: SensorFault) {
        self.sensor_fault = Some(fault);
        self.fault_start_s = self.clock.now_s();
        self.fault_ticks = 0;
        let t_s = self.clock.now_s();
        let obs = self.bmc.obs_mut();
        obs.metrics.inc("machine.faults_injected");
        obs.events.record(t_s, EventKind::FaultInjected { fault: fault.name() });
    }

    /// Clear the active sensor fault; readings are truthful again.
    pub fn clear_sensor_fault(&mut self) {
        if let Some(f) = self.sensor_fault.take() {
            let t_s = self.clock.now_s();
            self.bmc.obs_mut().events.record(t_s, EventKind::FaultCleared { fault: f.name() });
        }
    }

    /// Freeze (or thaw) the telemetry stream the BMC samples, timestamp
    /// included — the "stale telemetry" controller fault.
    pub fn set_stale_telemetry(&mut self, on: bool) {
        if self.stale_telemetry == on {
            return;
        }
        self.stale_telemetry = on;
        if !on {
            self.frozen_telemetry = None;
        }
        let t_s = self.clock.now_s();
        let kind = if on {
            EventKind::FaultInjected { fault: "stale_telemetry" }
        } else {
            EventKind::FaultCleared { fault: "stale_telemetry" }
        };
        let obs = self.bmc.obs_mut();
        if on {
            obs.metrics.inc("machine.faults_injected");
        }
        obs.events.record(t_s, kind);
    }

    /// Start (or stop) losing cap commands in the BMC firmware: DCMI
    /// `Set Power Limit`/`Activate` are acknowledged but not applied.
    pub fn set_lost_cap_commands(&mut self, on: bool) {
        self.bmc.set_lost_cap_commands(on);
        let t_s = self.clock.now_s();
        let kind = if on {
            EventKind::FaultInjected { fault: "lost_cap_commands" }
        } else {
            EventKind::FaultCleared { fault: "lost_cap_commands" }
        };
        let obs = self.bmc.obs_mut();
        if on {
            obs.metrics.inc("machine.faults_injected");
        }
        obs.events.record(t_s, kind);
    }

    /// Crash the BMC firmware for `dead_s` simulated seconds; the
    /// watchdog restarts it (volatile control state lost, SEL and the
    /// persistent limit survive).
    pub fn crash_bmc(&mut self, dead_s: f64) {
        let now_ms = self.clock.now_s() * 1e3;
        self.bmc.crash(now_ms, dead_s * 1e3);
    }

    /// Whether the BMC firmware is currently crashed.
    pub fn bmc_crashed(&self) -> bool {
        self.bmc.is_crashed()
    }

    /// Would a DCMI power-reading poll of this node's BMC repeat its last
    /// answer byte for byte? See [`Bmc::poll_would_repeat`] — lock-step
    /// managers use this to elide redundant polls.
    pub fn bmc_poll_would_repeat(&self) -> bool {
        self.bmc.poll_would_repeat()
    }

    /// Replace the BMC guardrail tunables (`None` disables guardrails —
    /// the overhead benchmark's baseline).
    pub fn set_guardrails(&mut self, guard: Option<GuardrailConfig>) {
        self.bmc.set_guardrails(guard);
    }

    /// Whether the BMC failsafe rung floor is currently engaged.
    pub fn failsafe_active(&self) -> bool {
        self.bmc.failsafe_active()
    }

    /// The APERF/MPERF-style frequency meter (snapshot `totals()` around a
    /// probe to get a windowed frequency reading, as real tools do).
    pub fn freq_meter(&self) -> &FreqMeter {
        &self.freq_meter
    }

    /// The BMC's System Event Log (cap-violation paper trail).
    pub fn sel(&self) -> &capsim_ipmi::SystemEventLog {
        self.bmc.sel()
    }

    /// False once a `HardPowerOff` exception action fired. The study's
    /// DCMI limits use `LogOnly`, so simulation continues either way; the
    /// flag is the observable.
    pub fn chassis_on(&self) -> bool {
        self.bmc.chassis_on()
    }

    /// Force a P-state/T-state directly, bypassing the BMC (ground truth
    /// for detector tests; capped experiments let the BMC decide).
    pub fn force_throttle(&mut self, pstate: u8, duty_16: u8) {
        self.rung.pstate = pstate;
        self.rung.tstate = capsim_cpu::TState::of_16(duty_16);
    }

    /// Apply a memory-side reconfiguration directly, bypassing the BMC.
    /// Ablations and the technique detector's probes use this; capped
    /// experiments let the BMC drive reconfiguration instead.
    pub fn apply_mem_reconfig(&mut self, r: capsim_mem::MemReconfig) {
        self.hier.apply(r);
        self.rung.mem = r;
    }

    fn apply_rung(&mut self, rung: Rung) {
        if rung.mem != self.rung.mem {
            self.hier.apply(rung.mem);
        }
        self.rung = rung;
    }

    // -------------------------------------------------------------- results

    /// Close the final partial window and summarize the run.
    pub fn finish_run(&mut self) -> RunStats {
        if self.clock.now_ns() > self.window_start_ns {
            // Flush the trailing partial window so energy covers the run.
            self.tick();
        }
        let mut counters = CounterFile::default();
        for core in &mut self.cores {
            core.counters.unhalted_cycles = core.unhalted_cycles_f.round() as u64;
            let c = &core.counters;
            counters.instructions_committed += c.instructions_committed;
            counters.instructions_executed += c.instructions_executed;
            counters.loads += c.loads;
            counters.stores += c.stores;
            counters.spec_loads += c.spec_loads;
            counters.branches += c.branches;
            counters.branch_mispredicts += c.branch_mispredicts;
            counters.unhalted_cycles += c.unhalted_cycles;
        }
        RunStats {
            wall_s: self.clock.now_s(),
            energy_j: self.energy.joules(),
            avg_power_w: self.meter.run_avg_w(),
            avg_freq_mhz: self.freq_meter.avg_mhz(),
            min_power_w: if self.min_power_w.is_finite() { self.min_power_w } else { 0.0 },
            max_power_w: self.max_power_w,
            counters,
            mem: self.hier.total_stats(),
            die_temp_c: self.thermal.temp_c(),
            bmc_stats: self.bmc.control_stats(),
            final_rung: self.bmc.rung_index(),
            rapl: self.rapl,
        }
    }

    /// Live RAPL counters (snapshot and difference like the real MSRs).
    pub fn rapl(&self) -> &RaplCounters {
        &self.rapl
    }

    /// Enable per-control-tick tracing, keeping the most recent
    /// `capacity` samples.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(RunTrace::new(capacity));
    }

    /// Enable observability for this node: metrics plus a typed event ring
    /// of `event_capacity`. The sink lives on the BMC (the component that
    /// sees rung moves, SEL appends and DCMI traffic); the machine folds
    /// its per-tick series into the same sink.
    pub fn enable_obs(&mut self, event_capacity: usize) {
        self.bmc.enable_obs(event_capacity);
    }

    /// This node's observability sink (metrics + events).
    pub fn obs(&self) -> &capsim_obs::Obs {
        self.bmc.obs()
    }

    /// Mutable access to the observability sink, for workloads that
    /// account their own series (e.g. request latency histograms). Costs
    /// nothing when observability is disabled — the sink's mutators are
    /// one-branch no-ops.
    pub fn obs_mut(&mut self) -> &mut capsim_obs::Obs {
        self.bmc.obs_mut()
    }

    /// The trace, if enabled.
    pub fn trace(&self) -> Option<&RunTrace> {
        self.trace.as_ref()
    }

    /// Live core-side counters summed over cores (PAPI-style mid-run
    /// reads; cheap, no side effects).
    pub fn counters_now(&self) -> CounterFile {
        let mut t = CounterFile::default();
        for core in &self.cores {
            let c = &core.counters;
            t.instructions_committed += c.instructions_committed;
            t.instructions_executed += c.instructions_executed;
            t.loads += c.loads;
            t.stores += c.stores;
            t.spec_loads += c.spec_loads;
            t.branches += c.branches;
            t.branch_mispredicts += c.branch_mispredicts;
            t.unhalted_cycles += core.unhalted_cycles_f.round() as u64;
        }
        t
    }

    /// Live memory-side counters summed over cores.
    pub fn mem_stats_now(&self) -> MemStats {
        self.hier.total_stats()
    }

    /// Per-core counters (multi-core analyses).
    pub fn core_counters(&self, core: usize) -> CounterFile {
        let mut c = self.cores[core].counters;
        c.unhalted_cycles = self.cores[core].unhalted_cycles_f.round() as u64;
        c
    }

    /// Memory counters of one core slice.
    pub fn core_mem_stats(&self, core: usize) -> MemStats {
        self.hier.stats(core)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> Machine {
        Machine::new(MachineConfig::tiny(7))
    }

    #[test]
    fn compute_advances_time_at_the_nominal_frequency() {
        let mut m = machine();
        m.compute(2_700_000 * 3); // 2.7M cycles at issue width 3
                                  // 2.7M cycles at 2.7 GHz = 1 ms.
        assert!((m.now_s() - 1e-3).abs() < 1e-5, "{}", m.now_s());
    }

    #[test]
    fn committed_instructions_are_tracked() {
        let mut m = machine();
        let r = m.alloc(4096);
        m.compute(100);
        m.load(r.at(0));
        m.store(r.at(64));
        let s = m.finish_run();
        assert_eq!(s.counters.instructions_committed, 102);
        assert_eq!(s.counters.loads, 1);
        assert_eq!(s.counters.stores, 1);
    }

    #[test]
    fn uncapped_run_reports_baseline_power_band() {
        let mut m = Machine::new(MachineConfig::e5_2680(1));
        let r = m.alloc(64 * 1024);
        let block = m.code_block(96, 24);
        for i in 0..200_000u64 {
            m.exec_block(&block);
            m.load(r.at((i * 64) % r.bytes()));
        }
        let s = m.finish_run();
        assert!((140.0..165.0).contains(&s.avg_power_w), "baseline power {}", s.avg_power_w);
        assert!((s.avg_freq_mhz - 2700.0).abs() < 1.0, "{}", s.avg_freq_mhz);
    }

    /// Speed up controller convergence for short unit-test runs.
    fn fast_control(seed: u64) -> MachineConfig {
        let mut c = MachineConfig::e5_2680(seed);
        c.control_period_us = 10.0;
        c.meter_window_s = 0.0002;
        c
    }

    #[test]
    fn capped_run_throttles_and_meets_a_reachable_cap() {
        let mut m = Machine::new(fast_control(2));
        m.set_power_cap(Some(PowerCap::new(140.0).unwrap()));
        let r = m.alloc(64 * 1024);
        let block = m.code_block(96, 24);
        for i in 0..400_000u64 {
            m.exec_block(&block);
            m.load(r.at((i * 64) % r.bytes()));
        }
        let s = m.finish_run();
        assert!(s.avg_power_w < 143.0, "avg {} exceeds cap band", s.avg_power_w);
        assert!(s.avg_freq_mhz < 2690.0, "throttled: {}", s.avg_freq_mhz);
        assert!(s.bmc_stats.0 > 0, "escalations happened");
    }

    #[test]
    fn unreachable_cap_pins_the_deepest_rung_and_floors_near_124() {
        let mut m = Machine::new(fast_control(3));
        m.set_power_cap(Some(PowerCap::new(110.0).unwrap()));
        let r = m.alloc(64 * 1024);
        let block = m.code_block(96, 24);
        for i in 0..200_000u64 {
            m.exec_block(&block);
            m.load(r.at((i * 64) % r.bytes()));
        }
        let s = m.finish_run();
        assert!(s.avg_power_w > 115.0, "floor {}", s.avg_power_w);
        assert!(s.bmc_stats.2 > 0, "exceptions logged");
        // Average frequency includes the brief escalation transient at
        // higher P-states; once pinned it reads 1200 MHz.
        assert!(s.avg_freq_mhz < 1350.0, "pinned at P-min: {}", s.avg_freq_mhz);
        let deepest = ThrottleLadder::e5_2680(&m.config().pstates, m.config().full_mem()).deepest();
        assert_eq!(s.final_rung, deepest);
    }

    #[test]
    fn energy_equals_avg_power_times_time() {
        let mut m = machine();
        m.compute(10_000_000);
        let s = m.finish_run();
        assert!((s.energy_j - s.avg_power_w * s.wall_s).abs() / s.energy_j < 1e-6);
    }

    #[test]
    fn capped_run_takes_longer_than_uncapped() {
        let work = |m: &mut Machine| {
            let r = m.alloc(1 << 20);
            let block = m.code_block(128, 32);
            for i in 0..100_000u64 {
                m.exec_block(&block);
                m.load(r.at((i * 64) % r.bytes()));
                m.branch(&block, i % 7 != 0);
            }
        };
        let mut base = Machine::new(fast_control(4));
        work(&mut base);
        let base = base.finish_run();
        let mut capped = Machine::new(fast_control(4));
        capped.set_power_cap(Some(PowerCap::new(130.0).unwrap()));
        work(&mut capped);
        let capped = capped.finish_run();
        assert!(capped.wall_s > base.wall_s * 1.5, "{} vs {}", capped.wall_s, base.wall_s);
        assert_eq!(
            capped.counters.instructions_committed, base.counters.instructions_committed,
            "commits are cap-invariant"
        );
        assert!(capped.energy_j > base.energy_j, "capping wastes energy");
    }

    #[test]
    fn executed_exceeds_committed_by_under_half_a_percent() {
        let mut m = machine();
        let block = m.code_block(64, 16);
        for i in 0..50_000u64 {
            m.exec_block(&block);
            // A mostly-predictable loop branch, like real application code:
            // the gap stays well under a percent (paper: ≤0.36 %).
            m.branch(&block, i % 97 != 0);
        }
        let s = m.finish_run();
        let gap = s.counters.instructions_executed as f64
            / s.counters.instructions_committed as f64
            - 1.0;
        assert!(gap > 0.0, "speculation happened");
        assert!(gap < 0.02, "gap {gap} too large");
    }

    #[test]
    fn serial_loads_charge_full_latency() {
        let mut m = Machine::new(MachineConfig::e5_2680(5));
        let r = m.alloc(PAGE_SIZE);
        // Warm the line and TLB.
        m.load_serial(r.at(0));
        let dt = m.timed_load_serial(r.at(0));
        // L1 hit = 4 cycles at 2.7 GHz ≈ 1.48 ns.
        assert!((dt - 1.48).abs() < 0.1, "L1 serial latency {dt} ns");
    }

    #[test]
    fn idle_time_draws_idle_power() {
        let mut m = Machine::new(MachineConfig::e5_2680(6));
        m.idle(0.05);
        let s = m.finish_run();
        assert!((99.0..=104.0).contains(&s.avg_power_w), "idle power {}", s.avg_power_w);
    }

    #[test]
    fn regions_do_not_overlap() {
        let mut m = machine();
        let a = m.alloc(100);
        let b = m.alloc(100);
        assert!(a.base().0 + a.bytes() <= b.base().0);
    }

    #[test]
    fn trace_captures_controller_dithering() {
        let mut m = Machine::new(fast_control(12));
        m.enable_trace(100_000);
        m.set_power_cap(Some(PowerCap::new(144.0).unwrap()));
        let r = m.alloc(64 * 1024);
        let block = m.code_block(96, 24);
        for i in 0..400_000u64 {
            m.exec_block(&block);
            m.load(r.at((i * 64) % r.bytes()));
        }
        m.finish_run();
        let trace = m.trace().expect("enabled");
        assert!(trace.len() > 100);
        // A cap between two rung power levels makes the controller move
        // repeatedly between adjacent rungs — the paper's dithering.
        assert!(trace.rung_changes() > 10, "changes {}", trace.rung_changes());
        let visited = trace.rungs_visited();
        assert!(visited.len() >= 2, "{visited:?}");
        let csv = trace.to_csv();
        assert!(csv.lines().count() > 100);
    }

    #[test]
    fn rapl_domains_are_consistent_with_the_wall_meter() {
        let mut m = Machine::new(MachineConfig::e5_2680(13));
        let r = m.alloc(1 << 20);
        let block = m.code_block(96, 24);
        for i in 0..100_000u64 {
            m.exec_block(&block);
            m.load(r.at((i * 64) % (1 << 20)));
        }
        let s = m.finish_run();
        use capsim_power::RaplDomain;
        let pkg = s.rapl.joules(RaplDomain::Package);
        let pp0 = s.rapl.joules(RaplDomain::Pp0);
        let dram = s.rapl.joules(RaplDomain::Dram);
        assert!(pp0 > 0.0 && pp0 <= pkg);
        assert!(pkg + dram < s.energy_j, "RAPL excludes platform overhead");
        assert!(pkg > s.energy_j * 0.15, "package is a real share of wall energy");
    }

    #[test]
    fn multicore_attribution_is_per_core() {
        let mut cfg = MachineConfig::tiny(9);
        cfg.n_cores = 2;
        let mut m = Machine::new(cfg);
        let r = m.alloc(1 << 16);
        for i in 0..1000u64 {
            m.set_active_core(0);
            m.load(r.at((i * 64) % r.bytes()));
            m.set_active_core(1);
            m.load(r.at((i * 64) % r.bytes()));
        }
        m.set_active_core(0);
        let s = m.finish_run();
        assert_eq!(m.core_counters(0).loads, 1000);
        assert_eq!(m.core_counters(1).loads, 1000);
        assert_eq!(s.counters.loads, 2000);
    }
}
