//! Fluent construction of a [`Machine`].
//!
//! Callers used to reach into [`MachineConfig`] fields directly; the
//! builder names the knobs experiments actually turn (platform preset,
//! seed, core count, control cadence, calibration overrides, cap,
//! management port) and keeps the config structs an implementation
//! detail.
//!
//! ```
//! use capsim_node::MachineBuilder;
//!
//! let mut m = MachineBuilder::e5_2680()
//!     .seed(7)
//!     .cap_w(135.0)
//!     .build();
//! m.compute(1000);
//! assert!(m.power_cap().is_some());
//! ```

use capsim_ipmi::BmcPort;
use capsim_policy::CapPolicy;

use crate::bmc::PowerCap;
use crate::config::MachineConfig;
use crate::ladder::ThrottleLadder;
use crate::machine::Machine;

/// Fluent constructor for [`Machine`]. Start from a platform preset,
/// override what the experiment varies, then [`MachineBuilder::build`].
pub struct MachineBuilder {
    cfg: MachineConfig,
    ladder: Option<ThrottleLadder>,
    cap_w: Option<f64>,
    bmc_port: Option<BmcPort>,
    trace_capacity: Option<usize>,
    cap_policy: Option<Box<dyn CapPolicy>>,
}

impl MachineBuilder {
    /// Start from an arbitrary configuration.
    pub fn from_config(cfg: MachineConfig) -> Self {
        MachineBuilder {
            cfg,
            ladder: None,
            cap_w: None,
            bmc_port: None,
            trace_capacity: None,
            cap_policy: None,
        }
    }

    /// The paper's platform: dual Xeon E5-2680 node, turbo off.
    pub fn e5_2680() -> Self {
        Self::from_config(MachineConfig::e5_2680(0))
    }

    /// The paper's platform with single-core Turbo Boost enabled.
    pub fn e5_2680_turbo() -> Self {
        Self::from_config(MachineConfig::e5_2680_turbo(0))
    }

    /// A tiny machine for fast tests.
    pub fn tiny() -> Self {
        Self::from_config(MachineConfig::tiny(0))
    }

    /// Seed for everything stochastic in the machine.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Number of cores executing workload code.
    pub fn cores(mut self, n: usize) -> Self {
        self.cfg.n_cores = n;
        self
    }

    /// BMC control-loop period in microseconds of simulated time.
    pub fn control_period_us(mut self, us: f64) -> Self {
        self.cfg.control_period_us = us;
        self
    }

    /// Power-meter averaging window in seconds.
    pub fn meter_window_s(mut self, s: f64) -> Self {
        self.cfg.meter_window_s = s;
        self
    }

    /// Branch-predictor table size (log2 entries).
    pub fn predictor_bits(mut self, bits: u32) -> Self {
        self.cfg.predictor_bits = bits;
        self
    }

    /// Shorten control cadence for unit-test-speed convergence
    /// (10 µs period, 0.2 ms meter window).
    pub fn fast_control(self) -> Self {
        self.control_period_us(10.0).meter_window_s(0.0002)
    }

    /// Arbitrary calibration override — full access to the underlying
    /// [`MachineConfig`] for geometry/timing/power tuning the named
    /// setters don't cover.
    pub fn tune(mut self, f: impl FnOnce(&mut MachineConfig)) -> Self {
        f(&mut self.cfg);
        self
    }

    /// Use a custom throttle ladder (ablations swap in
    /// [`ThrottleLadder::dvfs_only`]).
    pub fn ladder(mut self, ladder: ThrottleLadder) -> Self {
        self.ladder = Some(ladder);
        self
    }

    /// Install a capping-policy backend on the BMC. The default is the
    /// ladder walk ([`capsim_policy::LadderCapPolicy`]); governor and
    /// tabular-RL backends live in `capsim-policy`.
    pub fn cap_policy(mut self, policy: Box<dyn CapPolicy>) -> Self {
        self.cap_policy = Some(policy);
        self
    }

    /// Apply a power cap at construction (in-band shortcut; management
    /// over IPMI uses [`MachineBuilder::bmc_port`]).
    pub fn cap_w(mut self, watts: f64) -> Self {
        self.cap_w = Some(watts);
        self
    }

    /// Attach the out-of-band management port (from
    /// `capsim_ipmi::LanChannel::pair`).
    pub fn bmc_port(mut self, port: BmcPort) -> Self {
        self.bmc_port = Some(port);
        self
    }

    /// Enable per-control-tick tracing with the given sample capacity.
    pub fn trace(mut self, capacity: usize) -> Self {
        self.trace_capacity = Some(capacity);
        self
    }

    /// Validate the configuration and construct the machine.
    pub fn build(self) -> Machine {
        let mut m = match self.ladder {
            Some(ladder) => Machine::with_ladder(self.cfg, ladder),
            None => Machine::new(self.cfg),
        };
        if let Some(w) = self.cap_w {
            m.set_power_cap(Some(PowerCap::new(w).unwrap()));
        }
        if let Some(port) = self.bmc_port {
            m.attach_bmc_port(port);
        }
        if let Some(cap) = self.trace_capacity {
            m.enable_trace(cap);
        }
        if let Some(policy) = self.cap_policy {
            m.set_cap_policy(policy);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_matches_direct_construction() {
        let mut built = MachineBuilder::tiny().seed(7).build();
        let mut direct = Machine::new(MachineConfig::tiny(7));
        built.compute(10_000);
        direct.compute(10_000);
        assert_eq!(built.now_s(), direct.now_s());
    }

    #[test]
    fn builder_applies_cap_port_and_overrides() {
        let (mut mgr, port) = capsim_ipmi::LanChannel::pair();
        let mut m = MachineBuilder::tiny()
            .seed(3)
            .fast_control()
            .cap_w(140.0)
            .bmc_port(port)
            .tune(|c| c.predictor_bits = 8)
            .build();
        assert_eq!(m.power_cap().unwrap().watts, 140.0);
        assert_eq!(m.config().control_period_us, 10.0);
        assert_eq!(m.config().predictor_bits, 8);
        // The port is attached: a request is answered at the next service.
        let req = capsim_ipmi::GetPowerReading::request(mgr.next_seq());
        mgr.send(&req).unwrap();
        m.service_bmc();
        assert!(mgr.recv().is_ok());
    }
}
