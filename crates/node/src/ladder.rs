//! The throttle ladder: the totally ordered escalation sequence the BMC
//! walks to honour a power cap.
//!
//! Rung 0 is the unthrottled machine. Rungs 1–15 step down the P-state
//! table — plain DVFS, the primary mechanism (§II-B). Once DVFS is
//! exhausted at P-min, the deeper rungs engage the techniques the paper
//! infers from its counter data:
//!
//! * **T-state duty cycling** — wall-clock time stretches while the
//!   APERF-style frequency reading stays pinned at 1200 MHz (Table II rows
//!   A7–A9/B7–B9),
//! * **dynamic cache reconfiguration** (way gating) — Stereo Matching's
//!   L2/L3 misses explode at 125/120 W while streaming SIRE/RSM's stay
//!   flat,
//! * **ITLB shrink** — both applications' ITLB misses blow up by 60–85×,
//! * **memory gating** — every level of the Figure-4 memory mountain gets
//!   slower, and memory-bound SIRE/RSM collapses at 120 W.
//!
//! Each deeper rung buys a few hundred milliwatts to a few watts for a
//! disproportionate performance cost — the paper's conclusion (3) that the
//! low-cap techniques "provided small decreases in power consumption at
//! the cost of high losses in execution time performance".

use capsim_cpu::{PStateTable, TState};
use capsim_mem::{MemGateLevel, MemReconfig};

/// One rung: a complete machine throttle setting.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Rung {
    /// Index into the P-state table.
    pub pstate: u8,
    /// Clock-modulation duty.
    pub tstate: TState,
    /// Memory-side configuration.
    pub mem: MemReconfig,
}

impl Rung {
    /// The unthrottled rung.
    pub fn full(full_mem: MemReconfig) -> Self {
        Rung { pstate: 0, tstate: TState::FULL, mem: full_mem }
    }
}

/// The ordered ladder.
#[derive(Clone, Debug)]
pub struct ThrottleLadder {
    rungs: Vec<Rung>,
}

impl ThrottleLadder {
    /// Build the ladder for the paper's platform.
    ///
    /// `full_mem` describes the un-gated hierarchy (taken from the machine
    /// config so geometry changes propagate).
    pub fn e5_2680(pstates: &PStateTable, full_mem: MemReconfig) -> Self {
        let mut rungs = Vec::with_capacity(32);
        // DVFS region: P0 … P15.
        for p in 0..pstates.len() as u8 {
            rungs.push(Rung { pstate: p, tstate: TState::FULL, mem: full_mem });
        }
        let pmin = (pstates.len() - 1) as u8;
        // Beyond DVFS: interleave duty steps with memory-side gating.
        // The specific floors encode the paper's counter signatures: L1
        // and DTLB are barely touched (their misses stay within a few
        // percent in Table II), L2/L3 way gating and ITLB shrink go deep
        // (the 125/120 W blow-ups), and memory gating tops out at Heavy.
        // (duty/16, l1d, l1i, l2, l3 ways, itlb, dtlb, memgate)
        type DeepRung = (u8, u32, u32, u32, u32, u32, u32, MemGateLevel);
        let deep: [DeepRung; 14] = [
            (14, 8, 8, 8, 20, 128, 64, MemGateLevel::Off),
            (13, 8, 8, 8, 18, 96, 64, MemGateLevel::Off),
            (12, 8, 8, 8, 16, 96, 64, MemGateLevel::Off),
            (11, 8, 8, 6, 14, 64, 64, MemGateLevel::Off),
            (10, 8, 8, 6, 12, 64, 64, MemGateLevel::Light),
            (9, 8, 8, 6, 10, 64, 64, MemGateLevel::Light),
            (8, 8, 8, 4, 8, 64, 64, MemGateLevel::Light),
            (7, 8, 8, 4, 8, 64, 64, MemGateLevel::Light),
            (6, 8, 8, 4, 6, 32, 64, MemGateLevel::Medium),
            (5, 8, 8, 2, 6, 32, 64, MemGateLevel::Medium),
            (4, 8, 8, 2, 4, 32, 64, MemGateLevel::Medium),
            (3, 8, 8, 2, 4, 32, 64, MemGateLevel::Medium),
            (2, 8, 8, 2, 4, 32, 64, MemGateLevel::Heavy),
            (1, 8, 8, 2, 4, 32, 64, MemGateLevel::Heavy),
        ];
        for (duty, l1d, l1i, l2, l3, itlb, dtlb, gate) in deep {
            rungs.push(Rung {
                pstate: pmin,
                tstate: TState::of_16(duty),
                mem: MemReconfig {
                    l1d_ways: l1d.min(full_mem.l1d_ways),
                    l1i_ways: l1i.min(full_mem.l1i_ways),
                    l2_ways: l2.min(full_mem.l2_ways),
                    l3_ways: l3.min(full_mem.l3_ways),
                    itlb_entries: itlb.min(full_mem.itlb_entries),
                    dtlb_entries: dtlb.min(full_mem.dtlb_entries),
                    mem_gate: gate,
                },
            });
        }
        ThrottleLadder { rungs }
    }

    /// A DVFS-only ladder (used by the X1 ablation: what would the paper's
    /// Table II look like if the firmware stopped at P-min?).
    pub fn dvfs_only(pstates: &PStateTable, full_mem: MemReconfig) -> Self {
        let rungs = (0..pstates.len() as u8)
            .map(|p| Rung { pstate: p, tstate: TState::FULL, mem: full_mem })
            .collect();
        ThrottleLadder { rungs }
    }

    pub fn len(&self) -> usize {
        self.rungs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rungs.is_empty()
    }

    /// Rung at `index`, clamped to the deepest.
    pub fn get(&self, index: usize) -> Rung {
        self.rungs[index.min(self.rungs.len() - 1)]
    }

    /// Index of the deepest rung.
    pub fn deepest(&self) -> usize {
        self.rungs.len() - 1
    }

    pub fn iter(&self) -> impl Iterator<Item = &Rung> {
        self.rungs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ladder() -> ThrottleLadder {
        ThrottleLadder::e5_2680(&PStateTable::e5_2680(), MemReconfig::full())
    }

    #[test]
    fn dvfs_rungs_come_first_and_do_not_touch_memory() {
        let l = ladder();
        for (i, r) in l.iter().take(16).enumerate() {
            assert_eq!(r.pstate, i as u8);
            assert_eq!(r.tstate, TState::FULL);
            assert!(r.mem.is_full(), "rung {i} must be pure DVFS");
        }
    }

    #[test]
    fn deep_rungs_stay_at_pmin() {
        let l = ladder();
        for r in l.iter().skip(16) {
            assert_eq!(r.pstate, 15, "frequency pinned at P-min beyond DVFS");
        }
    }

    #[test]
    fn duty_and_gating_escalate_monotonically() {
        let l = ladder();
        let deep: Vec<_> = l.iter().skip(16).collect();
        for w in deep.windows(2) {
            assert!(w[1].tstate.duty() <= w[0].tstate.duty());
            assert!(w[1].mem.gating_fraction() >= w[0].mem.gating_fraction());
            assert!(w[1].mem.mem_gate >= w[0].mem.mem_gate);
        }
    }

    #[test]
    fn deepest_rung_gates_hard_but_leaves_l1_and_dtlb_mostly_alone() {
        let l = ladder();
        let r = l.get(l.deepest());
        assert!(r.tstate.duty() <= 0.25, "deep duty cycling");
        assert_eq!(r.mem.mem_gate, MemGateLevel::Heavy);
        assert!(r.mem.l3_ways <= 4);
        assert!(r.mem.itlb_entries <= 32);
        // Table II shows L1 and DTLB misses nearly flat even at 120 W:
        // the firmware never gates those structures.
        assert_eq!(r.mem.l1d_ways, 8);
        assert_eq!(r.mem.dtlb_entries, 64);
    }

    #[test]
    fn get_clamps_beyond_the_end() {
        let l = ladder();
        assert_eq!(l.get(10_000), l.get(l.deepest()));
    }

    #[test]
    fn dvfs_only_ladder_has_16_rungs_all_full_memory() {
        let l = ThrottleLadder::dvfs_only(&PStateTable::e5_2680(), MemReconfig::full());
        assert_eq!(l.len(), 16);
        assert!(l.iter().all(|r| r.mem.is_full() && r.tstate == TState::FULL));
    }

    #[test]
    fn ladder_respects_smaller_provisioned_geometry() {
        let mut small = MemReconfig::full();
        small.l3_ways = 8;
        small.itlb_entries = 16;
        let l = ThrottleLadder::e5_2680(&PStateTable::e5_2680(), small);
        for r in l.iter() {
            assert!(r.mem.l3_ways <= 8);
            assert!(r.mem.itlb_entries <= 16);
        }
    }
}
