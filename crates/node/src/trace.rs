//! Per-tick run tracing: the time series behind the controller's
//! behaviour.
//!
//! The paper can only report run-level averages; the simulator can show
//! the control loop *moving* — every sample records the instant's power,
//! the rung the BMC chose, the P-state frequency and duty. The phased
//! extension uses it to count dithering, tests use it to verify
//! equilibrium properties, and it renders to CSV for plotting.

use std::collections::VecDeque;

/// One control-tick sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceSample {
    /// Simulated time at the end of the window, seconds.
    pub t_s: f64,
    /// Node power over the window, watts.
    pub watts: f64,
    /// Ladder rung in force during the window.
    pub rung: usize,
    /// P-state frequency in MHz.
    pub freq_mhz: f64,
    /// T-state duty fraction.
    pub duty: f64,
    /// Die temperature.
    pub temp_c: f64,
}

/// A bounded trace (keeps the most recent `capacity` samples).
#[derive(Clone, Debug)]
pub struct RunTrace {
    samples: VecDeque<TraceSample>,
    capacity: usize,
    dropped: u64,
}

impl RunTrace {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 16);
        RunTrace { samples: VecDeque::with_capacity(capacity), capacity, dropped: 0 }
    }

    pub(crate) fn push(&mut self, s: TraceSample) {
        if self.samples.len() == self.capacity {
            self.samples.pop_front();
            self.dropped += 1;
        }
        self.samples.push_back(s);
    }

    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Samples evicted due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    pub fn iter(&self) -> impl Iterator<Item = &TraceSample> {
        self.samples.iter()
    }

    /// Number of rung changes across the retained window — the dithering
    /// activity a cap between two rungs produces.
    pub fn rung_changes(&self) -> usize {
        self.samples
            .iter()
            .zip(self.samples.iter().skip(1))
            .filter(|(a, b)| a.rung != b.rung)
            .count()
    }

    /// Distinct rungs visited in the retained window.
    pub fn rungs_visited(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.samples.iter().map(|s| s.rung).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Render to CSV (`t_s,watts,rung,freq_mhz,duty,temp_c`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("t_s,watts,rung,freq_mhz,duty,temp_c\n");
        for s in &self.samples {
            out.push_str(&format!(
                "{:.6},{:.2},{},{:.0},{:.4},{:.2}\n",
                s.t_s, s.watts, s.rung, s.freq_mhz, s.duty, s.temp_c
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t: f64, rung: usize) -> TraceSample {
        TraceSample { t_s: t, watts: 130.0, rung, freq_mhz: 1200.0, duty: 1.0, temp_c: 60.0 }
    }

    #[test]
    fn bounded_capacity_drops_oldest() {
        let mut tr = RunTrace::new(16);
        for i in 0..20 {
            tr.push(sample(i as f64, 0));
        }
        assert_eq!(tr.len(), 16);
        assert_eq!(tr.dropped(), 4);
        // Eviction is strictly oldest-first: the retained window is the
        // contiguous tail 4.0..=19.0 in push order.
        let kept: Vec<f64> = tr.iter().map(|s| s.t_s).collect();
        let expect: Vec<f64> = (4..20).map(|i| i as f64).collect();
        assert_eq!(kept, expect);
    }

    #[test]
    fn rung_change_counting_detects_dithering() {
        let mut tr = RunTrace::new(64);
        for i in 0..10 {
            tr.push(sample(i as f64, 3 + (i % 2)));
        }
        assert_eq!(tr.rung_changes(), 9);
        assert_eq!(tr.rungs_visited(), vec![3, 4]);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut tr = RunTrace::new(16);
        tr.push(sample(0.1, 2));
        let csv = tr.to_csv();
        assert!(csv.starts_with("t_s,watts"));
        assert_eq!(csv.lines().count(), 2);
    }
}
