//! Machine configuration.

use capsim_cpu::{PStateTable, TimingParams};
use capsim_mem::{HierarchyConfig, MemReconfig};
use capsim_power::PowerParams;

/// Everything needed to build a [`crate::Machine`].
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Memory-hierarchy geometry and latencies.
    pub hierarchy: HierarchyConfig,
    /// DVFS operating points.
    pub pstates: PStateTable,
    /// Core timing knobs.
    pub timing: TimingParams,
    /// Node power calibration.
    pub power: PowerParams,
    /// Number of cores executing workload code (the paper uses 1).
    pub n_cores: usize,
    /// BMC control-loop period in microseconds of simulated time.
    pub control_period_us: f64,
    /// Power-meter averaging window in seconds (the BMC's view).
    pub meter_window_s: f64,
    /// Branch-predictor table size (log2 entries).
    pub predictor_bits: u32,
    /// Fast-forward fully quiescent idle spans in one metering window
    /// instead of ticking through them (see [`crate::Machine::idle`]).
    /// Default off: single-node experiments keep per-tick metering
    /// granularity. The fleet engine turns it on — a datacenter's worth
    /// of mostly-idle nodes is exactly where per-tick idle accounting
    /// dominates the epoch.
    pub idle_skip: bool,
    /// Seed for everything stochastic in the machine (replacement streams,
    /// wrong-path addresses). The study averages over several seeds like
    /// the paper averages over five runs.
    pub seed: u64,
}

impl MachineConfig {
    /// The paper's platform with a given seed.
    pub fn e5_2680(seed: u64) -> Self {
        MachineConfig {
            hierarchy: HierarchyConfig::e5_2680(),
            pstates: PStateTable::e5_2680(),
            timing: TimingParams::e5_2680(),
            power: PowerParams::e5_2680_node(),
            n_cores: 1,
            control_period_us: 200.0,
            meter_window_s: 0.002,
            predictor_bits: 14,
            idle_skip: false,
            seed,
        }
    }

    /// The paper's platform with single-core Turbo Boost enabled (the
    /// testbed ran with turbo off — baseline frequency reads 2701 MHz in
    /// Table II — so this variant exists for the turbo ablation).
    pub fn e5_2680_turbo(seed: u64) -> Self {
        let mut c = Self::e5_2680(seed);
        c.pstates = capsim_cpu::PStateTable::e5_2680_turbo();
        c
    }

    /// A tiny machine for fast unit tests.
    pub fn tiny(seed: u64) -> Self {
        let mut c = Self::e5_2680(seed);
        c.hierarchy = HierarchyConfig::tiny();
        c.predictor_bits = 10;
        c
    }

    /// The full (ungated) memory configuration implied by the hierarchy.
    pub fn full_mem(&self) -> MemReconfig {
        MemReconfig {
            l1d_ways: self.hierarchy.l1d.ways,
            l1i_ways: self.hierarchy.l1i.ways,
            l2_ways: self.hierarchy.l2.ways,
            l3_ways: self.hierarchy.l3.ways,
            itlb_entries: self.hierarchy.itlb.entries,
            dtlb_entries: self.hierarchy.dtlb.entries,
            mem_gate: capsim_mem::MemGateLevel::Off,
        }
    }

    pub fn validate(&self) {
        self.hierarchy.validate();
        self.timing.validate();
        assert!(self.n_cores >= 1);
        assert!(self.control_period_us > 0.0);
        assert!(self.meter_window_s > 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        MachineConfig::e5_2680(1).validate();
        MachineConfig::tiny(1).validate();
    }

    #[test]
    fn full_mem_matches_hierarchy_geometry() {
        let c = MachineConfig::e5_2680(1);
        let m = c.full_mem();
        assert_eq!(m.l3_ways, 20);
        assert_eq!(m.itlb_entries, 128);
        assert!(m.is_full());
    }
}
