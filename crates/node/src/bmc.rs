//! The BMC firmware model: closed-loop power capping plus the IPMI
//! service endpoint.
//!
//! Every control period the machine hands the BMC the windowed average
//! node power; the BMC escalates one rung when over the cap and
//! de-escalates when comfortably under it. With a cap that falls between
//! the power levels of two adjacent rungs the loop never settles — it
//! dithers, exactly as §II-A describes for P-states ("the BMC switches
//! between the two states in an attempt to honor the power cap"), which is
//! what produces the paper's fractional average frequencies (2168, 1274,
//! 2422 MHz…).
//!
//! If the ladder is exhausted and the node still exceeds the cap, the BMC
//! keeps the deepest rung and (with the DCMI `LogOnly` exception action)
//! simply logs — the reason Table II's 120 W rows report ~124 W measured.

use capsim_ipmi::app_cmds::{
    DcmiCapabilities, DeviceId, CMD_GET_DCMI_CAPABILITIES, CMD_GET_DEVICE_ID,
};
use capsim_ipmi::dcmi::{
    self, ActivatePowerLimit, ExceptionAction, PowerLimit, PowerReading, SetPowerLimit,
};
use capsim_ipmi::sel::{
    SelEventType, SystemEventLog, CMD_CLEAR_SEL, CMD_GET_SEL_ENTRY, CMD_GET_SEL_INFO,
};
use capsim_ipmi::sensor::{SensorId, SensorRead, SensorValue, CMD_GET_SENSOR_READING};
use capsim_ipmi::{BmcPort, CompletionCode, IpmiError, NetFn, Request, Response};
use capsim_obs::{EventKind, Obs, RungCause};
use capsim_policy::{CapDecision, CapPolicy, LadderCapPolicy, NodeCapView};

use crate::ladder::{Rung, ThrottleLadder};

fn sel_event_name(e: SelEventType) -> &'static str {
    match e {
        SelEventType::PowerLimitExceeded => "power_limit_exceeded",
        SelEventType::PowerLimitConfigured => "power_limit_configured",
        SelEventType::ThrottleFloorReached => "throttle_floor_reached",
        SelEventType::FirmwareRebooted => "firmware_rebooted",
        SelEventType::FailsafeEngaged => "failsafe_engaged",
    }
}

/// A rejected power-cap wattage: caps must be finite and positive.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InvalidPowerCap {
    /// The rejected value.
    pub watts: f64,
}

impl std::fmt::Display for InvalidPowerCap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid power cap {} W: must be finite and > 0", self.watts)
    }
}

impl std::error::Error for InvalidPowerCap {}

/// An active power cap in watts.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PowerCap {
    pub watts: f64,
}

impl PowerCap {
    /// Validate a cap wattage. NaN, infinities, zero and negative values
    /// are rejected — a cap of `-0.0` or `NaN` would otherwise disable
    /// every comparison in the control loop while claiming to be active.
    pub fn new(watts: f64) -> Result<Self, InvalidPowerCap> {
        if watts.is_finite() && watts > 0.0 {
            Ok(PowerCap { watts })
        } else {
            Err(InvalidPowerCap { watts })
        }
    }
}

/// Tunables for the BMC guardrails: the failsafe rung floor, the stale
/// telemetry watchdog, and the cap-violation detector.
///
/// All thresholds count consecutive control samples, so their wall-clock
/// meaning scales with the machine's control period.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GuardrailConfig {
    /// Window averages above this are implausible for a single node.
    pub implausible_max_w: f64,
    /// Die temperatures above this are implausible (sensor fault).
    pub implausible_max_temp_c: f64,
    /// Consecutive implausible samples before the failsafe engages.
    pub implausible_after: u32,
    /// Consecutive frozen-timestamp samples (with an active cap) before
    /// the failsafe engages; 0 disables stale detection.
    pub stale_after: u32,
    /// Consecutive fresh, plausible samples before the failsafe releases.
    pub release_after: u32,
    /// Rung pinned while the failsafe holds; `None` means the deepest.
    pub failsafe_rung: Option<usize>,
    /// Consecutive over-cap samples before a cap-violation event fires.
    pub violation_after: u32,
    /// Consecutive under-cap samples before the violation episode ends.
    pub violation_clear_after: u32,
}

impl Default for GuardrailConfig {
    fn default() -> Self {
        GuardrailConfig {
            implausible_max_w: 1000.0,
            implausible_max_temp_c: 120.0,
            implausible_after: 3,
            stale_after: 32,
            release_after: 8,
            failsafe_rung: None,
            violation_after: 16,
            violation_clear_after: 8,
        }
    }
}

/// Telemetry the machine exposes to the BMC each control tick (and that
/// the BMC forwards over IPMI).
#[derive(Clone, Copy, Debug, Default)]
pub struct BmcTelemetry {
    pub window_avg_w: f64,
    pub run_avg_w: f64,
    pub min_w: f64,
    pub max_w: f64,
    pub die_temp_c: f64,
    pub inlet_temp_c: f64,
    /// Fraction of the window the cores were busy (0..=1); input to the
    /// capping policy, not forwarded over DCMI.
    pub busy_frac: f64,
    /// Achieved issue-slot utilization over the window (0..=1).
    pub issue_frac: f64,
    /// Simulated time of the sample in milliseconds (drives the DCMI
    /// correction-time clock and SEL timestamps).
    pub now_ms: f64,
}

/// The BMC firmware state.
#[derive(Clone, Debug)]
pub struct Bmc {
    ladder: ThrottleLadder,
    cap: Option<PowerCap>,
    cap_active: bool,
    rung: usize,
    /// De-escalate only when below `cap - hysteresis_w`.
    hysteresis_w: f64,
    escalations: u64,
    deescalations: u64,
    exceptions: u64,
    stored_limit: Option<PowerLimit>,
    last_telemetry: BmcTelemetry,
    /// DCMI correction-time tracking: when the node first went over the
    /// active cap (cleared whenever it dips back under).
    over_cap_since_ms: Option<f64>,
    /// Time of the last correction-time exception, to log one SEL entry
    /// per correction interval rather than per tick.
    last_exception_ms: f64,
    sel: SystemEventLog,
    chassis_on: bool,
    floor_logged: bool,
    /// Guardrail tunables; `None` switches every guardrail off.
    guard: Option<GuardrailConfig>,
    /// Failsafe rung floor currently engaged (untrusted telemetry).
    failsafe: bool,
    implausible_streak: u32,
    stale_streak: u32,
    plausible_streak: u32,
    viol_streak: u32,
    under_streak: u32,
    /// Cap-violation detector: inside a sustained over-cap episode.
    violating: bool,
    /// Firmware crashed: no service, no control, until the watchdog fires.
    crashed: bool,
    crashed_at_ms: f64,
    reboot_at_ms: Option<f64>,
    /// Controller fault: cap commands are acknowledged but not applied.
    lost_cap_commands: bool,
    /// What the last served `Get Power Reading` answered: `(current_w,
    /// SEL length at the time)`. Lock-step managers consult
    /// [`Bmc::poll_would_repeat`] to elide polls that cannot return new
    /// information.
    poll_snapshot: Option<(u16, usize)>,
    /// Observability sink for this node (disabled by default: one branch
    /// per site, nothing recorded).
    obs: Obs,
    /// The capping-policy backend consulted each control period. The
    /// default [`LadderCapPolicy`] reproduces the pre-trait walk
    /// bit-for-bit; guardrails run in the BMC regardless of backend.
    policy: Box<dyn CapPolicy>,
}

impl Bmc {
    pub fn new(ladder: ThrottleLadder) -> Self {
        Bmc {
            ladder,
            cap: None,
            cap_active: false,
            rung: 0,
            hysteresis_w: 1.0,
            escalations: 0,
            deescalations: 0,
            exceptions: 0,
            stored_limit: None,
            last_telemetry: BmcTelemetry::default(),
            over_cap_since_ms: None,
            last_exception_ms: f64::NEG_INFINITY,
            sel: SystemEventLog::new(),
            chassis_on: true,
            floor_logged: false,
            guard: Some(GuardrailConfig::default()),
            failsafe: false,
            implausible_streak: 0,
            stale_streak: 0,
            plausible_streak: 0,
            viol_streak: 0,
            under_streak: 0,
            violating: false,
            crashed: false,
            crashed_at_ms: 0.0,
            reboot_at_ms: None,
            lost_cap_commands: false,
            poll_snapshot: None,
            obs: Obs::disabled(),
            policy: Box::new(LadderCapPolicy::new()),
        }
    }

    /// Install a capping-policy backend (default: the ladder walk). The
    /// policy decides rungs; guardrails, correction time and the SEL
    /// paper trail stay in the firmware regardless.
    pub fn set_policy(&mut self, policy: Box<dyn CapPolicy>) {
        self.policy = policy;
    }

    /// The installed capping-policy backend.
    pub fn policy(&self) -> &dyn CapPolicy {
        self.policy.as_ref()
    }

    /// Replace the guardrail tunables; `None` disables all guardrails.
    pub fn set_guardrails(&mut self, guard: Option<GuardrailConfig>) {
        self.guard = guard;
        if guard.is_none() {
            self.failsafe = false;
            self.implausible_streak = 0;
            self.stale_streak = 0;
            self.plausible_streak = 0;
            self.viol_streak = 0;
            self.under_streak = 0;
            self.violating = false;
        }
    }

    /// The active guardrail tunables, if any.
    pub fn guardrails(&self) -> Option<&GuardrailConfig> {
        self.guard.as_ref()
    }

    /// Whether the failsafe rung floor is currently engaged.
    pub fn failsafe_active(&self) -> bool {
        self.failsafe
    }

    /// Whether the cap-violation detector is inside an episode.
    pub fn cap_violating(&self) -> bool {
        self.violating
    }

    /// Whether the firmware is crashed (awaiting the watchdog).
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Would a `Get Power Reading` right now repeat the last answer?
    ///
    /// True only when firmware is alive, a poll has been served before,
    /// the SEL has not grown since (SEL growth is the conservative "the
    /// BMC did something" detector — cap pushes, crashes, throttle-floor
    /// and correction-time events all append records), and the rounded
    /// window average still matches the reported watts. A lock-step
    /// manager may then reuse its cached reading instead of spending a
    /// wire transaction.
    pub fn poll_would_repeat(&self) -> bool {
        !self.crashed
            && self.poll_snapshot
                == Some((self.last_telemetry.window_avg_w.round() as u16, self.sel.len()))
    }

    /// Would a control tick fed steady telemetry of `window_avg_w` watts
    /// leave every control decision untouched?
    ///
    /// True only in the boring steady state: firmware alive, no failsafe
    /// or violation episode, no guardrail streak in progress, rung 0 with
    /// no pending correction-time clock, and the reading plausible and
    /// comfortably under the cap (beyond the de-escalation hysteresis).
    /// [`crate::Machine::idle`] uses this to fast-forward quiescent idle
    /// spans.
    pub fn control_quiescent(&self, window_avg_w: f64) -> bool {
        !self.crashed
            && !self.failsafe
            && !self.violating
            && self.rung == 0
            && self.over_cap_since_ms.is_none()
            && self.implausible_streak == 0
            && self.stale_streak == 0
            && window_avg_w.is_finite()
            && window_avg_w > 0.0
            && self.policy.node_quiescent(
                window_avg_w,
                self.cap().map(|c| c.watts),
                self.hysteresis_w,
            )
    }

    /// Controller fault: when set, `Set Power Limit` and `Activate Power
    /// Limit` are acknowledged on the wire but silently not applied.
    pub fn set_lost_cap_commands(&mut self, on: bool) {
        self.lost_cap_commands = on;
    }

    /// Crash the firmware at `now_ms`. Service and control stop; volatile
    /// control state is lost on the watchdog-driven restart `dead_ms`
    /// later, while the SEL and the persistent limit survive.
    pub fn crash(&mut self, now_ms: f64, dead_ms: f64) {
        if self.crashed {
            return;
        }
        self.crashed = true;
        self.crashed_at_ms = now_ms;
        self.reboot_at_ms = Some(now_ms + dead_ms);
        self.obs.metrics.inc("bmc.crashes");
        self.obs.events.record(now_ms * 1e-3, EventKind::BmcCrash { dead_ms });
    }

    /// Watchdog timer, driven from the machine's own clock so a frozen
    /// telemetry stream cannot stall the restart. Returns the rung to
    /// apply when the firmware comes back (volatile state lost: rung 0).
    pub fn watchdog_tick(&mut self, now_ms: f64) -> Option<Rung> {
        let due = self.reboot_at_ms?;
        if now_ms < due {
            return None;
        }
        let down_ms = now_ms - self.crashed_at_ms;
        self.crashed = false;
        self.reboot_at_ms = None;
        // Volatile control state is lost; `cap`, `cap_active`,
        // `stored_limit` and the SEL persist across the reboot.
        self.rung = 0;
        self.over_cap_since_ms = None;
        self.last_exception_ms = f64::NEG_INFINITY;
        self.floor_logged = false;
        self.failsafe = false;
        self.implausible_streak = 0;
        self.stale_streak = 0;
        self.plausible_streak = 0;
        self.viol_streak = 0;
        self.under_streak = 0;
        self.violating = false;
        self.last_telemetry = BmcTelemetry { now_ms, ..BmcTelemetry::default() };
        self.obs.metrics.inc("bmc.watchdog_reboots");
        self.log_sel(
            now_ms as u64,
            SelEventType::FirmwareRebooted,
            down_ms.round().clamp(0.0, 65535.0) as u16,
        );
        self.obs.events.record(now_ms * 1e-3, EventKind::WatchdogReboot { down_ms });
        Some(self.current())
    }

    /// Start recording metrics and events (ring of `event_capacity`).
    pub fn enable_obs(&mut self, event_capacity: usize) {
        self.obs = Obs::enabled(event_capacity);
    }

    /// This node's observability sink.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Mutable access for callers (the machine's tick) that fold their own
    /// series into the node's sink.
    pub fn obs_mut(&mut self) -> &mut Obs {
        &mut self.obs
    }

    /// Append to the SEL and mirror the append into the event log.
    fn log_sel(&mut self, timestamp_ms: u64, event: SelEventType, datum: u16) {
        self.sel.log(timestamp_ms, event, datum);
        self.obs.metrics.inc("bmc.sel_appends");
        self.obs.events.record(
            timestamp_ms as f64 * 1e-3,
            EventKind::SelAppend { event: sel_event_name(event), datum },
        );
    }

    /// The System Event Log (the paper trail for cap violations).
    pub fn sel(&self) -> &SystemEventLog {
        &self.sel
    }

    /// False once a `HardPowerOff` exception action has fired.
    pub fn chassis_on(&self) -> bool {
        self.chassis_on
    }

    /// Set (or clear) the cap directly — the in-band shortcut tests and
    /// single-node experiments use. IPMI management uses [`Bmc::serve`].
    pub fn set_cap(&mut self, cap: Option<PowerCap>) {
        self.cap = cap;
        self.cap_active = cap.is_some();
        if cap.is_none() {
            self.rung = 0;
        }
    }

    pub fn cap(&self) -> Option<PowerCap> {
        self.cap.filter(|_| self.cap_active)
    }

    /// Current rung setting.
    pub fn current(&self) -> Rung {
        self.ladder.get(self.rung)
    }

    pub fn rung_index(&self) -> usize {
        self.rung
    }

    /// (escalations, de-escalations, exhausted-ladder exceptions).
    pub fn control_stats(&self) -> (u64, u64, u64) {
        (self.escalations, self.deescalations, self.exceptions)
    }

    /// Guardrail bookkeeping for one control sample. Returns `false` when
    /// the sample is implausible and must not feed the control loop.
    fn update_guardrails(&mut self, t: &BmcTelemetry, fresh: bool) -> bool {
        let Some(g) = self.guard else { return true };
        let implausible = !t.window_avg_w.is_finite()
            || t.window_avg_w <= 0.0
            || t.window_avg_w > g.implausible_max_w
            || !t.die_temp_c.is_finite()
            || t.die_temp_c > g.implausible_max_temp_c;
        self.implausible_streak = if implausible { self.implausible_streak + 1 } else { 0 };
        let stale = self.cap_active && !fresh;
        self.stale_streak = if stale { self.stale_streak + 1 } else { 0 };
        if !self.failsafe {
            if self.implausible_streak >= g.implausible_after {
                self.engage_failsafe("implausible_reading", t);
            } else if g.stale_after > 0 && self.stale_streak >= g.stale_after {
                self.engage_failsafe("stale_telemetry", t);
            }
        } else if !implausible && fresh {
            self.plausible_streak += 1;
            if self.plausible_streak >= g.release_after {
                self.failsafe = false;
                self.plausible_streak = 0;
                self.obs.events.record(t.now_ms * 1e-3, EventKind::FailsafeReleased);
            }
        } else {
            self.plausible_streak = 0;
        }
        !implausible
    }

    fn engage_failsafe(&mut self, reason: &'static str, t: &BmcTelemetry) {
        self.failsafe = true;
        self.plausible_streak = 0;
        self.obs.metrics.inc("bmc.failsafe_engagements");
        let datum = if t.window_avg_w.is_finite() {
            t.window_avg_w.round().clamp(0.0, 65535.0) as u16
        } else {
            0
        };
        self.log_sel(t.now_ms as u64, SelEventType::FailsafeEngaged, datum);
        self.obs.events.record(
            t.now_ms * 1e-3,
            EventKind::FailsafeEngaged { reason, window_w: t.window_avg_w },
        );
    }

    /// Cap-violation detector: sustained over-cap samples open an episode
    /// (typed event, no SEL traffic — the DCMI correction-time path owns
    /// the SEL paper trail); sustained under-cap samples close it.
    fn track_violation(&mut self, cap: f64, avg: f64, now_s: f64) {
        let Some(g) = self.guard else { return };
        if avg > cap {
            self.viol_streak += 1;
            self.under_streak = 0;
            if !self.violating && self.viol_streak >= g.violation_after {
                self.violating = true;
                self.obs.metrics.inc("bmc.cap_violations");
                self.obs
                    .events
                    .record(now_s, EventKind::CapViolation { cap_w: cap, window_w: avg });
            }
        } else {
            self.under_streak += 1;
            self.viol_streak = 0;
            if self.violating && self.under_streak >= g.violation_clear_after {
                self.violating = false;
                self.obs.events.record(now_s, EventKind::CapViolationEnded { cap_w: cap });
            }
        }
    }

    /// One control-loop iteration. Returns the rung to apply if it
    /// changed.
    pub fn control(&mut self, telemetry: BmcTelemetry) -> Option<Rung> {
        if self.crashed {
            // Dead firmware samples nothing and moves nothing.
            return None;
        }
        let pre = self.rung;
        let fresh = telemetry.now_ms > self.last_telemetry.now_ms;
        let sample_ok = self.update_guardrails(&telemetry, fresh);
        self.last_telemetry = telemetry;
        let now_s = telemetry.now_ms * 1e-3;
        if self.failsafe {
            let floor =
                self.guard.and_then(|g| g.failsafe_rung).unwrap_or_else(|| self.ladder.deepest());
            if self.rung < floor {
                let from = self.rung as u32;
                self.rung = floor;
                self.obs.metrics.inc("bmc.failsafe_ticks");
                self.obs.events.record(
                    now_s,
                    EventKind::RungChange {
                        from,
                        to: self.rung as u32,
                        cause: RungCause::Failsafe,
                        window_w: telemetry.window_avg_w,
                    },
                );
            }
            return (self.rung != pre).then(|| self.current());
        }
        if !sample_ok {
            // Implausible but not yet a failsafe episode: hold state.
            return None;
        }
        let cap = match self.cap() {
            Some(c) => c.watts,
            None => {
                if self.rung != 0 {
                    let from = self.rung as u32;
                    self.rung = 0;
                    self.obs.events.record(
                        now_s,
                        EventKind::RungChange {
                            from,
                            to: 0,
                            cause: RungCause::CapCleared,
                            window_w: telemetry.window_avg_w,
                        },
                    );
                    return Some(self.current());
                }
                return None;
            }
        };
        let avg = telemetry.window_avg_w;
        let old = self.rung;
        // Tail latency is read only for policies that ask for it, so the
        // default backends keep their obs-independent control path: with
        // `wants_tail` false (or obs disabled) the view carries 0.0 and
        // the registry is never consulted.
        let tail_ms = if self.policy.wants_tail() {
            self.obs
                .metrics
                .hist_quantile(crate::workload::traffic_keys::LATENCY_MS, 0.99)
                .unwrap_or(0.0)
        } else {
            0.0
        };
        let view = NodeCapView {
            cap_w: cap,
            window_avg_w: avg,
            hysteresis_w: self.hysteresis_w,
            rung: self.rung,
            deepest: self.ladder.deepest(),
            busy_frac: telemetry.busy_frac,
            issue_frac: telemetry.issue_frac,
            now_ms: telemetry.now_ms,
            tail_ms,
        };
        match self.policy.node_decide(&view) {
            CapDecision::Hold => {}
            CapDecision::Escalate => {
                if self.rung == self.ladder.deepest() {
                    // Ladder exhausted: count an exception, keep throttling.
                    self.note_throttle_floor(avg, telemetry.now_ms, now_s);
                } else {
                    self.move_rung(self.rung + 1, RungCause::OverCap, avg, now_s);
                }
            }
            CapDecision::Deescalate => {
                if self.rung > 0 {
                    self.move_rung(self.rung - 1, RungCause::UnderCap, avg, now_s);
                }
            }
            CapDecision::SetRung(target) => {
                let target = target.min(self.ladder.deepest());
                if target != self.rung {
                    self.obs.metrics.inc("policy.jumps");
                    self.move_rung(target, RungCause::Policy, avg, now_s);
                }
                if avg > cap && self.rung == self.ladder.deepest() {
                    self.note_throttle_floor(avg, telemetry.now_ms, now_s);
                }
            }
        }
        self.track_violation(cap, avg, now_s);
        self.track_correction_time(cap, avg, telemetry.now_ms);
        (self.rung != old).then(|| self.current())
    }

    /// Apply a rung move decided by the policy, with the same counters
    /// and event stream the inline walk maintained.
    fn move_rung(&mut self, to: usize, cause: RungCause, window_w: f64, now_s: f64) {
        let from = self.rung;
        if to == from {
            return;
        }
        if to > from {
            self.escalations += 1;
            self.obs.metrics.inc("bmc.escalations");
        } else {
            self.deescalations += 1;
            self.obs.metrics.inc("bmc.deescalations");
        }
        self.rung = to;
        self.obs.events.record(
            now_s,
            EventKind::RungChange { from: from as u32, to: to as u32, cause, window_w },
        );
    }

    /// Exhausted-ladder bookkeeping: count the exception and log the
    /// throttle floor once per episode.
    fn note_throttle_floor(&mut self, avg: f64, now_ms: f64, now_s: f64) {
        self.exceptions += 1;
        self.obs.metrics.inc("bmc.floor_ticks");
        if !self.floor_logged {
            self.floor_logged = true;
            self.log_sel(now_ms as u64, SelEventType::ThrottleFloorReached, avg.round() as u16);
            self.obs.events.record(now_s, EventKind::ThrottleFloor { window_w: avg });
        }
    }

    /// DCMI correction-time semantics: if the node stays above the cap
    /// for longer than the limit's correction time, raise the exception
    /// action — log a SEL record (`LogOnly`) or cut chassis power
    /// (`HardPowerOff`). One exception per correction interval.
    fn track_correction_time(&mut self, cap: f64, avg: f64, now_ms: f64) {
        if avg <= cap {
            self.over_cap_since_ms = None;
            return;
        }
        let since = *self.over_cap_since_ms.get_or_insert(now_ms);
        let correction_ms = self.stored_limit.map_or(1000.0, |l| l.correction_ms as f64);
        if now_ms - since >= correction_ms && now_ms - self.last_exception_ms >= correction_ms {
            self.last_exception_ms = now_ms;
            self.log_sel(now_ms as u64, SelEventType::PowerLimitExceeded, avg.round() as u16);
            if self.stored_limit.map(|l| l.action) == Some(ExceptionAction::HardPowerOff) {
                self.chassis_on = false;
            }
        }
    }

    /// Service pending IPMI requests on `port`. Called from the machine's
    /// control tick — the out-of-band path shares no state with the
    /// workload.
    ///
    /// Frames that fail to decode (corrupted in transit on a faulty link)
    /// are discarded, as real firmware does — the manager's checksum-less
    /// silence turns into a retry on its side. Only a closed channel
    /// stops service.
    pub fn serve(&mut self, port: &BmcPort) -> Result<(), IpmiError> {
        loop {
            match port.poll() {
                Ok(Some(req)) => {
                    if self.crashed {
                        // Dead firmware: the frame is consumed by the NIC
                        // but never answered; the manager times out.
                        continue;
                    }
                    let resp = self.handle(&req);
                    port.send(&resp)?;
                }
                Ok(None) => return Ok(()),
                Err(IpmiError::ChannelClosed) => return Err(IpmiError::ChannelClosed),
                Err(_) => continue,
            }
        }
    }

    fn handle(&mut self, req: &Request) -> Response {
        match (req.netfn, req.cmd) {
            (NetFn::GroupExt, dcmi::CMD_GET_POWER_READING) => {
                let t = self.last_telemetry;
                let reading = PowerReading {
                    current_w: t.window_avg_w.round() as u16,
                    min_w: t.min_w.round() as u16,
                    max_w: t.max_w.round() as u16,
                    avg_w: t.run_avg_w.round() as u16,
                    window_ms: 1000,
                    active: true,
                };
                self.poll_snapshot = Some((reading.current_w, self.sel.len()));
                Response::ok(req, reading.encode())
            }
            (NetFn::GroupExt, dcmi::CMD_SET_POWER_LIMIT) => match SetPowerLimit::parse(req) {
                Ok(limit) if limit.limit_w == 0 => {
                    Response::err(req, CompletionCode::ParameterOutOfRange)
                }
                Ok(_) if self.lost_cap_commands => {
                    // Controller fault: acknowledged on the wire, never
                    // committed to the control loop.
                    self.obs.metrics.inc("bmc.lost_cap_commands");
                    Response::ok(req, vec![dcmi::DCMI_GROUP_EXT])
                }
                Ok(limit) => {
                    let cap = match PowerCap::new(limit.limit_w as f64) {
                        Ok(c) => c,
                        Err(_) => return Response::err(req, CompletionCode::ParameterOutOfRange),
                    };
                    self.stored_limit = Some(limit);
                    self.cap = Some(cap);
                    self.log_sel(
                        self.last_telemetry.now_ms as u64,
                        SelEventType::PowerLimitConfigured,
                        limit.limit_w,
                    );
                    self.obs.metrics.inc("dcmi.set_limit");
                    self.obs.events.record(
                        self.last_telemetry.now_ms * 1e-3,
                        EventKind::DcmiSetLimit {
                            limit_w: limit.limit_w,
                            correction_ms: limit.correction_ms,
                        },
                    );
                    // DCMI semantics: the limit takes effect once activated.
                    Response::ok(req, vec![dcmi::DCMI_GROUP_EXT])
                }
                Err(_) => Response::err(req, CompletionCode::RequestDataLengthInvalid),
            },
            (NetFn::GroupExt, dcmi::CMD_GET_POWER_LIMIT) => {
                self.obs.metrics.inc("dcmi.get_limit");
                self.obs.events.record(self.last_telemetry.now_ms * 1e-3, EventKind::DcmiGetLimit);
                match self.stored_limit {
                    Some(limit) => Response::ok(req, limit.encode()),
                    None => Response::err(req, CompletionCode::DestinationUnavailable),
                }
            }
            (NetFn::GroupExt, dcmi::CMD_ACTIVATE_POWER_LIMIT) => {
                match ActivatePowerLimit::parse(req) {
                    Ok(_) if self.lost_cap_commands => {
                        self.obs.metrics.inc("bmc.lost_cap_commands");
                        Response::ok(req, vec![dcmi::DCMI_GROUP_EXT])
                    }
                    Ok(on) => {
                        if on && self.cap.is_none() {
                            Response::err(req, CompletionCode::DestinationUnavailable)
                        } else {
                            self.cap_active = on;
                            if !on {
                                self.rung = 0;
                            }
                            self.obs.metrics.inc("dcmi.activate");
                            self.obs.events.record(
                                self.last_telemetry.now_ms * 1e-3,
                                EventKind::DcmiActivate { on },
                            );
                            Response::ok(req, vec![dcmi::DCMI_GROUP_EXT])
                        }
                    }
                    Err(_) => Response::err(req, CompletionCode::RequestDataLengthInvalid),
                }
            }
            (NetFn::Sensor, CMD_GET_SENSOR_READING) => match SensorRead::parse(req) {
                Ok(id) => {
                    let t = self.last_telemetry;
                    let v = match id {
                        SensorId::InletTempC => t.inlet_temp_c,
                        SensorId::DieTempC => t.die_temp_c,
                        SensorId::NodePowerW => t.window_avg_w,
                    };
                    Response::ok(req, SensorValue::new(id, v).encode())
                }
                Err(_) => Response::err(req, CompletionCode::RequestDataLengthInvalid),
            },
            (NetFn::App, CMD_GET_DEVICE_ID) => Response::ok(req, DeviceId::capsim_bmc().encode()),
            (NetFn::App, CMD_GET_DCMI_CAPABILITIES) => {
                Response::ok(req, DcmiCapabilities::capsim_node().encode())
            }
            (NetFn::App, CMD_GET_SEL_INFO) => {
                Response::ok(req, (self.sel.len() as u16).to_le_bytes().to_vec())
            }
            (NetFn::App, CMD_GET_SEL_ENTRY) => {
                if req.payload.len() != 2 {
                    return Response::err(req, CompletionCode::RequestDataLengthInvalid);
                }
                let id = u16::from_le_bytes([req.payload[0], req.payload[1]]);
                match self.sel.get(id) {
                    Some(e) => Response::ok(req, e.encode()),
                    None => Response::err(req, CompletionCode::ParameterOutOfRange),
                }
            }
            (NetFn::App, CMD_CLEAR_SEL) => {
                self.sel.clear();
                Response::ok(req, bytes::Bytes::new())
            }
            _ => Response::err(req, CompletionCode::InvalidCommand),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capsim_cpu::PStateTable;
    use capsim_ipmi::dcmi::{ExceptionAction, GetPowerReading};
    use capsim_ipmi::LanChannel;
    use capsim_mem::MemReconfig;

    fn bmc() -> Bmc {
        Bmc::new(ThrottleLadder::e5_2680(&PStateTable::e5_2680(), MemReconfig::full()))
    }

    fn tele(w: f64) -> BmcTelemetry {
        BmcTelemetry { window_avg_w: w, run_avg_w: w, min_w: w, max_w: w, ..Default::default() }
    }

    #[test]
    fn no_cap_means_no_throttle() {
        let mut b = bmc();
        assert!(b.control(tele(200.0)).is_none());
        assert_eq!(b.rung_index(), 0);
    }

    #[test]
    fn over_cap_escalates_one_rung_per_tick() {
        let mut b = bmc();
        b.set_cap(Some(PowerCap::new(140.0).unwrap()));
        for i in 1..=5 {
            let r = b.control(tele(150.0));
            assert!(r.is_some());
            assert_eq!(b.rung_index(), i);
        }
    }

    #[test]
    fn dithers_around_a_cap_between_two_rungs() {
        let mut b = bmc();
        b.set_cap(Some(PowerCap::new(150.0).unwrap()));
        b.control(tele(155.0)); // up to rung 1
        b.control(tele(145.0)); // comfortably below cap-hysteresis: down
        assert_eq!(b.rung_index(), 0);
        b.control(tele(155.0));
        assert_eq!(b.rung_index(), 1);
        let (esc, deesc, _) = b.control_stats();
        assert!(esc >= 2 && deesc >= 1);
    }

    #[test]
    fn hysteresis_prevents_deescalation_just_under_the_cap() {
        let mut b = bmc();
        b.set_cap(Some(PowerCap::new(150.0).unwrap()));
        b.control(tele(151.0));
        assert_eq!(b.rung_index(), 1);
        // 149 is under the cap but within the 2 W hysteresis band: hold.
        assert!(b.control(tele(149.0)).is_none());
        assert_eq!(b.rung_index(), 1);
    }

    #[test]
    fn exhausted_ladder_logs_exceptions_and_holds_deepest() {
        let mut b = bmc();
        b.set_cap(Some(PowerCap::new(50.0).unwrap())); // unreachable
        for _ in 0..100 {
            b.control(tele(124.0));
        }
        assert_eq!(b.rung_index(), b.ladder.deepest());
        let (_, _, ex) = b.control_stats();
        assert!(ex > 0, "exceptions logged once pinned at the deepest rung");
    }

    #[test]
    fn clearing_the_cap_returns_to_full_speed() {
        let mut b = bmc();
        b.set_cap(Some(PowerCap::new(120.0).unwrap()));
        for _ in 0..10 {
            b.control(tele(150.0));
        }
        assert!(b.rung_index() > 0);
        b.set_cap(None);
        assert_eq!(b.rung_index(), 0);
        assert!(b.control(tele(150.0)).is_none());
    }

    #[test]
    fn ipmi_set_and_activate_limit_roundtrip() {
        let mut b = bmc();
        let (mut mgr, port) = LanChannel::pair();
        let limit = PowerLimit {
            limit_w: 135,
            correction_ms: 1000,
            sampling_s: 1,
            action: ExceptionAction::LogOnly,
        };
        let seq = mgr.next_seq();
        mgr.send(&SetPowerLimit(limit).request(seq)).unwrap();
        b.serve(&port).unwrap();
        mgr.recv().unwrap().into_ok().unwrap();
        // Limit stored but capping starts at activation.
        assert!(b.cap().is_none());
        let seq = mgr.next_seq();
        mgr.send(&ActivatePowerLimit { activate: true }.request(seq)).unwrap();
        b.serve(&port).unwrap();
        mgr.recv().unwrap().into_ok().unwrap();
        assert_eq!(b.cap().unwrap().watts, 135.0);
    }

    #[test]
    fn ipmi_power_reading_reflects_telemetry() {
        let mut b = bmc();
        b.control(tele(153.0));
        let (mut mgr, port) = LanChannel::pair();
        let seq = mgr.next_seq();
        mgr.send(&GetPowerReading::request(seq)).unwrap();
        b.serve(&port).unwrap();
        let payload = mgr.recv().unwrap().into_ok().unwrap();
        let r = PowerReading::decode(&payload).unwrap();
        assert_eq!(r.current_w, 153);
        assert!(r.active);
    }

    #[test]
    fn ipmi_activate_without_limit_fails() {
        let mut b = bmc();
        let (mut mgr, port) = LanChannel::pair();
        let seq = mgr.next_seq();
        mgr.send(&ActivatePowerLimit { activate: true }.request(seq)).unwrap();
        b.serve(&port).unwrap();
        assert!(mgr.recv().unwrap().into_ok().is_err());
    }

    #[test]
    fn ipmi_unknown_command_gets_invalid_command() {
        let mut b = bmc();
        let (mut mgr, port) = LanChannel::pair();
        let seq = mgr.next_seq();
        mgr.send(&Request::new(NetFn::App, 0x77, seq, Vec::new())).unwrap();
        b.serve(&port).unwrap();
        let resp = mgr.recv().unwrap();
        assert_eq!(resp.completion, CompletionCode::InvalidCommand);
    }

    #[test]
    fn correction_time_logs_sel_entries_for_sustained_violations() {
        let mut b = bmc();
        let (mut mgr, port) = LanChannel::pair();
        let limit = PowerLimit {
            limit_w: 120,
            correction_ms: 50,
            sampling_s: 1,
            action: ExceptionAction::LogOnly,
        };
        let seq = mgr.next_seq();
        mgr.send(&SetPowerLimit(limit).request(seq)).unwrap();
        b.serve(&port).unwrap();
        mgr.recv().unwrap().into_ok().unwrap();
        let seq = mgr.next_seq();
        mgr.send(&ActivatePowerLimit { activate: true }.request(seq)).unwrap();
        b.serve(&port).unwrap();
        mgr.recv().unwrap().into_ok().unwrap();
        // Sustained 124 W against a 120 W cap: one exceeded entry per
        // 50 ms correction interval, plus the configured + floor entries.
        for t in 0..400u64 {
            let mut tel = tele(124.0);
            tel.now_ms = t as f64;
            b.control(tel);
        }
        assert!(b.chassis_on(), "LogOnly never powers off");
        let exceeded: Vec<_> = b
            .sel()
            .iter()
            .filter(|e| e.event == capsim_ipmi::SelEventType::PowerLimitExceeded)
            .collect();
        assert!(
            (6..=9).contains(&exceeded.len()),
            "~one per 50 ms over 400 ms, got {}",
            exceeded.len()
        );
        assert_eq!(exceeded[0].datum, 124);
        assert!(b.sel().iter().any(|e| e.event == capsim_ipmi::SelEventType::ThrottleFloorReached));
    }

    #[test]
    fn hard_power_off_action_cuts_the_chassis() {
        let mut b = bmc();
        b.stored_limit = Some(PowerLimit {
            limit_w: 110,
            correction_ms: 20,
            sampling_s: 1,
            action: ExceptionAction::HardPowerOff,
        });
        b.set_cap(Some(PowerCap::new(110.0).unwrap()));
        for t in 0..100u64 {
            let mut tel = tele(125.0);
            tel.now_ms = t as f64;
            b.control(tel);
        }
        assert!(!b.chassis_on(), "sustained violation with HardPowerOff");
    }

    #[test]
    fn dipping_under_the_cap_resets_the_correction_clock() {
        let mut b = bmc();
        b.stored_limit = Some(PowerLimit {
            limit_w: 140,
            correction_ms: 100,
            sampling_s: 1,
            action: ExceptionAction::LogOnly,
        });
        b.set_cap(Some(PowerCap::new(140.0).unwrap()));
        // Alternate over/under faster than the correction time.
        for t in 0..300u64 {
            let w = if t % 4 < 2 { 145.0 } else { 130.0 };
            let mut tel = tele(w);
            tel.now_ms = t as f64;
            b.control(tel);
        }
        let exceeded = b
            .sel()
            .iter()
            .filter(|e| e.event == capsim_ipmi::SelEventType::PowerLimitExceeded)
            .count();
        assert_eq!(exceeded, 0, "violations never sustained long enough");
    }

    #[test]
    fn ipmi_sel_and_identity_commands() {
        use capsim_ipmi::app_cmds::{get_capabilities_request, get_device_id_request};
        use capsim_ipmi::sel::{clear_sel_request, get_sel_entry_request, get_sel_info_request};
        let mut b = bmc();
        let (mut mgr, port) = LanChannel::pair();
        // Identity.
        let seq = mgr.next_seq();
        mgr.send(&get_device_id_request(seq)).unwrap();
        b.serve(&port).unwrap();
        let id = capsim_ipmi::DeviceId::decode(&mgr.recv().unwrap().into_ok().unwrap()).unwrap();
        assert_eq!(id.manufacturer, 343);
        // Capabilities.
        let seq = mgr.next_seq();
        mgr.send(&get_capabilities_request(seq)).unwrap();
        b.serve(&port).unwrap();
        let caps =
            capsim_ipmi::DcmiCapabilities::decode(&mgr.recv().unwrap().into_ok().unwrap()).unwrap();
        assert!(caps.power_management);
        // Log something, read it back, clear it.
        b.sel.log(5, capsim_ipmi::SelEventType::PowerLimitExceeded, 124);
        let seq = mgr.next_seq();
        mgr.send(&get_sel_info_request(seq)).unwrap();
        b.serve(&port).unwrap();
        let info = mgr.recv().unwrap().into_ok().unwrap();
        assert_eq!(u16::from_le_bytes([info[0], info[1]]), 1);
        let seq = mgr.next_seq();
        mgr.send(&get_sel_entry_request(seq, 0xffff)).unwrap();
        b.serve(&port).unwrap();
        let e = capsim_ipmi::SelEntry::decode(&mgr.recv().unwrap().into_ok().unwrap()).unwrap();
        assert_eq!(e.datum, 124);
        let seq = mgr.next_seq();
        mgr.send(&clear_sel_request(seq)).unwrap();
        b.serve(&port).unwrap();
        mgr.recv().unwrap().into_ok().unwrap();
        assert!(b.sel().is_empty());
    }

    #[test]
    fn power_cap_rejects_nonsense_watts() {
        assert!(PowerCap::new(135.0).is_ok());
        assert!(PowerCap::new(0.1).is_ok());
        for bad in [0.0, -1.0, -0.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = PowerCap::new(bad).unwrap_err();
            assert!(err.to_string().contains("invalid power cap"), "{err}");
        }
    }

    /// Fresh telemetry with an advancing clock, for guardrail tests.
    fn fresh(w: f64, t_ms: f64) -> BmcTelemetry {
        let mut t = tele(w);
        t.now_ms = t_ms;
        t
    }

    #[test]
    fn sensor_dropout_engages_the_failsafe_floor_and_releases() {
        let mut b = bmc();
        b.set_cap(Some(PowerCap::new(120.0).unwrap()));
        let g = *b.guardrails().unwrap();
        let mut t_ms = 0.0;
        // Dropout: zero-watt readings are implausible; after the debounce
        // the failsafe pins the deepest rung in a single move.
        for _ in 0..g.implausible_after {
            t_ms += 1.0;
            b.control(fresh(0.0, t_ms));
        }
        assert!(b.failsafe_active());
        assert_eq!(b.rung_index(), b.ladder.deepest());
        assert!(b.sel().iter().any(|e| e.event == SelEventType::FailsafeEngaged));
        // Plausible, fresh samples release it; the releasing tick already
        // resumes the normal loop, which de-escalates one rung per tick.
        for _ in 0..g.release_after {
            t_ms += 1.0;
            b.control(fresh(110.0, t_ms));
        }
        assert!(!b.failsafe_active());
        let deepest = b.ladder.deepest();
        assert_eq!(b.rung_index(), deepest - 1);
        t_ms += 1.0;
        b.control(fresh(110.0, t_ms));
        assert_eq!(b.rung_index(), deepest - 2, "normal de-escalation resumes");
    }

    #[test]
    fn frozen_telemetry_clock_engages_the_stale_failsafe() {
        let mut b = bmc();
        b.set_cap(Some(PowerCap::new(140.0).unwrap()));
        // Plausible watts, but the timestamp never advances.
        for _ in 0..40 {
            b.control(fresh(130.0, 5.0));
        }
        assert!(b.failsafe_active());
        assert_eq!(b.rung_index(), b.ladder.deepest());
    }

    #[test]
    fn single_spike_is_debounced_not_escalated() {
        let mut b = bmc();
        b.set_cap(Some(PowerCap::new(140.0).unwrap()));
        b.control(fresh(130.0, 1.0));
        let rung_before = b.rung_index();
        // One implausible 5 kW spike: held, not fed to the loop.
        b.control(fresh(5000.0, 2.0));
        assert_eq!(b.rung_index(), rung_before);
        assert!(!b.failsafe_active());
        b.control(fresh(130.0, 3.0));
        assert!(!b.failsafe_active());
    }

    #[test]
    fn cap_violation_detector_opens_and_closes_episodes_without_sel() {
        let mut b = bmc();
        b.enable_obs(64);
        b.set_cap(Some(PowerCap::new(120.0).unwrap()));
        let g = *b.guardrails().unwrap();
        let mut t_ms = 0.0;
        for _ in 0..g.violation_after {
            t_ms += 1.0;
            b.control(fresh(124.0, t_ms));
        }
        assert!(b.cap_violating());
        for _ in 0..g.violation_clear_after {
            t_ms += 1.0;
            b.control(fresh(110.0, t_ms));
        }
        assert!(!b.cap_violating());
        let names: Vec<&str> = b.obs().events.iter().map(|e| e.kind.name()).collect();
        assert!(names.contains(&"cap_violation"));
        assert!(names.contains(&"cap_violation_ended"));
        // The detector is telemetry-only: SEL traffic stays owned by the
        // DCMI correction-time path.
        assert!(!b.sel().iter().any(|e| e.event == SelEventType::PowerLimitExceeded));
    }

    #[test]
    fn crash_loses_volatile_state_but_keeps_sel_and_persistent_cap() {
        let mut b = bmc();
        b.set_cap(Some(PowerCap::new(120.0).unwrap()));
        let mut t_ms = 0.0;
        for _ in 0..5 {
            t_ms += 1.0;
            b.control(fresh(150.0, t_ms));
        }
        assert_eq!(b.rung_index(), 5);
        let sel_before = b.sel().len();
        b.crash(t_ms, 100.0);
        assert!(b.is_crashed());
        // Dead firmware: control is inert.
        assert!(b.control(fresh(150.0, t_ms + 1.0)).is_none());
        assert_eq!(b.rung_index(), 5, "hardware holds its rung while firmware is down");
        // Watchdog too early: nothing.
        assert!(b.watchdog_tick(t_ms + 50.0).is_none());
        // Watchdog fires: rung resets (volatile lost), cap + SEL survive.
        let rung = b.watchdog_tick(t_ms + 100.0).expect("reboot applies rung 0");
        assert_eq!(rung, b.ladder.get(0));
        assert!(!b.is_crashed());
        assert_eq!(b.cap().unwrap().watts, 120.0);
        assert!(b.sel().len() > sel_before, "reboot logged to the surviving SEL");
        assert!(b.sel().iter().any(|e| e.event == SelEventType::FirmwareRebooted));
    }

    #[test]
    fn crashed_firmware_drops_ipmi_requests() {
        let mut b = bmc();
        b.crash(0.0, 1000.0);
        let (mut mgr, port) = LanChannel::pair();
        let seq = mgr.next_seq();
        mgr.send(&GetPowerReading::request(seq)).unwrap();
        b.serve(&port).unwrap();
        assert!(mgr.try_recv().unwrap().is_none(), "no answer from dead firmware");
    }

    #[test]
    fn lost_cap_commands_are_acked_but_not_applied() {
        let mut b = bmc();
        b.set_lost_cap_commands(true);
        let (mut mgr, port) = LanChannel::pair();
        let limit = PowerLimit {
            limit_w: 135,
            correction_ms: 1000,
            sampling_s: 1,
            action: ExceptionAction::LogOnly,
        };
        let seq = mgr.next_seq();
        mgr.send(&SetPowerLimit(limit).request(seq)).unwrap();
        b.serve(&port).unwrap();
        // The manager sees success…
        mgr.recv().unwrap().into_ok().unwrap();
        let seq = mgr.next_seq();
        mgr.send(&ActivatePowerLimit { activate: true }.request(seq)).unwrap();
        b.serve(&port).unwrap();
        mgr.recv().unwrap().into_ok().unwrap();
        // …but nothing was committed.
        assert!(b.cap().is_none());
        b.set_lost_cap_commands(false);
        let seq = mgr.next_seq();
        mgr.send(&SetPowerLimit(limit).request(seq)).unwrap();
        b.serve(&port).unwrap();
        mgr.recv().unwrap().into_ok().unwrap();
        let seq = mgr.next_seq();
        mgr.send(&ActivatePowerLimit { activate: true }.request(seq)).unwrap();
        b.serve(&port).unwrap();
        mgr.recv().unwrap().into_ok().unwrap();
        assert_eq!(b.cap().unwrap().watts, 135.0);
    }

    #[test]
    fn ipmi_sensor_reads_report_temperatures() {
        let mut b = bmc();
        b.control(BmcTelemetry { die_temp_c: 61.25, inlet_temp_c: 27.0, ..tele(150.0) });
        let (mut mgr, port) = LanChannel::pair();
        let seq = mgr.next_seq();
        mgr.send(&SensorRead { sensor: SensorId::DieTempC }.request(seq)).unwrap();
        b.serve(&port).unwrap();
        let v = SensorValue::decode(&mgr.recv().unwrap().into_ok().unwrap()).unwrap();
        assert_eq!(v.value(), 61.25);
    }
}
