//! A Linux `powercap`/`intel-rapl` sysfs-style **in-band** capping
//! interface.
//!
//! The paper's capping is out-of-band (DCM → IPMI → BMC). The same
//! Sandy Bridge generation introduced RAPL, which Linux later exposed
//! through `/sys/class/powercap/intel-rapl:0/...` — the interface today's
//! open-source tools (powertop, tuned, Kubernetes power operators) drive.
//! This module implements that ABI's core files over the simulated node,
//! so both control paths of the 2012-vs-now story exist:
//!
//! | sysfs file | semantics here |
//! |---|---|
//! | `name` | `"package-0"` |
//! | `enabled` | cap active (`0`/`1`) |
//! | `constraint_0_name` | `"long_term"` |
//! | `constraint_0_power_limit_uw` | the cap, in microwatts |
//! | `constraint_0_time_window_us` | correction window |
//! | `energy_uj` | RAPL package energy counter, microjoules |
//! | `max_energy_range_uj` | counter wrap range |
//!
//! Real RAPL caps the *package*; the study's BMC caps the *node*. The
//! shim converts: a package limit of `P_uw` maps to a node cap of
//! `P + platform overhead` using the machine's calibrated idle split, the
//! same arithmetic operators use when they translate board budgets into
//! RAPL limits.

use capsim_power::{RaplDomain, ENERGY_UNIT_J};

use crate::bmc::PowerCap;
use crate::machine::Machine;

/// Errors mirroring `-EINVAL`/`-ENOENT` from the sysfs store.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PowercapError {
    /// Unknown attribute path.
    NoEnt(String),
    /// Unparsable or out-of-range value.
    Inval(String),
    /// Attribute is read-only.
    ReadOnly(String),
}

impl std::fmt::Display for PowercapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PowercapError::NoEnt(attr) => write!(f, "no such attribute: {attr}"),
            PowercapError::Inval(v) => write!(f, "invalid value: {v}"),
            PowercapError::ReadOnly(attr) => write!(f, "attribute is read-only: {attr}"),
        }
    }
}

impl std::error::Error for PowercapError {}

/// Offset between a package limit and the node cap the BMC enforces:
/// platform + second socket idle + DRAM background (see
/// `capsim_power::PowerParams`).
fn node_overhead_w(m: &Machine) -> f64 {
    let p = &m.config().power;
    p.platform_w + p.socket_idle_w * p.n_sockets as f64 + p.dram_background_w
}

/// The sysfs-like view over one machine.
///
/// ```
/// use capsim_node::{Machine, MachineConfig, PowercapFs};
///
/// let mut m = Machine::new(MachineConfig::tiny(1));
/// let mut fs = PowercapFs::new(&mut m);
/// assert_eq!(fs.read("name").unwrap(), "package-0");
/// fs.write("constraint_0_power_limit_uw", "35000000").unwrap();
/// assert_eq!(fs.read("enabled").unwrap(), "1");
/// ```
pub struct PowercapFs<'m> {
    machine: &'m mut Machine,
    time_window_us: u64,
}

impl<'m> PowercapFs<'m> {
    pub fn new(machine: &'m mut Machine) -> Self {
        PowercapFs { machine, time_window_us: 1_000_000 }
    }

    /// Read an attribute (path relative to `intel-rapl:0/`).
    pub fn read(&self, attr: &str) -> Result<String, PowercapError> {
        match attr {
            "name" => Ok("package-0".to_string()),
            "enabled" => Ok(if self.machine.power_cap().is_some() { "1" } else { "0" }.into()),
            "constraint_0_name" => Ok("long_term".to_string()),
            "constraint_0_power_limit_uw" => {
                let node_cap = self
                    .machine
                    .power_cap()
                    .map(|c| c.watts)
                    .unwrap_or_else(|| node_overhead_w(self.machine) + 130.0);
                let pkg_w = (node_cap - node_overhead_w(self.machine)).max(0.0);
                Ok(format!("{}", (pkg_w * 1e6).round() as u64))
            }
            "constraint_0_time_window_us" => Ok(self.time_window_us.to_string()),
            "energy_uj" => {
                let j = self.machine.rapl().joules(RaplDomain::Package);
                Ok(format!("{}", (j * 1e6) as u64))
            }
            "max_energy_range_uj" => {
                Ok(format!("{}", (u32::MAX as f64 * ENERGY_UNIT_J * 1e6) as u64))
            }
            other => Err(PowercapError::NoEnt(other.to_string())),
        }
    }

    /// Write an attribute.
    pub fn write(&mut self, attr: &str, value: &str) -> Result<(), PowercapError> {
        match attr {
            "enabled" => match value.trim() {
                "0" => {
                    self.machine.set_power_cap(None);
                    Ok(())
                }
                "1" => {
                    if self.machine.power_cap().is_none() {
                        return Err(PowercapError::Inval(
                            "no limit set; write constraint_0_power_limit_uw first".into(),
                        ));
                    }
                    Ok(())
                }
                v => Err(PowercapError::Inval(v.to_string())),
            },
            "constraint_0_power_limit_uw" => {
                let uw: u64 =
                    value.trim().parse().map_err(|_| PowercapError::Inval(value.to_string()))?;
                let pkg_w = uw as f64 / 1e6;
                if !(1.0..=500.0).contains(&pkg_w) {
                    return Err(PowercapError::Inval(format!("{pkg_w} W out of range")));
                }
                let node_cap = pkg_w + node_overhead_w(self.machine);
                self.machine.set_power_cap(Some(PowerCap::new(node_cap).unwrap()));
                Ok(())
            }
            "constraint_0_time_window_us" => {
                self.time_window_us =
                    value.trim().parse().map_err(|_| PowercapError::Inval(value.to_string()))?;
                Ok(())
            }
            "name" | "constraint_0_name" | "energy_uj" | "max_energy_range_uj" => {
                Err(PowercapError::ReadOnly(attr.to_string()))
            }
            other => Err(PowercapError::NoEnt(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;

    fn fast(seed: u64) -> MachineConfig {
        let mut c = MachineConfig::e5_2680(seed);
        c.control_period_us = 10.0;
        c.meter_window_s = 2e-4;
        c
    }

    #[test]
    fn identity_attributes_read_back() {
        let mut m = Machine::new(MachineConfig::tiny(1));
        let fs = PowercapFs::new(&mut m);
        assert_eq!(fs.read("name").unwrap(), "package-0");
        assert_eq!(fs.read("constraint_0_name").unwrap(), "long_term");
        assert_eq!(fs.read("enabled").unwrap(), "0");
        assert!(fs.read("nonsense").is_err());
    }

    #[test]
    fn writing_a_package_limit_caps_the_node() {
        let mut m = Machine::new(fast(2));
        {
            let mut fs = PowercapFs::new(&mut m);
            // 34 W package ≈ 135 W node on this platform (101 W overhead).
            fs.write("constraint_0_power_limit_uw", "34000000").unwrap();
            fs.write("enabled", "1").unwrap();
            let back: u64 = fs.read("constraint_0_power_limit_uw").unwrap().parse().unwrap();
            assert_eq!(back, 34_000_000);
        }
        assert!((m.power_cap().unwrap().watts - 135.0).abs() < 1.0);
        // And it actually throttles.
        let r = m.alloc(1 << 20);
        let block = m.code_block(96, 24);
        for i in 0..300_000u64 {
            m.exec_block(&block);
            m.load(r.at((i * 64) % (1 << 20)));
        }
        let s = m.finish_run();
        assert!(s.avg_power_w < 140.0, "in-band cap enforced: {}", s.avg_power_w);
        assert!(s.avg_freq_mhz < 2650.0);
    }

    #[test]
    fn disabling_uncaps() {
        let mut m = Machine::new(MachineConfig::tiny(3));
        let mut fs = PowercapFs::new(&mut m);
        fs.write("constraint_0_power_limit_uw", "30000000").unwrap();
        assert_eq!(fs.read("enabled").unwrap(), "1");
        fs.write("enabled", "0").unwrap();
        assert_eq!(fs.read("enabled").unwrap(), "0");
        assert!(m.power_cap().is_none());
    }

    #[test]
    fn energy_counter_advances_in_microjoules() {
        let mut m = Machine::new(MachineConfig::tiny(4));
        m.compute(5_000_000);
        let before: u64 = PowercapFs::new(&mut m).read("energy_uj").unwrap().parse().unwrap();
        m.compute(5_000_000);
        // Force a tick so the window is accounted.
        let _ = m.finish_run();
        let after: u64 = PowercapFs::new(&mut m).read("energy_uj").unwrap().parse().unwrap();
        assert!(after > before, "{after} vs {before}");
    }

    #[test]
    fn invalid_writes_are_rejected() {
        let mut m = Machine::new(MachineConfig::tiny(5));
        let mut fs = PowercapFs::new(&mut m);
        assert!(matches!(
            fs.write("constraint_0_power_limit_uw", "bogus"),
            Err(PowercapError::Inval(_))
        ));
        assert!(matches!(
            fs.write("constraint_0_power_limit_uw", "999000000000"),
            Err(PowercapError::Inval(_))
        ));
        assert!(matches!(fs.write("energy_uj", "0"), Err(PowercapError::ReadOnly(_))));
        assert!(matches!(
            fs.write("enabled", "1"),
            Err(PowercapError::Inval(_)) // no limit set yet
        ));
    }
}
