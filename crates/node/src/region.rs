//! Virtual-address regions and code blocks.
//!
//! Workloads allocate [`Region`]s for their data (a bump allocator in the
//! machine hands out page-aligned virtual ranges) and [`CodeBlock`]s for
//! their hot loops. A code block is the unit of instruction-fetch
//! modelling: executing it touches its I-cache lines and charges its
//! instruction count.

use capsim_mem::{VAddr, PAGE_SIZE};

/// A page-aligned virtual data range.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Region {
    base: VAddr,
    bytes: u64,
}

impl Region {
    pub(crate) fn new(base: VAddr, bytes: u64) -> Self {
        debug_assert_eq!(base.0 % PAGE_SIZE, 0);
        Region { base, bytes }
    }

    pub fn base(&self) -> VAddr {
        self.base
    }

    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Address of byte `offset` within the region (bounds-checked in
    /// debug builds).
    #[inline]
    pub fn at(&self, offset: u64) -> VAddr {
        debug_assert!(offset < self.bytes, "offset {offset} out of region ({})", self.bytes);
        self.base.add(offset)
    }

    /// Address of element `i` of an array of `elem_bytes`-sized items.
    #[inline]
    pub fn elem(&self, i: u64, elem_bytes: u64) -> VAddr {
        self.at(i * elem_bytes)
    }
}

/// A straight-line code sequence with a fixed footprint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CodeBlock {
    pub(crate) addr: VAddr,
    pub(crate) bytes: u64,
    pub(crate) instrs: u64,
}

impl CodeBlock {
    pub(crate) fn new(addr: VAddr, bytes: u64, instrs: u64) -> Self {
        debug_assert!(bytes >= 1 && instrs >= 1);
        CodeBlock { addr, bytes, instrs }
    }

    pub fn addr(&self) -> VAddr {
        self.addr
    }

    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Committed instructions per execution of the block.
    pub fn instrs(&self) -> u64 {
        self.instrs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_addressing() {
        let r = Region::new(VAddr(PAGE_SIZE * 4), PAGE_SIZE);
        assert_eq!(r.elem(3, 8), VAddr(PAGE_SIZE * 4 + 24));
        assert_eq!(r.at(0), r.base());
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn out_of_bounds_offset_panics_in_debug() {
        let r = Region::new(VAddr(0), 64);
        r.at(64);
    }
}
