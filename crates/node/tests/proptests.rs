//! Property-based tests for the node: ladder ordering, BMC control-loop
//! safety, and machine accounting invariants.

use proptest::prelude::*;

use capsim_cpu::PStateTable;
use capsim_mem::MemReconfig;
use capsim_node::bmc::{Bmc, BmcTelemetry};
use capsim_node::{Machine, MachineConfig, PowerCap, ThrottleLadder};

fn tele(w: f64) -> BmcTelemetry {
    BmcTelemetry { window_avg_w: w, run_avg_w: w, min_w: w, max_w: w, ..Default::default() }
}

proptest! {
    // Machine-level properties spin up full simulations; bound the case
    // count so debug-mode runs stay fast.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Whatever power readings arrive, the BMC's rung index stays within
    /// the ladder and moves by at most one per control tick.
    #[test]
    fn bmc_rung_moves_are_bounded(
        cap in 100.0f64..170.0,
        readings in proptest::collection::vec(95.0f64..175.0, 1..300),
    ) {
        let ladder = ThrottleLadder::e5_2680(&PStateTable::e5_2680(), MemReconfig::full());
        let deepest = ladder.deepest();
        let mut bmc = Bmc::new(ladder);
        bmc.set_cap(Some(PowerCap::new(cap).unwrap()));
        let mut prev = bmc.rung_index();
        for (i, &r) in readings.iter().enumerate() {
            // Fresh timestamps: a frozen clock would (correctly) trip the
            // stale-telemetry failsafe, which jumps straight to its floor.
            let mut t = tele(r);
            t.now_ms = (i + 1) as f64;
            bmc.control(t);
            let now = bmc.rung_index();
            prop_assert!(now <= deepest);
            prop_assert!((now as i64 - prev as i64).abs() <= 1, "one rung per tick");
            prev = now;
        }
    }

    /// Clearing the cap always returns the BMC to rung 0 regardless of
    /// history.
    #[test]
    fn clearing_cap_always_resets(readings in proptest::collection::vec(95.0f64..175.0, 1..100)) {
        let ladder = ThrottleLadder::e5_2680(&PStateTable::e5_2680(), MemReconfig::full());
        let mut bmc = Bmc::new(ladder);
        bmc.set_cap(Some(PowerCap::new(110.0).unwrap()));
        for &r in &readings {
            bmc.control(tele(r));
        }
        bmc.set_cap(None);
        prop_assert_eq!(bmc.rung_index(), 0);
    }

    /// Machine accounting: committed ≤ executed, loads+stores ≤ committed,
    /// time strictly increases with work, energy = avg power × time.
    #[test]
    fn machine_accounting_invariants(
        ops in proptest::collection::vec(0u8..4, 1..200),
        seed in 1u64..1000,
    ) {
        let mut m = Machine::new(MachineConfig::tiny(seed));
        let r = m.alloc(1 << 16);
        let block = m.code_block(64, 8);
        let mut t_prev = 0.0;
        for (i, &op) in ops.iter().enumerate() {
            match op {
                0 => m.compute(5),
                1 => m.load(r.at((i as u64 * 64) % (1 << 16))),
                2 => m.store(r.at((i as u64 * 64) % (1 << 16))),
                _ => m.branch(&block, i % 3 == 0),
            }
            prop_assert!(m.now_s() > t_prev);
            t_prev = m.now_s();
        }
        let s = m.finish_run();
        prop_assert!(s.counters.instructions_executed >= s.counters.instructions_committed);
        prop_assert!(s.counters.loads + s.counters.stores <= s.counters.instructions_committed);
        prop_assert!(s.counters.branch_mispredicts <= s.counters.branches);
        prop_assert!((s.energy_j - s.avg_power_w * s.wall_s).abs() <= s.energy_j * 1e-6 + 1e-12);
        prop_assert!(s.min_power_w <= s.avg_power_w + 1e-9);
        prop_assert!(s.avg_power_w <= s.max_power_w + 1e-9);
    }

    /// Capped runs never report an average frequency above nominal, and
    /// tighter caps never yield faster runs (same work, same seed).
    #[test]
    fn tighter_caps_never_run_faster(cap_hi in 140.0f64..160.0, delta in 5.0f64..30.0) {
        let cap_lo = cap_hi - delta;
        let run = |cap: f64| {
            let mut cfg = MachineConfig::e5_2680(3);
            cfg.control_period_us = 10.0;
            cfg.meter_window_s = 0.0002;
            let mut m = Machine::new(cfg);
            m.set_power_cap(Some(PowerCap::new(cap).unwrap()));
            let r = m.alloc(1 << 20);
            let block = m.code_block(96, 24);
            for i in 0..120_000u64 {
                m.exec_block(&block);
                m.load(r.at((i * 64) % (1 << 20)));
            }
            m.finish_run()
        };
        let hi = run(cap_hi);
        let lo = run(cap_lo);
        prop_assert!(hi.avg_freq_mhz <= 2700.5);
        prop_assert!(lo.wall_s >= hi.wall_s * 0.98, "lo {} vs hi {}", lo.wall_s, hi.wall_s);
    }
}
