//! Simulated-time structured event log: a bounded ring of typed events with
//! deterministic JSONL and CSV exporters.
//!
//! Events carry *simulated* seconds, never wall-clock, so an export is a
//! pure function of (seed, workload) — the fleet determinism tests assert
//! byte-identical JSONL across serial and parallel runs.

use std::collections::VecDeque;
use std::fmt::Write as _;

/// Why the BMC moved between throttle rungs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RungCause {
    /// Window average exceeded the cap: escalate.
    OverCap,
    /// Window average fell under cap minus hysteresis: relax.
    UnderCap,
    /// The cap was deactivated; the ladder resets to rung 0.
    CapCleared,
    /// Guardrail failsafe pinned the rung at its floor.
    Failsafe,
    /// BMC firmware rebooted; volatile control state (the rung) reset.
    Reboot,
    /// A non-default capping policy jumped straight to a rung (multi-rung
    /// governor/RL moves; the ladder walk never emits this).
    Policy,
}

impl RungCause {
    fn as_str(self) -> &'static str {
        match self {
            RungCause::OverCap => "over_cap",
            RungCause::UnderCap => "under_cap",
            RungCause::CapCleared => "cap_cleared",
            RungCause::Failsafe => "failsafe",
            RungCause::Reboot => "reboot",
            RungCause::Policy => "policy",
        }
    }
}

/// One typed occurrence inside the simulation.
#[derive(Clone, Debug, PartialEq)]
pub enum EventKind {
    /// BMC moved between throttle rungs.
    RungChange { from: u32, to: u32, cause: RungCause, window_w: f64 },
    /// BMC ran out of rungs while still over cap (logged once per episode).
    ThrottleFloor { window_w: f64 },
    /// A SEL entry was appended on the node.
    SelAppend { event: &'static str, datum: u16 },
    /// DCMI Set Power Limit accepted.
    DcmiSetLimit { limit_w: u16, correction_ms: u32 },
    /// DCMI Get Power Limit served.
    DcmiGetLimit,
    /// DCMI Activate/Deactivate Power Limit.
    DcmiActivate { on: bool },
    /// A transaction needed more than one attempt and then succeeded.
    Retry { attempts: u32 },
    /// A transaction exhausted its retry budget.
    Timeout { attempts: u32 },
    /// A managed node changed health state.
    HealthChange { from: &'static str, to: &'static str },
    /// DCM re-planned the group budget across answering nodes.
    BudgetRealloc { epoch: u32, budget_w: f64, answered: u32, caps_pushed: u32 },
    /// End-of-epoch fleet barrier summary.
    Barrier { epoch: u32, answered: u32, unresponsive: u32, fleet_w: f64 },
    /// A typed in-node fault was injected (chaos harness).
    FaultInjected { fault: &'static str },
    /// A previously injected fault was cleared.
    FaultCleared { fault: &'static str },
    /// BMC firmware crashed; it stays dead for `dead_ms`.
    BmcCrash { dead_ms: f64 },
    /// The watchdog restarted crashed BMC firmware after `down_ms` dead.
    WatchdogReboot { down_ms: f64 },
    /// Guardrail failsafe engaged: untrusted telemetry pinned the rung floor.
    FailsafeEngaged { reason: &'static str, window_w: f64 },
    /// Guardrail failsafe released after sustained plausible telemetry.
    FailsafeReleased,
    /// Cap-violation detector: sustained power above an active cap.
    CapViolation { cap_w: f64, window_w: f64 },
    /// Cap-violation episode ended (sustained readings back under cap).
    CapViolationEnded { cap_w: f64 },
    /// A pluggable `CapPolicy` planned the group budget at a barrier
    /// (recorded only when a non-default policy backend is installed).
    PolicyPlan { policy: &'static str, epoch: u32, answered: u32, granted_w: f64 },
    /// Cross-node failover at a fleet barrier: requests shed at full
    /// queues were re-offered to the least-loaded nodes in the group.
    FailoverRouted { epoch: u32, moved: u32, dropped: u32 },
    /// A client population's AIMD controller moved its offered-rate
    /// multiplier: `timeouts` cut it multiplicatively, `recovery` raised
    /// it additively after a timeout-free control period.
    RateAdjusted { multiplier: f64, cause: &'static str },
    /// A per-node circuit breaker at the fleet barrier changed state
    /// (`closed` / `open` / `half_open`).
    BreakerTransition { epoch: u32, from: &'static str, to: &'static str },
    /// A node's brownout controller moved the highest admitted priority
    /// class (`shed` under pressure, `restore` with hysteresis).
    BrownoutShift { from_class: u32, to_class: u32, cause: &'static str },
}

impl EventKind {
    /// Stable machine-readable tag.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::RungChange { .. } => "rung_change",
            EventKind::ThrottleFloor { .. } => "throttle_floor",
            EventKind::SelAppend { .. } => "sel_append",
            EventKind::DcmiSetLimit { .. } => "dcmi_set_limit",
            EventKind::DcmiGetLimit => "dcmi_get_limit",
            EventKind::DcmiActivate { .. } => "dcmi_activate",
            EventKind::Retry { .. } => "retry",
            EventKind::Timeout { .. } => "timeout",
            EventKind::HealthChange { .. } => "health_change",
            EventKind::BudgetRealloc { .. } => "budget_realloc",
            EventKind::Barrier { .. } => "barrier",
            EventKind::FaultInjected { .. } => "fault_injected",
            EventKind::FaultCleared { .. } => "fault_cleared",
            EventKind::BmcCrash { .. } => "bmc_crash",
            EventKind::WatchdogReboot { .. } => "watchdog_reboot",
            EventKind::FailsafeEngaged { .. } => "failsafe_engaged",
            EventKind::FailsafeReleased => "failsafe_released",
            EventKind::CapViolation { .. } => "cap_violation",
            EventKind::CapViolationEnded { .. } => "cap_violation_ended",
            EventKind::PolicyPlan { .. } => "policy_plan",
            EventKind::FailoverRouted { .. } => "failover_routed",
            EventKind::RateAdjusted { .. } => "rate_adjusted",
            EventKind::BreakerTransition { .. } => "breaker_transition",
            EventKind::BrownoutShift { .. } => "brownout_shift",
        }
    }

    /// `key=value` detail string, `;`-separated, stable field order.
    pub fn detail(&self) -> String {
        match self {
            EventKind::RungChange { from, to, cause, window_w } => {
                format!("from={from};to={to};cause={};window_w={window_w}", cause.as_str())
            }
            EventKind::ThrottleFloor { window_w } => format!("window_w={window_w}"),
            EventKind::SelAppend { event, datum } => format!("event={event};datum={datum}"),
            EventKind::DcmiSetLimit { limit_w, correction_ms } => {
                format!("limit_w={limit_w};correction_ms={correction_ms}")
            }
            EventKind::DcmiGetLimit => String::new(),
            EventKind::DcmiActivate { on } => format!("on={on}"),
            EventKind::Retry { attempts } => format!("attempts={attempts}"),
            EventKind::Timeout { attempts } => format!("attempts={attempts}"),
            EventKind::HealthChange { from, to } => format!("from={from};to={to}"),
            EventKind::BudgetRealloc { epoch, budget_w, answered, caps_pushed } => format!(
                "epoch={epoch};budget_w={budget_w};answered={answered};caps_pushed={caps_pushed}"
            ),
            EventKind::Barrier { epoch, answered, unresponsive, fleet_w } => format!(
                "epoch={epoch};answered={answered};unresponsive={unresponsive};fleet_w={fleet_w}"
            ),
            EventKind::FaultInjected { fault } => format!("fault={fault}"),
            EventKind::FaultCleared { fault } => format!("fault={fault}"),
            EventKind::BmcCrash { dead_ms } => format!("dead_ms={dead_ms}"),
            EventKind::WatchdogReboot { down_ms } => format!("down_ms={down_ms}"),
            EventKind::FailsafeEngaged { reason, window_w } => {
                format!("reason={reason};window_w={window_w}")
            }
            EventKind::FailsafeReleased => String::new(),
            EventKind::CapViolation { cap_w, window_w } => {
                format!("cap_w={cap_w};window_w={window_w}")
            }
            EventKind::CapViolationEnded { cap_w } => format!("cap_w={cap_w}"),
            EventKind::PolicyPlan { policy, epoch, answered, granted_w } => {
                format!("policy={policy};epoch={epoch};answered={answered};granted_w={granted_w}")
            }
            EventKind::FailoverRouted { epoch, moved, dropped } => {
                format!("epoch={epoch};moved={moved};dropped={dropped}")
            }
            EventKind::RateAdjusted { multiplier, cause } => {
                format!("multiplier={multiplier};cause={cause}")
            }
            EventKind::BreakerTransition { epoch, from, to } => {
                format!("epoch={epoch};from={from};to={to}")
            }
            EventKind::BrownoutShift { from_class, to_class, cause } => {
                format!("from_class={from_class};to_class={to_class};cause={cause}")
            }
        }
    }

    fn json_fields(&self, out: &mut String) {
        match self {
            EventKind::RungChange { from, to, cause, window_w } => {
                let _ = write!(
                    out,
                    r#","from":{from},"to":{to},"cause":"{}","window_w":{window_w}"#,
                    cause.as_str()
                );
            }
            EventKind::ThrottleFloor { window_w } => {
                let _ = write!(out, r#","window_w":{window_w}"#);
            }
            EventKind::SelAppend { event, datum } => {
                let _ = write!(out, r#","event":"{event}","datum":{datum}"#);
            }
            EventKind::DcmiSetLimit { limit_w, correction_ms } => {
                let _ = write!(out, r#","limit_w":{limit_w},"correction_ms":{correction_ms}"#);
            }
            EventKind::DcmiGetLimit => {}
            EventKind::DcmiActivate { on } => {
                let _ = write!(out, r#","on":{on}"#);
            }
            EventKind::Retry { attempts } | EventKind::Timeout { attempts } => {
                let _ = write!(out, r#","attempts":{attempts}"#);
            }
            EventKind::HealthChange { from, to } => {
                let _ = write!(out, r#","from":"{from}","to":"{to}""#);
            }
            EventKind::BudgetRealloc { epoch, budget_w, answered, caps_pushed } => {
                let _ = write!(
                    out,
                    r#","epoch":{epoch},"budget_w":{budget_w},"answered":{answered},"caps_pushed":{caps_pushed}"#
                );
            }
            EventKind::Barrier { epoch, answered, unresponsive, fleet_w } => {
                let _ = write!(
                    out,
                    r#","epoch":{epoch},"answered":{answered},"unresponsive":{unresponsive},"fleet_w":{fleet_w}"#
                );
            }
            EventKind::FaultInjected { fault } | EventKind::FaultCleared { fault } => {
                let _ = write!(out, r#","fault":"{fault}""#);
            }
            EventKind::BmcCrash { dead_ms } => {
                let _ = write!(out, r#","dead_ms":{dead_ms}"#);
            }
            EventKind::WatchdogReboot { down_ms } => {
                let _ = write!(out, r#","down_ms":{down_ms}"#);
            }
            EventKind::FailsafeEngaged { reason, window_w } => {
                let _ = write!(out, r#","reason":"{reason}","window_w":{window_w}"#);
            }
            EventKind::FailsafeReleased => {}
            EventKind::CapViolation { cap_w, window_w } => {
                let _ = write!(out, r#","cap_w":{cap_w},"window_w":{window_w}"#);
            }
            EventKind::CapViolationEnded { cap_w } => {
                let _ = write!(out, r#","cap_w":{cap_w}"#);
            }
            EventKind::PolicyPlan { policy, epoch, answered, granted_w } => {
                let _ = write!(
                    out,
                    r#","policy":"{policy}","epoch":{epoch},"answered":{answered},"granted_w":{granted_w}"#
                );
            }
            EventKind::FailoverRouted { epoch, moved, dropped } => {
                let _ = write!(out, r#","epoch":{epoch},"moved":{moved},"dropped":{dropped}"#);
            }
            EventKind::RateAdjusted { multiplier, cause } => {
                let _ = write!(out, r#","multiplier":{multiplier},"cause":"{cause}""#);
            }
            EventKind::BreakerTransition { epoch, from, to } => {
                let _ = write!(out, r#","epoch":{epoch},"from":"{from}","to":"{to}""#);
            }
            EventKind::BrownoutShift { from_class, to_class, cause } => {
                let _ = write!(
                    out,
                    r#","from_class":{from_class},"to_class":{to_class},"cause":"{cause}""#
                );
            }
        }
    }
}

/// One log entry: what happened, when (simulated seconds), and where.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Per-log sequence number (monotonic even across ring eviction).
    pub seq: u64,
    /// Simulated time in seconds.
    pub t_s: f64,
    /// Fleet node index, when known; `None` for manager/fleet-scope events.
    pub node: Option<u32>,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// One JSONL line (no trailing newline), stable key order.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        let _ = write!(out, r#"{{"seq":{},"t_s":{}"#, self.seq, self.t_s);
        match self.node {
            Some(n) => {
                let _ = write!(out, r#","node":{n}"#);
            }
            None => out.push_str(r#","node":null"#),
        }
        let _ = write!(out, r#","kind":"{}""#, self.kind.name());
        self.kind.json_fields(&mut out);
        out.push('}');
        out
    }

    fn to_csv_row(&self) -> String {
        let node = self.node.map_or(String::new(), |n| n.to_string());
        format!("{},{},{},{},{}", self.seq, self.t_s, node, self.kind.name(), self.kind.detail())
    }
}

/// Bounded ring of [`Event`]s. Capacity 0 means disabled: `record` is a
/// single branch and nothing is ever stored or allocated.
#[derive(Clone, Debug, PartialEq)]
pub struct EventLog {
    ring: VecDeque<Event>,
    capacity: usize,
    next_seq: u64,
    dropped: u64,
}

impl EventLog {
    /// An active log holding at most `capacity` events (oldest evicted).
    pub fn bounded(capacity: usize) -> Self {
        EventLog { ring: VecDeque::with_capacity(capacity), capacity, next_seq: 0, dropped: 0 }
    }

    /// A log that records nothing.
    pub fn disabled() -> Self {
        EventLog { ring: VecDeque::new(), capacity: 0, next_seq: 0, dropped: 0 }
    }

    /// Whether [`EventLog::record`] stores anything.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Append a fleet/manager-scope event (no node attribution).
    #[inline]
    pub fn record(&mut self, t_s: f64, kind: EventKind) {
        self.record_for(t_s, None, kind);
    }

    /// Append an event attributed to a fleet node index.
    #[inline]
    pub fn record_for(&mut self, t_s: f64, node: Option<u32>, kind: EventKind) {
        if self.capacity == 0 {
            return;
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.ring.push_back(Event { seq, t_s, node, kind });
    }

    /// Events currently retained, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.ring.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Events evicted by the ring bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events ever recorded (retained + dropped).
    pub fn recorded(&self) -> u64 {
        self.next_seq
    }

    /// JSONL export of the retained events.
    pub fn to_jsonl(&self) -> String {
        events_to_jsonl(self.ring.iter())
    }

    /// CSV export of the retained events.
    pub fn to_csv(&self) -> String {
        events_to_csv(self.ring.iter())
    }
}

/// Render events as JSON Lines: one object per line, stable key order.
pub fn events_to_jsonl<'a>(events: impl IntoIterator<Item = &'a Event>) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&e.to_json());
        out.push('\n');
    }
    out
}

/// Render events as CSV with a header row.
pub fn events_to_csv<'a>(events: impl IntoIterator<Item = &'a Event>) -> String {
    let mut out = String::from("seq,t_s,node,kind,detail\n");
    for e in events {
        out.push_str(&e.to_csv_row());
        out.push('\n');
    }
    out
}

/// Merge several logs into one deterministic stream.
///
/// Each input is `(node_tag, log)`; a `Some` tag overrides the node field of
/// every event from that log (per-node logs don't know their fleet index).
/// Order is total and independent of how the logs were produced: by
/// simulated time, then input position, then per-log sequence — so a serial
/// and a parallel fleet run over the same seed merge to byte-identical
/// output.
pub fn merge_streams<'a>(
    streams: impl IntoIterator<Item = (Option<u32>, &'a EventLog)>,
) -> Vec<Event> {
    let mut tagged: Vec<(usize, Event)> = Vec::new();
    for (pos, (tag, log)) in streams.into_iter().enumerate() {
        for e in log.iter() {
            let mut e = e.clone();
            if tag.is_some() {
                e.node = tag;
            }
            tagged.push((pos, e));
        }
    }
    tagged.sort_by(|(pa, a), (pb, b)| {
        a.t_s.total_cmp(&b.t_s).then(pa.cmp(pb)).then(a.seq.cmp(&b.seq))
    });
    tagged.into_iter().map(|(_, e)| e).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = EventLog::disabled();
        log.record(0.0, EventKind::DcmiGetLimit);
        assert!(!log.is_enabled());
        assert!(log.is_empty());
        assert_eq!(log.recorded(), 0);
        assert_eq!(log.to_jsonl(), "");
    }

    #[test]
    fn ring_bound_evicts_oldest_and_counts_drops() {
        let mut log = EventLog::bounded(3);
        for i in 0..5u32 {
            log.record(i as f64, EventKind::Retry { attempts: i });
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 2);
        assert_eq!(log.recorded(), 5);
        let seqs: Vec<u64> = log.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
    }

    #[test]
    fn jsonl_lines_are_stable_and_self_describing() {
        let mut log = EventLog::bounded(8);
        log.record_for(
            0.25,
            Some(3),
            EventKind::RungChange { from: 0, to: 1, cause: RungCause::OverCap, window_w: 151.5 },
        );
        log.record(
            0.5,
            EventKind::Barrier { epoch: 0, answered: 7, unresponsive: 1, fleet_w: 900.0 },
        );
        let jsonl = log.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(
            lines[0],
            r#"{"seq":0,"t_s":0.25,"node":3,"kind":"rung_change","from":0,"to":1,"cause":"over_cap","window_w":151.5}"#
        );
        assert_eq!(
            lines[1],
            r#"{"seq":1,"t_s":0.5,"node":null,"kind":"barrier","epoch":0,"answered":7,"unresponsive":1,"fleet_w":900}"#
        );
    }

    #[test]
    fn csv_has_header_and_detail_column() {
        let mut log = EventLog::bounded(4);
        log.record(1.0, EventKind::Timeout { attempts: 6 });
        let csv = log.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "seq,t_s,node,kind,detail");
        assert_eq!(lines[1], "0,1,,timeout,attempts=6");
    }

    #[test]
    fn merge_orders_by_time_then_stream_then_seq() {
        let mut a = EventLog::bounded(8);
        let mut b = EventLog::bounded(8);
        a.record(2.0, EventKind::DcmiGetLimit);
        a.record(1.0, EventKind::DcmiGetLimit); // same-stream later seq, earlier time
        b.record(1.0, EventKind::Retry { attempts: 2 });
        let merged = merge_streams([(Some(0), &a), (Some(1), &b)]);
        // time 1.0 first; within it, stream 0 before stream 1.
        assert_eq!(merged[0].node, Some(0));
        assert_eq!(merged[0].seq, 1);
        assert_eq!(merged[1].node, Some(1));
        assert_eq!(merged[2].t_s, 2.0);
    }
}
