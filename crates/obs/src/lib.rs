//! # capsim-obs — observability substrate for the capsim workspace
//!
//! Two primitives, bundled per observed component:
//!
//! - [`Metrics`]: counters / gauges / fixed-bucket histograms keyed by
//!   `&'static str`, snapshotable ([`MetricsSnapshot`]) and diffable.
//! - [`EventLog`]: a bounded ring of typed, simulated-time [`Event`]s with
//!   deterministic JSONL/CSV exporters and a total-order merge
//!   ([`merge_streams`]) for fleet runs.
//!
//! Both are **near-zero cost when disabled**: every record path starts with
//! one branch and allocates nothing. Instrumentation sites throughout the
//! workspace fire at control-tick or transaction granularity — never inside
//! the per-load hot path — so enabling observability costs well under the
//! 5% budget measured by the `telemetry` bench bin (`BENCH_obs.json`).

pub mod events;
pub mod metrics;

pub use events::{
    events_to_csv, events_to_jsonl, merge_streams, Event, EventKind, EventLog, RungCause,
};
pub use metrics::{Histogram, HistogramSnapshot, LogBuckets, Metrics, MetricsSnapshot};

/// Metrics + events for one observed component (a BMC, a DCM, a fleet).
#[derive(Clone, Debug, PartialEq)]
pub struct Obs {
    /// Counter/gauge/histogram registry.
    pub metrics: Metrics,
    /// Typed event ring.
    pub events: EventLog,
}

impl Obs {
    /// Active observability with an event ring of `event_capacity`.
    pub fn enabled(event_capacity: usize) -> Self {
        Obs { metrics: Metrics::enabled(), events: EventLog::bounded(event_capacity) }
    }

    /// The default: record nothing, cost one branch per site.
    pub fn disabled() -> Self {
        Obs { metrics: Metrics::disabled(), events: EventLog::disabled() }
    }

    /// Whether this component is recording.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.metrics.is_enabled()
    }
}

impl Default for Obs {
    fn default() -> Self {
        Obs::disabled()
    }
}
