//! A tiny metrics registry: monotonic counters, gauges, and fixed-bucket
//! histograms, keyed by `&'static str` names.
//!
//! Design constraints (see DESIGN.md §Observability):
//!
//! - **Near-zero cost when disabled.** Every mutator starts with a branch on
//!   `enabled`; a disabled registry never allocates and never touches the
//!   series vectors.
//! - **No allocation per event.** Series are found by linear scan over a
//!   short `Vec` of `(&'static str, _)` pairs; an allocation happens only
//!   the first time a new name is seen. Instrumentation sites fire at most
//!   once per control tick / transaction, never per load, so the scan is
//!   cheap relative to what it measures.
//! - **Deterministic snapshots.** [`Metrics::snapshot`] sorts series by
//!   name, so rendered output is independent of registration order.

/// Fixed-bucket histogram. `bounds` are inclusive upper bucket edges in
/// ascending order; an implicit overflow bucket catches everything above
/// the last edge.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    bounds: &'static [f64],
    counts: Vec<u64>,
    count: u64,
    sum: f64,
}

impl Histogram {
    fn new(bounds: &'static [f64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bucket edges must ascend");
        Histogram { bounds, counts: vec![0; bounds.len() + 1], count: 0, sum: 0.0 }
    }

    fn observe(&mut self, value: f64) {
        let idx = self.bounds.iter().position(|&b| value <= b).unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += value;
    }
}

/// An immutable copy of one histogram, decoupled from the `'static` bounds.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Inclusive upper bucket edges; the overflow bucket is implicit.
    pub bounds: Vec<f64>,
    /// Per-bucket counts; `bounds.len() + 1` entries (last = overflow).
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Mean of observed values, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// The live, mutable registry. One per observed component.
#[derive(Clone, Debug, PartialEq)]
pub struct Metrics {
    enabled: bool,
    counters: Vec<(&'static str, u64)>,
    gauges: Vec<(&'static str, f64)>,
    hists: Vec<(&'static str, Histogram)>,
}

impl Metrics {
    /// An active registry.
    pub fn enabled() -> Self {
        Metrics { enabled: true, counters: Vec::new(), gauges: Vec::new(), hists: Vec::new() }
    }

    /// A registry whose mutators are all no-ops (one branch each).
    pub fn disabled() -> Self {
        Metrics { enabled: false, counters: Vec::new(), gauges: Vec::new(), hists: Vec::new() }
    }

    /// Whether mutators record anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Increment a monotonic counter by 1.
    #[inline]
    pub fn inc(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Increment a monotonic counter by `n`.
    #[inline]
    pub fn add(&mut self, name: &'static str, n: u64) {
        if !self.enabled {
            return;
        }
        match self.counters.iter_mut().find(|(k, _)| *k == name) {
            Some((_, v)) => *v += n,
            None => self.counters.push((name, n)),
        }
    }

    /// Set a gauge to an instantaneous value.
    #[inline]
    pub fn set_gauge(&mut self, name: &'static str, value: f64) {
        if !self.enabled {
            return;
        }
        match self.gauges.iter_mut().find(|(k, _)| *k == name) {
            Some((_, v)) => *v = value,
            None => self.gauges.push((name, value)),
        }
    }

    /// Record `value` into the fixed-bucket histogram `name`. The first call
    /// for a name fixes its bucket edges; later calls must pass the same
    /// edges (checked in debug builds).
    #[inline]
    pub fn observe(&mut self, name: &'static str, bounds: &'static [f64], value: f64) {
        if !self.enabled {
            return;
        }
        match self.hists.iter_mut().find(|(k, _)| *k == name) {
            Some((_, h)) => {
                debug_assert_eq!(h.bounds, bounds, "histogram {name} re-registered with new edges");
                h.observe(value);
            }
            None => {
                let mut h = Histogram::new(bounds);
                h.observe(value);
                self.hists.push((name, h));
            }
        }
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(k, _)| *k == name).map_or(0, |(_, v)| *v)
    }

    /// Current value of a gauge, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(k, _)| *k == name).map(|(_, v)| *v)
    }

    /// An immutable, name-sorted copy of every series.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters = self.counters.clone();
        let mut gauges = self.gauges.clone();
        let mut hists: Vec<(&'static str, HistogramSnapshot)> = self
            .hists
            .iter()
            .map(|(k, h)| {
                (
                    *k,
                    HistogramSnapshot {
                        bounds: h.bounds.to_vec(),
                        counts: h.counts.clone(),
                        count: h.count,
                        sum: h.sum,
                    },
                )
            })
            .collect();
        counters.sort_by_key(|(k, _)| *k);
        gauges.sort_by_key(|(k, _)| *k);
        hists.sort_by_key(|(k, _)| *k);
        MetricsSnapshot { counters, gauges, hists }
    }
}

/// A point-in-time copy of a [`Metrics`] registry, sorted by name.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` pairs, ascending by name.
    pub counters: Vec<(&'static str, u64)>,
    /// `(name, value)` pairs, ascending by name.
    pub gauges: Vec<(&'static str, f64)>,
    /// `(name, histogram)` pairs, ascending by name.
    pub hists: Vec<(&'static str, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Counter value (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(k, _)| *k == name).map_or(0, |(_, v)| *v)
    }

    /// Gauge value, if present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(k, _)| *k == name).map(|(_, v)| *v)
    }

    /// Histogram, if present.
    pub fn hist(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.hists.iter().find(|(k, _)| *k == name).map(|(_, h)| h)
    }

    /// The change since `earlier`: counters and histogram counts subtract
    /// (saturating, so a fresh series diffs to itself); gauges keep the
    /// later value.
    pub fn diff(&self, earlier: &Self) -> Self {
        let counters =
            self.counters.iter().map(|&(k, v)| (k, v.saturating_sub(earlier.counter(k)))).collect();
        let hists = self
            .hists
            .iter()
            .map(|(k, h)| {
                let mut h = h.clone();
                if let Some(e) = earlier.hist(k) {
                    if e.bounds == h.bounds {
                        for (c, ec) in h.counts.iter_mut().zip(&e.counts) {
                            *c = c.saturating_sub(*ec);
                        }
                        h.count = h.count.saturating_sub(e.count);
                        h.sum -= e.sum;
                    }
                }
                (*k, h)
            })
            .collect();
        MetricsSnapshot { counters, gauges: self.gauges.clone(), hists }
    }

    /// Fold another snapshot in: counters and histogram buckets add
    /// (histograms only when the edges match), gauges keep the larger
    /// value (so e.g. a fleet-wide "max unresponsive" survives the merge).
    pub fn absorb(&mut self, other: &Self) {
        for &(k, v) in &other.counters {
            match self.counters.iter_mut().find(|(n, _)| *n == k) {
                Some((_, mine)) => *mine += v,
                None => self.counters.push((k, v)),
            }
        }
        for &(k, v) in &other.gauges {
            match self.gauges.iter_mut().find(|(n, _)| *n == k) {
                Some((_, mine)) => *mine = mine.max(v),
                None => self.gauges.push((k, v)),
            }
        }
        for (k, h) in &other.hists {
            match self.hists.iter_mut().find(|(n, _)| n == k) {
                Some((_, mine)) if mine.bounds == h.bounds => {
                    for (c, oc) in mine.counts.iter_mut().zip(&h.counts) {
                        *c += oc;
                    }
                    mine.count += h.count;
                    mine.sum += h.sum;
                }
                Some(_) => {}
                None => self.hists.push((*k, h.clone())),
            }
        }
        self.counters.sort_by_key(|(k, _)| *k);
        self.gauges.sort_by_key(|(k, _)| *k);
        self.hists.sort_by_key(|(k, _)| *k);
    }

    /// Stable plain-text rendering, one series per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            out.push_str(&format!("counter {k} {v}\n"));
        }
        for (k, v) in &self.gauges {
            out.push_str(&format!("gauge {k} {v}\n"));
        }
        for (k, h) in &self.hists {
            out.push_str(&format!(
                "hist {k} count={} sum={:.6} mean={:.6}\n",
                h.count,
                h.sum,
                h.mean()
            ));
            for (i, c) in h.counts.iter().enumerate() {
                if *c == 0 {
                    continue;
                }
                match h.bounds.get(i) {
                    Some(b) => out.push_str(&format!("  le {b} : {c}\n")),
                    None => out.push_str(&format!("  le +inf : {c}\n")),
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static EDGES: [f64; 3] = [1.0, 2.0, 4.0];

    #[test]
    fn disabled_registry_records_nothing() {
        let mut m = Metrics::disabled();
        m.inc("a");
        m.add("a", 10);
        m.set_gauge("g", 3.0);
        m.observe("h", &EDGES, 1.5);
        assert!(!m.is_enabled());
        assert_eq!(m.counter("a"), 0);
        assert_eq!(m.gauge("g"), None);
        let s = m.snapshot();
        assert!(s.counters.is_empty() && s.gauges.is_empty() && s.hists.is_empty());
    }

    #[test]
    fn counters_gauges_and_histograms_accumulate() {
        let mut m = Metrics::enabled();
        m.inc("ticks");
        m.add("ticks", 4);
        m.set_gauge("rung", 2.0);
        m.set_gauge("rung", 3.0);
        for v in [0.5, 1.5, 3.0, 9.0] {
            m.observe("w", &EDGES, v);
        }
        assert_eq!(m.counter("ticks"), 5);
        assert_eq!(m.gauge("rung"), Some(3.0));
        let s = m.snapshot();
        let h = s.hist("w").expect("histogram exists");
        assert_eq!(h.counts, vec![1, 1, 1, 1]);
        assert_eq!(h.count, 4);
        assert!((h.mean() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn snapshots_sort_by_name_and_diff_subtracts() {
        let mut m = Metrics::enabled();
        m.inc("z");
        m.inc("a");
        let before = m.snapshot();
        assert_eq!(before.counters, vec![("a", 1), ("z", 1)]);
        m.add("z", 9);
        m.observe("h", &EDGES, 0.5);
        let d = m.snapshot().diff(&before);
        assert_eq!(d.counter("z"), 9);
        assert_eq!(d.counter("a"), 0);
        assert_eq!(d.hist("h").expect("new series survives diff").count, 1);
    }

    #[test]
    fn absorb_sums_counters_and_buckets() {
        let mut a = Metrics::enabled();
        let mut b = Metrics::enabled();
        a.add("n", 2);
        b.add("n", 3);
        b.inc("only_b");
        a.observe("h", &EDGES, 0.5);
        b.observe("h", &EDGES, 3.0);
        a.set_gauge("g", 1.0);
        b.set_gauge("g", 4.0);
        let mut s = a.snapshot();
        s.absorb(&b.snapshot());
        assert_eq!(s.counter("n"), 5);
        assert_eq!(s.counter("only_b"), 1);
        assert_eq!(s.gauge("g"), Some(4.0));
        let h = s.hist("h").expect("merged");
        assert_eq!(h.count, 2);
        assert_eq!(h.counts, vec![1, 0, 1, 0]);
    }
}
