//! The out-of-band management "LAN": an in-memory channel pair standing in
//! for the BMC's dedicated NIC, plus a deterministic fault model for it.
//!
//! [`LanChannel::pair`] creates a [`ManagerPort`] (DCM side) and a
//! [`BmcPort`] (node side). Frames cross as raw bytes — everything is
//! encoded/decoded through [`crate::message`], so a protocol bug shows up
//! as a checksum or parse failure exactly as it would on a real wire.
//!
//! [`LanChannel::faulty_pair`] adds a seeded [`FaultInjector`] on each
//! direction of the manager side: frames can be dropped, corrupted (the
//! receiver sees a checksum failure), delayed by a few delivery polls, or
//! — on the response path — replaced by a `NodeBusy` completion. Every
//! decision comes from the injector's own RNG, so a given `(spec, seed)`
//! reproduces the exact same fault schedule.
//!
//! Managers issue commands through the [`Transact`] trait: send one
//! request, get the matching response (sequence number, NetFn *and*
//! command must all match, so stale or wrapped-sequence responses from
//! earlier, timed-out requests are rejected rather than mistaken for the
//! answer). [`transact_retry`] layers bounded retry-with-backoff on top,
//! re-issuing with a fresh sequence number on transient failures.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};

use crate::message::{CompletionCode, IpmiError, Request, Response};

/// Fault rates for one direction of a management link. All probabilities
/// are per frame, drawn independently in this order: drop, corrupt, busy
/// (response direction only), delay.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultSpec {
    /// Probability a frame vanishes in transit.
    pub drop_prob: f64,
    /// Probability one byte of the frame is flipped (caught by the IPMI
    /// checksum at the receiver).
    pub corrupt_prob: f64,
    /// Probability a response is replaced by a `NodeBusy` completion
    /// (the BMC's firmware deferred the command). Ignored on the request
    /// direction.
    pub busy_prob: f64,
    /// Probability a frame is held back for 1..=`max_delay` delivery
    /// polls before arriving (frames may reorder).
    pub delay_prob: f64,
    /// Maximum delay in delivery polls.
    pub max_delay: u8,
    /// Honesty bound: after this many consecutive faulted frames the next
    /// frame is delivered clean (0 disables the bound). Guarantees that a
    /// retrying manager eventually gets through.
    pub max_consecutive_faults: u8,
}

impl FaultSpec {
    /// A clean link (all fault paths off).
    pub fn none() -> Self {
        FaultSpec {
            drop_prob: 0.0,
            corrupt_prob: 0.0,
            busy_prob: 0.0,
            delay_prob: 0.0,
            max_delay: 0,
            max_consecutive_faults: 0,
        }
    }

    /// A lossy-but-live link: `p` drop + `p` corrupt + `p/2` busy + `p`
    /// delay (≤3 polls), with eventual delivery guaranteed after 4
    /// consecutive faults.
    pub fn lossy(p: f64) -> Self {
        assert!((0.0..0.5).contains(&p), "lossy fault rate out of range: {p}");
        FaultSpec {
            drop_prob: p,
            corrupt_prob: p,
            busy_prob: p / 2.0,
            delay_prob: p,
            max_delay: 3,
            max_consecutive_faults: 4,
        }
    }

    /// A black hole: everything sent into it disappears (a dead BMC).
    pub fn dead() -> Self {
        FaultSpec { drop_prob: 1.0, ..FaultSpec::none() }
    }

    /// True when every fault path is off.
    pub fn is_clean(&self) -> bool {
        self.drop_prob == 0.0
            && self.corrupt_prob == 0.0
            && self.busy_prob == 0.0
            && self.delay_prob == 0.0
    }
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec::none()
    }
}

/// Which way frames flow through an injector (busy rewriting only makes
/// sense for responses).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultDirection {
    Request,
    Response,
}

/// Cumulative injector statistics (diagnostics; deterministic for a given
/// seed and call sequence).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    pub delivered: u64,
    pub dropped: u64,
    pub corrupted: u64,
    pub busied: u64,
    pub delayed: u64,
}

/// Deterministic, seeded fault layer for one direction of a link.
#[derive(Debug)]
pub struct FaultInjector {
    spec: FaultSpec,
    dir: FaultDirection,
    rng: u64,
    consecutive: u8,
    /// Frames waiting out a delay: (remaining polls, frame).
    delayed: VecDeque<(u8, Bytes)>,
    /// Frames ready for delivery, in order.
    ready: VecDeque<Bytes>,
    stats: FaultStats,
}

/// Mix a seed with a salt through the splitmix64 finalizer.
///
/// This is the one seed-derivation scheme used across the workspace —
/// `Fleet` derives per-node seeds from it, and [`LanChannel::faulty_pair`]
/// derives per-direction link seeds from it — so adjacent raw seeds never
/// produce correlated child streams.
pub fn splitmix64(seed: u64, salt: u64) -> u64 {
    let mut z = seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultInjector {
    pub fn new(spec: FaultSpec, dir: FaultDirection, seed: u64) -> Self {
        // Scramble the seed (splitmix64 finalizer) so adjacent seeds give
        // unrelated schedules, and keep the xorshift state nonzero.
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        FaultInjector {
            spec,
            dir,
            rng: z | 1,
            consecutive: 0,
            delayed: VecDeque::new(),
            ready: VecDeque::new(),
            stats: FaultStats::default(),
        }
    }

    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn forced_clean(&mut self) -> bool {
        self.spec.max_consecutive_faults > 0 && self.consecutive >= self.spec.max_consecutive_faults
    }

    /// Feed one frame into the injector; it lands in the ready queue, the
    /// delay queue, or nowhere (dropped).
    pub fn admit(&mut self, frame: Bytes) {
        if self.spec.is_clean() || self.forced_clean() {
            self.consecutive = 0;
            self.stats.delivered += 1;
            self.ready.push_back(frame);
            return;
        }
        if self.next_f64() < self.spec.drop_prob {
            self.consecutive += 1;
            self.stats.dropped += 1;
            return;
        }
        if self.next_f64() < self.spec.corrupt_prob {
            self.consecutive += 1;
            self.stats.corrupted += 1;
            let mut bytes = frame.to_vec();
            let idx = (self.next_u64() as usize) % bytes.len().max(1);
            bytes[idx] ^= 1 << (self.next_u64() % 8);
            self.ready.push_back(Bytes::from(bytes));
            return;
        }
        if self.dir == FaultDirection::Response && self.next_f64() < self.spec.busy_prob {
            self.consecutive += 1;
            self.stats.busied += 1;
            // Replace the payload with a NodeBusy completion for the same
            // (netfn, cmd, seq) — what firmware that shed the command
            // would answer. An unparseable frame is passed through as-is.
            if let Ok(resp) = Response::decode(&frame) {
                let busy = Response {
                    completion: CompletionCode::NodeBusy,
                    payload: Bytes::new(),
                    ..resp
                };
                self.ready.push_back(busy.encode());
            } else {
                self.ready.push_back(frame);
            }
            return;
        }
        if self.spec.delay_prob > 0.0 && self.next_f64() < self.spec.delay_prob {
            self.consecutive += 1;
            self.stats.delayed += 1;
            let polls = 1 + (self.next_u64() % self.spec.max_delay.max(1) as u64) as u8;
            self.delayed.push_back((polls, frame));
            return;
        }
        self.consecutive = 0;
        self.stats.delivered += 1;
        self.ready.push_back(frame);
    }

    /// One delivery poll: age the delay queue, then pop the next ready
    /// frame if any.
    pub fn poll_ready(&mut self) -> Option<Bytes> {
        let mut still_delayed = VecDeque::with_capacity(self.delayed.len());
        while let Some((polls, frame)) = self.delayed.pop_front() {
            if polls <= 1 {
                self.ready.push_back(frame);
            } else {
                still_delayed.push_back((polls - 1, frame));
            }
        }
        self.delayed = still_delayed;
        self.ready.pop_front()
    }

    /// True when no frame is in flight inside the injector.
    pub fn is_idle(&self) -> bool {
        self.delayed.is_empty() && self.ready.is_empty()
    }
}

/// One request/response exchange with a managed node: send `req`, return
/// the response whose sequence number, NetFn and command all match.
///
/// Implementations differ in how the peer gets CPU time: a plain
/// [`ManagerPort`] waits for a BMC serviced on another thread, while a
/// lock-step engine pumps the node's BMC between delivery polls.
pub trait Transact {
    /// Allocate the next request sequence number (wrapping).
    fn next_seq(&mut self) -> u8;

    /// Send `req` and wait (within the link's budget) for the matching
    /// response. Non-matching responses — stale answers to earlier,
    /// retried or timed-out requests — are discarded, never returned.
    fn transact(&mut self, req: &Request) -> Result<Response, IpmiError>;

    /// Scale the link's wait budget (retry backoff hook). `1` restores
    /// the default.
    fn set_patience(&mut self, factor: u32) {
        let _ = factor;
    }
}

/// Bounded retry for [`Transact::transact`]: each attempt re-issues the
/// command with a **fresh sequence number** (so a late response to an
/// earlier attempt can never be mistaken for the current one) and an
/// exponentially growing wait budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts before giving up.
    pub attempts: u32,
    /// Cap on the patience multiplier (2^attempt, saturated here).
    pub max_patience: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { attempts: 6, max_patience: 16 }
    }
}

impl RetryPolicy {
    /// A single attempt, no retry.
    pub fn once() -> Self {
        RetryPolicy { attempts: 1, max_patience: 1 }
    }
}

/// Issue a command built by `build(seq)` under `retry`, returning the
/// first non-busy matching response. Transient failures (dropped,
/// corrupted, timed-out frames, busy completions) are retried; anything
/// else aborts immediately.
pub fn transact_retry(
    link: &mut dyn Transact,
    retry: &RetryPolicy,
    build: &dyn Fn(u8) -> Request,
) -> Result<Response, IpmiError> {
    transact_retry_counted(link, retry, build).0
}

/// The terminal result of one retried transaction plus how many attempts
/// it took — everything a deferred observer needs to reconstruct the
/// retry/timeout story after the fact. Sharded lock-step managers capture
/// one of these per wire command on worker threads, then replay them into
/// the root manager's observability sink in canonical node order (see
/// `capsim_dcm`), keeping the recorded stream independent of how the
/// fleet was partitioned.
#[derive(Debug)]
pub struct WireOutcome {
    /// What the transaction finally returned.
    pub result: Result<Response, IpmiError>,
    /// Attempts spent (≥ 1).
    pub attempts: u32,
}

impl WireOutcome {
    /// Run one retried transaction and capture its outcome.
    pub fn capture(
        link: &mut dyn Transact,
        retry: &RetryPolicy,
        build: &dyn Fn(u8) -> Request,
    ) -> WireOutcome {
        let (result, attempts) = transact_retry_counted(link, retry, build);
        WireOutcome { result, attempts }
    }
}

/// [`transact_retry`], additionally reporting how many attempts were spent
/// (≥1). The observability layer turns `attempts − 1` into retry counters
/// and timeout events; callers that don't care use [`transact_retry`].
pub fn transact_retry_counted(
    link: &mut dyn Transact,
    retry: &RetryPolicy,
    build: &dyn Fn(u8) -> Request,
) -> (Result<Response, IpmiError>, u32) {
    let mut last = IpmiError::TimedOut;
    let attempts = retry.attempts.max(1);
    for attempt in 0..attempts {
        link.set_patience((1u32 << attempt.min(8)).min(retry.max_patience.max(1)));
        let req = build(link.next_seq());
        match link.transact(&req) {
            Ok(resp) if resp.completion == CompletionCode::NodeBusy => {
                last = IpmiError::Completion(CompletionCode::NodeBusy);
            }
            Ok(resp) => {
                link.set_patience(1);
                return (Ok(resp), attempt + 1);
            }
            Err(e) if e.is_transient() => last = e,
            Err(e) => {
                link.set_patience(1);
                return (Err(e), attempt + 1);
            }
        }
    }
    link.set_patience(1);
    (Err(last), attempts)
}

/// [`transact_retry`] with the transaction's retry/timeout story recorded
/// into an observability sink: `ipmi.transactions` / `ipmi.attempts` /
/// `ipmi.retries` / `ipmi.timeouts` counters, plus a `Retry` event when a
/// command needed more than one attempt and a `Timeout` event when the
/// budget ran out. `t_s` is the caller's simulated time (the transport has
/// no clock of its own). A disabled `obs` reduces this to plain
/// [`transact_retry`] plus one branch.
pub fn transact_retry_observed(
    link: &mut dyn Transact,
    retry: &RetryPolicy,
    build: &dyn Fn(u8) -> Request,
    obs: &mut capsim_obs::Obs,
    t_s: f64,
    node: Option<u32>,
) -> Result<Response, IpmiError> {
    let (result, attempts) = transact_retry_counted(link, retry, build);
    if obs.is_enabled() {
        obs.metrics.inc("ipmi.transactions");
        obs.metrics.add("ipmi.attempts", attempts as u64);
        if attempts > 1 {
            obs.metrics.add("ipmi.retries", (attempts - 1) as u64);
        }
        match &result {
            Ok(_) if attempts > 1 => {
                obs.events.record_for(t_s, node, capsim_obs::EventKind::Retry { attempts });
            }
            Err(e) if e.is_transient() => {
                obs.metrics.inc("ipmi.timeouts");
                obs.events.record_for(t_s, node, capsim_obs::EventKind::Timeout { attempts });
            }
            _ => {}
        }
    }
    result
}

/// Constructor namespace for the channel pair.
pub struct LanChannel;

impl LanChannel {
    /// Create a connected manager/BMC port pair over a clean link.
    pub fn pair() -> (ManagerPort, BmcPort) {
        Self::build(None)
    }

    /// Create a pair whose manager side injects faults in both
    /// directions, deterministically from `seed`.
    pub fn faulty_pair(spec: FaultSpec, seed: u64) -> (ManagerPort, BmcPort) {
        // Derive the two direction seeds through splitmix64 rather than a
        // plain XOR: XOR'd constants keep adjacent raw seeds adjacent, so
        // links seeded n and n+1 would see correlated fault schedules.
        let faults = LinkFaults {
            req: FaultInjector::new(spec, FaultDirection::Request, splitmix64(seed, 0x72_6571)),
            resp: FaultInjector::new(spec, FaultDirection::Response, splitmix64(seed, 0x72_6573)),
        };
        Self::build(Some(faults))
    }

    fn build(faults: Option<LinkFaults>) -> (ManagerPort, BmcPort) {
        let (req_tx, req_rx) = unbounded::<Bytes>();
        let (resp_tx, resp_rx) = unbounded::<Bytes>();
        (
            ManagerPort {
                tx: req_tx,
                rx: resp_rx,
                next_seq: 0,
                timeout: Duration::from_secs(2),
                patience: 1,
                faults,
            },
            BmcPort { rx: req_rx, tx: resp_tx },
        )
    }
}

/// Both directions of a faulty link, owned by the manager side (where the
/// delivery polls happen).
#[derive(Debug)]
pub struct LinkFaults {
    pub req: FaultInjector,
    pub resp: FaultInjector,
}

/// The manager (DCM) end: sends requests, receives responses.
pub struct ManagerPort {
    tx: Sender<Bytes>,
    rx: Receiver<Bytes>,
    next_seq: u8,
    /// Base wait for a blocking transaction (scaled by `patience`).
    timeout: Duration,
    patience: u32,
    faults: Option<LinkFaults>,
}

impl ManagerPort {
    /// Allocate the next sequence number (wrapping).
    pub fn next_seq(&mut self) -> u8 {
        let s = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        s
    }

    /// Base blocking-transaction timeout (scaled by retry patience).
    pub fn set_timeout(&mut self, timeout: Duration) {
        self.timeout = timeout;
    }

    /// Fault statistics for a faulty link (`None` on a clean pair).
    pub fn fault_stats(&self) -> Option<(FaultStats, FaultStats)> {
        self.faults.as_ref().map(|f| (f.req.stats(), f.resp.stats()))
    }

    /// Flush request-direction frames that have finished their delay onto
    /// the wire.
    fn pump_requests(&mut self) -> Result<(), IpmiError> {
        if let Some(lf) = &mut self.faults {
            while let Some(frame) = lf.req.poll_ready() {
                self.tx.send(frame).map_err(|_| IpmiError::ChannelClosed)?;
            }
        }
        Ok(())
    }

    /// Send a request frame (through the fault layer, if any).
    pub fn send(&mut self, req: &Request) -> Result<(), IpmiError> {
        let frame = req.encode();
        match &mut self.faults {
            None => self.tx.send(frame).map_err(|_| IpmiError::ChannelClosed),
            Some(lf) => {
                lf.req.admit(frame);
                self.pump_requests()
            }
        }
    }

    /// Non-blocking poll for a response frame: one delivery poll of the
    /// fault layer plus a drain of the wire. `Ok(None)` when nothing has
    /// arrived. A frame that fails to decode on a faulty link reports
    /// [`IpmiError::Corrupt`].
    pub fn try_recv(&mut self) -> Result<Option<Response>, IpmiError> {
        self.pump_requests()?;
        match &mut self.faults {
            None => match self.rx.try_recv() {
                Ok(bytes) => Response::decode(&bytes).map(Some),
                Err(TryRecvError::Empty) => Ok(None),
                Err(TryRecvError::Disconnected) => Err(IpmiError::ChannelClosed),
            },
            Some(lf) => {
                let mut disconnected = false;
                loop {
                    match self.rx.try_recv() {
                        Ok(bytes) => lf.resp.admit(bytes),
                        Err(TryRecvError::Empty) => break,
                        Err(TryRecvError::Disconnected) => {
                            disconnected = true;
                            break;
                        }
                    }
                }
                match lf.resp.poll_ready() {
                    Some(bytes) => match Response::decode(&bytes) {
                        Ok(resp) => Ok(Some(resp)),
                        Err(_) => Err(IpmiError::Corrupt),
                    },
                    None if disconnected && lf.resp.is_idle() => Err(IpmiError::ChannelClosed),
                    None => Ok(None),
                }
            }
        }
    }

    /// Blocking receive of the next response frame, bounded by the link
    /// timeout.
    pub fn recv(&mut self) -> Result<Response, IpmiError> {
        let deadline = Instant::now() + self.budget();
        self.recv_until(deadline)
    }

    fn budget(&self) -> Duration {
        self.timeout * self.patience.max(1)
    }

    fn recv_until(&mut self, deadline: Instant) -> Result<Response, IpmiError> {
        loop {
            match self.try_recv()? {
                Some(resp) => return Ok(resp),
                None => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(IpmiError::TimedOut);
                    }
                    // Wait on the wire in short slices so delayed frames
                    // inside the fault layer keep aging.
                    let slice = (deadline - now).min(Duration::from_millis(1));
                    match self.rx.recv_timeout(slice) {
                        Ok(bytes) => match &mut self.faults {
                            None => return Response::decode(&bytes),
                            Some(lf) => lf.resp.admit(bytes),
                        },
                        Err(RecvTimeoutError::Timeout) => {}
                        Err(RecvTimeoutError::Disconnected) => {
                            let idle = self.faults.as_ref().is_none_or(|lf| lf.resp.is_idle());
                            if idle {
                                return Err(IpmiError::ChannelClosed);
                            }
                        }
                    }
                }
            }
        }
    }
}

impl Transact for ManagerPort {
    fn next_seq(&mut self) -> u8 {
        ManagerPort::next_seq(self)
    }

    /// Send `req` and wait for the matching response. Sequence number,
    /// NetFn and command must all match — a delayed response to an
    /// earlier request (even one whose 8-bit sequence number has wrapped
    /// around to the same value but belongs to a different command) is
    /// discarded, not returned.
    fn transact(&mut self, req: &Request) -> Result<Response, IpmiError> {
        self.send(req)?;
        let deadline = Instant::now() + self.budget();
        loop {
            let resp = self.recv_until(deadline)?;
            if resp.seq == req.seq && resp.cmd == req.cmd && resp.netfn == req.netfn {
                return Ok(resp);
            }
        }
    }

    fn set_patience(&mut self, factor: u32) {
        self.patience = factor.max(1);
    }
}

/// The BMC end: receives requests, sends responses.
pub struct BmcPort {
    rx: Receiver<Bytes>,
    tx: Sender<Bytes>,
}

impl BmcPort {
    /// Non-blocking poll for a pending request. `Ok(None)` when idle. A
    /// frame that fails to decode (e.g. corrupted in transit) returns its
    /// decode error; service loops should discard it and poll again, as
    /// real firmware does.
    pub fn poll(&self) -> Result<Option<Request>, IpmiError> {
        match self.rx.try_recv() {
            Ok(bytes) => Request::decode(&bytes).map(Some),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(IpmiError::ChannelClosed),
        }
    }

    /// Blocking receive (used by threaded BMC loops).
    pub fn recv(&self) -> Result<Request, IpmiError> {
        let bytes = self.rx.recv().map_err(|_| IpmiError::ChannelClosed)?;
        Request::decode(&bytes)
    }

    /// Send a response frame.
    pub fn send(&self, resp: &Response) -> Result<(), IpmiError> {
        self.tx.send(resp.encode()).map_err(|_| IpmiError::ChannelClosed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{CompletionCode, NetFn};

    #[test]
    fn request_crosses_the_wire_intact() {
        let (mut mgr, bmc) = LanChannel::pair();
        let req = Request::new(NetFn::GroupExt, 0x02, 5, vec![0xdc, 0x01]);
        mgr.send(&req).unwrap();
        let got = bmc.poll().unwrap().unwrap();
        assert_eq!(got, req);
        assert!(bmc.poll().unwrap().is_none(), "queue drained");
    }

    #[test]
    fn transact_matches_sequence_numbers() {
        let (mut mgr, bmc) = LanChannel::pair();
        let seq = mgr.next_seq();
        let req = Request::new(NetFn::App, 0x01, seq, Bytes::new());
        // Service on another thread.
        let t = std::thread::spawn(move || {
            let r = bmc.recv().unwrap();
            // A stale response for a different seq first…
            let mut stale = Response::ok(&r, Bytes::new());
            stale.seq = r.seq.wrapping_add(100);
            bmc.send(&stale).unwrap();
            bmc.send(&Response::ok(&r, vec![0x99])).unwrap();
        });
        let resp = mgr.transact(&req).unwrap();
        t.join().unwrap();
        assert_eq!(resp.seq, seq);
        assert_eq!(&resp.payload[..], &[0x99]);
    }

    #[test]
    fn transact_rejects_wrapped_seq_for_a_different_command() {
        // The u8 sequence space wraps: a delayed response to an *earlier,
        // different* command can carry the same seq as the current
        // request. Matching on (seq, netfn, cmd) rejects it.
        let (mut mgr, bmc) = LanChannel::pair();
        let seq = mgr.next_seq();
        let req = Request::new(NetFn::GroupExt, 0x02, seq, Bytes::new());
        let t = std::thread::spawn(move || {
            let r = bmc.recv().unwrap();
            // Stale answer from a previous epoch: same seq, other command.
            let stale = Response {
                netfn: NetFn::App,
                cmd: 0x77,
                seq: r.seq,
                completion: CompletionCode::Ok,
                payload: Bytes::from(vec![0xde, 0xad]),
            };
            bmc.send(&stale).unwrap();
            bmc.send(&Response::ok(&r, vec![0x01])).unwrap();
        });
        let resp = mgr.transact(&req).unwrap();
        t.join().unwrap();
        assert_eq!(resp.cmd, 0x02);
        assert_eq!(&resp.payload[..], &[0x01]);
    }

    #[test]
    fn transact_times_out_instead_of_hanging() {
        let (mut mgr, _bmc) = LanChannel::pair();
        mgr.set_timeout(Duration::from_millis(5));
        let seq = mgr.next_seq();
        let req = Request::new(NetFn::App, 0x01, seq, Bytes::new());
        assert_eq!(mgr.transact(&req), Err(IpmiError::TimedOut));
    }

    #[test]
    fn closed_channel_reports_error() {
        let (mut mgr, bmc) = LanChannel::pair();
        drop(bmc);
        let req = Request::new(NetFn::App, 0x01, 0, Bytes::new());
        assert_eq!(mgr.send(&req), Err(IpmiError::ChannelClosed));
    }

    #[test]
    fn sequence_numbers_wrap() {
        let (mut mgr, _bmc) = LanChannel::pair();
        mgr.next_seq = 255;
        assert_eq!(mgr.next_seq(), 255);
        assert_eq!(mgr.next_seq(), 0);
    }

    #[test]
    fn error_completion_propagates() {
        let (mut mgr, bmc) = LanChannel::pair();
        let req = Request::new(NetFn::App, 0x42, mgr.next_seq(), Bytes::new());
        mgr.send(&req).unwrap();
        let r = bmc.recv().unwrap();
        bmc.send(&Response::err(&r, CompletionCode::InvalidCommand)).unwrap();
        let resp = mgr.recv().unwrap();
        assert_eq!(
            resp.into_ok().unwrap_err(),
            IpmiError::Completion(CompletionCode::InvalidCommand)
        );
    }

    // ------------------------------------------------------ fault layer

    /// Echo every request as an OK response on the current thread.
    fn echo_pending(bmc: &BmcPort) {
        loop {
            match bmc.poll() {
                Ok(Some(req)) => bmc.send(&Response::ok(&req, vec![req.cmd])).unwrap(),
                Ok(None) => break,
                Err(IpmiError::ChannelClosed) => break,
                Err(_) => continue, // corrupted request: discard
            }
        }
    }

    #[test]
    fn fault_schedule_is_deterministic_for_a_seed() {
        let run = |seed: u64| {
            let mut inj = FaultInjector::new(FaultSpec::lossy(0.3), FaultDirection::Request, seed);
            for i in 0..200u8 {
                inj.admit(Request::new(NetFn::App, 0x01, i, Bytes::new()).encode());
                let _ = inj.poll_ready();
            }
            inj.stats()
        };
        assert_eq!(run(42), run(42), "same seed, same schedule");
        assert_ne!(run(42), run(43), "different seed, different schedule");
    }

    #[test]
    fn dead_link_drops_everything() {
        let (mut mgr, bmc) = LanChannel::faulty_pair(FaultSpec::dead(), 7);
        mgr.set_timeout(Duration::from_millis(2));
        let req = Request::new(NetFn::App, 0x01, mgr.next_seq(), Bytes::new());
        mgr.send(&req).unwrap();
        assert!(bmc.poll().unwrap().is_none(), "frame never reached the BMC");
        assert_eq!(Transact::transact(&mut mgr, &req), Err(IpmiError::TimedOut));
        let (req_stats, _) = mgr.fault_stats().unwrap();
        assert!(req_stats.dropped >= 2);
        assert_eq!(req_stats.delivered, 0);
    }

    #[test]
    fn corruption_surfaces_as_checksum_failures_not_bad_data() {
        // Corrupt every response; the manager must report Corrupt, never
        // hand back a frame that decoded into garbage.
        let spec = FaultSpec { corrupt_prob: 1.0, ..FaultSpec::none() };
        let (mut mgr, bmc) = LanChannel::faulty_pair(spec, 11);
        mgr.set_timeout(Duration::from_millis(20));
        let req = Request::new(NetFn::App, 0x01, mgr.next_seq(), Bytes::new());
        // Answer directly (the request direction corrupts too, so the
        // echo helper would never see a parseable request).
        bmc.send(&Response::ok(&req, vec![0x07])).unwrap();
        let got = mgr.recv();
        assert_eq!(got, Err(IpmiError::Corrupt));
    }

    #[test]
    fn busy_injection_returns_node_busy_completions() {
        let spec = FaultSpec { busy_prob: 1.0, ..FaultSpec::none() };
        let (mut mgr, bmc) = LanChannel::faulty_pair(spec, 3);
        let req = Request::new(NetFn::App, 0x01, mgr.next_seq(), Bytes::new());
        mgr.send(&req).unwrap();
        echo_pending(&bmc);
        let resp = mgr.recv().unwrap();
        assert_eq!(resp.completion, CompletionCode::NodeBusy);
        assert_eq!(resp.seq, req.seq);
    }

    #[test]
    fn delayed_frames_arrive_after_enough_polls() {
        let spec = FaultSpec {
            delay_prob: 1.0,
            max_delay: 3,
            max_consecutive_faults: 0,
            ..FaultSpec::none()
        };
        let (mut mgr, bmc) = LanChannel::faulty_pair(spec, 5);
        let req = Request::new(NetFn::App, 0x01, mgr.next_seq(), Bytes::new());
        mgr.send(&req).unwrap();
        // The request is stuck in the delay queue; pump it through by
        // polling, then let the BMC answer (response is delayed too).
        let mut answered = false;
        for _ in 0..16 {
            echo_pending(&bmc);
            if let Some(resp) = mgr.try_recv().unwrap() {
                assert_eq!(resp.seq, req.seq);
                answered = true;
                break;
            }
        }
        assert!(answered, "delayed frames eventually delivered");
    }

    #[test]
    fn forced_clean_bounds_consecutive_faults() {
        let spec = FaultSpec { drop_prob: 1.0, max_consecutive_faults: 3, ..FaultSpec::none() };
        let mut inj = FaultInjector::new(spec, FaultDirection::Request, 9);
        let mut delivered = 0;
        for i in 0..40u8 {
            inj.admit(Request::new(NetFn::App, 0x01, i, Bytes::new()).encode());
            if inj.poll_ready().is_some() {
                delivered += 1;
            }
        }
        assert_eq!(delivered, 10, "every 4th frame forced through");
    }

    #[test]
    fn retry_converges_on_a_lossy_link() {
        // Drops and busy completions with a forced-clean bound: retry
        // must converge within the bound regardless of thread timing.
        // (Delay/corrupt schedules interact with wall-clock timeouts and
        // are covered deterministically by the lock-step fleet tests.)
        let spec = FaultSpec {
            drop_prob: 0.4,
            busy_prob: 0.3,
            max_consecutive_faults: 3,
            ..FaultSpec::none()
        };
        let (mut mgr, bmc) = LanChannel::faulty_pair(spec, 21);
        mgr.set_timeout(Duration::from_millis(10));
        // Service the BMC from a thread for the duration of the retry.
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop2 = stop.clone();
        let t = std::thread::spawn(move || {
            while !stop2.load(std::sync::atomic::Ordering::Relaxed) {
                echo_pending(&bmc);
                std::thread::yield_now();
            }
        });
        let retry = RetryPolicy { attempts: 16, max_patience: 16 };
        let resp = transact_retry(&mut mgr, &retry, &|seq| {
            Request::new(NetFn::App, 0x42, seq, Bytes::new())
        });
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        t.join().unwrap();
        let resp = resp.expect("bounded faults, so retry must converge");
        assert_eq!(resp.cmd, 0x42);
        assert_eq!(resp.completion, CompletionCode::Ok);
    }
}
