//! The out-of-band management "LAN": an in-memory channel pair standing in
//! for the BMC's dedicated NIC.
//!
//! [`LanChannel::pair`] creates a [`ManagerPort`] (DCM side) and a
//! [`BmcPort`] (node side). Frames cross as raw bytes — everything is
//! encoded/decoded through [`crate::message`], so a protocol bug shows up
//! as a checksum or parse failure exactly as it would on a real wire.

use bytes::Bytes;
use crossbeam_channel::{unbounded, Receiver, Sender, TryRecvError};

use crate::message::{IpmiError, Request, Response};

/// Constructor namespace for the channel pair.
pub struct LanChannel;

impl LanChannel {
    /// Create a connected manager/BMC port pair.
    pub fn pair() -> (ManagerPort, BmcPort) {
        let (req_tx, req_rx) = unbounded::<Bytes>();
        let (resp_tx, resp_rx) = unbounded::<Bytes>();
        (ManagerPort { tx: req_tx, rx: resp_rx, next_seq: 0 }, BmcPort { rx: req_rx, tx: resp_tx })
    }
}

/// The manager (DCM) end: sends requests, receives responses.
pub struct ManagerPort {
    tx: Sender<Bytes>,
    rx: Receiver<Bytes>,
    next_seq: u8,
}

impl ManagerPort {
    /// Allocate the next sequence number (wrapping).
    pub fn next_seq(&mut self) -> u8 {
        let s = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        s
    }

    /// Send a request frame.
    pub fn send(&self, req: &Request) -> Result<(), IpmiError> {
        self.tx.send(req.encode()).map_err(|_| IpmiError::ChannelClosed)
    }

    /// Blocking receive of the next response frame.
    pub fn recv(&self) -> Result<Response, IpmiError> {
        let bytes = self.rx.recv().map_err(|_| IpmiError::ChannelClosed)?;
        Response::decode(&bytes)
    }

    /// Send `req` and wait for the matching response (by sequence number;
    /// out-of-order responses for other sequences are discarded, as a
    /// single-outstanding-request manager would).
    pub fn transact(&self, req: &Request) -> Result<Response, IpmiError> {
        self.send(req)?;
        loop {
            let resp = self.recv()?;
            if resp.seq == req.seq {
                return Ok(resp);
            }
        }
    }
}

/// The BMC end: receives requests, sends responses.
pub struct BmcPort {
    rx: Receiver<Bytes>,
    tx: Sender<Bytes>,
}

impl BmcPort {
    /// Non-blocking poll for a pending request. `Ok(None)` when idle.
    pub fn poll(&self) -> Result<Option<Request>, IpmiError> {
        match self.rx.try_recv() {
            Ok(bytes) => Request::decode(&bytes).map(Some),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(IpmiError::ChannelClosed),
        }
    }

    /// Blocking receive (used by threaded BMC loops).
    pub fn recv(&self) -> Result<Request, IpmiError> {
        let bytes = self.rx.recv().map_err(|_| IpmiError::ChannelClosed)?;
        Request::decode(&bytes)
    }

    /// Send a response frame.
    pub fn send(&self, resp: &Response) -> Result<(), IpmiError> {
        self.tx.send(resp.encode()).map_err(|_| IpmiError::ChannelClosed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{CompletionCode, NetFn};

    #[test]
    fn request_crosses_the_wire_intact() {
        let (mgr, bmc) = LanChannel::pair();
        let req = Request::new(NetFn::GroupExt, 0x02, 5, vec![0xdc, 0x01]);
        mgr.send(&req).unwrap();
        let got = bmc.poll().unwrap().unwrap();
        assert_eq!(got, req);
        assert!(bmc.poll().unwrap().is_none(), "queue drained");
    }

    #[test]
    fn transact_matches_sequence_numbers() {
        let (mut mgr, bmc) = LanChannel::pair();
        let seq = mgr.next_seq();
        let req = Request::new(NetFn::App, 0x01, seq, Bytes::new());
        // Service on another thread.
        let t = std::thread::spawn(move || {
            let r = bmc.recv().unwrap();
            // A stale response for a different seq first…
            let mut stale = Response::ok(&r, Bytes::new());
            stale.seq = r.seq.wrapping_add(100);
            bmc.send(&stale).unwrap();
            bmc.send(&Response::ok(&r, vec![0x99])).unwrap();
        });
        let resp = mgr.transact(&req).unwrap();
        t.join().unwrap();
        assert_eq!(resp.seq, seq);
        assert_eq!(&resp.payload[..], &[0x99]);
    }

    #[test]
    fn closed_channel_reports_error() {
        let (mgr, bmc) = LanChannel::pair();
        drop(bmc);
        let req = Request::new(NetFn::App, 0x01, 0, Bytes::new());
        assert_eq!(mgr.send(&req), Err(IpmiError::ChannelClosed));
    }

    #[test]
    fn sequence_numbers_wrap() {
        let (mut mgr, _bmc) = LanChannel::pair();
        mgr.next_seq = 255;
        assert_eq!(mgr.next_seq(), 255);
        assert_eq!(mgr.next_seq(), 0);
    }

    #[test]
    fn error_completion_propagates() {
        let (mut mgr, bmc) = LanChannel::pair();
        let req = Request::new(NetFn::App, 0x42, mgr.next_seq(), Bytes::new());
        mgr.send(&req).unwrap();
        let r = bmc.recv().unwrap();
        bmc.send(&Response::err(&r, CompletionCode::InvalidCommand)).unwrap();
        let resp = mgr.recv().unwrap();
        assert_eq!(
            resp.into_ok().unwrap_err(),
            IpmiError::Completion(CompletionCode::InvalidCommand)
        );
    }
}
