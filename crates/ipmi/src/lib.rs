//! `capsim-ipmi` — the out-of-band management wire protocol.
//!
//! §II-A of the paper: "the Platform Controller Hub has management engine
//! firmware that, using the industry standard Intelligent Platform
//! Management Interface (IPMI), controls the platform's power and thermal
//! capabilities via the DCM. In turn, the DCM connects to the platform's
//! Baseboard Management Controllers (BMC) … Because a BMC is connected to
//! its own NIC, this is accomplished out-of-band, i.e., without going
//! through the operating system."
//!
//! This crate implements the slice of IPMI the study needs, faithfully
//! enough to be recognisable against the DCMI 1.5 specification:
//!
//! * request/response framing with NetFn, command, sequence number and
//!   completion codes ([`message`]),
//! * the DCMI power-management command group — *Get Power Reading*,
//!   *Get/Set Power Limit*, *Activate/Deactivate Power Limit* ([`dcmi`]),
//! * basic sensor reads (inlet temperature, node power) ([`sensor`]),
//! * and an in-memory "dedicated NIC" transport over crossbeam channels
//!   ([`transport`]) so managers and BMCs can live on different threads.
//!
//! The simulated OS and workloads never see any of this — capping really
//! is out-of-band, exactly as on the paper's platform.

pub mod app_cmds;
pub mod dcmi;
pub mod message;
pub mod sel;
pub mod sensor;
pub mod transport;

pub use app_cmds::{DcmiCapabilities, DeviceId};
pub use dcmi::{
    ActivatePowerLimit, ExceptionAction, GetPowerLimit, GetPowerReading, PowerLimit, PowerReading,
    SetPowerLimit, DCMI_GROUP_EXT,
};
pub use message::{CompletionCode, IpmiError, NetFn, Request, Response};
pub use sel::{SelEntry, SelEventType, SystemEventLog, SEL_CAPACITY};
pub use sensor::{SensorId, SensorRead, SensorValue};
pub use transport::{
    splitmix64, transact_retry, transact_retry_counted, transact_retry_observed, BmcPort,
    FaultDirection, FaultInjector, FaultSpec, FaultStats, LanChannel, ManagerPort, RetryPolicy,
    Transact, WireOutcome,
};
