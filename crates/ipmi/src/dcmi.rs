//! DCMI power-management commands.
//!
//! DCMI rides on NetFn 0x2C (Group Extension) with group-extension ID
//! 0xDC as the first payload byte. The four commands here are the ones
//! Intel DCM uses to monitor and cap a node:
//!
//! | cmd  | name                      |
//! |------|---------------------------|
//! | 0x02 | Get Power Reading         |
//! | 0x03 | Get Power Limit           |
//! | 0x04 | Set Power Limit           |
//! | 0x05 | Activate/Deactivate Limit |
//!
//! Each struct encodes to the payload of a [`Request`] and decodes from a
//! [`crate::message::Response`] payload.

use bytes::{BufMut, Bytes, BytesMut};

use crate::message::{IpmiError, NetFn, Request};

/// DCMI group-extension identifier (first byte of every DCMI payload).
pub const DCMI_GROUP_EXT: u8 = 0xdc;

/// Command codes.
pub const CMD_GET_POWER_READING: u8 = 0x02;
pub const CMD_GET_POWER_LIMIT: u8 = 0x03;
pub const CMD_SET_POWER_LIMIT: u8 = 0x04;
pub const CMD_ACTIVATE_POWER_LIMIT: u8 = 0x05;

/// What the BMC should do if the cap cannot be met within the correction
/// time. The paper's platform logs and keeps trying (`LogOnly`), which is
/// why Table II's 120 W rows show measured power *above* the cap instead
/// of a shutdown.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum ExceptionAction {
    /// No action, keep throttling as hard as possible.
    LogOnly = 0x00,
    /// Hard power-off.
    HardPowerOff = 0x01,
}

impl ExceptionAction {
    pub fn from_u8(v: u8) -> Result<Self, IpmiError> {
        match v {
            0x00 => Ok(ExceptionAction::LogOnly),
            0x01 => Ok(ExceptionAction::HardPowerOff),
            _ => Err(IpmiError::Malformed("exception action")),
        }
    }
}

/// `Get Power Reading` request.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GetPowerReading;

impl GetPowerReading {
    pub fn request(seq: u8) -> Request {
        Request::new(NetFn::GroupExt, CMD_GET_POWER_READING, seq, vec![DCMI_GROUP_EXT, 0x01])
    }
}

/// `Get Power Reading` response body.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PowerReading {
    /// Current node power in watts.
    pub current_w: u16,
    /// Minimum/maximum/average over the sampling window.
    pub min_w: u16,
    pub max_w: u16,
    pub avg_w: u16,
    /// Sampling window in milliseconds.
    pub window_ms: u32,
    /// Whether power measurement is active.
    pub active: bool,
}

impl PowerReading {
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(14);
        b.put_u8(DCMI_GROUP_EXT);
        b.put_u16_le(self.current_w);
        b.put_u16_le(self.min_w);
        b.put_u16_le(self.max_w);
        b.put_u16_le(self.avg_w);
        b.put_u32_le(self.window_ms);
        b.put_u8(if self.active { 0x40 } else { 0x00 });
        b.freeze()
    }

    pub fn decode(p: &[u8]) -> Result<PowerReading, IpmiError> {
        if p.len() != 14 || p[0] != DCMI_GROUP_EXT {
            return Err(IpmiError::Malformed("power reading"));
        }
        let u16le = |i: usize| u16::from_le_bytes([p[i], p[i + 1]]);
        Ok(PowerReading {
            current_w: u16le(1),
            min_w: u16le(3),
            max_w: u16le(5),
            avg_w: u16le(7),
            window_ms: u32::from_le_bytes([p[9], p[10], p[11], p[12]]),
            active: p[13] & 0x40 != 0,
        })
    }
}

/// A power limit, used by both `Set Power Limit` and `Get Power Limit`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PowerLimit {
    /// Cap in watts.
    pub limit_w: u16,
    /// How long the BMC may exceed the cap before declaring an exception.
    pub correction_ms: u32,
    /// Statistics sampling period in seconds.
    pub sampling_s: u16,
    pub action: ExceptionAction,
}

impl PowerLimit {
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(10);
        b.put_u8(DCMI_GROUP_EXT);
        b.put_u8(self.action as u8);
        b.put_u16_le(self.limit_w);
        b.put_u32_le(self.correction_ms);
        b.put_u16_le(self.sampling_s);
        b.freeze()
    }

    pub fn decode(p: &[u8]) -> Result<PowerLimit, IpmiError> {
        if p.len() != 10 || p[0] != DCMI_GROUP_EXT {
            return Err(IpmiError::Malformed("power limit"));
        }
        Ok(PowerLimit {
            action: ExceptionAction::from_u8(p[1])?,
            limit_w: u16::from_le_bytes([p[2], p[3]]),
            correction_ms: u32::from_le_bytes([p[4], p[5], p[6], p[7]]),
            sampling_s: u16::from_le_bytes([p[8], p[9]]),
        })
    }
}

/// `Set Power Limit` request wrapper.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SetPowerLimit(pub PowerLimit);

impl SetPowerLimit {
    pub fn request(&self, seq: u8) -> Request {
        Request::new(NetFn::GroupExt, CMD_SET_POWER_LIMIT, seq, self.0.encode())
    }

    pub fn parse(req: &Request) -> Result<PowerLimit, IpmiError> {
        PowerLimit::decode(&req.payload)
    }
}

/// `Get Power Limit` request wrapper.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GetPowerLimit;

impl GetPowerLimit {
    pub fn request(seq: u8) -> Request {
        Request::new(NetFn::GroupExt, CMD_GET_POWER_LIMIT, seq, vec![DCMI_GROUP_EXT])
    }
}

/// `Activate/Deactivate Power Limit` request wrapper.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ActivatePowerLimit {
    pub activate: bool,
}

impl ActivatePowerLimit {
    pub fn request(&self, seq: u8) -> Request {
        Request::new(
            NetFn::GroupExt,
            CMD_ACTIVATE_POWER_LIMIT,
            seq,
            vec![DCMI_GROUP_EXT, self.activate as u8],
        )
    }

    pub fn parse(req: &Request) -> Result<bool, IpmiError> {
        if req.payload.len() != 2 || req.payload[0] != DCMI_GROUP_EXT {
            return Err(IpmiError::Malformed("activate power limit"));
        }
        Ok(req.payload[1] != 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_reading_roundtrip() {
        let r = PowerReading {
            current_w: 153,
            min_w: 120,
            max_w: 160,
            avg_w: 150,
            window_ms: 1000,
            active: true,
        };
        assert_eq!(PowerReading::decode(&r.encode()).unwrap(), r);
    }

    #[test]
    fn power_limit_roundtrip() {
        let l = PowerLimit {
            limit_w: 135,
            correction_ms: 2000,
            sampling_s: 1,
            action: ExceptionAction::LogOnly,
        };
        assert_eq!(PowerLimit::decode(&l.encode()).unwrap(), l);
    }

    #[test]
    fn set_power_limit_request_parses_back() {
        let l = PowerLimit {
            limit_w: 120,
            correction_ms: 5000,
            sampling_s: 2,
            action: ExceptionAction::HardPowerOff,
        };
        let req = SetPowerLimit(l).request(9);
        assert_eq!(req.cmd, CMD_SET_POWER_LIMIT);
        assert_eq!(SetPowerLimit::parse(&req).unwrap(), l);
    }

    #[test]
    fn activate_roundtrip_both_ways() {
        for on in [true, false] {
            let req = ActivatePowerLimit { activate: on }.request(0);
            assert_eq!(ActivatePowerLimit::parse(&req).unwrap(), on);
        }
    }

    #[test]
    fn malformed_payloads_are_rejected() {
        assert!(PowerReading::decode(&[0u8; 3]).is_err());
        assert!(PowerLimit::decode(&[0xdc, 0x07, 0, 0, 0, 0, 0, 0, 0, 0]).is_err());
        let mut good = PowerLimit {
            limit_w: 1,
            correction_ms: 1,
            sampling_s: 1,
            action: ExceptionAction::LogOnly,
        }
        .encode()
        .to_vec();
        good[0] = 0x00; // wrong group extension
        assert!(PowerLimit::decode(&good).is_err());
    }

    #[test]
    fn requests_carry_dcmi_group_extension() {
        assert_eq!(GetPowerReading::request(1).payload[0], DCMI_GROUP_EXT);
        assert_eq!(GetPowerLimit::request(2).payload[0], DCMI_GROUP_EXT);
    }
}
