//! The System Event Log (SEL).
//!
//! DCMI's `LogOnly` exception action logs a SEL entry each time a power
//! limit cannot be honoured within its correction time — on the paper's
//! platform this is the paper trail for the 120 W rows whose measured
//! power sits above the cap. The manager reads entries with
//! `Get SEL Entry` (NetFn Storage in real IPMI; folded into App here for
//! the simulator's reduced NetFn set).

use std::collections::VecDeque;

use bytes::{BufMut, Bytes, BytesMut};

use crate::message::{IpmiError, NetFn, Request};

/// Bounded SEL ring size: oldest records are evicted beyond this.
pub const SEL_CAPACITY: usize = 4096;

/// Command codes (App NetFn).
pub const CMD_GET_SEL_INFO: u8 = 0x40;
pub const CMD_GET_SEL_ENTRY: u8 = 0x43;
pub const CMD_CLEAR_SEL: u8 = 0x47;

/// Event types the simulated BMC logs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum SelEventType {
    /// Power limit exceeded beyond its correction time.
    PowerLimitExceeded = 0x01,
    /// Power limit activated/deactivated.
    PowerLimitConfigured = 0x02,
    /// Node throttled to the deepest rung (ladder exhausted).
    ThrottleFloorReached = 0x03,
    /// BMC firmware restarted by the watchdog after a crash.
    FirmwareRebooted = 0x04,
    /// Guardrail failsafe engaged on implausible or stale telemetry.
    FailsafeEngaged = 0x05,
}

impl SelEventType {
    pub fn from_u8(v: u8) -> Result<SelEventType, IpmiError> {
        match v {
            0x01 => Ok(SelEventType::PowerLimitExceeded),
            0x02 => Ok(SelEventType::PowerLimitConfigured),
            0x03 => Ok(SelEventType::ThrottleFloorReached),
            0x04 => Ok(SelEventType::FirmwareRebooted),
            0x05 => Ok(SelEventType::FailsafeEngaged),
            _ => Err(IpmiError::Malformed("sel event type")),
        }
    }
}

/// One SEL record.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SelEntry {
    /// Record id (monotonic, assigned by the BMC).
    pub id: u16,
    /// Simulated timestamp in milliseconds.
    pub timestamp_ms: u64,
    pub event: SelEventType,
    /// Event datum (e.g. the measured watts when the cap was exceeded).
    pub datum: u16,
}

impl SelEntry {
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(13);
        b.put_u16_le(self.id);
        b.put_u64_le(self.timestamp_ms);
        b.put_u8(self.event as u8);
        b.put_u16_le(self.datum);
        b.freeze()
    }

    pub fn decode(p: &[u8]) -> Result<SelEntry, IpmiError> {
        if p.len() != 13 {
            return Err(IpmiError::Malformed("sel entry"));
        }
        Ok(SelEntry {
            id: u16::from_le_bytes([p[0], p[1]]),
            timestamp_ms: u64::from_le_bytes([p[2], p[3], p[4], p[5], p[6], p[7], p[8], p[9]]),
            event: SelEventType::from_u8(p[10])?,
            datum: u16::from_le_bytes([p[11], p[12]]),
        })
    }
}

/// `Get SEL Info` request; the response payload is
/// `[entries_lo, entries_hi]`.
pub fn get_sel_info_request(seq: u8) -> Request {
    Request::new(NetFn::App, CMD_GET_SEL_INFO, seq, Bytes::new())
}

/// `Get SEL Entry` request by record id (0xFFFF = latest).
pub fn get_sel_entry_request(seq: u8, id: u16) -> Request {
    Request::new(NetFn::App, CMD_GET_SEL_ENTRY, seq, id.to_le_bytes().to_vec())
}

/// `Clear SEL` request.
pub fn clear_sel_request(seq: u8) -> Request {
    Request::new(NetFn::App, CMD_CLEAR_SEL, seq, Bytes::new())
}

/// The log itself (lives inside the BMC).
#[derive(Clone, Debug, Default)]
pub struct SystemEventLog {
    entries: VecDeque<SelEntry>,
    next_id: u16,
}

impl SystemEventLog {
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an event; returns its record id.
    ///
    /// Record ids wrap at 16 bits but skip `0xFFFF`, which the wire
    /// protocol reserves to mean "latest" — an entry stored under that id
    /// would be unaddressable by `Get SEL Entry`.
    pub fn log(&mut self, timestamp_ms: u64, event: SelEventType, datum: u16) -> u16 {
        if self.next_id == 0xffff {
            self.next_id = 0;
        }
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        // A real SEL is a bounded ring; evict the oldest record first.
        if self.entries.len() == SEL_CAPACITY {
            self.entries.pop_front();
        }
        self.entries.push_back(SelEntry { id, timestamp_ms, event, datum });
        id
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entry by record id; `0xFFFF` returns the latest.
    pub fn get(&self, id: u16) -> Option<&SelEntry> {
        if id == 0xffff {
            self.entries.back()
        } else {
            self.entries.iter().find(|e| e.id == id)
        }
    }

    pub fn clear(&mut self) {
        self.entries.clear();
    }

    pub fn iter(&self) -> impl Iterator<Item = &SelEntry> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_roundtrip() {
        let e = SelEntry {
            id: 7,
            timestamp_ms: 123_456_789,
            event: SelEventType::PowerLimitExceeded,
            datum: 124,
        };
        assert_eq!(SelEntry::decode(&e.encode()).unwrap(), e);
    }

    #[test]
    fn log_assigns_monotonic_ids_and_latest_lookup_works() {
        let mut sel = SystemEventLog::new();
        let a = sel.log(100, SelEventType::PowerLimitConfigured, 135);
        let b = sel.log(200, SelEventType::PowerLimitExceeded, 124);
        assert_eq!(b, a + 1);
        assert_eq!(sel.get(0xffff).unwrap().id, b);
        assert_eq!(sel.get(a).unwrap().datum, 135);
        assert_eq!(sel.len(), 2);
    }

    #[test]
    fn log_is_bounded() {
        let mut sel = SystemEventLog::new();
        for i in 0..5000u64 {
            sel.log(i, SelEventType::ThrottleFloorReached, 0);
        }
        assert_eq!(sel.len(), 4096);
        // Oldest entries dropped.
        assert!(sel.get(0).is_none());
        assert!(sel.get(4999).is_some());
    }

    #[test]
    fn clear_empties_the_log() {
        let mut sel = SystemEventLog::new();
        sel.log(1, SelEventType::PowerLimitExceeded, 1);
        sel.clear();
        assert!(sel.is_empty());
        assert!(sel.get(0xffff).is_none());
    }

    #[test]
    fn sustained_storm_wraps_ids_and_keeps_the_ring_consistent() {
        // Push enough events to wrap the 16-bit record id space twice.
        let mut sel = SystemEventLog::new();
        let total = 2 * 0x1_0000 + 777;
        let mut last = 0u16;
        for i in 0..total {
            last = sel.log(i as u64, SelEventType::PowerLimitExceeded, (i % 500) as u16);
        }
        assert_eq!(sel.len(), SEL_CAPACITY);
        // The reserved "latest" sentinel is never assigned as a record id.
        assert!(sel.iter().all(|e| e.id != 0xffff));
        // Every retained id is unique and addressable.
        let ids: Vec<u16> = sel.iter().map(|e| e.id).collect();
        let unique: std::collections::BTreeSet<u16> = ids.iter().copied().collect();
        assert_eq!(unique.len(), SEL_CAPACITY);
        for &id in &ids {
            assert!(sel.get(id).is_some(), "retained id {id} must be addressable");
        }
        // The latest lookup agrees with the last assigned id.
        assert_eq!(sel.get(0xffff).unwrap().id, last);
        // Timestamps stay oldest-first: eviction removed exactly the oldest.
        let ts: Vec<u64> = sel.iter().map(|e| e.timestamp_ms).collect();
        assert!(ts.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*ts.last().unwrap(), (total - 1) as u64);
        assert_eq!(ts[0], (total - SEL_CAPACITY) as u64);
    }

    #[test]
    fn ids_skip_the_latest_sentinel_across_the_wrap() {
        let mut sel = SystemEventLog::new();
        let mut prev = None;
        for i in 0..0x1_0000u64 {
            let id = sel.log(i, SelEventType::PowerLimitConfigured, 0);
            assert_ne!(id, 0xffff);
            if let Some(p) = prev {
                // Ids advance by one except across the reserved sentinel.
                let expect = if p == 0xfffe { 0 } else { p + 1 };
                assert_eq!(id, expect);
            }
            prev = Some(id);
        }
    }

    #[test]
    fn malformed_entries_rejected() {
        assert!(SelEntry::decode(&[0u8; 5]).is_err());
        let mut good =
            SelEntry { id: 1, timestamp_ms: 2, event: SelEventType::PowerLimitExceeded, datum: 3 }
                .encode()
                .to_vec();
        good[10] = 0x99;
        assert!(SelEntry::decode(&good).is_err());
    }
}
