//! The System Event Log (SEL).
//!
//! DCMI's `LogOnly` exception action logs a SEL entry each time a power
//! limit cannot be honoured within its correction time — on the paper's
//! platform this is the paper trail for the 120 W rows whose measured
//! power sits above the cap. The manager reads entries with
//! `Get SEL Entry` (NetFn Storage in real IPMI; folded into App here for
//! the simulator's reduced NetFn set).

use bytes::{BufMut, Bytes, BytesMut};

use crate::message::{IpmiError, NetFn, Request};

/// Command codes (App NetFn).
pub const CMD_GET_SEL_INFO: u8 = 0x40;
pub const CMD_GET_SEL_ENTRY: u8 = 0x43;
pub const CMD_CLEAR_SEL: u8 = 0x47;

/// Event types the simulated BMC logs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum SelEventType {
    /// Power limit exceeded beyond its correction time.
    PowerLimitExceeded = 0x01,
    /// Power limit activated/deactivated.
    PowerLimitConfigured = 0x02,
    /// Node throttled to the deepest rung (ladder exhausted).
    ThrottleFloorReached = 0x03,
}

impl SelEventType {
    pub fn from_u8(v: u8) -> Result<SelEventType, IpmiError> {
        match v {
            0x01 => Ok(SelEventType::PowerLimitExceeded),
            0x02 => Ok(SelEventType::PowerLimitConfigured),
            0x03 => Ok(SelEventType::ThrottleFloorReached),
            _ => Err(IpmiError::Malformed("sel event type")),
        }
    }
}

/// One SEL record.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SelEntry {
    /// Record id (monotonic, assigned by the BMC).
    pub id: u16,
    /// Simulated timestamp in milliseconds.
    pub timestamp_ms: u64,
    pub event: SelEventType,
    /// Event datum (e.g. the measured watts when the cap was exceeded).
    pub datum: u16,
}

impl SelEntry {
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(13);
        b.put_u16_le(self.id);
        b.put_u64_le(self.timestamp_ms);
        b.put_u8(self.event as u8);
        b.put_u16_le(self.datum);
        b.freeze()
    }

    pub fn decode(p: &[u8]) -> Result<SelEntry, IpmiError> {
        if p.len() != 13 {
            return Err(IpmiError::Malformed("sel entry"));
        }
        Ok(SelEntry {
            id: u16::from_le_bytes([p[0], p[1]]),
            timestamp_ms: u64::from_le_bytes([p[2], p[3], p[4], p[5], p[6], p[7], p[8], p[9]]),
            event: SelEventType::from_u8(p[10])?,
            datum: u16::from_le_bytes([p[11], p[12]]),
        })
    }
}

/// `Get SEL Info` request; the response payload is
/// `[entries_lo, entries_hi]`.
pub fn get_sel_info_request(seq: u8) -> Request {
    Request::new(NetFn::App, CMD_GET_SEL_INFO, seq, Bytes::new())
}

/// `Get SEL Entry` request by record id (0xFFFF = latest).
pub fn get_sel_entry_request(seq: u8, id: u16) -> Request {
    Request::new(NetFn::App, CMD_GET_SEL_ENTRY, seq, id.to_le_bytes().to_vec())
}

/// `Clear SEL` request.
pub fn clear_sel_request(seq: u8) -> Request {
    Request::new(NetFn::App, CMD_CLEAR_SEL, seq, Bytes::new())
}

/// The log itself (lives inside the BMC).
#[derive(Clone, Debug, Default)]
pub struct SystemEventLog {
    entries: Vec<SelEntry>,
    next_id: u16,
}

impl SystemEventLog {
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an event; returns its record id.
    pub fn log(&mut self, timestamp_ms: u64, event: SelEventType, datum: u16) -> u16 {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        self.entries.push(SelEntry { id, timestamp_ms, event, datum });
        // A real SEL is a bounded ring; keep the newest 4096 records.
        if self.entries.len() > 4096 {
            self.entries.remove(0);
        }
        id
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entry by record id; `0xFFFF` returns the latest.
    pub fn get(&self, id: u16) -> Option<&SelEntry> {
        if id == 0xffff {
            self.entries.last()
        } else {
            self.entries.iter().find(|e| e.id == id)
        }
    }

    pub fn clear(&mut self) {
        self.entries.clear();
    }

    pub fn iter(&self) -> impl Iterator<Item = &SelEntry> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_roundtrip() {
        let e = SelEntry {
            id: 7,
            timestamp_ms: 123_456_789,
            event: SelEventType::PowerLimitExceeded,
            datum: 124,
        };
        assert_eq!(SelEntry::decode(&e.encode()).unwrap(), e);
    }

    #[test]
    fn log_assigns_monotonic_ids_and_latest_lookup_works() {
        let mut sel = SystemEventLog::new();
        let a = sel.log(100, SelEventType::PowerLimitConfigured, 135);
        let b = sel.log(200, SelEventType::PowerLimitExceeded, 124);
        assert_eq!(b, a + 1);
        assert_eq!(sel.get(0xffff).unwrap().id, b);
        assert_eq!(sel.get(a).unwrap().datum, 135);
        assert_eq!(sel.len(), 2);
    }

    #[test]
    fn log_is_bounded() {
        let mut sel = SystemEventLog::new();
        for i in 0..5000u64 {
            sel.log(i, SelEventType::ThrottleFloorReached, 0);
        }
        assert_eq!(sel.len(), 4096);
        // Oldest entries dropped.
        assert!(sel.get(0).is_none());
        assert!(sel.get(4999).is_some());
    }

    #[test]
    fn clear_empties_the_log() {
        let mut sel = SystemEventLog::new();
        sel.log(1, SelEventType::PowerLimitExceeded, 1);
        sel.clear();
        assert!(sel.is_empty());
        assert!(sel.get(0xffff).is_none());
    }

    #[test]
    fn malformed_entries_rejected() {
        assert!(SelEntry::decode(&[0u8; 5]).is_err());
        let mut good =
            SelEntry { id: 1, timestamp_ms: 2, event: SelEventType::PowerLimitExceeded, datum: 3 }
                .encode()
                .to_vec();
        good[10] = 0x99;
        assert!(SelEntry::decode(&good).is_err());
    }
}
