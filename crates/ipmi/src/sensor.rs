//! Sensor reads over IPMI (NetFn 0x04, `Get Sensor Reading` 0x2d).
//!
//! The DCM dashboard polls a handful of sensors besides the DCMI power
//! reading; the study uses inlet temperature, die temperature and the PSU
//! power rail.

use bytes::{BufMut, Bytes, BytesMut};

use crate::message::{IpmiError, NetFn, Request};

/// Command code for `Get Sensor Reading`.
pub const CMD_GET_SENSOR_READING: u8 = 0x2d;

/// Sensor numbers exposed by the simulated BMC.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum SensorId {
    InletTempC = 0x01,
    DieTempC = 0x02,
    NodePowerW = 0x03,
}

impl SensorId {
    pub fn from_u8(v: u8) -> Result<SensorId, IpmiError> {
        match v {
            0x01 => Ok(SensorId::InletTempC),
            0x02 => Ok(SensorId::DieTempC),
            0x03 => Ok(SensorId::NodePowerW),
            _ => Err(IpmiError::Malformed("sensor id")),
        }
    }
}

/// Request wrapper.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SensorRead {
    pub sensor: SensorId,
}

impl SensorRead {
    pub fn request(&self, seq: u8) -> Request {
        Request::new(NetFn::Sensor, CMD_GET_SENSOR_READING, seq, vec![self.sensor as u8])
    }

    pub fn parse(req: &Request) -> Result<SensorId, IpmiError> {
        if req.payload.len() != 1 {
            return Err(IpmiError::Malformed("sensor read"));
        }
        SensorId::from_u8(req.payload[0])
    }
}

/// A sensor value: fixed-point `value = raw / 100`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SensorValue {
    pub sensor: SensorId,
    raw_centi: i32,
}

impl SensorValue {
    pub fn new(sensor: SensorId, value: f64) -> Self {
        SensorValue { sensor, raw_centi: (value * 100.0).round() as i32 }
    }

    pub fn value(&self) -> f64 {
        self.raw_centi as f64 / 100.0
    }

    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(5);
        b.put_u8(self.sensor as u8);
        b.put_i32_le(self.raw_centi);
        b.freeze()
    }

    pub fn decode(p: &[u8]) -> Result<SensorValue, IpmiError> {
        if p.len() != 5 {
            return Err(IpmiError::Malformed("sensor value"));
        }
        Ok(SensorValue {
            sensor: SensorId::from_u8(p[0])?,
            raw_centi: i32::from_le_bytes([p[1], p[2], p[3], p[4]]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sensor_value_roundtrip_preserves_centi_precision() {
        let v = SensorValue::new(SensorId::NodePowerW, 153.13);
        let d = SensorValue::decode(&v.encode()).unwrap();
        assert_eq!(d, v);
        assert!((d.value() - 153.13).abs() < 1e-9);
    }

    #[test]
    fn request_roundtrip() {
        let req = SensorRead { sensor: SensorId::DieTempC }.request(4);
        assert_eq!(SensorRead::parse(&req).unwrap(), SensorId::DieTempC);
    }

    #[test]
    fn unknown_sensor_rejected() {
        assert!(SensorId::from_u8(0x77).is_err());
    }

    #[test]
    fn negative_values_survive() {
        let v = SensorValue::new(SensorId::InletTempC, -12.5);
        assert_eq!(SensorValue::decode(&v.encode()).unwrap().value(), -12.5);
    }
}
