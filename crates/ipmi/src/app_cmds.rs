//! Application NetFn commands: `Get Device ID` and DCMI capability
//! discovery — the first things a manager sends when it adopts a node.

use bytes::{BufMut, Bytes, BytesMut};

use crate::message::{IpmiError, NetFn, Request};

/// Command codes.
pub const CMD_GET_DEVICE_ID: u8 = 0x01;
pub const CMD_GET_DCMI_CAPABILITIES: u8 = 0x06;

/// `Get Device ID` request.
pub fn get_device_id_request(seq: u8) -> Request {
    Request::new(NetFn::App, CMD_GET_DEVICE_ID, seq, Bytes::new())
}

/// The BMC's identity block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeviceId {
    pub device_id: u8,
    pub firmware_major: u8,
    pub firmware_minor: u8,
    /// IPMI version in BCD (0x20 = 2.0).
    pub ipmi_version: u8,
    /// 20-bit IANA manufacturer id (Intel = 343).
    pub manufacturer: u32,
}

impl DeviceId {
    /// The simulated platform's identity.
    pub fn capsim_bmc() -> Self {
        DeviceId {
            device_id: 0x20,
            firmware_major: 1,
            firmware_minor: 0,
            ipmi_version: 0x20,
            manufacturer: 343,
        }
    }

    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(8);
        b.put_u8(self.device_id);
        b.put_u8(self.firmware_major);
        b.put_u8(self.firmware_minor);
        b.put_u8(self.ipmi_version);
        b.put_u32_le(self.manufacturer);
        b.freeze()
    }

    pub fn decode(p: &[u8]) -> Result<DeviceId, IpmiError> {
        if p.len() != 8 {
            return Err(IpmiError::Malformed("device id"));
        }
        Ok(DeviceId {
            device_id: p[0],
            firmware_major: p[1],
            firmware_minor: p[2],
            ipmi_version: p[3],
            manufacturer: u32::from_le_bytes([p[4], p[5], p[6], p[7]]),
        })
    }
}

/// DCMI capabilities advertisement (subset: power management).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DcmiCapabilities {
    /// Power management (capping) supported.
    pub power_management: bool,
    /// Minimum and maximum settable limits in watts.
    pub min_limit_w: u16,
    pub max_limit_w: u16,
}

impl DcmiCapabilities {
    /// The simulated node: caps make sense between the idle floor and a
    /// little above the unconstrained draw.
    pub fn capsim_node() -> Self {
        DcmiCapabilities { power_management: true, min_limit_w: 105, max_limit_w: 250 }
    }

    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(5);
        b.put_u8(self.power_management as u8);
        b.put_u16_le(self.min_limit_w);
        b.put_u16_le(self.max_limit_w);
        b.freeze()
    }

    pub fn decode(p: &[u8]) -> Result<DcmiCapabilities, IpmiError> {
        if p.len() != 5 {
            return Err(IpmiError::Malformed("dcmi capabilities"));
        }
        Ok(DcmiCapabilities {
            power_management: p[0] != 0,
            min_limit_w: u16::from_le_bytes([p[1], p[2]]),
            max_limit_w: u16::from_le_bytes([p[3], p[4]]),
        })
    }
}

/// `Get DCMI Capabilities` request.
pub fn get_capabilities_request(seq: u8) -> Request {
    Request::new(NetFn::App, CMD_GET_DCMI_CAPABILITIES, seq, Bytes::new())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_id_roundtrip() {
        let d = DeviceId::capsim_bmc();
        assert_eq!(DeviceId::decode(&d.encode()).unwrap(), d);
        assert_eq!(d.manufacturer, 343, "Intel IANA id");
    }

    #[test]
    fn capabilities_roundtrip() {
        let c = DcmiCapabilities::capsim_node();
        assert_eq!(DcmiCapabilities::decode(&c.encode()).unwrap(), c);
        assert!(c.min_limit_w < c.max_limit_w);
    }

    #[test]
    fn malformed_rejected() {
        assert!(DeviceId::decode(&[1, 2, 3]).is_err());
        assert!(DcmiCapabilities::decode(&[]).is_err());
    }
}
