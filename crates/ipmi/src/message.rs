//! IPMI message framing.
//!
//! A simplified LAN frame: `[netfn, cmd, seq, len, payload…, checksum]`.
//! The checksum is the IPMI two's-complement checksum over everything
//! before it. Responses carry a completion code ahead of their payload.

use bytes::{BufMut, Bytes, BytesMut};
use std::fmt;

/// Network function codes (request variants; responses are `netfn | 1`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum NetFn {
    /// Chassis (power control).
    Chassis = 0x00,
    /// Sensor/Event.
    Sensor = 0x04,
    /// Application (Get Device ID etc.).
    App = 0x06,
    /// Group extension — DCMI lives here (0x2C).
    GroupExt = 0x2c,
}

impl NetFn {
    pub fn from_u8(v: u8) -> Option<NetFn> {
        match v & !1 {
            0x00 => Some(NetFn::Chassis),
            0x04 => Some(NetFn::Sensor),
            0x06 => Some(NetFn::App),
            0x2c => Some(NetFn::GroupExt),
            _ => None,
        }
    }
}

/// IPMI completion codes (subset).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum CompletionCode {
    Ok = 0x00,
    NodeBusy = 0xc0,
    InvalidCommand = 0xc1,
    RequestDataLengthInvalid = 0xc7,
    ParameterOutOfRange = 0xc9,
    DestinationUnavailable = 0xd3,
    UnspecifiedError = 0xff,
}

impl CompletionCode {
    pub fn from_u8(v: u8) -> CompletionCode {
        match v {
            0x00 => CompletionCode::Ok,
            0xc0 => CompletionCode::NodeBusy,
            0xc1 => CompletionCode::InvalidCommand,
            0xc7 => CompletionCode::RequestDataLengthInvalid,
            0xc9 => CompletionCode::ParameterOutOfRange,
            0xd3 => CompletionCode::DestinationUnavailable,
            _ => CompletionCode::UnspecifiedError,
        }
    }
}

/// Errors surfaced while encoding/decoding or transporting messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IpmiError {
    /// Frame too short or length field inconsistent.
    Truncated,
    /// Checksum mismatch.
    BadChecksum,
    /// Unknown NetFn.
    UnknownNetFn(u8),
    /// A response arrived with a non-OK completion code.
    Completion(CompletionCode),
    /// The peer hung up.
    ChannelClosed,
    /// Payload didn't parse as the expected command structure.
    Malformed(&'static str),
    /// The transport dropped the frame before delivery (fault injection
    /// or a lossy management network).
    Dropped,
    /// A frame arrived damaged on a faulty link (detected by checksum at
    /// the receiving end).
    Corrupt,
    /// No matching response arrived within the transaction's wait budget.
    TimedOut,
}

impl fmt::Display for IpmiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IpmiError::Truncated => write!(f, "truncated IPMI frame"),
            IpmiError::BadChecksum => write!(f, "IPMI checksum mismatch"),
            IpmiError::UnknownNetFn(v) => write!(f, "unknown NetFn {v:#x}"),
            IpmiError::Completion(c) => write!(f, "completion code {c:?}"),
            IpmiError::ChannelClosed => write!(f, "management channel closed"),
            IpmiError::Malformed(what) => write!(f, "malformed payload: {what}"),
            IpmiError::Dropped => write!(f, "frame dropped in transit"),
            IpmiError::Corrupt => write!(f, "frame corrupted in transit"),
            IpmiError::TimedOut => write!(f, "transaction timed out"),
        }
    }
}

impl IpmiError {
    /// True for failures a retry might cure — lost, damaged or late
    /// frames and busy peers. Protocol violations and a closed channel
    /// are final.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            IpmiError::Dropped
                | IpmiError::Corrupt
                | IpmiError::TimedOut
                | IpmiError::BadChecksum
                | IpmiError::Completion(CompletionCode::NodeBusy)
        )
    }
}

impl std::error::Error for IpmiError {}

/// IPMI two's-complement checksum: sum of all bytes plus checksum ≡ 0.
pub fn checksum(data: &[u8]) -> u8 {
    let sum: u8 = data.iter().fold(0u8, |a, &b| a.wrapping_add(b));
    sum.wrapping_neg()
}

/// An IPMI request frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    pub netfn: NetFn,
    pub cmd: u8,
    pub seq: u8,
    pub payload: Bytes,
}

impl Request {
    pub fn new(netfn: NetFn, cmd: u8, seq: u8, payload: impl Into<Bytes>) -> Self {
        Request { netfn, cmd, seq, payload: payload.into() }
    }

    /// Serialize to wire bytes.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(5 + self.payload.len());
        b.put_u8(self.netfn as u8);
        b.put_u8(self.cmd);
        b.put_u8(self.seq);
        b.put_u8(self.payload.len() as u8);
        b.put_slice(&self.payload);
        let ck = checksum(&b);
        b.put_u8(ck);
        b.freeze()
    }

    /// Parse from wire bytes.
    pub fn decode(buf: &[u8]) -> Result<Request, IpmiError> {
        if buf.len() < 5 {
            return Err(IpmiError::Truncated);
        }
        let len = buf[3] as usize;
        if buf.len() != 5 + len {
            return Err(IpmiError::Truncated);
        }
        if checksum(&buf[..buf.len() - 1]) != buf[buf.len() - 1] {
            return Err(IpmiError::BadChecksum);
        }
        let netfn = NetFn::from_u8(buf[0]).ok_or(IpmiError::UnknownNetFn(buf[0]))?;
        Ok(Request {
            netfn,
            cmd: buf[1],
            seq: buf[2],
            payload: Bytes::copy_from_slice(&buf[4..4 + len]),
        })
    }
}

/// An IPMI response frame (NetFn is the request's +1 on the wire).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    pub netfn: NetFn,
    pub cmd: u8,
    pub seq: u8,
    pub completion: CompletionCode,
    pub payload: Bytes,
}

impl Response {
    pub fn ok(req: &Request, payload: impl Into<Bytes>) -> Self {
        Response {
            netfn: req.netfn,
            cmd: req.cmd,
            seq: req.seq,
            completion: CompletionCode::Ok,
            payload: payload.into(),
        }
    }

    pub fn err(req: &Request, completion: CompletionCode) -> Self {
        Response { netfn: req.netfn, cmd: req.cmd, seq: req.seq, completion, payload: Bytes::new() }
    }

    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(6 + self.payload.len());
        b.put_u8(self.netfn as u8 | 1);
        b.put_u8(self.cmd);
        b.put_u8(self.seq);
        b.put_u8(self.completion as u8);
        b.put_u8(self.payload.len() as u8);
        b.put_slice(&self.payload);
        let ck = checksum(&b);
        b.put_u8(ck);
        b.freeze()
    }

    pub fn decode(buf: &[u8]) -> Result<Response, IpmiError> {
        if buf.len() < 6 {
            return Err(IpmiError::Truncated);
        }
        let len = buf[4] as usize;
        if buf.len() != 6 + len {
            return Err(IpmiError::Truncated);
        }
        if checksum(&buf[..buf.len() - 1]) != buf[buf.len() - 1] {
            return Err(IpmiError::BadChecksum);
        }
        let netfn = NetFn::from_u8(buf[0]).ok_or(IpmiError::UnknownNetFn(buf[0]))?;
        Ok(Response {
            netfn,
            cmd: buf[1],
            seq: buf[2],
            completion: CompletionCode::from_u8(buf[3]),
            payload: Bytes::copy_from_slice(&buf[5..5 + len]),
        })
    }

    /// Return the payload if the completion code is OK, else an error.
    pub fn into_ok(self) -> Result<Bytes, IpmiError> {
        if self.completion == CompletionCode::Ok {
            Ok(self.payload)
        } else {
            Err(IpmiError::Completion(self.completion))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let r = Request::new(NetFn::GroupExt, 0x02, 7, vec![0xdc, 0x01]);
        let d = Request::decode(&r.encode()).unwrap();
        assert_eq!(d, r);
    }

    #[test]
    fn response_roundtrip_with_completion() {
        let req = Request::new(NetFn::App, 0x01, 3, Bytes::new());
        let resp = Response::err(&req, CompletionCode::InvalidCommand);
        let d = Response::decode(&resp.encode()).unwrap();
        assert_eq!(d.completion, CompletionCode::InvalidCommand);
        assert_eq!(d.seq, 3);
        assert!(d.into_ok().is_err());
    }

    #[test]
    fn corrupted_frame_fails_checksum() {
        let r = Request::new(NetFn::Sensor, 0x2d, 1, vec![0x10]);
        let mut bytes = r.encode().to_vec();
        bytes[4] ^= 0xff;
        assert_eq!(Request::decode(&bytes), Err(IpmiError::BadChecksum));
    }

    #[test]
    fn truncated_frames_are_rejected() {
        let r = Request::new(NetFn::Chassis, 0x00, 0, vec![1, 2, 3]);
        let bytes = r.encode();
        assert_eq!(Request::decode(&bytes[..4]), Err(IpmiError::Truncated));
        assert_eq!(Request::decode(&bytes[..bytes.len() - 1]), Err(IpmiError::Truncated));
    }

    #[test]
    fn response_netfn_has_lsb_set_on_wire() {
        let req = Request::new(NetFn::GroupExt, 0x02, 0, Bytes::new());
        let bytes = Response::ok(&req, Bytes::new()).encode();
        assert_eq!(bytes[0], 0x2c | 1);
    }

    #[test]
    fn unknown_netfn_is_reported() {
        let r = Request::new(NetFn::App, 0x01, 0, Bytes::new());
        let mut bytes = r.encode().to_vec();
        bytes[0] = 0x42;
        let last = bytes.len() - 1;
        bytes[last] = checksum(&bytes[..last]);
        assert_eq!(Request::decode(&bytes), Err(IpmiError::UnknownNetFn(0x42)));
    }

    #[test]
    fn checksum_sums_to_zero() {
        let data = [1u8, 2, 3, 0x80, 0xff];
        let ck = checksum(&data);
        let total = data.iter().fold(ck, |a, &b| a.wrapping_add(b));
        assert_eq!(total, 0);
    }
}
