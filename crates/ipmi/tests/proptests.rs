//! Property-based tests: every IPMI/DCMI codec round-trips, and corrupted
//! frames never decode successfully.

use bytes::Bytes;
use proptest::prelude::*;

use capsim_ipmi::dcmi::{ExceptionAction, PowerLimit, PowerReading};
use capsim_ipmi::{CompletionCode, NetFn, Request, Response};

fn netfn_strategy() -> impl Strategy<Value = NetFn> {
    prop_oneof![Just(NetFn::Chassis), Just(NetFn::Sensor), Just(NetFn::App), Just(NetFn::GroupExt),]
}

proptest! {
    #[test]
    fn request_roundtrip(
        netfn in netfn_strategy(),
        cmd in any::<u8>(),
        seq in any::<u8>(),
        payload in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let req = Request::new(netfn, cmd, seq, payload.clone());
        let decoded = Request::decode(&req.encode()).unwrap();
        prop_assert_eq!(decoded.netfn, netfn);
        prop_assert_eq!(decoded.cmd, cmd);
        prop_assert_eq!(decoded.seq, seq);
        prop_assert_eq!(&decoded.payload[..], &payload[..]);
    }

    #[test]
    fn response_roundtrip(
        netfn in netfn_strategy(),
        cmd in any::<u8>(),
        seq in any::<u8>(),
        payload in proptest::collection::vec(any::<u8>(), 0..200),
        ok in any::<bool>(),
    ) {
        let req = Request::new(netfn, cmd, seq, Bytes::new());
        let resp = if ok {
            Response::ok(&req, payload.clone())
        } else {
            Response::err(&req, CompletionCode::NodeBusy)
        };
        let decoded = Response::decode(&resp.encode()).unwrap();
        prop_assert_eq!(decoded.seq, seq);
        if ok {
            prop_assert_eq!(&decoded.into_ok().unwrap()[..], &payload[..]);
        } else {
            prop_assert!(decoded.into_ok().is_err());
        }
    }

    /// Any single-byte corruption is caught (checksum, length or parse).
    #[test]
    fn corruption_is_detected(
        cmd in any::<u8>(),
        seq in any::<u8>(),
        payload in proptest::collection::vec(any::<u8>(), 0..50),
        flip_byte in any::<usize>(),
        flip_bits in 1u8..=255,
    ) {
        let req = Request::new(NetFn::GroupExt, cmd, seq, payload);
        let mut bytes = req.encode().to_vec();
        let idx = flip_byte % bytes.len();
        bytes[idx] ^= flip_bits;
        match Request::decode(&bytes) {
            // Either rejected…
            Err(_) => {}
            // …or the corruption cancelled itself out in the checksum sum
            // while producing a *different but well-formed* frame — the
            // 8-bit IPMI checksum cannot catch everything; what it must
            // never do is return the original data unchanged.
            Ok(decoded) => prop_assert_ne!(decoded.encode().to_vec(), req.encode().to_vec()),
        }
    }

    #[test]
    fn power_reading_roundtrip(
        current in any::<u16>(),
        min in any::<u16>(),
        max in any::<u16>(),
        avg in any::<u16>(),
        window in any::<u32>(),
        active in any::<bool>(),
    ) {
        let r = PowerReading { current_w: current, min_w: min, max_w: max, avg_w: avg, window_ms: window, active };
        prop_assert_eq!(PowerReading::decode(&r.encode()).unwrap(), r);
    }

    #[test]
    fn power_limit_roundtrip(
        limit in any::<u16>(),
        correction in any::<u32>(),
        sampling in any::<u16>(),
        hard in any::<bool>(),
    ) {
        let l = PowerLimit {
            limit_w: limit,
            correction_ms: correction,
            sampling_s: sampling,
            action: if hard { ExceptionAction::HardPowerOff } else { ExceptionAction::LogOnly },
        };
        prop_assert_eq!(PowerLimit::decode(&l.encode()).unwrap(), l);
    }

    /// Arbitrary byte soup never panics the decoders.
    #[test]
    fn decoders_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
        let _ = PowerReading::decode(&bytes);
        let _ = PowerLimit::decode(&bytes);
    }
}
