//! The cap-sweep experiment runner.
//!
//! §III of the paper: "we studied their performance at nine different
//! power caps: 160, 155, 150, 145, 140, 135, 130, 125, and 120 Watts.
//! Each application, given the same input, was executed five times under
//! each power cap and the results … were averaged."
//!
//! [`CapSweep::run`] does exactly that against the simulator: one
//! baseline (no cap) plus one row per cap, each averaged over
//! `runs_per_point` seeded executions. Every (cap, seed) simulation is
//! independent and deterministic, so the sweep parallelizes across Rayon
//! workers without changing any number.

use capsim_apps::Workload;
use capsim_node::{Machine, MachineConfig, PowerCap, ThrottleLadder};
use rayon::prelude::*;

/// Which throttle ladder the BMC uses (the X1 ablation swaps in
/// DVFS-only).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LadderKind {
    /// DVFS → T-states → cache/TLB gating → memory gating (the paper's
    /// platform behaviour).
    Full,
    /// Stop at P-min (ablation: "what if the firmware only had DVFS?").
    DvfsOnly,
}

/// Experiment-wide configuration.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// Power caps in watts, high to low (the paper's 160…120).
    pub caps_w: Vec<f64>,
    /// Seeded runs averaged per point (the paper's five).
    pub runs_per_point: usize,
    /// Base seed; run r at point p uses `base_seed + r`.
    pub base_seed: u64,
    pub ladder: LadderKind,
    /// BMC control period in µs. The paper-scale default (200 µs) suits
    /// runs of ≥100 simulated ms; short test-scale runs need a faster
    /// loop so the controller reaches equilibrium early in the run.
    pub control_period_us: f64,
}

impl ExperimentConfig {
    /// The paper's §III setup.
    pub fn paper() -> Self {
        ExperimentConfig {
            caps_w: vec![160.0, 155.0, 150.0, 145.0, 140.0, 135.0, 130.0, 125.0, 120.0],
            runs_per_point: 5,
            base_seed: 0x1c99_2012,
            ladder: LadderKind::Full,
            control_period_us: 200.0,
        }
    }

    /// A cheap setup for tests: three caps, two runs.
    pub fn quick() -> Self {
        ExperimentConfig {
            caps_w: vec![150.0, 135.0, 120.0],
            runs_per_point: 2,
            base_seed: 42,
            ladder: LadderKind::Full,
            control_period_us: 10.0,
        }
    }
}

/// Averaged metrics of one experiment point — the columns of Table II.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RunMetrics {
    /// The cap, or `None` for the baseline row.
    pub cap_w: Option<f64>,
    pub avg_power_w: f64,
    pub energy_j: f64,
    pub avg_freq_mhz: f64,
    pub time_s: f64,
    pub l1_misses: f64,
    pub l2_misses: f64,
    pub l3_misses: f64,
    pub dtlb_misses: f64,
    pub itlb_misses: f64,
    pub instr_committed: f64,
    pub instr_executed: f64,
    pub dram_accesses: f64,
    /// Workload-reported quality (must be cap-invariant up to seed noise).
    pub quality: f64,
}

impl RunMetrics {
    /// Percentage difference of `field(self)` vs `field(base)`, the
    /// paper's "% Diff" columns.
    pub fn pct_diff(&self, base: &RunMetrics, field: impl Fn(&RunMetrics) -> f64) -> f64 {
        let b = field(base);
        if b == 0.0 {
            0.0
        } else {
            (field(self) - b) / b * 100.0
        }
    }
}

/// One workload's full sweep.
#[derive(Clone, Debug)]
pub struct SweepResult {
    pub workload: String,
    pub baseline: RunMetrics,
    /// One row per cap, in the order of `caps_w`.
    pub rows: Vec<RunMetrics>,
}

impl SweepResult {
    /// Baseline followed by capped rows (Table II row order).
    pub fn all_rows(&self) -> Vec<&RunMetrics> {
        std::iter::once(&self.baseline).chain(self.rows.iter()).collect()
    }

    /// The row for a specific cap.
    pub fn row(&self, cap_w: f64) -> Option<&RunMetrics> {
        self.rows.iter().find(|r| r.cap_w == Some(cap_w))
    }
}

/// The sweep driver.
///
/// ```
/// use capsim_apps::kernels::AluBurst;
/// use capsim_core::{CapSweep, ExperimentConfig, LadderKind};
///
/// let cfg = ExperimentConfig {
///     caps_w: vec![140.0],
///     runs_per_point: 1,
///     base_seed: 1,
///     ladder: LadderKind::Full,
///     control_period_us: 10.0,
/// };
/// let sweep = CapSweep::new(cfg)
///     .run("alu", |_seed| Box::new(AluBurst { iters: 400_000 }));
/// let capped = sweep.row(140.0).unwrap();
/// assert!(capped.time_s > sweep.baseline.time_s);
/// assert!(capped.avg_power_w < sweep.baseline.avg_power_w);
/// ```
pub struct CapSweep {
    pub config: ExperimentConfig,
}

impl CapSweep {
    pub fn new(config: ExperimentConfig) -> Self {
        CapSweep { config }
    }

    fn build_machine(&self, seed: u64) -> Machine {
        let mut cfg = MachineConfig::e5_2680(seed);
        cfg.control_period_us = self.config.control_period_us;
        cfg.meter_window_s = (self.config.control_period_us * 10.0 * 1e-6).max(2e-4);
        match self.config.ladder {
            LadderKind::Full => Machine::new(cfg),
            LadderKind::DvfsOnly => {
                let ladder = ThrottleLadder::dvfs_only(&cfg.pstates, cfg.full_mem());
                Machine::with_ladder(cfg, ladder)
            }
        }
    }

    /// One point: average `runs_per_point` seeded runs at `cap_w`.
    fn run_point<F>(&self, factory: &F, cap_w: Option<f64>) -> RunMetrics
    where
        F: Fn(u64) -> Box<dyn Workload> + Sync,
    {
        let runs: Vec<RunMetrics> = (0..self.config.runs_per_point as u64)
            .into_par_iter()
            .map(|r| {
                let seed = self.config.base_seed + r;
                let mut m = self.build_machine(seed);
                if let Some(w) = cap_w {
                    m.set_power_cap(Some(PowerCap::new(w).unwrap()));
                }
                let mut workload = factory(seed);
                let out = workload.run(&mut m);
                let s = m.finish_run();
                RunMetrics {
                    cap_w,
                    avg_power_w: s.avg_power_w,
                    energy_j: s.energy_j,
                    avg_freq_mhz: s.avg_freq_mhz,
                    time_s: s.wall_s,
                    l1_misses: s.mem.l1d_misses as f64,
                    l2_misses: s.mem.l2_misses as f64,
                    l3_misses: s.mem.l3_misses as f64,
                    dtlb_misses: s.mem.dtlb_misses as f64,
                    itlb_misses: s.mem.itlb_misses as f64,
                    instr_committed: s.counters.instructions_committed as f64,
                    instr_executed: s.counters.instructions_executed as f64,
                    dram_accesses: s.mem.dram_accesses() as f64,
                    quality: out.quality,
                }
            })
            .collect();
        average(cap_w, &runs)
    }

    /// Run the full sweep: baseline first, then every cap.
    ///
    /// `factory(seed)` must build a fresh workload instance; the seed
    /// varies per run like the paper's repeated executions.
    pub fn run<F>(&self, name: &str, factory: F) -> SweepResult
    where
        F: Fn(u64) -> Box<dyn Workload> + Sync,
    {
        // Points are independent; parallelize across them too.
        let mut points: Vec<Option<f64>> = vec![None];
        points.extend(self.config.caps_w.iter().map(|&c| Some(c)));
        let metrics: Vec<RunMetrics> =
            points.par_iter().map(|&cap| self.run_point(&factory, cap)).collect();
        SweepResult {
            workload: name.to_string(),
            baseline: metrics[0],
            rows: metrics[1..].to_vec(),
        }
    }
}

fn average(cap_w: Option<f64>, runs: &[RunMetrics]) -> RunMetrics {
    let n = runs.len() as f64;
    let mut acc = RunMetrics { cap_w, ..Default::default() };
    for r in runs {
        acc.avg_power_w += r.avg_power_w / n;
        acc.energy_j += r.energy_j / n;
        acc.avg_freq_mhz += r.avg_freq_mhz / n;
        acc.time_s += r.time_s / n;
        acc.l1_misses += r.l1_misses / n;
        acc.l2_misses += r.l2_misses / n;
        acc.l3_misses += r.l3_misses / n;
        acc.dtlb_misses += r.dtlb_misses / n;
        acc.itlb_misses += r.itlb_misses / n;
        acc.instr_committed += r.instr_committed / n;
        acc.instr_executed += r.instr_executed / n;
        acc.dram_accesses += r.dram_accesses / n;
        acc.quality += r.quality / n;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use capsim_apps::kernels::AluBurst;

    fn sweep() -> SweepResult {
        let cfg = ExperimentConfig {
            caps_w: vec![150.0, 125.0],
            runs_per_point: 2,
            base_seed: 7,
            ladder: LadderKind::Full,
            control_period_us: 10.0,
        };
        CapSweep::new(cfg).run("alu", |_seed| Box::new(AluBurst { iters: 1_500_000 }))
    }

    #[test]
    fn sweep_produces_baseline_plus_one_row_per_cap() {
        let s = sweep();
        assert_eq!(s.rows.len(), 2);
        assert_eq!(s.baseline.cap_w, None);
        assert!(s.row(150.0).is_some());
        assert!(s.row(119.0).is_none());
    }

    #[test]
    fn lower_caps_mean_longer_time_and_less_power() {
        let s = sweep();
        let base = s.baseline;
        let low = *s.row(125.0).unwrap();
        assert!(low.time_s > base.time_s, "{} vs {}", low.time_s, base.time_s);
        assert!(low.avg_power_w < base.avg_power_w);
        assert!(low.avg_freq_mhz < base.avg_freq_mhz);
    }

    #[test]
    fn committed_instructions_are_cap_invariant() {
        let s = sweep();
        for r in &s.rows {
            assert_eq!(r.instr_committed, s.baseline.instr_committed);
        }
    }

    #[test]
    fn pct_diff_matches_manual_computation() {
        let base = RunMetrics { time_s: 10.0, ..Default::default() };
        let row = RunMetrics { time_s: 14.0, ..Default::default() };
        assert!((row.pct_diff(&base, |m| m.time_s) - 40.0).abs() < 1e-12);
        assert_eq!(row.pct_diff(&RunMetrics::default(), |m| m.time_s), 0.0);
    }

    #[test]
    fn dvfs_only_ladder_cannot_reach_deep_caps() {
        let mk = |ladder| {
            let cfg = ExperimentConfig {
                caps_w: vec![124.0],
                runs_per_point: 1,
                base_seed: 3,
                ladder,
                control_period_us: 10.0,
            };
            // Long enough (tens of ms simulated) for the 200 µs control
            // loop to reach its equilibrium rung.
            CapSweep::new(cfg)
                .run("alu", |_| Box::new(AluBurst { iters: 4_000_000 }))
                .row(124.0)
                .unwrap()
                .avg_power_w
        };
        let full = mk(LadderKind::Full);
        let dvfs = mk(LadderKind::DvfsOnly);
        assert!(dvfs > full + 1.0, "DVFS-only floors higher: {dvfs} vs {full}");
    }
}
