//! Table I and Table II renderers.
//!
//! Table I: baseline power and execution time for both applications.
//! Table II: per-cap power/energy/frequency/time and cache/TLB misses,
//! each with the paper's "% Diff (rounded to the closest integer) between
//! each datum and the baseline datum" column.

use crate::report::{hms, markdown_table};
use crate::runner::{RunMetrics, SweepResult};

/// Render Table I from the baselines of the two sweeps.
pub fn table1(sweeps: &[&SweepResult]) -> String {
    let rows: Vec<Vec<String>> = sweeps
        .iter()
        .map(|s| {
            vec![
                s.workload.clone(),
                format!("{:.0}", s.baseline.avg_power_w),
                hms(s.baseline.time_s),
            ]
        })
        .collect();
    markdown_table(&["Code", "Average Node Power Consumption (Watts)", "Execution Time"], &rows)
}

fn pd(row: &RunMetrics, base: &RunMetrics, f: impl Fn(&RunMetrics) -> f64) -> String {
    format!("{:.0}", row.pct_diff(base, f))
}

/// Render one application's half of Table II (performance block:
/// power / energy / frequency / time).
pub fn table2_performance(s: &SweepResult, label_prefix: &str) -> String {
    let base = &s.baseline;
    let mut rows = Vec::new();
    for (i, row) in s.all_rows().iter().enumerate() {
        let label = format!("{label_prefix}{i}");
        let cap = match row.cap_w {
            Some(c) => format!("{c:.0}"),
            None => "baseline".to_string(),
        };
        rows.push(vec![
            label,
            cap,
            format!("{:.1}", row.avg_power_w),
            pd(row, base, |m| m.avg_power_w),
            format!("{:.1}", row.energy_j),
            pd(row, base, |m| m.energy_j),
            format!("{:.0}", row.avg_freq_mhz),
            pd(row, base, |m| m.avg_freq_mhz),
            hms(row.time_s),
            pd(row, base, |m| m.time_s),
        ]);
    }
    markdown_table(
        &[
            "Expt. Label",
            "Power Cap (W)",
            "Avg Node Power (W)",
            "% Diff",
            "Energy (J)",
            "% Diff",
            "Avg Freq (MHz)",
            "% Diff",
            "Exec Time",
            "% Diff",
        ],
        &rows,
    )
}

/// Render one application's memory block of Table II (L1/L2/L3 and TLB
/// misses with % diffs).
pub fn table2_memory(s: &SweepResult, label_prefix: &str) -> String {
    let base = &s.baseline;
    let mut rows = Vec::new();
    for (i, row) in s.all_rows().iter().enumerate() {
        rows.push(vec![
            format!("{label_prefix}{i}"),
            format!("{:.0}", row.l1_misses),
            pd(row, base, |m| m.l1_misses),
            format!("{:.0}", row.l2_misses),
            pd(row, base, |m| m.l2_misses),
            format!("{:.0}", row.l3_misses),
            pd(row, base, |m| m.l3_misses),
            format!("{:.0}", row.dtlb_misses),
            pd(row, base, |m| m.dtlb_misses),
            format!("{:.0}", row.itlb_misses),
            pd(row, base, |m| m.itlb_misses),
        ]);
    }
    markdown_table(
        &[
            "Expt. Label",
            "L1 Misses",
            "% Diff",
            "L2 Misses",
            "% Diff",
            "L3 Misses",
            "% Diff",
            "TLB Data Misses",
            "% Diff",
            "TLB Instr Misses",
            "% Diff",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::RunMetrics;

    fn fake_sweep() -> SweepResult {
        let base = RunMetrics {
            cap_w: None,
            avg_power_w: 153.1,
            energy_j: 13626.2,
            avg_freq_mhz: 2701.0,
            time_s: 89.0,
            l1_misses: 1000.0,
            l2_misses: 100.0,
            l3_misses: 10.0,
            dtlb_misses: 50.0,
            itlb_misses: 5.0,
            ..Default::default()
        };
        let capped = RunMetrics {
            cap_w: Some(120.0),
            avg_power_w: 124.9,
            energy_j: 395921.2,
            avg_freq_mhz: 1200.0,
            time_s: 3168.0,
            l1_misses: 1020.0,
            l2_misses: 344.0,
            l3_misses: 45.0,
            dtlb_misses: 53.0,
            itlb_misses: 325.0,
            ..Default::default()
        };
        SweepResult { workload: "Stereo Matching".into(), baseline: base, rows: vec![capped] }
    }

    #[test]
    fn table1_contains_baseline_power_and_time() {
        let s = fake_sweep();
        let t = table1(&[&s]);
        assert!(t.contains("Stereo Matching"));
        assert!(t.contains("153"));
        assert!(t.contains("0:01:29"));
    }

    #[test]
    fn table2_performance_pct_diffs_match_the_paper_arithmetic() {
        let s = fake_sweep();
        let t = table2_performance(&s, "A");
        // time: 3168/89 - 1 = +3460 %; power: 124.9/153.1 - 1 ≈ -18 %.
        assert!(t.contains("3460"), "{t}");
        assert!(t.contains("-18"), "{t}");
        assert!(t.contains("baseline"));
        assert!(t.contains("A0") && t.contains("A1"));
    }

    #[test]
    fn table2_memory_shows_miss_blowups() {
        let s = fake_sweep();
        let t = table2_memory(&s, "A");
        // L2: 344/100 → +244 %; iTLB: 325/5 → +6400 %.
        assert!(t.contains("244"), "{t}");
        assert!(t.contains("6400"), "{t}");
    }
}
