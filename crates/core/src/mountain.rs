//! Figures 3 and 4: the stride-microbenchmark memory mountain, with and
//! without a power cap.

use capsim_apps::{StrideBench, Workload};
use capsim_node::{Machine, MachineConfig, PowerCap};

use crate::report::csv;

/// The collected matrix for one machine condition.
#[derive(Clone, Debug)]
pub struct MountainMatrix {
    pub label: String,
    pub sizes: Vec<u64>,
    pub strides: Vec<u64>,
    /// `ns[size_idx][stride_idx]`; `None` where stride > size/2.
    pub ns: Vec<Vec<Option<f64>>>,
}

impl MountainMatrix {
    /// Average ns at the given cell.
    pub fn at(&self, size: u64, stride: u64) -> Option<f64> {
        let si = self.sizes.iter().position(|&s| s == size)?;
        let ti = self.strides.iter().position(|&s| s == stride)?;
        self.ns[si][ti]
    }

    /// CSV rendering: rows = sizes, columns = strides.
    pub fn to_csv(&self) -> String {
        let mut header: Vec<String> = vec!["size\\stride".to_string()];
        header.extend(self.strides.iter().map(|s| human(*s)));
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let rows: Vec<Vec<String>> = self
            .sizes
            .iter()
            .zip(&self.ns)
            .map(|(size, row)| {
                let mut cells = vec![human(*size)];
                cells.extend(row.iter().map(|v| match v {
                    Some(ns) => format!("{ns:.2}"),
                    None => String::new(),
                }));
                cells
            })
            .collect();
        csv(&header_refs, &rows)
    }
}

/// Pretty byte sizes ("4K", "64M") like the paper's axis labels.
pub fn human(bytes: u64) -> String {
    if bytes >= 1 << 20 && bytes.is_multiple_of(1 << 20) {
        format!("{}M", bytes >> 20)
    } else if bytes >= 1 << 10 && bytes.is_multiple_of(1 << 10) {
        format!("{}K", bytes >> 10)
    } else {
        format!("{bytes}B")
    }
}

/// Driver for one Figure 3/4 run.
pub struct MountainRun {
    pub bench: StrideBench,
    /// `None` → Figure 3 (no cap); `Some(120.0)` → Figure 4.
    pub cap_w: Option<f64>,
    pub seed: u64,
}

impl MountainRun {
    /// Execute and collect the matrix. Under a cap, a warm-up workload
    /// first drives the BMC to its equilibrium rung, as the paper's capped
    /// microbenchmark runs happened on an already-throttled node.
    pub fn collect(mut self, label: &str) -> MountainMatrix {
        let mut m = Machine::new(MachineConfig::e5_2680(self.seed));
        if let Some(w) = self.cap_w {
            m.set_power_cap(Some(PowerCap::new(w).unwrap()));
            // Drive the control loop to equilibrium before measuring.
            let block = m.code_block(96, 24);
            let scratch = m.alloc(1 << 20);
            for i in 0..400_000u64 {
                m.exec_block(&block);
                m.load(scratch.at((i * 64) % (1 << 20)));
            }
        }
        self.bench.run(&mut m);
        let sizes = self.bench.sizes.clone();
        let strides = self.bench.strides.clone();
        let ns = sizes
            .iter()
            .map(|&size| {
                strides
                    .iter()
                    .map(|&stride| self.bench.point(size, stride).map(|p| p.avg_ns))
                    .collect()
            })
            .collect();
        MountainMatrix { label: label.to_string(), sizes, strides, ns }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_bench() -> StrideBench {
        StrideBench {
            sizes: vec![4 * 1024, 256 * 1024],
            strides: vec![64, 1024],
            max_accesses_per_cell: 5_000,
            results: Vec::new(),
        }
    }

    #[test]
    fn uncapped_matrix_shows_the_hierarchy() {
        let m = MountainRun { bench: small_bench(), cap_w: None, seed: 1 }.collect("fig3");
        let l1 = m.at(4 * 1024, 64).unwrap();
        let l2plus = m.at(256 * 1024, 1024).unwrap();
        assert!(l2plus > l1 * 2.0, "{l1} vs {l2plus}");
    }

    #[test]
    fn capped_matrix_is_uniformly_slower() {
        // The Figure 4 signature: every level slower under the 120 W cap.
        let f3 = MountainRun { bench: small_bench(), cap_w: None, seed: 2 }.collect("fig3");
        let f4 = MountainRun { bench: small_bench(), cap_w: Some(120.0), seed: 2 }.collect("fig4");
        for (&size, (r3, r4)) in f3.sizes.iter().zip(f3.ns.iter().zip(&f4.ns)) {
            for (c3, c4) in r3.iter().zip(r4) {
                if let (Some(a), Some(b)) = (c3, c4) {
                    assert!(b > &(a * 1.5), "size {size}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn csv_has_axis_labels() {
        let m = MountainRun { bench: small_bench(), cap_w: None, seed: 3 }.collect("fig3");
        let c = m.to_csv();
        assert!(c.contains("4K"));
        assert!(c.contains("256K"));
        assert!(c.starts_with("size\\stride,64B,1K"));
    }

    #[test]
    fn human_sizes() {
        assert_eq!(human(8), "8B");
        assert_eq!(human(4096), "4K");
        assert_eq!(human(32 << 20), "32M");
    }
}
