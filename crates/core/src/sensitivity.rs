//! Calibration-sensitivity analysis.
//!
//! The power model's constants (DESIGN.md §3) are calibrated to four paper
//! anchors. A reproduction is only credible if its *qualitative*
//! conclusions survive perturbing those constants — otherwise the shape
//! was dialed in, not produced by the mechanisms. This module perturbs
//! one constant at a time and re-checks the invariants:
//!
//! 1. idle < DVFS floor < ladder floor band < baseline,
//! 2. capped runs are slower and draw less power than uncapped,
//! 3. unreachable caps pin the deepest rung (exceptions logged).

use capsim_node::{Machine, MachineConfig, PowerCap};
use capsim_power::PowerParams;

/// Which constant a perturbation touches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Knob {
    KDyn,
    KLeak,
    UncoreActive,
    DramBackground,
    PlatformBase,
}

impl Knob {
    pub const ALL: [Knob; 5] =
        [Knob::KDyn, Knob::KLeak, Knob::UncoreActive, Knob::DramBackground, Knob::PlatformBase];

    /// Apply a multiplicative perturbation to the knob.
    pub fn scale(&self, params: &mut PowerParams, factor: f64) {
        match self {
            Knob::KDyn => params.k_dyn_w *= factor,
            Knob::KLeak => params.k_leak_w *= factor,
            Knob::UncoreActive => params.uncore_active_w *= factor,
            Knob::DramBackground => params.dram_background_w *= factor,
            Knob::PlatformBase => params.platform_w *= factor,
        }
    }
}

/// Result of checking the invariants under one perturbation.
#[derive(Clone, Copy, Debug)]
pub struct SensitivityOutcome {
    pub knob: Knob,
    pub factor: f64,
    pub baseline_power_w: f64,
    pub capped_power_w: f64,
    pub slowdown: f64,
    /// All three qualitative invariants held.
    pub invariants_hold: bool,
}

/// Run a compact capped-vs-uncapped pair under perturbed constants.
pub fn check(knob: Knob, factor: f64, seed: u64) -> SensitivityOutcome {
    let build = || {
        let mut cfg = MachineConfig::e5_2680(seed);
        knob.scale(&mut cfg.power, factor);
        cfg.control_period_us = 10.0;
        cfg.meter_window_s = 2e-4;
        cfg
    };
    let work = |m: &mut Machine| {
        let r = m.alloc(1 << 20);
        let block = m.code_block(96, 24);
        for i in 0..200_000u64 {
            m.exec_block(&block);
            m.load(r.at((i * 64) % (1 << 20)));
        }
    };
    let mut base = Machine::new(build());
    work(&mut base);
    let base = base.finish_run();

    let mut capped = Machine::new(build());
    // Cap 10 W under this configuration's own baseline, so the check is
    // meaningful whatever the perturbation did to absolute power.
    let cap_w = base.avg_power_w - 10.0;
    capped.set_power_cap(Some(PowerCap::new(cap_w).unwrap()));
    work(&mut capped);
    let capped = capped.finish_run();

    let mut deep = Machine::new(build());
    deep.set_power_cap(Some(PowerCap::new(50.0).unwrap())); // absurd: unreachable
    work(&mut deep);
    let deep = deep.finish_run();

    let invariants_hold = capped.wall_s > base.wall_s
        && capped.avg_power_w < base.avg_power_w
        && capped.avg_power_w <= cap_w + 2.0
        && deep.bmc_stats.2 > 0;
    SensitivityOutcome {
        knob,
        factor,
        baseline_power_w: base.avg_power_w,
        capped_power_w: capped.avg_power_w,
        slowdown: capped.wall_s / base.wall_s,
        invariants_hold,
    }
}

/// Sweep all knobs at ±`pct` percent; returns every outcome.
pub fn sweep(pct: f64, seed: u64) -> Vec<SensitivityOutcome> {
    let mut out = Vec::new();
    for knob in Knob::ALL {
        for factor in [1.0 - pct / 100.0, 1.0 + pct / 100.0] {
            out.push(check(knob, factor, seed));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conclusions_survive_ten_percent_perturbations() {
        for o in sweep(10.0, 3) {
            assert!(
                o.invariants_hold,
                "{:?} x{:.2}: baseline {:.1} W, capped {:.1} W, slowdown {:.2}",
                o.knob, o.factor, o.baseline_power_w, o.capped_power_w, o.slowdown
            );
            assert!(o.slowdown > 1.0);
        }
    }

    #[test]
    fn knob_scaling_touches_the_right_field() {
        let mut p = PowerParams::e5_2680_node();
        let orig = p;
        Knob::KDyn.scale(&mut p, 2.0);
        assert_eq!(p.k_dyn_w, orig.k_dyn_w * 2.0);
        assert_eq!(p.k_leak_w, orig.k_leak_w);
        Knob::PlatformBase.scale(&mut p, 0.5);
        assert_eq!(p.platform_w, orig.platform_w * 0.5);
    }
}
