//! Artifact persistence: write the regenerated tables/figures to disk so
//! they can be plotted or diffed across runs.
//!
//! Harness binaries call [`OutputDir::from_env`]; when `CAPSIM_OUT` is
//! set they mirror everything they print into that directory and append
//! each file to a `MANIFEST.txt` with a short description — a plain-text
//! provenance record of what produced what.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// A directory artifacts are written into.
#[derive(Clone, Debug)]
pub struct OutputDir {
    root: PathBuf,
}

impl OutputDir {
    /// From `CAPSIM_OUT`; `None` when unset (binaries then only print).
    pub fn from_env() -> Option<OutputDir> {
        std::env::var_os("CAPSIM_OUT").map(|p| OutputDir { root: PathBuf::from(p) })
    }

    /// Open/create an explicit directory.
    pub fn at(path: impl Into<PathBuf>) -> OutputDir {
        OutputDir { root: path.into() }
    }

    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Write `contents` to `name` under the output root and log it in the
    /// manifest. Returns the full path.
    pub fn write(&self, name: &str, description: &str, contents: &str) -> std::io::Result<PathBuf> {
        fs::create_dir_all(&self.root)?;
        let path = self.root.join(name);
        fs::write(&path, contents)?;
        let mut manifest = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.root.join("MANIFEST.txt"))?;
        writeln!(manifest, "{name}\t{description}")?;
        Ok(path)
    }
}

/// Convenience: write if an output dir is configured, otherwise no-op.
/// IO errors are reported to stderr rather than killing a long harness
/// run whose numbers are already printed.
pub fn maybe_write(out: &Option<OutputDir>, name: &str, description: &str, contents: &str) {
    if let Some(dir) = out {
        if let Err(e) = dir.write(name, description, contents) {
            eprintln!("warning: could not write {name}: {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!("capsim-persist-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&p);
        p
    }

    #[test]
    fn write_creates_files_and_manifest() {
        let dir = tmpdir("a");
        let out = OutputDir::at(&dir);
        let p1 = out.write("fig1.csv", "figure 1 series", "cap,x\n120,1\n").unwrap();
        out.write("table2.md", "table 2", "| a |\n").unwrap();
        assert!(p1.exists());
        let manifest = fs::read_to_string(dir.join("MANIFEST.txt")).unwrap();
        assert!(manifest.contains("fig1.csv\tfigure 1 series"));
        assert!(manifest.contains("table2.md"));
        assert_eq!(fs::read_to_string(p1).unwrap(), "cap,x\n120,1\n");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn maybe_write_is_a_noop_without_a_dir() {
        maybe_write(&None, "x.csv", "d", "data"); // must not panic or write
    }

    #[test]
    fn rewriting_a_file_replaces_contents() {
        let dir = tmpdir("b");
        let out = OutputDir::at(&dir);
        out.write("f.csv", "first", "1").unwrap();
        out.write("f.csv", "second", "2").unwrap();
        assert_eq!(fs::read_to_string(dir.join("f.csv")).unwrap(), "2");
        let _ = fs::remove_dir_all(&dir);
    }
}
