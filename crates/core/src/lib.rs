//! `capsim-core` — the power-capping study itself.
//!
//! Reusable machinery that reproduces every artifact of the paper's
//! evaluation:
//!
//! * [`runner`] — the cap-sweep experiment: N seeded runs per power cap,
//!   averaged like the paper's five runs, executed in parallel with Rayon
//!   (parallelism is across independent deterministic simulations, so
//!   results are identical to a sequential sweep),
//! * [`table`] — Table I and Table II renderers with the paper's
//!   %-difference columns,
//! * [`figures`] — the normalized Figure 1/2 series,
//! * [`mountain`] — the Figure 3/4 stride-microbenchmark matrices,
//! * [`report`] — markdown/CSV/ASCII-plot rendering helpers,
//! * [`detector`] — future-work item 2: microbenchmark probes that
//!   identify *which* throttling techniques are currently active,
//! * [`amenability`] — future-work item 4: a counter-profile score that
//!   predicts how amenable an application is to power-capped execution.

pub mod amenability;
pub mod detector;
pub mod figures;
pub mod mountain;
pub mod persist;
pub mod report;
pub mod runner;
pub mod sensitivity;
pub mod table;

pub use amenability::{amenability_score, AmenabilityProfile};
pub use detector::{DetectedTechniques, TechniqueDetector};
pub use figures::{normalized_series, FigureSeries};
pub use mountain::{MountainMatrix, MountainRun};
pub use persist::OutputDir;
pub use runner::{CapSweep, ExperimentConfig, LadderKind, RunMetrics, SweepResult};
pub use sensitivity::{Knob, SensitivityOutcome};
