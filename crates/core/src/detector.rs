//! The technique detector (future-work item 2).
//!
//! §V: "We would like to … determine, using microbenchmarks, what
//! techniques other than DVFS are being used to manage power
//! consumption." This module does that determination: it runs a battery
//! of targeted probes on a (possibly throttled) machine and infers which
//! mechanisms are active, using only what real user-level software could
//! observe — wall time, APERF/MPERF-style frequency readings, and PMU
//! counters.
//!
//! | probe | observable | technique inferred |
//! |---|---|---|
//! | ALU burst | unhalted freq vs nominal | DVFS |
//! | ALU burst | unhalted time / wall time | T-state duty cycling |
//! | 160 KiB serial loop | cycles per access | L2 way gating |
//! | 12 MiB serial loop | L3 miss ratio | L3 way gating |
//! | 56-page stride loop | DTLB miss ratio | DTLB shrink |
//! | 100-page call loop | ITLB miss ratio | ITLB shrink |
//! | 64 MiB pointer chase | non-core ns per hop | memory gating |

use capsim_apps::kernels::CodeLayout;
use capsim_node::Machine;

/// What the probes concluded.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DetectedTechniques {
    pub dvfs: bool,
    pub duty_cycling: bool,
    pub l2_gating: bool,
    pub l3_gating: bool,
    pub dtlb_shrink: bool,
    pub itlb_shrink: bool,
    pub mem_gating: bool,
    /// Raw estimates backing the booleans.
    pub est_freq_mhz: f64,
    pub est_duty: f64,
    pub est_l2_cycles: f64,
    pub est_l3_miss_ratio: f64,
    pub est_dtlb_miss_ratio: f64,
    pub est_itlb_miss_ratio: f64,
    pub est_dram_ns: f64,
}

impl DetectedTechniques {
    /// True if any throttling beyond plain DVFS is active.
    pub fn beyond_dvfs(&self) -> bool {
        self.duty_cycling
            || self.l2_gating
            || self.l3_gating
            || self.dtlb_shrink
            || self.itlb_shrink
            || self.mem_gating
    }
}

/// The probe battery.
pub struct TechniqueDetector {
    /// Nominal (P0) frequency used as the DVFS reference.
    pub nominal_mhz: f64,
}

impl Default for TechniqueDetector {
    fn default() -> Self {
        TechniqueDetector { nominal_mhz: 2700.0 }
    }
}

impl TechniqueDetector {
    /// Run all probes on `m`. The probes execute on the machine (they are
    /// microbenchmarks, not introspection) and consume a few simulated
    /// milliseconds.
    pub fn probe(&self, m: &mut Machine) -> DetectedTechniques {
        let mut d = DetectedTechniques::default();

        // --- Probe 1: frequency + duty (ALU burst). ----------------------
        let (c0, n0) = m.freq_meter().totals();
        let t0 = m.now_s();
        let block = m.code_block(128, 32);
        for _ in 0..40_000 {
            m.exec_block(&block);
        }
        let (c1, n1) = m.freq_meter().totals();
        let wall = (m.now_s() - t0).max(1e-12);
        d.est_freq_mhz = if n1 > n0 { (c1 - c0) / (n1 - n0) * 1e3 } else { 0.0 };
        d.est_duty = ((n1 - n0) * 1e-9 / wall).clamp(0.0, 1.0);
        d.dvfs = d.est_freq_mhz < self.nominal_mhz - 150.0;
        d.duty_cycling = d.est_duty < 0.85;

        // --- Probe 2: L2 capacity. A 480 KiB buffer walked at 192 B
        // stride (defeats the next-line prefetcher) touches 160 KiB of
        // distinct lines: resident in the 8-way 256 KiB L2, thrashing in
        // a ≤4-way gated one. --------------------------------------------
        let buf = m.alloc(480 * 1024);
        let accesses = 480 * 1024 / 192;
        for pass in 0..3 {
            let (cy0, _) = m.freq_meter().totals();
            for i in 0..accesses {
                m.load_serial(buf.at(i * 192));
            }
            if pass == 2 {
                let (cy1, _) = m.freq_meter().totals();
                d.est_l2_cycles = (cy1 - cy0) / accesses as f64;
            }
        }
        d.l2_gating = d.est_l2_cycles > 16.0;

        // --- Probe 3: L3 capacity (12 MiB fits 20-way, not ≤10-way). -----
        let big = m.alloc(12 << 20);
        let big_lines = (12u64 << 20) / 64;
        let mut miss_base = m.mem_stats_now();
        for pass in 0..2 {
            if pass == 1 {
                miss_base = m.mem_stats_now();
            }
            let mut i = 0u64;
            while i < big_lines {
                m.load(big.at(i * 64));
                i += 4; // 256 B stride defeats the prefetcher
            }
        }
        let dm = m.mem_stats_now() - miss_base;
        d.est_l3_miss_ratio = dm.l3_misses as f64 / dm.l3_accesses.max(1) as f64;
        d.l3_gating = d.est_l3_miss_ratio > 0.30;

        // --- Probe 4: DTLB (56 pages fit 64 entries, not ≤48). -----------
        let pages = m.alloc(56 * 4096);
        let before = m.mem_stats_now();
        for r in 0..40u64 {
            for p in 0..56u64 {
                m.load(pages.at(p * 4096 + (r % 64) * 64));
            }
        }
        let dm = m.mem_stats_now() - before;
        d.est_dtlb_miss_ratio = dm.dtlb_misses as f64 / dm.dtlb_lookups.max(1) as f64;
        d.dtlb_shrink = d.est_dtlb_miss_ratio > 0.05;

        // --- Probe 5: ITLB (100 code pages fit 128 entries, not ≤96). ----
        let mut layout = CodeLayout::new(m, 100, 6);
        let before = m.mem_stats_now();
        for _ in 0..100 * 30 {
            layout.call_next(m);
        }
        let dm = m.mem_stats_now() - before;
        d.est_itlb_miss_ratio = dm.itlb_misses as f64 / dm.itlb_lookups.max(1) as f64;
        d.itlb_shrink = d.est_itlb_miss_ratio > 0.05;

        // --- Probe 6: DRAM latency (pointer-chase style, 64 MiB). --------
        // Estimate the non-core (DRAM) share of wall time by subtracting
        // the core share implied by the frequency/duty estimates.
        let huge = m.alloc(64 << 20);
        let hops = 20_000u64;
        let (cc0, _) = m.freq_meter().totals();
        let t0 = m.now_s();
        let mut addr = 0u64;
        for i in 0..hops {
            m.load_serial(huge.at(addr));
            // A large-stride walk that defeats caches and row buffers.
            addr = (addr + 64 * 1021 + i * 4096) % (64 << 20);
        }
        let (cc1, _) = m.freq_meter().totals();
        let wall_ns = (m.now_s() - t0) * 1e9;
        let core_ns = (cc1 - cc0) * 1e3 / d.est_freq_mhz.max(1.0) / d.est_duty.max(1e-3);
        d.est_dram_ns = ((wall_ns - core_ns) / hops as f64).max(0.0);
        d.mem_gating = d.est_dram_ns > 130.0;

        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capsim_mem::{MemGateLevel, MemReconfig};
    use capsim_node::MachineConfig;

    fn machine(seed: u64) -> Machine {
        Machine::new(MachineConfig::e5_2680(seed))
    }

    #[test]
    fn clean_machine_triggers_nothing() {
        let mut m = machine(1);
        let d = TechniqueDetector::default().probe(&mut m);
        assert!(!d.dvfs, "freq {}", d.est_freq_mhz);
        assert!(!d.duty_cycling, "duty {}", d.est_duty);
        assert!(!d.l2_gating, "l2 {}", d.est_l2_cycles);
        assert!(!d.l3_gating, "l3 {}", d.est_l3_miss_ratio);
        assert!(!d.dtlb_shrink, "dtlb {}", d.est_dtlb_miss_ratio);
        assert!(!d.itlb_shrink, "itlb {}", d.est_itlb_miss_ratio);
        assert!(!d.mem_gating, "dram {}", d.est_dram_ns);
        assert!(!d.beyond_dvfs());
    }

    #[test]
    fn detects_dvfs() {
        let mut m = machine(2);
        m.force_throttle(10, 16); // 1700 MHz, full duty
        let d = TechniqueDetector::default().probe(&mut m);
        assert!(d.dvfs, "freq {}", d.est_freq_mhz);
        assert!((d.est_freq_mhz - 1700.0).abs() < 50.0);
        assert!(!d.duty_cycling);
    }

    #[test]
    fn detects_duty_cycling() {
        let mut m = machine(3);
        m.force_throttle(15, 4); // P-min at 4/16 duty
        let d = TechniqueDetector::default().probe(&mut m);
        assert!(d.duty_cycling, "duty {}", d.est_duty);
        assert!((d.est_duty - 0.25).abs() < 0.1);
        assert!((d.est_freq_mhz - 1200.0).abs() < 50.0, "reading stays at P-state");
    }

    #[test]
    fn detects_l2_and_l3_way_gating() {
        let mut m = machine(4);
        let mut r = MemReconfig::full();
        r.l2_ways = 2;
        r.l3_ways = 6;
        m.apply_mem_reconfig(r);
        let d = TechniqueDetector::default().probe(&mut m);
        assert!(d.l2_gating, "l2 cycles {}", d.est_l2_cycles);
        assert!(d.l3_gating, "l3 ratio {}", d.est_l3_miss_ratio);
    }

    #[test]
    fn detects_tlb_shrink() {
        let mut m = machine(5);
        let mut r = MemReconfig::full();
        r.itlb_entries = 32;
        r.dtlb_entries = 32;
        m.apply_mem_reconfig(r);
        let d = TechniqueDetector::default().probe(&mut m);
        assert!(d.itlb_shrink, "itlb {}", d.est_itlb_miss_ratio);
        assert!(d.dtlb_shrink, "dtlb {}", d.est_dtlb_miss_ratio);
    }

    #[test]
    fn detects_memory_gating() {
        let mut m = machine(6);
        let mut r = MemReconfig::full();
        r.mem_gate = MemGateLevel::Severe;
        m.apply_mem_reconfig(r);
        let d = TechniqueDetector::default().probe(&mut m);
        assert!(d.mem_gating, "dram {}", d.est_dram_ns);
        assert!(d.beyond_dvfs());
    }
}
