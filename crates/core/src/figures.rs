//! Figures 1 and 2: normalized per-cap series.
//!
//! The paper plots each metric normalized so its largest value is 1.0
//! (all series fit the same 0–1.2 axis). Figure 1 (SIRE/RSM) shows TLB
//! instruction misses, frequency, time, power and energy; Figure 2
//! (Stereo Matching) adds the L2 and L3 miss rates.

use crate::report::{ascii_plot, csv};
use crate::runner::SweepResult;

/// A named series over the experiment points (baseline + caps).
#[derive(Clone, Debug, PartialEq)]
pub struct FigureSeries {
    pub name: &'static str,
    /// Values normalized to the series' own maximum.
    pub values: Vec<f64>,
}

/// Normalize `raw` to its max (all-zero stays all-zero).
pub fn normalized_series(name: &'static str, raw: &[f64]) -> FigureSeries {
    let max = raw.iter().copied().fold(f64::MIN, f64::max);
    let values =
        if max <= 0.0 { vec![0.0; raw.len()] } else { raw.iter().map(|v| v / max).collect() };
    FigureSeries { name, values }
}

/// The x-axis labels: "baseline", then the caps.
pub fn x_labels(s: &SweepResult) -> Vec<String> {
    s.all_rows()
        .iter()
        .map(|r| match r.cap_w {
            Some(c) => format!("{c:.0}"),
            None => "base".to_string(),
        })
        .collect()
}

/// Build the Figure 1 series set (SIRE/RSM: iTLB misses, frequency, time,
/// power, energy).
pub fn figure1_series(s: &SweepResult) -> Vec<FigureSeries> {
    let rows = s.all_rows();
    let grab = |f: fn(&crate::runner::RunMetrics) -> f64| -> Vec<f64> {
        rows.iter().map(|r| f(r)).collect()
    };
    vec![
        normalized_series("TLB Instruction Misses", &grab(|r| r.itlb_misses)),
        normalized_series("Frequency", &grab(|r| r.avg_freq_mhz)),
        normalized_series("Time", &grab(|r| r.time_s)),
        normalized_series("Power Consumption", &grab(|r| r.avg_power_w)),
        normalized_series("Energy Consumption", &grab(|r| r.energy_j)),
    ]
}

/// Build the Figure 2 series set (Stereo Matching: adds L2/L3 miss rates).
pub fn figure2_series(s: &SweepResult) -> Vec<FigureSeries> {
    let rows = s.all_rows();
    let grab = |f: fn(&crate::runner::RunMetrics) -> f64| -> Vec<f64> {
        rows.iter().map(|r| f(r)).collect()
    };
    let mut v = vec![
        normalized_series("L2 Miss Rate", &grab(|r| r.l2_misses)),
        normalized_series("L3 Miss Rate", &grab(|r| r.l3_misses)),
    ];
    v.extend(figure1_series(s));
    v
}

/// Render a figure as CSV (one column per series).
pub fn figure_csv(labels: &[String], series: &[FigureSeries]) -> String {
    let mut header: Vec<&str> = vec!["cap"];
    header.extend(series.iter().map(|s| s.name));
    let rows: Vec<Vec<String>> = labels
        .iter()
        .enumerate()
        .map(|(i, l)| {
            let mut row = vec![l.clone()];
            row.extend(series.iter().map(|s| format!("{:.4}", s.values[i])));
            row
        })
        .collect();
    csv(&header, &rows)
}

/// Render a figure as an ASCII plot.
pub fn figure_ascii(labels: &[String], series: &[FigureSeries]) -> String {
    let plot_series: Vec<(&str, Vec<f64>)> =
        series.iter().map(|s| (s.name, s.values.clone())).collect();
    ascii_plot(labels, &plot_series, 14)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::RunMetrics;

    fn sweep() -> SweepResult {
        let mk = |cap, t, f, p| RunMetrics {
            cap_w: cap,
            time_s: t,
            avg_freq_mhz: f,
            avg_power_w: p,
            energy_j: t * p,
            itlb_misses: 100.0,
            l2_misses: 10.0,
            l3_misses: 5.0,
            ..Default::default()
        };
        SweepResult {
            workload: "w".into(),
            baseline: mk(None, 89.0, 2701.0, 153.0),
            rows: vec![
                mk(Some(140.0), 124.0, 2168.0, 136.0),
                mk(Some(120.0), 3168.0, 1200.0, 124.0),
            ],
        }
    }

    #[test]
    fn normalization_puts_the_max_at_one() {
        let s = normalized_series("x", &[2.0, 8.0, 4.0]);
        assert_eq!(s.values, vec![0.25, 1.0, 0.5]);
    }

    #[test]
    fn all_zero_series_stays_zero() {
        let s = normalized_series("x", &[0.0, 0.0]);
        assert_eq!(s.values, vec![0.0, 0.0]);
    }

    #[test]
    fn time_series_peaks_at_the_lowest_cap() {
        let sw = sweep();
        let figs = figure1_series(&sw);
        let time = figs.iter().find(|f| f.name == "Time").unwrap();
        assert_eq!(*time.values.last().unwrap(), 1.0);
        assert!(time.values[0] < 0.05, "baseline tiny relative to 120 W");
    }

    #[test]
    fn figure2_includes_miss_rate_series() {
        let sw = sweep();
        let names: Vec<_> = figure2_series(&sw).iter().map(|f| f.name).collect();
        assert!(names.contains(&"L2 Miss Rate"));
        assert!(names.contains(&"L3 Miss Rate"));
        assert!(names.contains(&"Energy Consumption"));
    }

    #[test]
    fn csv_has_one_row_per_point() {
        let sw = sweep();
        let labels = x_labels(&sw);
        let c = figure_csv(&labels, &figure1_series(&sw));
        assert_eq!(c.lines().count(), 1 + labels.len());
        assert!(c.starts_with("cap,TLB Instruction Misses"));
    }

    #[test]
    fn x_labels_start_at_baseline() {
        let sw = sweep();
        let l = x_labels(&sw);
        assert_eq!(l[0], "base");
        assert_eq!(l[1], "140");
    }
}
