//! Amenability characterization (future-work item 4).
//!
//! §V: "we would like to develop a methodology for characterizing
//! applications with regard to their amenability to power capped
//! execution." The paper's own data points the way: in the DVFS region
//! (caps ≥ 135 W) the slowdown of a CPU-bound code tracks the frequency
//! drop one-for-one, while memory-bound time does not scale with
//! frequency — which is why SIRE/RSM (partially memory-bound) tolerates
//! mid-range caps better than Stereo Matching (CPU-bound): +7 % vs +9 %
//! at 150 W, +14 % vs +21 % at 145 W, +21 % vs +40 % at 140 W.
//!
//! The profile below is extracted from a single *uncapped* run: the wall
//! time splits into a core-clocked share (unhalted cycles / frequency) and
//! a memory share (the rest). The amenability score is the memory share —
//! the fraction of time that DVFS cannot hurt — and the slowdown predictor
//! applies the frequency ratio to the core share only:
//!
//! ```text
//! T(f) / T(f0) = cpu_frac · f0/f + (1 − cpu_frac)
//! ```

use capsim_node::RunStats;

/// Counter-derived characterization of one application.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AmenabilityProfile {
    /// Instructions per unhalted cycle.
    pub ipc: f64,
    /// DRAM line transfers per thousand instructions.
    pub mem_per_kinstr: f64,
    /// Fraction of wall time spent in core-clocked work.
    pub cpu_frac: f64,
    /// Amenability score in [0, 1]: higher = more tolerant of DVFS-driven
    /// capping (the memory-bound share of execution).
    pub score: f64,
}

impl AmenabilityProfile {
    /// Predicted time ratio `T(f)/T(f0)` if the cap is honoured purely by
    /// DVFS dropping the clock from `f0_mhz` to `f_mhz`.
    pub fn predicted_slowdown(&self, f0_mhz: f64, f_mhz: f64) -> f64 {
        assert!(f0_mhz > 0.0 && f_mhz > 0.0);
        self.cpu_frac * (f0_mhz / f_mhz) + (1.0 - self.cpu_frac)
    }
}

/// Build the profile from an uncapped run's statistics.
pub fn amenability_score(stats: &RunStats) -> AmenabilityProfile {
    let wall_ns = stats.wall_s * 1e9;
    let core_ns = if stats.avg_freq_mhz > 0.0 {
        stats.counters.unhalted_cycles as f64 * 1e3 / stats.avg_freq_mhz
    } else {
        0.0
    };
    let cpu_frac = if wall_ns > 0.0 { (core_ns / wall_ns).clamp(0.0, 1.0) } else { 1.0 };
    let instr = stats.counters.instructions_committed.max(1) as f64;
    AmenabilityProfile {
        ipc: stats.counters.ipc(),
        mem_per_kinstr: stats.mem.dram_accesses() as f64 / instr * 1e3,
        cpu_frac,
        score: 1.0 - cpu_frac,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capsim_apps::kernels::{AluBurst, PointerChase};
    use capsim_apps::Workload;
    use capsim_node::{Machine, MachineConfig};

    fn profile(w: &mut dyn Workload, seed: u64) -> AmenabilityProfile {
        let mut m = Machine::new(MachineConfig::e5_2680(seed));
        w.run(&mut m);
        amenability_score(&m.finish_run())
    }

    #[test]
    fn compute_bound_code_scores_low() {
        let p = profile(&mut AluBurst { iters: 100_000 }, 1);
        assert!(p.cpu_frac > 0.9, "cpu_frac {}", p.cpu_frac);
        assert!(p.score < 0.1);
        assert!(p.mem_per_kinstr < 1.0);
    }

    #[test]
    fn memory_bound_code_scores_high() {
        let p = profile(&mut PointerChase { elems: 2 << 20, hops: 100_000, seed: 2 }, 2);
        assert!(p.score > 0.5, "score {}", p.score);
        assert!(p.mem_per_kinstr > 10.0);
    }

    #[test]
    fn predictor_matches_measured_dvfs_slowdown_for_cpu_bound_code() {
        // Run the same workload at P0 and forced P-min; the prediction
        // from the P0 profile must match the measured ratio.
        let run = |pstate: u8| {
            let mut m = Machine::new(MachineConfig::e5_2680(3));
            m.force_throttle(pstate, 16);
            AluBurst { iters: 100_000 }.run(&mut m);
            m.finish_run()
        };
        let base = run(0);
        let slow = run(15);
        let measured = slow.wall_s / base.wall_s;
        let predicted = amenability_score(&base).predicted_slowdown(2700.0, 1200.0);
        assert!(
            (measured / predicted - 1.0).abs() < 0.05,
            "measured {measured} vs predicted {predicted}"
        );
    }

    #[test]
    fn memory_bound_code_slows_less_than_the_frequency_ratio() {
        let run = |pstate: u8| {
            let mut m = Machine::new(MachineConfig::e5_2680(4));
            m.force_throttle(pstate, 16);
            PointerChase { elems: 2 << 20, hops: 60_000, seed: 4 }.run(&mut m);
            m.finish_run()
        };
        let base = run(0);
        let slow = run(15);
        let measured = slow.wall_s / base.wall_s;
        let fratio = 2700.0 / 1200.0;
        assert!(measured < fratio * 0.8, "measured {measured} vs {fratio}");
        let predicted = amenability_score(&base).predicted_slowdown(2700.0, 1200.0);
        assert!((measured / predicted - 1.0).abs() < 0.15, "{measured} vs {predicted}");
    }

    #[test]
    fn score_orders_the_papers_two_applications() {
        // SIRE/RSM must score as more amenable than Stereo Matching, the
        // paper's §IV-A conclusion.
        let mut sar = capsim_apps::SireRsm::test_scale(7);
        let mut stereo = capsim_apps::StereoMatching::test_scale(7);
        let p_sar = profile(&mut sar, 7);
        let p_stereo = profile(&mut stereo, 7);
        assert!(p_sar.score > p_stereo.score, "SIRE {} vs Stereo {}", p_sar.score, p_stereo.score);
    }
}
