//! Rendering helpers: markdown tables, CSV, and ASCII line plots.
//!
//! The bench binaries print their reproduced tables/figures through these
//! so EXPERIMENTS.md can quote them verbatim.

/// Build a markdown table from a header and rows of cells.
pub fn markdown_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push('|');
    for h in header {
        out.push_str(&format!(" {h} |"));
    }
    out.push_str("\n|");
    for _ in header {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        debug_assert_eq!(row.len(), header.len());
        out.push('|');
        for cell in row {
            out.push_str(&format!(" {cell} |"));
        }
        out.push('\n');
    }
    out
}

/// Build a CSV string (no quoting needed for our numeric tables).
pub fn csv(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = header.join(",");
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Format seconds as the paper's `h:m:s`.
pub fn hms(seconds: f64) -> String {
    let total = seconds.round() as u64;
    format!("{}:{:02}:{:02}", total / 3600, (total % 3600) / 60, total % 60)
}

/// Render a telemetry event log as a markdown table, keeping at most
/// `max_rows` rows. When the log is longer, the *tail* is kept (the end of
/// a run — final rung settling, last barrier — is what a report reader
/// wants) and an elision line says how many rows were dropped.
pub fn event_log_markdown(events: &[capsim_obs::Event], max_rows: usize) -> String {
    if events.is_empty() {
        return String::from("*(no events recorded)*\n");
    }
    let skipped = events.len().saturating_sub(max_rows);
    let rows: Vec<Vec<String>> = events[skipped..]
        .iter()
        .map(|e| {
            vec![
                format!("{}", e.seq),
                format!("{:.6}", e.t_s),
                e.node.map(|n| n.to_string()).unwrap_or_else(|| "-".into()),
                e.kind.name().to_string(),
                e.kind.detail(),
            ]
        })
        .collect();
    let mut out = String::new();
    if skipped > 0 {
        out.push_str(&format!("*(… {skipped} earlier events elided …)*\n\n"));
    }
    out.push_str(&markdown_table(&["seq", "t (s)", "node", "event", "detail"], &rows));
    out
}

/// Simple fixed-width ASCII line plot of several named series sharing an
/// x-axis (used for the Figure 1/2 normalized plots).
pub fn ascii_plot(x_labels: &[String], series: &[(&str, Vec<f64>)], height: usize) -> String {
    let height = height.max(4);
    let width = x_labels.len();
    if width == 0 || series.is_empty() {
        return String::new();
    }
    let max =
        series.iter().flat_map(|(_, v)| v.iter().copied()).fold(f64::MIN, f64::max).max(1e-12);
    let mut grid = vec![vec![' '; width * 6]; height];
    let marks = ['*', 'o', '+', 'x', '#', '@', '%'];
    for (si, (_, vals)) in series.iter().enumerate() {
        for (xi, &v) in vals.iter().enumerate() {
            let row = ((1.0 - (v / max).clamp(0.0, 1.0)) * (height - 1) as f64).round() as usize;
            let col = xi * 6 + 2;
            grid[row][col] = marks[si % marks.len()];
        }
    }
    let mut out = String::new();
    for (i, row) in grid.iter().enumerate() {
        let y = max * (1.0 - i as f64 / (height - 1) as f64);
        out.push_str(&format!("{y:5.2} |"));
        out.push_str(&row.iter().collect::<String>());
        out.push('\n');
    }
    out.push_str("      +");
    out.push_str(&"-".repeat(width * 6));
    out.push('\n');
    out.push_str("       ");
    for l in x_labels {
        out.push_str(&format!("{l:<6}"));
    }
    out.push('\n');
    out.push_str("legend: ");
    for (si, (name, _)) in series.iter().enumerate() {
        out.push_str(&format!("{}={name}  ", marks[si % marks.len()]));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_table_shape() {
        let t = markdown_table(
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("| a |"));
        assert!(lines[1].starts_with("|---|"));
        assert!(lines[3].contains("| 3 |"));
    }

    #[test]
    fn csv_roundtrips_cells() {
        let c = csv(&["x", "y"], &[vec!["1".into(), "2.5".into()]]);
        assert_eq!(c, "x,y\n1,2.5\n");
    }

    #[test]
    fn hms_formats_like_the_paper() {
        assert_eq!(hms(89.0), "0:01:29");
        assert_eq!(hms(378.0), "0:06:18");
        assert_eq!(hms(10139.0), "2:48:59");
    }

    #[test]
    fn ascii_plot_renders_all_series() {
        let p = ascii_plot(
            &["a".into(), "b".into(), "c".into()],
            &[("up", vec![0.1, 0.5, 1.0]), ("down", vec![1.0, 0.5, 0.1])],
            8,
        );
        assert!(p.contains('*'));
        assert!(p.contains('o'));
        assert!(p.contains("legend"));
        assert!(p.lines().count() > 8);
    }

    #[test]
    fn empty_plot_is_empty() {
        assert!(ascii_plot(&[], &[], 5).is_empty());
    }

    #[test]
    fn event_log_markdown_keeps_the_tail() {
        use capsim_obs::{EventKind, EventLog};
        let mut log = EventLog::bounded(16);
        for i in 0..5u16 {
            log.record(
                i as f64 * 0.1,
                EventKind::SelAppend { event: "power_limit_exceeded", datum: i },
            );
        }
        let events: Vec<_> = log.iter().cloned().collect();
        let full = event_log_markdown(&events, 10);
        assert!(!full.contains("elided"));
        assert_eq!(full.lines().count(), 2 + 5, "header + rule + one row per event");
        assert!(full.contains("| sel_append |"));

        let tail = event_log_markdown(&events, 2);
        assert!(tail.contains("3 earlier events elided"));
        assert!(tail.contains("datum=4"));
        assert!(!tail.contains("datum=1"));

        assert_eq!(event_log_markdown(&[], 10), "*(no events recorded)*\n");
    }
}
